file(REMOVE_RECURSE
  "liblast.a"
)
