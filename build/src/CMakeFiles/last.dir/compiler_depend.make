# Empty compiler generated dependencies file for last.
# This may be replaced when dependencies are built.
