
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/instruction.cc" "src/CMakeFiles/last.dir/arch/instruction.cc.o" "gcc" "src/CMakeFiles/last.dir/arch/instruction.cc.o.d"
  "/root/repo/src/arch/kernel_code.cc" "src/CMakeFiles/last.dir/arch/kernel_code.cc.o" "gcc" "src/CMakeFiles/last.dir/arch/kernel_code.cc.o.d"
  "/root/repo/src/arch/wf_state.cc" "src/CMakeFiles/last.dir/arch/wf_state.cc.o" "gcc" "src/CMakeFiles/last.dir/arch/wf_state.cc.o.d"
  "/root/repo/src/common/config.cc" "src/CMakeFiles/last.dir/common/config.cc.o" "gcc" "src/CMakeFiles/last.dir/common/config.cc.o.d"
  "/root/repo/src/common/event_queue.cc" "src/CMakeFiles/last.dir/common/event_queue.cc.o" "gcc" "src/CMakeFiles/last.dir/common/event_queue.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/last.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/last.dir/common/logging.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/last.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/last.dir/common/stats.cc.o.d"
  "/root/repo/src/cu/compute_unit.cc" "src/CMakeFiles/last.dir/cu/compute_unit.cc.o" "gcc" "src/CMakeFiles/last.dir/cu/compute_unit.cc.o.d"
  "/root/repo/src/finalizer/finalizer.cc" "src/CMakeFiles/last.dir/finalizer/finalizer.cc.o" "gcc" "src/CMakeFiles/last.dir/finalizer/finalizer.cc.o.d"
  "/root/repo/src/finalizer/regalloc.cc" "src/CMakeFiles/last.dir/finalizer/regalloc.cc.o" "gcc" "src/CMakeFiles/last.dir/finalizer/regalloc.cc.o.d"
  "/root/repo/src/finalizer/uniformity.cc" "src/CMakeFiles/last.dir/finalizer/uniformity.cc.o" "gcc" "src/CMakeFiles/last.dir/finalizer/uniformity.cc.o.d"
  "/root/repo/src/gcn3/inst.cc" "src/CMakeFiles/last.dir/gcn3/inst.cc.o" "gcc" "src/CMakeFiles/last.dir/gcn3/inst.cc.o.d"
  "/root/repo/src/gpu/command_processor.cc" "src/CMakeFiles/last.dir/gpu/command_processor.cc.o" "gcc" "src/CMakeFiles/last.dir/gpu/command_processor.cc.o.d"
  "/root/repo/src/gpu/gpu.cc" "src/CMakeFiles/last.dir/gpu/gpu.cc.o" "gcc" "src/CMakeFiles/last.dir/gpu/gpu.cc.o.d"
  "/root/repo/src/hsail/brig.cc" "src/CMakeFiles/last.dir/hsail/brig.cc.o" "gcc" "src/CMakeFiles/last.dir/hsail/brig.cc.o.d"
  "/root/repo/src/hsail/builder.cc" "src/CMakeFiles/last.dir/hsail/builder.cc.o" "gcc" "src/CMakeFiles/last.dir/hsail/builder.cc.o.d"
  "/root/repo/src/hsail/inst.cc" "src/CMakeFiles/last.dir/hsail/inst.cc.o" "gcc" "src/CMakeFiles/last.dir/hsail/inst.cc.o.d"
  "/root/repo/src/hsail/ipdom.cc" "src/CMakeFiles/last.dir/hsail/ipdom.cc.o" "gcc" "src/CMakeFiles/last.dir/hsail/ipdom.cc.o.d"
  "/root/repo/src/memory/cache.cc" "src/CMakeFiles/last.dir/memory/cache.cc.o" "gcc" "src/CMakeFiles/last.dir/memory/cache.cc.o.d"
  "/root/repo/src/memory/dram.cc" "src/CMakeFiles/last.dir/memory/dram.cc.o" "gcc" "src/CMakeFiles/last.dir/memory/dram.cc.o.d"
  "/root/repo/src/memory/functional_memory.cc" "src/CMakeFiles/last.dir/memory/functional_memory.cc.o" "gcc" "src/CMakeFiles/last.dir/memory/functional_memory.cc.o.d"
  "/root/repo/src/runtime/runtime.cc" "src/CMakeFiles/last.dir/runtime/runtime.cc.o" "gcc" "src/CMakeFiles/last.dir/runtime/runtime.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/CMakeFiles/last.dir/sim/experiment.cc.o" "gcc" "src/CMakeFiles/last.dir/sim/experiment.cc.o.d"
  "/root/repo/src/workloads/arraybw.cc" "src/CMakeFiles/last.dir/workloads/arraybw.cc.o" "gcc" "src/CMakeFiles/last.dir/workloads/arraybw.cc.o.d"
  "/root/repo/src/workloads/bitonic.cc" "src/CMakeFiles/last.dir/workloads/bitonic.cc.o" "gcc" "src/CMakeFiles/last.dir/workloads/bitonic.cc.o.d"
  "/root/repo/src/workloads/comd.cc" "src/CMakeFiles/last.dir/workloads/comd.cc.o" "gcc" "src/CMakeFiles/last.dir/workloads/comd.cc.o.d"
  "/root/repo/src/workloads/factory.cc" "src/CMakeFiles/last.dir/workloads/factory.cc.o" "gcc" "src/CMakeFiles/last.dir/workloads/factory.cc.o.d"
  "/root/repo/src/workloads/fft.cc" "src/CMakeFiles/last.dir/workloads/fft.cc.o" "gcc" "src/CMakeFiles/last.dir/workloads/fft.cc.o.d"
  "/root/repo/src/workloads/hpgmg.cc" "src/CMakeFiles/last.dir/workloads/hpgmg.cc.o" "gcc" "src/CMakeFiles/last.dir/workloads/hpgmg.cc.o.d"
  "/root/repo/src/workloads/lulesh.cc" "src/CMakeFiles/last.dir/workloads/lulesh.cc.o" "gcc" "src/CMakeFiles/last.dir/workloads/lulesh.cc.o.d"
  "/root/repo/src/workloads/md.cc" "src/CMakeFiles/last.dir/workloads/md.cc.o" "gcc" "src/CMakeFiles/last.dir/workloads/md.cc.o.d"
  "/root/repo/src/workloads/snap.cc" "src/CMakeFiles/last.dir/workloads/snap.cc.o" "gcc" "src/CMakeFiles/last.dir/workloads/snap.cc.o.d"
  "/root/repo/src/workloads/spmv.cc" "src/CMakeFiles/last.dir/workloads/spmv.cc.o" "gcc" "src/CMakeFiles/last.dir/workloads/spmv.cc.o.d"
  "/root/repo/src/workloads/vecadd.cc" "src/CMakeFiles/last.dir/workloads/vecadd.cc.o" "gcc" "src/CMakeFiles/last.dir/workloads/vecadd.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/last.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/last.dir/workloads/workload.cc.o.d"
  "/root/repo/src/workloads/xsbench.cc" "src/CMakeFiles/last.dir/workloads/xsbench.cc.o" "gcc" "src/CMakeFiles/last.dir/workloads/xsbench.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
