# CMake generated Testfile for 
# Source directory: /root/repo/src/finalizer
# Build directory: /root/repo/build/src/finalizer
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
