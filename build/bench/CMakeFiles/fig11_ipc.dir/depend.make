# Empty dependencies file for fig11_ipc.
# This may be replaced when dependencies are built.
