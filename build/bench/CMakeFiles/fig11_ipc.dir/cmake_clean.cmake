file(REMOVE_RECURSE
  "CMakeFiles/fig11_ipc.dir/fig11_ipc.cc.o"
  "CMakeFiles/fig11_ipc.dir/fig11_ipc.cc.o.d"
  "fig11_ipc"
  "fig11_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
