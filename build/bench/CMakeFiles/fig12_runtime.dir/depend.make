# Empty dependencies file for fig12_runtime.
# This may be replaced when dependencies are built.
