file(REMOVE_RECURSE
  "CMakeFiles/fig12_runtime.dir/fig12_runtime.cc.o"
  "CMakeFiles/fig12_runtime.dir/fig12_runtime.cc.o.d"
  "fig12_runtime"
  "fig12_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
