# Empty dependencies file for tab01_abi_expansions.
# This may be replaced when dependencies are built.
