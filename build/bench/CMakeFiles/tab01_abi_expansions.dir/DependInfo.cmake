
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/tab01_abi_expansions.cc" "bench/CMakeFiles/tab01_abi_expansions.dir/tab01_abi_expansions.cc.o" "gcc" "bench/CMakeFiles/tab01_abi_expansions.dir/tab01_abi_expansions.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/last_bench_support.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/last.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
