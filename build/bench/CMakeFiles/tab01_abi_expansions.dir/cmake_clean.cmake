file(REMOVE_RECURSE
  "CMakeFiles/tab01_abi_expansions.dir/tab01_abi_expansions.cc.o"
  "CMakeFiles/tab01_abi_expansions.dir/tab01_abi_expansions.cc.o.d"
  "tab01_abi_expansions"
  "tab01_abi_expansions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_abi_expansions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
