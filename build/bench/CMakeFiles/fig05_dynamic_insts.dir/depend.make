# Empty dependencies file for fig05_dynamic_insts.
# This may be replaced when dependencies are built.
