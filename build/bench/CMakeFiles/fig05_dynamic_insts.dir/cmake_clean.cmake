file(REMOVE_RECURSE
  "CMakeFiles/fig05_dynamic_insts.dir/fig05_dynamic_insts.cc.o"
  "CMakeFiles/fig05_dynamic_insts.dir/fig05_dynamic_insts.cc.o.d"
  "fig05_dynamic_insts"
  "fig05_dynamic_insts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_dynamic_insts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
