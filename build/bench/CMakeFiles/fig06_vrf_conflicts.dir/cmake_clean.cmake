file(REMOVE_RECURSE
  "CMakeFiles/fig06_vrf_conflicts.dir/fig06_vrf_conflicts.cc.o"
  "CMakeFiles/fig06_vrf_conflicts.dir/fig06_vrf_conflicts.cc.o.d"
  "fig06_vrf_conflicts"
  "fig06_vrf_conflicts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_vrf_conflicts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
