# Empty dependencies file for fig06_vrf_conflicts.
# This may be replaced when dependencies are built.
