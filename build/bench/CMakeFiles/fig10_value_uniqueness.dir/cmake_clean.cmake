file(REMOVE_RECURSE
  "CMakeFiles/fig10_value_uniqueness.dir/fig10_value_uniqueness.cc.o"
  "CMakeFiles/fig10_value_uniqueness.dir/fig10_value_uniqueness.cc.o.d"
  "fig10_value_uniqueness"
  "fig10_value_uniqueness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_value_uniqueness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
