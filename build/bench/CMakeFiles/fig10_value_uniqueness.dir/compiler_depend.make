# Empty compiler generated dependencies file for fig10_value_uniqueness.
# This may be replaced when dependencies are built.
