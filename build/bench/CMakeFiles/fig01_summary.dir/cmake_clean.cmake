file(REMOVE_RECURSE
  "CMakeFiles/fig01_summary.dir/fig01_summary.cc.o"
  "CMakeFiles/fig01_summary.dir/fig01_summary.cc.o.d"
  "fig01_summary"
  "fig01_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
