# Empty compiler generated dependencies file for fig01_summary.
# This may be replaced when dependencies are built.
