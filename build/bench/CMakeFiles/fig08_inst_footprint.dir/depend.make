# Empty dependencies file for fig08_inst_footprint.
# This may be replaced when dependencies are built.
