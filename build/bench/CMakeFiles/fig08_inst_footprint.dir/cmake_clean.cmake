file(REMOVE_RECURSE
  "CMakeFiles/fig08_inst_footprint.dir/fig08_inst_footprint.cc.o"
  "CMakeFiles/fig08_inst_footprint.dir/fig08_inst_footprint.cc.o.d"
  "fig08_inst_footprint"
  "fig08_inst_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_inst_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
