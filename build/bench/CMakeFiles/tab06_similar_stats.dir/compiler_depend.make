# Empty compiler generated dependencies file for tab06_similar_stats.
# This may be replaced when dependencies are built.
