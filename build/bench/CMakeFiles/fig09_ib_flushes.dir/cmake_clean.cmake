file(REMOVE_RECURSE
  "CMakeFiles/fig09_ib_flushes.dir/fig09_ib_flushes.cc.o"
  "CMakeFiles/fig09_ib_flushes.dir/fig09_ib_flushes.cc.o.d"
  "fig09_ib_flushes"
  "fig09_ib_flushes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_ib_flushes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
