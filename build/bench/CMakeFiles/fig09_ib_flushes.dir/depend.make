# Empty dependencies file for fig09_ib_flushes.
# This may be replaced when dependencies are built.
