# Empty compiler generated dependencies file for last_bench_support.
# This may be replaced when dependencies are built.
