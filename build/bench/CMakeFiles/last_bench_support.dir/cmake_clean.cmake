file(REMOVE_RECURSE
  "CMakeFiles/last_bench_support.dir/support.cc.o"
  "CMakeFiles/last_bench_support.dir/support.cc.o.d"
  "liblast_bench_support.a"
  "liblast_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/last_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
