file(REMOVE_RECURSE
  "liblast_bench_support.a"
)
