file(REMOVE_RECURSE
  "CMakeFiles/tab07_hw_correlation.dir/tab07_hw_correlation.cc.o"
  "CMakeFiles/tab07_hw_correlation.dir/tab07_hw_correlation.cc.o.d"
  "tab07_hw_correlation"
  "tab07_hw_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab07_hw_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
