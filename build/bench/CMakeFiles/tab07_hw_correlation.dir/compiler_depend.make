# Empty compiler generated dependencies file for tab07_hw_correlation.
# This may be replaced when dependencies are built.
