file(REMOVE_RECURSE
  "CMakeFiles/ablation_config.dir/ablation_config.cc.o"
  "CMakeFiles/ablation_config.dir/ablation_config.cc.o.d"
  "ablation_config"
  "ablation_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
