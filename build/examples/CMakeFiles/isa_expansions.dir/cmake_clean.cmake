file(REMOVE_RECURSE
  "CMakeFiles/isa_expansions.dir/isa_expansions.cpp.o"
  "CMakeFiles/isa_expansions.dir/isa_expansions.cpp.o.d"
  "isa_expansions"
  "isa_expansions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isa_expansions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
