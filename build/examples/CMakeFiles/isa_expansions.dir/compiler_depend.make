# Empty compiler generated dependencies file for isa_expansions.
# This may be replaced when dependencies are built.
