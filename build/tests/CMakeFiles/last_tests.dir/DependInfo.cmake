
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/helpers.cc" "tests/CMakeFiles/last_tests.dir/helpers.cc.o" "gcc" "tests/CMakeFiles/last_tests.dir/helpers.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/last_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/last_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_cu.cc" "tests/CMakeFiles/last_tests.dir/test_cu.cc.o" "gcc" "tests/CMakeFiles/last_tests.dir/test_cu.cc.o.d"
  "/root/repo/tests/test_differential.cc" "tests/CMakeFiles/last_tests.dir/test_differential.cc.o" "gcc" "tests/CMakeFiles/last_tests.dir/test_differential.cc.o.d"
  "/root/repo/tests/test_finalizer.cc" "tests/CMakeFiles/last_tests.dir/test_finalizer.cc.o" "gcc" "tests/CMakeFiles/last_tests.dir/test_finalizer.cc.o.d"
  "/root/repo/tests/test_gcn3.cc" "tests/CMakeFiles/last_tests.dir/test_gcn3.cc.o" "gcc" "tests/CMakeFiles/last_tests.dir/test_gcn3.cc.o.d"
  "/root/repo/tests/test_hsail.cc" "tests/CMakeFiles/last_tests.dir/test_hsail.cc.o" "gcc" "tests/CMakeFiles/last_tests.dir/test_hsail.cc.o.d"
  "/root/repo/tests/test_ipdom.cc" "tests/CMakeFiles/last_tests.dir/test_ipdom.cc.o" "gcc" "tests/CMakeFiles/last_tests.dir/test_ipdom.cc.o.d"
  "/root/repo/tests/test_memory.cc" "tests/CMakeFiles/last_tests.dir/test_memory.cc.o" "gcc" "tests/CMakeFiles/last_tests.dir/test_memory.cc.o.d"
  "/root/repo/tests/test_properties.cc" "tests/CMakeFiles/last_tests.dir/test_properties.cc.o" "gcc" "tests/CMakeFiles/last_tests.dir/test_properties.cc.o.d"
  "/root/repo/tests/test_runtime.cc" "tests/CMakeFiles/last_tests.dir/test_runtime.cc.o" "gcc" "tests/CMakeFiles/last_tests.dir/test_runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/last.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
