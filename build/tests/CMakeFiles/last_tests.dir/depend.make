# Empty dependencies file for last_tests.
# This may be replaced when dependencies are built.
