file(REMOVE_RECURSE
  "CMakeFiles/last_tests.dir/helpers.cc.o"
  "CMakeFiles/last_tests.dir/helpers.cc.o.d"
  "CMakeFiles/last_tests.dir/test_common.cc.o"
  "CMakeFiles/last_tests.dir/test_common.cc.o.d"
  "CMakeFiles/last_tests.dir/test_cu.cc.o"
  "CMakeFiles/last_tests.dir/test_cu.cc.o.d"
  "CMakeFiles/last_tests.dir/test_differential.cc.o"
  "CMakeFiles/last_tests.dir/test_differential.cc.o.d"
  "CMakeFiles/last_tests.dir/test_finalizer.cc.o"
  "CMakeFiles/last_tests.dir/test_finalizer.cc.o.d"
  "CMakeFiles/last_tests.dir/test_gcn3.cc.o"
  "CMakeFiles/last_tests.dir/test_gcn3.cc.o.d"
  "CMakeFiles/last_tests.dir/test_hsail.cc.o"
  "CMakeFiles/last_tests.dir/test_hsail.cc.o.d"
  "CMakeFiles/last_tests.dir/test_ipdom.cc.o"
  "CMakeFiles/last_tests.dir/test_ipdom.cc.o.d"
  "CMakeFiles/last_tests.dir/test_memory.cc.o"
  "CMakeFiles/last_tests.dir/test_memory.cc.o.d"
  "CMakeFiles/last_tests.dir/test_properties.cc.o"
  "CMakeFiles/last_tests.dir/test_properties.cc.o.d"
  "CMakeFiles/last_tests.dir/test_runtime.cc.o"
  "CMakeFiles/last_tests.dir/test_runtime.cc.o.d"
  "last_tests"
  "last_tests.pdb"
  "last_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/last_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
