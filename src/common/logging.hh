/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic()  - an internal invariant was violated (simulator bug);
 *            throws InvariantError (aborts in ErrorMode::Abort).
 * fatal()  - the user asked for something unsupportable; throws
 *            ConfigError (exits in ErrorMode::Abort).
 * warn()   - functionality approximated; simulation continues.
 * inform() - plain status output.
 *
 * See common/error.hh for the SimError hierarchy and the throw-vs-abort
 * mode selection. warn()/inform() route through an optional hook so
 * tests (and embedding applications) can capture formatted output.
 */

#ifndef LAST_COMMON_LOGGING_HH
#define LAST_COMMON_LOGGING_HH

#include <cstdarg>
#include <functional>
#include <string>

#include "common/error.hh"

namespace last
{

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Format a printf-style message into a std::string. */
std::string vformat(const char *fmt, va_list ap);

/**
 * Capture hook for warn()/inform(): receives the level ("warn" or
 * "info") and the formatted message. While installed, messages go to
 * the hook instead of stderr/stdout. Install nullptr to restore the
 * default streams.
 */
using LogHook = std::function<void(const char *level,
                                   const std::string &msg)>;
void setLogHook(LogHook hook);

} // namespace last

#define panic(...) ::last::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::last::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::last::warnImpl(__VA_ARGS__)
#define inform(...) ::last::informImpl(__VA_ARGS__)

/** Like assert, but active in all build types and panics with context.
 *  The condition is evaluated exactly once. */
#define panic_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond)                                                            \
            panic(__VA_ARGS__);                                              \
    } while (0)

#define fatal_if(cond, ...)                                                  \
    do {                                                                     \
        if (cond)                                                            \
            fatal(__VA_ARGS__);                                              \
    } while (0)

#endif // LAST_COMMON_LOGGING_HH
