#include "common/event_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace last
{

void
EventQueue::schedule(Cycle when, Callback cb)
{
    panic_if(when < curCycle, "scheduling event in the past (%llu < %llu)",
             (unsigned long long)when, (unsigned long long)curCycle);
    events[when].push_back(std::move(cb));
}

void
EventQueue::scheduleAfter(Cycle delay, Callback cb)
{
    schedule(curCycle + delay, std::move(cb));
}

void
EventQueue::tick()
{
    auto it = events.find(curCycle);
    if (it != events.end()) {
        // Callbacks may schedule more events for this same cycle; keep
        // draining until the bucket is empty so intra-cycle chains
        // (e.g., L1 miss -> L2 hit forwarded combinationally) resolve.
        while (it != events.end() && it->first == curCycle) {
            std::vector<Callback> batch = std::move(it->second);
            events.erase(it);
            for (auto &cb : batch)
                cb();
            it = events.find(curCycle);
        }
    }
    ++curCycle;
}

void
EventQueue::fastForward()
{
    if (events.empty()) {
        ++curCycle;
        return;
    }
    Cycle next = events.begin()->first;
    curCycle = next > curCycle ? next : curCycle;
    tick();
}

Cycle
EventQueue::nextEventCycle() const
{
    return events.empty() ? InvalidCycle : events.begin()->first;
}

Cycle
EventQueue::fastForwardTo(Cycle limit)
{
    Cycle target = std::min(nextEventCycle(), limit);
    if (target == InvalidCycle || target <= curCycle)
        return 0;
    Cycle skipped = target - curCycle;
    curCycle = target;
    return skipped;
}

size_t
EventQueue::numPending() const
{
    size_t n = 0;
    for (const auto &kv : events)
        n += kv.second.size();
    return n;
}

void
EventQueue::reset()
{
    events.clear();
    curCycle = 0;
}

} // namespace last
