/**
 * @file
 * A minimal JSON reader shared by every schema the repo both produces
 * and consumes (`last-shard-v1` manifests, the `last-journal-v1`
 * orchestration journal). Grown out of the parser that used to live in
 * sim/shard.cc once a second consumer appeared.
 *
 * Design points:
 *  - numbers keep their raw literal so 64-bit seeds and knob digests
 *    never round-trip through a double;
 *  - every value remembers the byte offset it started at, and every
 *    parse names its source (a path, usually), so torn or garbage
 *    input fails loudly as `ConfigError` ("<source>: ... at byte
 *    <offset>") instead of crashing, hanging, or half-loading;
 *  - the numeric accessors wrap std::stoull/stod so a syntactically
 *    number-shaped token that overflows still surfaces as ConfigError,
 *    never a bare std::out_of_range.
 */

#ifndef LAST_COMMON_JSON_IN_HH
#define LAST_COMMON_JSON_IN_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace last::jsonin
{

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    std::string text; ///< string value, or the raw number literal
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> members;
    size_t offset = 0; ///< byte offset of the value's first character

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : members)
            if (k == key)
                return &v;
        return nullptr;
    }
};

/**
 * Parse one complete JSON value; trailing non-whitespace is an error.
 * @param source name used in error messages (file path, "<stdin>", …).
 * @throws ConfigError on any syntax error, with source + byte offset.
 */
JsonValue parseJson(const std::string &text, const std::string &source);

/** Field accessors. All throw ConfigError naming `source`, the field,
 *  and the byte offset when the shape or range is wrong. */
const JsonValue &require(const JsonValue &obj, const std::string &key,
                         const std::string &source);
uint64_t asU64(const JsonValue &v, const std::string &key,
               const std::string &source);
int64_t asI64(const JsonValue &v, const std::string &key,
              const std::string &source);
double asDouble(const JsonValue &v, const std::string &key,
                const std::string &source);
std::string asString(const JsonValue &v, const std::string &key,
                     const std::string &source);

} // namespace last::jsonin

#endif // LAST_COMMON_JSON_IN_HH
