/**
 * @file
 * Minimal POSIX socket + line-framing helpers for the sweep server
 * (`last_serve`, DESIGN.md §4g).
 *
 * The `last-serve-v1` protocol is line-delimited: one request per
 * '\n'-terminated line, one response per line (SCHEMAS.md has the
 * envelope). These helpers own exactly the transport concerns the
 * protocol layer must not care about:
 *  - listening on either a Unix-domain socket (a filesystem path) or a
 *    loopback TCP port (port 0 = kernel-assigned, reported back —
 *    what tests and the smoke harness use to avoid collisions);
 *  - buffered line reads with an explicit byte cap, so an oversized —
 *    or endless, newline-free — request line surfaces as a structured
 *    `Oversized` status after resynchronizing on the next newline,
 *    never as unbounded memory growth or a desynced stream;
 *  - full-buffer writes with MSG_NOSIGNAL (a client hanging up
 *    mid-response must not SIGPIPE the daemon).
 *
 * Everything throws ConfigError (common/error.hh) on setup errors,
 * naming the endpoint; runtime I/O failures degrade to Eof/false so a
 * bad client only ever costs its own connection.
 */

#ifndef LAST_COMMON_SOCKET_HH
#define LAST_COMMON_SOCKET_HH

#include <cstdint>
#include <string>

namespace last::net
{

/** Where a server listens or a client connects. */
struct Endpoint
{
    enum class Kind { Unix, Tcp };
    Kind kind = Kind::Unix;
    std::string path;              ///< Unix: socket path
    std::string host = "127.0.0.1"; ///< Tcp: numeric address
    uint16_t port = 0;             ///< Tcp: port (0 = ephemeral)

    /** "unix:<path>" or "tcp:<host>:<port>" for messages. */
    std::string describe() const;
};

/**
 * A listening socket bound to an Endpoint. Unix paths are unlinked
 * before bind (a stale socket file from a crashed daemon must not
 * block restart) and again on close, so a clean shutdown leaves no
 * filesystem residue — the smoke harness checks exactly that.
 */
class ListenSocket
{
  public:
    ListenSocket() = default;
    ~ListenSocket() { closeAndUnlink(); }
    ListenSocket(const ListenSocket &) = delete;
    ListenSocket &operator=(const ListenSocket &) = delete;

    /** Bind + listen. @throws ConfigError naming the endpoint. */
    void listenOn(const Endpoint &ep);

    /** Block for one connection. @return the connected fd, or -1 once
     *  the socket has been shut down (the clean-stop signal). */
    int acceptConn();

    /** Unblock any acceptConn() in flight (async-signal-safe enough
     *  for a signal handler: one shutdown(2) call). */
    void interrupt();

    /** Close the fd and unlink the Unix path, if any. */
    void closeAndUnlink();

    /** The TCP port actually bound (resolves port 0). */
    uint16_t boundPort() const { return boundPort_; }

    bool listening() const { return fd_ >= 0; }

  private:
    int fd_ = -1;
    uint16_t boundPort_ = 0;
    std::string unixPath_; ///< non-empty = unlink on close
};

/** Buffered line framing over one connected fd. Owns the fd. */
class LineConn
{
  public:
    explicit LineConn(int fd) : fd_(fd) {}
    ~LineConn() { closeConn(); }
    LineConn(const LineConn &) = delete;
    LineConn &operator=(const LineConn &) = delete;

    enum class ReadStatus {
        Line,     ///< `line` holds one complete request (no '\n')
        Eof,      ///< peer closed (or the conn was shut down)
        Oversized ///< line exceeded maxBytes; stream resynced past it
    };

    /**
     * Read the next '\n'-terminated line. A line longer than
     * `maxBytes` is discarded through its terminating newline and
     * reported as Oversized — the connection stays usable, framing
     * intact, so the server can answer with a structured error
     * instead of dropping the client.
     */
    ReadStatus readLine(std::string &line, size_t maxBytes);

    /** Write the whole buffer (handling short writes). @return false
     *  when the peer is gone — never raises SIGPIPE. */
    bool writeAll(const std::string &data);

    /** Unblock a reader stuck in readLine (server stop path). */
    void shutdownConn();

    void closeConn();

    int fd() const { return fd_; }

  private:
    int fd_ = -1;
    std::string buf_; ///< bytes received but not yet returned
};

/** Connect to a serving endpoint.
 *  @return the connected fd. @throws ConfigError naming it. */
int connectEndpoint(const Endpoint &ep);

} // namespace last::net

#endif // LAST_COMMON_SOCKET_HH
