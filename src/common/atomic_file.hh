/**
 * @file
 * Crash-safe file replacement.
 *
 * Every artifact the sweep backend trusts across process lifetimes —
 * `last-shard-v1` manifests, bench caches, `last-stats-v1` /
 * `last-divergence-v1` JSON — must never be observable in a
 * half-written state: the incremental-reuse path and the orchestrator
 * resume path both decide what to (re)simulate by reading these files,
 * so a torn write silently turns into wasted or, worse, wrong work.
 *
 * atomicWriteFile() gives all producers one durable primitive: the
 * bytes are staged in a same-directory temp file
 * (`<path>.tmp.<pid>`), fsync'd, renamed over the target, and the
 * containing directory entry is fsync'd. A reader — or a crash at any
 * instant, including SIGKILL mid-write — sees either the old complete
 * file or the new complete file, never a mix, and concurrent writers
 * of identical content race benignly (last rename wins, same bytes).
 */

#ifndef LAST_COMMON_ATOMIC_FILE_HH
#define LAST_COMMON_ATOMIC_FILE_HH

#include <functional>
#include <iosfwd>
#include <string>

namespace last
{

/**
 * Durably replace `path` with `content` (see file comment for the
 * staging/rename/fsync protocol).
 * @throws ConfigError naming the path and failing operation on any
 * I/O error; the temp file is unlinked before throwing.
 */
void atomicWriteFile(const std::string &path, const std::string &content);

/**
 * Same, with the content produced by a writer callback into an
 * in-memory stream first. The repo's artifacts are small (kilobytes),
 * so buffering the whole file trades nothing for the guarantee that
 * the producer never touches the target path directly.
 */
void atomicWriteFile(const std::string &path,
                     const std::function<void(std::ostream &)> &producer);

} // namespace last

#endif // LAST_COMMON_ATOMIC_FILE_HH
