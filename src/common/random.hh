/**
 * @file
 * A tiny deterministic PRNG (xorshift64*), used by workload input
 * generators and property tests so runs are reproducible bit-for-bit.
 */

#ifndef LAST_COMMON_RANDOM_HH
#define LAST_COMMON_RANDOM_HH

#include <cstdint>

namespace last
{

class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 1)
    {}

    uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545f4914f6cdd1dull;
    }

    /** Uniform in [0, bound). */
    uint64_t
    nextBounded(uint64_t bound)
    {
        return bound ? next() % bound : 0;
    }

    /** Uniform float in [0, 1). */
    float
    nextFloat()
    {
        return float(next() >> 40) / float(1 << 24);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return double(next() >> 11) / double(1ull << 53);
    }

  private:
    uint64_t state;
};

} // namespace last

#endif // LAST_COMMON_RANDOM_HH
