#include "common/error.hh"

#include <cstdlib>
#include <sstream>

namespace last
{

namespace
{

ErrorMode &
errorModeStorage()
{
    static ErrorMode mode = [] {
        const char *s = std::getenv("LAST_ABORT_ON_ERROR");
        return (s && s[0] && s[0] != '0') ? ErrorMode::Abort
                                          : ErrorMode::Throw;
    }();
    return mode;
}

std::string
formatWhat(ErrorKind kind, const std::string &msg, const char *file,
           int line)
{
    std::ostringstream os;
    os << errorKindName(kind) << ": " << msg;
    if (file && *file)
        os << " (" << file << ":" << line << ")";
    return os.str();
}

} // namespace

ErrorMode
errorMode()
{
    return errorModeStorage();
}

void
setErrorMode(ErrorMode mode)
{
    errorModeStorage() = mode;
}

const char *
errorKindName(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::Invariant: return "panic";
      case ErrorKind::Config: return "fatal";
      case ErrorKind::Memory: return "memory error";
      case ErrorKind::Deadlock: return "deadlock";
      case ErrorKind::Mismatch: return "isa mismatch";
    }
    return "error";
}

SimError::SimError(ErrorKind kind, const std::string &msg,
                   const char *file, int line)
    : std::runtime_error(formatWhat(kind, msg, file, line)), kind_(kind),
      msg_(msg), file_(file ? file : ""), line_(line)
{}

std::string
WavefrontDump::format() const
{
    std::ostringstream os;
    os << cuName << " wf " << slot << " (wg " << wgId << ", kernel "
       << kernel << "): pc=0x" << std::hex << pc << " exec=0x" << execMask
       << std::dec << " vmcnt=" << vmCnt << " lgkmcnt=" << lgkmCnt
       << " rsDepth=" << rsDepth << " ib=" << ibCount
       << (fetchInFlight ? " fetchInFlight" : "");
    if (blockedUntil)
        os << " blockedUntil=" << blockedUntil;
    if (atBarrier)
        os << " AT-BARRIER(" << wgWfsAtBarrier << "/" << wgWfsTotal
           << " arrived)";
    if (wedged)
        os << " WEDGED";
    return os.str();
}

std::string
DeadlockInfo::format() const
{
    std::ostringstream os;
    os << "deadlock at cycle " << cycle << " (" << reason
       << "; last progress at cycle " << lastProgressCycle << ", "
       << instsIssued << " instructions issued, " << wavefronts.size()
       << " live wavefront(s)):\n";
    for (const auto &wf : wavefronts)
        os << "  " << wf.format() << "\n";
    return os.str();
}

DeadlockError::DeadlockError(DeadlockInfo info)
    : SimError(ErrorKind::Deadlock, info.format()), info_(std::move(info))
{}

} // namespace last
