/**
 * @file
 * A tick-ordered event queue.
 *
 * The GPU model advances with a global per-cycle loop; latency-bearing
 * components (caches, DRAM) schedule completion callbacks here. Events
 * scheduled for the same cycle fire in FIFO order, which keeps the
 * model deterministic.
 */

#ifndef LAST_COMMON_EVENT_QUEUE_HH
#define LAST_COMMON_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/types.hh"

namespace last
{

class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule cb to run at absolute cycle when (>= now()). */
    void schedule(Cycle when, Callback cb);

    /** Schedule cb to run delay cycles from now. */
    void scheduleAfter(Cycle delay, Callback cb);

    /** Run all events scheduled for the current cycle, then advance
     *  the clock by one. */
    void tick();

    /** Advance the clock directly to the next scheduled event (or by
     *  one cycle if none) and run it; used to fast-forward idle
     *  periods. */
    void fastForward();

    /** Cycle of the earliest pending event (InvalidCycle if none). */
    Cycle nextEventCycle() const;

    /**
     * Advance the clock to min(nextEventCycle(), limit) WITHOUT
     * running anything, so the caller's per-cycle loop resumes exactly
     * at the first cycle where something can happen. No-op if that
     * target is not in the future.
     *
     * @return cycles skipped (target - now() before the call).
     */
    Cycle fastForwardTo(Cycle limit);

    /** Current cycle. */
    Cycle now() const { return curCycle; }

    /** True if no events are pending. */
    bool empty() const { return events.empty(); }

    /** Number of pending events. */
    size_t numPending() const;

    /** Drop all pending events and reset the clock to zero. */
    void reset();

  private:
    Cycle curCycle = 0;
    std::map<Cycle, std::vector<Callback>> events;
};

} // namespace last

#endif // LAST_COMMON_EVENT_QUEUE_HH
