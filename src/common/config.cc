#include "common/config.hh"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace last
{

const char *
isaName(IsaKind isa)
{
    switch (isa) {
      case IsaKind::HSAIL: return "HSAIL";
      case IsaKind::GCN3: return "GCN3";
      case IsaKind::PTXL: return "PTXL";
    }
    return "?";
}

bool
isaFromName(const std::string &name, IsaKind &out)
{
    for (IsaKind isa : AllIsas) {
        const char *canon = isaName(isa);
        if (name.size() != std::strlen(canon))
            continue;
        bool match = true;
        for (size_t i = 0; i < name.size(); ++i)
            if (std::toupper((unsigned char)name[i]) != canon[i])
                match = false;
        if (match) {
            out = isa;
            return true;
        }
    }
    return false;
}

bool
GpuConfig::defaultExecReference()
{
    // Resolved once: the switch selects an engine for the whole
    // process; per-run overrides go through the GpuConfig field.
    static const bool def = [] {
#ifdef LAST_EXEC_REFERENCE_DEFAULT
        bool v = true;
#else
        bool v = false;
#endif
        if (const char *env = std::getenv("LAST_EXEC_REFERENCE"))
            v = *env && std::strcmp(env, "0") != 0;
        return v;
    }();
    return def;
}

std::string
GpuConfig::summary() const
{
    std::ostringstream os;
    os << numCus << " CUs @ " << clockGhz * 1000 << " MHz, " << simdPerCu
       << " SIMDs/CU, " << wfSlotsPerCu << " WF slots (each "
       << wavefrontSize << " lanes), " << l1d.sizeBytes / 1024
       << "kB L1D/CU, " << l1i.sizeBytes / 1024 << "kB I$/"
       << cusPerCluster << "CUs, " << l2.sizeBytes / 1024 << "kB L2/"
       << cusPerCluster << "CUs, DDR3 x" << dramChannels;
    return os.str();
}

std::ostream &
operator<<(std::ostream &os, const GpuConfig &cfg)
{
    return os << cfg.summary();
}

} // namespace last
