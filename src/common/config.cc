#include "common/config.hh"

#include <cstdlib>
#include <cstring>
#include <sstream>

namespace last
{

const char *
isaName(IsaKind isa)
{
    return isa == IsaKind::HSAIL ? "HSAIL" : "GCN3";
}

bool
GpuConfig::defaultExecReference()
{
    // Resolved once: the switch selects an engine for the whole
    // process; per-run overrides go through the GpuConfig field.
    static const bool def = [] {
#ifdef LAST_EXEC_REFERENCE_DEFAULT
        bool v = true;
#else
        bool v = false;
#endif
        if (const char *env = std::getenv("LAST_EXEC_REFERENCE"))
            v = *env && std::strcmp(env, "0") != 0;
        return v;
    }();
    return def;
}

std::string
GpuConfig::summary() const
{
    std::ostringstream os;
    os << numCus << " CUs @ " << clockGhz * 1000 << " MHz, " << simdPerCu
       << " SIMDs/CU, " << wfSlotsPerCu << " WF slots (each "
       << wavefrontSize << " lanes), " << l1d.sizeBytes / 1024
       << "kB L1D/CU, " << l1i.sizeBytes / 1024 << "kB I$/"
       << cusPerCluster << "CUs, " << l2.sizeBytes / 1024 << "kB L2/"
       << cusPerCluster << "CUs, DDR3 x" << dramChannels;
    return os.str();
}

std::ostream &
operator<<(std::ostream &os, const GpuConfig &cfg)
{
    return os << cfg.summary();
}

} // namespace last
