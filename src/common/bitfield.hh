/**
 * @file
 * Bit-manipulation helpers used by encoders, caches, and the ISAs.
 */

#ifndef LAST_COMMON_BITFIELD_HH
#define LAST_COMMON_BITFIELD_HH

#include <cstdint>

namespace last
{

/** Extract bits [last:first] (inclusive, LSB 0) from val. */
constexpr uint64_t
bits(uint64_t val, unsigned last, unsigned first)
{
    unsigned nbits = last - first + 1;
    uint64_t mask = nbits >= 64 ? ~uint64_t(0) : ((uint64_t(1) << nbits) - 1);
    return (val >> first) & mask;
}

/** Insert bits value into [last:first] of dest and return the result. */
constexpr uint64_t
insertBits(uint64_t dest, unsigned last, unsigned first, uint64_t value)
{
    unsigned nbits = last - first + 1;
    uint64_t mask = nbits >= 64 ? ~uint64_t(0) : ((uint64_t(1) << nbits) - 1);
    return (dest & ~(mask << first)) | ((value & mask) << first);
}

/** Sign-extend the low nbits of val to 64 bits. */
constexpr int64_t
sext(uint64_t val, unsigned nbits)
{
    uint64_t sign = uint64_t(1) << (nbits - 1);
    uint64_t mask = (sign << 1) - 1;
    val &= mask;
    return static_cast<int64_t>((val ^ sign) - sign);
}

/** True if val is a power of two (0 is not). */
constexpr bool
isPowerOf2(uint64_t val)
{
    return val != 0 && (val & (val - 1)) == 0;
}

/** log2 of a power-of-two value. */
constexpr unsigned
floorLog2(uint64_t val)
{
    unsigned l = 0;
    while (val >>= 1)
        ++l;
    return l;
}

/** Population count of a 64-bit mask. */
constexpr unsigned
popCount(uint64_t val)
{
    return static_cast<unsigned>(__builtin_popcountll(val));
}

/** Index of the lowest set bit; undefined for val == 0. */
constexpr unsigned
findLsb(uint64_t val)
{
    return static_cast<unsigned>(__builtin_ctzll(val));
}

} // namespace last

#endif // LAST_COMMON_BITFIELD_HH
