#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <vector>

namespace last
{

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (len < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(len));
}

namespace
{

[[noreturn]] void
throwOrDie(const char *kind, const char *file, int line,
           const std::string &msg)
{
    std::fprintf(stderr, "%s: %s (%s:%d)\n", kind, msg.c_str(), file, line);
    std::fflush(stderr);
    // Throwing (rather than abort/exit) keeps death-path behaviour
    // testable from gtest and lets library users recover from fatal().
    throw std::runtime_error(std::string(kind) + ": " + msg);
}

} // namespace

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    throwOrDie("panic", file, line, msg);
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    throwOrDie("fatal", file, line, msg);
}

void
warnImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace last
