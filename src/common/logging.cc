#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace last
{

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (len < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(len));
}

namespace
{

LogHook &
logHookStorage()
{
    static LogHook hook;
    return hook;
}

void
emit(const char *level, std::FILE *stream, const std::string &msg)
{
    if (LogHook &hook = logHookStorage()) {
        hook(level, msg);
        return;
    }
    std::fprintf(stream, "%s: %s\n", level, msg.c_str());
}

} // namespace

void
setLogHook(LogHook hook)
{
    logHookStorage() = std::move(hook);
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    if (errorMode() == ErrorMode::Abort)
        std::abort();
    // Throwing (rather than abort) keeps death-path behaviour testable
    // from gtest, lets library users recover from broken invariants,
    // and lets a parallel sweep quarantine the failed run.
    throw InvariantError(msg, file, line);
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    if (errorMode() == ErrorMode::Abort)
        std::exit(1);
    throw ConfigError(msg, file, line);
}

void
warnImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit("warn", stderr, msg);
}

void
informImpl(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit("info", stdout, msg);
}

} // namespace last
