#include "common/json_in.hh"

#include <cctype>
#include <stdexcept>

#include "common/error.hh"

namespace last::jsonin
{

namespace
{

[[noreturn]] void
failAt(const std::string &source, const std::string &what, size_t offset)
{
    throw ConfigError(source + ": " + what + " at byte " +
                          std::to_string(offset),
                      __FILE__, __LINE__);
}

class JsonParser
{
  public:
    JsonParser(const std::string &src, const std::string &name)
        : s(src), source(name)
    {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        ws();
        if (p != s.size())
            fail("trailing garbage after JSON value");
        return v;
    }

  private:
    const std::string &s;
    const std::string &source;
    size_t p = 0;

    [[noreturn]] void
    fail(const std::string &what)
    {
        failAt(source, what, p);
    }

    void
    ws()
    {
        while (p < s.size() && std::isspace(static_cast<unsigned char>(s[p])))
            ++p;
    }

    char
    peek()
    {
        if (p >= s.size())
            fail("unexpected end of input");
        return s[p];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++p;
    }

    bool
    eat(char c)
    {
        if (p < s.size() && s[p] == c) {
            ++p;
            return true;
        }
        return false;
    }

    JsonValue
    value()
    {
        ws();
        char c = peek();
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == 't' || c == 'f')
            return boolean();
        if (c == 'n') {
            JsonValue v;
            v.offset = p;
            literal("null");
            return v;
        }
        return number();
    }

    void
    literal(const char *word)
    {
        for (const char *q = word; *q; ++q)
            if (p >= s.size() || s[p++] != *q)
                fail(std::string("bad literal (expected ") + word + ")");
    }

    JsonValue
    boolean()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        v.offset = p;
        if (peek() == 't') {
            literal("true");
            v.boolean = true;
        } else {
            literal("false");
        }
        return v;
    }

    JsonValue
    number()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        v.offset = p;
        size_t start = p;
        if (eat('-')) {}
        while (p < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[p])) || s[p] == '.' ||
                s[p] == 'e' || s[p] == 'E' || s[p] == '+' ||
                s[p] == '-'))
            ++p;
        if (p == start)
            fail("expected a number");
        v.text = s.substr(start, p - start);
        return v;
    }

    JsonValue
    string()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.offset = p;
        expect('"');
        while (true) {
            if (p >= s.size())
                fail("unterminated string");
            char c = s[p++];
            if (c == '"')
                break;
            if (c == '\\') {
                if (p >= s.size())
                    fail("unterminated escape");
                char e = s[p++];
                switch (e) {
                  case '"': v.text += '"'; break;
                  case '\\': v.text += '\\'; break;
                  case '/': v.text += '/'; break;
                  case 'n': v.text += '\n'; break;
                  case 'r': v.text += '\r'; break;
                  case 't': v.text += '\t'; break;
                  case 'b': v.text += '\b'; break;
                  case 'f': v.text += '\f'; break;
                  case 'u': {
                    if (p + 4 > s.size())
                        fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = s[p++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= unsigned(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= unsigned(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= unsigned(h - 'A' + 10);
                        else
                            fail("bad \\u escape");
                    }
                    // Our writers only ever escape control characters;
                    // encode the code point as UTF-8 for completeness.
                    if (code < 0x80) {
                        v.text += char(code);
                    } else if (code < 0x800) {
                        v.text += char(0xc0 | (code >> 6));
                        v.text += char(0x80 | (code & 0x3f));
                    } else {
                        v.text += char(0xe0 | (code >> 12));
                        v.text += char(0x80 | ((code >> 6) & 0x3f));
                        v.text += char(0x80 | (code & 0x3f));
                    }
                    break;
                  }
                  default: fail("unknown escape");
                }
            } else {
                v.text += c;
            }
        }
        return v;
    }

    JsonValue
    array()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        v.offset = p;
        expect('[');
        ws();
        if (eat(']'))
            return v;
        while (true) {
            v.items.push_back(value());
            ws();
            if (eat(']'))
                return v;
            expect(',');
        }
    }

    JsonValue
    object()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        v.offset = p;
        expect('{');
        ws();
        if (eat('}'))
            return v;
        while (true) {
            ws();
            JsonValue key = string();
            ws();
            expect(':');
            v.members.emplace_back(std::move(key.text), value());
            ws();
            if (eat('}'))
                return v;
            expect(',');
        }
    }
};

} // namespace

JsonValue
parseJson(const std::string &text, const std::string &source)
{
    return JsonParser(text, source).parse();
}

const JsonValue &
require(const JsonValue &obj, const std::string &key,
        const std::string &source)
{
    const JsonValue *v = obj.find(key);
    if (!v)
        failAt(source, "missing field '" + key + "'", obj.offset);
    return *v;
}

uint64_t
asU64(const JsonValue &v, const std::string &key, const std::string &source)
{
    if (v.kind != JsonValue::Kind::Number)
        failAt(source, "field '" + key + "' is not a number", v.offset);
    try {
        return std::stoull(v.text);
    } catch (const std::exception &) {
        failAt(source, "field '" + key + "' is not a valid u64 ('" +
                           v.text + "')",
               v.offset);
    }
}

int64_t
asI64(const JsonValue &v, const std::string &key, const std::string &source)
{
    if (v.kind != JsonValue::Kind::Number)
        failAt(source, "field '" + key + "' is not a number", v.offset);
    try {
        return std::stoll(v.text);
    } catch (const std::exception &) {
        failAt(source, "field '" + key + "' is not a valid i64 ('" +
                           v.text + "')",
               v.offset);
    }
}

double
asDouble(const JsonValue &v, const std::string &key,
         const std::string &source)
{
    if (v.kind != JsonValue::Kind::Number)
        failAt(source, "field '" + key + "' is not a number", v.offset);
    try {
        return std::stod(v.text);
    } catch (const std::exception &) {
        failAt(source, "field '" + key + "' is not a valid double ('" +
                           v.text + "')",
               v.offset);
    }
}

std::string
asString(const JsonValue &v, const std::string &key,
         const std::string &source)
{
    if (v.kind != JsonValue::Kind::String)
        failAt(source, "field '" + key + "' is not a string", v.offset);
    return v.text;
}

} // namespace last::jsonin
