/**
 * @file
 * Fundamental scalar types shared by every subsystem.
 */

#ifndef LAST_COMMON_TYPES_HH
#define LAST_COMMON_TYPES_HH

#include <cstdint>

namespace last
{

/** Simulated time, measured in GPU core cycles. */
using Cycle = uint64_t;

/** Simulated (virtual) byte address. */
using Addr = uint64_t;

/** Number of work-items executing in lock step per wavefront. */
constexpr unsigned WavefrontSize = 64;

/** SIMD lanes per SIMD engine; a WF issues over WavefrontSize/SimdWidth
 *  cycles (4 for the GCN3-like configuration). */
constexpr unsigned SimdWidth = 16;

/** An invalid/unset cycle marker. */
constexpr Cycle InvalidCycle = ~Cycle(0);

/** An invalid/unset address marker. */
constexpr Addr InvalidAddr = ~Addr(0);

} // namespace last

#endif // LAST_COMMON_TYPES_HH
