#include "common/atomic_file.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>

#include <fcntl.h>
#include <unistd.h>

#include "common/error.hh"

namespace last
{

namespace
{

[[noreturn]] void
throwIo(const std::string &path, const char *op, int err)
{
    throw ConfigError(std::string("atomic write of ") + path + " failed: " +
                          op + ": " + std::strerror(err),
                      __FILE__, __LINE__);
}

// fsync the directory containing `path` so the rename itself is
// durable. Best-effort: some filesystems refuse O_RDONLY directory
// fsync; that weakens durability, not atomicity, so don't fail.
void
syncParentDir(const std::string &path)
{
    std::string dir = ".";
    auto slash = path.find_last_of('/');
    if (slash != std::string::npos)
        dir = slash == 0 ? "/" : path.substr(0, slash);
    int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0)
        return;
    ::fsync(fd);
    ::close(fd);
}

} // namespace

void
atomicWriteFile(const std::string &path, const std::string &content)
{
    // Same-directory temp so the rename never crosses a filesystem.
    // The pid suffix keeps concurrent writers (e.g. an orphaned worker
    // racing its replacement) from stomping each other's staging file;
    // whoever renames last wins, and equal-content writers are benign.
    std::string tmp = path + ".tmp." + std::to_string(::getpid());

    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        throwIo(path, "open temp", errno);

    const char *p = content.data();
    size_t left = content.size();
    while (left > 0) {
        ssize_t n = ::write(fd, p, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            int err = errno;
            ::close(fd);
            ::unlink(tmp.c_str());
            throwIo(path, "write", err);
        }
        p += n;
        left -= static_cast<size_t>(n);
    }

    if (::fsync(fd) != 0) {
        int err = errno;
        ::close(fd);
        ::unlink(tmp.c_str());
        throwIo(path, "fsync", err);
    }
    if (::close(fd) != 0) {
        int err = errno;
        ::unlink(tmp.c_str());
        throwIo(path, "close", err);
    }

    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        int err = errno;
        ::unlink(tmp.c_str());
        throwIo(path, "rename", err);
    }

    syncParentDir(path);
}

void
atomicWriteFile(const std::string &path,
                const std::function<void(std::ostream &)> &producer)
{
    std::ostringstream os;
    producer(os);
    if (!os)
        throwIo(path, "produce content", EIO);
    atomicWriteFile(path, os.str());
}

} // namespace last
