/**
 * @file
 * Simulation configuration; defaults reproduce Table 4 of the paper.
 */

#ifndef LAST_COMMON_CONFIG_HH
#define LAST_COMMON_CONFIG_HH

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string>

namespace last
{

namespace sim
{
struct FaultPlan; // sim/faultinject.hh
}

namespace obs
{
class TraceSink; // obs/trace.hh
}

/** Which instruction-set abstraction a kernel executes at. */
enum class IsaKind
{
    HSAIL, ///< the SIMT intermediate language
    GCN3,  ///< the AMD-flavored machine ISA
    PTXL,  ///< the NVIDIA-flavored machine ISA (SASS-like)
};

const char *isaName(IsaKind isa);

/** Reverse of isaName, case-insensitive ("hsail" == "HSAIL"); returns
 *  false (out untouched) for unknown names. Shared by every reader
 *  that consumes an ISA tag so the accepted spellings never drift. */
bool isaFromName(const std::string &name, IsaKind &out);

/** All simulated ISAs, in canonical (report/cache) order. */
inline constexpr IsaKind AllIsas[] = {IsaKind::HSAIL, IsaKind::GCN3,
                                      IsaKind::PTXL};
inline constexpr unsigned NumIsas = 3;

/** Cache geometry + latency parameters. */
struct CacheConfig
{
    uint64_t sizeBytes;
    unsigned lineBytes;
    unsigned associativity; ///< 0 means fully associative
    unsigned hitLatency;    ///< cycles
    bool writeBack;         ///< false => write-through
    unsigned mshrs;         ///< outstanding distinct lines
};

/**
 * Table 4 system configuration.
 *
 * 8 CUs at 800 MHz, 4 SIMD units each, 40 WF slots (64 lanes),
 * oldest-job-first scheduling, 16 kB fully-associative L1D per CU,
 * 2,048-entry VRF + 800-entry SRF per CU, shared 32 kB 8-way I$ and
 * 512 kB 16-way write-through L2 per 4 CUs, 32-channel 500 MHz DDR3.
 */
struct GpuConfig
{
    unsigned numCus = 8;
    unsigned simdPerCu = 4;
    unsigned wfSlotsPerCu = 40;
    unsigned wavefrontSize = 64;
    unsigned simdWidth = 16;

    /// Physical vector registers per CU (each 64 lanes x 32 bit).
    unsigned vrfEntriesPerCu = 2048;
    /// Physical scalar registers per CU.
    unsigned srfEntriesPerCu = 800;
    /// VRF banks per SIMD; operands in the same bank conflict.
    unsigned vrfBanks = 4;
    /// Architectural limits per wavefront.
    unsigned maxVgprsPerWfGcn3 = 256;
    unsigned maxSgprsPerWfGcn3 = 102;
    unsigned maxVregsPerWfHsail = 2048;
    /// PTXL general registers per thread (SASS-like: one flat R file,
    /// no scalar registers; predicates are a separate 8-entry file).
    unsigned maxRegsPerWfPtxl = 256;

    /// LDS bytes per CU.
    uint64_t ldsBytesPerCu = 64 * 1024;

    /// Per-WF instruction buffer capacity, in decoded instructions.
    unsigned ibEntries = 12;
    /// Instructions brought in per fetch (one I$ line's worth).
    unsigned fetchWidth = 4;

    CacheConfig l1d = {16 * 1024, 64, 0, 4, true, 16};
    /// The paper's Table 4 lists a 32 kB I$, but the text twice calls
    /// it 16 kB (and LULESH's GCN3 footprint "significantly exceeds
    /// the L1 instruction cache size of 16KB"); we follow the text.
    CacheConfig l1i = {16 * 1024, 64, 8, 4, false, 8};
    CacheConfig scalarD = {16 * 1024, 64, 8, 4, false, 8};
    CacheConfig l2 = {512 * 1024, 64, 16, 24, false, 32};

    /// CUs sharing one L1I/scalar-D$/L2 cluster.
    unsigned cusPerCluster = 4;

    unsigned dramChannels = 32;
    unsigned dramLatency = 160;      ///< core cycles to first beat
    unsigned dramCyclesPerLine = 4;  ///< channel occupancy per 64 B line

    /// Functional-unit latencies (cycles of result availability).
    unsigned valuLatency = 4;   ///< plus the 4-cycle issue over 16 lanes
    unsigned valuLatencyF64 = 8;
    unsigned saluLatency = 1;
    unsigned branchLatency = 1;
    unsigned ldsLatency = 4;

    /// GPU core clock, for reporting only (cycles are the time unit).
    double clockGhz = 0.8;

    /// Deterministic-latency hazard window the finalizer must cover
    /// with independent instructions or s_nop (see DESIGN.md).
    unsigned valuHazardWindow = 2;

    /// Skip cycles where no CU can fetch, issue, or dispatch (e.g. the
    /// whole GPU is stalled on in-flight memory). Statistic-identical
    /// to full per-cycle ticking; disable to cross-check that.
    bool fastForwardIdle = true;

    /// Execute through the legacy virtual-dispatch engine
    /// (Instruction::execute) instead of the predecoded
    /// direct-threaded handlers. Bit-identical results either way —
    /// the differential suite (tests/test_exec_engine.cc) enforces it.
    /// Defaults from the LAST_EXEC_REFERENCE environment variable (or
    /// the -DLAST_EXEC_REFERENCE=ON build); see defaultExecReference().
    bool execReference = defaultExecReference();

    static bool defaultExecReference();

    /** @{ Forward-progress watchdog (see DESIGN.md §"Error model").
     * runToCompletion() throws a DeadlockError carrying a
     * per-wavefront state dump when either limit is exceeded. The
     * stall limit is the deadlock detector proper ("no instruction
     * fetched, issued, or dispatched anywhere on the GPU for N
     * cycles" — any legitimate stall resolves within a DRAM
     * round-trip, orders of magnitude sooner); the cycle budget is a
     * backstop against livelock. Both are fast-forward aware: idle
     * skips never jump past a watchdog deadline. 0 disables. */
    uint64_t watchdogStallCycles = 1000000;
    uint64_t watchdogMaxCycles = 2000000000ull;
    /** @} */

    /** Absolute wall-clock deadline for runToCompletion() (third
     *  watchdog dimension, for schedulers: `last_sweep run
     *  --timeout-ms` and the orchestrator's in-worker belt-and-braces
     *  limit). Checked every 4096 ticks so the steady_clock read never
     *  shows up in profiles; on expiry the run fails like any deadlock
     *  (DeadlockError -> quarantine row), keeping artifacts
     *  deterministic in *content shape* even though which runs time
     *  out is inherently wall-clock dependent. Default (epoch) =
     *  disabled. */
    std::chrono::steady_clock::time_point wallDeadline{};

    /** Deterministic fault-injection plan (not owned; nullptr = no
     *  faults). See sim/faultinject.hh. */
    const sim::FaultPlan *faultPlan = nullptr;

    /** Structured-trace sink (not owned; nullptr = tracing off). The
     *  model wires per-component streams into it at construction and
     *  records execute-path events; see obs/trace.hh. Observational
     *  only — never changes results or statistics. */
    obs::TraceSink *trace = nullptr;

    /** Human-readable one-line summary (printed by bench headers). */
    std::string summary() const;
};

std::ostream &operator<<(std::ostream &os, const GpuConfig &cfg);

} // namespace last

#endif // LAST_COMMON_CONFIG_HH
