#include "common/socket.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/error.hh"

namespace last::net
{

namespace
{

[[noreturn]] void
failEp(const Endpoint &ep, const std::string &what)
{
    throw ConfigError(ep.describe() + ": " + what + ": " +
                          std::strerror(errno),
                      __FILE__, __LINE__);
}

/** sockaddr_un for `path`, rejecting paths that do not fit (silent
 *  truncation would bind a different file than the one we unlink). */
sockaddr_un
unixAddr(const Endpoint &ep)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (ep.path.size() >= sizeof(addr.sun_path))
        throw ConfigError(ep.describe() + ": socket path longer than " +
                              std::to_string(sizeof(addr.sun_path) - 1) +
                              " bytes",
                          __FILE__, __LINE__);
    std::memcpy(addr.sun_path, ep.path.c_str(), ep.path.size() + 1);
    return addr;
}

sockaddr_in
tcpAddr(const Endpoint &ep)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(ep.port);
    if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1)
        throw ConfigError(ep.describe() + ": bad IPv4 address '" +
                              ep.host + "'",
                          __FILE__, __LINE__);
    return addr;
}

} // namespace

std::string
Endpoint::describe() const
{
    if (kind == Kind::Unix)
        return "unix:" + path;
    return "tcp:" + host + ":" + std::to_string(port);
}

void
ListenSocket::listenOn(const Endpoint &ep)
{
    closeAndUnlink();
    if (ep.kind == Endpoint::Kind::Unix) {
        sockaddr_un addr = unixAddr(ep);
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd_ < 0)
            failEp(ep, "socket");
        ::unlink(ep.path.c_str()); // stale file from a crashed daemon
        if (::bind(fd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) < 0) {
            ::close(fd_);
            fd_ = -1;
            failEp(ep, "bind");
        }
        unixPath_ = ep.path;
    } else {
        sockaddr_in addr = tcpAddr(ep);
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd_ < 0)
            failEp(ep, "socket");
        int one = 1;
        ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(fd_, reinterpret_cast<sockaddr *>(&addr),
                   sizeof(addr)) < 0) {
            ::close(fd_);
            fd_ = -1;
            failEp(ep, "bind");
        }
        sockaddr_in bound{};
        socklen_t len = sizeof(bound);
        if (::getsockname(fd_, reinterpret_cast<sockaddr *>(&bound),
                          &len) == 0)
            boundPort_ = ntohs(bound.sin_port);
    }
    if (::listen(fd_, 64) < 0) {
        int saved = errno;
        closeAndUnlink();
        errno = saved;
        failEp(ep, "listen");
    }
}

int
ListenSocket::acceptConn()
{
    while (fd_ >= 0) {
        int c = ::accept(fd_, nullptr, nullptr);
        if (c >= 0)
            return c;
        if (errno == EINTR)
            continue;
        return -1; // shut down (or unrecoverable): the stop signal
    }
    return -1;
}

void
ListenSocket::interrupt()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

void
ListenSocket::closeAndUnlink()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    if (!unixPath_.empty()) {
        ::unlink(unixPath_.c_str());
        unixPath_.clear();
    }
    boundPort_ = 0;
}

LineConn::ReadStatus
LineConn::readLine(std::string &line, size_t maxBytes)
{
    bool discarding = false;
    while (true) {
        size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            if (discarding || nl > maxBytes) {
                buf_.erase(0, nl + 1);
                return ReadStatus::Oversized;
            }
            line.assign(buf_, 0, nl);
            buf_.erase(0, nl + 1);
            return ReadStatus::Line;
        }
        if (discarding || buf_.size() > maxBytes) {
            // Too long without a newline: drop what we have and keep
            // consuming until the terminator so framing survives —
            // bounded memory no matter how long the line runs.
            discarding = true;
            buf_.clear();
        }

        char chunk[4096];
        ssize_t n;
        do {
            n = ::recv(fd_, chunk, sizeof(chunk), 0);
        } while (n < 0 && errno == EINTR);
        if (n <= 0)
            return ReadStatus::Eof;
        buf_.append(chunk, size_t(n));
    }
}

bool
LineConn::writeAll(const std::string &data)
{
    size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += size_t(n);
    }
    return true;
}

void
LineConn::shutdownConn()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

void
LineConn::closeConn()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

int
connectEndpoint(const Endpoint &ep)
{
    int fd;
    if (ep.kind == Endpoint::Kind::Unix) {
        sockaddr_un addr = unixAddr(ep);
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            failEp(ep, "socket");
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) < 0) {
            int saved = errno;
            ::close(fd);
            errno = saved;
            failEp(ep, "connect");
        }
    } else {
        sockaddr_in addr = tcpAddr(ep);
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            failEp(ep, "socket");
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) < 0) {
            int saved = errno;
            ::close(fd);
            errno = saved;
            failEp(ep, "connect");
        }
    }
    return fd;
}

} // namespace last::net
