/**
 * @file
 * A small gem5-flavoured statistics framework.
 *
 * Statistics register themselves with a Group; groups nest, and the
 * root group can dump `group.stat value` lines or be queried
 * programmatically (used by the benchmark harness to build the paper's
 * tables).
 */

#ifndef LAST_COMMON_STATS_HH
#define LAST_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace last::stats
{

class Group;

/** Base class for all statistics; registers with a parent group. */
class Stat
{
  public:
    Stat(Group *parent, std::string name, std::string desc);
    virtual ~Stat() = default;

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    const std::string &name() const { return statName; }
    const std::string &desc() const { return statDesc; }

    /** Primary scalar view of the statistic (used for table output). */
    virtual double value() const = 0;

    /** Statistic flavour, for machine-readable export ("scalar",
     *  "average", "histogram"). */
    virtual const char *kindName() const { return "scalar"; }

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

    /** Print `name value # desc` (plus any extra lines). */
    virtual void print(std::ostream &os, const std::string &prefix) const;

  private:
    std::string statName;
    std::string statDesc;
};

/** A simple accumulating counter. */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator+=(double v) { val += v; return *this; }
    Scalar &operator++() { val += 1; return *this; }
    void operator++(int) { val += 1; }
    void set(double v) { val = v; }

    double value() const override { return val; }
    void reset() override { val = 0; }

  private:
    double val = 0;
};

/** Mean of samples (e.g., per-access uniqueness ratios). */
class Average : public Stat
{
  public:
    using Stat::Stat;

    void sample(double v) { sum += v; ++count; }
    void sample(double v, double weight) { sum += v * weight;
                                           count += weight; }

    double value() const override { return count ? sum / count : 0; }
    uint64_t samples() const { return static_cast<uint64_t>(count); }
    const char *kindName() const override { return "average"; }
    void reset() override { sum = 0; count = 0; }

  private:
    double sum = 0;
    double count = 0;
};

/**
 * Log2-bucketed histogram of non-negative integer samples; supports an
 * approximate median (exact bucket, linear interpolation inside it),
 * which is what the reuse-distance figure needs.
 */
class Histogram : public Stat
{
  public:
    static constexpr unsigned NumBuckets = 48;

    using Stat::Stat;

    void sample(uint64_t v, uint64_t count = 1);

    /** Fold another histogram's buckets into this one. */
    void merge(const Histogram &other);

    uint64_t samples() const { return total; }
    double mean() const { return total ? sum / double(total) : 0; }
    double median() const;
    uint64_t maxSample() const { return maxVal; }

    /** Median is the headline value. */
    double value() const override { return median(); }
    const char *kindName() const override { return "histogram"; }
    void reset() override;
    void print(std::ostream &os, const std::string &prefix) const override;

    /** @{ Bucket introspection for the stats exporter (obs/). */
    uint64_t bucketCount(unsigned b) const { return buckets[b]; }
    static uint64_t bucketLow(unsigned b);
    static uint64_t bucketHigh(unsigned b);
    /** @} */

  private:
    static unsigned bucketFor(uint64_t v);

    uint64_t buckets[NumBuckets] = {};
    uint64_t total = 0;
    uint64_t maxVal = 0;
    double sum = 0;
};

/** A named collection of statistics and child groups. */
class Group
{
  public:
    explicit Group(std::string name, Group *parent = nullptr);
    virtual ~Group();

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    const std::string &name() const { return groupName; }

    void addStat(Stat *stat);
    void addChild(Group *child);
    void removeChild(Group *child);

    /** Recursively reset all stats. */
    void resetStats();

    /** Recursively print all stats as `path.name value` lines. */
    void printStats(std::ostream &os, const std::string &prefix = "") const;

    /** Find a stat by dotted path relative to this group. */
    const Stat *find(const std::string &path) const;

    /** Sum of `name` over this group and all descendants that have it. */
    double sumOver(const std::string &name) const;

    const std::vector<Stat *> &localStats() const { return statList; }
    const std::vector<Group *> &children() const { return childList; }

  private:
    std::string groupName;
    Group *parent;
    std::vector<Stat *> statList;
    std::vector<Group *> childList;
};

} // namespace last::stats

#endif // LAST_COMMON_STATS_HH
