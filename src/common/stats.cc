#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace last::stats
{

Stat::Stat(Group *parent, std::string name, std::string desc)
    : statName(std::move(name)), statDesc(std::move(desc))
{
    if (parent)
        parent->addStat(this);
}

void
Stat::print(std::ostream &os, const std::string &prefix) const
{
    os << prefix << statName << " " << value() << " # " << statDesc << "\n";
}

unsigned
Histogram::bucketFor(uint64_t v)
{
    if (v == 0)
        return 0;
    unsigned b = 64 - static_cast<unsigned>(__builtin_clzll(v));
    return std::min(b, NumBuckets - 1);
}

uint64_t
Histogram::bucketLow(unsigned b)
{
    return b == 0 ? 0 : (uint64_t(1) << (b - 1));
}

uint64_t
Histogram::bucketHigh(unsigned b)
{
    return b == 0 ? 0 : (uint64_t(1) << b) - 1;
}

void
Histogram::sample(uint64_t v, uint64_t count)
{
    buckets[bucketFor(v)] += count;
    total += count;
    sum += double(v) * double(count);
    maxVal = std::max(maxVal, v);
}

void
Histogram::merge(const Histogram &other)
{
    for (unsigned b = 0; b < NumBuckets; ++b)
        buckets[b] += other.buckets[b];
    total += other.total;
    sum += other.sum;
    maxVal = std::max(maxVal, other.maxVal);
}

double
Histogram::median() const
{
    if (total == 0)
        return 0;
    uint64_t half = (total + 1) / 2;
    uint64_t seen = 0;
    for (unsigned b = 0; b < NumBuckets; ++b) {
        if (seen + buckets[b] >= half) {
            // Linear interpolation within the bucket.
            double frac = buckets[b]
                ? double(half - seen) / double(buckets[b]) : 0;
            double lo = double(bucketLow(b));
            double hi = double(bucketHigh(b));
            return lo + frac * (hi - lo);
        }
        seen += buckets[b];
    }
    return double(maxVal);
}

void
Histogram::reset()
{
    std::fill(std::begin(buckets), std::end(buckets), 0);
    total = 0;
    maxVal = 0;
    sum = 0;
}

void
Histogram::print(std::ostream &os, const std::string &prefix) const
{
    os << prefix << name() << "::median " << median() << " # " << desc()
       << "\n";
    os << prefix << name() << "::mean " << mean() << " # " << desc() << "\n";
    os << prefix << name() << "::samples " << samples() << " # " << desc()
       << "\n";
}

Group::Group(std::string name, Group *parent)
    : groupName(std::move(name)), parent(parent)
{
    if (parent)
        parent->addChild(this);
}

Group::~Group()
{
    if (parent)
        parent->removeChild(this);
}

void
Group::addStat(Stat *stat)
{
    statList.push_back(stat);
}

void
Group::addChild(Group *child)
{
    childList.push_back(child);
}

void
Group::removeChild(Group *child)
{
    auto it = std::find(childList.begin(), childList.end(), child);
    if (it != childList.end())
        childList.erase(it);
}

void
Group::resetStats()
{
    for (auto *s : statList)
        s->reset();
    for (auto *c : childList)
        c->resetStats();
}

void
Group::printStats(std::ostream &os, const std::string &prefix) const
{
    std::string path = prefix.empty() ? groupName + "."
                                      : prefix + groupName + ".";
    for (const auto *s : statList)
        s->print(os, path);
    for (const auto *c : childList)
        c->printStats(os, path);
}

const Stat *
Group::find(const std::string &path) const
{
    auto dot = path.find('.');
    if (dot == std::string::npos) {
        for (const auto *s : statList)
            if (s->name() == path)
                return s;
        return nullptr;
    }
    std::string head = path.substr(0, dot);
    std::string tail = path.substr(dot + 1);
    for (const auto *c : childList)
        if (c->name() == head)
            return c->find(tail);
    return nullptr;
}

double
Group::sumOver(const std::string &name) const
{
    double total = 0;
    for (const auto *s : statList)
        if (s->name() == name)
            total += s->value();
    for (const auto *c : childList)
        total += c->sumOver(name);
    return total;
}

} // namespace last::stats
