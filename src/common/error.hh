/**
 * @file
 * The recoverable simulation error model.
 *
 * Every failure the simulator can detect is represented as a value: a
 * `SimError` subclass carrying structured context (what failed, where,
 * and — for deadlocks — a full per-wavefront machine-state dump). The
 * logging macros (`panic`, `fatal`) construct and throw these, so a
 * failed simulation in a parallel sweep is an exception the driver can
 * quarantine instead of a process death that takes the whole sweep
 * down.
 *
 * Hierarchy:
 *   SimError                 (base; kind tag + message + origin)
 *    +- InvariantError       panic(): a simulator invariant broke
 *    +- ConfigError          fatal(): the user asked the unsupportable
 *    +- MemoryError          functional-memory range violations
 *    +- DeadlockError        watchdog trip, carries a DeadlockInfo
 *
 * An opt-in abort mode (setErrorMode(ErrorMode::Abort), or the
 * LAST_ABORT_ON_ERROR environment variable) restores the classic
 * gem5-style CLI behaviour: panic() calls abort() and fatal() calls
 * exit(1) after printing, which is what batch users pre-dating the
 * throwable hierarchy expect from a standalone binary.
 */

#ifndef LAST_COMMON_ERROR_HH
#define LAST_COMMON_ERROR_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hh"

namespace last
{

/** What panic()/fatal() do after printing the message. */
enum class ErrorMode
{
    Throw, ///< throw the SimError subclass (default; sweep-safe)
    Abort, ///< abort()/exit(1) like classic gem5 CLI tools
};

/** Process-wide error disposition. Initialized from the
 *  LAST_ABORT_ON_ERROR environment variable on first query. */
ErrorMode errorMode();
void setErrorMode(ErrorMode mode);

/** Coarse classification, stable across what() formatting changes. */
enum class ErrorKind
{
    Invariant, ///< simulator bug (panic)
    Config,    ///< unsupportable request (fatal)
    Memory,    ///< functional-memory range violation
    Deadlock,  ///< forward-progress watchdog trip
    Mismatch,  ///< cross-ISA result disagreement
};

const char *errorKindName(ErrorKind kind);

class SimError : public std::runtime_error
{
  public:
    SimError(ErrorKind kind, const std::string &msg,
             const char *file = nullptr, int line = 0);

    ErrorKind kind() const { return kind_; }
    const char *kindName() const { return errorKindName(kind_); }
    /** The bare message, without the "kind: " prefix what() carries. */
    const std::string &message() const { return msg_; }
    /** Source location of the throw site ("" / 0 when unknown). */
    const std::string &file() const { return file_; }
    int line() const { return line_; }

  private:
    ErrorKind kind_;
    std::string msg_;
    std::string file_;
    int line_;
};

/** panic(): an internal invariant was violated (simulator bug). */
class InvariantError : public SimError
{
  public:
    InvariantError(const std::string &msg, const char *file = nullptr,
                   int line = 0)
        : SimError(ErrorKind::Invariant, msg, file, line)
    {}
};

/** fatal(): the user asked for something unsupportable. */
class ConfigError : public SimError
{
  public:
    ConfigError(const std::string &msg, const char *file = nullptr,
                int line = 0)
        : SimError(ErrorKind::Config, msg, file, line)
    {}
};

/** An out-of-range or wrap-around functional-memory access. */
class MemoryError : public SimError
{
  public:
    MemoryError(const std::string &msg, Addr addr, uint64_t size,
                bool isWrite, const std::string &owner)
        : SimError(ErrorKind::Memory, msg), faultAddr(addr),
          accessSize(size), isWrite(isWrite), owner(owner)
    {}

    Addr faultAddr;     ///< first byte of the offending access
    uint64_t accessSize; ///< bytes requested
    bool isWrite;
    std::string owner;  ///< workload/context that issued the access
};

/** One wavefront's machine state at watchdog-trip time. */
struct WavefrontDump
{
    unsigned cu = 0;          ///< CU index within the GPU
    std::string cuName;       ///< e.g. "cu_3"
    unsigned slot = 0;        ///< WF slot within the CU
    unsigned wgId = 0;        ///< workgroup the WF belongs to
    std::string kernel;       ///< kernel name
    Addr pc = 0;              ///< byte offset of the next instruction
    uint64_t execMask = 0;    ///< active-lane mask
    unsigned vmCnt = 0;       ///< outstanding vector-memory ops (GCN3)
    unsigned lgkmCnt = 0;     ///< outstanding scalar/LDS ops (GCN3)
    bool atBarrier = false;
    unsigned wgWfsAtBarrier = 0; ///< barrier membership: arrived ...
    unsigned wgWfsTotal = 0;     ///< ... out of this many
    size_t rsDepth = 0;       ///< reconvergence-stack depth (HSAIL)
    unsigned ibCount = 0;     ///< decoded instructions buffered
    bool fetchInFlight = false;
    Cycle blockedUntil = 0;   ///< s_nop wait-state gate
    bool wedged = false;      ///< fault-injected wedge flag

    std::string format() const;
};

/** Everything the watchdog saw when it tripped. */
struct DeadlockInfo
{
    Cycle cycle = 0;             ///< when the watchdog fired
    Cycle lastProgressCycle = 0; ///< last fetch/issue/dispatch
    uint64_t instsIssued = 0;    ///< GPU-wide dynamic instructions
    std::string reason;          ///< "no progress in N cycles" / budget
    std::vector<WavefrontDump> wavefronts; ///< every live wavefront

    /** Multi-line human-readable dump (one line per wavefront). */
    std::string format() const;
};

/** The forward-progress watchdog tripped. */
class DeadlockError : public SimError
{
  public:
    explicit DeadlockError(DeadlockInfo info);

    const DeadlockInfo &info() const { return info_; }
    /** The formatted per-wavefront dump (also embedded in what()). */
    std::string dump() const { return info_.format(); }

  private:
    DeadlockInfo info_;
};

} // namespace last

#endif // LAST_COMMON_ERROR_HH
