/**
 * @file
 * Concrete GCN3 instruction. One class covers all formats; named
 * factories build well-formed instances and the finalizer/assembler is
 * the only producer (plus tests).
 */

#ifndef LAST_GCN3_INST_HH
#define LAST_GCN3_INST_HH

#include <cstdint>

#include "arch/instruction.hh"
#include "arch/wf_state.hh"
#include "gcn3/opcodes.hh"

namespace last::gcn3
{

/** A source operand: VGPR, SGPR (incl. VCC/EXEC), inline constant, or
 *  a 32-bit literal (which widens the encoding by 4 bytes). */
struct Src
{
    enum class Kind : uint8_t
    {
        None, Vgpr, Sgpr, InlineConst, Literal,
        InlineConstF64, ///< value holds the high 32 bits of the double
    };

    Kind kind = Kind::None;
    uint16_t reg = 0;
    uint32_t value = 0;

    static Src vgpr(unsigned r) { return {Kind::Vgpr, uint16_t(r), 0}; }
    static Src sgpr(unsigned r) { return {Kind::Sgpr, uint16_t(r), 0}; }
    static Src vcc() { return sgpr(arch::RegVccLo); }
    static Src execMask() { return sgpr(arch::RegExecLo); }

    /** Integer immediate: inline if in [-16, 64], else literal. */
    static Src
    imm(int64_t v)
    {
        if (v >= -16 && v <= 64)
            return {Kind::InlineConst, 0, uint32_t(int32_t(v))};
        return {Kind::Literal, 0, uint32_t(int32_t(v))};
    }

    /** Raw 32-bit literal (e.g., float bits). Inline-encodes the
     *  hardware's special float constants. */
    static Src
    bits32(uint32_t b)
    {
        switch (b) {
          case 0x00000000u: // 0.0 / 0
          case 0x3f000000u: // 0.5f
          case 0xbf000000u:
          case 0x3f800000u: // 1.0f
          case 0xbf800000u:
          case 0x40000000u: // 2.0f
          case 0xc0000000u:
          case 0x40800000u: // 4.0f
          case 0xc0800000u:
            return {Kind::InlineConst, 0, b};
          default:
            return {Kind::Literal, 0, b};
        }
    }

    /** Double-precision inline constant; only the hardware's special
     *  values (±0.5, ±1.0, ±2.0, ±4.0) are representable. */
    static Src
    f64const(double v)
    {
        uint64_t b = __builtin_bit_cast(uint64_t, v);
        if ((b & 0xffffffffull) != 0)
            return {Kind::Literal, 0, 0}; // unreachable for legal values
        return {Kind::InlineConstF64, 0, uint32_t(b >> 32)};
    }

    bool isLiteral() const { return kind == Kind::Literal; }
    bool valid() const { return kind != Kind::None; }
};

/** Destination operand. */
struct Dst
{
    enum class Kind : uint8_t { None, Vgpr, Sgpr };

    Kind kind = Kind::None;
    uint16_t reg = 0;

    static Dst none() { return {}; }
    static Dst vgpr(unsigned r) { return {Kind::Vgpr, uint16_t(r)}; }
    static Dst sgpr(unsigned r) { return {Kind::Sgpr, uint16_t(r)}; }
    static Dst vcc() { return sgpr(arch::RegVccLo); }
    static Dst execMask() { return sgpr(arch::RegExecLo); }

    bool valid() const { return kind != Kind::None; }
};

class Gcn3Inst : public arch::Instruction
{
  public:
    /** @{ Named factories (the assembler API). */
    static Gcn3Inst *sop1(Gcn3Op op, Dst dst, Src src);
    static Gcn3Inst *sop2(Gcn3Op op, Dst dst, Src s0, Src s1);
    static Gcn3Inst *sopc(Gcn3Op op, Src s0, Src s1);
    static Gcn3Inst *sopk(Gcn3Op op, Dst dst, int16_t k);
    static Gcn3Inst *sopp(Gcn3Op op, uint32_t imm = 0);
    static Gcn3Inst *branch(Gcn3Op op, size_t target_index);
    static Gcn3Inst *waitcnt(int vm, int lgkm);
    static Gcn3Inst *smem(Gcn3Op op, Dst dst, unsigned sbase,
                          uint32_t offset);
    static Gcn3Inst *vop1(Gcn3Op op, Dst dst, Src src);
    static Gcn3Inst *vop2(Gcn3Op op, Dst dst, Src s0, Src s1);
    static Gcn3Inst *vop3(Gcn3Op op, Dst dst, Src s0, Src s1, Src s2,
                          uint8_t neg_mask = 0);
    static Gcn3Inst *vcmp(Gcn3Op op, Src s0, Src s1);
    static Gcn3Inst *flat(Gcn3Op op, Dst dst, unsigned addr_vgpr,
                          unsigned data_vgpr = 0);
    static Gcn3Inst *ds(Gcn3Op op, Dst dst, unsigned addr_vgpr,
                        unsigned data_vgpr, uint32_t offset);
    /** @} */

    void execute(arch::WfState &wf) const override;
    std::string disassemble() const override;
    arch::FuType fuType() const override;
    unsigned sizeBytes() const override;

    /** Install the direct-threaded handler (src/gcn3/exec.cc). */
    void predecode(arch::ExecMeta &m) const override;

    Gcn3Op op() const { return opc; }
    Format format() const { return opFormat(opc); }

    /** @{ Branch-target plumbing: built as instruction indices,
     * resolved to byte offsets by resolveBranchTargets(). */
    size_t targetIndex() const { return targetIdx; }
    void setTargetIndex(size_t idx) { targetIdx = idx; }
    void setTargetOffset(Addr off) { targetOff = off; }
    Addr targetOffset() const { return targetOff; }
    /** @} */

    /** s_waitcnt thresholds (64 = don't care). */
    unsigned vmThreshold() const { return simm & 0xff; }
    unsigned lgkmThreshold() const { return (simm >> 8) & 0xff; }

    /** SOPP immediate (s_nop wait states, etc.). */
    uint32_t soppImm() const { return simm; }

  private:
    /** The direct-threaded handlers (exec.cc) read operand fields and
     *  reuse the private executors non-virtually on cold paths. */
    friend struct Gcn3Exec;

    explicit Gcn3Inst(Gcn3Op op);

    void finalizeOperands();
    bool isWide(unsigned srcIdx) const;    ///< 64-bit source?
    unsigned dstWidth() const;             ///< 32-bit regs written

    /** Read a source: lane used only for Vgpr kinds. */
    uint32_t readSrc32(const arch::WfState &wf, unsigned i,
                       unsigned lane) const;
    uint64_t readSrc64(const arch::WfState &wf, unsigned i,
                       unsigned lane) const;

    void executeSalu(arch::WfState &wf) const;
    void executeValu(arch::WfState &wf) const;
    void executeVcmp(arch::WfState &wf) const;
    void executeSmem(arch::WfState &wf) const;
    void executeFlat(arch::WfState &wf) const;
    void executeDs(arch::WfState &wf) const;
    void executeSopp(arch::WfState &wf) const;

    Gcn3Op opc;
    Dst dst;
    Src srcs[3];
    uint8_t negMask = 0; ///< VOP3 floating-point negate modifiers
    uint32_t simm = 0;   ///< SOPK/SOPP constant, SMEM/DS offset
    size_t targetIdx = 0;
    Addr targetOff = InvalidAddr;
};

/** Patch all branch targets after the kernel is sealed. */
void resolveBranchTargets(arch::KernelCode &code);

} // namespace last::gcn3

#endif // LAST_GCN3_INST_HH
