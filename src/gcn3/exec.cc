/**
 * @file
 * Direct-threaded execution handlers for GCN3.
 *
 * Gcn3Inst::predecode resolves each static instruction to one of the
 * flat handlers below. The hot VALU and VOPC op classes get templated
 * lane kernels, one instantiation per opcode, fed by *resolved operand
 * rows*: each source is turned into a stride-1 pointer over 64 lanes
 * up front (a VGPR row directly; SGPRs and constants broadcast into a
 * thread-local scratch row; the VOP3 negate modifier folded in), so
 * the inner loop is a branchless elementwise map the compiler can
 * autovectorize. Active lanes iterate ctz-style (the probes.hh idiom)
 * with a plain 0..63 loop when the exec mask is full. FLAT/DS/SMEM
 * build their MemAccess in place inside wf.pendingAccess (no 600-byte
 * copies); SALU/SOPP and the cold VALU tail reuse the unchanged
 * reference executors non-virtually.
 *
 * Correctness contract: bit-identical to Gcn3Inst::execute(). The
 * same per-lane scalar expressions run in the same ascending lane
 * order (so overlapping stores and atomics land identically), SGPR
 * broadcast is exact because no VALU op writes scalar state mid-loop,
 * and the differential suite in tests/test_exec_engine.cc compares
 * every workload field for field against the reference engine.
 */

#include <bit>
#include <cmath>

#include "arch/exec_meta.hh"
#include "common/logging.hh"
#include "gcn3/inst.hh"

namespace last::gcn3
{

namespace
{

float asF32(uint32_t b) { return std::bit_cast<float>(b); }
uint32_t fromF32(float f) { return std::bit_cast<uint32_t>(f); }

/** Scratch rows for broadcast/negated operands; thread-local because
 *  the parallel sweep driver executes wavefronts on many threads. */
thread_local arch::LaneVec t_row[3];

/** Operands a templated VALU/VOPC kernel reads (reference: the a/b/c
 *  reads in executeValu). */
constexpr unsigned
valuArity(Gcn3Op op)
{
    switch (op) {
      case Gcn3Op::V_MOV_B32:
      case Gcn3Op::V_NOT_B32:
      case Gcn3Op::V_RCP_F32:
      case Gcn3Op::V_SQRT_F32:
      case Gcn3Op::V_CVT_F32_U32:
      case Gcn3Op::V_CVT_F32_I32:
      case Gcn3Op::V_CVT_U32_F32:
      case Gcn3Op::V_CVT_I32_F32:
        return 1;
      case Gcn3Op::V_MAD_F32:
      case Gcn3Op::V_FMA_F32:
      case Gcn3Op::V_MAD_U32_U24:
      case Gcn3Op::V_BFE_U32:
      case Gcn3Op::V_DIV_FMAS_F32:
      case Gcn3Op::V_DIV_FIXUP_F32:
        return 3;
      default:
        return 2;
    }
}

/**
 * One lane of a 32-bit VALU op. Expressions copied verbatim from
 * Gcn3Inst::executeValu — do not "simplify" them. `d_old` is the
 * pre-write destination value (V_MAC_F32 accumulates into it);
 * `vcc_bit` is this lane's VCC bit (V_CNDMASK_B32 selects on it).
 */
template <Gcn3Op OP>
inline uint32_t
laneV(uint32_t a, [[maybe_unused]] uint32_t b, [[maybe_unused]] uint32_t c,
      [[maybe_unused]] uint32_t d_old, [[maybe_unused]] bool vcc_bit)
{
    if constexpr (OP == Gcn3Op::V_MOV_B32) {
        return a;
    } else if constexpr (OP == Gcn3Op::V_NOT_B32) {
        return ~a;
    } else if constexpr (OP == Gcn3Op::V_RCP_F32) {
        return fromF32(1.0f / asF32(a));
    } else if constexpr (OP == Gcn3Op::V_SQRT_F32) {
        return fromF32(std::sqrt(asF32(a)));
    } else if constexpr (OP == Gcn3Op::V_CVT_F32_U32) {
        return fromF32(float(a));
    } else if constexpr (OP == Gcn3Op::V_CVT_F32_I32) {
        return fromF32(float(int32_t(a)));
    } else if constexpr (OP == Gcn3Op::V_CVT_U32_F32) {
        return uint32_t(asF32(a));
    } else if constexpr (OP == Gcn3Op::V_CVT_I32_F32) {
        return uint32_t(int32_t(asF32(a)));
    } else if constexpr (OP == Gcn3Op::V_MUL_LO_U32) {
        return a * b;
    } else if constexpr (OP == Gcn3Op::V_MUL_HI_U32) {
        return uint32_t((uint64_t(a) * b) >> 32);
    } else if constexpr (OP == Gcn3Op::V_ADD_F32) {
        return fromF32(asF32(a) + asF32(b));
    } else if constexpr (OP == Gcn3Op::V_SUB_F32) {
        return fromF32(asF32(a) - asF32(b));
    } else if constexpr (OP == Gcn3Op::V_MUL_F32) {
        return fromF32(asF32(a) * asF32(b));
    } else if constexpr (OP == Gcn3Op::V_MAC_F32) {
        return fromF32(asF32(a) * asF32(b) + asF32(d_old));
    } else if constexpr (OP == Gcn3Op::V_MIN_F32) {
        return fromF32(std::fmin(asF32(a), asF32(b)));
    } else if constexpr (OP == Gcn3Op::V_MAX_F32) {
        return fromF32(std::fmax(asF32(a), asF32(b)));
    } else if constexpr (OP == Gcn3Op::V_MIN_U32) {
        return std::min(a, b);
    } else if constexpr (OP == Gcn3Op::V_MAX_U32) {
        return std::max(a, b);
    } else if constexpr (OP == Gcn3Op::V_MIN_I32) {
        return uint32_t(std::min(int32_t(a), int32_t(b)));
    } else if constexpr (OP == Gcn3Op::V_MAX_I32) {
        return uint32_t(std::max(int32_t(a), int32_t(b)));
    } else if constexpr (OP == Gcn3Op::V_AND_B32) {
        return a & b;
    } else if constexpr (OP == Gcn3Op::V_OR_B32) {
        return a | b;
    } else if constexpr (OP == Gcn3Op::V_XOR_B32) {
        return a ^ b;
    } else if constexpr (OP == Gcn3Op::V_LSHLREV_B32) {
        return b << (a & 31);
    } else if constexpr (OP == Gcn3Op::V_LSHRREV_B32) {
        return b >> (a & 31);
    } else if constexpr (OP == Gcn3Op::V_ASHRREV_I32) {
        return uint32_t(int32_t(b) >> (a & 31));
    } else if constexpr (OP == Gcn3Op::V_CNDMASK_B32) {
        return vcc_bit ? b : a;
    } else if constexpr (OP == Gcn3Op::V_MAD_F32) {
        return fromF32(asF32(a) * asF32(b) + asF32(c));
    } else if constexpr (OP == Gcn3Op::V_FMA_F32) {
        return fromF32(std::fma(asF32(a), asF32(b), asF32(c)));
    } else if constexpr (OP == Gcn3Op::V_MAD_U32_U24) {
        return (a & 0xffffff) * (b & 0xffffff) + c;
    } else if constexpr (OP == Gcn3Op::V_BFE_U32) {
        unsigned off = b & 31;
        unsigned width = c & 31;
        uint32_t mask = width == 0 ? 0xffffffffu : ((1u << width) - 1);
        return (a >> off) & mask;
    } else if constexpr (OP == Gcn3Op::V_DIV_FMAS_F32) {
        return fromF32(std::fma(asF32(a), asF32(b), asF32(c)));
    } else if constexpr (OP == Gcn3Op::V_DIV_FIXUP_F32) {
        return fromF32(asF32(c) / asF32(b));
    } else {
        static_assert(OP == Gcn3Op::V_MOV_B32, "no lane kernel for op");
        return 0;
    }
}

/** One lane of a 32-bit V_CMP; mirrors executeVcmp's typed cmpi. */
template <Gcn3Op OP>
inline bool
laneCmp(uint32_t a, uint32_t b)
{
    if constexpr (OP == Gcn3Op::V_CMP_EQ_U32) return a == b;
    else if constexpr (OP == Gcn3Op::V_CMP_NE_U32) return a != b;
    else if constexpr (OP == Gcn3Op::V_CMP_LT_U32) return a < b;
    else if constexpr (OP == Gcn3Op::V_CMP_LE_U32) return a <= b;
    else if constexpr (OP == Gcn3Op::V_CMP_GT_U32) return a > b;
    else if constexpr (OP == Gcn3Op::V_CMP_GE_U32) return a >= b;
    else if constexpr (OP == Gcn3Op::V_CMP_EQ_I32)
        return int32_t(a) == int32_t(b);
    else if constexpr (OP == Gcn3Op::V_CMP_NE_I32)
        return int32_t(a) != int32_t(b);
    else if constexpr (OP == Gcn3Op::V_CMP_LT_I32)
        return int32_t(a) < int32_t(b);
    else if constexpr (OP == Gcn3Op::V_CMP_LE_I32)
        return int32_t(a) <= int32_t(b);
    else if constexpr (OP == Gcn3Op::V_CMP_GT_I32)
        return int32_t(a) > int32_t(b);
    else if constexpr (OP == Gcn3Op::V_CMP_GE_I32)
        return int32_t(a) >= int32_t(b);
    else if constexpr (OP == Gcn3Op::V_CMP_EQ_F32)
        return asF32(a) == asF32(b);
    else if constexpr (OP == Gcn3Op::V_CMP_NE_F32)
        return asF32(a) != asF32(b);
    else if constexpr (OP == Gcn3Op::V_CMP_LT_F32)
        return asF32(a) < asF32(b);
    else if constexpr (OP == Gcn3Op::V_CMP_LE_F32)
        return asF32(a) <= asF32(b);
    else if constexpr (OP == Gcn3Op::V_CMP_GT_F32)
        return asF32(a) > asF32(b);
    else if constexpr (OP == Gcn3Op::V_CMP_GE_F32)
        return asF32(a) >= asF32(b);
    else {
        static_assert(OP == Gcn3Op::V_CMP_EQ_U32, "no cmp kernel for op");
        return false;
    }
}

} // namespace

struct Gcn3Exec
{
    using Meta = arch::ExecMeta;
    using Wf = arch::WfState;

    static const Gcn3Inst &
    inst(const Meta &m)
    {
        return static_cast<const Gcn3Inst &>(*m.inst);
    }

    /**
     * Resolve source operand `i` to a stride-1 row of 64 lane values,
     * value-identical to readSrc32(wf, i, lane) for every lane. VGPRs
     * without a negate modifier return the register row itself; every
     * other case broadcasts or copies into `scratch`. Hoisting the
     * SGPR read out of the lane loop is exact: no templated VALU/VOPC
     * op writes SGPRs, VCC, or EXEC mid-loop.
     */
    static const uint32_t *
    row32(const Gcn3Inst &I, const Wf &wf, unsigned i,
          arch::LaneVec &scratch)
    {
        const Src &s = I.srcs[i];
        const uint32_t neg =
            (I.negMask & (1u << i)) ? 0x80000000u : 0;
        switch (s.kind) {
          case Src::Kind::Vgpr: {
            const uint32_t *p = wf.vregs[s.reg].data();
            if (!neg)
                return p;
            for (unsigned l = 0; l < WavefrontSize; ++l)
                scratch[l] = p[l] ^ neg;
            return scratch.data();
          }
          case Src::Kind::Sgpr:
            scratch.fill(wf.readSgpr(s.reg) ^ neg);
            return scratch.data();
          case Src::Kind::InlineConst:
          case Src::Kind::Literal:
            scratch.fill(s.value ^ neg);
            return scratch.data();
          case Src::Kind::InlineConstF64: // low dword is zero
          case Src::Kind::None:
            scratch.fill(neg);
            return scratch.data();
        }
        scratch.fill(0);
        return scratch.data();
    }

    /** @{ Cold wrappers: the unchanged reference executors, minus the
     *  virtual hop (and the switch chains they sit behind). */
    static void
    saluH(const Meta &m, Wf &wf)
    {
        wf.nextPc = wf.pc + m.size;
        inst(m).executeSalu(wf);
    }

    static void
    soppH(const Meta &m, Wf &wf)
    {
        wf.nextPc = wf.pc + m.size;
        inst(m).executeSopp(wf);
    }

    static void
    valuGenericH(const Meta &m, Wf &wf)
    {
        wf.nextPc = wf.pc + m.size;
        inst(m).executeValu(wf);
    }

    static void
    vcmpGenericH(const Meta &m, Wf &wf)
    {
        wf.nextPc = wf.pc + m.size;
        inst(m).executeVcmp(wf);
    }
    /** @} */

    /** s_load: mirrors executeSmem with the MemAccess built in place. */
    static void
    smemH(const Meta &m, Wf &wf)
    {
        const Gcn3Inst &I = inst(m);
        wf.nextPc = wf.pc + m.size;
        Addr addr = wf.readSgpr64(I.srcs[0].reg) + I.simm;
        unsigned dwords = I.dstWidth();
        for (unsigned d = 0; d < dwords; ++d) {
            uint32_t v = wf.memory->read<uint32_t>(addr + 4 * d);
            wf.writeSgpr(I.dst.reg + d, v);
        }
        arch::MemAccess &acc = wf.pendingAccess.emplace();
        acc.kind = arch::MemAccess::Kind::ScalarLoad;
        acc.scalarAddr = addr;
        acc.scalarBytes = 4 * dwords;
    }

    /** flat_*: mirrors executeFlat; ctz lane order == the reference's
     *  ascending scan, so atomics and overlapping stores agree. */
    static void
    flatH(const Meta &m, Wf &wf)
    {
        const Gcn3Inst &I = inst(m);
        wf.nextPc = wf.pc + m.size;
        arch::MemAccess &acc = wf.pendingAccess.emplace();
        bool is_store = m.is(arch::IsStore) && !m.is(arch::IsAtomic);
        unsigned dwords =
            (I.opc == Gcn3Op::FLAT_LOAD_DWORDX2 ||
             I.opc == Gcn3Op::FLAT_STORE_DWORDX2) ? 2 : 1;
        acc.kind = is_store ? arch::MemAccess::Kind::VectorStore
                            : arch::MemAccess::Kind::VectorLoad;
        acc.bytesPerLane = 4 * dwords;
        acc.mask = wf.exec;

        for (uint64_t rest = wf.exec; rest; rest &= rest - 1) {
            unsigned lane = unsigned(std::countr_zero(rest));
            Addr addr = wf.readVreg64(I.srcs[0].reg, lane);
            acc.laneAddrs[lane] = addr;
            if (I.opc == Gcn3Op::FLAT_ATOMIC_ADD) {
                uint32_t old = wf.memory->read<uint32_t>(addr);
                uint32_t add = wf.readVreg(I.srcs[1].reg, lane);
                wf.memory->write<uint32_t>(addr, old + add);
                if (I.dst.valid())
                    wf.writeVreg(I.dst.reg, lane, old);
            } else if (is_store) {
                for (unsigned d = 0; d < dwords; ++d)
                    wf.memory->write<uint32_t>(
                        addr + 4 * d,
                        wf.readVreg(I.srcs[1].reg + d, lane));
            } else {
                for (unsigned d = 0; d < dwords; ++d)
                    wf.writeVreg(I.dst.reg + d, lane,
                                 wf.memory->read<uint32_t>(addr + 4 * d));
            }
        }
    }

    /** ds_*: mirrors executeDs, same in-place/ctz treatment. */
    static void
    dsH(const Meta &m, Wf &wf)
    {
        const Gcn3Inst &I = inst(m);
        wf.nextPc = wf.pc + m.size;
        arch::MemAccess &acc = wf.pendingAccess.emplace();
        bool is_store = m.is(arch::IsStore);
        unsigned dwords =
            (I.opc == Gcn3Op::DS_READ_B64 ||
             I.opc == Gcn3Op::DS_WRITE_B64) ? 2 : 1;
        acc.kind = is_store ? arch::MemAccess::Kind::LdsStore
                            : arch::MemAccess::Kind::LdsLoad;
        acc.bytesPerLane = 4 * dwords;
        acc.mask = wf.exec;

        for (uint64_t rest = wf.exec; rest; rest &= rest - 1) {
            unsigned lane = unsigned(std::countr_zero(rest));
            Addr off = Addr(wf.readVreg(I.srcs[0].reg, lane)) + I.simm;
            acc.laneAddrs[lane] = off;
            if (is_store) {
                for (unsigned d = 0; d < dwords; ++d)
                    wf.lds->write32(off + 4 * d,
                                    wf.readVreg(I.srcs[1].reg + d, lane));
            } else {
                for (unsigned d = 0; d < dwords; ++d)
                    wf.writeVreg(I.dst.reg + d, lane,
                                 wf.lds->read32(off + 4 * d));
            }
        }
    }

    /** 32-bit VALU op over resolved rows, one instantiation per op. */
    template <Gcn3Op OP>
    static void
    valuH(const Meta &m, Wf &wf)
    {
        const Gcn3Inst &I = inst(m);
        wf.nextPc = wf.pc + m.size;
        const uint64_t exec = wf.exec;
        const uint64_t vcc = wf.vcc;

        constexpr unsigned N = valuArity(OP);
        uint32_t *d = wf.vregs[I.dst.reg].data();
        const uint32_t *a = row32(I, wf, 0, t_row[0]);
        const uint32_t *b = a;
        const uint32_t *c = a;
        if constexpr (N >= 2)
            b = row32(I, wf, 1, t_row[1]);
        if constexpr (N >= 3)
            c = row32(I, wf, 2, t_row[2]);

        if (exec == ~0ull) {
            for (unsigned l = 0; l < WavefrontSize; ++l)
                d[l] = laneV<OP>(a[l], b[l], c[l], d[l],
                                 (vcc >> l) & 1);
        } else {
            for (uint64_t rest = exec; rest; rest &= rest - 1) {
                unsigned l = unsigned(std::countr_zero(rest));
                d[l] = laneV<OP>(a[l], b[l], c[l], d[l],
                                 (vcc >> l) & 1);
            }
        }
    }

    /** Carry/borrow ALU family: writes the VGPR dst per lane and the
     *  per-lane carry-out bit into VCC, exactly like executeValu
     *  (new_vcc starts as the old VCC, active lanes overwrite their
     *  bit, inactive lanes keep theirs; ADDC/SUBB read their carry-in
     *  from the pre-instruction VCC, which the reference never updates
     *  mid-loop). */
    enum class CarryOp { Add, Addc, Sub, Subb };

    template <CarryOp OP>
    static void
    carryH(const Meta &m, Wf &wf)
    {
        const Gcn3Inst &I = inst(m);
        wf.nextPc = wf.pc + m.size;
        const uint64_t exec = wf.exec;
        const uint64_t vcc = wf.vcc;

        uint32_t *d = wf.vregs[I.dst.reg].data();
        const uint32_t *a = row32(I, wf, 0, t_row[0]);
        const uint32_t *b = row32(I, wf, 1, t_row[1]);

        uint64_t new_vcc = vcc;
        for (uint64_t rest = exec; rest; rest &= rest - 1) {
            unsigned l = unsigned(std::countr_zero(rest));
            uint64_t bit = 1ull << l;
            uint32_t r;
            bool cout;
            if constexpr (OP == CarryOp::Add) {
                uint64_t s = uint64_t(a[l]) + b[l];
                r = uint32_t(s);
                cout = (s >> 32) != 0;
            } else if constexpr (OP == CarryOp::Addc) {
                uint64_t s =
                    uint64_t(a[l]) + b[l] + ((vcc & bit) ? 1 : 0);
                r = uint32_t(s);
                cout = (s >> 32) != 0;
            } else if constexpr (OP == CarryOp::Sub) {
                cout = b[l] > a[l];
                r = a[l] - b[l];
            } else { // Subb
                uint32_t borrow_in = (vcc & bit) ? 1 : 0;
                uint64_t rhs = uint64_t(b[l]) + borrow_in;
                cout = rhs > a[l];
                r = uint32_t(a[l] - rhs);
            }
            d[l] = r;
            new_vcc = cout ? (new_vcc | bit) : (new_vcc & ~bit);
        }
        wf.vcc = new_vcc;
    }

    /** 32-bit V_CMP over resolved rows; wf.vcc gets the result mask
     *  (inactive lanes zero), exactly like executeVcmp. */
    template <Gcn3Op OP>
    static void
    vcmpH(const Meta &m, Wf &wf)
    {
        const Gcn3Inst &I = inst(m);
        wf.nextPc = wf.pc + m.size;
        const uint64_t exec = wf.exec;
        const uint32_t *a = row32(I, wf, 0, t_row[0]);
        const uint32_t *b = row32(I, wf, 1, t_row[1]);

        uint64_t result = 0;
        if (exec == ~0ull) {
            for (unsigned l = 0; l < WavefrontSize; ++l)
                result |= uint64_t(laneCmp<OP>(a[l], b[l])) << l;
        } else {
            for (uint64_t rest = exec; rest; rest &= rest - 1) {
                unsigned l = unsigned(std::countr_zero(rest));
                result |= uint64_t(laneCmp<OP>(a[l], b[l])) << l;
            }
        }
        wf.vcc = result;
    }

    static arch::ExecHandler
    pickValu(const Gcn3Inst &I)
    {
        if (I.dst.kind != Dst::Kind::Vgpr)
            return nullptr;
        switch (I.opc) {
          case Gcn3Op::V_MOV_B32: return &valuH<Gcn3Op::V_MOV_B32>;
          case Gcn3Op::V_NOT_B32: return &valuH<Gcn3Op::V_NOT_B32>;
          case Gcn3Op::V_RCP_F32: return &valuH<Gcn3Op::V_RCP_F32>;
          case Gcn3Op::V_SQRT_F32: return &valuH<Gcn3Op::V_SQRT_F32>;
          case Gcn3Op::V_CVT_F32_U32:
            return &valuH<Gcn3Op::V_CVT_F32_U32>;
          case Gcn3Op::V_CVT_F32_I32:
            return &valuH<Gcn3Op::V_CVT_F32_I32>;
          case Gcn3Op::V_CVT_U32_F32:
            return &valuH<Gcn3Op::V_CVT_U32_F32>;
          case Gcn3Op::V_CVT_I32_F32:
            return &valuH<Gcn3Op::V_CVT_I32_F32>;
          case Gcn3Op::V_MUL_LO_U32: return &valuH<Gcn3Op::V_MUL_LO_U32>;
          case Gcn3Op::V_MUL_HI_U32: return &valuH<Gcn3Op::V_MUL_HI_U32>;
          case Gcn3Op::V_ADD_F32: return &valuH<Gcn3Op::V_ADD_F32>;
          case Gcn3Op::V_SUB_F32: return &valuH<Gcn3Op::V_SUB_F32>;
          case Gcn3Op::V_MUL_F32: return &valuH<Gcn3Op::V_MUL_F32>;
          case Gcn3Op::V_MAC_F32: return &valuH<Gcn3Op::V_MAC_F32>;
          case Gcn3Op::V_MIN_F32: return &valuH<Gcn3Op::V_MIN_F32>;
          case Gcn3Op::V_MAX_F32: return &valuH<Gcn3Op::V_MAX_F32>;
          case Gcn3Op::V_MIN_U32: return &valuH<Gcn3Op::V_MIN_U32>;
          case Gcn3Op::V_MAX_U32: return &valuH<Gcn3Op::V_MAX_U32>;
          case Gcn3Op::V_MIN_I32: return &valuH<Gcn3Op::V_MIN_I32>;
          case Gcn3Op::V_MAX_I32: return &valuH<Gcn3Op::V_MAX_I32>;
          case Gcn3Op::V_AND_B32: return &valuH<Gcn3Op::V_AND_B32>;
          case Gcn3Op::V_OR_B32: return &valuH<Gcn3Op::V_OR_B32>;
          case Gcn3Op::V_XOR_B32: return &valuH<Gcn3Op::V_XOR_B32>;
          case Gcn3Op::V_LSHLREV_B32:
            return &valuH<Gcn3Op::V_LSHLREV_B32>;
          case Gcn3Op::V_LSHRREV_B32:
            return &valuH<Gcn3Op::V_LSHRREV_B32>;
          case Gcn3Op::V_ASHRREV_I32:
            return &valuH<Gcn3Op::V_ASHRREV_I32>;
          case Gcn3Op::V_CNDMASK_B32:
            return &valuH<Gcn3Op::V_CNDMASK_B32>;
          case Gcn3Op::V_MAD_F32: return &valuH<Gcn3Op::V_MAD_F32>;
          case Gcn3Op::V_FMA_F32: return &valuH<Gcn3Op::V_FMA_F32>;
          case Gcn3Op::V_MAD_U32_U24:
            return &valuH<Gcn3Op::V_MAD_U32_U24>;
          case Gcn3Op::V_BFE_U32: return &valuH<Gcn3Op::V_BFE_U32>;
          case Gcn3Op::V_DIV_FMAS_F32:
            return &valuH<Gcn3Op::V_DIV_FMAS_F32>;
          case Gcn3Op::V_DIV_FIXUP_F32:
            return &valuH<Gcn3Op::V_DIV_FIXUP_F32>;
          case Gcn3Op::V_ADD_U32: return &carryH<CarryOp::Add>;
          case Gcn3Op::V_ADDC_U32: return &carryH<CarryOp::Addc>;
          case Gcn3Op::V_SUB_U32: return &carryH<CarryOp::Sub>;
          case Gcn3Op::V_SUBB_U32: return &carryH<CarryOp::Subb>;
          default:
            // V_DIV_SCALE writes VCC as a predicate, F64 ops handle
            // register pairs: reference executor.
            return nullptr;
        }
    }

    static arch::ExecHandler
    pickVcmp(Gcn3Op op)
    {
        switch (op) {
          case Gcn3Op::V_CMP_EQ_U32: return &vcmpH<Gcn3Op::V_CMP_EQ_U32>;
          case Gcn3Op::V_CMP_NE_U32: return &vcmpH<Gcn3Op::V_CMP_NE_U32>;
          case Gcn3Op::V_CMP_LT_U32: return &vcmpH<Gcn3Op::V_CMP_LT_U32>;
          case Gcn3Op::V_CMP_LE_U32: return &vcmpH<Gcn3Op::V_CMP_LE_U32>;
          case Gcn3Op::V_CMP_GT_U32: return &vcmpH<Gcn3Op::V_CMP_GT_U32>;
          case Gcn3Op::V_CMP_GE_U32: return &vcmpH<Gcn3Op::V_CMP_GE_U32>;
          case Gcn3Op::V_CMP_EQ_I32: return &vcmpH<Gcn3Op::V_CMP_EQ_I32>;
          case Gcn3Op::V_CMP_NE_I32: return &vcmpH<Gcn3Op::V_CMP_NE_I32>;
          case Gcn3Op::V_CMP_LT_I32: return &vcmpH<Gcn3Op::V_CMP_LT_I32>;
          case Gcn3Op::V_CMP_LE_I32: return &vcmpH<Gcn3Op::V_CMP_LE_I32>;
          case Gcn3Op::V_CMP_GT_I32: return &vcmpH<Gcn3Op::V_CMP_GT_I32>;
          case Gcn3Op::V_CMP_GE_I32: return &vcmpH<Gcn3Op::V_CMP_GE_I32>;
          case Gcn3Op::V_CMP_EQ_F32: return &vcmpH<Gcn3Op::V_CMP_EQ_F32>;
          case Gcn3Op::V_CMP_NE_F32: return &vcmpH<Gcn3Op::V_CMP_NE_F32>;
          case Gcn3Op::V_CMP_LT_F32: return &vcmpH<Gcn3Op::V_CMP_LT_F32>;
          case Gcn3Op::V_CMP_LE_F32: return &vcmpH<Gcn3Op::V_CMP_LE_F32>;
          case Gcn3Op::V_CMP_GT_F32: return &vcmpH<Gcn3Op::V_CMP_GT_F32>;
          case Gcn3Op::V_CMP_GE_F32: return &vcmpH<Gcn3Op::V_CMP_GE_F32>;
          default:
            return nullptr; // F64 compares: reference executor
        }
    }

    static arch::ExecHandler
    pick(const Gcn3Inst &I)
    {
        switch (I.format()) {
          case Format::SOP1:
          case Format::SOP2:
          case Format::SOPC:
          case Format::SOPK:
            return &saluH;
          case Format::SOPP:
            return &soppH;
          case Format::SMEM:
            return &smemH;
          case Format::VOPC:
            if (auto h = pickVcmp(I.opc))
                return h;
            return &vcmpGenericH;
          case Format::VOP1:
          case Format::VOP2:
          case Format::VOP3:
            if (auto h = pickValu(I))
                return h;
            return &valuGenericH;
          case Format::FLAT:
            return &flatH;
          case Format::DS:
            return &dsH;
        }
        return nullptr; // unreachable; buildMetas panics on null
    }
};

void
Gcn3Inst::predecode(arch::ExecMeta &m) const
{
    m.handler = Gcn3Exec::pick(*this);
    // Predigest what the CU's issue logic would otherwise downcast
    // for: waitcnt thresholds and the SOPP immediate (s_nop).
    if (opc == Gcn3Op::S_WAITCNT) {
        m.c0 = vmThreshold();
        m.c1 = lgkmThreshold();
    }
    m.imm = simm;
}

} // namespace last::gcn3
