#include "gcn3/inst.hh"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cmath>
#include <sstream>

#include "arch/kernel_code.hh"
#include "common/logging.hh"

namespace last::gcn3
{

namespace
{

float asF32(uint32_t b) { return std::bit_cast<float>(b); }
uint32_t fromF32(float f) { return std::bit_cast<uint32_t>(f); }
double asF64(uint64_t b) { return std::bit_cast<double>(b); }
uint64_t fromF64(double d) { return std::bit_cast<uint64_t>(d); }

struct OpInfo
{
    const char *name;
    Format fmt;
};

constexpr OpInfo opTable[] = {
#define LAST_X(name, fmt) {#name, Format::fmt},
    LAST_GCN3_OPCODES(LAST_X)
#undef LAST_X
};

} // namespace

const char *
opName(Gcn3Op op)
{
    return opTable[size_t(op)].name;
}

Format
opFormat(Gcn3Op op)
{
    return opTable[size_t(op)].fmt;
}

Gcn3Inst::Gcn3Inst(Gcn3Op op)
    : opc(op)
{
}

unsigned
Gcn3Inst::dstWidth() const
{
    switch (opc) {
      case Gcn3Op::S_MOV_B64:
      case Gcn3Op::S_AND_B64:
      case Gcn3Op::S_OR_B64:
      case Gcn3Op::S_XOR_B64:
      case Gcn3Op::S_ANDN2_B64:
      case Gcn3Op::S_AND_SAVEEXEC_B64:
      case Gcn3Op::S_OR_SAVEEXEC_B64:
      case Gcn3Op::S_LOAD_DWORDX2:
      case Gcn3Op::FLAT_LOAD_DWORDX2:
      case Gcn3Op::DS_READ_B64:
      case Gcn3Op::V_RCP_F64:
      case Gcn3Op::V_SQRT_F64:
      case Gcn3Op::V_CVT_F64_F32:
      case Gcn3Op::V_CVT_F64_U32:
      case Gcn3Op::V_ADD_F64:
      case Gcn3Op::V_MUL_F64:
      case Gcn3Op::V_FMA_F64:
      case Gcn3Op::V_MIN_F64:
      case Gcn3Op::V_MAX_F64:
      case Gcn3Op::V_DIV_SCALE_F64:
      case Gcn3Op::V_DIV_FMAS_F64:
      case Gcn3Op::V_DIV_FIXUP_F64:
        return 2;
      case Gcn3Op::S_LOAD_DWORDX4:
        return 4;
      default:
        return 1;
    }
}

bool
Gcn3Inst::isWide(unsigned src_idx) const
{
    switch (opc) {
      case Gcn3Op::S_MOV_B64:
      case Gcn3Op::S_AND_B64:
      case Gcn3Op::S_OR_B64:
      case Gcn3Op::S_XOR_B64:
      case Gcn3Op::S_ANDN2_B64:
      case Gcn3Op::S_AND_SAVEEXEC_B64:
      case Gcn3Op::S_OR_SAVEEXEC_B64:
      case Gcn3Op::V_CVT_F32_F64:
      case Gcn3Op::V_CVT_U32_F64:
      case Gcn3Op::V_ADD_F64:
      case Gcn3Op::V_MUL_F64:
      case Gcn3Op::V_FMA_F64:
      case Gcn3Op::V_MIN_F64:
      case Gcn3Op::V_MAX_F64:
      case Gcn3Op::V_DIV_SCALE_F64:
      case Gcn3Op::V_DIV_FMAS_F64:
      case Gcn3Op::V_DIV_FIXUP_F64:
      case Gcn3Op::V_RCP_F64:
      case Gcn3Op::V_SQRT_F64:
      case Gcn3Op::V_CMP_EQ_F64:
      case Gcn3Op::V_CMP_NE_F64:
      case Gcn3Op::V_CMP_LT_F64:
      case Gcn3Op::V_CMP_LE_F64:
      case Gcn3Op::V_CMP_GT_F64:
      case Gcn3Op::V_CMP_GE_F64:
        return true;
      case Gcn3Op::S_LOAD_DWORD:
      case Gcn3Op::S_LOAD_DWORDX2:
      case Gcn3Op::S_LOAD_DWORDX4:
        return src_idx == 0; // sbase pair
      case Gcn3Op::FLAT_LOAD_DWORD:
      case Gcn3Op::FLAT_LOAD_DWORDX2:
      case Gcn3Op::FLAT_STORE_DWORD:
      case Gcn3Op::FLAT_ATOMIC_ADD:
        return src_idx == 0; // 64-bit address pair
      case Gcn3Op::FLAT_STORE_DWORDX2:
        return true;         // address pair and 64-bit data
      case Gcn3Op::DS_WRITE_B64:
        return src_idx == 1; // data operand
      default:
        return false;
    }
}

void
Gcn3Inst::finalizeOperands()
{
    using arch::RegClass;

    if (dst.valid()) {
        RegClass cls = dst.kind == Dst::Kind::Vgpr ? RegClass::Vector
                                                   : RegClass::Scalar;
        addOp(cls, dst.reg, uint8_t(dstWidth()), true);
    }
    for (unsigned i = 0; i < 3; ++i) {
        const Src &s = srcs[i];
        if (s.kind == Src::Kind::Vgpr) {
            addOp(RegClass::Vector, s.reg, isWide(i) ? 2 : 1, false);
        } else if (s.kind == Src::Kind::Sgpr) {
            addOp(RegClass::Scalar, s.reg, isWide(i) ? 2 : 1, false);
        }
    }

    // Implicit VCC / EXEC operands.
    switch (opc) {
      case Gcn3Op::V_CMP_EQ_U32: case Gcn3Op::V_CMP_NE_U32:
      case Gcn3Op::V_CMP_LT_U32: case Gcn3Op::V_CMP_LE_U32:
      case Gcn3Op::V_CMP_GT_U32: case Gcn3Op::V_CMP_GE_U32:
      case Gcn3Op::V_CMP_EQ_I32: case Gcn3Op::V_CMP_NE_I32:
      case Gcn3Op::V_CMP_LT_I32: case Gcn3Op::V_CMP_LE_I32:
      case Gcn3Op::V_CMP_GT_I32: case Gcn3Op::V_CMP_GE_I32:
      case Gcn3Op::V_CMP_EQ_F32: case Gcn3Op::V_CMP_NE_F32:
      case Gcn3Op::V_CMP_LT_F32: case Gcn3Op::V_CMP_LE_F32:
      case Gcn3Op::V_CMP_GT_F32: case Gcn3Op::V_CMP_GE_F32:
      case Gcn3Op::V_CMP_EQ_F64: case Gcn3Op::V_CMP_NE_F64:
      case Gcn3Op::V_CMP_LT_F64: case Gcn3Op::V_CMP_LE_F64:
      case Gcn3Op::V_CMP_GT_F64: case Gcn3Op::V_CMP_GE_F64:
      case Gcn3Op::V_ADD_U32: case Gcn3Op::V_SUB_U32:
      case Gcn3Op::V_DIV_SCALE_F32: case Gcn3Op::V_DIV_SCALE_F64:
        addOp(RegClass::Scalar, arch::RegVccLo, 2, true);
        break;
      case Gcn3Op::V_CNDMASK_B32:
      case Gcn3Op::V_DIV_FMAS_F32:
      case Gcn3Op::V_DIV_FMAS_F64:
        addOp(RegClass::Scalar, arch::RegVccLo, 2, false);
        break;
      case Gcn3Op::V_ADDC_U32:
      case Gcn3Op::V_SUBB_U32:
        addOp(RegClass::Scalar, arch::RegVccLo, 2, false);
        addOp(RegClass::Scalar, arch::RegVccLo, 2, true);
        break;
      case Gcn3Op::S_AND_SAVEEXEC_B64:
      case Gcn3Op::S_OR_SAVEEXEC_B64:
        addOp(RegClass::Scalar, arch::RegExecLo, 2, false);
        addOp(RegClass::Scalar, arch::RegExecLo, 2, true);
        break;
      case Gcn3Op::S_CBRANCH_VCCZ:
      case Gcn3Op::S_CBRANCH_VCCNZ:
        addOp(RegClass::Scalar, arch::RegVccLo, 2, false);
        break;
      case Gcn3Op::S_CBRANCH_EXECZ:
      case Gcn3Op::S_CBRANCH_EXECNZ:
        addOp(RegClass::Scalar, arch::RegExecLo, 2, false);
        break;
      case Gcn3Op::V_MAC_F32:
        // Multiply-accumulate reads its destination.
        addOp(RegClass::Vector, dst.reg, 1, false);
        break;
      default:
        break;
    }
}

unsigned
Gcn3Inst::sizeBytes() const
{
    unsigned size = formatBytes(format());
    // VOP2 only admits a scalar/constant operand in src0; mixed forms
    // (an SGPR in src1, or SGPR + constant combinations) need the
    // 64-bit VOP3 encoding.
    if (format() == Format::VOP2) {
        bool nonvec1 = srcs[1].valid() &&
                       srcs[1].kind != Src::Kind::Vgpr;
        bool sgpr_any = srcs[0].kind == Src::Kind::Sgpr ||
                        srcs[1].kind == Src::Kind::Sgpr;
        if (nonvec1 && sgpr_any)
            size = 8;
    }
    for (const auto &s : srcs)
        if (s.isLiteral())
            size += 4;
    return size;
}

arch::FuType
Gcn3Inst::fuType() const
{
    switch (format()) {
      case Format::SOP1:
      case Format::SOP2:
      case Format::SOPC:
      case Format::SOPK:
        return arch::FuType::SAlu;
      case Format::SOPP:
        switch (opc) {
          case Gcn3Op::S_BRANCH:
          case Gcn3Op::S_CBRANCH_SCC0:
          case Gcn3Op::S_CBRANCH_SCC1:
          case Gcn3Op::S_CBRANCH_VCCZ:
          case Gcn3Op::S_CBRANCH_VCCNZ:
          case Gcn3Op::S_CBRANCH_EXECZ:
          case Gcn3Op::S_CBRANCH_EXECNZ:
            return arch::FuType::Branch;
          default:
            return arch::FuType::Special;
        }
      case Format::SMEM:
        return arch::FuType::SMem;
      case Format::VOP1:
      case Format::VOP2:
      case Format::VOPC:
      case Format::VOP3:
        return arch::FuType::VAlu;
      case Format::FLAT:
        return arch::FuType::VMem;
      case Format::DS:
        return arch::FuType::Lds;
    }
    return arch::FuType::Special;
}

// ---------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------

Gcn3Inst *
Gcn3Inst::sop1(Gcn3Op op, Dst dst, Src src)
{
    auto *i = new Gcn3Inst(op);
    i->dst = dst;
    i->srcs[0] = src;
    i->setFlags(arch::IsScalarOp);
    i->finalizeOperands();
    return i;
}

Gcn3Inst *
Gcn3Inst::sop2(Gcn3Op op, Dst dst, Src s0, Src s1)
{
    auto *i = new Gcn3Inst(op);
    i->dst = dst;
    i->srcs[0] = s0;
    i->srcs[1] = s1;
    i->setFlags(arch::IsScalarOp);
    i->finalizeOperands();
    return i;
}

Gcn3Inst *
Gcn3Inst::sopc(Gcn3Op op, Src s0, Src s1)
{
    auto *i = new Gcn3Inst(op);
    i->srcs[0] = s0;
    i->srcs[1] = s1;
    i->setFlags(arch::IsScalarOp);
    i->finalizeOperands();
    return i;
}

Gcn3Inst *
Gcn3Inst::sopk(Gcn3Op op, Dst dst, int16_t k)
{
    auto *i = new Gcn3Inst(op);
    i->dst = dst;
    i->simm = uint32_t(int32_t(k));
    i->setFlags(arch::IsScalarOp);
    i->finalizeOperands();
    return i;
}

Gcn3Inst *
Gcn3Inst::sopp(Gcn3Op op, uint32_t imm)
{
    auto *i = new Gcn3Inst(op);
    i->simm = imm;
    i->setFlags(arch::IsScalarOp);
    switch (op) {
      case Gcn3Op::S_ENDPGM: i->setFlags(arch::IsEndPgm); break;
      case Gcn3Op::S_BARRIER: i->setFlags(arch::IsBarrier); break;
      case Gcn3Op::S_NOP: i->setFlags(arch::IsNop); break;
      case Gcn3Op::S_WAITCNT: i->setFlags(arch::IsWaitcnt); break;
      default: break;
    }
    i->finalizeOperands();
    return i;
}

Gcn3Inst *
Gcn3Inst::branch(Gcn3Op op, size_t target_index)
{
    auto *i = new Gcn3Inst(op);
    i->targetIdx = target_index;
    i->setFlags(arch::IsBranch | arch::IsScalarOp);
    i->finalizeOperands();
    return i;
}

Gcn3Inst *
Gcn3Inst::waitcnt(int vm, int lgkm)
{
    unsigned v = vm < 0 ? 64 : unsigned(vm);
    unsigned l = lgkm < 0 ? 64 : unsigned(lgkm);
    return sopp(Gcn3Op::S_WAITCNT, (l << 8) | v);
}

Gcn3Inst *
Gcn3Inst::smem(Gcn3Op op, Dst dst, unsigned sbase, uint32_t offset)
{
    auto *i = new Gcn3Inst(op);
    i->dst = dst;
    i->srcs[0] = Src::sgpr(sbase);
    i->simm = offset;
    i->setFlags(arch::IsScalarOp | arch::IsMemory | arch::IsLoad);
    i->finalizeOperands();
    return i;
}

Gcn3Inst *
Gcn3Inst::vop1(Gcn3Op op, Dst dst, Src src)
{
    auto *i = new Gcn3Inst(op);
    i->dst = dst;
    i->srcs[0] = src;
    switch (op) {
      case Gcn3Op::V_RCP_F32: case Gcn3Op::V_RCP_F64:
      case Gcn3Op::V_SQRT_F32: case Gcn3Op::V_SQRT_F64:
        i->setFlags(arch::IsTrans);
        break;
      default:
        break;
    }
    if (op == Gcn3Op::V_RCP_F64 || op == Gcn3Op::V_SQRT_F64 ||
        op == Gcn3Op::V_CVT_F64_F32 || op == Gcn3Op::V_CVT_F64_U32 ||
        op == Gcn3Op::V_CVT_F32_F64 || op == Gcn3Op::V_CVT_U32_F64)
        i->setFlags(arch::IsF64);
    i->finalizeOperands();
    return i;
}

Gcn3Inst *
Gcn3Inst::vop2(Gcn3Op op, Dst dst, Src s0, Src s1)
{
    auto *i = new Gcn3Inst(op);
    i->dst = dst;
    i->srcs[0] = s0;
    i->srcs[1] = s1;
    if (op == Gcn3Op::V_CNDMASK_B32)
        i->setFlags(arch::IsCondMove);
    i->finalizeOperands();
    return i;
}

Gcn3Inst *
Gcn3Inst::vop3(Gcn3Op op, Dst dst, Src s0, Src s1, Src s2,
               uint8_t neg_mask)
{
    auto *i = new Gcn3Inst(op);
    i->dst = dst;
    i->srcs[0] = s0;
    i->srcs[1] = s1;
    i->srcs[2] = s2;
    i->negMask = neg_mask;
    switch (op) {
      case Gcn3Op::V_ADD_F64: case Gcn3Op::V_MUL_F64:
      case Gcn3Op::V_FMA_F64: case Gcn3Op::V_MIN_F64:
      case Gcn3Op::V_MAX_F64: case Gcn3Op::V_DIV_SCALE_F64:
      case Gcn3Op::V_DIV_FMAS_F64: case Gcn3Op::V_DIV_FIXUP_F64:
        i->setFlags(arch::IsF64);
        break;
      default:
        break;
    }
    i->finalizeOperands();
    return i;
}

Gcn3Inst *
Gcn3Inst::vcmp(Gcn3Op op, Src s0, Src s1)
{
    auto *i = new Gcn3Inst(op);
    i->srcs[0] = s0;
    i->srcs[1] = s1;
    switch (op) {
      case Gcn3Op::V_CMP_EQ_F64: case Gcn3Op::V_CMP_NE_F64:
      case Gcn3Op::V_CMP_LT_F64: case Gcn3Op::V_CMP_LE_F64:
      case Gcn3Op::V_CMP_GT_F64: case Gcn3Op::V_CMP_GE_F64:
        i->setFlags(arch::IsF64);
        break;
      default:
        break;
    }
    i->finalizeOperands();
    return i;
}

Gcn3Inst *
Gcn3Inst::flat(Gcn3Op op, Dst dst, unsigned addr_vgpr, unsigned data_vgpr)
{
    auto *i = new Gcn3Inst(op);
    i->setFlags(arch::IsMemory);
    bool is_store = op == Gcn3Op::FLAT_STORE_DWORD ||
                    op == Gcn3Op::FLAT_STORE_DWORDX2;
    bool is_atomic = op == Gcn3Op::FLAT_ATOMIC_ADD;
    i->dst = dst;
    i->srcs[0] = Src::vgpr(addr_vgpr); // 64-bit address pair
    if (is_store || is_atomic)
        i->srcs[1] = Src::vgpr(data_vgpr);
    if (is_store)
        i->setFlags(arch::IsStore);
    else if (is_atomic)
        i->setFlags(arch::IsLoad | arch::IsStore | arch::IsAtomic);
    else
        i->setFlags(arch::IsLoad);
    i->finalizeOperands();
    return i;
}

Gcn3Inst *
Gcn3Inst::ds(Gcn3Op op, Dst dst, unsigned addr_vgpr, unsigned data_vgpr,
             uint32_t offset)
{
    auto *i = new Gcn3Inst(op);
    i->setFlags(arch::IsMemory);
    bool is_store = op == Gcn3Op::DS_WRITE_B32 ||
                    op == Gcn3Op::DS_WRITE_B64;
    i->dst = dst;
    i->srcs[0] = Src::vgpr(addr_vgpr);
    if (is_store)
        i->srcs[1] = Src::vgpr(data_vgpr);
    i->simm = offset;
    i->setFlags(is_store ? arch::IsStore : arch::IsLoad);
    i->finalizeOperands();
    return i;
}

// ---------------------------------------------------------------------
// Source reads
// ---------------------------------------------------------------------

uint32_t
Gcn3Inst::readSrc32(const arch::WfState &wf, unsigned i,
                    unsigned lane) const
{
    const Src &s = srcs[i];
    uint32_t v = 0;
    switch (s.kind) {
      case Src::Kind::Vgpr: v = wf.readVreg(s.reg, lane); break;
      case Src::Kind::Sgpr: v = wf.readSgpr(s.reg); break;
      case Src::Kind::InlineConst:
      case Src::Kind::Literal: v = s.value; break;
      case Src::Kind::InlineConstF64: v = 0; break; // low dword is zero
      case Src::Kind::None: break;
    }
    if (negMask & (1u << i))
        v ^= 0x80000000u; // float negate modifier
    return v;
}

uint64_t
Gcn3Inst::readSrc64(const arch::WfState &wf, unsigned i,
                    unsigned lane) const
{
    const Src &s = srcs[i];
    uint64_t v = 0;
    switch (s.kind) {
      case Src::Kind::Vgpr: v = wf.readVreg64(s.reg, lane); break;
      case Src::Kind::Sgpr: v = wf.readSgpr64(s.reg); break;
      case Src::Kind::InlineConst:
      case Src::Kind::Literal:
        v = uint64_t(int64_t(int32_t(s.value)));
        break;
      case Src::Kind::InlineConstF64:
        v = uint64_t(s.value) << 32;
        break;
      case Src::Kind::None: break;
    }
    if (negMask & (1u << i))
        v ^= 0x8000000000000000ull; // float negate modifier
    return v;
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

void
Gcn3Inst::executeSalu(arch::WfState &wf) const
{
    auto wr32 = [&](uint32_t v) { wf.writeSgpr(dst.reg, v); };
    auto wr64 = [&](uint64_t v) { wf.writeSgpr64(dst.reg, v); };
    uint32_t a = readSrc32(wf, 0, 0);
    uint32_t b = readSrc32(wf, 1, 0);
    // 64-bit views must be lazy: reading reg+1 for a 32-bit operand at
    // the top of the register file would run off the end.
    auto a64 = [&] { return readSrc64(wf, 0, 0); };
    auto b64 = [&] { return readSrc64(wf, 1, 0); };

    switch (opc) {
      case Gcn3Op::S_MOV_B32: wr32(a); break;
      case Gcn3Op::S_MOV_B64: wr64(a64()); break;
      case Gcn3Op::S_NOT_B32: wr32(~a); wf.scc = ~a != 0; break;
      case Gcn3Op::S_AND_SAVEEXEC_B64: {
        uint64_t old = wf.exec;
        wf.exec = a64() & old;
        wr64(old);
        wf.scc = wf.exec != 0;
        break;
      }
      case Gcn3Op::S_OR_SAVEEXEC_B64: {
        uint64_t old = wf.exec;
        wf.exec = a64() | old;
        wr64(old);
        wf.scc = wf.exec != 0;
        break;
      }
      case Gcn3Op::S_ADD_U32: {
        uint64_t r = uint64_t(a) + b;
        wr32(uint32_t(r));
        wf.scc = r >> 32;
        break;
      }
      case Gcn3Op::S_ADDC_U32: {
        uint64_t r = uint64_t(a) + b + (wf.scc ? 1 : 0);
        wr32(uint32_t(r));
        wf.scc = r >> 32;
        break;
      }
      case Gcn3Op::S_SUB_U32:
        wf.scc = b > a;
        wr32(a - b);
        break;
      case Gcn3Op::S_MUL_I32:
        wr32(uint32_t(int32_t(a) * int32_t(b)));
        break;
      case Gcn3Op::S_LSHL_B32: {
        uint32_t r = a << (b & 31);
        wr32(r);
        wf.scc = r != 0;
        break;
      }
      case Gcn3Op::S_LSHR_B32: {
        uint32_t r = a >> (b & 31);
        wr32(r);
        wf.scc = r != 0;
        break;
      }
      case Gcn3Op::S_ASHR_I32: {
        uint32_t r = uint32_t(int32_t(a) >> (b & 31));
        wr32(r);
        wf.scc = r != 0;
        break;
      }
      case Gcn3Op::S_MIN_U32:
        wf.scc = a < b;
        wr32(std::min(a, b));
        break;
      case Gcn3Op::S_MAX_U32:
        wf.scc = a > b;
        wr32(std::max(a, b));
        break;
      case Gcn3Op::S_AND_B32: { uint32_t r = a & b; wr32(r);
        wf.scc = r != 0; break; }
      case Gcn3Op::S_OR_B32: { uint32_t r = a | b; wr32(r);
        wf.scc = r != 0; break; }
      case Gcn3Op::S_XOR_B32: { uint32_t r = a ^ b; wr32(r);
        wf.scc = r != 0; break; }
      case Gcn3Op::S_AND_B64: { uint64_t r = a64() & b64(); wr64(r);
        wf.scc = r != 0; break; }
      case Gcn3Op::S_OR_B64: { uint64_t r = a64() | b64(); wr64(r);
        wf.scc = r != 0; break; }
      case Gcn3Op::S_XOR_B64: { uint64_t r = a64() ^ b64(); wr64(r);
        wf.scc = r != 0; break; }
      case Gcn3Op::S_ANDN2_B64: { uint64_t r = a64() & ~b64(); wr64(r);
        wf.scc = r != 0; break; }
      case Gcn3Op::S_BFE_U32: {
        // src1 packs offset in [4:0] and width in [22:16].
        unsigned off = b & 31;
        unsigned width = (b >> 16) & 0x7f;
        uint32_t mask = width >= 32 ? 0xffffffffu
                                    : ((width == 0) ? 0 : (1u << width) - 1);
        uint32_t r = (a >> off) & mask;
        wr32(r);
        wf.scc = r != 0;
        break;
      }
      case Gcn3Op::S_CSELECT_B32:
        wr32(wf.scc ? a : b);
        break;
      case Gcn3Op::S_CMP_EQ_U32: wf.scc = a == b; break;
      case Gcn3Op::S_CMP_LG_U32: wf.scc = a != b; break;
      case Gcn3Op::S_CMP_LT_U32: wf.scc = a < b; break;
      case Gcn3Op::S_CMP_LE_U32: wf.scc = a <= b; break;
      case Gcn3Op::S_CMP_GT_U32: wf.scc = a > b; break;
      case Gcn3Op::S_CMP_GE_U32: wf.scc = a >= b; break;
      case Gcn3Op::S_CMP_EQ_I32: wf.scc = int32_t(a) == int32_t(b); break;
      case Gcn3Op::S_CMP_LG_I32: wf.scc = int32_t(a) != int32_t(b); break;
      case Gcn3Op::S_CMP_LT_I32: wf.scc = int32_t(a) < int32_t(b); break;
      case Gcn3Op::S_CMP_LE_I32: wf.scc = int32_t(a) <= int32_t(b); break;
      case Gcn3Op::S_CMP_GT_I32: wf.scc = int32_t(a) > int32_t(b); break;
      case Gcn3Op::S_CMP_GE_I32: wf.scc = int32_t(a) >= int32_t(b); break;
      case Gcn3Op::S_MOVK_I32:
        wr32(uint32_t(int32_t(int16_t(simm))));
        break;
      case Gcn3Op::S_ADDK_I32:
        wr32(uint32_t(int32_t(wf.readSgpr(dst.reg)) +
                      int32_t(int16_t(simm))));
        break;
      case Gcn3Op::S_MULK_I32:
        wr32(uint32_t(int32_t(wf.readSgpr(dst.reg)) *
                      int32_t(int16_t(simm))));
        break;
      case Gcn3Op::S_CMPK_EQ_U32:
        wf.scc = wf.readSgpr(dst.reg) == uint32_t(uint16_t(simm));
        break;
      case Gcn3Op::S_CMPK_LT_U32:
        wf.scc = wf.readSgpr(dst.reg) < uint32_t(uint16_t(simm));
        break;
      default:
        panic("unhandled SALU op %s", opName(opc));
    }
}

void
Gcn3Inst::executeVcmp(arch::WfState &wf) const
{
    uint64_t result = 0;
    for (unsigned lane = 0; lane < WavefrontSize; ++lane) {
        if (!(wf.exec & (1ull << lane)))
            continue;
        bool r = false;
        auto cmpi = [&](auto x, auto y) {
            switch (opc) {
              case Gcn3Op::V_CMP_EQ_U32: case Gcn3Op::V_CMP_EQ_I32:
              case Gcn3Op::V_CMP_EQ_F32: case Gcn3Op::V_CMP_EQ_F64:
                return x == y;
              case Gcn3Op::V_CMP_NE_U32: case Gcn3Op::V_CMP_NE_I32:
              case Gcn3Op::V_CMP_NE_F32: case Gcn3Op::V_CMP_NE_F64:
                return x != y;
              case Gcn3Op::V_CMP_LT_U32: case Gcn3Op::V_CMP_LT_I32:
              case Gcn3Op::V_CMP_LT_F32: case Gcn3Op::V_CMP_LT_F64:
                return x < y;
              case Gcn3Op::V_CMP_LE_U32: case Gcn3Op::V_CMP_LE_I32:
              case Gcn3Op::V_CMP_LE_F32: case Gcn3Op::V_CMP_LE_F64:
                return x <= y;
              case Gcn3Op::V_CMP_GT_U32: case Gcn3Op::V_CMP_GT_I32:
              case Gcn3Op::V_CMP_GT_F32: case Gcn3Op::V_CMP_GT_F64:
                return x > y;
              case Gcn3Op::V_CMP_GE_U32: case Gcn3Op::V_CMP_GE_I32:
              case Gcn3Op::V_CMP_GE_F32: case Gcn3Op::V_CMP_GE_F64:
                return x >= y;
              default:
                return false;
            }
        };
        switch (opc) {
          case Gcn3Op::V_CMP_EQ_F32: case Gcn3Op::V_CMP_NE_F32:
          case Gcn3Op::V_CMP_LT_F32: case Gcn3Op::V_CMP_LE_F32:
          case Gcn3Op::V_CMP_GT_F32: case Gcn3Op::V_CMP_GE_F32:
            r = cmpi(asF32(readSrc32(wf, 0, lane)),
                     asF32(readSrc32(wf, 1, lane)));
            break;
          case Gcn3Op::V_CMP_EQ_F64: case Gcn3Op::V_CMP_NE_F64:
          case Gcn3Op::V_CMP_LT_F64: case Gcn3Op::V_CMP_LE_F64:
          case Gcn3Op::V_CMP_GT_F64: case Gcn3Op::V_CMP_GE_F64:
            r = cmpi(asF64(readSrc64(wf, 0, lane)),
                     asF64(readSrc64(wf, 1, lane)));
            break;
          case Gcn3Op::V_CMP_EQ_I32: case Gcn3Op::V_CMP_NE_I32:
          case Gcn3Op::V_CMP_LT_I32: case Gcn3Op::V_CMP_LE_I32:
          case Gcn3Op::V_CMP_GT_I32: case Gcn3Op::V_CMP_GE_I32:
            r = cmpi(int32_t(readSrc32(wf, 0, lane)),
                     int32_t(readSrc32(wf, 1, lane)));
            break;
          default:
            r = cmpi(readSrc32(wf, 0, lane), readSrc32(wf, 1, lane));
            break;
        }
        if (r)
            result |= 1ull << lane;
    }
    wf.vcc = result;
}

void
Gcn3Inst::executeValu(arch::WfState &wf) const
{
    uint64_t new_vcc = wf.vcc;
    for (unsigned lane = 0; lane < WavefrontSize; ++lane) {
        uint64_t bit = 1ull << lane;
        if (!(wf.exec & bit))
            continue;
        uint32_t a = readSrc32(wf, 0, lane);
        uint32_t b = readSrc32(wf, 1, lane);
        uint32_t c = readSrc32(wf, 2, lane);
        auto a64 = [&] { return readSrc64(wf, 0, lane); };
        auto b64 = [&] { return readSrc64(wf, 1, lane); };
        auto c64 = [&] { return readSrc64(wf, 2, lane); };
        auto wr = [&](uint32_t v) { wf.writeVreg(dst.reg, lane, v); };
        auto wr64v = [&](uint64_t v) { wf.writeVreg64(dst.reg, lane, v); };

        switch (opc) {
          case Gcn3Op::V_MOV_B32: wr(a); break;
          case Gcn3Op::V_NOT_B32: wr(~a); break;
          case Gcn3Op::V_RCP_F32: wr(fromF32(1.0f / asF32(a))); break;
          case Gcn3Op::V_RCP_F64: wr64v(fromF64(1.0 / asF64(a64()))); break;
          case Gcn3Op::V_SQRT_F32:
            wr(fromF32(std::sqrt(asF32(a))));
            break;
          case Gcn3Op::V_SQRT_F64:
            wr64v(fromF64(std::sqrt(asF64(a64()))));
            break;
          case Gcn3Op::V_CVT_F32_U32: wr(fromF32(float(a))); break;
          case Gcn3Op::V_CVT_F32_I32:
            wr(fromF32(float(int32_t(a))));
            break;
          case Gcn3Op::V_CVT_U32_F32:
            wr(uint32_t(asF32(a)));
            break;
          case Gcn3Op::V_CVT_I32_F32:
            wr(uint32_t(int32_t(asF32(a))));
            break;
          case Gcn3Op::V_CVT_F64_F32:
            wr64v(fromF64(double(asF32(a))));
            break;
          case Gcn3Op::V_CVT_F32_F64:
            wr(fromF32(float(asF64(a64()))));
            break;
          case Gcn3Op::V_CVT_F64_U32: wr64v(fromF64(double(a))); break;
          case Gcn3Op::V_CVT_U32_F64:
            wr(uint32_t(asF64(a64())));
            break;
          case Gcn3Op::V_ADD_U32: {
            uint64_t r = uint64_t(a) + b;
            wr(uint32_t(r));
            new_vcc = (r >> 32) ? (new_vcc | bit) : (new_vcc & ~bit);
            break;
          }
          case Gcn3Op::V_ADDC_U32: {
            uint64_t r = uint64_t(a) + b + ((wf.vcc & bit) ? 1 : 0);
            wr(uint32_t(r));
            new_vcc = (r >> 32) ? (new_vcc | bit) : (new_vcc & ~bit);
            break;
          }
          case Gcn3Op::V_SUB_U32: {
            new_vcc = (b > a) ? (new_vcc | bit) : (new_vcc & ~bit);
            wr(a - b);
            break;
          }
          case Gcn3Op::V_SUBB_U32: {
            uint32_t borrow_in = (wf.vcc & bit) ? 1 : 0;
            uint64_t rhs = uint64_t(b) + borrow_in;
            new_vcc = (rhs > a) ? (new_vcc | bit) : (new_vcc & ~bit);
            wr(uint32_t(a - rhs));
            break;
          }
          case Gcn3Op::V_MUL_LO_U32: wr(a * b); break;
          case Gcn3Op::V_MUL_HI_U32:
            wr(uint32_t((uint64_t(a) * b) >> 32));
            break;
          case Gcn3Op::V_ADD_F32: wr(fromF32(asF32(a) + asF32(b))); break;
          case Gcn3Op::V_SUB_F32: wr(fromF32(asF32(a) - asF32(b))); break;
          case Gcn3Op::V_MUL_F32: wr(fromF32(asF32(a) * asF32(b))); break;
          case Gcn3Op::V_MAC_F32:
            wr(fromF32(asF32(a) * asF32(b) +
                       asF32(wf.readVreg(dst.reg, lane))));
            break;
          case Gcn3Op::V_MIN_F32:
            wr(fromF32(std::fmin(asF32(a), asF32(b))));
            break;
          case Gcn3Op::V_MAX_F32:
            wr(fromF32(std::fmax(asF32(a), asF32(b))));
            break;
          case Gcn3Op::V_MIN_U32: wr(std::min(a, b)); break;
          case Gcn3Op::V_MAX_U32: wr(std::max(a, b)); break;
          case Gcn3Op::V_MIN_I32:
            wr(uint32_t(std::min(int32_t(a), int32_t(b))));
            break;
          case Gcn3Op::V_MAX_I32:
            wr(uint32_t(std::max(int32_t(a), int32_t(b))));
            break;
          case Gcn3Op::V_AND_B32: wr(a & b); break;
          case Gcn3Op::V_OR_B32: wr(a | b); break;
          case Gcn3Op::V_XOR_B32: wr(a ^ b); break;
          case Gcn3Op::V_LSHLREV_B32: wr(b << (a & 31)); break;
          case Gcn3Op::V_LSHRREV_B32: wr(b >> (a & 31)); break;
          case Gcn3Op::V_ASHRREV_I32:
            wr(uint32_t(int32_t(b) >> (a & 31)));
            break;
          case Gcn3Op::V_CNDMASK_B32:
            wr((wf.vcc & bit) ? b : a);
            break;
          case Gcn3Op::V_MAD_F32:
            wr(fromF32(asF32(a) * asF32(b) + asF32(c)));
            break;
          case Gcn3Op::V_FMA_F32:
            wr(fromF32(std::fma(asF32(a), asF32(b), asF32(c))));
            break;
          case Gcn3Op::V_MAD_U32_U24:
            wr((a & 0xffffff) * (b & 0xffffff) + c);
            break;
          case Gcn3Op::V_BFE_U32: {
            unsigned off = b & 31;
            unsigned width = c & 31;
            uint32_t mask = width == 0 ? 0xffffffffu : ((1u << width) - 1);
            wr((a >> off) & mask);
            break;
          }
          case Gcn3Op::V_ADD_F64:
            wr64v(fromF64(asF64(a64()) + asF64(b64())));
            break;
          case Gcn3Op::V_MUL_F64:
            wr64v(fromF64(asF64(a64()) * asF64(b64())));
            break;
          case Gcn3Op::V_FMA_F64:
            wr64v(fromF64(std::fma(asF64(a64()), asF64(b64()), asF64(c64()))));
            break;
          case Gcn3Op::V_MIN_F64:
            wr64v(fromF64(std::fmin(asF64(a64()), asF64(b64()))));
            break;
          case Gcn3Op::V_MAX_F64:
            wr64v(fromF64(std::fmax(asF64(a64()), asF64(b64()))));
            break;
          case Gcn3Op::V_DIV_SCALE_F32:
            // Scaling pass-through: the fixup step produces the exact
            // quotient, so no scaling is required in this model.
            wr(a);
            new_vcc &= ~bit;
            break;
          case Gcn3Op::V_DIV_SCALE_F64:
            wr64v(a64());
            new_vcc &= ~bit;
            break;
          case Gcn3Op::V_DIV_FMAS_F32:
            wr(fromF32(std::fma(asF32(a), asF32(b), asF32(c))));
            break;
          case Gcn3Op::V_DIV_FMAS_F64:
            wr64v(fromF64(std::fma(asF64(a64()), asF64(b64()), asF64(c64()))));
            break;
          case Gcn3Op::V_DIV_FIXUP_F32:
            // dst = numerator(src2) / denominator(src1), correctly
            // rounded; the hardware sequence guarantees this, so the
            // model computes it exactly here.
            wr(fromF32(asF32(c) / asF32(b)));
            break;
          case Gcn3Op::V_DIV_FIXUP_F64:
            wr64v(fromF64(asF64(c64()) / asF64(b64())));
            break;
          default:
            panic("unhandled VALU op %s", opName(opc));
        }
    }
    wf.vcc = new_vcc;
}

void
Gcn3Inst::executeSmem(arch::WfState &wf) const
{
    Addr addr = wf.readSgpr64(srcs[0].reg) + simm;
    unsigned dwords = dstWidth();
    for (unsigned d = 0; d < dwords; ++d) {
        uint32_t v = wf.memory->read<uint32_t>(addr + 4 * d);
        wf.writeSgpr(dst.reg + d, v);
    }
    arch::MemAccess acc;
    acc.kind = arch::MemAccess::Kind::ScalarLoad;
    acc.scalarAddr = addr;
    acc.scalarBytes = 4 * dwords;
    wf.pendingAccess = acc;
}

void
Gcn3Inst::executeFlat(arch::WfState &wf) const
{
    arch::MemAccess acc;
    bool is_store = is(arch::IsStore) && !is(arch::IsAtomic);
    unsigned dwords =
        (opc == Gcn3Op::FLAT_LOAD_DWORDX2 ||
         opc == Gcn3Op::FLAT_STORE_DWORDX2) ? 2 : 1;
    acc.kind = is_store ? arch::MemAccess::Kind::VectorStore
                        : arch::MemAccess::Kind::VectorLoad;
    acc.bytesPerLane = 4 * dwords;
    acc.mask = wf.exec;

    for (unsigned lane = 0; lane < WavefrontSize; ++lane) {
        if (!(wf.exec & (1ull << lane)))
            continue;
        Addr addr = wf.readVreg64(srcs[0].reg, lane);
        acc.laneAddrs[lane] = addr;
        if (opc == Gcn3Op::FLAT_ATOMIC_ADD) {
            uint32_t old = wf.memory->read<uint32_t>(addr);
            uint32_t add = wf.readVreg(srcs[1].reg, lane);
            wf.memory->write<uint32_t>(addr, old + add);
            if (dst.valid())
                wf.writeVreg(dst.reg, lane, old);
        } else if (is_store) {
            for (unsigned d = 0; d < dwords; ++d)
                wf.memory->write<uint32_t>(
                    addr + 4 * d, wf.readVreg(srcs[1].reg + d, lane));
        } else {
            for (unsigned d = 0; d < dwords; ++d)
                wf.writeVreg(dst.reg + d, lane,
                             wf.memory->read<uint32_t>(addr + 4 * d));
        }
    }
    wf.pendingAccess = acc;
}

void
Gcn3Inst::executeDs(arch::WfState &wf) const
{
    arch::MemAccess acc;
    bool is_store = is(arch::IsStore);
    unsigned dwords =
        (opc == Gcn3Op::DS_READ_B64 || opc == Gcn3Op::DS_WRITE_B64) ? 2
                                                                    : 1;
    acc.kind = is_store ? arch::MemAccess::Kind::LdsStore
                        : arch::MemAccess::Kind::LdsLoad;
    acc.bytesPerLane = 4 * dwords;
    acc.mask = wf.exec;

    for (unsigned lane = 0; lane < WavefrontSize; ++lane) {
        if (!(wf.exec & (1ull << lane)))
            continue;
        Addr off = Addr(wf.readVreg(srcs[0].reg, lane)) + simm;
        acc.laneAddrs[lane] = off;
        if (is_store) {
            for (unsigned d = 0; d < dwords; ++d)
                wf.lds->write32(off + 4 * d,
                                wf.readVreg(srcs[1].reg + d, lane));
        } else {
            for (unsigned d = 0; d < dwords; ++d)
                wf.writeVreg(dst.reg + d, lane,
                             wf.lds->read32(off + 4 * d));
        }
    }
    wf.pendingAccess = acc;
}

void
Gcn3Inst::executeSopp(arch::WfState &wf) const
{
    Addr fallthrough = wf.pc + sizeBytes();
    switch (opc) {
      case Gcn3Op::S_NOP:
      case Gcn3Op::S_WAITCNT:
        break;
      case Gcn3Op::S_ENDPGM:
        wf.done = true;
        break;
      case Gcn3Op::S_BARRIER:
        wf.atBarrier = true;
        break;
      case Gcn3Op::S_BRANCH:
        wf.nextPc = targetOff;
        return;
      case Gcn3Op::S_CBRANCH_SCC0:
        wf.nextPc = !wf.scc ? targetOff : fallthrough;
        return;
      case Gcn3Op::S_CBRANCH_SCC1:
        wf.nextPc = wf.scc ? targetOff : fallthrough;
        return;
      case Gcn3Op::S_CBRANCH_VCCZ:
        wf.nextPc = wf.vcc == 0 ? targetOff : fallthrough;
        return;
      case Gcn3Op::S_CBRANCH_VCCNZ:
        wf.nextPc = wf.vcc != 0 ? targetOff : fallthrough;
        return;
      case Gcn3Op::S_CBRANCH_EXECZ:
        wf.nextPc = wf.exec == 0 ? targetOff : fallthrough;
        return;
      case Gcn3Op::S_CBRANCH_EXECNZ:
        wf.nextPc = wf.exec != 0 ? targetOff : fallthrough;
        return;
      default:
        panic("unhandled SOPP op %s", opName(opc));
    }
    wf.nextPc = fallthrough;
}

void
Gcn3Inst::execute(arch::WfState &wf) const
{
    wf.nextPc = wf.pc + sizeBytes();
    switch (format()) {
      case Format::SOP1:
      case Format::SOP2:
      case Format::SOPC:
      case Format::SOPK:
        executeSalu(wf);
        return;
      case Format::SOPP:
        executeSopp(wf);
        return;
      case Format::SMEM:
        executeSmem(wf);
        return;
      case Format::VOPC:
        executeVcmp(wf);
        return;
      case Format::VOP1:
      case Format::VOP2:
      case Format::VOP3:
        executeValu(wf);
        return;
      case Format::FLAT:
        executeFlat(wf);
        return;
      case Format::DS:
        executeDs(wf);
        return;
    }
}

std::string
Gcn3Inst::disassemble() const
{
    std::ostringstream os;
    std::string name = opName(opc);
    std::transform(name.begin(), name.end(), name.begin(),
                   [](unsigned char ch) { return std::tolower(ch); });
    os << name;

    auto sregName = [](unsigned r, unsigned w) {
        std::ostringstream s;
        if (r == arch::RegVccLo)
            s << "vcc";
        else if (r == arch::RegExecLo)
            s << "exec";
        else if (w == 2)
            s << "s[" << r << ":" << r + 1 << "]";
        else if (w == 4)
            s << "s[" << r << ":" << r + 3 << "]";
        else
            s << "s" << r;
        return s.str();
    };
    auto vregName = [](unsigned r, unsigned w) {
        std::ostringstream s;
        if (w >= 2)
            s << "v[" << r << ":" << r + w - 1 << "]";
        else
            s << "v" << r;
        return s.str();
    };
    auto srcName = [&](unsigned i) {
        const Src &s = srcs[i];
        std::ostringstream t;
        switch (s.kind) {
          case Src::Kind::Vgpr:
            t << vregName(s.reg, isWide(i) ? 2 : 1);
            break;
          case Src::Kind::Sgpr:
            t << sregName(s.reg, isWide(i) ? 2 : 1);
            break;
          case Src::Kind::InlineConst:
          case Src::Kind::Literal:
            t << "0x" << std::hex << s.value;
            break;
          case Src::Kind::InlineConstF64:
            t << __builtin_bit_cast(double, uint64_t(s.value) << 32);
            break;
          case Src::Kind::None:
            break;
        }
        return t.str();
    };

    bool first = true;
    auto sep = [&]() -> std::ostream & {
        os << (first ? " " : ", ");
        first = false;
        return os;
    };

    if (opc == Gcn3Op::S_WAITCNT) {
        os << " vmcnt(" << vmThreshold() << ") lgkmcnt("
           << lgkmThreshold() << ")";
        return os.str();
    }
    if (is(arch::IsBranch)) {
        os << " @" << targetIdx;
        return os.str();
    }
    if (format() == Format::SMEM) {
        sep() << sregName(dst.reg, dstWidth());
        sep() << sregName(srcs[0].reg, 2);
        sep() << "0x" << std::hex << simm;
        return os.str();
    }

    if (dst.valid()) {
        if (dst.kind == Dst::Kind::Vgpr)
            sep() << vregName(dst.reg, dstWidth());
        else
            sep() << sregName(dst.reg, dstWidth());
    } else if (format() == Format::VOPC) {
        sep() << "vcc";
    }
    for (unsigned i = 0; i < 3; ++i)
        if (srcs[i].valid())
            sep() << srcName(i);
    if (format() == Format::DS)
        sep() << "offset:" << simm;
    return os.str();
}

void
resolveBranchTargets(arch::KernelCode &code)
{
    panic_if(code.isa() != IsaKind::GCN3, "expected a GCN3 kernel");
    for (size_t i = 0; i < code.numInsts(); ++i) {
        auto &inst = const_cast<Gcn3Inst &>(
            static_cast<const Gcn3Inst &>(code.inst(i)));
        if (inst.is(arch::IsBranch))
            inst.setTargetOffset(code.offsetOf(inst.targetIndex()));
    }
}

} // namespace last::gcn3
