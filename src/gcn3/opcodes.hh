/**
 * @file
 * The GCN3-like machine ISA: opcode and encoding-format definitions.
 *
 * Deliberate abstraction properties (matching the paper's GCN3):
 *  - Vector ISA: the 64-lane execution mask (EXEC) is architectural and
 *    manipulated by scalar instructions.
 *  - A scalar pipeline with its own register file, ALU, and memory path.
 *  - Software dependency management: s_waitcnt / s_nop, no scoreboard.
 *  - Variable-length hardware encodings: 32 b, 64 b, or +32 b literal.
 *  - FP division is a multi-instruction Newton-Raphson sequence.
 */

#ifndef LAST_GCN3_OPCODES_HH
#define LAST_GCN3_OPCODES_HH

#include <cstdint>

namespace last::gcn3
{

/** Encoding formats; determine base encoded size. */
enum class Format : uint8_t
{
    SOP1,  ///< 32 b scalar 1-src
    SOP2,  ///< 32 b scalar 2-src
    SOPC,  ///< 32 b scalar compare
    SOPK,  ///< 32 b scalar + 16-bit constant
    SOPP,  ///< 32 b program control (branch, waitcnt, barrier, ...)
    SMEM,  ///< 64 b scalar memory
    VOP1,  ///< 32 b vector 1-src
    VOP2,  ///< 32 b vector 2-src
    VOPC,  ///< 32 b vector compare (writes VCC)
    VOP3,  ///< 64 b vector 3-src / extended
    FLAT,  ///< 64 b flat memory
    DS,    ///< 64 b LDS
};

/** Base encoded bytes for a format (a used literal adds 4). */
constexpr unsigned
formatBytes(Format f)
{
    switch (f) {
      case Format::SMEM:
      case Format::VOP3:
      case Format::FLAT:
      case Format::DS:
        return 8;
      default:
        return 4;
    }
}

// X-macro: opcode, format.
#define LAST_GCN3_OPCODES(X)                                                 \
    /* --- scalar ALU ---------------------------------------------- */     \
    X(S_MOV_B32, SOP1)                                                       \
    X(S_MOV_B64, SOP1)                                                       \
    X(S_NOT_B32, SOP1)                                                       \
    X(S_AND_SAVEEXEC_B64, SOP1)                                              \
    X(S_OR_SAVEEXEC_B64, SOP1)                                               \
    X(S_ADD_U32, SOP2)                                                       \
    X(S_ADDC_U32, SOP2)                                                      \
    X(S_SUB_U32, SOP2)                                                       \
    X(S_MUL_I32, SOP2)                                                       \
    X(S_LSHL_B32, SOP2)                                                      \
    X(S_LSHR_B32, SOP2)                                                      \
    X(S_ASHR_I32, SOP2)                                                      \
    X(S_MIN_U32, SOP2)                                                       \
    X(S_MAX_U32, SOP2)                                                       \
    X(S_AND_B32, SOP2)                                                       \
    X(S_OR_B32, SOP2)                                                        \
    X(S_XOR_B32, SOP2)                                                       \
    X(S_BFE_U32, SOP2)                                                       \
    X(S_AND_B64, SOP2)                                                       \
    X(S_OR_B64, SOP2)                                                        \
    X(S_XOR_B64, SOP2)                                                       \
    X(S_ANDN2_B64, SOP2)                                                     \
    X(S_CSELECT_B32, SOP2)                                                   \
    /* --- scalar compare (writes SCC) ----------------------------- */     \
    X(S_CMP_EQ_U32, SOPC)                                                    \
    X(S_CMP_LG_U32, SOPC)                                                    \
    X(S_CMP_LT_U32, SOPC)                                                    \
    X(S_CMP_LE_U32, SOPC)                                                    \
    X(S_CMP_GT_U32, SOPC)                                                    \
    X(S_CMP_GE_U32, SOPC)                                                    \
    X(S_CMP_EQ_I32, SOPC)                                                    \
    X(S_CMP_LG_I32, SOPC)                                                    \
    X(S_CMP_LT_I32, SOPC)                                                    \
    X(S_CMP_LE_I32, SOPC)                                                    \
    X(S_CMP_GT_I32, SOPC)                                                    \
    X(S_CMP_GE_I32, SOPC)                                                    \
    /* --- SOPK ---------------------------------------------------- */     \
    X(S_MOVK_I32, SOPK)                                                      \
    X(S_ADDK_I32, SOPK)                                                      \
    X(S_MULK_I32, SOPK)                                                      \
    X(S_CMPK_EQ_U32, SOPK)                                                   \
    X(S_CMPK_LT_U32, SOPK)                                                   \
    /* --- program control ----------------------------------------- */     \
    X(S_NOP, SOPP)                                                           \
    X(S_ENDPGM, SOPP)                                                        \
    X(S_BRANCH, SOPP)                                                        \
    X(S_CBRANCH_SCC0, SOPP)                                                  \
    X(S_CBRANCH_SCC1, SOPP)                                                  \
    X(S_CBRANCH_VCCZ, SOPP)                                                  \
    X(S_CBRANCH_VCCNZ, SOPP)                                                 \
    X(S_CBRANCH_EXECZ, SOPP)                                                 \
    X(S_CBRANCH_EXECNZ, SOPP)                                                \
    X(S_BARRIER, SOPP)                                                       \
    X(S_WAITCNT, SOPP)                                                       \
    /* --- scalar memory ------------------------------------------- */     \
    X(S_LOAD_DWORD, SMEM)                                                    \
    X(S_LOAD_DWORDX2, SMEM)                                                  \
    X(S_LOAD_DWORDX4, SMEM)                                                  \
    /* --- vector ALU ---------------------------------------------- */     \
    X(V_MOV_B32, VOP1)                                                       \
    X(V_NOT_B32, VOP1)                                                       \
    X(V_RCP_F32, VOP1)                                                       \
    X(V_RCP_F64, VOP1)                                                       \
    X(V_SQRT_F32, VOP1)                                                      \
    X(V_SQRT_F64, VOP1)                                                      \
    X(V_CVT_F32_U32, VOP1)                                                   \
    X(V_CVT_F32_I32, VOP1)                                                   \
    X(V_CVT_U32_F32, VOP1)                                                   \
    X(V_CVT_I32_F32, VOP1)                                                   \
    X(V_CVT_F64_F32, VOP1)                                                   \
    X(V_CVT_F32_F64, VOP1)                                                   \
    X(V_CVT_F64_U32, VOP1)                                                   \
    X(V_CVT_U32_F64, VOP1)                                                   \
    X(V_ADD_U32, VOP2)  /* writes VCC carry */                               \
    X(V_ADDC_U32, VOP2) /* reads+writes VCC */                               \
    X(V_SUB_U32, VOP2)  /* writes VCC borrow */                              \
    X(V_SUBB_U32, VOP2)                                                      \
    X(V_MUL_LO_U32, VOP3)                                                    \
    X(V_MUL_HI_U32, VOP3)                                                    \
    X(V_ADD_F32, VOP2)                                                       \
    X(V_SUB_F32, VOP2)                                                       \
    X(V_MUL_F32, VOP2)                                                       \
    X(V_MAC_F32, VOP2)                                                       \
    X(V_MIN_F32, VOP2)                                                       \
    X(V_MAX_F32, VOP2)                                                       \
    X(V_MIN_U32, VOP2)                                                       \
    X(V_MAX_U32, VOP2)                                                       \
    X(V_MIN_I32, VOP2)                                                       \
    X(V_MAX_I32, VOP2)                                                       \
    X(V_AND_B32, VOP2)                                                       \
    X(V_OR_B32, VOP2)                                                        \
    X(V_XOR_B32, VOP2)                                                       \
    X(V_LSHLREV_B32, VOP2)                                                   \
    X(V_LSHRREV_B32, VOP2)                                                   \
    X(V_ASHRREV_I32, VOP2)                                                   \
    X(V_CNDMASK_B32, VOP2) /* dst = vcc ? src1 : src0 */                     \
    X(V_MAD_F32, VOP3)                                                       \
    X(V_FMA_F32, VOP3)                                                       \
    X(V_MAD_U32_U24, VOP3)                                                   \
    X(V_BFE_U32, VOP3)                                                       \
    X(V_ADD_F64, VOP3)                                                       \
    X(V_MUL_F64, VOP3)                                                       \
    X(V_FMA_F64, VOP3)                                                       \
    X(V_MIN_F64, VOP3)                                                       \
    X(V_MAX_F64, VOP3)                                                       \
    X(V_DIV_SCALE_F32, VOP3)                                                 \
    X(V_DIV_SCALE_F64, VOP3)                                                 \
    X(V_DIV_FMAS_F32, VOP3)                                                  \
    X(V_DIV_FMAS_F64, VOP3)                                                  \
    X(V_DIV_FIXUP_F32, VOP3)                                                 \
    X(V_DIV_FIXUP_F64, VOP3)                                                 \
    /* --- vector compare (writes VCC) ----------------------------- */     \
    X(V_CMP_EQ_U32, VOPC)                                                    \
    X(V_CMP_NE_U32, VOPC)                                                    \
    X(V_CMP_LT_U32, VOPC)                                                    \
    X(V_CMP_LE_U32, VOPC)                                                    \
    X(V_CMP_GT_U32, VOPC)                                                    \
    X(V_CMP_GE_U32, VOPC)                                                    \
    X(V_CMP_EQ_I32, VOPC)                                                    \
    X(V_CMP_NE_I32, VOPC)                                                    \
    X(V_CMP_LT_I32, VOPC)                                                    \
    X(V_CMP_LE_I32, VOPC)                                                    \
    X(V_CMP_GT_I32, VOPC)                                                    \
    X(V_CMP_GE_I32, VOPC)                                                    \
    X(V_CMP_EQ_F32, VOPC)                                                    \
    X(V_CMP_NE_F32, VOPC)                                                    \
    X(V_CMP_LT_F32, VOPC)                                                    \
    X(V_CMP_LE_F32, VOPC)                                                    \
    X(V_CMP_GT_F32, VOPC)                                                    \
    X(V_CMP_GE_F32, VOPC)                                                    \
    X(V_CMP_EQ_F64, VOPC)                                                    \
    X(V_CMP_NE_F64, VOPC)                                                    \
    X(V_CMP_LT_F64, VOPC)                                                    \
    X(V_CMP_LE_F64, VOPC)                                                    \
    X(V_CMP_GT_F64, VOPC)                                                    \
    X(V_CMP_GE_F64, VOPC)                                                    \
    /* --- flat memory --------------------------------------------- */     \
    X(FLAT_LOAD_DWORD, FLAT)                                                 \
    X(FLAT_LOAD_DWORDX2, FLAT)                                               \
    X(FLAT_STORE_DWORD, FLAT)                                                \
    X(FLAT_STORE_DWORDX2, FLAT)                                              \
    X(FLAT_ATOMIC_ADD, FLAT)                                                 \
    /* --- LDS ------------------------------------------------------ */    \
    X(DS_READ_B32, DS)                                                       \
    X(DS_WRITE_B32, DS)                                                      \
    X(DS_READ_B64, DS)                                                       \
    X(DS_WRITE_B64, DS)

enum class Gcn3Op : uint16_t
{
#define LAST_X(name, fmt) name,
    LAST_GCN3_OPCODES(LAST_X)
#undef LAST_X
    NumOpcodes,
};

const char *opName(Gcn3Op op);
Format opFormat(Gcn3Op op);

} // namespace last::gcn3

#endif // LAST_GCN3_OPCODES_HH
