#include "obs/trace.hh"

#include <array>

#include "obs/json.hh"

namespace last::obs
{

const char *
instClassName(InstClass c)
{
    switch (c) {
      case InstClass::VAlu: return "valu";
      case InstClass::SAlu: return "salu";
      case InstClass::VMem: return "vmem";
      case InstClass::SMem: return "smem";
      case InstClass::Lds: return "lds";
      case InstClass::Branch: return "branch";
      case InstClass::Waitcnt: return "waitcnt";
      case InstClass::Misc: return "misc";
    }
    return "misc";
}

uint64_t
TraceStream::intern(const std::string &s)
{
    for (size_t i = 0; i < strings.size(); ++i)
        if (strings[i] == s)
            return i;
    strings.push_back(s);
    return strings.size() - 1;
}

TraceStream *
TraceSink::makeStream(const std::string &name, uint32_t tid)
{
    std::lock_guard<std::mutex> lock(mu);
    streams.emplace_back();
    TraceStream &s = streams.back();
    s.name_ = name;
    s.tid_ = tid;
    s.cap = cap;
    s.ev.reserve(std::min(cap, size_t(4096)));
    return &s;
}

size_t
TraceSink::numStreams() const
{
    std::lock_guard<std::mutex> lock(mu);
    return streams.size();
}

uint64_t
TraceSink::totalEvents() const
{
    std::lock_guard<std::mutex> lock(mu);
    uint64_t n = 0;
    for (const TraceStream &s : streams)
        n += s.ev.size();
    return n;
}

uint64_t
TraceSink::totalDropped() const
{
    std::lock_guard<std::mutex> lock(mu);
    uint64_t n = 0;
    for (const TraceStream &s : streams)
        n += s.droppedCount;
    return n;
}

namespace
{

/** Chrome event name + phase + arg labels for each kind. */
struct KindInfo
{
    const char *name;
    bool span; ///< true: "X" complete event; false: "i" instant
    const char *arg0Label;
    const char *arg1Label;
};

KindInfo
kindInfo(TraceKind k)
{
    switch (k) {
      case TraceKind::InstIssue:
        return {"inst", true, "slot", "pc"};
      case TraceKind::IbFlush:
        return {"ib_flush", false, "slot", "flushed"};
      case TraceKind::RsPush:
        return {"rs_push", false, "slot", "depth"};
      case TraceKind::RsPop:
        return {"rs_pop", false, "slot", "depth"};
      case TraceKind::DepStall:
        return {"dep_stall", true, "slot", "kind"};
      case TraceKind::WfStart:
        return {"wf_start", false, "slot", "wg"};
      case TraceKind::WfEnd:
        return {"wf_end", false, "slot", "wg"};
      case TraceKind::CacheMiss:
        return {"miss", true, "addr", "write"};
      case TraceKind::KernelDispatch:
        return {"kernel", true, "name", nullptr};
      case TraceKind::IdleSkip:
        return {"idle_skip", true, "skipped", nullptr};
      case TraceKind::Watchdog:
        return {"watchdog", false, "reason", nullptr};
    }
    return {"event", false, "arg0", "arg1"};
}

void
writeEvent(std::ostream &os, const TraceStream &s, const TraceEvent &e,
           bool &first)
{
    KindInfo info = kindInfo(e.kind);

    // A few kinds refine the generic mapping: InstIssue takes its name
    // from the issue class packed into arg1, DepStall from the stall
    // flavour, and the string-carrying kinds resolve their string id.
    std::string name = info.name;
    std::string args;
    switch (e.kind) {
      case TraceKind::InstIssue:
        name = instClassName(InstClass(e.arg1 & 0xf));
        args = "\"slot\":" + jsonNumber(double(e.arg0)) +
               ",\"pc\":" + jsonNumber(double(e.arg1 >> 4));
        break;
      case TraceKind::DepStall:
        name = e.arg1 ? "waitcnt_stall" : "scoreboard_stall";
        args = "\"slot\":" + jsonNumber(double(e.arg0));
        break;
      case TraceKind::KernelDispatch:
      case TraceKind::Watchdog:
        args = "\"" + std::string(info.arg0Label) + "\":\"" +
               jsonEscape(s.string(e.arg0)) + "\"";
        break;
      default:
        args = "\"" + std::string(info.arg0Label) +
               "\":" + jsonNumber(double(e.arg0));
        if (info.arg1Label)
            args += ",\"" + std::string(info.arg1Label) +
                    "\":" + jsonNumber(double(e.arg1));
    }
    if (e.kind == TraceKind::KernelDispatch)
        name = "kernel " + s.string(e.arg0);

    if (!first)
        os << ",\n";
    first = false;
    os << "{\"name\":\"" << jsonEscape(name) << "\",\"ph\":\""
       << (info.span ? 'X' : 'i') << "\",\"pid\":1,\"tid\":" << s.tid()
       << ",\"ts\":" << e.ts;
    if (info.span)
        os << ",\"dur\":" << (e.dur ? e.dur : 1);
    else
        os << ",\"s\":\"t\"";
    os << ",\"args\":{" << args << "}}";
}

} // namespace

void
TraceSink::writeChromeTrace(std::ostream &os, const TraceMeta &meta) const
{
    std::lock_guard<std::mutex> lock(mu);

    os << "{\n\"displayTimeUnit\":\"ms\",\n\"otherData\":{"
       << "\"schema\":\"last-trace-v1\""
       << ",\"workload\":\"" << jsonEscape(meta.workload) << "\""
       << ",\"isa\":\"" << jsonEscape(meta.isa) << "\""
       << ",\"scale\":" << jsonNumber(meta.scale)
       << ",\"seed\":" << jsonNumber(double(meta.seed))
       << ",\"fault_plan\":\"" << jsonEscape(meta.faultPlan) << "\""
       << ",\"time_unit\":\"1 ts = 1 GPU cycle\"},\n\"traceEvents\":[\n";

    bool first = true;

    // Metadata events: name the process and one viewer track per stream.
    std::string proc = meta.workload.empty() ? std::string("last")
                                             : meta.workload;
    if (!meta.isa.empty())
        proc += "/" + meta.isa;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
       << "\"args\":{\"name\":\"" << jsonEscape(proc) << "\"}}";
    first = false;
    for (const TraceStream &s : streams) {
        os << ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
           << "\"tid\":" << s.tid() << ",\"args\":{\"name\":\""
           << jsonEscape(s.threadName()) << "\"}}";
        os << ",\n{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,"
           << "\"tid\":" << s.tid() << ",\"args\":{\"sort_index\":"
           << s.tid() << "}}";
    }

    for (const TraceStream &s : streams)
        for (const TraceEvent &e : s.ev)
            writeEvent(os, s, e, first);

    os << "\n]}\n";
}

} // namespace last::obs
