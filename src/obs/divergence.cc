#include "obs/divergence.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/json.hh"

namespace last::obs
{

namespace
{

/** The compared statistics, in figure order. `expect` is the paper's
 *  published classification of the IL-level statistic against the
 *  machine-ISA ground truth ("" = no position taken). */
struct Metric
{
    const char *stat;
    const char *figure;
    const char *expect;
    double (*get)(const sim::AppResult &);
};

#define METRIC(field) [](const sim::AppResult &r) { return double(r.field); }

const Metric kMetrics[] = {
    {"dynInsts", "Figure 5", "divergent", METRIC(dynInsts)},
    {"valu", "Figure 5", "divergent", METRIC(valu)},
    {"salu", "Figure 5", "divergent", METRIC(salu)},
    {"vmem", "Figure 5", "similar", METRIC(vmem)},
    {"branch", "Figure 5", "divergent", METRIC(branch)},
    {"vrfBankConflicts", "Figure 6", "divergent", METRIC(vrfBankConflicts)},
    {"reuseMedian", "Figure 7", "divergent", METRIC(reuseMedian)},
    {"instFootprint", "Figure 8", "divergent", METRIC(instFootprint)},
    {"ibFlushes", "Figure 9", "divergent", METRIC(ibFlushes)},
    {"readUniq", "Figure 10", "similar", METRIC(readUniq)},
    {"writeUniq", "Figure 10", "similar", METRIC(writeUniq)},
    {"ipc", "Figure 11", "divergent", METRIC(ipc)},
    {"cycles", "Figure 11", "divergent", METRIC(cycles)},
    {"dataFootprint", "Table 6", "divergent", METRIC(dataFootprint)},
    {"simdUtil", "Table 6", "similar", METRIC(simdUtil)},
    {"coalescedLines", "", "similar", METRIC(coalescedLines)},
    {"l1iMisses", "Figure 8", "divergent", METRIC(l1iMisses)},
};

#undef METRIC

/**
 * Per-workload expectation overrides. kMetrics encodes the paper's
 * Table 5 geomean classification; the stress workloads beyond Table 5
 * deliberately push single effects to extremes and land on different
 * sides of the threshold for several stats (e.g. a straight-line
 * kernel has zero ibFlushes at both levels — "similar" — even though
 * the paper's geomean says IB flushes diverge). Entries here take
 * precedence over the per-figure default; expect "" means the model
 * takes no position (near-threshold or input-dependent).
 */
struct ExpectOverride
{
    const char *workload;
    const char *stat;
    const char *expect;
};

const ExpectOverride kExpectOverrides[] = {
    // atomicred: serialized same-address atomics inflate HSAIL VMEM
    // and bank-conflict traffic; straight-line control flow keeps the
    // divergence stats quiet at both levels.
    {"atomicred", "valu", "similar"},
    {"atomicred", "vmem", "divergent"},
    {"atomicred", "branch", "similar"},
    {"atomicred", "ibFlushes", "similar"},
    {"atomicred", "readUniq", "divergent"},
    {"atomicred", "writeUniq", "divergent"},
    {"atomicred", "dataFootprint", "similar"},

    // ldsswizzle: the LDS soak is bound by bank-conflict passes that
    // exist identically at both levels; the divergence is all in the
    // instruction stream (finalized do-loop vs IL loop), not in
    // footprints or flushes.
    {"ldsswizzle", "vmem", "divergent"},
    {"ldsswizzle", "branch", "similar"},
    {"ldsswizzle", "reuseMedian", "similar"},
    {"ldsswizzle", "instFootprint", "similar"},
    {"ldsswizzle", "ibFlushes", "similar"},
    {"ldsswizzle", "readUniq", "divergent"},
    {"ldsswizzle", "writeUniq", "divergent"},
    {"ldsswizzle", "ipc", "similar"},
    {"ldsswizzle", "dataFootprint", "similar"},
    {"ldsswizzle", "l1iMisses", "similar"},

    // bfsgraph: nested data-dependent divergence is where the RS
    // abstraction bites — ibFlushes stays well past the threshold —
    // while the lane-visible memory system agrees (frontier loads
    // coalesce the same way at both levels).
    {"bfsgraph", "vmem", ""},
    {"bfsgraph", "branch", "similar"},
    {"bfsgraph", "readUniq", ""},
    {"bfsgraph", "writeUniq", "similar"},
    {"bfsgraph", "dataFootprint", "similar"},

    // pipeline: six straight-line launches; divergence comes from the
    // per-kernel finalization overhead (salu/waitcnt) repeated per
    // dispatch, never from control flow.
    {"pipeline", "branch", "similar"},
    {"pipeline", "ibFlushes", "similar"},
    {"pipeline", "vmem", "divergent"},
    {"pipeline", "readUniq", "divergent"},
    {"pipeline", "writeUniq", "divergent"},
    {"pipeline", "dataFootprint", "similar"},
    {"pipeline", "l1iMisses", "similar"},
};

} // namespace

std::string
expectedDivergence(const std::string &workload, const std::string &stat)
{
    for (const ExpectOverride &o : kExpectOverrides)
        if (workload == o.workload && stat == o.stat)
            return o.expect;
    for (const Metric &m : kMetrics)
        if (stat == m.stat)
            return m.expect;
    return "";
}

double
relDelta(double hsail, double gcn3)
{
    double mag = std::max(std::fabs(hsail), std::fabs(gcn3));
    if (mag == 0)
        return 0;
    return std::fabs(gcn3 - hsail) / mag;
}

const DivergenceEntry *
DivergenceReport::find(const std::string &stat) const
{
    for (const DivergenceEntry &e : entries)
        if (e.stat == stat)
            return &e;
    return nullptr;
}

unsigned
DivergenceReport::numDivergent() const
{
    unsigned n = 0;
    for (const DivergenceEntry &e : entries)
        n += e.divergent;
    return n;
}

DivergenceReport
divergenceReport(const sim::AppResult &hsail, const sim::AppResult &gcn3,
                 double threshold)
{
    DivergenceReport r;
    r.workload = hsail.workload;
    r.threshold = threshold;
    if (hsail.quarantined || gcn3.quarantined) {
        r.failed = true;
        const sim::AppResult &bad = hsail.quarantined ? hsail : gcn3;
        r.error = bad.errorKind + ": " + bad.errorMessage;
        return r;
    }
    for (const Metric &m : kMetrics) {
        DivergenceEntry e;
        e.stat = m.stat;
        e.figure = m.figure;
        e.paperExpectation = expectedDivergence(r.workload, m.stat);
        e.hsail = m.get(hsail);
        e.gcn3 = m.get(gcn3);
        e.relDelta = relDelta(e.hsail, e.gcn3);
        e.divergent = e.relDelta > threshold;
        r.entries.push_back(std::move(e));
    }
    // Rank: largest relative delta first; stable keeps figure order on
    // ties so reports are deterministic and diffable.
    std::stable_sort(r.entries.begin(), r.entries.end(),
                     [](const DivergenceEntry &a, const DivergenceEntry &b) {
                         return a.relDelta > b.relDelta;
                     });
    return r;
}

DivergenceReport
divergenceReport(const std::string &workload, const GpuConfig &cfg,
                 const workloads::WorkloadScale &scale, double threshold)
{
    auto [hsail, gcn3] = sim::runBoth(workload, cfg, scale);
    DivergenceReport r = divergenceReport(hsail, gcn3, threshold);
    r.scale = scale.factor;
    return r;
}

std::vector<DivergenceReport>
divergenceReports(const std::vector<std::string> &workloads,
                  const GpuConfig &cfg,
                  const workloads::WorkloadScale &scale, double threshold,
                  unsigned jobs)
{
    std::vector<sim::RunSpec> specs;
    specs.reserve(2 * workloads.size());
    for (const std::string &w : workloads) {
        specs.push_back({w, IsaKind::HSAIL, cfg, scale});
        specs.push_back({w, IsaKind::GCN3, cfg, scale});
    }
    sim::SweepOptions opts;
    opts.jobs = jobs;
    sim::SweepReport sweep = sim::runSweep(specs, opts);

    std::vector<DivergenceReport> out;
    out.reserve(workloads.size());
    for (size_t i = 0; i < workloads.size(); ++i) {
        const sim::AppResult &hsail = sweep.results[2 * i];
        const sim::AppResult &gcn3 = sweep.results[2 * i + 1];
        DivergenceReport r;
        if (!hsail.quarantined && !gcn3.quarantined) {
            // runSweep does not enforce the functional differential
            // invariant (each level ran independently); restore
            // runBoth's contract here, degrading to a failed report
            // instead of throwing so one workload cannot kill a sweep.
            try {
                sim::checkIsaAgreement(hsail, gcn3);
                r = divergenceReport(hsail, gcn3, threshold);
            } catch (const sim::IsaMismatchError &e) {
                r.workload = workloads[i];
                r.failed = true;
                r.error = std::string("isa-mismatch: ") + e.what();
            }
        } else {
            r = divergenceReport(hsail, gcn3, threshold);
            r.workload = workloads[i];
        }
        r.scale = scale.factor;
        r.threshold = threshold;
        out.push_back(std::move(r));
    }
    return out;
}

void
writeDivergenceJson(std::ostream &os, const DivergenceReport &r)
{
    os << "{\n\"schema\":\"last-divergence-v1\",\n"
       << "\"workload\":\"" << jsonEscape(r.workload) << "\","
       << "\"scale\":" << jsonNumber(r.scale) << ","
       << "\"threshold\":" << jsonNumber(r.threshold) << ","
       << "\"failed\":" << (r.failed ? "true" : "false") << ","
       << "\"error\":\"" << jsonEscape(r.error) << "\",\n"
       << "\"entries\":[\n";
    bool first = true;
    for (const DivergenceEntry &e : r.entries) {
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"stat\":\"" << jsonEscape(e.stat) << "\""
           << ",\"figure\":\"" << jsonEscape(e.figure) << "\""
           << ",\"hsail\":" << jsonNumber(e.hsail)
           << ",\"gcn3\":" << jsonNumber(e.gcn3)
           << ",\"rel_delta\":" << jsonNumber(e.relDelta)
           << ",\"classification\":\""
           << (e.divergent ? "divergent" : "similar") << "\""
           << ",\"paper\":\"" << jsonEscape(e.paperExpectation) << "\"}";
    }
    os << "\n]}\n";
}

void
writeDivergenceJsonArray(std::ostream &os,
                         const std::vector<DivergenceReport> &rs)
{
    os << "[\n";
    for (size_t i = 0; i < rs.size(); ++i) {
        writeDivergenceJson(os, rs[i]);
        if (i + 1 < rs.size())
            os << ",\n";
    }
    os << "]\n";
}

void
writeDivergenceText(std::ostream &os, const DivergenceReport &r)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "== %s (scale %g, threshold %g%%): %u/%zu divergent\n",
                  r.workload.c_str(), r.scale, 100 * r.threshold,
                  r.numDivergent(), r.entries.size());
    os << buf;
    if (r.failed) {
        os << "   FAILED: " << r.error << "\n";
        return;
    }
    std::snprintf(buf, sizeof(buf), "   %-18s %-9s %14s %14s %8s  %-9s %s\n",
                  "stat", "figure", "hsail", "gcn3", "delta%",
                  "class", "paper");
    os << buf;
    for (const DivergenceEntry &e : r.entries) {
        std::snprintf(buf, sizeof(buf),
                      "   %-18s %-9s %14.6g %14.6g %8.2f  %-9s %s\n",
                      e.stat.c_str(), e.figure.c_str(), e.hsail, e.gcn3,
                      100 * e.relDelta,
                      e.divergent ? "DIVERGENT" : "similar",
                      e.paperExpectation.c_str());
        os << buf;
    }
}

} // namespace last::obs
