#include "obs/divergence.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.hh"
#include "common/json_in.hh"
#include "common/logging.hh"
#include "obs/json.hh"

namespace last::obs
{

namespace
{

/** The compared statistics, in figure order. `expect` is the paper's
 *  published classification of the IL-level statistic against the
 *  machine-ISA ground truth ("" = no position taken). */
struct Metric
{
    const char *stat;
    const char *figure;
    const char *expect;
    double (*get)(const sim::AppResult &);
};

#define METRIC(field) [](const sim::AppResult &r) { return double(r.field); }

const Metric kMetrics[] = {
    {"dynInsts", "Figure 5", "divergent", METRIC(dynInsts)},
    {"valu", "Figure 5", "divergent", METRIC(valu)},
    {"salu", "Figure 5", "divergent", METRIC(salu)},
    {"vmem", "Figure 5", "similar", METRIC(vmem)},
    {"branch", "Figure 5", "divergent", METRIC(branch)},
    {"vrfBankConflicts", "Figure 6", "divergent", METRIC(vrfBankConflicts)},
    {"reuseMedian", "Figure 7", "divergent", METRIC(reuseMedian)},
    {"instFootprint", "Figure 8", "divergent", METRIC(instFootprint)},
    {"ibFlushes", "Figure 9", "divergent", METRIC(ibFlushes)},
    {"readUniq", "Figure 10", "similar", METRIC(readUniq)},
    {"writeUniq", "Figure 10", "similar", METRIC(writeUniq)},
    {"ipc", "Figure 11", "divergent", METRIC(ipc)},
    {"cycles", "Figure 11", "divergent", METRIC(cycles)},
    {"dataFootprint", "Table 6", "divergent", METRIC(dataFootprint)},
    {"simdUtil", "Table 6", "similar", METRIC(simdUtil)},
    {"coalescedLines", "", "similar", METRIC(coalescedLines)},
    {"l1iMisses", "Figure 8", "divergent", METRIC(l1iMisses)},
};

#undef METRIC

/**
 * Per-workload expectation overrides. kMetrics encodes the paper's
 * Table 5 geomean classification; the stress workloads beyond Table 5
 * deliberately push single effects to extremes and land on different
 * sides of the threshold for several stats (e.g. a straight-line
 * kernel has zero ibFlushes at both levels — "similar" — even though
 * the paper's geomean says IB flushes diverge). Entries here take
 * precedence over the per-figure default; expect "" means the model
 * takes no position (near-threshold or input-dependent).
 */
struct ExpectOverride
{
    const char *workload;
    const char *stat;
    const char *expect;
};

const ExpectOverride kExpectOverrides[] = {
    // atomicred: serialized same-address atomics inflate HSAIL VMEM
    // and bank-conflict traffic; straight-line control flow keeps the
    // divergence stats quiet at both levels.
    {"atomicred", "valu", "similar"},
    {"atomicred", "vmem", "divergent"},
    {"atomicred", "branch", "similar"},
    {"atomicred", "ibFlushes", "similar"},
    {"atomicred", "readUniq", "divergent"},
    {"atomicred", "writeUniq", "divergent"},
    {"atomicred", "dataFootprint", "similar"},

    // ldsswizzle: the LDS soak is bound by bank-conflict passes that
    // exist identically at both levels; the divergence is all in the
    // instruction stream (finalized do-loop vs IL loop), not in
    // footprints or flushes.
    {"ldsswizzle", "vmem", "divergent"},
    {"ldsswizzle", "branch", "similar"},
    {"ldsswizzle", "reuseMedian", "similar"},
    {"ldsswizzle", "instFootprint", "similar"},
    {"ldsswizzle", "ibFlushes", "similar"},
    {"ldsswizzle", "readUniq", "divergent"},
    {"ldsswizzle", "writeUniq", "divergent"},
    {"ldsswizzle", "ipc", "similar"},
    {"ldsswizzle", "dataFootprint", "similar"},
    {"ldsswizzle", "l1iMisses", "similar"},

    // bfsgraph: nested data-dependent divergence is where the RS
    // abstraction bites — ibFlushes stays well past the threshold —
    // while the lane-visible memory system agrees (frontier loads
    // coalesce the same way at both levels).
    {"bfsgraph", "vmem", ""},
    {"bfsgraph", "branch", "similar"},
    {"bfsgraph", "readUniq", ""},
    {"bfsgraph", "writeUniq", "similar"},
    {"bfsgraph", "dataFootprint", "similar"},

    // pipeline: six straight-line launches; divergence comes from the
    // per-kernel finalization overhead (salu/waitcnt) repeated per
    // dispatch, never from control flow.
    {"pipeline", "branch", "similar"},
    {"pipeline", "ibFlushes", "similar"},
    {"pipeline", "vmem", "divergent"},
    {"pipeline", "readUniq", "divergent"},
    {"pipeline", "writeUniq", "divergent"},
    {"pipeline", "dataFootprint", "similar"},
    {"pipeline", "l1iMisses", "similar"},
};

std::vector<IsaKind>
allIsaList()
{
    return std::vector<IsaKind>(std::begin(AllIsas), std::end(AllIsas));
}

} // namespace

std::string
expectedDivergence(const std::string &workload, const std::string &stat)
{
    for (const ExpectOverride &o : kExpectOverrides)
        if (workload == o.workload && stat == o.stat)
            return o.expect;
    for (const Metric &m : kMetrics)
        if (stat == m.stat)
            return m.expect;
    return "";
}

std::string
expectedDivergence(const std::string &workload, const std::string &stat,
                   IsaKind a, IsaKind b)
{
    // The paper's tables only classify the HSAIL↔GCN3 comparison; any
    // pair touching PTXL is terra incognita by construction.
    if (a == IsaKind::HSAIL && b == IsaKind::GCN3)
        return expectedDivergence(workload, stat);
    return "";
}

double
relDelta(double hsail, double gcn3)
{
    double mag = std::max(std::fabs(hsail), std::fabs(gcn3));
    if (mag == 0)
        return 0;
    return std::fabs(gcn3 - hsail) / mag;
}

const DivergencePair *
DivergenceEntry::findPair(IsaKind a, IsaKind b) const
{
    for (const DivergencePair &p : pairs)
        if ((p.a == a && p.b == b) || (p.a == b && p.b == a))
            return &p;
    return nullptr;
}

const DivergenceEntry *
DivergenceReport::find(const std::string &stat) const
{
    for (const DivergenceEntry &e : entries)
        if (e.stat == stat)
            return &e;
    return nullptr;
}

unsigned
DivergenceReport::numDivergent() const
{
    // "Divergent" means divergent in *any* pairwise cell — for a
    // two-level report that is exactly the v1 HSAIL↔GCN3 meaning.
    unsigned n = 0;
    for (const DivergenceEntry &e : entries) {
        bool any = e.divergent;
        for (const DivergencePair &p : e.pairs)
            any = any || p.divergent;
        n += any;
    }
    return n;
}

DivergenceReport
divergenceReport(const std::vector<const sim::AppResult *> &results,
                 const std::vector<IsaKind> &isas, double threshold)
{
    panic_if(results.size() != isas.size() || results.size() < 2,
             "divergence report needs one result per ISA (>= 2), got "
             "%zu results for %zu ISAs",
             results.size(), isas.size());

    DivergenceReport r;
    r.isas = isas;
    r.threshold = threshold;
    for (const sim::AppResult *res : results)
        if (!res->workload.empty()) {
            r.workload = res->workload;
            break;
        }
    for (const sim::AppResult *res : results) {
        if (res->quarantined) {
            r.failed = true;
            r.error = res->errorKind + ": " + res->errorMessage;
            return r;
        }
    }
    for (const Metric &m : kMetrics) {
        DivergenceEntry e;
        e.stat = m.stat;
        e.figure = m.figure;
        e.paperExpectation = expectedDivergence(r.workload, m.stat);
        for (const sim::AppResult *res : results)
            e.values.push_back(m.get(*res));
        for (size_t i = 0; i < isas.size(); ++i) {
            for (size_t j = i + 1; j < isas.size(); ++j) {
                DivergencePair p;
                p.a = isas[i];
                p.b = isas[j];
                p.va = e.values[i];
                p.vb = e.values[j];
                p.relDelta = relDelta(p.va, p.vb);
                p.divergent = p.relDelta > threshold;
                p.paperExpectation =
                    expectedDivergence(r.workload, m.stat, p.a, p.b);
                e.maxRelDelta = std::max(e.maxRelDelta, p.relDelta);
                if (p.a == IsaKind::HSAIL && p.b == IsaKind::GCN3) {
                    e.hsail = p.va;
                    e.gcn3 = p.vb;
                    e.relDelta = p.relDelta;
                    e.divergent = p.divergent;
                }
                e.pairs.push_back(std::move(p));
            }
        }
        r.entries.push_back(std::move(e));
    }
    // Rank: largest (worst-pair) relative delta first; stable keeps
    // figure order on ties so reports are deterministic and diffable.
    // A two-level report ranks exactly as v1 did: one pair, so
    // maxRelDelta == relDelta.
    std::stable_sort(r.entries.begin(), r.entries.end(),
                     [](const DivergenceEntry &a, const DivergenceEntry &b) {
                         return a.maxRelDelta > b.maxRelDelta;
                     });
    return r;
}

DivergenceReport
divergenceReport(const sim::AppResult &hsail, const sim::AppResult &gcn3,
                 double threshold)
{
    return divergenceReport({&hsail, &gcn3},
                            {IsaKind::HSAIL, IsaKind::GCN3}, threshold);
}

DivergenceReport
divergenceReport(const std::string &workload, const GpuConfig &cfg,
                 const workloads::WorkloadScale &scale, double threshold)
{
    std::vector<sim::RunSpec> specs;
    specs.reserve(NumIsas);
    for (IsaKind isa : AllIsas)
        specs.push_back({workload, isa, cfg, scale});
    std::vector<sim::AppResult> rs = sim::runMany(specs);
    // runBoth's contract, generalized: every machine level must agree
    // functionally with the IL level (and hence with each other).
    for (size_t i = 1; i < rs.size(); ++i)
        sim::checkIsaAgreement(rs[0], rs[i]);
    std::vector<const sim::AppResult *> ptrs;
    for (const sim::AppResult &res : rs)
        ptrs.push_back(&res);
    DivergenceReport r = divergenceReport(ptrs, allIsaList(), threshold);
    r.scale = scale.factor;
    return r;
}

std::vector<DivergenceReport>
divergenceReports(const std::vector<std::string> &workloads,
                  const GpuConfig &cfg,
                  const workloads::WorkloadScale &scale, double threshold,
                  unsigned jobs)
{
    std::vector<sim::RunSpec> specs;
    specs.reserve(NumIsas * workloads.size());
    for (const std::string &w : workloads)
        for (IsaKind isa : AllIsas)
            specs.push_back({w, isa, cfg, scale});
    sim::SweepOptions opts;
    opts.jobs = jobs;
    sim::SweepReport sweep = sim::runSweep(specs, opts);

    std::vector<DivergenceReport> out;
    out.reserve(workloads.size());
    for (size_t i = 0; i < workloads.size(); ++i) {
        std::vector<const sim::AppResult *> ptrs;
        bool anyQuarantined = false;
        for (unsigned k = 0; k < NumIsas; ++k) {
            const sim::AppResult &res = sweep.results[NumIsas * i + k];
            anyQuarantined = anyQuarantined || res.quarantined;
            ptrs.push_back(&res);
        }
        DivergenceReport r;
        if (!anyQuarantined) {
            // runSweep does not enforce the functional differential
            // invariant (each level ran independently); restore
            // runBoth's contract here, degrading to a failed report
            // instead of throwing so one workload cannot kill a sweep.
            try {
                for (size_t k = 1; k < ptrs.size(); ++k)
                    sim::checkIsaAgreement(*ptrs[0], *ptrs[k]);
                r = divergenceReport(ptrs, allIsaList(), threshold);
            } catch (const sim::IsaMismatchError &e) {
                r.workload = workloads[i];
                r.isas = allIsaList();
                r.failed = true;
                r.error = std::string("isa-mismatch: ") + e.what();
            }
        } else {
            r = divergenceReport(ptrs, allIsaList(), threshold);
            r.workload = workloads[i];
        }
        r.scale = scale.factor;
        r.threshold = threshold;
        out.push_back(std::move(r));
    }
    return out;
}

void
writeDivergenceJson(std::ostream &os, const DivergenceReport &r)
{
    os << "{\n\"schema\":\"last-divergence-v2\",\n"
       << "\"workload\":\"" << jsonEscape(r.workload) << "\","
       << "\"scale\":" << jsonNumber(r.scale) << ","
       << "\"threshold\":" << jsonNumber(r.threshold) << ","
       << "\"failed\":" << (r.failed ? "true" : "false") << ","
       << "\"error\":\"" << jsonEscape(r.error) << "\",\n"
       << "\"isas\":[";
    for (size_t i = 0; i < r.isas.size(); ++i) {
        if (i)
            os << ",";
        os << "\"" << isaName(r.isas[i]) << "\"";
    }
    os << "],\n\"entries\":[\n";
    bool first = true;
    for (const DivergenceEntry &e : r.entries) {
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"stat\":\"" << jsonEscape(e.stat) << "\""
           << ",\"figure\":\"" << jsonEscape(e.figure) << "\""
           << ",\"values\":{";
        for (size_t i = 0; i < e.values.size() && i < r.isas.size();
             ++i) {
            if (i)
                os << ",";
            os << "\"" << isaName(r.isas[i])
               << "\":" << jsonNumber(e.values[i]);
        }
        os << "},\"pairs\":[";
        for (size_t i = 0; i < e.pairs.size(); ++i) {
            const DivergencePair &p = e.pairs[i];
            if (i)
                os << ",";
            os << "{\"a\":\"" << isaName(p.a) << "\",\"b\":\""
               << isaName(p.b)
               << "\",\"rel_delta\":" << jsonNumber(p.relDelta)
               << ",\"classification\":\""
               << (p.divergent ? "divergent" : "similar")
               << "\",\"direction\":\"" << p.direction()
               << "\",\"paper\":\"" << jsonEscape(p.paperExpectation)
               << "\"}";
        }
        os << "]}";
    }
    os << "\n]}\n";
}

void
writeDivergenceJsonArray(std::ostream &os,
                         const std::vector<DivergenceReport> &rs)
{
    os << "[\n";
    for (size_t i = 0; i < rs.size(); ++i) {
        writeDivergenceJson(os, rs[i]);
        if (i + 1 < rs.size())
            os << ",\n";
    }
    os << "]\n";
}

namespace
{

using jsonin::JsonValue;

[[noreturn]] void
failReport(const std::string &source, const std::string &what,
           size_t offset)
{
    throw ConfigError("divergence report " + source + ": " + what +
                          " at byte " + std::to_string(offset),
                      __FILE__, __LINE__);
}

IsaKind
readIsaTag(const JsonValue &v, const char *field,
           const std::string &source)
{
    std::string tag = jsonin::asString(v, field, source);
    IsaKind isa;
    if (!isaFromName(tag, isa))
        failReport(source, std::string("bad isa '") + tag + "'",
                   v.offset);
    return isa;
}

size_t
isaIndex(const std::vector<IsaKind> &isas, IsaKind isa,
         const std::string &source, size_t offset)
{
    for (size_t i = 0; i < isas.size(); ++i)
        if (isas[i] == isa)
            return i;
    failReport(source,
               std::string("pair references isa '") + isaName(isa) +
                   "' missing from the report's isa list",
               offset);
}

DivergenceReport
readOneReport(const JsonValue &root, const std::string &source)
{
    using jsonin::asDouble;
    using jsonin::asString;
    using jsonin::require;

    if (root.kind != JsonValue::Kind::Object)
        failReport(source, "report is not an object", root.offset);
    std::string schema =
        asString(require(root, "schema", source), "schema", source);
    bool v1 = schema == "last-divergence-v1";
    if (!v1 && schema != "last-divergence-v2")
        failReport(source,
                   "schema is '" + schema +
                       "', expected 'last-divergence-v2' (or legacy "
                       "'last-divergence-v1')",
                   root.offset);

    DivergenceReport r;
    r.workload =
        asString(require(root, "workload", source), "workload", source);
    r.scale = asDouble(require(root, "scale", source), "scale", source);
    r.threshold =
        asDouble(require(root, "threshold", source), "threshold", source);
    const JsonValue &failed = require(root, "failed", source);
    if (failed.kind != JsonValue::Kind::Bool)
        failReport(source, "'failed' is not a bool", failed.offset);
    r.failed = failed.boolean;
    r.error = asString(require(root, "error", source), "error", source);

    if (v1) {
        // A v1 payload is, by definition, the HSAIL↔GCN3 comparison.
        r.isas = {IsaKind::HSAIL, IsaKind::GCN3};
    } else {
        const JsonValue &isas = require(root, "isas", source);
        if (isas.kind != JsonValue::Kind::Array)
            failReport(source, "'isas' is not an array", isas.offset);
        for (const JsonValue &ji : isas.items)
            r.isas.push_back(readIsaTag(ji, "isas", source));
    }

    const JsonValue &entries = require(root, "entries", source);
    if (entries.kind != JsonValue::Kind::Array)
        failReport(source, "'entries' is not an array", entries.offset);
    for (const JsonValue &je : entries.items) {
        if (je.kind != JsonValue::Kind::Object)
            failReport(source, "entry is not an object", je.offset);
        DivergenceEntry e;
        e.stat = asString(require(je, "stat", source), "stat", source);
        e.figure =
            asString(require(je, "figure", source), "figure", source);
        if (v1) {
            e.hsail =
                asDouble(require(je, "hsail", source), "hsail", source);
            e.gcn3 =
                asDouble(require(je, "gcn3", source), "gcn3", source);
            e.relDelta = asDouble(require(je, "rel_delta", source),
                                  "rel_delta", source);
            e.divergent = asString(require(je, "classification", source),
                                   "classification", source) ==
                          "divergent";
            e.paperExpectation =
                asString(require(je, "paper", source), "paper", source);
            e.values = {e.hsail, e.gcn3};
            e.maxRelDelta = e.relDelta;
            DivergencePair p;
            p.a = IsaKind::HSAIL;
            p.b = IsaKind::GCN3;
            p.va = e.hsail;
            p.vb = e.gcn3;
            p.relDelta = e.relDelta;
            p.divergent = e.divergent;
            p.paperExpectation = e.paperExpectation;
            e.pairs.push_back(std::move(p));
        } else {
            const JsonValue &values = require(je, "values", source);
            if (values.kind != JsonValue::Kind::Object)
                failReport(source, "'values' is not an object",
                           values.offset);
            for (IsaKind isa : r.isas) {
                const JsonValue *v = values.find(isaName(isa));
                if (!v)
                    failReport(source,
                               std::string("'values' is missing isa '") +
                                   isaName(isa) + "'",
                               values.offset);
                e.values.push_back(asDouble(*v, "values", source));
            }
            const JsonValue &pairs = require(je, "pairs", source);
            if (pairs.kind != JsonValue::Kind::Array)
                failReport(source, "'pairs' is not an array",
                           pairs.offset);
            for (const JsonValue &jp : pairs.items) {
                if (jp.kind != JsonValue::Kind::Object)
                    failReport(source, "pair is not an object",
                               jp.offset);
                DivergencePair p;
                p.a = readIsaTag(require(jp, "a", source), "a", source);
                p.b = readIsaTag(require(jp, "b", source), "b", source);
                p.va = e.values[isaIndex(r.isas, p.a, source, jp.offset)];
                p.vb = e.values[isaIndex(r.isas, p.b, source, jp.offset)];
                p.relDelta = asDouble(require(jp, "rel_delta", source),
                                      "rel_delta", source);
                p.divergent =
                    asString(require(jp, "classification", source),
                             "classification", source) == "divergent";
                p.paperExpectation = asString(
                    require(jp, "paper", source), "paper", source);
                e.maxRelDelta = std::max(e.maxRelDelta, p.relDelta);
                if (p.a == IsaKind::HSAIL && p.b == IsaKind::GCN3) {
                    e.hsail = p.va;
                    e.gcn3 = p.vb;
                    e.relDelta = p.relDelta;
                    e.divergent = p.divergent;
                    e.paperExpectation = p.paperExpectation;
                }
                e.pairs.push_back(std::move(p));
            }
        }
        r.entries.push_back(std::move(e));
    }
    return r;
}

} // namespace

DivergenceReport
readDivergenceJson(const std::string &text, const std::string &source)
{
    JsonValue root = jsonin::parseJson(text, source);
    return readOneReport(root, source);
}

std::vector<DivergenceReport>
readDivergenceJsonArray(const std::string &text, const std::string &source)
{
    JsonValue root = jsonin::parseJson(text, source);
    if (root.kind != JsonValue::Kind::Array)
        failReport(source, "top level is not an array", root.offset);
    std::vector<DivergenceReport> out;
    out.reserve(root.items.size());
    for (const JsonValue &jr : root.items)
        out.push_back(readOneReport(jr, source));
    return out;
}

void
writeDivergenceText(std::ostream &os, const DivergenceReport &r)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "== %s (scale %g, threshold %g%%): %u/%zu divergent\n",
                  r.workload.c_str(), r.scale, 100 * r.threshold,
                  r.numDivergent(), r.entries.size());
    os << buf;
    if (r.failed) {
        os << "   FAILED: " << r.error << "\n";
        return;
    }
    std::snprintf(buf, sizeof(buf), "   %-18s %-9s", "stat", "figure");
    os << buf;
    for (IsaKind isa : r.isas) {
        std::snprintf(buf, sizeof(buf), " %14s", isaName(isa));
        os << buf;
    }
    std::snprintf(buf, sizeof(buf), " %8s  %-9s %s\n", "delta%",
                  "class", "paper");
    os << buf;
    for (const DivergenceEntry &e : r.entries) {
        bool any = e.divergent;
        for (const DivergencePair &p : e.pairs)
            any = any || p.divergent;
        std::snprintf(buf, sizeof(buf), "   %-18s %-9s", e.stat.c_str(),
                      e.figure.c_str());
        os << buf;
        for (double v : e.values) {
            std::snprintf(buf, sizeof(buf), " %14.6g", v);
            os << buf;
        }
        std::snprintf(buf, sizeof(buf), " %8.2f  %-9s %s\n",
                      100 * e.maxRelDelta,
                      any ? "DIVERGENT" : "similar",
                      e.paperExpectation.c_str());
        os << buf;
    }
}

} // namespace last::obs
