/**
 * @file
 * Minimal JSON emission helpers shared by the observability writers
 * (Chrome trace, stats export, divergence report). Emission only — the
 * repo never parses JSON, so there is no parser here.
 */

#ifndef LAST_OBS_JSON_HH
#define LAST_OBS_JSON_HH

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace last::obs
{

/** Escape a string for inclusion inside JSON double quotes. */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += char(c);
            }
        }
    }
    return out;
}

/**
 * Format a double as a JSON number that parses back to the same
 * double: integers that fit exactly print without a fraction, the rest
 * print with round-trip (max_digits10) precision. Non-finite values
 * (JSON has none) degrade to 0 rather than emitting invalid output.
 */
inline std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[40];
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
        std::snprintf(buf, sizeof(buf), "%lld", (long long)v);
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    return buf;
}

} // namespace last::obs

#endif // LAST_OBS_JSON_HH
