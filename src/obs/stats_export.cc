#include "obs/stats_export.hh"

#include "obs/json.hh"

namespace last::obs
{

namespace
{

void
flattenInto(const stats::Group &g, const std::string &prefix,
            std::vector<StatRow> &out)
{
    std::string base = prefix.empty() ? g.name() : prefix + "." + g.name();
    for (const stats::Stat *s : g.localStats())
        out.push_back({base + "." + s->name(), s});
    for (const stats::Group *c : g.children())
        flattenInto(*c, base, out);
}

void
writeMetaJson(std::ostream &os, const ExportMeta &meta)
{
    os << "{\"workload\":\"" << jsonEscape(meta.workload) << "\""
       << ",\"isa\":\"" << jsonEscape(meta.isa) << "\""
       << ",\"scale\":" << jsonNumber(meta.scale)
       << ",\"seed\":" << jsonNumber(double(meta.seed))
       << ",\"fault_plan\":\"" << jsonEscape(meta.faultPlan) << "\"}";
}

} // namespace

std::vector<StatRow>
flattenStats(const stats::Group &root)
{
    std::vector<StatRow> out;
    flattenInto(root, "", out);
    return out;
}

void
writeStatsJson(std::ostream &os, const stats::Group &root,
               const ExportMeta &meta)
{
    os << "{\n\"schema\":\"last-stats-v1\",\n\"meta\":";
    writeMetaJson(os, meta);
    os << ",\n\"stats\":[\n";
    bool first = true;
    for (const StatRow &row : flattenStats(root)) {
        const stats::Stat &s = *row.stat;
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"path\":\"" << jsonEscape(row.path) << "\""
           << ",\"kind\":\"" << s.kindName() << "\""
           << ",\"desc\":\"" << jsonEscape(s.desc()) << "\""
           << ",\"value\":" << jsonNumber(s.value());
        if (const auto *avg = dynamic_cast<const stats::Average *>(&s)) {
            os << ",\"samples\":" << avg->samples();
        } else if (const auto *h =
                       dynamic_cast<const stats::Histogram *>(&s)) {
            os << ",\"samples\":" << h->samples()
               << ",\"mean\":" << jsonNumber(h->mean())
               << ",\"median\":" << jsonNumber(h->median())
               << ",\"max\":" << h->maxSample() << ",\"buckets\":[";
            // Only populated buckets: 48 mostly-zero entries per
            // histogram would dominate the file.
            bool bfirst = true;
            for (unsigned b = 0; b < stats::Histogram::NumBuckets; ++b) {
                if (!h->bucketCount(b))
                    continue;
                if (!bfirst)
                    os << ",";
                bfirst = false;
                os << "{\"lo\":" << stats::Histogram::bucketLow(b)
                   << ",\"hi\":" << stats::Histogram::bucketHigh(b)
                   << ",\"count\":" << h->bucketCount(b) << "}";
            }
            os << "]";
        }
        os << "}";
    }
    os << "\n]}\n";
}

void
writeStatsCsv(std::ostream &os, const stats::Group &root,
              const ExportMeta &meta, bool header)
{
    if (header)
        os << "workload,isa,scale,seed,fault_plan,path,kind,value,"
              "samples,mean,max\n";
    for (const StatRow &row : flattenStats(root)) {
        const stats::Stat &s = *row.stat;
        os << meta.workload << "," << meta.isa << ","
           << jsonNumber(meta.scale) << "," << meta.seed << ","
           << meta.faultPlan << "," << row.path << "," << s.kindName()
           << "," << jsonNumber(s.value()) << ",";
        if (const auto *avg = dynamic_cast<const stats::Average *>(&s)) {
            os << avg->samples() << ",,";
        } else if (const auto *h =
                       dynamic_cast<const stats::Histogram *>(&s)) {
            os << h->samples() << "," << jsonNumber(h->mean()) << ","
               << h->maxSample();
        } else {
            os << ",,";
        }
        os << "\n";
    }
}

} // namespace last::obs
