/**
 * @file
 * Cross-ISA divergence reports: the paper's headline artifact, as code.
 *
 * The paper's contribution is a quantified comparison of statistics
 * between the HSAIL (intermediate-language) and GCN3 (machine-ISA)
 * abstraction levels: some statistics survive the abstraction
 * ("similar"), others are badly distorted ("divergent"). This module
 * generalizes that to an N×N matrix over every simulated ISA — with
 * the PTXL (NVIDIA-flavored) backend it answers a question the source
 * paper could not: do the IL-level pitfalls persist, shrink, or invert
 * on a second, differently-shaped machine level? Each report runs one
 * workload at every level (via the runSweep differential paths),
 * computes the relative delta of every per-figure statistic for every
 * ISA pair, ranks the statistics by their worst pairwise delta, and
 * classifies each pair against a threshold — reproducing the
 * accurate-vs-inaccurate classification of Table 7 / Figures 5–12
 * automatically, per vendor. Ranking rules are documented in DESIGN.md
 * §5; scripts/report_divergence.sh is the CLI front-end.
 *
 * The HSAIL↔GCN3 pair of a v2 report carries exactly the values the
 * v1 (two-ISA) report carried: adding a column must never perturb the
 * columns the paper studied.
 */

#ifndef LAST_OBS_DIVERGENCE_HH
#define LAST_OBS_DIVERGENCE_HH

#include <ostream>
#include <string>
#include <vector>

#include "sim/parallel.hh"

namespace last::obs
{

/** Stats whose relative delta exceeds this are classified divergent
 *  (10%: well below every paper-divergent effect, comfortably above
 *  the noise on paper-similar ones). */
constexpr double DefaultDivergenceThreshold = 0.10;

/** One ordered ISA pair of one statistic: the (a, b) cell of the
 *  matrix. Pairs are emitted for a before b in AllIsas order, so the
 *  full matrix is the upper triangle (the lower is its mirror). */
struct DivergencePair
{
    IsaKind a = IsaKind::HSAIL;
    IsaKind b = IsaKind::GCN3;
    double va = 0;           ///< the statistic measured at `a`
    double vb = 0;           ///< the statistic measured at `b`
    double relDelta = 0;     ///< |vb - va| / max(|va|, |vb|); 0 if both 0
    bool divergent = false;  ///< relDelta > threshold
    /** Which side measured more: "<" (b higher), ">" (a higher), or
     *  "=". The golden stress signatures pin these, so an inversion
     *  (e.g. the IL overcounting vs GCN3 but undercounting vs PTXL)
     *  is a first-class, diffable observation. */
    std::string direction() const
    {
        return va < vb ? "<" : va > vb ? ">" : "=";
    }
    /** The paper's published classification for this pair, or "" where
     *  it takes no position (every pair involving PTXL: the paper
     *  only studied HSAIL against GCN3). */
    std::string paperExpectation;
};

/** One statistic compared across every simulated abstraction level. */
struct DivergenceEntry
{
    std::string stat;        ///< AppResult field name, e.g. "dynInsts"
    std::string figure;      ///< paper anchor, e.g. "Figure 5"

    /** Per-ISA measured values, parallel to the report's `isas`. */
    std::vector<double> values;
    /** All unordered ISA pairs, upper-triangle order over `isas`. */
    std::vector<DivergencePair> pairs;
    /** Ranking key: the worst pairwise relDelta. Equals relDelta when
     *  the report covers only HSAIL and GCN3, so two-ISA reports rank
     *  exactly as v1 did. */
    double maxRelDelta = 0;

    /** @{ The HSAIL↔GCN3 pair's values, kept as first-class members
     *  so v1-era consumers (and the "values unchanged from v1"
     *  invariant) read them without digging through `pairs`. */
    double hsail = 0;
    double gcn3 = 0;
    double relDelta = 0;     ///< |g - h| / max(|h|, |g|); 0 if both 0
    bool divergent = false;  ///< relDelta > threshold
    std::string paperExpectation;
    /** @} */

    const DivergencePair *findPair(IsaKind a, IsaKind b) const;
};

/** Ranked cross-ISA comparison of one workload. */
struct DivergenceReport
{
    std::string workload;
    double scale = 1.0;
    double threshold = DefaultDivergenceThreshold;

    /** The compared abstraction levels, in AllIsas (report) order.
     *  Entry `values` and the pair triangle follow this order. */
    std::vector<IsaKind> isas;

    /** The differential run itself failed (e.g. one level was
     *  quarantined by runSweep); entries is empty and error says why. */
    bool failed = false;
    std::string error;

    /** Entries ranked by descending maxRelDelta (ties: input order,
     *  which follows the figure numbering). */
    std::vector<DivergenceEntry> entries;

    const DivergenceEntry *find(const std::string &stat) const;
    unsigned numDivergent() const;
};

/** |g - h| scaled by the larger magnitude; 0 when both are 0, so
 *  legitimately-zero stats (e.g. hazardViolations) never rank. */
double relDelta(double hsail, double gcn3);

/**
 * Expected classification ("divergent", "similar", or "" for no
 * position) of `stat` when measured under `workload`. Per-workload
 * overrides — the stress workloads beyond Table 5 have their own
 * golden signatures — take precedence over the paper's per-figure
 * default from the Table 5 geomean. This two-argument form answers
 * for the pair the paper studied (HSAIL↔GCN3).
 */
std::string expectedDivergence(const std::string &workload,
                               const std::string &stat);

/** Pair-aware form: the paper's tables only cover HSAIL↔GCN3, so any
 *  pair involving PTXL answers "" (no position) — those cells are the
 *  new result, not a reproduction. */
std::string expectedDivergence(const std::string &workload,
                               const std::string &stat, IsaKind a,
                               IsaKind b);

/**
 * Build a report from already-run results, one per ISA. `results[i]`
 * was measured at `isas[i]`; the vectors must be the same length and
 * hold at least two levels. Quarantined results degrade the report to
 * failed (first quarantined level's error wins).
 */
DivergenceReport divergenceReport(
    const std::vector<const sim::AppResult *> &results,
    const std::vector<IsaKind> &isas,
    double threshold = DefaultDivergenceThreshold);

/** v1-compat form: build a two-level report from an HSAIL/GCN3 pair
 *  (positional — the results' own isa fields are not consulted). */
DivergenceReport divergenceReport(
    const sim::AppResult &hsail, const sim::AppResult &gcn3,
    double threshold = DefaultDivergenceThreshold);

/** Run `workload` at every level (runBoth semantics: functional
 *  agreement of each machine ISA against HSAIL enforced) and build
 *  the full N×N report. */
DivergenceReport divergenceReport(
    const std::string &workload, const GpuConfig &cfg = GpuConfig{},
    const workloads::WorkloadScale &scale = {},
    double threshold = DefaultDivergenceThreshold);

/**
 * Reports for many workloads, driven by the parallel sweep driver
 * (sim::runSweep): all N×NumIsas simulations run concurrently and a
 * quarantined run fails only its own workload's report (failed +
 * error), never the batch.
 */
std::vector<DivergenceReport> divergenceReports(
    const std::vector<std::string> &workloads,
    const GpuConfig &cfg = GpuConfig{},
    const workloads::WorkloadScale &scale = {},
    double threshold = DefaultDivergenceThreshold, unsigned jobs = 0);

/** `last-divergence-v2` JSON (one report). */
void writeDivergenceJson(std::ostream &os, const DivergenceReport &r);

/** JSON array of reports — the batch format `last_obs diverge --json`
 *  and the `last_sweep` partial/merged reports share, so shard
 *  equivalence can be checked with a byte diff. */
void writeDivergenceJsonArray(std::ostream &os,
                              const std::vector<DivergenceReport> &rs);

/** @{
 * Strict readers for the divergence artifact: parse one report (or
 * the CLI's array form) back into structs. Both `last-divergence-v2`
 * and legacy `last-divergence-v1` payloads are accepted — a v1 file
 * reads back as a two-level {HSAIL, GCN3} report. Any other schema
 * id, malformed JSON, or torn input throws ConfigError naming
 * `source` and the byte offset (json_in's contract); there is no
 * partial success.
 */
DivergenceReport readDivergenceJson(const std::string &text,
                                    const std::string &source);
std::vector<DivergenceReport>
readDivergenceJsonArray(const std::string &text,
                        const std::string &source);
/** @} */

/** Human-readable ranked table (what report_divergence.sh prints). */
void writeDivergenceText(std::ostream &os, const DivergenceReport &r);

} // namespace last::obs

namespace last::sim
{
/** The reporter lives in obs/ (it layers on top of sim's differential
 *  harness) but is part of sim's public surface by design. */
using obs::DivergenceEntry;
using obs::DivergencePair;
using obs::DivergenceReport;
using obs::divergenceReport;
using obs::divergenceReports;
} // namespace last::sim

#endif // LAST_OBS_DIVERGENCE_HH
