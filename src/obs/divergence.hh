/**
 * @file
 * Cross-ISA divergence reports: the paper's headline artifact, as code.
 *
 * The paper's contribution is a quantified comparison of statistics
 * between the HSAIL (intermediate-language) and GCN3 (machine-ISA)
 * abstraction levels: some statistics survive the abstraction
 * ("similar"), others are badly distorted ("divergent"). This module
 * runs a workload at both levels (via the existing runBoth /
 * runSweep differential paths), computes the relative delta of every
 * per-figure statistic, ranks them, and classifies each against a
 * threshold — reproducing the accurate-vs-inaccurate classification of
 * Table 7 / Figures 5–12 automatically. Ranking rules are documented
 * in DESIGN.md §5; scripts/report_divergence.sh is the CLI front-end.
 */

#ifndef LAST_OBS_DIVERGENCE_HH
#define LAST_OBS_DIVERGENCE_HH

#include <ostream>
#include <string>
#include <vector>

#include "sim/parallel.hh"

namespace last::obs
{

/** Stats whose relative delta exceeds this are classified divergent
 *  (10%: well below every paper-divergent effect, comfortably above
 *  the noise on paper-similar ones). */
constexpr double DefaultDivergenceThreshold = 0.10;

/** One statistic compared across the two abstraction levels. */
struct DivergenceEntry
{
    std::string stat;        ///< AppResult field name, e.g. "dynInsts"
    std::string figure;      ///< paper anchor, e.g. "Figure 5"
    double hsail = 0;
    double gcn3 = 0;
    double relDelta = 0;     ///< |g - h| / max(|h|, |g|); 0 if both 0
    bool divergent = false;  ///< relDelta > threshold
    /** The paper's published classification for this statistic:
     *  "divergent", "similar", or "" where the paper takes no
     *  position. Lets the report flag where the model disagrees with
     *  the paper, not just where the ISAs disagree with each other. */
    std::string paperExpectation;
};

/** Ranked cross-ISA comparison of one workload. */
struct DivergenceReport
{
    std::string workload;
    double scale = 1.0;
    double threshold = DefaultDivergenceThreshold;

    /** The differential run itself failed (e.g. one level was
     *  quarantined by runSweep); entries is empty and error says why. */
    bool failed = false;
    std::string error;

    /** Entries ranked by descending relDelta (ties: input order, which
     *  follows the figure numbering). */
    std::vector<DivergenceEntry> entries;

    const DivergenceEntry *find(const std::string &stat) const;
    unsigned numDivergent() const;
};

/** |g - h| scaled by the larger magnitude; 0 when both are 0, so
 *  legitimately-zero stats (e.g. hazardViolations) never rank. */
double relDelta(double hsail, double gcn3);

/**
 * Expected classification ("divergent", "similar", or "" for no
 * position) of `stat` when measured under `workload`. Per-workload
 * overrides — the stress workloads beyond Table 5 have their own
 * golden signatures — take precedence over the paper's per-figure
 * default from the Table 5 geomean.
 */
std::string expectedDivergence(const std::string &workload,
                               const std::string &stat);

/** Build a report from an already-run HSAIL/GCN3 result pair. */
DivergenceReport divergenceReport(
    const sim::AppResult &hsail, const sim::AppResult &gcn3,
    double threshold = DefaultDivergenceThreshold);

/** Run `workload` at both levels (runBoth semantics: functional
 *  agreement enforced) and build the report. */
DivergenceReport divergenceReport(
    const std::string &workload, const GpuConfig &cfg = GpuConfig{},
    const workloads::WorkloadScale &scale = {},
    double threshold = DefaultDivergenceThreshold);

/**
 * Reports for many workloads, driven by the parallel sweep driver
 * (sim::runSweep): all 2N simulations run concurrently and a
 * quarantined run fails only its own workload's report (failed +
 * error), never the batch.
 */
std::vector<DivergenceReport> divergenceReports(
    const std::vector<std::string> &workloads,
    const GpuConfig &cfg = GpuConfig{},
    const workloads::WorkloadScale &scale = {},
    double threshold = DefaultDivergenceThreshold, unsigned jobs = 0);

/** `last-divergence-v1` JSON (one report). */
void writeDivergenceJson(std::ostream &os, const DivergenceReport &r);

/** JSON array of reports — the batch format `last_obs diverge --json`
 *  and the `last_sweep` partial/merged reports share, so shard
 *  equivalence can be checked with a byte diff. */
void writeDivergenceJsonArray(std::ostream &os,
                              const std::vector<DivergenceReport> &rs);

/** Human-readable ranked table (what report_divergence.sh prints). */
void writeDivergenceText(std::ostream &os, const DivergenceReport &r);

} // namespace last::obs

namespace last::sim
{
/** The reporter lives in obs/ (it layers on top of sim's differential
 *  harness) but is part of sim's public surface by design. */
using obs::DivergenceEntry;
using obs::DivergenceReport;
using obs::divergenceReport;
using obs::divergenceReports;
} // namespace last::sim

#endif // LAST_OBS_DIVERGENCE_HH
