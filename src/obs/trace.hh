/**
 * @file
 * Structured execute-path tracing.
 *
 * The simulator's hot loops carry compile-out-able trace points
 * (instruction issue/retire, IB flushes, reconvergence-stack pushes
 * and pops, dependency stalls, cache misses and fills, kernel
 * dispatches, idle-cycle skips, watchdog trips). Events are buffered
 * per component in `TraceStream`s owned by one `TraceSink` and are
 * emitted as Chrome `trace_event` JSON, so a capture opens directly in
 * chrome://tracing or https://ui.perfetto.dev. One simulated GPU cycle
 * is mapped to one microsecond of viewer time.
 *
 * Cost model (the execute path is perf-gated, see scripts/bench_perf.sh):
 *  - compiled out (`-DLAST_OBS_TRACE_POINTS=OFF`, which defines
 *    `LAST_OBS_TRACE=0`): trace points vanish entirely;
 *  - compiled in, disabled (default — `GpuConfig::trace == nullptr`):
 *    one pointer null-check per trace point;
 *  - enabled: one bounds check + a POD append into a pre-reserved
 *    per-component buffer; no strings, no locks, no I/O on the hot
 *    path. Streams are capped (events past the cap are counted as
 *    dropped, never resized into oblivion).
 *
 * Tracing is observational by construction: no statistic, functional
 * result, or timing decision reads tracer state, so a traced run is
 * statistic-identical to an untraced one (asserted by
 * tests/test_obs.cc and by the bench cache byte-identity gate).
 *
 * Threading: a TraceSink is meant to observe ONE simulation. Stream
 * creation is mutex-protected and each component appends only to its
 * own stream, so concurrent simulations sharing a sink are race-free,
 * but their events interleave under a single pid — prefer one sink per
 * run.
 */

#ifndef LAST_OBS_TRACE_HH
#define LAST_OBS_TRACE_HH

#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

/** Compile-time master switch for the trace points (see the CMake
 *  option LAST_OBS_TRACE_POINTS). Runtime enablement is a non-null
 *  GpuConfig::trace on top of this. */
#ifndef LAST_OBS_TRACE
#define LAST_OBS_TRACE 1
#endif

#if LAST_OBS_TRACE
/** Record a trace event iff `stream` (a TraceStream*) is non-null.
 *  Arguments after the stream are forwarded to TraceStream::emit. */
#define LAST_TRACE(stream, ...)                                              \
    do {                                                                     \
        if (stream)                                                          \
            (stream)->emit(__VA_ARGS__);                                     \
    } while (0)
#else
#define LAST_TRACE(stream, ...)                                              \
    do {                                                                     \
    } while (0)
#endif

namespace last::obs
{

/** True when the trace points are compiled into this build. */
constexpr bool
tracePointsCompiled()
{
    return LAST_OBS_TRACE != 0;
}

/** What happened. The kind fixes the Chrome event name and phase and
 *  the meaning of arg0/arg1 (schema in DESIGN.md §5). */
enum class TraceKind : uint8_t
{
    InstIssue,      ///< span issue->result-ready; arg0=slot, arg1=(pc<<4)|class
    IbFlush,        ///< instant; arg0=slot, arg1=flush count
    RsPush,         ///< instant; arg0=slot, arg1=new RS depth
    RsPop,          ///< instant; arg0=slot, arg1=new RS depth
    DepStall,       ///< span; arg0=slot, arg1=0 scoreboard / 1 waitcnt
    WfStart,        ///< instant; arg0=slot, arg1=workgroup id
    WfEnd,          ///< instant; arg0=slot, arg1=workgroup id
    CacheMiss,      ///< span miss->fill; arg0=byte addr, arg1=isWrite
    KernelDispatch, ///< span launch->completion; arg0=name string id
    IdleSkip,       ///< span; arg0=cycles skipped by the fast-forward
    Watchdog,       ///< instant; arg0=reason string id
};

/** Issue-class index carried in InstIssue's arg1 low nibble. */
enum class InstClass : uint8_t
{
    VAlu, SAlu, VMem, SMem, Lds, Branch, Waitcnt, Misc,
};

const char *instClassName(InstClass c);

/** One buffered event. POD on purpose: appending must be an O(1)
 *  store, and the buffer must stay cache-dense. */
struct TraceEvent
{
    Cycle ts = 0;
    Cycle dur = 0; ///< 0 = instant event
    uint64_t arg0 = 0;
    uint64_t arg1 = 0;
    TraceKind kind = TraceKind::InstIssue;
};

class TraceSink;

/**
 * One component's event buffer (a CU, a cache, the dispatcher...).
 * Maps to one Chrome thread track; created via TraceSink::makeStream.
 */
class TraceStream
{
  public:
    void
    emit(TraceKind kind, Cycle ts, Cycle dur = 0, uint64_t arg0 = 0,
         uint64_t arg1 = 0)
    {
        if (ev.size() >= cap) {
            ++droppedCount;
            return;
        }
        ev.push_back({ts, dur, arg0, arg1, kind});
    }

    /** Intern a string for kinds that carry one (KernelDispatch,
     *  Watchdog). Rare-path: linear scan over a short table. */
    uint64_t intern(const std::string &s);

    const std::vector<TraceEvent> &events() const { return ev; }
    const std::string &string(uint64_t id) const { return strings[id]; }
    uint64_t dropped() const { return droppedCount; }
    uint32_t tid() const { return tid_; }
    const std::string &threadName() const { return name_; }

  private:
    friend class TraceSink;

    std::vector<TraceEvent> ev;
    std::vector<std::string> strings;
    std::string name_;
    uint32_t tid_ = 0;
    size_t cap = 0;
    uint64_t droppedCount = 0;
};

/** Run provenance recorded into the trace header. */
struct TraceMeta
{
    std::string workload;
    std::string isa;
    double scale = 1.0;
    uint64_t seed = 0;
    std::string faultPlan; ///< empty = no faults injected
};

/** Well-known Chrome thread ids (all under pid 1). */
constexpr uint32_t TidRuntime = 1;   ///< kernel dispatch spans
constexpr uint32_t TidGpu = 2;       ///< idle skips, watchdog events
constexpr uint32_t TidCuBase = 10;   ///< tid = TidCuBase + cu index
constexpr uint32_t TidCacheBase = 100; ///< tid = TidCacheBase + k

/**
 * Owns the per-component streams of one simulation and serializes
 * them. Attach via GpuConfig::trace; the Gpu/Runtime constructors
 * create and wire the component streams.
 */
class TraceSink
{
  public:
    /** @param maxEventsPerStream cap per component buffer; events past
     *  it are dropped (and counted), keeping memory bounded on long
     *  runs. */
    explicit TraceSink(size_t maxEventsPerStream = size_t(1) << 20)
        : cap(maxEventsPerStream)
    {}

    TraceSink(const TraceSink &) = delete;
    TraceSink &operator=(const TraceSink &) = delete;

    /** Create a stream (= one viewer track). Thread-safe; the
     *  returned pointer is stable for the sink's lifetime. */
    TraceStream *makeStream(const std::string &name, uint32_t tid);

    size_t numStreams() const;
    /** Streams in creation order (only meaningful after the run). */
    const TraceStream &stream(size_t i) const { return streams[i]; }
    uint64_t totalEvents() const;
    uint64_t totalDropped() const;

    /** Serialize everything as Chrome trace_event JSON ("JSON object
     *  format": traceEvents + metadata). */
    void writeChromeTrace(std::ostream &os, const TraceMeta &meta) const;

  private:
    mutable std::mutex mu;
    std::deque<TraceStream> streams; ///< deque: stable addresses
    size_t cap;
};

} // namespace last::obs

#endif // LAST_OBS_TRACE_HH
