/**
 * @file
 * Machine-readable export of the `common/stats` registry.
 *
 * Walks a stats::Group tree (typically the Runtime root, "sim") and
 * dumps every statistic with its dotted path, flavour, and full state:
 * scalars as a value, averages as value + sample count, histograms as
 * median/mean/max plus the raw log2 buckets. Each dump carries run
 * metadata (workload, ISA, scale, seed, fault plan) so files are
 * self-describing. Formats: JSON (schema `last-stats-v1`, DESIGN.md §5)
 * and a flat CSV for spreadsheet/pandas consumption.
 */

#ifndef LAST_OBS_STATS_EXPORT_HH
#define LAST_OBS_STATS_EXPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace last::obs
{

/** Run provenance stamped into every export. */
struct ExportMeta
{
    std::string workload;
    std::string isa;
    double scale = 1.0;
    uint64_t seed = 0;
    std::string faultPlan; ///< empty = no faults injected
};

/** One statistic with its dotted path from the exported root. */
struct StatRow
{
    std::string path;
    const stats::Stat *stat;
};

/** Depth-first flatten of a group tree into (path, stat) rows; the
 *  root group's name is the first path component. */
std::vector<StatRow> flattenStats(const stats::Group &root);

/** Dump the tree as `last-stats-v1` JSON. */
void writeStatsJson(std::ostream &os, const stats::Group &root,
                    const ExportMeta &meta);

/**
 * Dump the tree as flat CSV, one row per statistic:
 *   workload,isa,scale,seed,fault_plan,path,kind,value,samples,mean,max
 * (samples/mean/max are empty for scalars).
 * @param header emit the column-name row first (set false when
 *        appending runs to one file).
 */
void writeStatsCsv(std::ostream &os, const stats::Group &root,
                   const ExportMeta &meta, bool header = true);

} // namespace last::obs

#endif // LAST_OBS_STATS_EXPORT_HH
