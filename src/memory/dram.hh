/**
 * @file
 * A DDR3-like multi-channel DRAM timing model: fixed access latency
 * plus per-channel bandwidth occupancy, line-interleaved across
 * channels (Table 4: 32 channels at 500 MHz).
 */

#ifndef LAST_MEMORY_DRAM_HH
#define LAST_MEMORY_DRAM_HH

#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "memory/cache.hh"

namespace last::mem
{

class Dram : public MemLevel, public stats::Group
{
  public:
    Dram(const std::string &name, const GpuConfig &cfg,
         stats::Group *stat_parent);

    Cycle access(Addr addr, bool is_write, Cycle now) override;

    stats::Scalar reads;
    stats::Scalar writes;
    stats::Scalar busyCyclesTotal; ///< sum of channel occupancy added

  private:
    unsigned channelFor(Addr addr) const;

    unsigned lineBytes;
    unsigned latency;
    unsigned cyclesPerLine;
    std::vector<Cycle> channelFree;
};

} // namespace last::mem

#endif // LAST_MEMORY_DRAM_HH
