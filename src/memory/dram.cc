#include "memory/dram.hh"

#include <algorithm>

namespace last::mem
{

Dram::Dram(const std::string &name, const GpuConfig &cfg,
           stats::Group *stat_parent)
    : stats::Group(name, stat_parent),
      reads(this, "reads", "read line accesses"),
      writes(this, "writes", "write line accesses"),
      busyCyclesTotal(this, "busyCyclesTotal",
                      "total channel busy cycles accumulated"),
      lineBytes(cfg.l2.lineBytes), latency(cfg.dramLatency),
      cyclesPerLine(cfg.dramCyclesPerLine),
      channelFree(cfg.dramChannels, 0)
{
}

unsigned
Dram::channelFor(Addr addr) const
{
    return unsigned((addr / lineBytes) % channelFree.size());
}

Cycle
Dram::access(Addr addr, bool is_write, Cycle now)
{
    if (is_write)
        ++writes;
    else
        ++reads;

    unsigned ch = channelFor(addr);
    Cycle start = std::max(channelFree[ch], now);
    channelFree[ch] = start + cyclesPerLine;
    busyCyclesTotal += cyclesPerLine;
    return start + latency;
}

} // namespace last::mem
