/**
 * @file
 * Sparse, paged, byte-addressable functional memory with a
 * data-footprint probe.
 *
 * The footprint probe counts distinct 64 B lines ever touched; Table 6
 * of the paper compares this between the two ISAs (the interesting
 * cases are the private/spill segments, which the HSAIL runtime path
 * re-allocates per kernel launch while GCN3 reuses a per-process
 * arena).
 *
 * Hot-path notes: the common access pattern is many consecutive
 * accesses to the same page, so both the data path and the footprint
 * probe memoize the last page they resolved (the maps are node-based,
 * so the cached pointers stay valid across rehashes). The footprint is
 * kept as one 64-bit touched-line bitmap per 4096 B page (64 lines of
 * 64 B) plus a running popcount, so footprintLines() is O(1) and
 * touch() is a compare + OR on the memoized page.
 */

#ifndef LAST_MEMORY_FUNCTIONAL_MEMORY_HH
#define LAST_MEMORY_FUNCTIONAL_MEMORY_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/types.hh"

namespace last::mem
{

class FunctionalMemory
{
  public:
    static constexpr unsigned PageBytes = 4096;
    static constexpr unsigned LineBytes = 64;
    static constexpr unsigned LinesPerPage = PageBytes / LineBytes;

    /** Size of the simulated virtual address space (48-bit, like the
     *  canonical user half of x86-64/GCN). Accesses beyond it — or
     *  ones whose [addr, addr+len) range wraps the 64-bit space, the
     *  classic symptom of a negative-offset address-calculation bug —
     *  raise a MemoryError naming the address, size, and owner
     *  instead of silently growing the page map. */
    static constexpr Addr AddrSpaceBytes = Addr(1) << 48;

    /** Read len bytes at addr into buf. Unwritten memory reads 0.
     *  @throws MemoryError on out-of-range or wrap-around ranges. */
    void read(Addr addr, void *buf, size_t len);

    /** Write len bytes from buf at addr.
     *  @throws MemoryError on out-of-range or wrap-around ranges. */
    void write(Addr addr, const void *buf, size_t len);

    /** Label attached to MemoryErrors (the workload or test driving
     *  this memory); helps attribute faults inside a parallel sweep. */
    void setOwner(std::string who) { ownerLabel = std::move(who); }
    const std::string &owner() const { return ownerLabel; }

    template <typename T>
    T
    read(Addr addr)
    {
        T val;
        read(addr, &val, sizeof(T));
        return val;
    }

    template <typename T>
    void
    write(Addr addr, const T &val)
    {
        write(addr, &val, sizeof(T));
    }

    /** Distinct 64 B lines touched (reads + writes). */
    uint64_t footprintLines() const { return touchedLineCount; }
    uint64_t footprintBytes() const { return footprintLines() * LineBytes; }

    /** Forget footprint history (not contents). */
    void resetFootprint()
    {
        touchedMasks.clear();
        touchedLineCount = 0;
        touchVpn = InvalidAddr;
        touchMask = nullptr;
    }

    /** Number of resident pages (for tests). */
    size_t numPages() const { return pages.size(); }

  private:
    using Page = std::array<uint8_t, PageBytes>;

    Page &pageFor(Addr addr);
    const Page *pageForRead(Addr addr);
    void checkRange(Addr addr, size_t len, bool is_write) const;
    void touch(Addr addr, size_t len);
    void touchLines(Addr vpn, uint64_t mask);

    std::unordered_map<Addr, std::unique_ptr<Page>> pages;

    /** Per-page bitmap of 64 B lines ever touched + running count. */
    std::unordered_map<Addr, uint64_t> touchedMasks;
    uint64_t touchedLineCount = 0;

    /** @{ Last-page memos (same-page access fast path). */
    Addr writeVpn = InvalidAddr;
    Page *writePage = nullptr;
    Addr readVpn = InvalidAddr;
    const Page *readPage = nullptr;
    Addr touchVpn = InvalidAddr;
    uint64_t *touchMask = nullptr;
    /** @} */

    std::string ownerLabel;
};

} // namespace last::mem

#endif // LAST_MEMORY_FUNCTIONAL_MEMORY_HH
