/**
 * @file
 * Sparse, paged, byte-addressable functional memory with a
 * data-footprint probe.
 *
 * The footprint probe counts distinct 64 B lines ever touched; Table 6
 * of the paper compares this between the two ISAs (the interesting
 * cases are the private/spill segments, which the HSAIL runtime path
 * re-allocates per kernel launch while GCN3 reuses a per-process
 * arena).
 */

#ifndef LAST_MEMORY_FUNCTIONAL_MEMORY_HH
#define LAST_MEMORY_FUNCTIONAL_MEMORY_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/types.hh"

namespace last::mem
{

class FunctionalMemory
{
  public:
    static constexpr unsigned PageBytes = 4096;
    static constexpr unsigned LineBytes = 64;

    /** Read len bytes at addr into buf. Unwritten memory reads 0. */
    void read(Addr addr, void *buf, size_t len);

    /** Write len bytes from buf at addr. */
    void write(Addr addr, const void *buf, size_t len);

    template <typename T>
    T
    read(Addr addr)
    {
        T val;
        read(addr, &val, sizeof(T));
        return val;
    }

    template <typename T>
    void
    write(Addr addr, const T &val)
    {
        write(addr, &val, sizeof(T));
    }

    /** Distinct 64 B lines touched (reads + writes). */
    uint64_t footprintLines() const { return touchedLines.size(); }
    uint64_t footprintBytes() const { return footprintLines() * LineBytes; }

    /** Forget footprint history (not contents). */
    void resetFootprint() { touchedLines.clear(); }

    /** Number of resident pages (for tests). */
    size_t numPages() const { return pages.size(); }

  private:
    using Page = std::array<uint8_t, PageBytes>;

    Page &pageFor(Addr addr);
    const Page *pageForRead(Addr addr) const;
    void touch(Addr addr, size_t len);

    std::unordered_map<Addr, std::unique_ptr<Page>> pages;
    std::unordered_set<Addr> touchedLines;
};

} // namespace last::mem

#endif // LAST_MEMORY_FUNCTIONAL_MEMORY_HH
