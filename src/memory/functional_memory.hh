/**
 * @file
 * Sparse, paged, byte-addressable functional memory with a
 * data-footprint probe.
 *
 * The footprint probe counts distinct 64 B lines ever touched; Table 6
 * of the paper compares this between the two ISAs (the interesting
 * cases are the private/spill segments, which the HSAIL runtime path
 * re-allocates per kernel launch while GCN3 reuses a per-process
 * arena).
 *
 * Hot-path notes: the common access pattern is many consecutive
 * accesses to the same page, so both the data path and the footprint
 * probe memoize the last page they resolved (the maps are node-based,
 * so the cached pointers stay valid across rehashes). The footprint is
 * kept as one 64-bit touched-line bitmap per 4096 B page (64 lines of
 * 64 B) plus a running popcount, so footprintLines() is O(1) and
 * touch() is a compare + OR on the memoized page.
 */

#ifndef LAST_MEMORY_FUNCTIONAL_MEMORY_HH
#define LAST_MEMORY_FUNCTIONAL_MEMORY_HH

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "common/types.hh"

namespace last::mem
{

class FunctionalMemory
{
  public:
    static constexpr unsigned PageBytes = 4096;
    static constexpr unsigned LineBytes = 64;
    static constexpr unsigned LinesPerPage = PageBytes / LineBytes;

    /** Read len bytes at addr into buf. Unwritten memory reads 0. */
    void read(Addr addr, void *buf, size_t len);

    /** Write len bytes from buf at addr. */
    void write(Addr addr, const void *buf, size_t len);

    template <typename T>
    T
    read(Addr addr)
    {
        T val;
        read(addr, &val, sizeof(T));
        return val;
    }

    template <typename T>
    void
    write(Addr addr, const T &val)
    {
        write(addr, &val, sizeof(T));
    }

    /** Distinct 64 B lines touched (reads + writes). */
    uint64_t footprintLines() const { return touchedLineCount; }
    uint64_t footprintBytes() const { return footprintLines() * LineBytes; }

    /** Forget footprint history (not contents). */
    void resetFootprint()
    {
        touchedMasks.clear();
        touchedLineCount = 0;
        touchVpn = InvalidAddr;
        touchMask = nullptr;
    }

    /** Number of resident pages (for tests). */
    size_t numPages() const { return pages.size(); }

  private:
    using Page = std::array<uint8_t, PageBytes>;

    Page &pageFor(Addr addr);
    const Page *pageForRead(Addr addr);
    void touch(Addr addr, size_t len);
    void touchLines(Addr vpn, uint64_t mask);

    std::unordered_map<Addr, std::unique_ptr<Page>> pages;

    /** Per-page bitmap of 64 B lines ever touched + running count. */
    std::unordered_map<Addr, uint64_t> touchedMasks;
    uint64_t touchedLineCount = 0;

    /** @{ Last-page memos (same-page access fast path). */
    Addr writeVpn = InvalidAddr;
    Page *writePage = nullptr;
    Addr readVpn = InvalidAddr;
    const Page *readPage = nullptr;
    Addr touchVpn = InvalidAddr;
    uint64_t *touchMask = nullptr;
    /** @} */
};

} // namespace last::mem

#endif // LAST_MEMORY_FUNCTIONAL_MEMORY_HH
