/**
 * @file
 * Timing models for the cache hierarchy.
 *
 * These are stateful latency calculators: an access updates tags, LRU
 * state, and MSHR bookkeeping immediately and returns the absolute
 * cycle at which the data is available. The requester (the CU's memory
 * pipelines) schedules its own completion callback at that cycle. Same
 * fidelity class as the classic-cache style used by the simulators the
 * paper studies.
 */

#ifndef LAST_MEMORY_CACHE_HH
#define LAST_MEMORY_CACHE_HH

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace last::mem
{

/** Anything that can serve a line-granularity timing access. */
class MemLevel
{
  public:
    virtual ~MemLevel() = default;

    /**
     * Perform a timing access for the line containing addr.
     *
     * @param addr byte address (the line containing it is accessed)
     * @param isWrite true for stores
     * @param now current cycle
     * @return absolute cycle when the access completes
     */
    virtual Cycle access(Addr addr, bool isWrite, Cycle now) = 0;
};

/**
 * A set-associative (or fully associative) cache with LRU replacement,
 * MSHR-based miss merging, and write-through or write-back policy.
 */
class Cache : public MemLevel, public stats::Group
{
  public:
    Cache(const std::string &name, const CacheConfig &cfg, MemLevel *next,
          stats::Group *statParent);

    Cycle access(Addr addr, bool isWrite, Cycle now) override;

    /** Drop all tags and MSHRs (between kernel launches in tests). */
    void invalidateAll();

    /** True if the line holding addr is present (for tests). */
    bool isCached(Addr addr) const;

    /**
     * Fault injection: perturb the completion time of demand accesses.
     * Starting with the first access at or after cycle `from`, the
     * next `count` accesses (0 = all of them) complete `extra` cycles
     * late. An `extra` beyond any watchdog budget models a response
     * that never arrives (sim::DroppedResponseLatency). Tags, MSHRs,
     * and hit/miss statistics are untouched — only the returned
     * completion cycle moves, exactly like a flaky interconnect.
     */
    void injectResponseFault(Cycle from, Cycle extra, unsigned count);

    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar mshrMerges;
    stats::Scalar writebacks;
    stats::Scalar accessLatencyTotal; ///< sum over accesses, for mean

  private:
    struct Line
    {
        Addr tag = InvalidAddr;
        bool valid = false;
        bool dirty = false;
        Cycle lastUse = 0;
    };

    Addr lineAddr(Addr addr) const { return addr / cfg.lineBytes; }
    unsigned setIndex(Addr line_addr) const;
    Line *findLine(Addr line_addr);
    const Line *findLineConst(Addr line_addr) const;
    Line &victimLine(Addr line_addr, Cycle now);

    CacheConfig cfg;
    MemLevel *next;
    unsigned numSets;
    unsigned ways;
    std::vector<Line> lines; ///< numSets x ways

    /** line addr -> cycle the fill completes. */
    std::unordered_map<Addr, Cycle> mshrs;

    /** @{ Injected response fault (see injectResponseFault). */
    bool faultArmed = false;
    Cycle faultFrom = 0;
    Cycle faultExtra = 0;
    unsigned faultRemaining = 0; ///< 0 while armed = unlimited
    /** @} */
};

} // namespace last::mem

#endif // LAST_MEMORY_CACHE_HH
