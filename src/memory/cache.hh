/**
 * @file
 * Timing models for the cache hierarchy.
 *
 * These are stateful latency calculators: an access updates tags, LRU
 * state, and MSHR bookkeeping immediately and returns the absolute
 * cycle at which the data is available. The requester (the CU's memory
 * pipelines) schedules its own completion callback at that cycle. Same
 * fidelity class as the classic-cache style used by the simulators the
 * paper studies.
 */

#ifndef LAST_MEMORY_CACHE_HH
#define LAST_MEMORY_CACHE_HH

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "obs/trace.hh"

namespace last::mem
{

/** Anything that can serve a line-granularity timing access. */
class MemLevel
{
  public:
    virtual ~MemLevel() = default;

    /**
     * Perform a timing access for the line containing addr.
     *
     * @param addr byte address (the line containing it is accessed)
     * @param isWrite true for stores
     * @param now current cycle
     * @return absolute cycle when the access completes
     */
    virtual Cycle access(Addr addr, bool isWrite, Cycle now) = 0;
};

/**
 * A set-associative (or fully associative) cache with LRU replacement,
 * MSHR-based miss merging, and write-through or write-back policy.
 */
class Cache : public MemLevel, public stats::Group
{
  public:
    Cache(const std::string &name, const CacheConfig &cfg, MemLevel *next,
          stats::Group *statParent);

    Cycle access(Addr addr, bool isWrite, Cycle now) override;

    /** Drop all tags and MSHRs (between kernel launches in tests). */
    void invalidateAll();

    /** True if the line holding addr is present (for tests). */
    bool isCached(Addr addr) const;

    /**
     * Fault injection: perturb the completion time of demand accesses.
     * Starting with the first access at or after cycle `from`, the
     * next `count` accesses (0 = all of them) complete `extra` cycles
     * late. An `extra` beyond any watchdog budget models a response
     * that never arrives (sim::DroppedResponseLatency). Tags, MSHRs,
     * and hit/miss statistics are untouched — only the returned
     * completion cycle moves, exactly like a flaky interconnect.
     */
    void injectResponseFault(Cycle from, Cycle extra, unsigned count);

    /** Attach this cache's structured-trace stream (nullptr = off);
     *  demand misses are recorded as miss->fill spans. */
    void setTraceStream(obs::TraceStream *s) { trace = s; }

    stats::Scalar hits;
    stats::Scalar misses;
    stats::Scalar mshrMerges;
    stats::Scalar writebacks;
    stats::Scalar accessLatencyTotal; ///< sum over accesses, for mean

  private:
    /**
     * Tag/LRU state in structure-of-arrays layout: the paper's Table 4
     * L1D is fully associative (256 ways), so the per-access tag probe
     * and the per-miss LRU victim search are whole-set linear scans.
     * Keeping tags contiguous lets the compiler vectorize those scans;
     * a per-set valid count makes the first-invalid victim pick O(1).
     * The decisions (hit way, victim way, LRU order, tie-breaks) are
     * bit-identical to the naive array-of-structs scan.
     */
    static constexpr size_t NoWay = size_t(-1);

    Addr lineAddr(Addr addr) const { return addr >> lineShift; }
    unsigned setIndex(Addr line_addr) const;
    size_t findLine(Addr line_addr) const;
    size_t victimLine(Addr line_addr, Cycle now);

    CacheConfig cfg;
    MemLevel *next;
    obs::TraceStream *trace = nullptr;
    unsigned numSets;
    unsigned ways;
    /** @{ numSets x ways; tag == InvalidAddr encodes an invalid way.
     *  Valid ways always form a prefix of each set (fills take the
     *  first invalid way; only invalidateAll() clears them). */
    std::vector<Addr> tags;
    std::vector<Cycle> lastUse;
    std::vector<uint8_t> dirty;
    std::vector<unsigned> validCount; ///< per set
    /** @} */

    /**
     * Exact line-addr -> way index, maintained iff the configuration
     * makes set scans expensive (the fully associative L1D has 256
     * ways; an early-exit tag scan cannot vectorize). The index always
     * mirrors `tags` exactly — insert on fill, erase on eviction — so
     * lookups return precisely what the scan would. Open-addressed
     * with linear probing and backward-shift deletion: the entry count
     * is bounded by the line count, so the table is sized once (4x
     * lines, power of two) and never rehashes.
     */
    class LineWayMap
    {
      public:
        void
        init(size_t num_lines)
        {
            shift = 63;
            while ((size_t(1) << (64 - shift)) < 4 * num_lines)
                --shift;
            slots.assign(size_t(1) << (64 - shift), {InvalidAddr, 0});
        }

        size_t
        find(Addr key, size_t miss) const
        {
            for (size_t i = home(key);; i = next(i)) {
                if (slots[i].key == key)
                    return slots[i].way;
                if (slots[i].key == InvalidAddr)
                    return miss;
            }
        }

        void
        insert(Addr key, size_t way)
        {
            size_t i = home(key);
            while (slots[i].key != InvalidAddr)
                i = next(i);
            slots[i] = {key, way};
        }

        void
        erase(Addr key)
        {
            size_t i = home(key);
            while (slots[i].key != key)
                i = next(i);
            // Backward-shift deletion keeps probe chains intact
            // without tombstones.
            for (size_t j = next(i);; j = next(j)) {
                if (slots[j].key == InvalidAddr)
                    break;
                size_t h = home(slots[j].key);
                // Move slots[j] into the hole iff its home position
                // lies outside (i, j] on the probe circle.
                if (((j - h) & mask()) >= ((j - i) & mask())) {
                    slots[i] = slots[j];
                    i = j;
                }
            }
            slots[i].key = InvalidAddr;
        }

        void
        clear()
        {
            for (auto &s : slots)
                s.key = InvalidAddr;
        }

      private:
        struct Slot
        {
            Addr key;
            size_t way;
        };

        size_t mask() const { return slots.size() - 1; }
        size_t next(size_t i) const { return (i + 1) & mask(); }
        size_t
        home(Addr key) const
        {
            return size_t(key * 0x9e3779b97f4a7c15ull >> shift);
        }

        std::vector<Slot> slots;
        unsigned shift = 63;
    };

    bool useWayIndex = false;
    LineWayMap wayIndex;

    /** @{ Fast address decomposition: lineBytes is asserted a power of
     *  two; numSets usually is one too (mask), with a modulo fallback
     *  for odd configurations. */
    unsigned lineShift = 0;
    bool setsPow2 = false;
    unsigned setMask = 0;
    /** @} */

    /** line addr -> cycle the fill completes. Entries retire lazily
     *  (only when the same line is touched after its fill), so the map
     *  holds many stale entries and the all-MSHRs-busy check fires on
     *  most misses once the footprint exceeds the MSHR count. */
    std::unordered_map<Addr, Cycle> mshrs;

    /** Cached max fill cycle over all `mshrs` entries, so the
     *  all-MSHRs-busy serialization does not rescan the map per miss.
     *  Invalidated (recomputed on next use) only when an entry holding
     *  the max value retires — rare, since retirement needs a re-touch
     *  after the fill completed. Values are exact at every query. */
    Cycle mshrMaxFill = 0;
    bool mshrMaxDirty = false;

    /** @{ Injected response fault (see injectResponseFault). */
    bool faultArmed = false;
    Cycle faultFrom = 0;
    Cycle faultExtra = 0;
    unsigned faultRemaining = 0; ///< 0 while armed = unlimited
    /** @} */
};

} // namespace last::mem

#endif // LAST_MEMORY_CACHE_HH
