/**
 * @file
 * Local data share (group segment): per-workgroup functional storage
 * plus a simple banked timing model.
 */

#ifndef LAST_MEMORY_LDS_HH
#define LAST_MEMORY_LDS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace last::mem
{

/**
 * One workgroup's LDS allocation. The CU allocates a block when a
 * workgroup is dispatched and frees it at completion; addressing is
 * zero-based within the block for both ISAs (the group segment).
 */
class LdsBlock
{
  public:
    explicit LdsBlock(uint64_t bytes) : store(bytes, 0) {}

    uint64_t size() const { return store.size(); }

    uint32_t
    read32(Addr offset) const
    {
        if (offset + 4 > store.size())
            return 0;
        uint32_t v;
        __builtin_memcpy(&v, store.data() + offset, 4);
        return v;
    }

    void
    write32(Addr offset, uint32_t v)
    {
        if (offset + 4 > store.size())
            return;
        __builtin_memcpy(store.data() + offset, &v, 4);
    }

    /**
     * Bank-conflict latency for a set of lane offsets: with 32 banks of
     * 4 B, the access takes max-lanes-per-bank passes.
     */
    static unsigned
    conflictPasses(const std::array<Addr, 64> &offsets, uint64_t mask)
    {
        std::array<uint8_t, 32> perBank{};
        unsigned passes = 1;
        for (unsigned lane = 0; lane < 64; ++lane) {
            if (!(mask & (1ull << lane)))
                continue;
            unsigned bank = unsigned((offsets[lane] / 4) % 32);
            perBank[bank]++;
            if (perBank[bank] > passes)
                passes = perBank[bank];
        }
        return passes;
    }

  private:
    std::vector<uint8_t> store;
};

} // namespace last::mem

#endif // LAST_MEMORY_LDS_HH
