#include "memory/cache.hh"

#include <algorithm>

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace last::mem
{

Cache::Cache(const std::string &name, const CacheConfig &cfg_,
             MemLevel *next_, stats::Group *stat_parent)
    : stats::Group(name, stat_parent),
      hits(this, "hits", "demand hits"),
      misses(this, "misses", "demand misses"),
      mshrMerges(this, "mshrMerges", "misses merged into an MSHR"),
      writebacks(this, "writebacks", "dirty lines written back"),
      accessLatencyTotal(this, "accessLatencyTotal",
                         "sum of access latencies"),
      cfg(cfg_), next(next_)
{
    panic_if(!isPowerOf2(cfg.lineBytes), "line size must be a power of 2");
    uint64_t num_lines = cfg.sizeBytes / cfg.lineBytes;
    ways = cfg.associativity == 0 ? unsigned(num_lines)
                                  : cfg.associativity;
    numSets = unsigned(num_lines / ways);
    panic_if(numSets == 0, "cache too small for its associativity");
    lines.assign(size_t(numSets) * ways, Line());
}

unsigned
Cache::setIndex(Addr line_addr) const
{
    return unsigned(line_addr % numSets);
}

Cache::Line *
Cache::findLine(Addr line_addr)
{
    Line *set = &lines[size_t(setIndex(line_addr)) * ways];
    for (unsigned w = 0; w < ways; ++w)
        if (set[w].valid && set[w].tag == line_addr)
            return &set[w];
    return nullptr;
}

const Cache::Line *
Cache::findLineConst(Addr line_addr) const
{
    const Line *set = &lines[size_t(setIndex(line_addr)) * ways];
    for (unsigned w = 0; w < ways; ++w)
        if (set[w].valid && set[w].tag == line_addr)
            return &set[w];
    return nullptr;
}

Cache::Line &
Cache::victimLine(Addr line_addr, Cycle now)
{
    Line *set = &lines[size_t(setIndex(line_addr)) * ways];
    Line *victim = &set[0];
    for (unsigned w = 0; w < ways; ++w) {
        if (!set[w].valid)
            return set[w];
        if (set[w].lastUse < victim->lastUse)
            victim = &set[w];
    }
    if (victim->dirty) {
        // Account the writeback as bandwidth on the next level.
        ++writebacks;
        if (next)
            next->access(victim->tag * cfg.lineBytes, true, now);
    }
    return *victim;
}

Cycle
Cache::access(Addr addr, bool is_write, Cycle now)
{
    Addr la = lineAddr(addr);

    // Lazily retire MSHRs whose fill completed in the past.
    auto mshr = mshrs.find(la);
    if (mshr != mshrs.end() && mshr->second <= now)
        mshrs.erase(mshr), mshr = mshrs.end();

    Cycle done;
    Line *line = findLine(la);
    if (line) {
        ++hits;
        line->lastUse = now;
        if (is_write) {
            if (cfg.writeBack) {
                line->dirty = true;
            } else if (next) {
                // Write-through: forward for bandwidth accounting; the
                // store completes at hit latency (store buffer).
                next->access(addr, true, now);
            }
        }
        done = now + cfg.hitLatency;
        // A hit on a line whose fill is still in flight cannot return
        // data before the fill arrives.
        if (mshr != mshrs.end())
            done = std::max(done, mshr->second);
    } else if (mshr != mshrs.end()) {
        // Miss on an already-outstanding line: merge.
        ++mshrMerges;
        done = mshr->second;
        if (is_write && !cfg.writeBack && next)
            next->access(addr, true, now);
    } else {
        ++misses;
        Cycle fill = next ? next->access(addr, false, now)
                          : now + cfg.hitLatency;
        fill += cfg.hitLatency;
        if (mshrs.size() >= cfg.mshrs) {
            // All MSHRs busy: serialize behind the soonest-finishing
            // outstanding miss.
            Cycle soonest = fill;
            for (const auto &kv : mshrs)
                soonest = std::max(soonest, kv.second);
            fill = soonest + 1;
        }
        mshrs[la] = fill;
        Line &victim = victimLine(la, now);
        victim.tag = la;
        victim.valid = true;
        victim.dirty = false;
        victim.lastUse = now;
        if (is_write) {
            if (cfg.writeBack)
                victim.dirty = true;
            else if (next)
                next->access(addr, true, now);
        }
        done = fill;
    }

    if (faultArmed && now >= faultFrom) {
        done += faultExtra;
        if (faultRemaining && --faultRemaining == 0)
            faultArmed = false;
    }

    accessLatencyTotal += double(done - now);
    return done;
}

void
Cache::injectResponseFault(Cycle from, Cycle extra, unsigned count)
{
    faultArmed = true;
    faultFrom = from;
    faultExtra = extra;
    faultRemaining = count;
}

void
Cache::invalidateAll()
{
    for (auto &l : lines)
        l = Line();
    mshrs.clear();
}

bool
Cache::isCached(Addr addr) const
{
    return findLineConst(lineAddr(addr)) != nullptr;
}

} // namespace last::mem
