#include "memory/cache.hh"

#include <algorithm>

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace last::mem
{

Cache::Cache(const std::string &name, const CacheConfig &cfg_,
             MemLevel *next_, stats::Group *stat_parent)
    : stats::Group(name, stat_parent),
      hits(this, "hits", "demand hits"),
      misses(this, "misses", "demand misses"),
      mshrMerges(this, "mshrMerges", "misses merged into an MSHR"),
      writebacks(this, "writebacks", "dirty lines written back"),
      accessLatencyTotal(this, "accessLatencyTotal",
                         "sum of access latencies"),
      cfg(cfg_), next(next_)
{
    panic_if(!isPowerOf2(cfg.lineBytes), "line size must be a power of 2");
    uint64_t num_lines = cfg.sizeBytes / cfg.lineBytes;
    ways = cfg.associativity == 0 ? unsigned(num_lines)
                                  : cfg.associativity;
    numSets = unsigned(num_lines / ways);
    panic_if(numSets == 0, "cache too small for its associativity");
    tags.assign(size_t(numSets) * ways, InvalidAddr);
    lastUse.assign(size_t(numSets) * ways, 0);
    dirty.assign(size_t(numSets) * ways, 0);
    validCount.assign(numSets, 0);
    useWayIndex = ways > 16;
    if (useWayIndex)
        wayIndex.init(num_lines);
    lineShift = unsigned(findLsb(cfg.lineBytes));
    setsPow2 = isPowerOf2(numSets);
    setMask = numSets - 1;
}

unsigned
Cache::setIndex(Addr line_addr) const
{
    return setsPow2 ? unsigned(line_addr) & setMask
                    : unsigned(line_addr % numSets);
}

size_t
Cache::findLine(Addr line_addr) const
{
    if (useWayIndex)
        return wayIndex.find(line_addr, NoWay);
    // A line address never collides with the InvalidAddr sentinel, so
    // one tag compare covers both the valid check and the match. Only
    // the valid prefix of the set can hold the tag.
    unsigned set = setIndex(line_addr);
    size_t base = size_t(set) * ways;
    const Addr *tag = tags.data() + base;
    unsigned n = validCount[set];
    for (unsigned w = 0; w < n; ++w)
        if (tag[w] == line_addr)
            return base + w;
    return NoWay;
}

size_t
Cache::victimLine(Addr line_addr, Cycle now)
{
    unsigned set = setIndex(line_addr);
    size_t base = size_t(set) * ways;
    // First invalid way wins; valid ways are a prefix, so it is just
    // the valid count.
    if (validCount[set] < ways)
        return base + validCount[set]++;
    // Full set: LRU victim, lowest way index on lastUse ties (the
    // strict < keeps the first minimum, same as the reference scan).
    const Cycle *use = lastUse.data() + base;
    unsigned victim = 0;
    for (unsigned w = 1; w < ways; ++w)
        if (use[w] < use[victim])
            victim = w;
    if (dirty[base + victim]) {
        // Account the writeback as bandwidth on the next level.
        ++writebacks;
        if (next)
            next->access(tags[base + victim] * cfg.lineBytes, true, now);
    }
    return base + victim;
}

Cycle
Cache::access(Addr addr, bool is_write, Cycle now)
{
    Addr la = lineAddr(addr);

    // Lazily retire MSHRs whose fill completed in the past.
    auto mshr = mshrs.find(la);
    if (mshr != mshrs.end() && mshr->second <= now) {
        if (mshr->second == mshrMaxFill)
            mshrMaxDirty = true;
        mshrs.erase(mshr), mshr = mshrs.end();
    }

    Cycle done;
    size_t line = findLine(la);
    if (line != NoWay) {
        ++hits;
        lastUse[line] = now;
        if (is_write) {
            if (cfg.writeBack) {
                dirty[line] = 1;
            } else if (next) {
                // Write-through: forward for bandwidth accounting; the
                // store completes at hit latency (store buffer).
                next->access(addr, true, now);
            }
        }
        done = now + cfg.hitLatency;
        // A hit on a line whose fill is still in flight cannot return
        // data before the fill arrives.
        if (mshr != mshrs.end())
            done = std::max(done, mshr->second);
    } else if (mshr != mshrs.end()) {
        // Miss on an already-outstanding line: merge.
        ++mshrMerges;
        done = mshr->second;
        if (is_write && !cfg.writeBack && next)
            next->access(addr, true, now);
    } else {
        ++misses;
        Cycle fill = next ? next->access(addr, false, now)
                          : now + cfg.hitLatency;
        fill += cfg.hitLatency;
        if (mshrs.size() >= cfg.mshrs) {
            // All MSHRs busy: serialize behind the soonest-finishing
            // outstanding miss.
            if (mshrMaxDirty) {
                mshrMaxFill = 0;
                for (const auto &kv : mshrs)
                    mshrMaxFill = std::max(mshrMaxFill, kv.second);
                mshrMaxDirty = false;
            }
            fill = std::max(fill, mshrMaxFill) + 1;
        }
        mshrs[la] = fill;
        if (!mshrMaxDirty)
            mshrMaxFill = std::max(mshrMaxFill, fill);
        size_t victim = victimLine(la, now);
        if (useWayIndex) {
            if (tags[victim] != InvalidAddr)
                wayIndex.erase(tags[victim]);
            wayIndex.insert(la, victim);
        }
        tags[victim] = la;
        dirty[victim] = 0;
        lastUse[victim] = now;
        if (is_write) {
            if (cfg.writeBack)
                dirty[victim] = 1;
            else if (next)
                next->access(addr, true, now);
        }
        done = fill;
        LAST_TRACE(trace, obs::TraceKind::CacheMiss, now, fill - now,
                   addr, is_write);
    }

    if (faultArmed && now >= faultFrom) {
        done += faultExtra;
        if (faultRemaining && --faultRemaining == 0)
            faultArmed = false;
    }

    accessLatencyTotal += double(done - now);
    return done;
}

void
Cache::injectResponseFault(Cycle from, Cycle extra, unsigned count)
{
    faultArmed = true;
    faultFrom = from;
    faultExtra = extra;
    faultRemaining = count;
}

void
Cache::invalidateAll()
{
    std::fill(tags.begin(), tags.end(), InvalidAddr);
    std::fill(lastUse.begin(), lastUse.end(), Cycle(0));
    std::fill(dirty.begin(), dirty.end(), uint8_t(0));
    std::fill(validCount.begin(), validCount.end(), 0u);
    wayIndex.clear();
    mshrs.clear();
    mshrMaxFill = 0;
    mshrMaxDirty = false;
}

bool
Cache::isCached(Addr addr) const
{
    return findLine(lineAddr(addr)) != NoWay;
}

} // namespace last::mem
