#include "memory/functional_memory.hh"

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace last::mem
{

FunctionalMemory::Page &
FunctionalMemory::pageFor(Addr addr)
{
    Addr vpn = addr / PageBytes;
    if (vpn == writeVpn)
        return *writePage;
    auto &slot = pages[vpn];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
        // A read memo may have recorded this page as absent.
        if (readVpn == vpn)
            readPage = slot.get();
    }
    writeVpn = vpn;
    writePage = slot.get();
    return *slot;
}

const FunctionalMemory::Page *
FunctionalMemory::pageForRead(Addr addr)
{
    Addr vpn = addr / PageBytes;
    if (vpn == readVpn)
        return readPage;
    auto it = pages.find(vpn);
    readVpn = vpn;
    readPage = it == pages.end() ? nullptr : it->second.get();
    return readPage;
}

void
FunctionalMemory::touchLines(Addr vpn, uint64_t mask)
{
    if (vpn != touchVpn) {
        touchVpn = vpn;
        touchMask = &touchedMasks[vpn];
    }
    uint64_t added = mask & ~*touchMask;
    if (added) {
        *touchMask |= added;
        touchedLineCount += popCount(added);
    }
}

void
FunctionalMemory::touch(Addr addr, size_t len)
{
    Addr first = addr / LineBytes;
    Addr last = (addr + (len ? len - 1 : 0)) / LineBytes;
    while (true) {
        Addr vpn = first / LinesPerPage;
        Addr page_last = (vpn + 1) * LinesPerPage - 1;
        Addr hi = last < page_last ? last : page_last;
        unsigned lo_bit = unsigned(first % LinesPerPage);
        unsigned hi_bit = unsigned(hi % LinesPerPage);
        uint64_t mask =
            (hi_bit == 63 ? ~0ull : ((1ull << (hi_bit + 1)) - 1)) &
            ~((1ull << lo_bit) - 1);
        touchLines(vpn, mask);
        if (hi == last)
            break;
        first = hi + 1;
    }
}

void
FunctionalMemory::checkRange(Addr addr, size_t len, bool is_write) const
{
    // Wrap-around first: addr + len overflowing 64 bits is the
    // signature of a negative offset folded into an unsigned address.
    if (len && addr + (len - 1) < addr) {
        throw MemoryError(
            "address range wraps the 64-bit address space" +
                (ownerLabel.empty() ? "" : " (workload " + ownerLabel + ")"),
            addr, len, is_write, ownerLabel);
    }
    if (addr >= AddrSpaceBytes || (len && addr + (len - 1) >= AddrSpaceBytes)) {
        throw MemoryError(
            "access beyond the 48-bit simulated address space" +
                (ownerLabel.empty() ? "" : " (workload " + ownerLabel + ")"),
            addr, len, is_write, ownerLabel);
    }
}

void
FunctionalMemory::read(Addr addr, void *buf, size_t len)
{
    checkRange(addr, len, false);
    touch(addr, len);
    auto *out = static_cast<uint8_t *>(buf);
    while (len > 0) {
        Addr off = addr % PageBytes;
        size_t chunk = std::min<size_t>(len, PageBytes - off);
        const Page *page = pageForRead(addr);
        if (page)
            std::memcpy(out, page->data() + off, chunk);
        else
            std::memset(out, 0, chunk);
        addr += chunk;
        out += chunk;
        len -= chunk;
    }
}

void
FunctionalMemory::write(Addr addr, const void *buf, size_t len)
{
    checkRange(addr, len, true);
    touch(addr, len);
    const auto *in = static_cast<const uint8_t *>(buf);
    while (len > 0) {
        Addr off = addr % PageBytes;
        size_t chunk = std::min<size_t>(len, PageBytes - off);
        Page &page = pageFor(addr);
        std::memcpy(page.data() + off, in, chunk);
        addr += chunk;
        in += chunk;
        len -= chunk;
    }
}

} // namespace last::mem
