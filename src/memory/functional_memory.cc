#include "memory/functional_memory.hh"

#include "common/logging.hh"

namespace last::mem
{

FunctionalMemory::Page &
FunctionalMemory::pageFor(Addr addr)
{
    Addr vpn = addr / PageBytes;
    auto &slot = pages[vpn];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

const FunctionalMemory::Page *
FunctionalMemory::pageForRead(Addr addr) const
{
    Addr vpn = addr / PageBytes;
    auto it = pages.find(vpn);
    return it == pages.end() ? nullptr : it->second.get();
}

void
FunctionalMemory::touch(Addr addr, size_t len)
{
    Addr first = addr / LineBytes;
    Addr last = (addr + (len ? len - 1 : 0)) / LineBytes;
    for (Addr line = first; line <= last; ++line)
        touchedLines.insert(line);
}

void
FunctionalMemory::read(Addr addr, void *buf, size_t len)
{
    touch(addr, len);
    auto *out = static_cast<uint8_t *>(buf);
    while (len > 0) {
        Addr off = addr % PageBytes;
        size_t chunk = std::min<size_t>(len, PageBytes - off);
        const Page *page = pageForRead(addr);
        if (page)
            std::memcpy(out, page->data() + off, chunk);
        else
            std::memset(out, 0, chunk);
        addr += chunk;
        out += chunk;
        len -= chunk;
    }
}

void
FunctionalMemory::write(Addr addr, const void *buf, size_t len)
{
    touch(addr, len);
    const auto *in = static_cast<const uint8_t *>(buf);
    while (len > 0) {
        Addr off = addr % PageBytes;
        size_t chunk = std::min<size_t>(len, PageBytes - off);
        Page &page = pageFor(addr);
        std::memcpy(page.data() + off, in, chunk);
        addr += chunk;
        in += chunk;
        len -= chunk;
    }
}

} // namespace last::mem
