/**
 * @file
 * Direct-threaded execution handlers for HSAIL.
 *
 * HsailInst::predecode resolves each static instruction to one of the
 * flat handlers below. The hot ALU op classes get templated,
 * branchless lane kernels instantiated per (opcode, data type) and
 * iterate only the active lanes (ctz over the mask, the probes.hh
 * idiom), with a full-row loop when all 64 lanes are live so the
 * compiler can autovectorize. Cold or wide (64-bit) ops fall back to
 * the unchanged reference executors, called non-virtually.
 *
 * Correctness contract: every handler is bit-identical to the
 * corresponding piece of HsailInst::execute() — same per-lane scalar
 * expressions (hence the same IEEE results), same ascending lane
 * order for memory side effects, same MemAccess contents. The
 * differential suite in tests/test_exec_engine.cc runs every workload
 * both ways and compares field for field.
 */

#include <bit>
#include <cmath>

#include "arch/exec_meta.hh"
#include "common/logging.hh"
#include "hsail/inst.hh"

namespace last::hsail
{

namespace
{

float asF32(uint32_t b) { return std::bit_cast<float>(b); }
uint32_t fromF32(float f) { return std::bit_cast<uint32_t>(f); }

/** Operands a templated ALU kernel reads (reference: laneAlu). */
constexpr unsigned
aluArity(Opcode op)
{
    switch (op) {
      case Opcode::Abs:
      case Opcode::Neg:
      case Opcode::Not:
      case Opcode::Mov:
        return 1;
      case Opcode::Mad:
      case Opcode::Fma:
      case Opcode::Bfe:
      case Opcode::CMov:
        return 3;
      default:
        return 2;
    }
}

/**
 * One lane of a 32-bit ALU op. The expressions are copied verbatim
 * from HsailInst::laneAlu (with the uint64 zero-extensions collapsed,
 * which cannot change any 32-bit result) — do not "simplify" them.
 */
template <Opcode OP, DataType DT>
inline uint32_t
lane32(uint32_t a, [[maybe_unused]] uint32_t b, [[maybe_unused]] uint32_t c)
{
    if constexpr (OP == Opcode::Add) {
        if constexpr (DT == DataType::F32)
            return fromF32(asF32(a) + asF32(b));
        else
            return a + b;
    } else if constexpr (OP == Opcode::Sub) {
        if constexpr (DT == DataType::F32)
            return fromF32(asF32(a) - asF32(b));
        else
            return a - b;
    } else if constexpr (OP == Opcode::Mul) {
        if constexpr (DT == DataType::F32)
            return fromF32(asF32(a) * asF32(b));
        else
            return a * b;
    } else if constexpr (OP == Opcode::MulHi) {
        return uint32_t((uint64_t(a) * uint64_t(b)) >> 32);
    } else if constexpr (OP == Opcode::Mad) {
        if constexpr (DT == DataType::F32)
            return fromF32(asF32(a) * asF32(b) + asF32(c));
        else
            return a * b + c;
    } else if constexpr (OP == Opcode::Fma) {
        if constexpr (DT == DataType::F32)
            return fromF32(std::fma(asF32(a), asF32(b), asF32(c)));
        else
            return a * b + c;
    } else if constexpr (OP == Opcode::Min) {
        if constexpr (DT == DataType::F32)
            return fromF32(std::fmin(asF32(a), asF32(b)));
        else if constexpr (DT == DataType::S32)
            return uint32_t(std::min(int32_t(a), int32_t(b)));
        else
            return std::min(a, b);
    } else if constexpr (OP == Opcode::Max) {
        if constexpr (DT == DataType::F32)
            return fromF32(std::fmax(asF32(a), asF32(b)));
        else if constexpr (DT == DataType::S32)
            return uint32_t(std::max(int32_t(a), int32_t(b)));
        else
            return std::max(a, b);
    } else if constexpr (OP == Opcode::Abs) {
        if constexpr (DT == DataType::F32)
            return fromF32(std::fabs(asF32(a)));
        else
            return uint32_t(std::abs(int32_t(a)));
    } else if constexpr (OP == Opcode::Neg) {
        if constexpr (DT == DataType::F32)
            return fromF32(-asF32(a));
        else
            return uint32_t(-int32_t(a));
    } else if constexpr (OP == Opcode::And) {
        return a & b;
    } else if constexpr (OP == Opcode::Or) {
        return a | b;
    } else if constexpr (OP == Opcode::Xor) {
        return a ^ b;
    } else if constexpr (OP == Opcode::Not) {
        return ~a;
    } else if constexpr (OP == Opcode::Shl) {
        return a << (b & 31);
    } else if constexpr (OP == Opcode::Shr) {
        return a >> (b & 31);
    } else if constexpr (OP == Opcode::AShr) {
        return uint32_t(int32_t(a) >> (b & 31));
    } else if constexpr (OP == Opcode::Bfe) {
        unsigned off = b & 31;
        unsigned width = c & 31;
        uint32_t mask = width == 0 ? 0xffffffffu : ((1u << width) - 1);
        return (a >> off) & mask;
    } else if constexpr (OP == Opcode::CMov) {
        return a ? b : c;
    } else if constexpr (OP == Opcode::Mov) {
        return a;
    } else {
        static_assert(OP == Opcode::Mov, "no lane kernel for opcode");
        return 0;
    }
}

template <CmpOp C, typename T>
inline bool
docmp(T x, T y)
{
    switch (C) {
      case CmpOp::Eq: return x == y;
      case CmpOp::Ne: return x != y;
      case CmpOp::Lt: return x < y;
      case CmpOp::Le: return x <= y;
      case CmpOp::Gt: return x > y;
      case CmpOp::Ge: return x >= y;
    }
    return false;
}

template <CmpOp C, DataType DT>
inline uint32_t
laneCmp32(uint32_t a, uint32_t b)
{
    bool r;
    if constexpr (DT == DataType::F32)
        r = docmp<C>(asF32(a), asF32(b));
    else if constexpr (DT == DataType::S32)
        r = docmp<C>(int32_t(a), int32_t(b));
    else
        r = docmp<C>(a, b); // uint32: same order as the u64 reference
    return r ? 1u : 0u;
}

} // namespace

struct HsailExec
{
    using Meta = arch::ExecMeta;
    using Wf = arch::WfState;

    static const HsailInst &
    inst(const Meta &m)
    {
        return static_cast<const HsailInst &>(*m.inst);
    }

    /** @{ Trivial control handlers (reference: execute() switch). */
    static void
    nopH(const Meta &, Wf &wf)
    {
        wf.nextPc = wf.pc + HsailInst::EncodedBytes;
    }

    static void
    retH(const Meta &, Wf &wf)
    {
        wf.nextPc = wf.pc + HsailInst::EncodedBytes;
        wf.done = true;
    }

    static void
    barrierH(const Meta &, Wf &wf)
    {
        wf.nextPc = wf.pc + HsailInst::EncodedBytes;
        wf.atBarrier = true;
    }

    static void
    brH(const Meta &m, Wf &wf)
    {
        wf.nextPc = inst(m).targetOffset();
    }
    /** @} */

    /** Conditional branch; mirrors executeBranch lane for lane. */
    static void
    cbrH(const Meta &m, Wf &wf)
    {
        const HsailInst &I = inst(m);
        Addr fallthrough = wf.pc + HsailInst::EncodedBytes;
        Addr target = I.targetOffset();

        uint64_t active = wf.activeMask();
        bool if_zero = I.branchIfZero();
        const uint32_t *cond = wf.vregs[I.srcRegs[0].idx].data();
        uint64_t taken = 0;
        for (uint64_t rest = active; rest; rest &= rest - 1) {
            unsigned lane = unsigned(std::countr_zero(rest));
            if ((cond[lane] != 0) != if_zero)
                taken |= 1ull << lane;
        }
        uint64_t not_taken = active & ~taken;

        if (taken == 0) {
            wf.nextPc = fallthrough;
        } else if (not_taken == 0) {
            wf.nextPc = target;
        } else {
            panic_if(I.rpcOff == InvalidAddr,
                     "divergent branch without ipdom analysis");
            wf.rs.back().pc = I.rpcOff;
            wf.rs.push_back({fallthrough, I.rpcOff, not_taken});
            wf.rs.push_back({target, I.rpcOff, taken});
            wf.nextPc = target;
        }
    }

    /**
     * Memory; mirrors executeMem with two changes that cannot alter
     * results: the MemAccess is built in place inside wf.pendingAccess
     * (emplace() value-initializes it exactly like the reference's
     * local `MemAccess acc;`, and the CU consumes it by reference —
     * no 600-byte copies either way), and lane loops are ctz-driven
     * in the same ascending order the reference's 0..63 scan visits,
     * so overlapping stores and atomics land identically.
     */
    static void
    memH(const Meta &m, Wf &wf)
    {
        using arch::MemAccess;
        const HsailInst &I = inst(m);
        wf.nextPc = wf.pc + HsailInst::EncodedBytes;

        uint64_t mask = wf.activeMask();
        unsigned bytes = typeBytes(I.dtype);
        MemAccess &acc = wf.pendingAccess.emplace();
        acc.bytesPerLane = bytes;
        acc.mask = mask;

        if (I.seg == Segment::Kernarg || I.seg == Segment::Arg) {
            Addr addr = wf.kernargBase + I.imm;
            uint64_t val = 0;
            wf.memory->read(addr, &val, bytes);
            for (uint64_t rest = mask; rest; rest &= rest - 1) {
                unsigned lane = unsigned(std::countr_zero(rest));
                if (bytes == 8)
                    wf.writeVreg64(I.dstReg.idx, lane, val);
                else
                    wf.writeVreg(I.dstReg.idx, lane, uint32_t(val));
            }
            acc.kind = MemAccess::Kind::KernargDirect;
            acc.scalarAddr = addr;
            acc.scalarBytes = bytes;
            return;
        }

        if (I.seg == Segment::Group) {
            acc.kind = (I.opc == Opcode::St) ? MemAccess::Kind::LdsStore
                                             : MemAccess::Kind::LdsLoad;
            const bool has_off = I.srcRegs[0].valid();
            for (uint64_t rest = mask; rest; rest &= rest - 1) {
                unsigned lane = unsigned(std::countr_zero(rest));
                Addr off = I.imm;
                if (has_off)
                    off += wf.readVreg(I.srcRegs[0].idx, lane);
                acc.laneAddrs[lane] = off;
                if (I.opc == Opcode::St) {
                    wf.lds->write32(off,
                                    wf.readVreg(I.srcRegs[1].idx, lane));
                    if (bytes == 8)
                        wf.lds->write32(
                            off + 4,
                            wf.readVreg(I.srcRegs[1].idx + 1, lane));
                } else {
                    wf.writeVreg(I.dstReg.idx, lane, wf.lds->read32(off));
                    if (bytes == 8)
                        wf.writeVreg(I.dstReg.idx + 1, lane,
                                     wf.lds->read32(off + 4));
                }
            }
            return;
        }

        acc.kind = (I.opc == Opcode::St) ? MemAccess::Kind::VectorStore
                                         : MemAccess::Kind::VectorLoad;
        for (uint64_t rest = mask; rest; rest &= rest - 1) {
            unsigned lane = unsigned(std::countr_zero(rest));
            Addr addr;
            switch (I.seg) {
              case Segment::Global:
              case Segment::Readonly:
                addr = wf.readVreg64(I.srcRegs[0].idx, lane) + I.imm;
                break;
              case Segment::Private:
                addr = wf.privateBase +
                       uint64_t(wf.globalId(lane)) * wf.privateStridePerWi +
                       (I.srcRegs[0].valid()
                            ? wf.readVreg(I.srcRegs[0].idx, lane) : 0) +
                       I.imm;
                break;
              case Segment::Spill:
                addr = wf.spillBase +
                       uint64_t(wf.globalId(lane)) * wf.spillStridePerWi +
                       (I.srcRegs[0].valid()
                            ? wf.readVreg(I.srcRegs[0].idx, lane) : 0) +
                       I.imm;
                break;
              default:
                panic("unhandled segment");
            }
            acc.laneAddrs[lane] = addr;

            if (I.opc == Opcode::St) {
                if (bytes == 8) {
                    uint64_t v = wf.readVreg64(I.srcRegs[1].idx, lane);
                    wf.memory->write(addr, &v, 8);
                } else {
                    uint32_t v = wf.readVreg(I.srcRegs[1].idx, lane);
                    wf.memory->write(addr, &v, 4);
                }
            } else if (I.opc == Opcode::AtomicAdd) {
                uint32_t old = wf.memory->read<uint32_t>(addr);
                uint32_t add = wf.readVreg(I.srcRegs[1].idx, lane);
                wf.memory->write<uint32_t>(addr, old + add);
                if (I.dstReg.valid())
                    wf.writeVreg(I.dstReg.idx, lane, old);
            } else {
                if (bytes == 8) {
                    uint64_t v = 0;
                    wf.memory->read(addr, &v, 8);
                    wf.writeVreg64(I.dstReg.idx, lane, v);
                } else {
                    uint32_t v = 0;
                    wf.memory->read(addr, &v, 4);
                    wf.writeVreg(I.dstReg.idx, lane, v);
                }
            }
        }
    }

    /** Cold/wide ALU fallback: the unchanged reference executor,
     *  called without the virtual hop. */
    static void
    aluGenericH(const Meta &m, Wf &wf)
    {
        const HsailInst &I = inst(m);
        wf.nextPc = wf.pc + HsailInst::EncodedBytes;
        I.executeAlu(wf);
    }

    /** movimm: broadcast the immediate into the active lanes. */
    static void
    movImmH(const Meta &m, Wf &wf)
    {
        const HsailInst &I = inst(m);
        wf.nextPc = wf.pc + HsailInst::EncodedBytes;
        uint64_t mask = wf.activeMask();
        uint32_t *d = wf.vregs[I.dstReg.idx].data();
        const uint32_t v = uint32_t(I.imm);
        if (mask == ~0ull) {
            for (unsigned l = 0; l < WavefrontSize; ++l)
                d[l] = v;
        } else {
            for (uint64_t rest = mask; rest; rest &= rest - 1)
                d[unsigned(std::countr_zero(rest))] = v;
        }
    }

    /** 32-bit ALU op, one instantiation per (opcode, type). */
    template <Opcode OP, DataType DT>
    static void
    aluH(const Meta &m, Wf &wf)
    {
        const HsailInst &I = inst(m);
        wf.nextPc = wf.pc + HsailInst::EncodedBytes;
        uint64_t mask = wf.activeMask();

        constexpr unsigned N = aluArity(OP);
        uint32_t *d = wf.vregs[I.dstReg.idx].data();
        const uint32_t *a = wf.vregs[I.srcRegs[0].idx].data();
        const uint32_t *b = a;
        const uint32_t *c = a;
        if constexpr (N >= 2)
            b = wf.vregs[I.srcRegs[1].idx].data();
        if constexpr (N >= 3)
            c = wf.vregs[I.srcRegs[2].idx].data();

        if (mask == ~0ull) {
            for (unsigned l = 0; l < WavefrontSize; ++l)
                d[l] = lane32<OP, DT>(a[l], b[l], c[l]);
        } else {
            for (uint64_t rest = mask; rest; rest &= rest - 1) {
                unsigned l = unsigned(std::countr_zero(rest));
                d[l] = lane32<OP, DT>(a[l], b[l], c[l]);
            }
        }
    }

    /** 32-bit compare, one instantiation per (cmp op, type). */
    template <CmpOp C, DataType DT>
    static void
    cmpH(const Meta &m, Wf &wf)
    {
        const HsailInst &I = inst(m);
        wf.nextPc = wf.pc + HsailInst::EncodedBytes;
        uint64_t mask = wf.activeMask();

        uint32_t *d = wf.vregs[I.dstReg.idx].data();
        const uint32_t *a = wf.vregs[I.srcRegs[0].idx].data();
        const uint32_t *b = wf.vregs[I.srcRegs[1].idx].data();

        if (mask == ~0ull) {
            for (unsigned l = 0; l < WavefrontSize; ++l)
                d[l] = laneCmp32<C, DT>(a[l], b[l]);
        } else {
            for (uint64_t rest = mask; rest; rest &= rest - 1) {
                unsigned l = unsigned(std::countr_zero(rest));
                d[l] = laneCmp32<C, DT>(a[l], b[l]);
            }
        }
    }

    template <DataType DT>
    static arch::ExecHandler
    pickAluDt(Opcode op)
    {
        switch (op) {
          case Opcode::Add: return &aluH<Opcode::Add, DT>;
          case Opcode::Sub: return &aluH<Opcode::Sub, DT>;
          case Opcode::Mul: return &aluH<Opcode::Mul, DT>;
          case Opcode::MulHi: return &aluH<Opcode::MulHi, DT>;
          case Opcode::Mad: return &aluH<Opcode::Mad, DT>;
          case Opcode::Fma: return &aluH<Opcode::Fma, DT>;
          case Opcode::Min: return &aluH<Opcode::Min, DT>;
          case Opcode::Max: return &aluH<Opcode::Max, DT>;
          case Opcode::Abs: return &aluH<Opcode::Abs, DT>;
          case Opcode::Neg: return &aluH<Opcode::Neg, DT>;
          case Opcode::And: return &aluH<Opcode::And, DT>;
          case Opcode::Or: return &aluH<Opcode::Or, DT>;
          case Opcode::Xor: return &aluH<Opcode::Xor, DT>;
          case Opcode::Not: return &aluH<Opcode::Not, DT>;
          case Opcode::Shl: return &aluH<Opcode::Shl, DT>;
          case Opcode::Shr: return &aluH<Opcode::Shr, DT>;
          case Opcode::AShr: return &aluH<Opcode::AShr, DT>;
          case Opcode::Bfe: return &aluH<Opcode::Bfe, DT>;
          case Opcode::CMov: return &aluH<Opcode::CMov, DT>;
          case Opcode::Mov: return &aluH<Opcode::Mov, DT>;
          default: return nullptr; // Div/Rem/Sqrt/Cvt/specials: generic
        }
    }

    template <DataType DT>
    static arch::ExecHandler
    pickCmpDt(CmpOp c)
    {
        switch (c) {
          case CmpOp::Eq: return &cmpH<CmpOp::Eq, DT>;
          case CmpOp::Ne: return &cmpH<CmpOp::Ne, DT>;
          case CmpOp::Lt: return &cmpH<CmpOp::Lt, DT>;
          case CmpOp::Le: return &cmpH<CmpOp::Le, DT>;
          case CmpOp::Gt: return &cmpH<CmpOp::Gt, DT>;
          case CmpOp::Ge: return &cmpH<CmpOp::Ge, DT>;
        }
        return nullptr;
    }

    static arch::ExecHandler
    pick(const HsailInst &I)
    {
        auto srcs_valid = [&](unsigned n) {
            for (unsigned s = 0; s < n; ++s)
                if (!I.srcRegs[s].valid())
                    return false;
            return true;
        };

        switch (I.opc) {
          case Opcode::Ld:
          case Opcode::St:
          case Opcode::AtomicAdd:
            return &memH;
          case Opcode::Br: return &brH;
          case Opcode::CBr: return &cbrH;
          case Opcode::Barrier: return &barrierH;
          case Opcode::Ret: return &retH;
          case Opcode::Nop: return &nopH;
          case Opcode::MovImm:
            return (typeRegs(I.dtype) == 1 && I.dstReg.valid())
                       ? &movImmH : &aluGenericH;
          case Opcode::Cmp: {
            if (typeRegs(I.dtype) == 1 && I.dstReg.valid() &&
                srcs_valid(2)) {
                arch::ExecHandler h = nullptr;
                switch (I.dtype) {
                  case DataType::B32:
                    h = pickCmpDt<DataType::B32>(I.cmpop); break;
                  case DataType::U32:
                    h = pickCmpDt<DataType::U32>(I.cmpop); break;
                  case DataType::S32:
                    h = pickCmpDt<DataType::S32>(I.cmpop); break;
                  case DataType::F32:
                    h = pickCmpDt<DataType::F32>(I.cmpop); break;
                  default: break;
                }
                if (h)
                    return h;
            }
            return &aluGenericH;
          }
          default: {
            // The templated kernels assume every register they touch
            // is present; anything irregular takes the generic path,
            // which handles missing operands like the reference does.
            if (typeRegs(I.dtype) == 1 && I.dstReg.valid() &&
                srcs_valid(aluArity(I.opc))) {
                arch::ExecHandler h = nullptr;
                switch (I.dtype) {
                  case DataType::B32:
                    h = pickAluDt<DataType::B32>(I.opc); break;
                  case DataType::U32:
                    h = pickAluDt<DataType::U32>(I.opc); break;
                  case DataType::S32:
                    h = pickAluDt<DataType::S32>(I.opc); break;
                  case DataType::F32:
                    h = pickAluDt<DataType::F32>(I.opc); break;
                  default: break;
                }
                if (h)
                    return h;
            }
            return &aluGenericH;
          }
        }
    }
};

void
HsailInst::predecode(arch::ExecMeta &m) const
{
    m.handler = HsailExec::pick(*this);
}

} // namespace last::hsail
