/**
 * @file
 * The HSAIL-like intermediate language: opcodes, data types, segments.
 *
 * Deliberate abstraction properties (matching the paper's HSAIL):
 *  - SIMT: every instruction defines the behaviour of ONE work-item.
 *  - No scalar instructions, no exec mask, no waitcnt.
 *  - Register-allocated flat vector register space (up to 2,048/WF).
 *  - Segment-qualified memory ops with implicit base addresses.
 *  - One-instruction `div`, `workitemabsid`, etc.
 */

#ifndef LAST_HSAIL_OPCODES_HH
#define LAST_HSAIL_OPCODES_HH

#include <cstdint>

namespace last::hsail
{

enum class Opcode : uint8_t
{
    // Arithmetic (vector ALU).
    Add, Sub, Mul, MulHi, Mad, Div, Rem, Min, Max, Abs, Neg, Fma, Sqrt,
    // Bitwise / shifts.
    And, Or, Xor, Not, Shl, Shr, AShr, Bfe,
    // Compare / select.
    Cmp,   ///< dst = (src0 OP src1) ? 1 : 0
    CMov,  ///< dst = src0 ? src1 : src2
    // Moves and conversion.
    Mov, MovImm, Cvt,
    // Memory.
    Ld, St, AtomicAdd,
    // Control flow.
    Br, CBr, Barrier, Ret,
    // Dispatch intrinsics (single-instruction ABI of the IL).
    WorkItemAbsId, WorkItemId, WorkGroupId, WorkGroupSize, GridSize,
    // Misc.
    Nop,
};

enum class DataType : uint8_t
{
    B32, ///< untyped 32-bit
    U32,
    S32,
    F32,
    U64, ///< pair of 32-bit registers
    F64, ///< pair of 32-bit registers
};

enum class Segment : uint8_t
{
    Global,
    Readonly,
    Kernarg,
    Group,   ///< LDS
    Private,
    Spill,
    Arg,
};

enum class CmpOp : uint8_t
{
    Eq, Ne, Lt, Le, Gt, Ge,
};

const char *opcodeName(Opcode op);
const char *typeName(DataType t);
const char *segmentName(Segment s);
const char *cmpOpName(CmpOp c);

/** Registers a value of this type occupies (1 or 2). */
constexpr unsigned
typeRegs(DataType t)
{
    return (t == DataType::U64 || t == DataType::F64) ? 2 : 1;
}

/** Bytes a memory access of this type moves per work-item. */
constexpr unsigned
typeBytes(DataType t)
{
    return typeRegs(t) * 4;
}

} // namespace last::hsail

#endif // LAST_HSAIL_OPCODES_HH
