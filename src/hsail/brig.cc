#include "hsail/brig.hh"

#include <cstring>

#include "common/logging.hh"
#include "hsail/inst.hh"
#include "hsail/ipdom.hh"

namespace last::hsail
{

namespace
{

/** On-disk record layout (verbose on purpose; see header). */
struct BrigRecord
{
    uint8_t opcode;
    uint8_t dtype;
    uint8_t srcDtype;
    uint8_t segment;
    uint8_t cmpOp;
    uint8_t pad0[3];
    uint16_t dst;
    uint16_t src[3];
    uint64_t imm;
    uint64_t target;
    uint8_t pad1[32];
};
static_assert(sizeof(BrigRecord) == BrigRecordBytes,
              "BRIG record must stay verbose and fixed-size");

struct BrigHeader
{
    char magic[8];
    uint64_t numInsts;
    uint32_t vregsUsed;
    uint32_t sregsUsed;
    uint64_t privateBytesPerWi;
    uint64_t spillBytesPerWi;
    uint64_t ldsBytesPerWg;
    uint64_t kernargBytes;
    uint64_t nameLen;
};

constexpr char BrigMagic[8] = {'L', 'A', 'S', 'T', 'B', 'R', 'G', '1'};

} // namespace

BrigBlob
encodeBrig(const arch::KernelCode &code)
{
    panic_if(code.isa() != IsaKind::HSAIL, "can only encode HSAIL kernels");
    panic_if(!code.sealed(), "encode requires a sealed kernel");

    BrigHeader hdr{};
    std::memcpy(hdr.magic, BrigMagic, 8);
    hdr.numInsts = code.numInsts();
    hdr.vregsUsed = code.vregsUsed;
    hdr.sregsUsed = code.sregsUsed;
    hdr.privateBytesPerWi = code.privateBytesPerWi;
    hdr.spillBytesPerWi = code.spillBytesPerWi;
    hdr.ldsBytesPerWg = code.ldsBytesPerWg;
    hdr.kernargBytes = code.kernargBytes;
    hdr.nameLen = code.name().size();

    BrigBlob blob(sizeof(BrigHeader) + hdr.nameLen +
                  code.numInsts() * BrigRecordBytes);
    std::memcpy(blob.data(), &hdr, sizeof(hdr));
    std::memcpy(blob.data() + sizeof(hdr), code.name().data(),
                hdr.nameLen);

    size_t off = sizeof(hdr) + hdr.nameLen;
    for (size_t i = 0; i < code.numInsts(); ++i, off += BrigRecordBytes) {
        const auto &inst = static_cast<const HsailInst &>(code.inst(i));
        BrigRecord rec{};
        rec.opcode = uint8_t(inst.op());
        rec.dtype = uint8_t(inst.type());
        rec.srcDtype = uint8_t(inst.srcType());
        rec.segment = uint8_t(inst.segment());
        rec.cmpOp = uint8_t(inst.cmpOp());
        rec.dst = inst.dst().idx;
        for (unsigned s = 0; s < 3; ++s)
            rec.src[s] = inst.src(s).idx;
        rec.imm = inst.immBits();
        rec.target = inst.targetIndex();
        std::memcpy(blob.data() + off, &rec, sizeof(rec));
    }
    return blob;
}

std::unique_ptr<arch::KernelCode>
decodeBrig(const BrigBlob &blob)
{
    fatal_if(blob.size() < sizeof(BrigHeader), "truncated BRIG blob");
    BrigHeader hdr;
    std::memcpy(&hdr, blob.data(), sizeof(hdr));
    fatal_if(std::memcmp(hdr.magic, BrigMagic, 8) != 0,
             "bad BRIG magic");
    fatal_if(blob.size() != sizeof(hdr) + hdr.nameLen +
                                hdr.numInsts * BrigRecordBytes,
             "BRIG blob size mismatch");

    std::string name(
        reinterpret_cast<const char *>(blob.data() + sizeof(hdr)),
        hdr.nameLen);
    auto code = std::make_unique<arch::KernelCode>(IsaKind::HSAIL, name);
    code->vregsUsed = hdr.vregsUsed;
    code->sregsUsed = hdr.sregsUsed;
    code->privateBytesPerWi = hdr.privateBytesPerWi;
    code->spillBytesPerWi = hdr.spillBytesPerWi;
    code->ldsBytesPerWg = hdr.ldsBytesPerWg;
    code->kernargBytes = hdr.kernargBytes;

    size_t off = sizeof(hdr) + hdr.nameLen;
    for (uint64_t i = 0; i < hdr.numInsts; ++i, off += BrigRecordBytes) {
        BrigRecord rec;
        std::memcpy(&rec, blob.data() + off, sizeof(rec));
        auto op = Opcode(rec.opcode);
        auto t = DataType(rec.dtype);
        Reg dst{rec.dst};
        Reg s0{rec.src[0]}, s1{rec.src[1]}, s2{rec.src[2]};

        HsailInst *inst = nullptr;
        switch (op) {
          case Opcode::Cmp:
            inst = HsailInst::cmp(CmpOp(rec.cmpOp), t, dst, s0, s1);
            break;
          case Opcode::CMov:
            inst = HsailInst::cmov(t, dst, s0, s1, s2);
            break;
          case Opcode::Mov:
            inst = HsailInst::mov(t, dst, s0);
            break;
          case Opcode::MovImm:
            inst = HsailInst::movImm(t, dst, rec.imm);
            break;
          case Opcode::Cvt:
            inst = HsailInst::cvt(t, DataType(rec.srcDtype), dst, s0);
            break;
          case Opcode::Ld:
            inst = HsailInst::ld(Segment(rec.segment), t, dst, s0,
                                 int64_t(rec.imm));
            break;
          case Opcode::St:
            inst = HsailInst::st(Segment(rec.segment), t, s1, s0,
                                 int64_t(rec.imm));
            break;
          case Opcode::AtomicAdd:
            inst = HsailInst::atomicAdd(t, dst, s0, int64_t(rec.imm), s1);
            break;
          case Opcode::Br:
            inst = HsailInst::br(rec.target);
            break;
          case Opcode::CBr:
            inst = rec.imm ? HsailInst::cbrz(s0, rec.target)
                           : HsailInst::cbr(s0, rec.target);
            break;
          case Opcode::Barrier:
            inst = HsailInst::barrier();
            break;
          case Opcode::Ret:
            inst = HsailInst::ret();
            break;
          case Opcode::Nop:
            inst = HsailInst::nop();
            break;
          case Opcode::WorkItemAbsId:
          case Opcode::WorkItemId:
          case Opcode::WorkGroupId:
          case Opcode::WorkGroupSize:
          case Opcode::GridSize:
            inst = HsailInst::special(op, dst);
            break;
          default:
            inst = HsailInst::alu(op, t, dst, s0, s1, s2);
            break;
        }
        code->append(std::unique_ptr<arch::Instruction>(inst));
    }
    code->seal();
    annotateReconvergence(*code);
    code->execMetas(); // predecode with the artifact, not at first run
    return code;
}

} // namespace last::hsail
