#include "hsail/ipdom.hh"

#include <algorithm>
#include <map>
#include <set>

#include "common/logging.hh"
#include "hsail/inst.hh"

namespace last::hsail
{

std::vector<BasicBlock>
buildCfg(const arch::KernelCode &code)
{
    size_t n = code.numInsts();
    std::set<size_t> leaders;
    leaders.insert(0);
    for (size_t i = 0; i < n; ++i) {
        const auto &inst = static_cast<const HsailInst &>(code.inst(i));
        if (inst.is(arch::IsBranch)) {
            leaders.insert(inst.targetIndex());
            if (i + 1 < n)
                leaders.insert(i + 1);
        } else if (inst.is(arch::IsEndPgm) && i + 1 < n) {
            leaders.insert(i + 1);
        }
    }

    std::vector<BasicBlock> blocks;
    std::map<size_t, size_t> blockOfLeader;
    for (auto it = leaders.begin(); it != leaders.end(); ++it) {
        auto next = std::next(it);
        size_t first = *it;
        size_t last = (next == leaders.end() ? n : *next) - 1;
        blockOfLeader[first] = blocks.size();
        blocks.push_back({first, last, {}});
    }

    for (auto &bb : blocks) {
        const auto &inst =
            static_cast<const HsailInst &>(code.inst(bb.last));
        if (inst.is(arch::IsEndPgm))
            continue;
        if (inst.is(arch::IsBranch)) {
            bb.succs.push_back(blockOfLeader.at(inst.targetIndex()));
            if (inst.op() == Opcode::CBr && bb.last + 1 < n) {
                size_t ft = blockOfLeader.at(bb.last + 1);
                if (ft != bb.succs[0])
                    bb.succs.push_back(ft);
            }
        } else if (bb.last + 1 < n) {
            bb.succs.push_back(blockOfLeader.at(bb.last + 1));
        }
    }
    return blocks;
}

std::vector<size_t>
postDominators(const std::vector<BasicBlock> &blocks)
{
    size_t n = blocks.size();
    const size_t Exit = n; // virtual exit node

    // preds on the reverse CFG = successors on the forward CFG; build
    // forward-successor sets including the virtual exit.
    std::vector<std::vector<size_t>> succs(n);
    for (size_t b = 0; b < n; ++b) {
        if (blocks[b].succs.empty())
            succs[b].push_back(Exit);
        else
            succs[b] = blocks[b].succs;
    }

    // Iterative set-based post-dominator computation (kernels are tiny,
    // so O(n^2) sets are fine and simple to verify).
    std::vector<std::set<size_t>> pdom(n + 1);
    std::set<size_t> all;
    for (size_t b = 0; b <= n; ++b)
        all.insert(b);
    for (size_t b = 0; b < n; ++b)
        pdom[b] = all;
    pdom[Exit] = {Exit};

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t b = n; b-- > 0;) {
            std::set<size_t> meet = all;
            for (size_t s : succs[b]) {
                std::set<size_t> tmp;
                std::set_intersection(meet.begin(), meet.end(),
                                      pdom[s].begin(), pdom[s].end(),
                                      std::inserter(tmp, tmp.begin()));
                meet = std::move(tmp);
            }
            meet.insert(b);
            if (meet != pdom[b]) {
                pdom[b] = std::move(meet);
                changed = true;
            }
        }
    }

    // Immediate post-dominator: the strict post-dominator that is
    // post-dominated by every other strict post-dominator, i.e., the
    // one whose pdom set has size |pdom[b]| - 1.
    std::vector<size_t> ipdom(n, SIZE_MAX);
    for (size_t b = 0; b < n; ++b) {
        size_t want = pdom[b].size() - 1;
        for (size_t d : pdom[b]) {
            if (d == b)
                continue;
            if (pdom[d].size() == want) {
                ipdom[b] = d;
                break;
            }
        }
    }
    return ipdom;
}

void
annotateReconvergence(arch::KernelCode &code)
{
    panic_if(code.isa() != IsaKind::HSAIL,
             "ipdom analysis is for HSAIL kernels");
    auto blocks = buildCfg(code);
    auto ipdom = postDominators(blocks);

    std::map<size_t, size_t> blockOfFirst;
    for (size_t b = 0; b < blocks.size(); ++b)
        blockOfFirst[blocks[b].first] = b;

    for (size_t b = 0; b < blocks.size(); ++b) {
        auto &inst = const_cast<HsailInst &>(
            static_cast<const HsailInst &>(code.inst(blocks[b].last)));
        if (inst.op() != Opcode::CBr)
            continue;
        size_t r = ipdom[b];
        panic_if(r == SIZE_MAX,
                 "conditional branch at inst %zu has no post-dominator "
                 "(irreducible control flow is not supported by the RS)",
                 blocks[b].last);
        // Reconvergence at the virtual exit means "paths only rejoin at
        // the end of the kernel": point the RS at the ret instruction.
        Addr rpc = (r == blocks.size())
            ? code.offsetOf(code.numInsts() - 1)
            : code.offsetOf(blocks[r].first);
        inst.setRpcOffset(rpc);
    }
}

} // namespace last::hsail
