/**
 * @file
 * A BRIG-like binary container for HSAIL kernels.
 *
 * Mirrors the property the paper highlights: the stored form is a
 * verbose, fixed-record data structure designed for easy consumption
 * by finalizer software (64 bytes per instruction here), NOT a
 * hardware-fetchable encoding. Loading a module decodes every record
 * into instruction objects up front; the executable pseudo-encoding
 * seen by the fetch model is the separate fixed 8-byte form.
 */

#ifndef LAST_HSAIL_BRIG_HH
#define LAST_HSAIL_BRIG_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/kernel_code.hh"

namespace last::hsail
{

/** Serialized module bytes. */
using BrigBlob = std::vector<uint8_t>;

/** Record size per instruction in the container. */
constexpr size_t BrigRecordBytes = 64;

/** Serialize a sealed HSAIL kernel into a BRIG-like blob. */
BrigBlob encodeBrig(const arch::KernelCode &code);

/** Decode a blob back into a sealed, ipdom-annotated kernel. */
std::unique_ptr<arch::KernelCode> decodeBrig(const BrigBlob &blob);

} // namespace last::hsail

#endif // LAST_HSAIL_BRIG_HH
