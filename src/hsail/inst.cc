#include "hsail/inst.hh"

#include <bit>
#include <cmath>
#include <sstream>

#include "arch/kernel_code.hh"
#include "common/logging.hh"

namespace last::hsail
{

namespace
{

float asF32(uint32_t b) { return std::bit_cast<float>(b); }
uint32_t fromF32(float f) { return std::bit_cast<uint32_t>(f); }
double asF64(uint64_t b) { return std::bit_cast<double>(b); }
uint64_t fromF64(double d) { return std::bit_cast<uint64_t>(d); }

} // namespace

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::MulHi: return "mulhi";
      case Opcode::Mad: return "mad";
      case Opcode::Div: return "div";
      case Opcode::Rem: return "rem";
      case Opcode::Min: return "min";
      case Opcode::Max: return "max";
      case Opcode::Abs: return "abs";
      case Opcode::Neg: return "neg";
      case Opcode::Fma: return "fma";
      case Opcode::Sqrt: return "sqrt";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Not: return "not";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::AShr: return "ashr";
      case Opcode::Bfe: return "bitextract";
      case Opcode::Cmp: return "cmp";
      case Opcode::CMov: return "cmov";
      case Opcode::Mov: return "mov";
      case Opcode::MovImm: return "movimm";
      case Opcode::Cvt: return "cvt";
      case Opcode::Ld: return "ld";
      case Opcode::St: return "st";
      case Opcode::AtomicAdd: return "atomic_add";
      case Opcode::Br: return "br";
      case Opcode::CBr: return "cbr";
      case Opcode::Barrier: return "barrier";
      case Opcode::Ret: return "ret";
      case Opcode::WorkItemAbsId: return "workitemabsid";
      case Opcode::WorkItemId: return "workitemid";
      case Opcode::WorkGroupId: return "workgroupid";
      case Opcode::WorkGroupSize: return "workgroupsize";
      case Opcode::GridSize: return "gridsize";
      case Opcode::Nop: return "nop";
    }
    return "?";
}

const char *
typeName(DataType t)
{
    switch (t) {
      case DataType::B32: return "b32";
      case DataType::U32: return "u32";
      case DataType::S32: return "s32";
      case DataType::F32: return "f32";
      case DataType::U64: return "u64";
      case DataType::F64: return "f64";
    }
    return "?";
}

const char *
segmentName(Segment s)
{
    switch (s) {
      case Segment::Global: return "global";
      case Segment::Readonly: return "readonly";
      case Segment::Kernarg: return "kernarg";
      case Segment::Group: return "group";
      case Segment::Private: return "private";
      case Segment::Spill: return "spill";
      case Segment::Arg: return "arg";
    }
    return "?";
}

const char *
cmpOpName(CmpOp c)
{
    switch (c) {
      case CmpOp::Eq: return "eq";
      case CmpOp::Ne: return "ne";
      case CmpOp::Lt: return "lt";
      case CmpOp::Le: return "le";
      case CmpOp::Gt: return "gt";
      case CmpOp::Ge: return "ge";
    }
    return "?";
}

HsailInst::HsailInst(Opcode op, DataType type)
    : opc(op), dtype(type)
{
}

HsailInst *
HsailInst::alu(Opcode op, DataType t, Reg dst, Reg src0, Reg src1, Reg src2)
{
    auto *i = new HsailInst(op, t);
    i->dstReg = dst;
    i->srcRegs[0] = src0;
    i->srcRegs[1] = src1;
    i->srcRegs[2] = src2;
    if (t == DataType::F64 || t == DataType::U64)
        i->setFlags(arch::IsF64);
    if (op == Opcode::Div || op == Opcode::Sqrt || op == Opcode::Rem)
        i->setFlags(arch::IsTrans);
    i->finalizeOperands();
    return i;
}

HsailInst *
HsailInst::cmp(CmpOp c, DataType t, Reg dst, Reg src0, Reg src1)
{
    auto *i = new HsailInst(Opcode::Cmp, t);
    i->cmpop = c;
    i->dstReg = dst;
    i->srcRegs[0] = src0;
    i->srcRegs[1] = src1;
    i->finalizeOperands();
    return i;
}

HsailInst *
HsailInst::cmov(DataType t, Reg dst, Reg cond, Reg tval, Reg fval)
{
    auto *i = new HsailInst(Opcode::CMov, t);
    i->dstReg = dst;
    i->srcRegs[0] = cond;
    i->srcRegs[1] = tval;
    i->srcRegs[2] = fval;
    i->setFlags(arch::IsCondMove);
    i->finalizeOperands();
    return i;
}

HsailInst *
HsailInst::mov(DataType t, Reg dst, Reg src)
{
    auto *i = new HsailInst(Opcode::Mov, t);
    i->dstReg = dst;
    i->srcRegs[0] = src;
    i->finalizeOperands();
    return i;
}

HsailInst *
HsailInst::movImm(DataType t, Reg dst, uint64_t bits)
{
    auto *i = new HsailInst(Opcode::MovImm, t);
    i->dstReg = dst;
    i->imm = bits;
    i->finalizeOperands();
    return i;
}

HsailInst *
HsailInst::cvt(DataType dst_t, DataType src_t, Reg dst, Reg src)
{
    auto *i = new HsailInst(Opcode::Cvt, dst_t);
    i->srcDtype = src_t;
    i->dstReg = dst;
    i->srcRegs[0] = src;
    i->finalizeOperands();
    return i;
}

HsailInst *
HsailInst::ld(Segment seg, DataType t, Reg dst, Reg addr, int64_t offset)
{
    auto *i = new HsailInst(Opcode::Ld, t);
    i->seg = seg;
    i->dstReg = dst;
    i->srcRegs[0] = addr;
    i->imm = uint64_t(offset);
    i->setFlags(arch::IsMemory | arch::IsLoad);
    i->finalizeOperands();
    return i;
}

HsailInst *
HsailInst::st(Segment seg, DataType t, Reg val, Reg addr, int64_t offset)
{
    auto *i = new HsailInst(Opcode::St, t);
    i->seg = seg;
    i->srcRegs[0] = addr;
    i->srcRegs[1] = val;
    i->imm = uint64_t(offset);
    i->setFlags(arch::IsMemory | arch::IsStore);
    i->finalizeOperands();
    return i;
}

HsailInst *
HsailInst::atomicAdd(DataType t, Reg dst, Reg addr, int64_t offset, Reg val)
{
    auto *i = new HsailInst(Opcode::AtomicAdd, t);
    i->seg = Segment::Global;
    i->dstReg = dst;
    i->srcRegs[0] = addr;
    i->srcRegs[1] = val;
    i->imm = uint64_t(offset);
    i->setFlags(arch::IsMemory | arch::IsLoad | arch::IsStore |
                arch::IsAtomic);
    i->finalizeOperands();
    return i;
}

HsailInst *
HsailInst::br(size_t target_index)
{
    auto *i = new HsailInst(Opcode::Br, DataType::B32);
    i->targetIdx = target_index;
    i->setFlags(arch::IsBranch);
    i->finalizeOperands();
    return i;
}

HsailInst *
HsailInst::cbr(Reg cond, size_t target_index)
{
    auto *i = new HsailInst(Opcode::CBr, DataType::B32);
    i->srcRegs[0] = cond;
    i->targetIdx = target_index;
    i->setFlags(arch::IsBranch);
    i->finalizeOperands();
    return i;
}

HsailInst *
HsailInst::cbrz(Reg cond, size_t target_index)
{
    auto *i = cbr(cond, target_index);
    i->imm = 1;
    return i;
}

HsailInst *
HsailInst::barrier()
{
    auto *i = new HsailInst(Opcode::Barrier, DataType::B32);
    i->setFlags(arch::IsBarrier);
    return i;
}

HsailInst *
HsailInst::ret()
{
    auto *i = new HsailInst(Opcode::Ret, DataType::B32);
    i->setFlags(arch::IsEndPgm);
    return i;
}

HsailInst *
HsailInst::special(Opcode op, Reg dst)
{
    auto *i = new HsailInst(op, DataType::U32);
    i->dstReg = dst;
    i->finalizeOperands();
    return i;
}

HsailInst *
HsailInst::nop()
{
    auto *i = new HsailInst(Opcode::Nop, DataType::B32);
    i->setFlags(arch::IsNop);
    return i;
}

void
HsailInst::clearOperands()
{
    clearOps();
}

void
HsailInst::remapRegs(const std::vector<uint16_t> &remap)
{
    auto fix = [&](Reg &r) {
        if (r.valid())
            r.idx = remap[r.idx];
    };
    fix(dstReg);
    for (auto &s : srcRegs)
        fix(s);
    clearOperands();
    finalizeOperands();
}

void
HsailInst::finalizeOperands()
{
    using arch::RegClass;
    unsigned dw = unsigned(typeRegs(dtype));
    unsigned sw = dw;
    // Source width differs from dest width for conversions and
    // compares/selects.
    if (opc == Opcode::Cvt)
        sw = typeRegs(srcDtype);

    if (dstReg.valid()) {
        unsigned w = (opc == Opcode::Cmp) ? 1 : dw;
        addOp(RegClass::Vector, dstReg.idx, uint8_t(w), true);
    }
    for (unsigned s = 0; s < 3; ++s) {
        if (!srcRegs[s].valid())
            continue;
        unsigned w = sw;
        if (opc == Opcode::CMov && s == 0)
            w = 1; // condition register
        if (opc == Opcode::CBr)
            w = 1;
        if ((opc == Opcode::Ld || opc == Opcode::St ||
             opc == Opcode::AtomicAdd) && s == 0) {
            // Address operand: 64-bit for flat/global addressing,
            // 32-bit segment-relative offset otherwise.
            w = (seg == Segment::Global || seg == Segment::Readonly) ? 2
                                                                     : 1;
        }
        if (opc == Opcode::St && s == 1)
            w = dw; // stored value
        addOp(RegClass::Vector, srcRegs[s].idx, uint8_t(w), false);
    }
}

arch::FuType
HsailInst::fuType() const
{
    switch (opc) {
      case Opcode::Ld:
      case Opcode::St:
      case Opcode::AtomicAdd:
        return seg == Segment::Group ? arch::FuType::Lds
                                     : arch::FuType::VMem;
      case Opcode::Br:
      case Opcode::CBr:
        return arch::FuType::Branch;
      case Opcode::Barrier:
      case Opcode::Ret:
      case Opcode::Nop:
        return arch::FuType::Special;
      default:
        return arch::FuType::VAlu;
    }
}

uint64_t
HsailInst::laneAlu(const arch::WfState &wf, unsigned lane) const
{
    auto rd32 = [&](Reg r) { return wf.readVreg(r.idx, lane); };
    auto rd = [&](Reg r, DataType t) -> uint64_t {
        return typeRegs(t) == 2 ? wf.readVreg64(r.idx, lane)
                                : uint64_t(wf.readVreg(r.idx, lane));
    };
    DataType t = dtype;
    uint64_t a = srcRegs[0].valid() ? rd(srcRegs[0], t) : 0;
    uint64_t b = srcRegs[1].valid() ? rd(srcRegs[1], t) : 0;
    uint64_t c = srcRegs[2].valid() ? rd(srcRegs[2], t) : 0;

    switch (opc) {
      case Opcode::Add:
        switch (t) {
          case DataType::F32: return fromF32(asF32(a) + asF32(b));
          case DataType::F64: return fromF64(asF64(a) + asF64(b));
          default: return (t == DataType::U64) ? a + b
                       : uint64_t(uint32_t(a) + uint32_t(b));
        }
      case Opcode::Sub:
        switch (t) {
          case DataType::F32: return fromF32(asF32(a) - asF32(b));
          case DataType::F64: return fromF64(asF64(a) - asF64(b));
          default: return (t == DataType::U64) ? a - b
                       : uint64_t(uint32_t(a) - uint32_t(b));
        }
      case Opcode::Mul:
        switch (t) {
          case DataType::F32: return fromF32(asF32(a) * asF32(b));
          case DataType::F64: return fromF64(asF64(a) * asF64(b));
          default: return (t == DataType::U64) ? a * b
                       : uint64_t(uint32_t(a) * uint32_t(b));
        }
      case Opcode::MulHi:
        return uint64_t(uint32_t((uint64_t(uint32_t(a)) *
                                  uint64_t(uint32_t(b))) >> 32));
      case Opcode::Mad:
        switch (t) {
          case DataType::F32:
            return fromF32(asF32(a) * asF32(b) + asF32(c));
          case DataType::F64:
            return fromF64(asF64(a) * asF64(b) + asF64(c));
          default:
            return uint64_t(uint32_t(a) * uint32_t(b) + uint32_t(c));
        }
      case Opcode::Fma:
        switch (t) {
          case DataType::F32:
            return fromF32(std::fma(asF32(a), asF32(b), asF32(c)));
          case DataType::F64:
            return fromF64(std::fma(asF64(a), asF64(b), asF64(c)));
          default:
            return uint64_t(uint32_t(a) * uint32_t(b) + uint32_t(c));
        }
      case Opcode::Div:
        switch (t) {
          case DataType::F32: return fromF32(asF32(a) / asF32(b));
          case DataType::F64: return fromF64(asF64(a) / asF64(b));
          case DataType::S32:
            return int32_t(b) == 0
                ? 0 : uint64_t(uint32_t(int32_t(a) / int32_t(b)));
          default:
            return uint32_t(b) == 0
                ? 0 : uint64_t(uint32_t(a) / uint32_t(b));
        }
      case Opcode::Rem:
        switch (t) {
          case DataType::S32:
            return int32_t(b) == 0
                ? 0 : uint64_t(uint32_t(int32_t(a) % int32_t(b)));
          default:
            return uint32_t(b) == 0
                ? 0 : uint64_t(uint32_t(a) % uint32_t(b));
        }
      case Opcode::Min:
        switch (t) {
          case DataType::F32:
            return fromF32(std::fmin(asF32(a), asF32(b)));
          case DataType::F64:
            return fromF64(std::fmin(asF64(a), asF64(b)));
          case DataType::S32:
            return uint64_t(uint32_t(std::min(int32_t(a), int32_t(b))));
          default:
            return std::min(uint32_t(a), uint32_t(b));
        }
      case Opcode::Max:
        switch (t) {
          case DataType::F32:
            return fromF32(std::fmax(asF32(a), asF32(b)));
          case DataType::F64:
            return fromF64(std::fmax(asF64(a), asF64(b)));
          case DataType::S32:
            return uint64_t(uint32_t(std::max(int32_t(a), int32_t(b))));
          default:
            return std::max(uint32_t(a), uint32_t(b));
        }
      case Opcode::Abs:
        switch (t) {
          case DataType::F32: return fromF32(std::fabs(asF32(a)));
          case DataType::F64: return fromF64(std::fabs(asF64(a)));
          default:
            return uint64_t(uint32_t(std::abs(int32_t(a))));
        }
      case Opcode::Neg:
        switch (t) {
          case DataType::F32: return fromF32(-asF32(a));
          case DataType::F64: return fromF64(-asF64(a));
          default: return uint64_t(uint32_t(-int32_t(a)));
        }
      case Opcode::Sqrt:
        return t == DataType::F64 ? fromF64(std::sqrt(asF64(a)))
                                  : fromF32(std::sqrt(asF32(a)));
      case Opcode::And: return a & b;
      case Opcode::Or: return a | b;
      case Opcode::Xor: return a ^ b;
      case Opcode::Not: return t == DataType::U64 ? ~a : uint64_t(~uint32_t(a));
      case Opcode::Shl:
        return t == DataType::U64 ? a << (b & 63)
                                  : uint64_t(uint32_t(a) << (b & 31));
      case Opcode::Shr:
        return t == DataType::U64 ? a >> (b & 63)
                                  : uint64_t(uint32_t(a) >> (b & 31));
      case Opcode::AShr:
        return uint64_t(uint32_t(int32_t(a) >> (b & 31)));
      case Opcode::Bfe: {
        unsigned off = unsigned(b) & 31;
        unsigned width = unsigned(c) & 31;
        uint32_t mask = width == 0 ? 0xffffffffu : ((1u << width) - 1);
        return (uint32_t(a) >> off) & mask;
      }
      case Opcode::Cmp: {
        bool r = false;
        auto docmp = [&](auto x, auto y) {
            switch (cmpop) {
              case CmpOp::Eq: return x == y;
              case CmpOp::Ne: return x != y;
              case CmpOp::Lt: return x < y;
              case CmpOp::Le: return x <= y;
              case CmpOp::Gt: return x > y;
              case CmpOp::Ge: return x >= y;
            }
            return false;
        };
        switch (t) {
          case DataType::F32: r = docmp(asF32(a), asF32(b)); break;
          case DataType::F64: r = docmp(asF64(a), asF64(b)); break;
          case DataType::S32: r = docmp(int32_t(a), int32_t(b)); break;
          default: r = docmp(uint64_t(a), uint64_t(b)); break;
        }
        return r ? 1 : 0;
      }
      case Opcode::CMov:
        return rd32(srcRegs[0]) ? b : c;
      case Opcode::Mov:
        return a;
      case Opcode::MovImm:
        return imm;
      case Opcode::Cvt: {
        uint64_t s = typeRegs(srcDtype) == 2
            ? wf.readVreg64(srcRegs[0].idx, lane)
            : uint64_t(wf.readVreg(srcRegs[0].idx, lane));
        double v;
        switch (srcDtype) {
          case DataType::F32: v = asF32(uint32_t(s)); break;
          case DataType::F64: v = asF64(s); break;
          case DataType::S32: v = double(int32_t(s)); break;
          default: v = double(s); break;
        }
        switch (dtype) {
          case DataType::F32: return fromF32(float(v));
          case DataType::F64: return fromF64(v);
          case DataType::S32: return uint64_t(uint32_t(int32_t(v)));
          case DataType::U64: return uint64_t(v);
          default: return uint64_t(uint32_t(v));
        }
      }
      case Opcode::WorkItemAbsId:
        return wf.globalId(lane);
      case Opcode::WorkItemId:
        return wf.wfIdInWg * WavefrontSize + lane;
      case Opcode::WorkGroupId:
        return wf.wgId;
      case Opcode::WorkGroupSize:
        return wf.wgSize;
      case Opcode::GridSize:
        return wf.gridSize;
      default:
        panic("laneAlu on non-ALU opcode %s", opcodeName(opc));
    }
}

void
HsailInst::executeAlu(arch::WfState &wf) const
{
    uint64_t mask = wf.activeMask();
    unsigned dst_regs = (opc == Opcode::Cmp) ? 1 : typeRegs(dtype);
    for (unsigned lane = 0; lane < WavefrontSize; ++lane) {
        if (!(mask & (1ull << lane)))
            continue;
        uint64_t r = laneAlu(wf, lane);
        if (!dstReg.valid())
            continue;
        if (dst_regs == 2)
            wf.writeVreg64(dstReg.idx, lane, r);
        else
            wf.writeVreg(dstReg.idx, lane, uint32_t(r));
    }
}

void
HsailInst::executeMem(arch::WfState &wf) const
{
    using arch::MemAccess;
    uint64_t mask = wf.activeMask();
    unsigned bytes = typeBytes(dtype);
    MemAccess acc;
    acc.bytesPerLane = bytes;
    acc.mask = mask;

    if (seg == Segment::Kernarg || seg == Segment::Arg) {
        // The IL has no ABI: the simulator supplies the kernarg base
        // itself and services the access from functional state.
        Addr addr = wf.kernargBase + uint64_t(imm);
        uint64_t val = 0;
        wf.memory->read(addr, &val, bytes);
        for (unsigned lane = 0; lane < WavefrontSize; ++lane) {
            if (!(mask & (1ull << lane)))
                continue;
            if (bytes == 8)
                wf.writeVreg64(dstReg.idx, lane, val);
            else
                wf.writeVreg(dstReg.idx, lane, uint32_t(val));
        }
        acc.kind = MemAccess::Kind::KernargDirect;
        acc.scalarAddr = addr;
        acc.scalarBytes = bytes;
        wf.pendingAccess = acc;
        return;
    }

    if (seg == Segment::Group) {
        // LDS: zero-based offsets within the workgroup's block.
        acc.kind = (opc == Opcode::St) ? MemAccess::Kind::LdsStore
                                       : MemAccess::Kind::LdsLoad;
        for (unsigned lane = 0; lane < WavefrontSize; ++lane) {
            if (!(mask & (1ull << lane)))
                continue;
            Addr off = uint64_t(imm);
            if (srcRegs[0].valid())
                off += wf.readVreg(srcRegs[0].idx, lane);
            acc.laneAddrs[lane] = off;
            if (opc == Opcode::St) {
                wf.lds->write32(off, wf.readVreg(srcRegs[1].idx, lane));
                if (bytes == 8)
                    wf.lds->write32(off + 4,
                                    wf.readVreg(srcRegs[1].idx + 1, lane));
            } else {
                wf.writeVreg(dstReg.idx, lane, wf.lds->read32(off));
                if (bytes == 8)
                    wf.writeVreg(dstReg.idx + 1, lane,
                                 wf.lds->read32(off + 4));
            }
        }
        wf.pendingAccess = acc;
        return;
    }

    // Global / readonly / private / spill all reach main memory; the
    // private and spill segments use simulator-held base addresses and
    // per-work-item strides (no visible address arithmetic — the exact
    // abstraction the paper calls out).
    acc.kind = (opc == Opcode::St) ? MemAccess::Kind::VectorStore
                                   : MemAccess::Kind::VectorLoad;
    for (unsigned lane = 0; lane < WavefrontSize; ++lane) {
        if (!(mask & (1ull << lane)))
            continue;
        Addr addr;
        switch (seg) {
          case Segment::Global:
          case Segment::Readonly:
            addr = wf.readVreg64(srcRegs[0].idx, lane) + uint64_t(imm);
            break;
          case Segment::Private:
            addr = wf.privateBase +
                   uint64_t(wf.globalId(lane)) * wf.privateStridePerWi +
                   (srcRegs[0].valid()
                        ? wf.readVreg(srcRegs[0].idx, lane) : 0) +
                   uint64_t(imm);
            break;
          case Segment::Spill:
            addr = wf.spillBase +
                   uint64_t(wf.globalId(lane)) * wf.spillStridePerWi +
                   (srcRegs[0].valid()
                        ? wf.readVreg(srcRegs[0].idx, lane) : 0) +
                   uint64_t(imm);
            break;
          default:
            panic("unhandled segment");
        }
        acc.laneAddrs[lane] = addr;

        if (opc == Opcode::St) {
            if (bytes == 8) {
                uint64_t v = wf.readVreg64(srcRegs[1].idx, lane);
                wf.memory->write(addr, &v, 8);
            } else {
                uint32_t v = wf.readVreg(srcRegs[1].idx, lane);
                wf.memory->write(addr, &v, 4);
            }
        } else if (opc == Opcode::AtomicAdd) {
            uint32_t old = wf.memory->read<uint32_t>(addr);
            uint32_t add = wf.readVreg(srcRegs[1].idx, lane);
            wf.memory->write<uint32_t>(addr, old + add);
            if (dstReg.valid())
                wf.writeVreg(dstReg.idx, lane, old);
        } else {
            if (bytes == 8) {
                uint64_t v = 0;
                wf.memory->read(addr, &v, 8);
                wf.writeVreg64(dstReg.idx, lane, v);
            } else {
                uint32_t v = 0;
                wf.memory->read(addr, &v, 4);
                wf.writeVreg(dstReg.idx, lane, v);
            }
        }
    }
    wf.pendingAccess = acc;
}

void
HsailInst::executeBranch(arch::WfState &wf) const
{
    Addr fallthrough = wf.pc + EncodedBytes;
    Addr target = targetOffset();

    if (opc == Opcode::Br) {
        wf.nextPc = target;
        return;
    }

    uint64_t active = wf.activeMask();
    bool if_zero = branchIfZero();
    uint64_t taken = 0;
    for (unsigned lane = 0; lane < WavefrontSize; ++lane) {
        if ((active & (1ull << lane)) &&
            (wf.readVreg(srcRegs[0].idx, lane) != 0) != if_zero) {
            taken |= 1ull << lane;
        }
    }
    uint64_t not_taken = active & ~taken;

    if (taken == 0) {
        wf.nextPc = fallthrough;
    } else if (not_taken == 0) {
        wf.nextPc = target;
    } else {
        // Divergence: the simulator manages it with the reconvergence
        // stack. The current top becomes the reconvergence entry and
        // waits at the immediate post-dominator; both paths are pushed
        // and execute serially.
        panic_if(rpcOff == InvalidAddr,
                 "divergent branch without ipdom analysis");
        wf.rs.back().pc = rpcOff;
        wf.rs.push_back({fallthrough, rpcOff, not_taken});
        wf.rs.push_back({target, rpcOff, taken});
        wf.nextPc = target;
    }
}

void
HsailInst::execute(arch::WfState &wf) const
{
    wf.nextPc = wf.pc + EncodedBytes;
    switch (opc) {
      case Opcode::Ld:
      case Opcode::St:
      case Opcode::AtomicAdd:
        executeMem(wf);
        return;
      case Opcode::Br:
      case Opcode::CBr:
        executeBranch(wf);
        return;
      case Opcode::Barrier:
        wf.atBarrier = true;
        return;
      case Opcode::Ret:
        wf.done = true;
        return;
      case Opcode::Nop:
        return;
      default:
        executeAlu(wf);
        return;
    }
}

std::string
HsailInst::disassemble() const
{
    std::ostringstream os;
    auto reg = [](Reg r, unsigned w) {
        std::ostringstream s;
        if (w == 2)
            s << "$v[" << r.idx << ":" << r.idx + 1 << "]";
        else
            s << "$v" << r.idx;
        return s.str();
    };
    unsigned w = typeRegs(dtype);

    switch (opc) {
      case Opcode::Ld:
      case Opcode::St:
      case Opcode::AtomicAdd: {
        os << opcodeName(opc) << "_" << segmentName(seg) << "_"
           << typeName(dtype) << " ";
        std::string val = opc == Opcode::St ? reg(srcRegs[1], w)
                                            : reg(dstReg, w);
        os << val << ", [";
        if (srcRegs[0].valid()) {
            unsigned aw = (seg == Segment::Global ||
                           seg == Segment::Readonly) ? 2 : 1;
            os << reg(srcRegs[0], aw);
            if (imm)
                os << "+" << int64_t(imm);
        } else {
            os << "%off+" << int64_t(imm);
        }
        os << "]";
        if (opc == Opcode::AtomicAdd)
            os << ", " << reg(srcRegs[1], w);
        return os.str();
      }
      case Opcode::Br:
        os << "br @" << targetIdx;
        return os.str();
      case Opcode::CBr:
        os << (branchIfZero() ? "cbrz " : "cbr ") << reg(srcRegs[0], 1)
           << ", @" << targetIdx;
        return os.str();
      case Opcode::Barrier:
        return "barrier";
      case Opcode::Ret:
        return "ret";
      case Opcode::Nop:
        return "nop";
      case Opcode::Cmp:
        os << "cmp_" << cmpOpName(cmpop) << "_" << typeName(dtype) << " "
           << reg(dstReg, 1) << ", " << reg(srcRegs[0], w) << ", "
           << reg(srcRegs[1], w);
        return os.str();
      case Opcode::MovImm:
        os << "mov_" << typeName(dtype) << " " << reg(dstReg, w) << ", #"
           << imm;
        return os.str();
      case Opcode::Cvt:
        os << "cvt_" << typeName(dtype) << "_" << typeName(srcDtype) << " "
           << reg(dstReg, w) << ", " << reg(srcRegs[0], typeRegs(srcDtype));
        return os.str();
      default: {
        os << opcodeName(opc) << "_" << typeName(dtype);
        if (dstReg.valid())
            os << " " << reg(dstReg, opc == Opcode::Cmp ? 1 : w);
        for (unsigned s = 0; s < 3; ++s) {
            if (srcRegs[s].valid()) {
                unsigned ww = (opc == Opcode::CMov && s == 0) ? 1 : w;
                os << ", " << reg(srcRegs[s], ww);
            }
        }
        return os.str();
      }
    }
}

} // namespace last::hsail
