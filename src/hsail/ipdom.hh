/**
 * @file
 * Immediate post-dominator analysis for HSAIL kernels.
 *
 * The IL does not identify reconvergence points, so — exactly as the
 * paper describes — the simulator parses the kernel code at load time,
 * builds the control-flow graph, computes immediate post-dominators,
 * and annotates every conditional branch with its reconvergence PC for
 * the reconvergence stack.
 */

#ifndef LAST_HSAIL_IPDOM_HH
#define LAST_HSAIL_IPDOM_HH

#include <cstddef>
#include <vector>

#include "arch/kernel_code.hh"

namespace last::hsail
{

/** One basic block of the IL CFG (instruction index range). */
struct BasicBlock
{
    size_t first;              ///< first instruction index
    size_t last;               ///< last instruction index (inclusive)
    std::vector<size_t> succs; ///< successor block ids
};

/** Build basic blocks for a sealed HSAIL kernel. */
std::vector<BasicBlock> buildCfg(const arch::KernelCode &code);

/**
 * Compute each block's immediate post-dominator block id (SIZE_MAX for
 * the virtual exit). Index i of the result corresponds to block i.
 */
std::vector<size_t> postDominators(const std::vector<BasicBlock> &blocks);

/**
 * Annotate every conditional branch in the kernel with its
 * reconvergence byte offset. Must run once after seal() and before
 * execution; panics on irreducible patterns with no post-dominator.
 */
void annotateReconvergence(arch::KernelCode &code);

} // namespace last::hsail

#endif // LAST_HSAIL_IPDOM_HH
