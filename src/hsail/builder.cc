#include "hsail/builder.hh"

#include <bit>

#include "common/logging.hh"
#include "hsail/ipdom.hh"

namespace last::hsail
{

KernelBuilder::KernelBuilder(std::string name)
    : code(std::make_unique<arch::KernelCode>(IsaKind::HSAIL,
                                              std::move(name)))
{
}

size_t
KernelBuilder::numInsts() const
{
    return code->numInsts();
}

uint16_t
KernelBuilder::allocRegs(DataType t)
{
    uint16_t base = nextReg;
    nextReg = uint16_t(nextReg + typeRegs(t));
    fatal_if(nextReg > 2048,
             "kernel %s exceeds the 2,048 IL vector registers per WF",
             code->name().c_str());
    return base;
}

Val
KernelBuilder::newVal(DataType t)
{
    return {allocRegs(t), t};
}

size_t
KernelBuilder::emit(HsailInst *inst)
{
    panic_if(built, "builder reused after build()");
    pending.push_back(inst);
    return code->append(std::unique_ptr<arch::Instruction>(inst));
}

Val
KernelBuilder::emitAlu(Opcode op, DataType t, Val a, Val b, Val c)
{
    Val dst = newVal(t);
    emitAluTo(op, dst, a, b, c);
    return dst;
}

void
KernelBuilder::emitAluTo(Opcode op, Val dst, Val a, Val b, Val c)
{
    emit(HsailInst::alu(op, dst.type, Reg{dst.reg}, Reg{a.reg},
                        Reg{b.reg}, Reg{c.reg}));
}

Val
KernelBuilder::immU32(uint32_t v)
{
    Val dst = newVal(DataType::U32);
    emit(HsailInst::movImm(DataType::U32, Reg{dst.reg}, v));
    return dst;
}

Val
KernelBuilder::immS32(int32_t v)
{
    Val dst = newVal(DataType::S32);
    emit(HsailInst::movImm(DataType::S32, Reg{dst.reg}, uint32_t(v)));
    return dst;
}

Val
KernelBuilder::immF32(float v)
{
    Val dst = newVal(DataType::F32);
    emit(HsailInst::movImm(DataType::F32, Reg{dst.reg},
                           std::bit_cast<uint32_t>(v)));
    return dst;
}

Val
KernelBuilder::immF64(double v)
{
    Val dst = newVal(DataType::F64);
    emit(HsailInst::movImm(DataType::F64, Reg{dst.reg},
                           std::bit_cast<uint64_t>(v)));
    return dst;
}

Val
KernelBuilder::immU64(uint64_t v)
{
    Val dst = newVal(DataType::U64);
    emit(HsailInst::movImm(DataType::U64, Reg{dst.reg}, v));
    return dst;
}

Val
KernelBuilder::workitemAbsId()
{
    Val dst = newVal(DataType::U32);
    emit(HsailInst::special(Opcode::WorkItemAbsId, Reg{dst.reg}));
    return dst;
}

Val
KernelBuilder::workitemId()
{
    Val dst = newVal(DataType::U32);
    emit(HsailInst::special(Opcode::WorkItemId, Reg{dst.reg}));
    return dst;
}

Val
KernelBuilder::workgroupId()
{
    Val dst = newVal(DataType::U32);
    emit(HsailInst::special(Opcode::WorkGroupId, Reg{dst.reg}));
    return dst;
}

Val
KernelBuilder::workgroupSize()
{
    Val dst = newVal(DataType::U32);
    emit(HsailInst::special(Opcode::WorkGroupSize, Reg{dst.reg}));
    return dst;
}

Val
KernelBuilder::gridSize()
{
    Val dst = newVal(DataType::U32);
    emit(HsailInst::special(Opcode::GridSize, Reg{dst.reg}));
    return dst;
}

namespace
{

DataType
binType(Val a, Val b)
{
    panic_if(a.type != b.type, "IL type mismatch (%s vs %s)",
             typeName(a.type), typeName(b.type));
    return a.type;
}

} // namespace

Val KernelBuilder::add(Val a, Val b)
{ return emitAlu(Opcode::Add, binType(a, b), a, b); }
Val KernelBuilder::sub(Val a, Val b)
{ return emitAlu(Opcode::Sub, binType(a, b), a, b); }
Val KernelBuilder::mul(Val a, Val b)
{ return emitAlu(Opcode::Mul, binType(a, b), a, b); }
Val KernelBuilder::mulHi(Val a, Val b)
{ return emitAlu(Opcode::MulHi, binType(a, b), a, b); }
Val KernelBuilder::mad(Val a, Val b, Val c)
{ return emitAlu(Opcode::Mad, binType(a, b), a, b, c); }
Val KernelBuilder::fma_(Val a, Val b, Val c)
{ return emitAlu(Opcode::Fma, binType(a, b), a, b, c); }
Val KernelBuilder::div(Val a, Val b)
{ return emitAlu(Opcode::Div, binType(a, b), a, b); }
Val KernelBuilder::min_(Val a, Val b)
{ return emitAlu(Opcode::Min, binType(a, b), a, b); }
Val KernelBuilder::max_(Val a, Val b)
{ return emitAlu(Opcode::Max, binType(a, b), a, b); }
Val KernelBuilder::abs_(Val a) { return emitAlu(Opcode::Abs, a.type, a); }
Val KernelBuilder::neg(Val a) { return emitAlu(Opcode::Neg, a.type, a); }
Val KernelBuilder::sqrt_(Val a)
{ return emitAlu(Opcode::Sqrt, a.type, a); }
Val KernelBuilder::and_(Val a, Val b)
{ return emitAlu(Opcode::And, binType(a, b), a, b); }
Val KernelBuilder::or_(Val a, Val b)
{ return emitAlu(Opcode::Or, binType(a, b), a, b); }
Val KernelBuilder::xor_(Val a, Val b)
{ return emitAlu(Opcode::Xor, binType(a, b), a, b); }
Val KernelBuilder::not_(Val a) { return emitAlu(Opcode::Not, a.type, a); }
Val KernelBuilder::shl(Val a, Val b)
{ return emitAlu(Opcode::Shl, a.type, a, b); }
Val KernelBuilder::shr(Val a, Val b)
{ return emitAlu(Opcode::Shr, a.type, a, b); }
Val KernelBuilder::ashr(Val a, Val b)
{ return emitAlu(Opcode::AShr, a.type, a, b); }
Val KernelBuilder::bfe(Val a, Val offset, Val width)
{ return emitAlu(Opcode::Bfe, a.type, a, offset, width); }

Val
KernelBuilder::cmp(CmpOp op, Val a, Val b)
{
    DataType t = binType(a, b);
    Val dst = newVal(DataType::U32);
    emit(HsailInst::cmp(op, t, Reg{dst.reg}, Reg{a.reg}, Reg{b.reg}));
    return dst;
}

Val
KernelBuilder::cmov(Val cond, Val tval, Val fval)
{
    DataType t = binType(tval, fval);
    Val dst = newVal(t);
    emit(HsailInst::cmov(t, Reg{dst.reg}, Reg{cond.reg}, Reg{tval.reg},
                         Reg{fval.reg}));
    return dst;
}

Val
KernelBuilder::cvt(DataType to, Val a)
{
    Val dst = newVal(to);
    emit(HsailInst::cvt(to, a.type, Reg{dst.reg}, Reg{a.reg}));
    return dst;
}

Val
KernelBuilder::mov(Val a)
{
    Val dst = newVal(a.type);
    emit(HsailInst::mov(a.type, Reg{dst.reg}, Reg{a.reg}));
    return dst;
}

void
KernelBuilder::assign(Val dst, Val src)
{
    panic_if(dst.type != src.type, "assign type mismatch");
    emit(HsailInst::mov(dst.type, Reg{dst.reg}, Reg{src.reg}));
}

Val
KernelBuilder::ldGlobal(DataType t, Val addr64, int64_t offset)
{
    Val dst = newVal(t);
    emit(HsailInst::ld(Segment::Global, t, Reg{dst.reg}, Reg{addr64.reg},
                       offset));
    return dst;
}

void
KernelBuilder::stGlobal(Val value, Val addr64, int64_t offset)
{
    emit(HsailInst::st(Segment::Global, value.type, Reg{value.reg},
                       Reg{addr64.reg}, offset));
}

Val
KernelBuilder::ldReadonly(DataType t, Val addr64, int64_t offset)
{
    Val dst = newVal(t);
    emit(HsailInst::ld(Segment::Readonly, t, Reg{dst.reg},
                       Reg{addr64.reg}, offset));
    return dst;
}

Val
KernelBuilder::ldKernarg(DataType t, int64_t offset)
{
    Val dst = newVal(t);
    emit(HsailInst::ld(Segment::Kernarg, t, Reg{dst.reg}, Reg{}, offset));
    return dst;
}

Val
KernelBuilder::ldPrivate(DataType t, Val off32, int64_t offset)
{
    Val dst = newVal(t);
    emit(HsailInst::ld(Segment::Private, t, Reg{dst.reg}, Reg{off32.reg},
                       offset));
    return dst;
}

void
KernelBuilder::stPrivate(Val value, Val off32, int64_t offset)
{
    emit(HsailInst::st(Segment::Private, value.type, Reg{value.reg},
                       Reg{off32.reg}, offset));
}

Val
KernelBuilder::ldSpill(DataType t, int64_t offset)
{
    Val dst = newVal(t);
    emit(HsailInst::ld(Segment::Spill, t, Reg{dst.reg}, Reg{}, offset));
    return dst;
}

void
KernelBuilder::stSpill(Val value, int64_t offset)
{
    emit(HsailInst::st(Segment::Spill, value.type, Reg{value.reg}, Reg{},
                       offset));
}

Val
KernelBuilder::ldGroup(DataType t, Val off32, int64_t offset)
{
    Val dst = newVal(t);
    emit(HsailInst::ld(Segment::Group, t, Reg{dst.reg}, Reg{off32.reg},
                       offset));
    return dst;
}

void
KernelBuilder::stGroup(Val value, Val off32, int64_t offset)
{
    emit(HsailInst::st(Segment::Group, value.type, Reg{value.reg},
                       Reg{off32.reg}, offset));
}

Val
KernelBuilder::atomicAddGlobal(Val addr64, Val value, int64_t offset)
{
    Val dst = newVal(value.type);
    emit(HsailInst::atomicAdd(value.type, Reg{dst.reg}, Reg{addr64.reg},
                              offset, Reg{value.reg}));
    return dst;
}

void
KernelBuilder::ifBegin(Val cond)
{
    Frame f{};
    f.kind = CfRegion::Kind::IfThen;
    f.condReg = cond.reg;
    f.branchIdx = emit(HsailInst::cbrz(Reg{cond.reg}, 0));
    f.elseJumpIdx = SIZE_MAX;
    f.sawElse = false;
    frames.push_back(f);
}

void
KernelBuilder::ifElse()
{
    panic_if(frames.empty() || frames.back().sawElse ||
                 frames.back().kind != CfRegion::Kind::IfThen,
             "ifElse() without a matching ifBegin()");
    Frame &f = frames.back();
    f.kind = CfRegion::Kind::IfElse;
    f.sawElse = true;
    f.elseJumpIdx = emit(HsailInst::br(0));
    // The leading cbrz jumps to the first else instruction.
    pending[f.branchIdx]->setTargetIndex(f.elseJumpIdx + 1);
}

void
KernelBuilder::ifEnd()
{
    panic_if(frames.empty(), "ifEnd() without a matching ifBegin()");
    Frame f = frames.back();
    frames.pop_back();
    size_t end = code->numInsts();
    if (f.sawElse)
        pending[f.elseJumpIdx]->setTargetIndex(end);
    else
        pending[f.branchIdx]->setTargetIndex(end);

    CfRegion r{};
    r.kind = f.kind;
    r.condReg = f.condReg;
    r.branchIdx = f.branchIdx;
    r.elseJumpIdx = f.elseJumpIdx;
    r.endIdx = end;
    regions.push_back(r);
}

void
KernelBuilder::doBegin()
{
    Frame f{};
    f.kind = CfRegion::Kind::Loop;
    f.bodyFirst = code->numInsts();
    f.branchIdx = SIZE_MAX;
    frames.push_back(f);
}

void
KernelBuilder::doEnd(Val cond)
{
    panic_if(frames.empty() || frames.back().kind != CfRegion::Kind::Loop,
             "doEnd() without a matching doBegin()");
    Frame f = frames.back();
    frames.pop_back();
    size_t branch = emit(HsailInst::cbr(Reg{cond.reg}, f.bodyFirst));

    CfRegion r{};
    r.kind = CfRegion::Kind::Loop;
    r.condReg = cond.reg;
    r.branchIdx = branch;
    r.bodyFirst = f.bodyFirst;
    r.endIdx = branch + 1;
    regions.push_back(r);
}

void
KernelBuilder::barrier()
{
    emit(HsailInst::barrier());
}

IlKernel
KernelBuilder::build()
{
    panic_if(built, "build() called twice");
    panic_if(!frames.empty(), "unclosed control-flow region at build()");
    emit(HsailInst::ret());
    built = true;

    code->vregsUsed = nextReg;
    code->sregsUsed = 0;
    code->kernargBytes = kernargBytes;
    code->privateBytesPerWi = privateBytes;
    code->spillBytesPerWi = spillBytes;
    code->ldsBytesPerWg = ldsBytes;
    code->seal();
    annotateReconvergence(*code);
    // Predecode happens later: the HLC's register compaction
    // (finalizer::compactIlRegisters) still rewrites operands, and
    // warms the metas itself once the registers are final.

    IlKernel k;
    k.code = std::move(code);
    k.regions = std::move(regions);
    return k;
}

uint64_t
ilDigest(const IlKernel &il)
{
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](const void *data, size_t len) {
        const auto *p = static_cast<const uint8_t *>(data);
        for (size_t i = 0; i < len; ++i) {
            h ^= p[i];
            h *= 1099511628211ull;
        }
    };
    auto mix_u64 = [&](uint64_t v) { mix(&v, sizeof(v)); };

    const arch::KernelCode &code = *il.code;
    std::string text = code.disassemble();
    mix(text.data(), text.size());
    mix_u64(code.numInsts());
    mix_u64(code.vregsUsed);
    mix_u64(code.sregsUsed);
    mix_u64(code.privateBytesPerWi);
    mix_u64(code.spillBytesPerWi);
    mix_u64(code.ldsBytesPerWg);
    mix_u64(code.kernargBytes);
    for (const CfRegion &r : il.regions) {
        mix_u64(uint64_t(r.kind));
        mix_u64(r.condReg);
        mix_u64(r.branchIdx);
        mix_u64(r.elseJumpIdx);
        mix_u64(r.bodyFirst);
        mix_u64(r.endIdx);
    }
    return h;
}

} // namespace last::hsail
