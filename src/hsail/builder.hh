/**
 * @file
 * The kernel builder: this repo's single-source front end.
 *
 * Workloads are written once against this typed DSL (playing the role
 * HCC plays in the paper); the result is an IlKernel — the HSAIL code
 * plus structured control-flow metadata. The HSAIL path executes the
 * IL directly; the finalizer consumes the same IlKernel to produce
 * GCN3 machine code. One source, two ISAs.
 */

#ifndef LAST_HSAIL_BUILDER_HH
#define LAST_HSAIL_BUILDER_HH

#include <memory>
#include <string>
#include <vector>

#include "arch/kernel_code.hh"
#include "hsail/inst.hh"

namespace last::hsail
{

/**
 * Structured control-flow region, recorded by the builder. Real
 * finalizers recover this structure from the compiler IR; recording it
 * at build time keeps the contract explicit.
 */
struct CfRegion
{
    enum class Kind { IfThen, IfElse, Loop };

    Kind kind;
    uint16_t condReg;   ///< IL bool register steering the region
    size_t branchIdx;   ///< If: the leading cbrz; Loop: the backedge cbr
    size_t elseJumpIdx; ///< IfElse: the br that skips the else part
    size_t bodyFirst;   ///< Loop: first body instruction
    size_t endIdx;      ///< first IL instruction after the region
};

/** An IL kernel plus its structure table: the finalizer's input. */
struct IlKernel
{
    std::unique_ptr<arch::KernelCode> code;
    std::vector<CfRegion> regions;
};

/** A typed IL value handle (an IL register + its type). */
struct Val
{
    uint16_t reg = Reg::NoReg;
    DataType type = DataType::B32;

    bool valid() const { return reg != Reg::NoReg; }
};

class KernelBuilder
{
  public:
    explicit KernelBuilder(std::string name);

    /** @{ Kernel metadata (per-WI / per-WG segment sizes). */
    void setKernargBytes(uint64_t n) { kernargBytes = n; }
    void setPrivateBytesPerWi(uint64_t n) { privateBytes = n; }
    void setSpillBytesPerWi(uint64_t n) { spillBytes = n; }
    void setLdsBytesPerWg(uint64_t n) { ldsBytes = n; }
    /** @} */

    /** @{ Values. */
    Val newVal(DataType t); ///< allocate an uninitialized register
    Val immU32(uint32_t v);
    Val immS32(int32_t v);
    Val immF32(float v);
    Val immF64(double v);
    Val immU64(uint64_t v);
    /** @} */

    /** @{ Dispatch intrinsics (single IL instructions). */
    Val workitemAbsId();
    Val workitemId();
    Val workgroupId();
    Val workgroupSize();
    Val gridSize();
    /** @} */

    /** @{ Arithmetic (fresh destination). */
    Val add(Val a, Val b);
    Val sub(Val a, Val b);
    Val mul(Val a, Val b);
    Val mulHi(Val a, Val b);
    Val mad(Val a, Val b, Val c);
    Val fma_(Val a, Val b, Val c);
    Val div(Val a, Val b);
    Val min_(Val a, Val b);
    Val max_(Val a, Val b);
    Val abs_(Val a);
    Val neg(Val a);
    Val sqrt_(Val a);
    Val and_(Val a, Val b);
    Val or_(Val a, Val b);
    Val xor_(Val a, Val b);
    Val not_(Val a);
    Val shl(Val a, Val b);
    Val shr(Val a, Val b);
    Val ashr(Val a, Val b);
    Val bfe(Val a, Val offset, Val width);
    Val cmp(CmpOp op, Val a, Val b); ///< returns a U32 bool
    Val cmov(Val cond, Val tval, Val fval);
    Val cvt(DataType to, Val a);
    Val mov(Val a); ///< fresh copy
    /** @} */

    /** Re-assign an existing value (loop-carried variables). */
    void assign(Val dst, Val src);

    /** Low-level escape hatch: emit an ALU op into an explicit dst. */
    void emitAluTo(Opcode op, Val dst, Val a, Val b = {}, Val c = {});

    /** Low-level escape hatch: emit an ALU op with a fresh dst. */
    Val
    emitAlu2(Opcode op, Val a, Val b = {}, Val c = {})
    {
        return emitAlu(op, a.type, a, b, c);
    }

    /** @{ Memory. addr64 is a U64 value for global/readonly; the other
     * segments take an optional U32 offset register. */
    Val ldGlobal(DataType t, Val addr64, int64_t offset = 0);
    void stGlobal(Val value, Val addr64, int64_t offset = 0);
    Val ldReadonly(DataType t, Val addr64, int64_t offset = 0);
    Val ldKernarg(DataType t, int64_t offset);
    Val ldPrivate(DataType t, Val off32, int64_t offset = 0);
    void stPrivate(Val value, Val off32, int64_t offset = 0);
    Val ldSpill(DataType t, int64_t offset);
    void stSpill(Val value, int64_t offset);
    Val ldGroup(DataType t, Val off32, int64_t offset = 0);
    void stGroup(Val value, Val off32, int64_t offset = 0);
    Val atomicAddGlobal(Val addr64, Val value, int64_t offset = 0);
    /** @} */

    /** @{ Control flow (structured, may nest). */
    void ifBegin(Val cond);  ///< body runs where cond != 0
    void ifElse();
    void ifEnd();
    void doBegin();          ///< do { ... } while (cond != 0)
    void doEnd(Val cond);
    void barrier();
    /** @} */

    /** Finish: appends ret, seals, runs ipdom analysis, fills
     *  metadata. The builder must not be reused afterwards. */
    IlKernel build();

    /** Instructions emitted so far (for tests). */
    size_t numInsts() const;

  private:
    uint16_t allocRegs(DataType t);
    size_t emit(HsailInst *inst);
    Val emitAlu(Opcode op, DataType t, Val a, Val b = {}, Val c = {});

    struct Frame
    {
        CfRegion::Kind kind;
        uint16_t condReg;
        size_t branchIdx;
        size_t elseJumpIdx;
        size_t bodyFirst;
        bool sawElse;
    };

    std::unique_ptr<arch::KernelCode> code;
    std::vector<CfRegion> regions;
    std::vector<Frame> frames;
    std::vector<HsailInst *> pending; ///< borrowed ptrs for patching
    uint16_t nextReg = 0;
    uint64_t kernargBytes = 0;
    uint64_t privateBytes = 0;
    uint64_t spillBytes = 0;
    uint64_t ldsBytes = 0;
    bool built = false;
};

/**
 * Content digest of an IL kernel: FNV-1a over the disassembled
 * instruction stream, the control-flow region table, and the resource
 * metadata. Two IlKernels with equal digests are the same program for
 * every consumer (interpreter and finalizer alike) — the artifact
 * cache uses this to verify its (workload, isa, scale, seq) key really
 * names one unique kernel.
 */
uint64_t ilDigest(const IlKernel &il);

} // namespace last::hsail

#endif // LAST_HSAIL_BUILDER_HH
