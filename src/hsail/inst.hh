/**
 * @file
 * The concrete HSAIL instruction: a SIMT operation over per-work-item
 * 32-bit (or paired 64-bit) registers.
 *
 * Every HSAIL instruction reports an 8-byte encoded size — the fixed
 * 64-bit pseudo-encoding the paper describes for approximating BRIG's
 * verbose data structures in simulated memory.
 */

#ifndef LAST_HSAIL_INST_HH
#define LAST_HSAIL_INST_HH

#include <cstdint>
#include <optional>

#include "arch/instruction.hh"
#include "arch/wf_state.hh"
#include "hsail/opcodes.hh"

namespace last::hsail
{

/** HSAIL register id (index into the WF's flat vector register file).
 *  65535 means "no register". */
struct Reg
{
    uint16_t idx = NoReg;

    static constexpr uint16_t NoReg = 0xffff;
    bool valid() const { return idx != NoReg; }
};

class HsailInst : public arch::Instruction
{
  public:
    /** All HSAIL instructions occupy 8 bytes of simulated memory. */
    static constexpr unsigned EncodedBytes = 8;

    /** General constructor; prefer the named factories below. */
    HsailInst(Opcode op, DataType type);

    /** @{ Named factories. */
    static HsailInst *alu(Opcode op, DataType t, Reg dst, Reg src0,
                          Reg src1 = {}, Reg src2 = {});
    static HsailInst *cmp(CmpOp c, DataType t, Reg dst, Reg src0, Reg src1);
    static HsailInst *cmov(DataType t, Reg dst, Reg cond, Reg tval,
                           Reg fval);
    static HsailInst *mov(DataType t, Reg dst, Reg src);
    static HsailInst *movImm(DataType t, Reg dst, uint64_t bits);
    static HsailInst *cvt(DataType dst_t, DataType src_t, Reg dst, Reg src);
    static HsailInst *ld(Segment seg, DataType t, Reg dst, Reg addr,
                         int64_t offset);
    static HsailInst *st(Segment seg, DataType t, Reg val, Reg addr,
                         int64_t offset);
    static HsailInst *atomicAdd(DataType t, Reg dst, Reg addr,
                                int64_t offset, Reg val);
    static HsailInst *br(size_t target_index);
    static HsailInst *cbr(Reg cond, size_t target_index);
    /** Branch when cond == 0 (used by structured if lowering). */
    static HsailInst *cbrz(Reg cond, size_t target_index);
    static HsailInst *barrier();
    static HsailInst *ret();
    static HsailInst *special(Opcode op, Reg dst);
    static HsailInst *nop();
    /** @} */

    void execute(arch::WfState &wf) const override;
    std::string disassemble() const override;
    arch::FuType fuType() const override;
    unsigned sizeBytes() const override { return EncodedBytes; }

    /** Install the direct-threaded handler (src/hsail/exec.cc). */
    void predecode(arch::ExecMeta &m) const override;

    Opcode op() const { return opc; }
    DataType type() const { return dtype; }
    DataType srcType() const { return srcDtype; }
    Segment segment() const { return seg; }
    CmpOp cmpOp() const { return cmpop; }
    Reg dst() const { return dstReg; }
    Reg src(unsigned i) const { return srcRegs[i]; }
    uint64_t immBits() const { return imm; }
    int64_t memOffset() const { return int64_t(imm); }

    /** @{ Branch-target plumbing. Targets are built as instruction
     * indices and resolved to byte offsets (index * 8) by the builder;
     * the RS needs the reconvergence offset, computed by the ipdom
     * pass at load time. */
    size_t targetIndex() const { return targetIdx; }
    void setTargetIndex(size_t idx) { targetIdx = idx; }
    Addr targetOffset() const { return targetIdx * EncodedBytes; }
    /** True for the branch-if-zero variant of cbr. */
    bool branchIfZero() const { return opc == Opcode::CBr && imm != 0; }
    void setRpcOffset(Addr rpc) { rpcOff = rpc; }
    Addr rpcOffset() const { return rpcOff; }
    /** @} */

    /** Renumber all registers (the HLC's register allocation pass);
     *  rebuilds the operand list. */
    void remapRegs(const std::vector<uint16_t> &remap);

  private:
    /** The direct-threaded handlers (exec.cc) read operand fields and
     *  reuse the private executors non-virtually on cold paths. */
    friend struct HsailExec;

    void finalizeOperands();
    void clearOperands();

    void executeAlu(arch::WfState &wf) const;
    void executeMem(arch::WfState &wf) const;
    void executeBranch(arch::WfState &wf) const;

    uint64_t laneAlu(const arch::WfState &wf, unsigned lane) const;

    Opcode opc;
    DataType dtype;
    DataType srcDtype = DataType::B32; ///< for Cvt
    Segment seg = Segment::Global;
    CmpOp cmpop = CmpOp::Eq;
    Reg dstReg;
    Reg srcRegs[3];
    uint64_t imm = 0;
    size_t targetIdx = 0;
    Addr rpcOff = InvalidAddr;
};

} // namespace last::hsail

#endif // LAST_HSAIL_INST_HH
