/**
 * @file
 * The full GPU: compute units, the shared cache hierarchy (Table 4),
 * DRAM, and the workgroup dispatcher.
 */

#ifndef LAST_GPU_GPU_HH
#define LAST_GPU_GPU_HH

#include <deque>
#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/event_queue.hh"
#include "common/stats.hh"
#include "cu/compute_unit.hh"
#include "memory/cache.hh"
#include "memory/dram.hh"
#include "memory/functional_memory.hh"

namespace last::gpu
{

class Gpu : public stats::Group
{
  public:
    Gpu(const GpuConfig &cfg, mem::FunctionalMemory &memory,
        stats::Group *parent);

    /** Enqueue a kernel's workgroups for dispatch. */
    void launch(cu::KernelLaunch &launch);

    /** Advance one cycle (dispatch + all CUs + event queue). */
    void tick();

    /**
     * Run until all enqueued launches complete; returns cycles
     * elapsed. Guarded by the forward-progress watchdog: if no
     * instruction is fetched, issued, or dispatched anywhere on the
     * GPU for cfg.watchdogStallCycles (or the run exceeds
     * cfg.watchdogMaxCycles), throws a DeadlockError carrying a
     * per-wavefront state dump — PC, exec mask, waitcnt counters,
     * barrier membership, reconvergence-stack depth — instead of
     * spinning forever. The idle-cycle fast-forward never jumps past
     * a watchdog deadline or a pending injected fault.
     */
    Cycle runToCompletion();

    bool idle() const;

    EventQueue &eventQueue() { return eq; }
    const GpuConfig &config() const { return cfg; }

    cu::ComputeUnit &computeUnit(unsigned i) { return *cus[i]; }
    unsigned numCus() const { return unsigned(cus.size()); }

    /** @{ Aggregate helpers over all CUs (for the harness).
     *
     * Hot callers resolve the stat name to an index once with
     * cuStatIndex() and then sum by index: all CUs register the same
     * stats in the same constructor order, so one index is valid for
     * every CU. The string overload stays for one-off queries. */
    double sumCuStat(const std::string &name) const;
    double sumCuStat(int statIdx) const;
    /** @return index into ComputeUnit::localStats(), or -1. */
    int cuStatIndex(const std::string &name) const;
    /** @} */

    stats::Scalar totalCycles;
    stats::Scalar kernelLaunches;

    mem::Dram &dramModel() { return *dram; }
    mem::Cache &l1iCache(unsigned cluster) { return *l1is[cluster]; }

  private:
    /** @return true if at least one workgroup was placed. */
    bool dispatchPending();

    /** Create and attach per-component trace streams when
     *  cfg.trace is set (see obs/trace.hh). */
    void wireTraceStreams();

    /** @{ Fault injection (cfg.faultPlan) and watchdog support. */
    void armFaults();
    void applyDueFaults(Cycle now);
    [[noreturn]] void throwDeadlock(const std::string &reason,
                                    Cycle lastProgress);
    /** @} */

    GpuConfig cfg;
    EventQueue eq;
    mem::FunctionalMemory &memory;

    std::unique_ptr<mem::Dram> dram;
    std::vector<std::unique_ptr<mem::Cache>> l2s;      ///< per cluster
    std::vector<std::unique_ptr<mem::Cache>> l1is;     ///< per cluster
    std::vector<std::unique_ptr<mem::Cache>> scalarDs; ///< per cluster
    std::vector<std::unique_ptr<mem::Cache>> l1ds;     ///< per CU
    std::vector<std::unique_ptr<cu::ComputeUnit>> cus;

    /** GPU-level trace stream (idle skips, watchdog trips); nullptr
     *  when tracing is off. */
    obs::TraceStream *gpuTrace = nullptr;

    std::deque<cu::WorkgroupTask> pendingWgs;
    std::vector<cu::KernelLaunch *> liveLaunches;
    unsigned dispatchRr = 0;
    bool progressLastTick = false;

    /** Cycle-triggered faults (bit flips, wedges) from cfg.faultPlan
     *  not yet applied, as indices into faultPlan->faults. */
    std::vector<size_t> pendingFaults;
    /** Earliest pending fault cycle (InvalidCycle when none): bounds
     *  the idle fast-forward so faults strike on schedule. */
    Cycle nextFaultCycle = InvalidCycle;
};

} // namespace last::gpu

#endif // LAST_GPU_GPU_HH
