/**
 * @file
 * The command (packet) processor: writes and interprets dispatch
 * packets. GCN3 kernels read the packet from memory through the ABI
 * (s[4:5]); the HSAIL path gets the same values through simulator
 * state — both flows start from the same real packet, as in the
 * paper's methodology.
 */

#ifndef LAST_GPU_COMMAND_PROCESSOR_HH
#define LAST_GPU_COMMAND_PROCESSOR_HH

#include "common/types.hh"
#include "cu/launch.hh"
#include "memory/functional_memory.hh"

namespace last::gpu
{

class CommandProcessor
{
  public:
    explicit CommandProcessor(mem::FunctionalMemory &memory)
        : memory(memory)
    {
    }

    /** Write an AQL-style dispatch packet at pkt_addr. */
    void writePacket(Addr pkt_addr, unsigned wg_size, unsigned grid_size,
                     Addr kernarg_addr);

    /** Interpret a packet (as the HSA packet processor does) and fill
     *  the launch geometry. */
    void readPacket(Addr pkt_addr, cu::KernelLaunch &launch) const;

  private:
    mem::FunctionalMemory &memory;
};

} // namespace last::gpu

#endif // LAST_GPU_COMMAND_PROCESSOR_HH
