#include "gpu/gpu.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/faultinject.hh"

namespace last::gpu
{

Gpu::Gpu(const GpuConfig &cfg, mem::FunctionalMemory &memory,
         stats::Group *parent)
    : stats::Group("gpu", parent),
      totalCycles(this, "totalCycles", "cycles simulated"),
      kernelLaunches(this, "kernelLaunches", "kernels dispatched"),
      cfg(cfg), memory(memory)
{
    dram = std::make_unique<mem::Dram>("dram", cfg, this);

    unsigned clusters =
        (cfg.numCus + cfg.cusPerCluster - 1) / cfg.cusPerCluster;
    for (unsigned c = 0; c < clusters; ++c) {
        l2s.push_back(std::make_unique<mem::Cache>(
            "l2_" + std::to_string(c), cfg.l2, dram.get(), this));
        l1is.push_back(std::make_unique<mem::Cache>(
            "l1i_" + std::to_string(c), cfg.l1i, l2s[c].get(), this));
        scalarDs.push_back(std::make_unique<mem::Cache>(
            "sqc_" + std::to_string(c), cfg.scalarD, l2s[c].get(),
            this));
    }

    for (unsigned i = 0; i < cfg.numCus; ++i) {
        unsigned c = i / cfg.cusPerCluster;
        l1ds.push_back(std::make_unique<mem::Cache>(
            "l1d_" + std::to_string(i), cfg.l1d, l2s[c].get(), this));
        cus.push_back(std::make_unique<cu::ComputeUnit>(
            "cu_" + std::to_string(i), cfg, eq, l1ds[i].get(),
            l1is[c].get(), scalarDs[c].get(), &memory, this));
    }

    wireTraceStreams();
    armFaults();
}

void
Gpu::wireTraceStreams()
{
    if (!obs::tracePointsCompiled() || !cfg.trace)
        return;
    obs::TraceSink &sink = *cfg.trace;
    gpuTrace = sink.makeStream("gpu", obs::TidGpu);
    for (size_t i = 0; i < cus.size(); ++i)
        cus[i]->setTraceStream(sink.makeStream(
            "cu_" + std::to_string(i), obs::TidCuBase + unsigned(i)));
    // Cache tracks follow the CU tracks: per-CU L1Ds first, then the
    // per-cluster shared levels.
    unsigned tid = obs::TidCacheBase;
    for (auto &c : l1ds)
        c->setTraceStream(sink.makeStream(c->name(), tid++));
    for (auto &c : l1is)
        c->setTraceStream(sink.makeStream(c->name(), tid++));
    for (auto &c : scalarDs)
        c->setTraceStream(sink.makeStream(c->name(), tid++));
    for (auto &c : l2s)
        c->setTraceStream(sink.makeStream(c->name(), tid++));
}

void
Gpu::armFaults()
{
    if (!cfg.faultPlan)
        return;
    const auto &faults = cfg.faultPlan->faults;
    for (size_t i = 0; i < faults.size(); ++i) {
        const sim::Fault &f = faults[i];
        switch (f.kind) {
          case sim::FaultKind::CacheDelay:
            l1ds[f.cu % cus.size()]->injectResponseFault(
                f.cycle, f.extraLatency, f.count);
            break;
          case sim::FaultKind::CacheDrop:
            l1ds[f.cu % cus.size()]->injectResponseFault(
                f.cycle, sim::DroppedResponseLatency, f.count);
            break;
          case sim::FaultKind::MemBitFlip:
          case sim::FaultKind::WedgeWavefront:
            // Cycle-triggered: applied from the tick loop.
            pendingFaults.push_back(i);
            nextFaultCycle = std::min(nextFaultCycle, f.cycle);
            break;
        }
    }
}

void
Gpu::applyDueFaults(Cycle now)
{
    nextFaultCycle = InvalidCycle;
    std::erase_if(pendingFaults, [&](size_t i) {
        const sim::Fault &f = cfg.faultPlan->faults[i];
        if (f.cycle > now) {
            nextFaultCycle = std::min(nextFaultCycle, f.cycle);
            return false;
        }
        if (f.kind == sim::FaultKind::MemBitFlip) {
            uint8_t byte = memory.read<uint8_t>(f.addr);
            byte ^= uint8_t(1u << (f.bit % 8));
            memory.write<uint8_t>(f.addr, byte);
            return true;
        }
        // WedgeWavefront: if no wavefront is live yet (the fault
        // struck before dispatch), stay armed and strike as soon as
        // one is.
        if (cus[f.cu % cus.size()]->wedgeWavefront(f.wfSlot) >= 0)
            return true;
        nextFaultCycle = std::min(nextFaultCycle, now + 1);
        return false;
    });
}

void
Gpu::launch(cu::KernelLaunch &launch)
{
    const auto &code = *launch.code;
    unsigned wf_per_wg =
        (launch.wgSize + cfg.wavefrontSize - 1) / cfg.wavefrontSize;
    fatal_if(code.vregsUsed * wf_per_wg > cfg.vrfEntriesPerCu,
             "kernel %s needs %u vector registers per workgroup but a "
             "CU has %u",
             code.name().c_str(), code.vregsUsed * wf_per_wg,
             cfg.vrfEntriesPerCu);
    fatal_if(code.isa() == IsaKind::GCN3 &&
                 code.sregsUsed * wf_per_wg > cfg.srfEntriesPerCu,
             "kernel %s needs %u scalar registers per workgroup but a "
             "CU has %u",
             code.name().c_str(), code.sregsUsed * wf_per_wg,
             cfg.srfEntriesPerCu);
    fatal_if(code.ldsBytesPerWg > cfg.ldsBytesPerCu,
             "kernel %s needs %llu LDS bytes per workgroup",
             code.name().c_str(),
             (unsigned long long)code.ldsBytesPerWg);

    ++kernelLaunches;
    launch.startCycle = eq.now();
    liveLaunches.push_back(&launch);
    for (unsigned wg = 0; wg < launch.numWorkgroups(); ++wg)
        pendingWgs.push_back({&launch, wg});
}

bool
Gpu::dispatchPending()
{
    bool any = false;
    while (!pendingWgs.empty()) {
        const cu::WorkgroupTask &task = pendingWgs.front();
        bool placed = false;
        for (unsigned k = 0; k < cus.size(); ++k) {
            unsigned i = (dispatchRr + k) % cus.size();
            if (cus[i]->canAccept(task)) {
                cus[i]->accept(task);
                dispatchRr = (i + 1) % cus.size();
                placed = true;
                any = true;
                break;
            }
        }
        if (!placed)
            break;
        pendingWgs.pop_front();
    }
    return any;
}

bool
Gpu::idle() const
{
    // Completed launches retire from liveLaunches as their last
    // workgroup finishes, so this is three cheap emptiness checks.
    if (!pendingWgs.empty() || !liveLaunches.empty())
        return false;
    for (const auto &c : cus)
        if (c->busy())
            return false;
    return true;
}

void
Gpu::tick()
{
    if (nextFaultCycle != InvalidCycle && eq.now() >= nextFaultCycle)
        applyDueFaults(eq.now());
    bool progress = dispatchPending();
    for (auto &c : cus) {
        c->tick();
        progress |= c->madeProgress();
    }
    eq.tick();
    ++totalCycles;
    // Launch completion requires an instruction to have issued, so
    // only scan for retirement on progress ticks.
    if (progress && !liveLaunches.empty())
        std::erase_if(liveLaunches, [](const cu::KernelLaunch *l) {
            return l->complete();
        });
    progressLastTick = progress;
}

void
Gpu::throwDeadlock(const std::string &reason, Cycle lastProgress)
{
    DeadlockInfo info;
    info.cycle = eq.now();
    info.lastProgressCycle = lastProgress;
    info.instsIssued = uint64_t(sumCuStat("dynInsts"));
    info.reason = reason;
    for (unsigned i = 0; i < cus.size(); ++i)
        cus[i]->dumpWavefronts(i, info.wavefronts);
    if (obs::tracePointsCompiled() && gpuTrace)
        gpuTrace->emit(obs::TraceKind::Watchdog, eq.now(), 0,
                       gpuTrace->intern(reason));
    throw DeadlockError(std::move(info));
}

Cycle
Gpu::runToCompletion()
{
    Cycle start = eq.now();
    Cycle lastProgress = start;
    const uint64_t stallLimit = cfg.watchdogStallCycles;
    const uint64_t budget = cfg.watchdogMaxCycles;
    const bool hasWallDeadline =
        cfg.wallDeadline != std::chrono::steady_clock::time_point{};
    uint64_t wallPoll = 0;
    while (!idle()) {
        tick();
        Cycle now = eq.now();
        // Wall-clock watchdog (opt-in; see GpuConfig::wallDeadline).
        // Polled on the first tick and every 1024 after: cheap enough
        // to never matter, tight enough that a shard under
        // --timeout-ms dies within milliseconds of its deadline — and
        // a kernel launched when the budget is already spent (short
        // event loops never reaching a sparser poll mark) still trips
        // it immediately.
        if (hasWallDeadline && (wallPoll++ & 1023) == 0 &&
            std::chrono::steady_clock::now() >= cfg.wallDeadline) {
            throwDeadlock("wall-clock deadline exceeded (timeout)",
                          lastProgress);
        }
        if (progressLastTick) {
            lastProgress = now;
        } else if (stallLimit && now - lastProgress > stallLimit) {
            throwDeadlock("no instruction fetched, issued, or "
                          "dispatched in " +
                              std::to_string(now - lastProgress) +
                              " cycles",
                          lastProgress);
        }
        if (budget && now - start > budget)
            throwDeadlock("cycle budget of " + std::to_string(budget) +
                              " cycles exceeded",
                          lastProgress);
        if (!progressLastTick && cfg.fastForwardIdle) {
            // Nothing fetched, issued, or dispatched this cycle: jump
            // the clock to the next event-queue callback or time-gated
            // wakeup, whichever comes first, charging the skipped
            // cycles to the same counters the per-cycle loop would
            // have bumped (the run stays statistic-identical).
            Cycle target = InvalidCycle;
            for (const auto &c : cus)
                target = std::min(target, c->nextProgressCycle(now));
            // Never jump past a pending injected fault or a watchdog
            // deadline: a wedged GPU's wakeup cycle can be absurdly
            // far away (or nonexistent), and the watchdog must fire at
            // its configured threshold, not after the jump.
            target = std::min(target, nextFaultCycle);
            if (stallLimit)
                target = std::min(target, lastProgress + stallLimit + 1);
            if (budget)
                target = std::min(target, start + budget + 1);
            Cycle skipped = eq.fastForwardTo(target);
            if (skipped) {
                totalCycles += double(skipped);
                for (auto &c : cus)
                    c->chargeSkippedCycles(now, skipped);
                LAST_TRACE(gpuTrace, obs::TraceKind::IdleSkip, now,
                           skipped, skipped);
            }
        }
    }
    return eq.now() - start;
}

double
Gpu::sumCuStat(const std::string &name) const
{
    double total = 0;
    for (const auto &c : cus) {
        if (const auto *s = c->find(name))
            total += s->value();
    }
    return total;
}

int
Gpu::cuStatIndex(const std::string &name) const
{
    if (cus.empty())
        return -1;
    const auto &stats = cus[0]->localStats();
    for (size_t i = 0; i < stats.size(); ++i)
        if (stats[i]->name() == name)
            return int(i);
    return -1;
}

double
Gpu::sumCuStat(int statIdx) const
{
    if (statIdx < 0)
        return 0;
    double total = 0;
    for (const auto &c : cus)
        total += c->localStats()[statIdx]->value();
    return total;
}

} // namespace last::gpu
