#include "gpu/command_processor.hh"

#include "finalizer/abi.hh"

namespace last::gpu
{

void
CommandProcessor::writePacket(Addr pkt_addr, unsigned wg_size,
                              unsigned grid_size, Addr kernarg_addr)
{
    memory.write<uint32_t>(pkt_addr + abi::PktHeaderOffset, 0x1u);
    memory.write<uint32_t>(pkt_addr + abi::PktWgSizeOffset,
                           wg_size & 0xffffu);
    memory.write<uint32_t>(pkt_addr + abi::PktGridSizeOffset, grid_size);
    memory.write<uint64_t>(pkt_addr + abi::PktKernargOffset,
                           kernarg_addr);
    memory.write<uint64_t>(pkt_addr + abi::PktCompletionOffset, 0);
}

void
CommandProcessor::readPacket(Addr pkt_addr,
                             cu::KernelLaunch &launch) const
{
    auto &mem = const_cast<mem::FunctionalMemory &>(memory);
    launch.wgSize =
        mem.read<uint32_t>(pkt_addr + abi::PktWgSizeOffset) & 0xffffu;
    launch.gridSize =
        mem.read<uint32_t>(pkt_addr + abi::PktGridSizeOffset);
    launch.kernargBase =
        mem.read<uint64_t>(pkt_addr + abi::PktKernargOffset);
    launch.aqlPacketAddr = pkt_addr;
}

} // namespace last::gpu
