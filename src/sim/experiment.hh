/**
 * @file
 * The experiment harness: run one (workload x ISA) configuration and
 * collect every statistic the paper's tables and figures need.
 */

#ifndef LAST_SIM_EXPERIMENT_HH
#define LAST_SIM_EXPERIMENT_HH

#include <functional>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/error.hh"
#include "runtime/runtime.hh"
#include "workloads/workload.hh"

namespace last::sim
{

struct AppResult
{
    std::string workload;
    IsaKind isa = IsaKind::HSAIL;
    bool verified = false;
    uint64_t digest = 0;

    /** @{ Quarantine marker: set by runSweep when this spec's
     *  simulation threw (and the serial retry also failed). A
     *  quarantined result carries no statistics — only the spec
     *  identity and the error that killed it — and must never be
     *  persisted to a results cache. */
    bool quarantined = false;
    std::string errorKind;    ///< SimError kindName(), or "exception"
    std::string errorMessage; ///< what() of the captured error
    /** @} */

    /** @{ Figure 5: dynamic instruction counts by class. */
    uint64_t dynInsts = 0;
    uint64_t valu = 0;
    uint64_t salu = 0;
    uint64_t vmem = 0;
    uint64_t smem = 0;
    uint64_t lds = 0;
    uint64_t branch = 0;
    uint64_t waitcnt = 0;
    uint64_t misc = 0;
    /** @} */

    uint64_t cycles = 0;   ///< total GPU cycles across all dispatches
    double ipc = 0;        ///< Figure 11

    uint64_t vrfBankConflicts = 0; ///< Figure 6
    double reuseMedian = 0;        ///< Figure 7
    uint64_t instFootprint = 0;    ///< Figure 8 (bytes)
    uint64_t ibFlushes = 0;        ///< Figure 9
    double readUniq = 0;           ///< Figure 10
    double writeUniq = 0;
    double vrfUniq = 0;            ///< combined reads+writes

    uint64_t dataFootprint = 0; ///< Table 6 (bytes)
    double simdUtil = 0;        ///< Table 6

    uint64_t l1iMisses = 0;
    uint64_t l1iHits = 0;
    uint64_t hazardViolations = 0;
    uint64_t scoreboardStalls = 0;
    uint64_t waitcntStalls = 0;
    uint64_t ibEmptyStalls = 0;
    uint64_t fuConflictStalls = 0;
    uint64_t coalescedLines = 0;
    uint64_t busyCycles = 0;

    std::vector<runtime::LaunchRecord> launches;
};

/** Observability hook: called with the live Runtime after a runApp
 *  simulation completes (stats collected, process still alive). Used
 *  by the obs/ exporters to dump the full stats tree — AppResult only
 *  carries the per-figure aggregates. */
using RuntimeInspector = std::function<void(runtime::Runtime &)>;

/** Run a workload at one ISA level on a fresh simulated process.
 *  @param inspect optional hook run just before the Runtime is torn
 *  down (see RuntimeInspector); must not mutate simulation state. */
AppResult runApp(const std::string &workload, IsaKind isa,
                 const GpuConfig &cfg = GpuConfig{},
                 const workloads::WorkloadScale &scale = {},
                 const RuntimeInspector &inspect = {});

/** Convenience: both ISAs, same workload. Index 0 = HSAIL, 1 = GCN3.
 *  Verifies cross-ISA result agreement; throws IsaMismatchError with a
 *  structured MismatchReport when the two levels disagree. */
std::pair<AppResult, AppResult>
runBoth(const std::string &workload,
        const GpuConfig &cfg = GpuConfig{},
        const workloads::WorkloadScale &scale = {});

/**
 * Structured record of the first cross-ISA disagreement between an
 * HSAIL and a GCN3 run of the same workload. The simulator's core
 * differential invariant is that functional results are
 * abstraction-invariant: both levels must verify and must produce
 * byte-identical output digests (only timing/microarchitecture stats
 * may differ). This pinpoints the first field that broke that
 * invariant rather than leaving the user to diff 30 stats by hand.
 */
struct MismatchReport
{
    std::string workload;
    std::string field;     ///< first diverging field, e.g. "digest"
    int launchIndex = -1;  ///< launch-level divergence (-1 = app-level)
    std::string hsailValue;
    std::string gcn3Value;

    std::string format() const;
};

/** Cross-ISA result disagreement (the differential invariant broke). */
class IsaMismatchError : public SimError
{
  public:
    explicit IsaMismatchError(MismatchReport report);

    const MismatchReport &report() const { return report_; }

  private:
    MismatchReport report_;
};

/**
 * Compare the functional-result fields of an HSAIL/GCN3 pair: both
 * verified, equal digests, same launch count, same per-launch kernel
 * sequence. @throws IsaMismatchError naming the first divergence.
 * Timing fields are deliberately not compared — they legitimately
 * differ between abstraction levels (that is the paper's point).
 */
void checkIsaAgreement(const AppResult &hsail, const AppResult &gcn3);

} // namespace last::sim

#endif // LAST_SIM_EXPERIMENT_HH
