#include "sim/orchestrate.hh"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/atomic_file.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "obs/json.hh"

namespace last::sim
{

namespace
{

using Clock = std::chrono::steady_clock;

[[noreturn]] void
failCfg(const std::string &msg)
{
    throw ConfigError(msg, __FILE__, __LINE__);
}

uint64_t
splitmix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::string
shardManifestPath(const OrchestrateOptions &opts, unsigned i)
{
    return opts.workDir + "/shard_" + std::to_string(i) + ".json";
}

std::string
shardPartPath(const OrchestrateOptions &opts, unsigned i)
{
    return opts.workDir + "/part_" + std::to_string(i) + ".csv";
}

std::string
journalPath(const OrchestrateOptions &opts)
{
    return opts.workDir + "/journal.jsonl";
}

} // namespace

const char *
exitClassName(ExitClass cls)
{
    switch (cls) {
      case ExitClass::Clean: return "clean";
      case ExitClass::Quarantine: return "quarantine";
      case ExitClass::Failure: return "failure";
      case ExitClass::Crash: return "crash";
      case ExitClass::Timeout: return "timeout";
    }
    return "unknown";
}

std::string
ExitStatus::describe() const
{
    std::string s = exitClassName(cls);
    if (sig)
        s += std::string(" (signal ") + std::to_string(sig) + ")";
    else if (code >= 0)
        s += std::string(" (exit ") + std::to_string(code) + ")";
    return s;
}

ExitStatus
classifyExit(int waitStatus, bool killedByDeadline)
{
    ExitStatus es;
    if (WIFEXITED(waitStatus)) {
        es.code = WEXITSTATUS(waitStatus);
        es.cls = es.code == 0  ? ExitClass::Clean
                 : es.code == 2 ? ExitClass::Quarantine
                                : ExitClass::Failure;
    } else if (WIFSIGNALED(waitStatus)) {
        es.sig = WTERMSIG(waitStatus);
        es.cls = ExitClass::Crash;
    }
    // The wait status of a worker we shot at its deadline says
    // "SIGKILL crash"; our own intent is the better label.
    if (killedByDeadline)
        es.cls = ExitClass::Timeout;
    return es;
}

uint64_t
BackoffPolicy::delayMs(unsigned shard, unsigned attempt) const
{
    if (attempt == 0 || baseMs == 0)
        return 0;
    // Capped exponential: baseMs * 2^(attempt-1), saturating at capMs
    // (and against shift overflow long before that matters).
    unsigned exp = std::min(attempt - 1, 40u);
    uint64_t raw = baseMs;
    while (exp-- > 0) {
        if (raw >= capMs / 2 + 1) {
            raw = capMs;
            break;
        }
        raw *= 2;
    }
    raw = std::min(raw, capMs);
    // Deterministic jitter in [raw/2, raw]: reproducible, but failing
    // shards never retry in lockstep.
    uint64_t h = splitmix64(seed ^ (uint64_t(shard) << 32) ^ attempt);
    uint64_t half = raw / 2;
    return half + (half ? h % (raw - half + 1) : raw ? h % (raw + 1) : 0);
}

Journal::~Journal()
{
    if (fd >= 0)
        ::close(fd);
}

void
Journal::open(const std::string &path, bool truncate)
{
    if (fd >= 0)
        ::close(fd);
    int flags = O_WRONLY | O_CREAT | O_APPEND | (truncate ? O_TRUNC : 0);
    fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0)
        failCfg("cannot open journal " + path + ": " +
                std::strerror(errno));
    path_ = path;
}

void
Journal::append(const std::string &jsonLine)
{
    if (fd < 0)
        failCfg("journal append before open");
    std::string line = jsonLine + "\n";
    const char *p = line.data();
    size_t left = line.size();
    while (left > 0) {
        ssize_t n = ::write(fd, p, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            failCfg("journal " + path_ + " write failed: " +
                    std::strerror(errno));
        }
        p += n;
        left -= size_t(n);
    }
    // The transition must be durable before the supervisor acts on it;
    // fdatasync (not fsync) — the journal's length changes every
    // append anyway, and data durability is what resume needs.
    if (::fdatasync(fd) != 0)
        failCfg("journal " + path_ + " fdatasync failed: " +
                std::strerror(errno));
}

std::vector<jsonin::JsonValue>
loadJournal(const std::string &path)
{
    std::ifstream f(path);
    if (!f)
        return {};
    std::ostringstream buf;
    buf << f.rdbuf();
    const std::string text = buf.str();

    struct Line
    {
        size_t offset;
        std::string text;
        bool terminated;
    };
    std::vector<Line> lines;
    size_t pos = 0;
    while (pos < text.size()) {
        size_t nl = text.find('\n', pos);
        if (nl == std::string::npos) {
            lines.push_back({pos, text.substr(pos), false});
            break;
        }
        lines.push_back({pos, text.substr(pos, nl - pos), true});
        pos = nl + 1;
    }

    std::vector<jsonin::JsonValue> out;
    for (size_t i = 0; i < lines.size(); ++i) {
        const Line &ln = lines[i];
        const bool last = i + 1 == lines.size();
        if (!ln.terminated) {
            // Only possible on the last line; the crash-mid-append
            // signature. The journal loses its newest event, never an
            // older one.
            warn("journal %s has a torn final line at byte %zu; "
                 "dropping it",
                 path.c_str(), ln.offset);
            break;
        }
        try {
            out.push_back(jsonin::parseJson(ln.text, path));
        } catch (const SimError &e) {
            if (last) {
                warn("journal %s has an unparseable final line (%s); "
                     "dropping it",
                     path.c_str(), e.message().c_str());
                break;
            }
            throw ConfigError("journal " + path +
                                  " is corrupt before its tail: " +
                                  e.message(),
                              __FILE__, __LINE__);
        }
    }
    return out;
}

bool
verifyShardCache(const std::string &path, const ShardManifest &m,
                 std::string *why)
{
    auto no = [&](const std::string &reason) {
        if (why)
            *why = reason;
        return false;
    };
    std::ifstream f(path);
    if (!f)
        return no("missing");
    BenchCacheFile cache;
    try {
        readBenchCacheStrict(f, cache, path);
    } catch (const SimError &e) {
        return no(e.message());
    }
    if (cache.rows.size() != m.entries.size())
        return no("row count " + std::to_string(cache.rows.size()) +
                  " does not match the manifest's " +
                  std::to_string(m.entries.size()));
    if (!m.entries.empty() &&
        cache.scale != m.entries[0].scaleFactor)
        return no("scale mismatch");
    for (const ShardEntry &e : m.entries) {
        CacheKey key = specCacheKey(specFromEntry(e));
        if (!cache.find(key))
            return no("missing row for " + e.workload + "/" +
                      isaName(e.isa));
    }
    return true;
}

std::string
selfExePath()
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        failCfg("cannot resolve /proc/self/exe");
    buf[n] = '\0';
    return buf;
}

namespace
{

enum class Phase { Pending, Running, Done, GaveUp };

struct ShardState
{
    Phase phase = Phase::Pending;
    unsigned attempts = 0;
    pid_t pid = -1;
    Clock::time_point deadline = Clock::time_point::max();
    Clock::time_point notBefore{}; ///< backoff gate for the next spawn
    bool deadlineKilled = false;
    ExitClass lastClass = ExitClass::Failure;
    std::string lastFailure;
    bool quarantined = false;
    bool skipped = false;
};

std::string
journalHeader(const OrchestrateOptions &opts, size_t totalSpecs)
{
    std::ostringstream os;
    os << "{\"schema\":\"" << JournalSchema
       << "\",\"shard_count\":" << opts.shards
       << ",\"total_specs\":" << totalSpecs
       << ",\"scale\":" << obs::jsonNumber(opts.scale)
       << ",\"seed\":" << opts.seed << "}";
    return os.str();
}

std::string
eventLine(const char *event, unsigned shard, unsigned attempt,
          const std::string &extra = "")
{
    std::ostringstream os;
    os << "{\"event\":\"" << event << "\",\"shard\":" << shard
       << ",\"attempt\":" << attempt << extra << "}";
    return os.str();
}

pid_t
spawnWorker(const OrchestrateOptions &opts, const std::string &workerExe,
            unsigned shard, unsigned attempt)
{
    std::vector<std::string> argv;
    if (!opts.chaosExec.empty())
        argv.push_back(opts.chaosExec);
    argv.push_back(workerExe);
    argv.push_back("run");
    argv.push_back(shardManifestPath(opts, shard));
    // The worker's own partial from an earlier attempt warm-starts the
    // retry; a torn partial just warns and re-simulates (readBenchCache
    // is the tolerant wrapper in the worker).
    argv.push_back("--cache");
    argv.push_back(shardPartPath(opts, shard));
    argv.push_back("--out");
    argv.push_back(shardPartPath(opts, shard));
    argv.push_back("--jobs");
    argv.push_back(std::to_string(opts.jobsPerWorker));

    pid_t pid = ::fork();
    if (pid < 0)
        failCfg(std::string("fork failed: ") + std::strerror(errno));
    if (pid == 0) {
        // Child. The chaos wrapper (if any) reads these to decide
        // whether this particular (shard, attempt) dies, hangs, or
        // truncates its output.
        ::setenv("LAST_CHAOS_SHARD", std::to_string(shard).c_str(), 1);
        ::setenv("LAST_CHAOS_ATTEMPT", std::to_string(attempt).c_str(),
                 1);
        std::vector<char *> cargv;
        cargv.reserve(argv.size() + 1);
        for (std::string &a : argv)
            cargv.push_back(a.data());
        cargv.push_back(nullptr);
        ::execv(cargv[0], cargv.data());
        std::fprintf(stderr, "orchestrate: exec %s failed: %s\n",
                     cargv[0], std::strerror(errno));
        ::_exit(127);
    }
    return pid;
}

const char *
gaveUpErrorKind(ExitClass cls)
{
    switch (cls) {
      case ExitClass::Timeout: return "worker-timeout";
      case ExitClass::Crash: return "worker-crash";
      default: return "worker-failure";
    }
}

} // namespace

CampaignOutcome
runCampaign(const OrchestrateOptions &opts)
{
    if (opts.shards == 0)
        failCfg("orchestrate: shard count must be >= 1");
    if (opts.outPath.empty())
        failCfg("orchestrate: --out is required");
    const std::string workerExe =
        opts.workerExe.empty() ? selfExePath() : opts.workerExe;

    // Plan. The manifests are deterministic, so rewriting them on
    // resume reproduces the same bytes — and heals a torn manifest.
    std::vector<RunSpec> specs = opts.matrix;
    if (specs.empty()) {
        specs = canonicalMatrix(opts.scale, opts.seed);
        for (RunSpec &s : specs) {
            s.scale.ldsStrideWords = opts.ldsStrideWords;
            s.scale.ldsPadWords = opts.ldsPadWords;
        }
    }
    std::vector<ShardManifest> manifests =
        makeShardManifests(specs, opts.shards);

    ::mkdir(opts.workDir.c_str(), 0755); // EEXIST is fine

    // Resume sanity: the journal header must describe this campaign.
    const std::string jpath = journalPath(opts);
    if (opts.resume) {
        auto lines = loadJournal(jpath);
        if (!lines.empty()) {
            const jsonin::JsonValue &h = lines[0];
            std::string schema = jsonin::asString(
                jsonin::require(h, "schema", jpath), "schema", jpath);
            uint64_t shards = jsonin::asU64(
                jsonin::require(h, "shard_count", jpath), "shard_count",
                jpath);
            uint64_t total = jsonin::asU64(
                jsonin::require(h, "total_specs", jpath), "total_specs",
                jpath);
            uint64_t seed = jsonin::asU64(
                jsonin::require(h, "seed", jpath), "seed", jpath);
            if (schema != JournalSchema || shards != opts.shards ||
                total != specs.size() || seed != opts.seed)
                failCfg("journal " + jpath +
                        " describes a different campaign (schema " +
                        schema + ", " + std::to_string(shards) +
                        " shards, " + std::to_string(total) +
                        " specs, seed " + std::to_string(seed) +
                        ") — refusing to resume over it");
        }
    }

    for (const ShardManifest &m : manifests)
        atomicWriteFile(shardManifestPath(opts, m.shardIndex),
                        [&](std::ostream &os) {
                            writeShardManifest(os, m);
                        });

    Journal journal;
    journal.open(jpath, /*truncate=*/!opts.resume);
    if (!opts.resume)
        journal.append(journalHeader(opts, specs.size()));
    else
        journal.append(eventLine("resumed", 0, 0));

    CampaignOutcome outcome;
    std::vector<ShardState> st(opts.shards);

    // Resume skip: the on-disk artifact, not journal narrative, is
    // what earns a skip — a cache that verifies fully accounts for
    // its shard no matter how the previous supervisor died.
    if (opts.resume) {
        for (unsigned i = 0; i < opts.shards; ++i) {
            std::string why;
            if (verifyShardCache(shardPartPath(opts, i), manifests[i],
                                 &why)) {
                st[i].phase = Phase::Done;
                st[i].skipped = true;
                ++outcome.skippedOnResume;
                journal.append(eventLine("skipped", i, 0));
                inform("orchestrate: shard %u cache verifies; "
                       "skipping",
                       i);
            } else {
                inform("orchestrate: shard %u needs work (%s)", i,
                       why.c_str());
            }
        }
    }

    auto countRunning = [&]() {
        unsigned n = 0;
        for (const ShardState &s : st)
            n += s.phase == Phase::Running;
        return n;
    };
    auto anyLeft = [&]() {
        for (const ShardState &s : st)
            if (s.phase == Phase::Pending || s.phase == Phase::Running)
                return true;
        return false;
    };

    auto handleExit = [&](unsigned i, int waitStatus) {
        ShardState &s = st[i];
        ExitStatus es = classifyExit(waitStatus, s.deadlineKilled);
        s.pid = -1;
        s.lastClass = es.cls;

        if (es.cls == ExitClass::Clean ||
            es.cls == ExitClass::Quarantine) {
            std::string why;
            if (verifyShardCache(shardPartPath(opts, i), manifests[i],
                                 &why)) {
                s.phase = Phase::Done;
                s.quarantined = es.cls == ExitClass::Quarantine;
                journal.append(eventLine(
                    "done", i, s.attempts,
                    std::string(",\"quarantined\":") +
                        (s.quarantined ? "true" : "false")));
                inform("orchestrate: shard %u %s after attempt %u", i,
                       es.describe().c_str(), s.attempts);
                return;
            }
            // Exited happy but the artifact doesn't verify (torn or
            // truncated output) — that's a failed attempt.
            es.cls = ExitClass::Failure;
            s.lastClass = ExitClass::Failure;
            s.lastFailure = "output verification failed: " + why;
        } else {
            s.lastFailure = es.describe();
        }

        journal.append(eventLine(
            "failed", i, s.attempts,
            ",\"class\":\"" + std::string(exitClassName(es.cls)) +
                "\",\"code\":" + std::to_string(es.code) +
                ",\"signal\":" + std::to_string(es.sig) +
                ",\"detail\":\"" + obs::jsonEscape(s.lastFailure) +
                "\""));

        if (opts.backoff.giveUp(s.attempts)) {
            s.phase = Phase::GaveUp;
            journal.append(eventLine("gaveup", i, s.attempts));
            warn("orchestrate: shard %u gave up after %u attempts "
                 "(%s); degrading to quarantine rows",
                 i, s.attempts, s.lastFailure.c_str());
        } else {
            uint64_t delay = opts.backoff.delayMs(i, s.attempts);
            s.phase = Phase::Pending;
            s.notBefore =
                Clock::now() + std::chrono::milliseconds(delay);
            ++outcome.retries;
            warn("orchestrate: shard %u attempt %u %s; retrying in "
                 "%llu ms",
                 i, s.attempts, s.lastFailure.c_str(),
                 (unsigned long long)delay);
        }
    };

    while (anyLeft()) {
        Clock::time_point now = Clock::now();

        // Spawn every eligible pending shard.
        for (unsigned i = 0; i < opts.shards; ++i) {
            ShardState &s = st[i];
            if (s.phase != Phase::Pending || now < s.notBefore)
                continue;
            if (opts.maxParallel && countRunning() >= opts.maxParallel)
                break;
            ++s.attempts;
            s.deadlineKilled = false;
            s.pid = spawnWorker(opts, workerExe, i, s.attempts);
            s.deadline = opts.workerTimeoutMs
                             ? now + std::chrono::milliseconds(
                                         opts.workerTimeoutMs)
                             : Clock::time_point::max();
            s.phase = Phase::Running;
            journal.append(eventLine(
                "running", i, s.attempts,
                ",\"pid\":" + std::to_string(s.pid)));
        }

        // Poll running workers; enforce deadlines. A hung worker dies
        // within one poll interval of its deadline: this loop runs at
        // pollIntervalMs and the kill is unconditional once `now`
        // passes the deadline.
        for (unsigned i = 0; i < opts.shards; ++i) {
            ShardState &s = st[i];
            if (s.phase != Phase::Running)
                continue;
            int ws = 0;
            pid_t r = ::waitpid(s.pid, &ws, WNOHANG);
            if (r == s.pid) {
                handleExit(i, ws);
                continue;
            }
            if (r < 0) {
                // Lost track of the child (shouldn't happen); count it
                // as a crash so the retry machinery owns the mess. A
                // raw status of SIGKILL reads as WIFSIGNALED(SIGKILL).
                handleExit(i, SIGKILL);
                continue;
            }
            if (Clock::now() >= s.deadline) {
                ::kill(s.pid, SIGKILL);
                s.deadlineKilled = true;
                ::waitpid(s.pid, &ws, 0); // SIGKILL: reaps promptly
                handleExit(i, ws);
            }
        }

        if (anyLeft())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(opts.pollIntervalMs));
    }

    // Merge. Done shards contribute their verified caches; given-up
    // shards degrade into synthesized quarantine rows so the merged
    // artifact still accounts for every spec in the matrix.
    std::vector<BenchCacheFile> parts;
    parts.reserve(opts.shards);
    for (unsigned i = 0; i < opts.shards; ++i) {
        ShardOutcome so;
        so.shard = i;
        so.attempts = st[i].attempts;
        so.skipped = st[i].skipped;
        so.lastFailure = st[i].lastFailure;
        if (st[i].phase == Phase::Done) {
            so.done = true;
            std::ifstream f(shardPartPath(opts, i));
            BenchCacheFile part;
            readBenchCacheStrict(f, part, shardPartPath(opts, i));
            so.quarantined = false;
            for (const CachedRun &row : part.rows)
                so.quarantined |= row.result.quarantined;
            parts.push_back(std::move(part));
        } else {
            so.gaveUp = true;
            so.quarantined = true;
            ++outcome.gaveUp;
            BenchCacheFile part;
            part.scale = manifests[i].entries.empty()
                             ? 1.0
                             : manifests[i].entries[0].scaleFactor;
            for (const ShardEntry &e : manifests[i].entries) {
                CachedRun row;
                row.key = specCacheKey(specFromEntry(e));
                AppResult &r = row.result;
                r.workload = e.workload;
                r.isa = e.isa;
                r.quarantined = true;
                r.errorKind = gaveUpErrorKind(st[i].lastClass);
                r.errorMessage =
                    "shard " + std::to_string(i) + " gave up after " +
                    std::to_string(st[i].attempts) + " attempts (" +
                    st[i].lastFailure + ")";
                part.rows.push_back(std::move(row));
            }
            parts.push_back(std::move(part));
        }
        outcome.shards.push_back(std::move(so));
    }

    outcome.merged = mergeBenchCaches(parts);
    for (const CachedRun &row : outcome.merged.rows)
        outcome.quarantinedRows += row.result.quarantined;

    atomicWriteFile(opts.outPath, [&](std::ostream &os) {
        writeBenchCache(os, outcome.merged);
    });
    if (!opts.divergePath.empty()) {
        auto reports =
            divergenceFromCache(outcome.merged, opts.threshold);
        atomicWriteFile(opts.divergePath, [&](std::ostream &os) {
            obs::writeDivergenceJsonArray(os, reports);
        });
    }
    journal.append("{\"event\":\"merged\",\"rows\":" +
                   std::to_string(outcome.merged.rows.size()) +
                   ",\"quarantined\":" +
                   std::to_string(outcome.quarantinedRows) + "}");
    return outcome;
}

} // namespace last::sim
