/**
 * @file
 * Deterministic, seed-driven fault injection.
 *
 * A FaultPlan is an inert description of faults to strike a single
 * simulation: memory bit flips at a chosen cycle, delayed or dropped
 * cache responses, and wavefronts wedged at a chosen cycle (modelling
 * barrier mismatches / lost waitcnt releases — the failure classes
 * that otherwise hang a simulator silently). The plan is attached to a
 * run through GpuConfig::faultPlan; the GPU applies wedges and bit
 * flips on the cycle loop and forwards cache-response faults to the
 * targeted CU's L1D at construction. Plans are plain data: the same
 * plan against the same spec produces bit-identical outcomes, on any
 * worker count.
 *
 * Purpose: prove the robustness layer end to end. A wedged wavefront
 * must trip the forward-progress watchdog and produce a DeadlockError
 * whose dump names the culprit; a dropped cache response must deadlock
 * at the dependency model (scoreboard stall on HSAIL, s_waitcnt on
 * GCN3); a data bit flip must fail verification identically at both
 * ISA levels (functional results are abstraction-invariant); a timing
 * fault must leave digests untouched while shifting cycle counts by
 * ISA-dependent amounts — exactly the similar/dissimilar statistic
 * split the paper predicts.
 */

#ifndef LAST_SIM_FAULTINJECT_HH
#define LAST_SIM_FAULTINJECT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace last::sim
{

/** Response latency standing in for a response that never arrives:
 *  far beyond any watchdog budget, so the dependency model wedges and
 *  the watchdog - not the event - resolves the run. */
constexpr Cycle DroppedResponseLatency = Cycle(1) << 50;

enum class FaultKind
{
    MemBitFlip,     ///< flip one bit of functional memory at a cycle
    CacheDelay,     ///< add latency to L1D responses of one CU
    CacheDrop,      ///< L1D responses of one CU never arrive
    WedgeWavefront, ///< a wavefront stops issuing forever at a cycle
};

const char *faultKindName(FaultKind kind);

struct Fault
{
    FaultKind kind = FaultKind::MemBitFlip;
    Cycle cycle = 0; ///< when the fault strikes (window start for
                     ///< cache faults)

    /** @{ MemBitFlip. */
    Addr addr = 0;
    unsigned bit = 0; ///< bit index within the byte at addr (0-7)
    /** @} */

    /** @{ CacheDelay / CacheDrop / WedgeWavefront target. */
    unsigned cu = 0;
    /** @} */

    /** @{ CacheDelay/CacheDrop: number of affected accesses at or
     *  after `cycle` (0 = every access), and the added latency. */
    unsigned count = 0;
    Cycle extraLatency = 0;
    /** @} */

    /** WedgeWavefront: preferred WF slot (falls back to the first
     *  active slot if this one is empty when the fault strikes). */
    unsigned wfSlot = 0;

    std::string describe() const;
};

struct FaultPlan
{
    std::vector<Fault> faults;

    bool empty() const { return faults.empty(); }
    FaultPlan &add(const Fault &f)
    {
        faults.push_back(f);
        return *this;
    }

    /** One-line description of every fault in the plan. */
    std::string describe() const;

    /** @{ Single-fault plan builders. */
    static FaultPlan wedge(unsigned cu, unsigned wfSlot, Cycle cycle);
    static FaultPlan bitFlip(Addr addr, unsigned bit, Cycle cycle);
    static FaultPlan cacheDelay(unsigned cu, Cycle cycle, Cycle extra,
                                unsigned count = 0);
    static FaultPlan cacheDrop(unsigned cu, Cycle cycle,
                               unsigned count = 1);
    /** @} */

    /**
     * Seed-driven plan generation: n faults of mixed kinds with
     * cycles in [0, maxCycle), bit-flip addresses in [addrLo, addrHi),
     * CU indices in [0, numCus). Identical seeds produce identical
     * plans (the generator is a private xorshift64* stream), so a
     * fault campaign is reproducible from its seed list alone.
     */
    static FaultPlan random(uint64_t seed, unsigned n, Cycle maxCycle,
                            Addr addrLo, Addr addrHi, unsigned numCus,
                            unsigned wfSlots);
};

} // namespace last::sim

#endif // LAST_SIM_FAULTINJECT_HH
