/**
 * @file
 * Process-wide kernel-artifact cache.
 *
 * Every (workload, isa, scale) run used to rebuild the identical HSAIL
 * program and re-run the GCN3 finalizer (register allocation, ABI
 * expansion, waitcnt insertion). Those artifacts are pure functions of
 * the key, so the cache memoizes them once and hands out
 * shared_ptr<const> views to every subsequent run — including worker
 * pool jobs running concurrently (the map is mutex-protected and the
 * artifacts are immutable; the load-address publish is write-once, see
 * arch::KernelCode::setCodeBase).
 *
 * Soundness is checked, not assumed: each entry records a content
 * digest of the builder's input (IL program + the config fields the
 * finalizer reads), and a hit whose digest differs from the caller's
 * panics — a silent wrong-artifact reuse would corrupt every statistic
 * downstream. Fault-injection runs bypass the cache entirely
 * (Workload::prepare checks cfg.faultPlan) so perturbed runs can never
 * share state with clean ones.
 */

#ifndef LAST_SIM_ARTIFACT_CACHE_HH
#define LAST_SIM_ARTIFACT_CACHE_HH

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "arch/kernel_code.hh"
#include "common/types.hh"

namespace last::sim
{

/** Identity of one prepared kernel artifact. `seq` is the index of
 *  the prepare() call within one workload run: a workload's kernel
 *  build order is deterministic, so (workload, isa, scale, params,
 *  seq) names one artifact. `params` digests every kernel-shaping
 *  knob beyond the scale (e.g. ldsswizzle's stride/padding, which are
 *  IL immediates) so parameter variants of one workload get distinct
 *  entries instead of tripping the digest-soundness panic. */
struct ArtifactKey
{
    std::string workload;
    IsaKind isa;
    double scale;
    unsigned seq;
    uint64_t params = 0;
};

class ArtifactCache
{
  public:
    using Artifact = std::shared_ptr<const arch::KernelCode>;
    using Builder = std::function<Artifact()>;

    static ArtifactCache &instance();

    /**
     * Return the cached artifact for `key`, building it via `build` on
     * the first request. `digest` must summarize everything the build
     * depends on; a hit with a mismatching digest panics (unsound key).
     * The builder runs under the cache lock: concurrent same-key
     * requests block and then share the one artifact, so equal keys
     * always yield pointer-identical results.
     */
    Artifact getOrBuild(const ArtifactKey &key, uint64_t digest,
                        const Builder &build);

    /** Drop all entries (tests). Outstanding shared_ptrs stay valid. */
    void clear();

    uint64_t hits() const { return nHits.load(); }
    uint64_t misses() const { return nMisses.load(); }

    /** @{ Global switch (default on). Off, Workload::prepare builds
     *  privately — used by tests proving cache-on/off identity. */
    static bool enabled();
    static void setEnabled(bool on);
    /** @} */

  private:
    struct Entry
    {
        uint64_t digest;
        Artifact code;
    };

    mutable std::mutex mu;
    std::unordered_map<std::string, Entry> entries;
    std::atomic<uint64_t> nHits{0};
    std::atomic<uint64_t> nMisses{0};
};

} // namespace last::sim

#endif // LAST_SIM_ARTIFACT_CACHE_HH
