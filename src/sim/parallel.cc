#include "sim/parallel.hh"

#include <atomic>
#include <cstdlib>
#include <thread>

namespace last::sim
{

unsigned
defaultJobs()
{
    if (const char *s = std::getenv("LAST_JOBS")) {
        long v = std::atol(s);
        if (v >= 1)
            return unsigned(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

void
parallelInvoke(const std::vector<std::function<void()>> &tasks,
               unsigned jobs)
{
    const size_t n = tasks.size();
    if (jobs == 0)
        jobs = defaultJobs();
    if (jobs > n)
        jobs = unsigned(n);

    // Per-task capture slots: each index is written by exactly one
    // worker (the one that claimed it), so no lock is needed.
    std::vector<std::exception_ptr> errors(n);
    auto runTask = [&](size_t i) {
        try {
            tasks[i]();
        } catch (...) {
            errors[i] = std::current_exception();
        }
    };

    if (jobs <= 1) {
        for (size_t i = 0; i < n; ++i)
            runTask(i);
    } else {
        std::atomic<size_t> cursor{0};
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned t = 0; t < jobs; ++t)
            pool.emplace_back([&] {
                while (true) {
                    size_t i =
                        cursor.fetch_add(1, std::memory_order_relaxed);
                    if (i >= n)
                        return;
                    runTask(i);
                }
            });
        for (auto &th : pool)
            th.join();
    }

    for (const auto &e : errors)
        if (e)
            std::rethrow_exception(e);
}

std::vector<AppResult>
runMany(const std::vector<RunSpec> &specs, unsigned jobs)
{
    std::vector<AppResult> out(specs.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(specs.size());
    for (size_t i = 0; i < specs.size(); ++i)
        tasks.push_back([&specs, &out, i] {
            const RunSpec &s = specs[i];
            out[i] = runApp(s.workload, s.isa, s.cfg, s.scale);
        });
    parallelInvoke(tasks, jobs);
    return out;
}

std::pair<AppResult, AppResult>
runBothParallel(const std::string &workload, const GpuConfig &cfg,
                const workloads::WorkloadScale &scale, unsigned jobs)
{
    auto rs = runMany({{workload, IsaKind::HSAIL, cfg, scale},
                       {workload, IsaKind::GCN3, cfg, scale}},
                      jobs);
    return {std::move(rs[0]), std::move(rs[1])};
}

} // namespace last::sim
