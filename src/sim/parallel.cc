#include "sim/parallel.hh"

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <thread>

#include "common/error.hh"

namespace last::sim
{

unsigned
defaultJobs()
{
    if (const char *s = std::getenv("LAST_JOBS")) {
        long v = std::atol(s);
        if (v >= 1)
            return unsigned(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

std::vector<std::exception_ptr>
parallelInvokeCollect(const std::vector<std::function<void()>> &tasks,
                      unsigned jobs)
{
    const size_t n = tasks.size();
    if (jobs == 0)
        jobs = defaultJobs();
    if (jobs > n)
        jobs = unsigned(n);

    // Per-task capture slots: each index is written by exactly one
    // worker (the one that claimed it), so no lock is needed.
    std::vector<std::exception_ptr> errors(n);
    auto runTask = [&](size_t i) {
        try {
            tasks[i]();
        } catch (...) {
            errors[i] = std::current_exception();
        }
    };

    if (jobs <= 1) {
        for (size_t i = 0; i < n; ++i)
            runTask(i);
    } else {
        std::atomic<size_t> cursor{0};
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned t = 0; t < jobs; ++t)
            pool.emplace_back([&] {
                while (true) {
                    size_t i =
                        cursor.fetch_add(1, std::memory_order_relaxed);
                    if (i >= n)
                        return;
                    runTask(i);
                }
            });
        for (auto &th : pool)
            th.join();
    }

    return errors;
}

void
parallelInvoke(const std::vector<std::function<void()>> &tasks,
               unsigned jobs)
{
    for (const auto &e : parallelInvokeCollect(tasks, jobs))
        if (e)
            std::rethrow_exception(e);
}

std::vector<AppResult>
runMany(const std::vector<RunSpec> &specs, unsigned jobs)
{
    std::vector<AppResult> out(specs.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(specs.size());
    for (size_t i = 0; i < specs.size(); ++i)
        tasks.push_back([&specs, &out, i] {
            const RunSpec &s = specs[i];
            out[i] = runApp(s.workload, s.isa, s.cfg, s.scale);
        });
    parallelInvoke(tasks, jobs);
    return out;
}

std::pair<AppResult, AppResult>
runBothParallel(const std::string &workload, const GpuConfig &cfg,
                const workloads::WorkloadScale &scale, unsigned jobs)
{
    auto rs = runMany({{workload, IsaKind::HSAIL, cfg, scale},
                       {workload, IsaKind::GCN3, cfg, scale}},
                      jobs);
    // The differential invariant: functional results must be identical
    // across abstraction levels. Catch divergence at the source with a
    // structured report rather than letting it surface as a confusing
    // figure 20 tables later.
    checkIsaAgreement(rs[0], rs[1]);
    return {std::move(rs[0]), std::move(rs[1])};
}

namespace
{

/** Classify a captured exception for the quarantine record. */
void
describeError(const std::exception_ptr &e, std::string &kind,
              std::string &message, std::string &detail)
{
    try {
        std::rethrow_exception(e);
    } catch (const DeadlockError &d) {
        kind = d.kindName();
        message = d.message();
        detail = d.dump();
    } catch (const SimError &s) {
        kind = s.kindName();
        message = s.message();
    } catch (const std::exception &x) {
        kind = "exception";
        message = x.what();
    } catch (...) {
        kind = "unknown";
        message = "non-standard exception";
    }
}

} // namespace

std::string
QuarantinedRun::format() const
{
    std::ostringstream os;
    os << "  [" << index << "] " << spec.workload << "/"
       << isaName(spec.isa) << ": " << errorKind << ": " << errorMessage;
    if (retried)
        os << "\n      (failed again on the serial retry)";
    return os.str();
}

std::string
SweepReport::format() const
{
    if (allOk())
        return "";
    std::ostringstream os;
    os << quarantined.size() << " of " << results.size()
       << " sweep entries quarantined";
    if (recoveredOnRetry)
        os << " (" << recoveredOnRetry
           << " more failed in parallel but passed the serial retry)";
    os << ":\n";
    for (const auto &q : quarantined)
        os << q.format() << "\n";
    return os.str();
}

SweepReport
runSweep(const std::vector<RunSpec> &specs, const SweepOptions &opts)
{
    SweepReport report;
    report.results.resize(specs.size());

    std::vector<std::function<void()>> tasks;
    tasks.reserve(specs.size());
    for (size_t i = 0; i < specs.size(); ++i)
        tasks.push_back([&specs, &report, i] {
            const RunSpec &s = specs[i];
            report.results[i] = runApp(s.workload, s.isa, s.cfg, s.scale);
        });

    auto errors = parallelInvokeCollect(tasks, opts.jobs);

    for (size_t i = 0; i < specs.size(); ++i) {
        if (!errors[i])
            continue;
        bool retried = false;
        if (opts.retryFailed) {
            // One clean serial retry: scheduling-dependent or
            // load-dependent failures (the machine ran out of memory
            // under N concurrent GPUs) may pass on a quiet retry.
            retried = true;
            try {
                const RunSpec &s = specs[i];
                report.results[i] =
                    runApp(s.workload, s.isa, s.cfg, s.scale);
                errors[i] = nullptr;
                ++report.recoveredOnRetry;
                continue;
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
        QuarantinedRun q;
        q.index = i;
        q.spec = specs[i];
        q.retried = retried;
        describeError(errors[i], q.errorKind, q.errorMessage, q.detail);

        // The quarantined slot keeps its spec identity so downstream
        // consumers can tell *what* is missing, but no statistics.
        AppResult &r = report.results[i];
        r = AppResult{};
        r.workload = specs[i].workload;
        r.isa = specs[i].isa;
        r.quarantined = true;
        r.errorKind = q.errorKind;
        r.errorMessage = q.errorMessage;

        report.quarantined.push_back(std::move(q));
    }
    return report;
}

} // namespace last::sim
