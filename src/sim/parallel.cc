#include "sim/parallel.hh"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/error.hh"

namespace last::sim
{

unsigned
defaultJobs()
{
    if (const char *s = std::getenv("LAST_JOBS")) {
        long v = std::atol(s);
        if (v >= 1)
            return unsigned(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

namespace
{

/**
 * One worker's task deque. The owner pops from the head (executing its
 * initial chunk in input order); thieves take the back half, the work
 * the owner would reach last. Tasks here are whole simulations
 * (milliseconds to seconds), so a plain mutex per deque costs nothing
 * measurable and keeps the scheduler trivially TSan-clean — the
 * lock-free Chase-Lev structure would buy latency this workload cannot
 * observe.
 */
struct StealDeque
{
    std::mutex m;
    std::vector<size_t> buf; ///< live range is [head, buf.size())
    size_t head = 0;

    bool
    pop(size_t &out)
    {
        std::lock_guard<std::mutex> lk(m);
        if (head >= buf.size())
            return false;
        out = buf[head++];
        return true;
    }

    /** Move the back half (ceil) of the live range into `into`;
     *  @return number of tasks stolen (0 = nothing to steal). */
    size_t
    stealHalfInto(std::vector<size_t> &into)
    {
        std::lock_guard<std::mutex> lk(m);
        size_t avail = buf.size() - head;
        if (avail == 0)
            return 0;
        size_t take = (avail + 1) / 2;
        into.insert(into.end(), buf.end() - std::ptrdiff_t(take),
                    buf.end());
        buf.resize(buf.size() - take);
        return take;
    }
};

/** Static contiguous partition: worker w owns [lo, hi). */
void
staticChunk(size_t n, unsigned jobs, unsigned w, size_t &lo, size_t &hi)
{
    lo = n * w / jobs;
    hi = n * (w + 1) / jobs;
}

} // namespace

std::vector<std::exception_ptr>
parallelInvokeCollect(const std::vector<std::function<void()>> &tasks,
                      unsigned jobs, PoolStats *stats)
{
    const size_t n = tasks.size();
    if (jobs == 0)
        jobs = defaultJobs();
    if (jobs > n)
        jobs = unsigned(n);
    if (stats)
        *stats = PoolStats{};

    // Per-task capture slots: each index is written by exactly one
    // worker (the one that claimed it), so no lock is needed. The
    // steal schedule decides only *which worker* runs a task, never
    // which slot its result or error lands in — that is the whole
    // determinism argument for input-order result collection.
    std::vector<std::exception_ptr> errors(n);
    auto runTask = [&](size_t i) {
        try {
            tasks[i]();
        } catch (...) {
            errors[i] = std::current_exception();
        }
    };

    if (jobs <= 1) {
        for (size_t i = 0; i < n; ++i)
            runTask(i);
        return errors;
    }

    // Seed each worker's deque with its static chunk (input order, so
    // an undisturbed worker executes exactly the serial schedule), then
    // let exhausted workers steal half of a victim's remaining work.
    std::vector<StealDeque> deques(jobs);
    for (unsigned w = 0; w < jobs; ++w) {
        size_t lo, hi;
        staticChunk(n, jobs, w, lo, hi);
        deques[w].buf.reserve(hi - lo);
        for (size_t i = lo; i < hi; ++i)
            deques[w].buf.push_back(i);
    }

    std::atomic<size_t> pending{n};
    std::atomic<uint64_t> steals{0}, stolenTasks{0};

    auto worker = [&](unsigned self) {
        std::vector<size_t> loot; // scratch for stolen batches
        while (pending.load(std::memory_order_acquire) > 0) {
            size_t i;
            if (deques[self].pop(i)) {
                runTask(i);
                pending.fetch_sub(1, std::memory_order_release);
                continue;
            }
            // Local deque dry: rob the victims, nearest index first.
            bool got = false;
            for (unsigned k = 1; k < jobs && !got; ++k) {
                unsigned victim = (self + k) % jobs;
                loot.clear();
                size_t taken = deques[victim].stealHalfInto(loot);
                if (!taken)
                    continue;
                steals.fetch_add(1, std::memory_order_relaxed);
                stolenTasks.fetch_add(taken,
                                      std::memory_order_relaxed);
                // The loot (the back of the victim's range, ascending)
                // refills our deque; the next pop takes its lowest
                // index first, preserving as much of the input order
                // as stealing allows.
                std::lock_guard<std::mutex> lk(deques[self].m);
                for (size_t j = 0; j < taken; ++j)
                    deques[self].buf.push_back(loot[j]);
                got = true;
            }
            if (!got) {
                // Nothing to steal anywhere, but tasks may still be in
                // flight on other workers (pending > 0): yield rather
                // than spin hot until they finish or release work.
                std::this_thread::yield();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t)
        pool.emplace_back(worker, t);
    for (auto &th : pool)
        th.join();

    if (stats) {
        stats->steals = steals.load();
        stats->stolenTasks = stolenTasks.load();
    }
    return errors;
}

void
parallelInvoke(const std::vector<std::function<void()>> &tasks,
               unsigned jobs)
{
    for (const auto &e : parallelInvokeCollect(tasks, jobs))
        if (e)
            std::rethrow_exception(e);
}

void
parallelInvokeStatic(const std::vector<std::function<void()>> &tasks,
                     unsigned jobs)
{
    const size_t n = tasks.size();
    if (jobs == 0)
        jobs = defaultJobs();
    if (jobs > n)
        jobs = unsigned(n);

    std::vector<std::exception_ptr> errors(n);
    auto runTask = [&](size_t i) {
        try {
            tasks[i]();
        } catch (...) {
            errors[i] = std::current_exception();
        }
    };

    if (jobs <= 1) {
        for (size_t i = 0; i < n; ++i)
            runTask(i);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned w = 0; w < jobs; ++w)
            pool.emplace_back([&, w] {
                size_t lo, hi;
                staticChunk(n, jobs, w, lo, hi);
                for (size_t i = lo; i < hi; ++i)
                    runTask(i);
            });
        for (auto &th : pool)
            th.join();
    }
    for (const auto &e : errors)
        if (e)
            std::rethrow_exception(e);
}

std::vector<AppResult>
runMany(const std::vector<RunSpec> &specs, unsigned jobs)
{
    std::vector<AppResult> out(specs.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(specs.size());
    for (size_t i = 0; i < specs.size(); ++i)
        tasks.push_back([&specs, &out, i] {
            const RunSpec &s = specs[i];
            out[i] = runApp(s.workload, s.isa, s.cfg, s.scale);
        });
    parallelInvoke(tasks, jobs);
    return out;
}

std::pair<AppResult, AppResult>
runBothParallel(const std::string &workload, const GpuConfig &cfg,
                const workloads::WorkloadScale &scale, unsigned jobs)
{
    auto rs = runMany({{workload, IsaKind::HSAIL, cfg, scale},
                       {workload, IsaKind::GCN3, cfg, scale}},
                      jobs);
    // The differential invariant: functional results must be identical
    // across abstraction levels. Catch divergence at the source with a
    // structured report rather than letting it surface as a confusing
    // figure 20 tables later.
    checkIsaAgreement(rs[0], rs[1]);
    return {std::move(rs[0]), std::move(rs[1])};
}

namespace
{

/** Classify a captured exception for the quarantine record. */
void
describeError(const std::exception_ptr &e, std::string &kind,
              std::string &message, std::string &detail)
{
    try {
        std::rethrow_exception(e);
    } catch (const DeadlockError &d) {
        kind = d.kindName();
        message = d.message();
        detail = d.dump();
    } catch (const SimError &s) {
        kind = s.kindName();
        message = s.message();
    } catch (const std::exception &x) {
        kind = "exception";
        message = x.what();
    } catch (...) {
        kind = "unknown";
        message = "non-standard exception";
    }
}

} // namespace

std::string
QuarantinedRun::format() const
{
    std::ostringstream os;
    os << "  [" << index << "] " << spec.workload << "/"
       << isaName(spec.isa) << ": " << errorKind << ": " << errorMessage;
    if (retried)
        os << "\n      (failed again on the serial retry)";
    return os.str();
}

std::string
SweepReport::format() const
{
    if (allOk())
        return "";
    std::ostringstream os;
    os << quarantined.size() << " of " << results.size()
       << " sweep entries quarantined";
    if (recoveredOnRetry)
        os << " (" << recoveredOnRetry
           << " more failed in parallel but passed the serial retry)";
    os << ":\n";
    for (const auto &q : quarantined)
        os << q.format() << "\n";
    return os.str();
}

SweepReport
runSweep(const std::vector<RunSpec> &specs, const SweepOptions &opts)
{
    SweepReport report;
    report.results.resize(specs.size());

    std::vector<std::function<void()>> tasks;
    tasks.reserve(specs.size());
    for (size_t i = 0; i < specs.size(); ++i)
        tasks.push_back([&specs, &report, i] {
            const RunSpec &s = specs[i];
            report.results[i] = runApp(s.workload, s.isa, s.cfg, s.scale);
        });

    auto errors = parallelInvokeCollect(tasks, opts.jobs);

    for (size_t i = 0; i < specs.size(); ++i) {
        if (!errors[i])
            continue;
        bool retried = false;
        if (opts.retryFailed) {
            // One clean serial retry: scheduling-dependent or
            // load-dependent failures (the machine ran out of memory
            // under N concurrent GPUs) may pass on a quiet retry.
            retried = true;
            try {
                const RunSpec &s = specs[i];
                report.results[i] =
                    runApp(s.workload, s.isa, s.cfg, s.scale);
                errors[i] = nullptr;
                ++report.recoveredOnRetry;
                continue;
            } catch (...) {
                errors[i] = std::current_exception();
            }
        }
        QuarantinedRun q;
        q.index = i;
        q.spec = specs[i];
        q.retried = retried;
        describeError(errors[i], q.errorKind, q.errorMessage, q.detail);

        // The quarantined slot keeps its spec identity so downstream
        // consumers can tell *what* is missing, but no statistics.
        AppResult &r = report.results[i];
        r = AppResult{};
        r.workload = specs[i].workload;
        r.isa = specs[i].isa;
        r.quarantined = true;
        r.errorKind = q.errorKind;
        r.errorMessage = q.errorMessage;

        report.quarantined.push_back(std::move(q));
    }
    return report;
}

} // namespace last::sim
