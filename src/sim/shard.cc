#include "sim/shard.hh"

#include <algorithm>
#include <cctype>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/logging.hh"
#include "obs/json.hh"

namespace last::sim
{

namespace
{

// --------------------------------------------------------------------
// A minimal JSON reader for the shard manifest. The repo's other JSON
// surfaces are write-only (obs/json.hh); the manifest is the one
// schema we both produce and consume, so it gets a small recursive-
// descent parser here. Numbers keep their raw literal so 64-bit seeds
// and digests never round-trip through a double.
// --------------------------------------------------------------------

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };
    Kind kind = Kind::Null;
    bool boolean = false;
    std::string text; ///< string value, or the raw number literal
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> members;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : members)
            if (k == key)
                return &v;
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &src) : s(src) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        ws();
        if (p != s.size())
            fail("trailing garbage after JSON value");
        return v;
    }

  private:
    const std::string &s;
    size_t p = 0;

    [[noreturn]] void
    fail(const std::string &what)
    {
        throw std::runtime_error("manifest JSON: " + what +
                                 " at offset " + std::to_string(p));
    }

    void
    ws()
    {
        while (p < s.size() && std::isspace(static_cast<unsigned char>(s[p])))
            ++p;
    }

    char
    peek()
    {
        if (p >= s.size())
            fail("unexpected end of input");
        return s[p];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++p;
    }

    bool
    eat(char c)
    {
        if (p < s.size() && s[p] == c) {
            ++p;
            return true;
        }
        return false;
    }

    JsonValue
    value()
    {
        ws();
        char c = peek();
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == 't' || c == 'f')
            return boolean();
        if (c == 'n') {
            literal("null");
            return JsonValue{};
        }
        return number();
    }

    void
    literal(const char *word)
    {
        for (const char *q = word; *q; ++q)
            if (p >= s.size() || s[p++] != *q)
                fail(std::string("bad literal (expected ") + word + ")");
    }

    JsonValue
    boolean()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        if (peek() == 't') {
            literal("true");
            v.boolean = true;
        } else {
            literal("false");
        }
        return v;
    }

    JsonValue
    number()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        size_t start = p;
        if (eat('-')) {}
        while (p < s.size() &&
               (std::isdigit(static_cast<unsigned char>(s[p])) || s[p] == '.' ||
                s[p] == 'e' || s[p] == 'E' || s[p] == '+' ||
                s[p] == '-'))
            ++p;
        if (p == start)
            fail("expected a number");
        v.text = s.substr(start, p - start);
        return v;
    }

    JsonValue
    string()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        expect('"');
        while (true) {
            if (p >= s.size())
                fail("unterminated string");
            char c = s[p++];
            if (c == '"')
                break;
            if (c == '\\') {
                if (p >= s.size())
                    fail("unterminated escape");
                char e = s[p++];
                switch (e) {
                  case '"': v.text += '"'; break;
                  case '\\': v.text += '\\'; break;
                  case '/': v.text += '/'; break;
                  case 'n': v.text += '\n'; break;
                  case 'r': v.text += '\r'; break;
                  case 't': v.text += '\t'; break;
                  case 'b': v.text += '\b'; break;
                  case 'f': v.text += '\f'; break;
                  case 'u': {
                    if (p + 4 > s.size())
                        fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = s[p++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= unsigned(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= unsigned(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= unsigned(h - 'A' + 10);
                        else
                            fail("bad \\u escape");
                    }
                    // Manifests only ever escape control characters;
                    // encode the code point as UTF-8 for completeness.
                    if (code < 0x80) {
                        v.text += char(code);
                    } else if (code < 0x800) {
                        v.text += char(0xc0 | (code >> 6));
                        v.text += char(0x80 | (code & 0x3f));
                    } else {
                        v.text += char(0xe0 | (code >> 12));
                        v.text += char(0x80 | ((code >> 6) & 0x3f));
                        v.text += char(0x80 | (code & 0x3f));
                    }
                    break;
                  }
                  default: fail("unknown escape");
                }
            } else {
                v.text += c;
            }
        }
        return v;
    }

    JsonValue
    array()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        expect('[');
        ws();
        if (eat(']'))
            return v;
        while (true) {
            v.items.push_back(value());
            ws();
            if (eat(']'))
                return v;
            expect(',');
        }
    }

    JsonValue
    object()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        expect('{');
        ws();
        if (eat('}'))
            return v;
        while (true) {
            ws();
            JsonValue key = string();
            ws();
            expect(':');
            v.members.emplace_back(std::move(key.text), value());
            ws();
            if (eat('}'))
                return v;
            expect(',');
        }
    }
};

const JsonValue &
require(const JsonValue &obj, const std::string &key)
{
    const JsonValue *v = obj.find(key);
    if (!v)
        throw std::runtime_error("manifest JSON: missing field '" + key +
                                 "'");
    return *v;
}

uint64_t
asU64(const JsonValue &v, const std::string &key)
{
    if (v.kind != JsonValue::Kind::Number)
        throw std::runtime_error("manifest JSON: field '" + key +
                                 "' is not a number");
    return std::stoull(v.text);
}

int64_t
asI64(const JsonValue &v, const std::string &key)
{
    if (v.kind != JsonValue::Kind::Number)
        throw std::runtime_error("manifest JSON: field '" + key +
                                 "' is not a number");
    return std::stoll(v.text);
}

double
asDouble(const JsonValue &v, const std::string &key)
{
    if (v.kind != JsonValue::Kind::Number)
        throw std::runtime_error("manifest JSON: field '" + key +
                                 "' is not a number");
    return std::stod(v.text);
}

std::string
asString(const JsonValue &v, const std::string &key)
{
    if (v.kind != JsonValue::Kind::String)
        throw std::runtime_error("manifest JSON: field '" + key +
                                 "' is not a string");
    return v.text;
}

} // namespace

RunSpec
specFromEntry(const ShardEntry &e)
{
    RunSpec s;
    s.workload = e.workload;
    s.isa = e.isa;
    s.scale.factor = e.scaleFactor;
    s.scale.seed = e.seed;
    s.scale.ldsStrideWords = e.ldsStrideWords;
    s.scale.ldsPadWords = e.ldsPadWords;
    return s;
}

std::vector<RunSpec>
canonicalMatrix(double scaleFactor, uint64_t seed)
{
    workloads::WorkloadScale scale{scaleFactor};
    scale.seed = seed;
    std::vector<RunSpec> specs;
    const auto names = workloads::allWorkloadNames();
    specs.reserve(names.size() * 2);
    for (const auto &w : names) {
        specs.push_back({w, IsaKind::HSAIL, GpuConfig{}, scale});
        specs.push_back({w, IsaKind::GCN3, GpuConfig{}, scale});
    }
    return specs;
}

std::vector<ShardManifest>
makeShardManifests(const std::vector<RunSpec> &specs, unsigned shards)
{
    fatal_if(shards == 0, "shard count must be >= 1");
    std::vector<ShardManifest> out(shards);
    for (unsigned i = 0; i < shards; ++i) {
        out[i].shardIndex = i;
        out[i].shardCount = shards;
        out[i].totalSpecs = specs.size();
    }
    for (size_t i = 0; i < specs.size(); ++i) {
        const RunSpec &s = specs[i];
        size_t group = i / 2; // HSAIL/GCN3 pair stays together
        ShardManifest &m = out[group % shards];
        ShardEntry e;
        e.index = i;
        e.workload = s.workload;
        e.isa = s.isa;
        e.scaleFactor = s.scale.factor;
        e.seed = s.scale.seed;
        e.ldsStrideWords = s.scale.ldsStrideWords;
        e.ldsPadWords = s.scale.ldsPadWords;
        m.entries.push_back(std::move(e));
    }
    return out;
}

void
writeShardManifest(std::ostream &os, const ShardManifest &m)
{
    os << "{\n\"schema\":\"" << ShardSchema << "\",\n"
       << "\"shard_index\":" << m.shardIndex << ",\n"
       << "\"shard_count\":" << m.shardCount << ",\n"
       << "\"total_specs\":" << m.totalSpecs << ",\n"
       << "\"entries\":[\n";
    for (size_t i = 0; i < m.entries.size(); ++i) {
        const ShardEntry &e = m.entries[i];
        os << "{\"index\":" << e.index << ",\"workload\":\""
           << obs::jsonEscape(e.workload) << "\",\"isa\":\""
           << isaName(e.isa) << "\",\"scale\":"
           << obs::jsonNumber(e.scaleFactor) << ",\"seed\":" << e.seed
           << ",\"lds_stride\":" << e.ldsStrideWords
           << ",\"lds_pad\":" << e.ldsPadWords << "}";
        if (i + 1 < m.entries.size())
            os << ",";
        os << "\n";
    }
    os << "]}\n";
}

ShardManifest
readShardManifest(std::istream &is)
{
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string src = buf.str();
    JsonValue root = JsonParser(src).parse();
    if (root.kind != JsonValue::Kind::Object)
        throw std::runtime_error("manifest JSON: top level is not an "
                                 "object");
    std::string schema = asString(require(root, "schema"), "schema");
    if (schema != ShardSchema)
        throw std::runtime_error("manifest schema is '" + schema +
                                 "', expected '" + ShardSchema + "'");
    ShardManifest m;
    m.shardIndex =
        unsigned(asU64(require(root, "shard_index"), "shard_index"));
    m.shardCount =
        unsigned(asU64(require(root, "shard_count"), "shard_count"));
    m.totalSpecs =
        size_t(asU64(require(root, "total_specs"), "total_specs"));
    const JsonValue &entries = require(root, "entries");
    if (entries.kind != JsonValue::Kind::Array)
        throw std::runtime_error("manifest JSON: 'entries' is not an "
                                 "array");
    for (const JsonValue &je : entries.items) {
        if (je.kind != JsonValue::Kind::Object)
            throw std::runtime_error("manifest JSON: entry is not an "
                                     "object");
        ShardEntry e;
        e.index = size_t(asU64(require(je, "index"), "index"));
        e.workload = asString(require(je, "workload"), "workload");
        std::string isa = asString(require(je, "isa"), "isa");
        if (isa == "HSAIL")
            e.isa = IsaKind::HSAIL;
        else if (isa == "GCN3")
            e.isa = IsaKind::GCN3;
        else
            throw std::runtime_error("manifest JSON: bad isa '" + isa +
                                     "'");
        e.scaleFactor = asDouble(require(je, "scale"), "scale");
        e.seed = asU64(require(je, "seed"), "seed");
        e.ldsStrideWords =
            int(asI64(require(je, "lds_stride"), "lds_stride"));
        e.ldsPadWords = int(asI64(require(je, "lds_pad"), "lds_pad"));
        m.entries.push_back(std::move(e));
    }
    return m;
}

ShardRunOutcome
runShard(const ShardManifest &m, const ShardRunOptions &opts)
{
    ShardRunOutcome out;
    out.cache.rows.resize(m.entries.size());

    for (size_t i = 0; i < m.entries.size(); ++i) {
        fatal_if(m.entries[i].scaleFactor != m.entries[0].scaleFactor,
                 "shard %u mixes scales %g and %g (one cache file "
                 "holds one scale)",
                 m.shardIndex, m.entries[0].scaleFactor,
                 m.entries[i].scaleFactor);
    }
    out.cache.scale =
        m.entries.empty() ? 1.0 : m.entries[0].scaleFactor;

    // Incremental pass: serve every entry the reuse cache already has
    // a healthy row for; only the misses get simulated.
    std::vector<size_t> toRun;
    for (size_t i = 0; i < m.entries.size(); ++i) {
        const RunSpec spec = specFromEntry(m.entries[i]);
        const CacheKey key = specCacheKey(spec);
        if (opts.reuse) {
            const CachedRun *hit = opts.reuse->find(key);
            if (hit && !hit->result.quarantined) {
                out.cache.rows[i] = *hit;
                ++out.reused;
                continue;
            }
        }
        out.cache.rows[i].key = key;
        toRun.push_back(i);
    }

    if (!toRun.empty()) {
        std::vector<RunSpec> specs;
        specs.reserve(toRun.size());
        for (size_t i : toRun)
            specs.push_back(specFromEntry(m.entries[i]));
        SweepOptions so;
        so.jobs = opts.jobs;
        so.retryFailed = opts.retryFailed;
        out.sweep = runSweep(specs, so);
        for (size_t j = 0; j < toRun.size(); ++j)
            out.cache.rows[toRun[j]].result =
                std::move(out.sweep.results[j]);
        out.simulated = toRun.size();
    }

    for (const CachedRun &row : out.cache.rows)
        out.quarantined += row.result.quarantined;
    return out;
}

std::vector<obs::DivergenceReport>
divergenceFromCache(const BenchCacheFile &cache, double threshold)
{
    // Canonical order, so single-process and merged caches with equal
    // row sets produce identical report sequences.
    std::vector<const CachedRun *> ordered;
    ordered.reserve(cache.rows.size());
    for (const CachedRun &row : cache.rows)
        ordered.push_back(&row);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const CachedRun *a, const CachedRun *b) {
                         return cacheKeyLess(a->key, b->key);
                     });

    auto samePair = [](const CacheKey &a, const CacheKey &b) {
        return a.workload == b.workload && a.seed == b.seed &&
               a.knobDigest == b.knobDigest;
    };

    std::vector<obs::DivergenceReport> out;
    for (size_t i = 0; i < ordered.size();) {
        const CachedRun *hsail = nullptr, *gcn3 = nullptr;
        size_t j = i;
        for (; j < ordered.size() &&
               samePair(ordered[j]->key, ordered[i]->key);
             ++j) {
            if (ordered[j]->key.isa == IsaKind::HSAIL && !hsail)
                hsail = ordered[j];
            else if (ordered[j]->key.isa == IsaKind::GCN3 && !gcn3)
                gcn3 = ordered[j];
        }

        obs::DivergenceReport r;
        if (hsail && gcn3) {
            if (!hsail->result.quarantined &&
                !gcn3->result.quarantined) {
                // Restore runBoth's functional contract, degrading to
                // a failed report instead of throwing (one bad
                // workload must not kill the batch).
                try {
                    checkIsaAgreement(hsail->result, gcn3->result);
                    r = obs::divergenceReport(hsail->result,
                                              gcn3->result, threshold);
                } catch (const IsaMismatchError &e) {
                    r.workload = hsail->key.workload;
                    r.failed = true;
                    r.error = std::string("isa-mismatch: ") + e.what();
                }
            } else {
                r = obs::divergenceReport(hsail->result, gcn3->result,
                                          threshold);
                r.workload = hsail->key.workload;
            }
        } else {
            r.workload = ordered[i]->key.workload;
            r.failed = true;
            r.error = std::string("missing ") +
                      (hsail ? "GCN3" : "HSAIL") +
                      " row in the merged cache";
        }
        r.scale = cache.scale;
        r.threshold = threshold;
        out.push_back(std::move(r));
        i = j;
    }
    return out;
}

} // namespace last::sim
