#include "sim/shard.hh"

#include <algorithm>
#include <chrono>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hh"
#include "common/json_in.hh"
#include "common/logging.hh"
#include "obs/json.hh"

namespace last::sim
{

RunSpec
specFromEntry(const ShardEntry &e)
{
    RunSpec s;
    s.workload = e.workload;
    s.isa = e.isa;
    s.scale.factor = e.scaleFactor;
    s.scale.seed = e.seed;
    s.scale.ldsStrideWords = e.ldsStrideWords;
    s.scale.ldsPadWords = e.ldsPadWords;
    return s;
}

std::vector<RunSpec>
canonicalMatrix(double scaleFactor, uint64_t seed)
{
    workloads::WorkloadScale scale{scaleFactor};
    scale.seed = seed;
    std::vector<RunSpec> specs;
    const auto names = workloads::allWorkloadNames();
    specs.reserve(names.size() * NumIsas);
    for (const auto &w : names)
        for (IsaKind isa : AllIsas)
            specs.push_back({w, isa, GpuConfig{}, scale});
    return specs;
}

std::vector<ShardManifest>
makeShardManifests(const std::vector<RunSpec> &specs, unsigned shards)
{
    fatal_if(shards == 0, "shard count must be >= 1");
    std::vector<ShardManifest> out(shards);
    for (unsigned i = 0; i < shards; ++i) {
        out[i].shardIndex = i;
        out[i].shardCount = shards;
        out[i].totalSpecs = specs.size();
    }
    for (size_t i = 0; i < specs.size(); ++i) {
        const RunSpec &s = specs[i];
        // The per-workload ISA group (HSAIL/GCN3/PTXL triple in the
        // canonical matrix) stays on one shard so every shard can
        // compute its own complete divergence reports.
        size_t group = i / NumIsas;
        ShardManifest &m = out[group % shards];
        ShardEntry e;
        e.index = i;
        e.workload = s.workload;
        e.isa = s.isa;
        e.scaleFactor = s.scale.factor;
        e.seed = s.scale.seed;
        e.ldsStrideWords = s.scale.ldsStrideWords;
        e.ldsPadWords = s.scale.ldsPadWords;
        m.entries.push_back(std::move(e));
    }
    return out;
}

void
writeShardManifest(std::ostream &os, const ShardManifest &m)
{
    os << "{\n\"schema\":\"" << ShardSchema << "\",\n"
       << "\"shard_index\":" << m.shardIndex << ",\n"
       << "\"shard_count\":" << m.shardCount << ",\n"
       << "\"total_specs\":" << m.totalSpecs << ",\n"
       << "\"entries\":[\n";
    for (size_t i = 0; i < m.entries.size(); ++i) {
        const ShardEntry &e = m.entries[i];
        os << "{\"index\":" << e.index << ",\"workload\":\""
           << obs::jsonEscape(e.workload) << "\",\"isa\":\""
           << isaName(e.isa) << "\",\"scale\":"
           << obs::jsonNumber(e.scaleFactor) << ",\"seed\":" << e.seed
           << ",\"lds_stride\":" << e.ldsStrideWords
           << ",\"lds_pad\":" << e.ldsPadWords << "}";
        if (i + 1 < m.entries.size())
            os << ",";
        os << "\n";
    }
    os << "]}\n";
}

ShardManifest
readShardManifest(std::istream &is, const std::string &source)
{
    using jsonin::JsonValue;
    using jsonin::asDouble;
    using jsonin::asI64;
    using jsonin::asString;
    using jsonin::asU64;
    using jsonin::require;

    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string src = buf.str();
    auto fail = [&](const std::string &what, size_t offset) {
        throw ConfigError(source + ": " + what + " at byte " +
                              std::to_string(offset),
                          __FILE__, __LINE__);
    };
    JsonValue root = jsonin::parseJson(src, source);
    if (root.kind != JsonValue::Kind::Object)
        fail("top level is not an object", root.offset);
    std::string schema =
        asString(require(root, "schema", source), "schema", source);
    if (schema != ShardSchema)
        fail("manifest schema is '" + schema + "', expected '" +
                 ShardSchema + "'",
             root.offset);
    ShardManifest m;
    m.shardIndex = unsigned(asU64(require(root, "shard_index", source),
                                  "shard_index", source));
    m.shardCount = unsigned(asU64(require(root, "shard_count", source),
                                  "shard_count", source));
    m.totalSpecs = size_t(asU64(require(root, "total_specs", source),
                                "total_specs", source));
    const JsonValue &entries = require(root, "entries", source);
    if (entries.kind != JsonValue::Kind::Array)
        fail("'entries' is not an array", entries.offset);
    for (const JsonValue &je : entries.items) {
        if (je.kind != JsonValue::Kind::Object)
            fail("entry is not an object", je.offset);
        ShardEntry e;
        e.index =
            size_t(asU64(require(je, "index", source), "index", source));
        e.workload =
            asString(require(je, "workload", source), "workload", source);
        std::string isa =
            asString(require(je, "isa", source), "isa", source);
        if (!isaFromName(isa, e.isa))
            fail("bad isa '" + isa + "'", je.offset);
        e.scaleFactor =
            asDouble(require(je, "scale", source), "scale", source);
        e.seed = asU64(require(je, "seed", source), "seed", source);
        e.ldsStrideWords = int(
            asI64(require(je, "lds_stride", source), "lds_stride", source));
        e.ldsPadWords =
            int(asI64(require(je, "lds_pad", source), "lds_pad", source));
        m.entries.push_back(std::move(e));
    }
    return m;
}

ShardRunOutcome
runShard(const ShardManifest &m, const ShardRunOptions &opts)
{
    ShardRunOutcome out;
    out.cache.rows.resize(m.entries.size());

    for (size_t i = 0; i < m.entries.size(); ++i) {
        fatal_if(m.entries[i].scaleFactor != m.entries[0].scaleFactor,
                 "shard %u mixes scales %g and %g (one cache file "
                 "holds one scale)",
                 m.shardIndex, m.entries[0].scaleFactor,
                 m.entries[i].scaleFactor);
    }
    out.cache.scale =
        m.entries.empty() ? 1.0 : m.entries[0].scaleFactor;

    // Incremental pass: serve every entry the reuse cache already has
    // a healthy row for; only the misses get simulated.
    std::vector<size_t> toRun;
    for (size_t i = 0; i < m.entries.size(); ++i) {
        const RunSpec spec = specFromEntry(m.entries[i]);
        const CacheKey key = specCacheKey(spec);
        if (opts.reuse) {
            const CachedRun *hit = opts.reuse->find(key);
            if (hit && !hit->result.quarantined) {
                out.cache.rows[i] = *hit;
                ++out.reused;
                continue;
            }
        }
        out.cache.rows[i].key = key;
        toRun.push_back(i);
    }

    if (!toRun.empty()) {
        std::vector<RunSpec> specs;
        specs.reserve(toRun.size());
        for (size_t i : toRun)
            specs.push_back(specFromEntry(m.entries[i]));
        if (opts.timeoutMs) {
            // One shared absolute deadline for the whole shard: the
            // budget bounds the shard, and any spec still ticking past
            // it quarantines via the wall-clock watchdog.
            auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(opts.timeoutMs);
            for (RunSpec &s : specs)
                s.cfg.wallDeadline = deadline;
        }
        SweepOptions so;
        so.jobs = opts.jobs;
        so.retryFailed = opts.retryFailed;
        out.sweep = runSweep(specs, so);
        for (size_t j = 0; j < toRun.size(); ++j)
            out.cache.rows[toRun[j]].result =
                std::move(out.sweep.results[j]);
        out.simulated = toRun.size();
    }

    for (const CachedRun &row : out.cache.rows)
        out.quarantined += row.result.quarantined;
    return out;
}

std::vector<obs::DivergenceReport>
divergenceFromCache(const BenchCacheFile &cache, double threshold)
{
    // Canonical order, so single-process and merged caches with equal
    // row sets produce identical report sequences.
    std::vector<const CachedRun *> ordered;
    ordered.reserve(cache.rows.size());
    for (const CachedRun &row : cache.rows)
        ordered.push_back(&row);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const CachedRun *a, const CachedRun *b) {
                         return cacheKeyLess(a->key, b->key);
                     });

    auto sameGroup = [](const CacheKey &a, const CacheKey &b) {
        return a.workload == b.workload && a.seed == b.seed &&
               a.knobDigest == b.knobDigest;
    };
    const std::vector<IsaKind> allIsas(std::begin(AllIsas),
                                       std::end(AllIsas));

    std::vector<obs::DivergenceReport> out;
    for (size_t i = 0; i < ordered.size();) {
        // One row per simulated ISA makes a complete N-way group.
        const CachedRun *byIsa[NumIsas] = {};
        size_t j = i;
        for (; j < ordered.size() &&
               sameGroup(ordered[j]->key, ordered[i]->key);
             ++j) {
            unsigned k = unsigned(ordered[j]->key.isa);
            if (k < NumIsas && !byIsa[k])
                byIsa[k] = ordered[j];
        }
        const CachedRun *missing = nullptr;
        std::string missingIsa;
        for (unsigned k = 0; k < NumIsas; ++k)
            if (!byIsa[k]) {
                missing = ordered[i];
                missingIsa = isaName(AllIsas[k]);
                break;
            }

        obs::DivergenceReport r;
        if (!missing) {
            std::vector<const AppResult *> results;
            bool anyQuarantined = false;
            for (unsigned k = 0; k < NumIsas; ++k) {
                results.push_back(&byIsa[k]->result);
                anyQuarantined =
                    anyQuarantined || byIsa[k]->result.quarantined;
            }
            if (!anyQuarantined) {
                // Restore runBoth's functional contract, degrading to
                // a failed report instead of throwing (one bad
                // workload must not kill the batch).
                try {
                    for (size_t k = 1; k < results.size(); ++k)
                        checkIsaAgreement(*results[0], *results[k]);
                    r = obs::divergenceReport(results, allIsas,
                                              threshold);
                } catch (const IsaMismatchError &e) {
                    r.workload = ordered[i]->key.workload;
                    r.isas = allIsas;
                    r.failed = true;
                    r.error = std::string("isa-mismatch: ") + e.what();
                }
            } else {
                r = obs::divergenceReport(results, allIsas, threshold);
                r.workload = ordered[i]->key.workload;
            }
        } else {
            r.workload = missing->key.workload;
            r.failed = true;
            r.error = "missing " + missingIsa +
                      " row in the merged cache";
        }
        r.scale = cache.scale;
        r.threshold = threshold;
        out.push_back(std::move(r));
        i = j;
    }
    return out;
}

} // namespace last::sim
