/**
 * @file
 * Multi-process sharded sweeps: deterministic matrix splitting, shard
 * execution with incremental cache reuse, and the merge step.
 *
 * The (workload x ISA x scale x seed) sweep matrix is split into N
 * shard manifests (JSON, schema `last-shard-v1`). Each manifest is
 * executed by an independent `last_sweep` process (tools/sweep_cli.cc)
 * on the in-process work-stealing pool, emitting a *partial* bench
 * cache plus a partial divergence report; the merge step combines any
 * set of partial caches back into artifacts byte-identical to what a
 * single process covering the whole matrix writes. ROADMAP's sweep
 * server schedules onto exactly this backend.
 *
 * Determinism argument, in three layers:
 *  1. every simulation owns its Runtime/Gpu/FunctionalMemory, so an
 *     AppResult depends only on its spec, never on scheduling — the
 *     work-stealing schedule (sim/parallel.cc) decides who runs a
 *     spec, not what it produces;
 *  2. HSAIL/GCN3 pairs are kept in one shard (splitting is by pair
 *     group, round-robin), so per-workload divergence reports never
 *     straddle a shard boundary;
 *  3. cache files are written in canonical key order
 *     (bench_cache.hh), so equal row *sets* give equal file *bytes*
 *     no matter which process produced which row or in what order
 *     partials were merged.
 */

#ifndef LAST_SIM_SHARD_HH
#define LAST_SIM_SHARD_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/divergence.hh"
#include "sim/bench_cache.hh"
#include "sim/parallel.hh"

namespace last::sim
{

/** Manifest schema identifier (the `schema` field of the JSON). */
constexpr const char *ShardSchema = "last-shard-v1";

/** One sweep entry inside a shard manifest. */
struct ShardEntry
{
    size_t index = 0; ///< position in the full (pre-split) matrix
    std::string workload;
    IsaKind isa = IsaKind::HSAIL;
    double scaleFactor = 1.0;
    uint64_t seed = 0;
    int ldsStrideWords = -1;
    int ldsPadWords = -1;
};

/** A deterministic slice of the sweep matrix. */
struct ShardManifest
{
    unsigned shardIndex = 0;
    unsigned shardCount = 1;
    size_t totalSpecs = 0; ///< matrix size across all shards
    std::vector<ShardEntry> entries;
};

/** The RunSpec a manifest entry describes (default GpuConfig — the
 *  bench sweep never perturbs the Table 4 machine). */
RunSpec specFromEntry(const ShardEntry &e);

/**
 * Split a spec matrix into `shards` manifests. Specs are grouped in
 * consecutive pairs (the canonical matrix interleaves HSAIL/GCN3 per
 * workload, and a divergence report needs both halves in one shard)
 * and pair group g lands in shard g % shards — round-robin, so a
 * skewed matrix (bfsgraph next to vecadd) spreads its heavy workloads
 * across shards instead of stacking them into one. Deterministic:
 * same specs and shard count, same manifests, always.
 */
std::vector<ShardManifest>
makeShardManifests(const std::vector<RunSpec> &specs, unsigned shards);

/** The canonical full sweep matrix (allWorkloadNames x both ISAs) at
 *  one scale/seed — what `last_sweep plan` shards by default and what
 *  the bench figures sweep. */
std::vector<RunSpec> canonicalMatrix(double scaleFactor, uint64_t seed);

/** Emit the `last-shard-v1` JSON for one manifest. */
void writeShardManifest(std::ostream &os, const ShardManifest &m);

/** Parse a `last-shard-v1` manifest. `source` names the stream (a
 *  path, usually) in error messages.
 *  @throws ConfigError (a SimError) on malformed JSON, a wrong
 *  schema, or a bad field — always carrying `source` and the byte
 *  offset of the offence, never a crash or a silent partial load. */
ShardManifest readShardManifest(std::istream &is,
                                const std::string &source = "<manifest>");

struct ShardRunOptions
{
    unsigned jobs = 0;       ///< 0 = defaultJobs()
    bool retryFailed = true; ///< runSweep's serial retry
    /** Incremental mode: entries whose key has a healthy row here are
     *  served from the cache instead of re-simulated. */
    const BenchCacheFile *reuse = nullptr;
    /** Wall-clock budget for the whole shard (0 = none). Every
     *  simulated entry gets GpuConfig::wallDeadline = now + this, so a
     *  hung spec degrades to a quarantine row ("deadlock":
     *  wall-clock deadline exceeded) instead of wedging the process —
     *  the in-process half of the orchestrator's timeout story, and
     *  what `last_sweep run --timeout-ms` exposes to schedulers. */
    uint64_t timeoutMs = 0;
};

/** What one shard execution produced. */
struct ShardRunOutcome
{
    BenchCacheFile cache; ///< one row per manifest entry
    size_t simulated = 0; ///< entries actually run
    size_t reused = 0;    ///< entries served from `reuse`
    size_t quarantined = 0;
    SweepReport sweep; ///< report over the simulated subset only
};

/**
 * Execute one shard: look up every entry in the reuse cache, simulate
 * the misses as one work-stealing sweep (runSweep semantics:
 * quarantine + retry-once), and return a partial cache holding a row —
 * real or quarantine marker — for every entry of the manifest.
 */
ShardRunOutcome runShard(const ShardManifest &m,
                         const ShardRunOptions &opts = {});

/**
 * Divergence reports reconstructed from cache rows: rows are paired
 * (HSAIL, GCN3) per (workload, seed, knob-digest) in canonical order;
 * a quarantined or missing half degrades that workload's report to
 * failed, exactly like the live runSweep-backed batch. Both the
 * single-process and the merged path derive their report from the
 * same cache representation, which is what makes the two reports
 * byte-identical.
 */
std::vector<obs::DivergenceReport>
divergenceFromCache(const BenchCacheFile &cache,
                    double threshold = obs::DefaultDivergenceThreshold);

} // namespace last::sim

#endif // LAST_SIM_SHARD_HH
