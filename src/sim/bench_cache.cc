#include "sim/bench_cache.hh"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/error.hh"
#include "common/logging.hh"
#include "obs/json.hh"

namespace last::sim
{

namespace
{

/** Canonical workload rank: position in allWorkloadNames(); unknown
 *  names sort after every known one, alphabetically. */
size_t
workloadRank(const std::string &name)
{
    static const std::vector<std::string> names =
        workloads::allWorkloadNames();
    for (size_t i = 0; i < names.size(); ++i)
        if (names[i] == name)
            return i;
    return names.size();
}

/** Round-trip-exact double formatting (integers stay integral, the
 *  rest print with max_digits10) — the same rule the JSON writers
 *  use, so cached statistics reconstruct bit-exactly. */
std::string
num(double v)
{
    return obs::jsonNumber(v);
}

std::string
sanitizeMessage(const std::string &s)
{
    // The message is the last field of a one-line record: newlines
    // would truncate it, so flatten them. Commas are fine (the reader
    // consumes the rest of the line).
    std::string out = s;
    for (char &c : out)
        if (c == '\n' || c == '\r')
            c = ' ';
    return out;
}

void
writeRow(std::ostream &os, const CachedRun &row)
{
    const AppResult &r = row.result;
    if (r.quarantined) {
        os << "quarantine," << row.key.workload << ','
           << isaName(row.key.isa) << ',' << row.key.seed << ','
           << row.key.knobDigest << ',' << r.errorKind << ','
           << sanitizeMessage(r.errorMessage) << '\n';
        return;
    }
    os << r.workload << ',' << isaName(r.isa) << ',' << r.verified
       << ',' << r.digest << ',' << r.dynInsts << ',' << r.valu << ','
       << r.salu << ',' << r.vmem << ',' << r.smem << ',' << r.lds
       << ',' << r.branch << ',' << r.waitcnt << ',' << r.misc << ','
       << r.cycles << ',' << num(r.ipc) << ',' << r.vrfBankConflicts
       << ',' << num(r.reuseMedian) << ',' << r.instFootprint << ','
       << r.ibFlushes << ',' << num(r.readUniq) << ','
       << num(r.writeUniq) << ',' << num(r.vrfUniq) << ','
       << r.dataFootprint << ',' << num(r.simdUtil) << ','
       << r.l1iMisses << ',' << r.l1iHits << ',' << r.hazardViolations
       << ',' << r.scoreboardStalls << ',' << r.waitcntStalls << ','
       << r.ibEmptyStalls << ',' << r.fuConflictStalls << ','
       << r.coalescedLines << ',' << r.busyCycles << ','
       << row.key.seed << ',' << row.key.knobDigest << '\n';
    for (const auto &l : r.launches)
        os << "launch," << l.kernel << ',' << l.cycles << ','
           << l.instsIssued << '\n';
    os << "end\n";
}

// --------------------------------------------------------------------
// Strict parsing machinery (v6). The whole stream is buffered so every
// line knows its byte offset; any malformation throws ConfigError
// naming the source and that offset — the satellite contract for torn
// input is "loud failure with path and byte offset", so none of these
// paths may fall back to std exceptions or partial success.
// --------------------------------------------------------------------

[[noreturn]] void
failCache(const std::string &source, const std::string &what,
          size_t offset)
{
    throw ConfigError("bench cache " + source + ": " + what +
                          " at byte " + std::to_string(offset),
                      __FILE__, __LINE__);
}

/** Line iterator over a buffered file that tracks the byte offset of
 *  each line and whether it carried its '\n' terminator (a missing
 *  one on the last line is the signature of a torn write). */
struct LineReader
{
    const std::string &s;
    size_t pos = 0;
    size_t lineOffset = 0;
    bool terminated = true;

    explicit LineReader(const std::string &text) : s(text) {}

    bool
    next(std::string &line)
    {
        if (pos >= s.size())
            return false;
        lineOffset = pos;
        size_t nl = s.find('\n', pos);
        if (nl == std::string::npos) {
            line = s.substr(pos);
            pos = s.size();
            terminated = false;
        } else {
            line = s.substr(pos, nl - pos);
            pos = nl + 1;
            terminated = true;
        }
        return true;
    }
};

/** Comma-separated field cursor for one line; all accessors throw
 *  ConfigError (via failCache) instead of leaking std::stoull's
 *  invalid_argument/out_of_range on garbage tokens. */
struct FieldCursor
{
    std::istringstream ls;
    const std::string &source;
    size_t offset;

    FieldCursor(const std::string &line, const std::string &src,
                size_t off)
        : ls(line), source(src), offset(off)
    {}

    std::string
    next(const char *field)
    {
        std::string tok;
        if (!std::getline(ls, tok, ','))
            failCache(source,
                      std::string("truncated cache row (missing field "
                                  "'") + field + "')",
                      offset);
        return tok;
    }

    uint64_t
    u64(const char *field)
    {
        std::string tok = next(field);
        try {
            if (tok.empty() || tok[0] == '-')
                throw std::invalid_argument("negative or empty");
            size_t used = 0;
            uint64_t v = std::stoull(tok, &used);
            if (used != tok.size())
                throw std::invalid_argument("trailing junk");
            return v;
        } catch (const std::exception &) {
            failCache(source,
                      std::string("field '") + field +
                          "' is not a u64 ('" + tok + "')",
                      offset);
        }
    }

    double
    f64(const char *field)
    {
        std::string tok = next(field);
        try {
            size_t used = 0;
            double v = std::stod(tok, &used);
            if (used != tok.size())
                throw std::invalid_argument("trailing junk");
            return v;
        } catch (const std::exception &) {
            failCache(source,
                      std::string("field '") + field +
                          "' is not a number ('" + tok + "')",
                      offset);
        }
    }

    std::string
    rest()
    {
        std::string tail;
        std::getline(ls, tail); // rest of line, commas and all
        return tail;
    }
};

IsaKind
parseIsaTag(const std::string &isa, const std::string &source,
            size_t offset)
{
    IsaKind out;
    if (isaFromName(isa, out))
        return out;
    failCache(source, "bad ISA tag '" + isa + "'", offset);
}

} // namespace

CacheKey
specCacheKey(const RunSpec &spec)
{
    CacheKey k;
    k.workload = spec.workload;
    k.isa = spec.isa;
    k.seed = spec.scale.seed;
    k.knobDigest = workloads::kernelParamsDigest(spec.scale);
    return k;
}

bool
cacheKeyLess(const CacheKey &a, const CacheKey &b)
{
    size_t ra = workloadRank(a.workload), rb = workloadRank(b.workload);
    if (ra != rb)
        return ra < rb;
    if (a.workload != b.workload)
        return a.workload < b.workload;
    if (a.isa != b.isa) {
        // AllIsas order (HSAIL < GCN3 < PTXL), like the canonical
        // matrix — a total order, so a GCN3 row and a PTXL row for
        // the same spec can never compare equivalent and alias.
        return unsigned(a.isa) < unsigned(b.isa);
    }
    if (a.seed != b.seed)
        return a.seed < b.seed;
    return a.knobDigest < b.knobDigest;
}

const CachedRun *
BenchCacheFile::find(const CacheKey &key) const
{
    for (const CachedRun &row : rows)
        if (row.key == key)
            return &row;
    return nullptr;
}

void
writeBenchCache(std::ostream &os, const BenchCacheFile &cache)
{
    std::vector<const CachedRun *> ordered;
    ordered.reserve(cache.rows.size());
    for (const CachedRun &row : cache.rows)
        ordered.push_back(&row);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const CachedRun *a, const CachedRun *b) {
                         return cacheKeyLess(a->key, b->key);
                     });
    os << "last-bench-cache v" << BenchCacheVersion
       << " scale=" << cache.scale << "\n";
    for (const CachedRun *row : ordered)
        writeRow(os, *row);
    os << "eof," << ordered.size() << "\n";
}

void
readBenchCacheStrict(std::istream &is, BenchCacheFile &out,
                     const std::string &source)
{
    out = BenchCacheFile{};
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string text = buf.str();

    LineReader lr(text);
    std::string line;
    if (!lr.next(line))
        failCache(source, "empty file", 0);

    int ver = 0;
    double scale = 0;
    if (std::sscanf(line.c_str(), "last-bench-cache v%d scale=%lf",
                    &ver, &scale) != 2)
        failCache(source, "malformed header '" + line + "'", 0);
    if (ver != BenchCacheVersion) {
        // A version mismatch discards real simulation results, so it
        // must be loud, not a silent miss.
        failCache(source,
                  "has version " + std::to_string(ver) + " (current v" +
                      std::to_string(BenchCacheVersion) + ")",
                  0);
    }
    if (!lr.terminated)
        failCache(source, "unterminated header line (torn write?)", 0);
    out.scale = scale;

    bool sawEof = false;
    while (lr.next(line)) {
        const size_t off = lr.lineOffset;
        if (!lr.terminated)
            failCache(source, "unterminated final line (torn write?)",
                      off);
        if (line.empty())
            failCache(source, "blank line inside cache", off);

        if (line.compare(0, 4, "eof,") == 0) {
            FieldCursor fc(line, source, off);
            fc.next("eof");
            uint64_t count = fc.u64("row count");
            if (count != out.rows.size())
                failCache(source,
                          "eof trailer claims " + std::to_string(count) +
                              " rows but " +
                              std::to_string(out.rows.size()) +
                              " were present — truncated or torn file",
                          off);
            sawEof = true;
            if (lr.next(line))
                failCache(source, "trailing bytes after eof trailer",
                          lr.lineOffset);
            break;
        }

        CachedRun row;
        AppResult &r = row.result;
        FieldCursor fc(line, source, off);
        std::string first = fc.next("workload");
        if (first == "quarantine") {
            row.key.workload = fc.next("workload");
            row.key.isa =
                parseIsaTag(fc.next("isa"), source, off);
            row.key.seed = fc.u64("seed");
            row.key.knobDigest = fc.u64("knobs");
            r.workload = row.key.workload;
            r.isa = row.key.isa;
            r.quarantined = true;
            r.errorKind = fc.next("kind");
            r.errorMessage = fc.rest();
        } else {
            r.workload = first;
            r.isa = parseIsaTag(fc.next("isa"), source, off);
            r.verified = int(fc.u64("verified"));
            r.digest = fc.u64("digest");
            r.dynInsts = fc.u64("dynInsts");
            r.valu = fc.u64("valu");
            r.salu = fc.u64("salu");
            r.vmem = fc.u64("vmem");
            r.smem = fc.u64("smem");
            r.lds = fc.u64("lds");
            r.branch = fc.u64("branch");
            r.waitcnt = fc.u64("waitcnt");
            r.misc = fc.u64("misc");
            r.cycles = fc.u64("cycles");
            r.ipc = fc.f64("ipc");
            r.vrfBankConflicts = fc.u64("vrfBankConflicts");
            r.reuseMedian = fc.f64("reuseMedian");
            r.instFootprint = fc.u64("instFootprint");
            r.ibFlushes = fc.u64("ibFlushes");
            r.readUniq = fc.f64("readUniq");
            r.writeUniq = fc.f64("writeUniq");
            r.vrfUniq = fc.f64("vrfUniq");
            r.dataFootprint = fc.u64("dataFootprint");
            r.simdUtil = fc.f64("simdUtil");
            r.l1iMisses = fc.u64("l1iMisses");
            r.l1iHits = fc.u64("l1iHits");
            r.hazardViolations = fc.u64("hazardViolations");
            r.scoreboardStalls = fc.u64("scoreboardStalls");
            r.waitcntStalls = fc.u64("waitcntStalls");
            r.ibEmptyStalls = fc.u64("ibEmptyStalls");
            r.fuConflictStalls = fc.u64("fuConflictStalls");
            r.coalescedLines = fc.u64("coalescedLines");
            r.busyCycles = fc.u64("busyCycles");
            row.key.workload = r.workload;
            row.key.isa = r.isa;
            row.key.seed = fc.u64("seed");
            row.key.knobDigest = fc.u64("knobs");

            // launch rows until "end"
            bool ended = false;
            while (lr.next(line)) {
                const size_t loff = lr.lineOffset;
                if (!lr.terminated)
                    failCache(source,
                              "unterminated final line (torn write?)",
                              loff);
                if (line == "end") {
                    ended = true;
                    break;
                }
                FieldCursor lc(line, source, loff);
                std::string tag = lc.next("tag");
                if (tag != "launch")
                    failCache(source,
                              "expected 'launch' or 'end', got '" +
                                  tag + "'",
                              loff);
                std::string kernel = lc.next("kernel");
                uint64_t cyc = lc.u64("cycles");
                uint64_t insts = lc.u64("insts");
                r.launches.push_back({kernel, cyc, insts});
            }
            if (!ended)
                failCache(source,
                          "truncated result row (missing 'end')", off);
        }

        if (out.find(row.key))
            failCache(source,
                      "duplicate row for " + row.key.workload + "/" +
                          isaName(row.key.isa) + " seed " +
                          std::to_string(row.key.seed),
                      off);
        out.rows.push_back(std::move(row));
    }

    if (!sawEof)
        failCache(source,
                  "missing eof trailer — truncated or pre-v6 file",
                  text.size());
}

bool
readBenchCache(std::istream &is, BenchCacheFile &out,
               const std::string &source)
{
    out = BenchCacheFile{};
    if (is.peek() == std::char_traits<char>::eof())
        return false; // absent or empty stream: a miss, not damage
    try {
        readBenchCacheStrict(is, out, source);
        return true;
    } catch (const SimError &e) {
        warn("bench cache %s rejected (%s); discarding %zu parsed "
             "rows — the sweep will re-simulate",
             source.c_str(), e.message().c_str(), out.rows.size());
        out = BenchCacheFile{};
        return false;
    }
}

size_t
dropQuarantinedRows(BenchCacheFile &cache, const std::string &source)
{
    size_t dropped = 0;
    std::vector<CachedRun> kept;
    kept.reserve(cache.rows.size());
    for (CachedRun &row : cache.rows) {
        if (row.result.quarantined) {
            warn("bench cache %s: dropping quarantined row %s/%s "
                 "(%s: %s) — that spec will be re-simulated",
                 source.c_str(), row.key.workload.c_str(),
                 isaName(row.key.isa), row.result.errorKind.c_str(),
                 row.result.errorMessage.c_str());
            ++dropped;
            continue;
        }
        kept.push_back(std::move(row));
    }
    cache.rows = std::move(kept);
    return dropped;
}

BenchCacheFile
mergeBenchCaches(const std::vector<BenchCacheFile> &parts)
{
    BenchCacheFile merged;
    bool first = true;
    for (const BenchCacheFile &part : parts) {
        if (first) {
            merged.scale = part.scale;
            first = false;
        } else {
            fatal_if(part.scale != merged.scale,
                     "cannot merge bench caches at different scales "
                     "(%g vs %g)",
                     part.scale, merged.scale);
        }
        for (const CachedRun &row : part.rows) {
            if (const CachedRun *have = merged.find(row.key)) {
                // Overlapping shards legitimately duplicate rows; a
                // deterministic simulator produces identical stats, so
                // anything else is a red flag worth shouting about.
                std::ostringstream a, b;
                writeRow(a, *have);
                writeRow(b, row);
                if (a.str() != b.str())
                    warn("merge: conflicting duplicate for %s/%s "
                         "(seed %llu); keeping the first occurrence",
                         row.key.workload.c_str(),
                         isaName(row.key.isa),
                         (unsigned long long)row.key.seed);
                continue;
            }
            merged.rows.push_back(row);
        }
    }
    return merged;
}

} // namespace last::sim
