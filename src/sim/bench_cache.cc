#include "sim/bench_cache.hh"

#include <algorithm>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "common/logging.hh"
#include "obs/json.hh"

namespace last::sim
{

namespace
{

/** Canonical workload rank: position in allWorkloadNames(); unknown
 *  names sort after every known one, alphabetically. */
size_t
workloadRank(const std::string &name)
{
    static const std::vector<std::string> names =
        workloads::allWorkloadNames();
    for (size_t i = 0; i < names.size(); ++i)
        if (names[i] == name)
            return i;
    return names.size();
}

/** Round-trip-exact double formatting (integers stay integral, the
 *  rest print with max_digits10) — the same rule the JSON writers
 *  use, so cached statistics reconstruct bit-exactly. */
std::string
num(double v)
{
    return obs::jsonNumber(v);
}

std::string
sanitizeMessage(const std::string &s)
{
    // The message is the last field of a one-line record: newlines
    // would truncate it, so flatten them. Commas are fine (the reader
    // consumes the rest of the line).
    std::string out = s;
    for (char &c : out)
        if (c == '\n' || c == '\r')
            c = ' ';
    return out;
}

void
writeRow(std::ostream &os, const CachedRun &row)
{
    const AppResult &r = row.result;
    if (r.quarantined) {
        os << "quarantine," << row.key.workload << ','
           << isaName(row.key.isa) << ',' << row.key.seed << ','
           << row.key.knobDigest << ',' << r.errorKind << ','
           << sanitizeMessage(r.errorMessage) << '\n';
        return;
    }
    os << r.workload << ',' << isaName(r.isa) << ',' << r.verified
       << ',' << r.digest << ',' << r.dynInsts << ',' << r.valu << ','
       << r.salu << ',' << r.vmem << ',' << r.smem << ',' << r.lds
       << ',' << r.branch << ',' << r.waitcnt << ',' << r.misc << ','
       << r.cycles << ',' << num(r.ipc) << ',' << r.vrfBankConflicts
       << ',' << num(r.reuseMedian) << ',' << r.instFootprint << ','
       << r.ibFlushes << ',' << num(r.readUniq) << ','
       << num(r.writeUniq) << ',' << num(r.vrfUniq) << ','
       << r.dataFootprint << ',' << num(r.simdUtil) << ','
       << r.l1iMisses << ',' << r.l1iHits << ',' << r.hazardViolations
       << ',' << r.scoreboardStalls << ',' << r.waitcntStalls << ','
       << r.ibEmptyStalls << ',' << r.fuConflictStalls << ','
       << r.coalescedLines << ',' << r.busyCycles << ','
       << row.key.seed << ',' << row.key.knobDigest << '\n';
    for (const auto &l : r.launches)
        os << "launch," << l.kernel << ',' << l.cycles << ','
           << l.instsIssued << '\n';
    os << "end\n";
}

IsaKind
parseIsaTag(const std::string &isa)
{
    if (isa == "HSAIL")
        return IsaKind::HSAIL;
    if (isa == "GCN3")
        return IsaKind::GCN3;
    throw std::runtime_error("bad ISA tag in cache row");
}

/**
 * Parse one cached row (result or quarantine marker). Returns false on
 * a clean end-of-file; throws on a truncated or garbled row.
 */
bool
readRow(std::istream &is, CachedRun &row)
{
    std::string line;
    if (!std::getline(is, line) || line.empty())
        return false;
    std::istringstream ls(line);
    std::string tok;
    auto next = [&]() {
        if (!std::getline(ls, tok, ','))
            throw std::runtime_error("truncated cache row");
        return tok;
    };

    AppResult &r = row.result;
    std::string first = next();
    if (first == "quarantine") {
        row.key.workload = next();
        row.key.isa = parseIsaTag(next());
        row.key.seed = std::stoull(next());
        row.key.knobDigest = std::stoull(next());
        r = AppResult{};
        r.workload = row.key.workload;
        r.isa = row.key.isa;
        r.quarantined = true;
        r.errorKind = next();
        std::getline(ls, r.errorMessage); // rest of line, commas and all
        return true;
    }

    r.workload = first;
    r.isa = parseIsaTag(next());
    r.verified = std::stoi(next());
    r.digest = std::stoull(next());
    r.dynInsts = std::stoull(next());
    r.valu = std::stoull(next());
    r.salu = std::stoull(next());
    r.vmem = std::stoull(next());
    r.smem = std::stoull(next());
    r.lds = std::stoull(next());
    r.branch = std::stoull(next());
    r.waitcnt = std::stoull(next());
    r.misc = std::stoull(next());
    r.cycles = std::stoull(next());
    r.ipc = std::stod(next());
    r.vrfBankConflicts = std::stoull(next());
    r.reuseMedian = std::stod(next());
    r.instFootprint = std::stoull(next());
    r.ibFlushes = std::stoull(next());
    r.readUniq = std::stod(next());
    r.writeUniq = std::stod(next());
    r.vrfUniq = std::stod(next());
    r.dataFootprint = std::stoull(next());
    r.simdUtil = std::stod(next());
    r.l1iMisses = std::stoull(next());
    r.l1iHits = std::stoull(next());
    r.hazardViolations = std::stoull(next());
    r.scoreboardStalls = std::stoull(next());
    r.waitcntStalls = std::stoull(next());
    r.ibEmptyStalls = std::stoull(next());
    r.fuConflictStalls = std::stoull(next());
    r.coalescedLines = std::stoull(next());
    r.busyCycles = std::stoull(next());
    row.key.workload = r.workload;
    row.key.isa = r.isa;
    row.key.seed = std::stoull(next());
    row.key.knobDigest = std::stoull(next());
    while (std::getline(is, line) && line != "end") {
        std::istringstream lls(line);
        std::string tag, kernel, cyc, insts;
        std::getline(lls, tag, ',');
        if (tag != "launch")
            throw std::runtime_error("bad launch row in cache");
        std::getline(lls, kernel, ',');
        std::getline(lls, cyc, ',');
        std::getline(lls, insts, ',');
        r.launches.push_back(
            {kernel, std::stoull(cyc), std::stoull(insts)});
    }
    return true;
}

} // namespace

CacheKey
specCacheKey(const RunSpec &spec)
{
    CacheKey k;
    k.workload = spec.workload;
    k.isa = spec.isa;
    k.seed = spec.scale.seed;
    k.knobDigest = workloads::kernelParamsDigest(spec.scale);
    return k;
}

bool
cacheKeyLess(const CacheKey &a, const CacheKey &b)
{
    size_t ra = workloadRank(a.workload), rb = workloadRank(b.workload);
    if (ra != rb)
        return ra < rb;
    if (a.workload != b.workload)
        return a.workload < b.workload;
    if (a.isa != b.isa)
        return a.isa == IsaKind::HSAIL; // HSAIL first, like the matrix
    if (a.seed != b.seed)
        return a.seed < b.seed;
    return a.knobDigest < b.knobDigest;
}

const CachedRun *
BenchCacheFile::find(const CacheKey &key) const
{
    for (const CachedRun &row : rows)
        if (row.key == key)
            return &row;
    return nullptr;
}

void
writeBenchCache(std::ostream &os, const BenchCacheFile &cache)
{
    std::vector<const CachedRun *> ordered;
    ordered.reserve(cache.rows.size());
    for (const CachedRun &row : cache.rows)
        ordered.push_back(&row);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const CachedRun *a, const CachedRun *b) {
                         return cacheKeyLess(a->key, b->key);
                     });
    os << "last-bench-cache v" << BenchCacheVersion
       << " scale=" << cache.scale << "\n";
    for (const CachedRun *row : ordered)
        writeRow(os, *row);
}

bool
readBenchCache(std::istream &is, BenchCacheFile &out,
               const std::string &source)
{
    out = BenchCacheFile{};
    std::string header;
    if (!std::getline(is, header))
        return false;
    int ver = 0;
    double scale = 0;
    std::sscanf(header.c_str(), "last-bench-cache v%d scale=%lf", &ver,
                &scale);
    if (ver != BenchCacheVersion) {
        // The satellite contract: a version mismatch discards real
        // simulation results, so it must be loud, not a silent miss.
        warn("bench cache %s has version %d (current v%d); "
             "discarding it — the sweep will re-simulate",
             source.c_str(), ver, BenchCacheVersion);
        return false;
    }
    out.scale = scale;
    try {
        CachedRun row;
        while (readRow(is, row)) {
            out.rows.push_back(std::move(row));
            row = CachedRun{};
        }
    } catch (const std::exception &e) {
        warn("bench cache %s is damaged (%s); discarding all %zu "
             "parsed rows — the sweep will re-simulate",
             source.c_str(), e.what(), out.rows.size());
        out.rows.clear();
        return false;
    }
    return true;
}

size_t
dropQuarantinedRows(BenchCacheFile &cache, const std::string &source)
{
    size_t dropped = 0;
    std::vector<CachedRun> kept;
    kept.reserve(cache.rows.size());
    for (CachedRun &row : cache.rows) {
        if (row.result.quarantined) {
            warn("bench cache %s: dropping quarantined row %s/%s "
                 "(%s: %s) — that spec will be re-simulated",
                 source.c_str(), row.key.workload.c_str(),
                 isaName(row.key.isa), row.result.errorKind.c_str(),
                 row.result.errorMessage.c_str());
            ++dropped;
            continue;
        }
        kept.push_back(std::move(row));
    }
    cache.rows = std::move(kept);
    return dropped;
}

BenchCacheFile
mergeBenchCaches(const std::vector<BenchCacheFile> &parts)
{
    BenchCacheFile merged;
    bool first = true;
    for (const BenchCacheFile &part : parts) {
        if (first) {
            merged.scale = part.scale;
            first = false;
        } else {
            fatal_if(part.scale != merged.scale,
                     "cannot merge bench caches at different scales "
                     "(%g vs %g)",
                     part.scale, merged.scale);
        }
        for (const CachedRun &row : part.rows) {
            if (const CachedRun *have = merged.find(row.key)) {
                // Overlapping shards legitimately duplicate rows; a
                // deterministic simulator produces identical stats, so
                // anything else is a red flag worth shouting about.
                std::ostringstream a, b;
                writeRow(a, *have);
                writeRow(b, row);
                if (a.str() != b.str())
                    warn("merge: conflicting duplicate for %s/%s "
                         "(seed %llu); keeping the first occurrence",
                         row.key.workload.c_str(),
                         isaName(row.key.isa),
                         (unsigned long long)row.key.seed);
                continue;
            }
            merged.rows.push_back(row);
        }
    }
    return merged;
}

} // namespace last::sim
