/**
 * @file
 * The bench result cache as a first-class, shareable store.
 *
 * PR 6 promotes the ad-hoc CSV reader/writer that lived inside
 * bench/support.cc into a component the whole sharded-sweep backend
 * shares: the figure binaries, the `last_sweep` shard CLI, and the
 * merge step all read and write the same `last_bench_cache.csv`
 * format through these functions, which is what makes "merged shard
 * artifacts are byte-identical to a single-process run" a structural
 * property instead of a test hope.
 *
 * Format (version 6):
 *  - header: `last-bench-cache v6 scale=<g>`
 *  - one result row per (workload, ISA, seed, knob-digest) key holding
 *    every AppResult statistic, doubles in round-trip precision so a
 *    cached row reconstructs the in-memory result exactly;
 *  - `launch,<kernel>,<cycles>,<insts>` rows then `end` per result;
 *  - `quarantine,<workload>,<isa>,<seed>,<knobs>,<kind>,<message>`
 *    marker rows for specs whose simulation failed, so a shard's
 *    partial output records *what is missing and why*. Quarantine
 *    rows never satisfy an incremental-reuse lookup and the figure
 *    loader drops them loudly (see dropQuarantinedRows);
 *  - trailer: `eof,<row count>` — v6's torn-write detector. A file
 *    truncated at a row boundary parses cleanly row-by-row; the
 *    trailer turns that silent partial load into a loud failure,
 *    which the orchestrator's resume verification and the chaos
 *    harness both rely on.
 *
 * Rows are always written in canonical key order (position in
 * workloads::allWorkloadNames(), then ISA in AllIsas order — HSAIL,
 * GCN3, PTXL — then seed, then knob digest), so two caches with equal
 * row sets are byte-identical files regardless of the order results
 * were produced or merged in.
 */

#ifndef LAST_SIM_BENCH_CACHE_HH
#define LAST_SIM_BENCH_CACHE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/parallel.hh"

namespace last::sim
{

/** Bench-cache format version. v5: sharded-sweep era — full stat
 *  rows, key columns, quarantine markers, canonical order. v6: adds
 *  the `eof,<nrows>` trailer so truncation at a row boundary cannot
 *  load as a silently-partial cache. */
constexpr int BenchCacheVersion = 6;

/** The incremental-reuse identity of one sweep entry. The scale is
 *  file-level (caches at different scales are different files), so the
 *  per-row key is (workload, ISA, seed, knob-digest). */
struct CacheKey
{
    std::string workload;
    IsaKind isa = IsaKind::HSAIL;
    uint64_t seed = 0;
    uint64_t knobDigest = 0;

    bool operator==(const CacheKey &o) const
    {
        return workload == o.workload && isa == o.isa &&
               seed == o.seed && knobDigest == o.knobDigest;
    }
};

/** The key a RunSpec's result would be cached under. */
CacheKey specCacheKey(const RunSpec &spec);

/** Canonical row order (see file comment). */
bool cacheKeyLess(const CacheKey &a, const CacheKey &b);

/** One cached row: the key plus the full result (quarantined results
 *  carry only identity + error, like everywhere else). */
struct CachedRun
{
    CacheKey key;
    AppResult result;
};

/** A parsed (or to-be-written) bench cache. */
struct BenchCacheFile
{
    double scale = 1.0;
    std::vector<CachedRun> rows;

    /** Row with this key, or nullptr. Linear scan — the matrix is
     *  tens of rows, not millions. */
    const CachedRun *find(const CacheKey &key) const;
};

/** Write the cache, rows re-sorted into canonical order first. */
void writeBenchCache(std::ostream &os, const BenchCacheFile &cache);

/**
 * Strict cache parser: any malformation — stale version, garbled or
 * truncated row, duplicate key, missing/contradicting `eof` trailer,
 * an unterminated final line, bytes after the trailer — throws
 * ConfigError naming `source` and the byte offset of the offending
 * line. Never crashes, hangs, or returns a partial row set. This is
 * the loader the orchestrator's resume verification uses: "does this
 * partial cache verify" must be a yes/no question with no silent
 * third answer.
 */
void readBenchCacheStrict(std::istream &is, BenchCacheFile &out,
                          const std::string &source);

/**
 * Tolerant wrapper over readBenchCacheStrict for warm-start paths
 * where a bad cache just means re-simulating: an empty/absent stream
 * is a quiet miss (returns false), anything the strict parser rejects
 * warns loudly through the LogHook path (naming `source`) and returns
 * false with `out` cleared — a caller must treat that as "no cache",
 * never as silently-empty. Quarantine rows are returned (the merge
 * step needs them); figure-style consumers strip them with
 * dropQuarantinedRows.
 */
bool readBenchCache(std::istream &is, BenchCacheFile &out,
                    const std::string &source);

/** Remove quarantine rows, warn()ing per dropped row (the satellite
 *  contract: a poisoned row must never vanish silently).
 *  @return number of rows dropped. */
size_t dropQuarantinedRows(BenchCacheFile &cache,
                           const std::string &source);

/**
 * Merge partial caches into one: rows are deduplicated by key (the
 * first occurrence wins; a duplicate with *different* statistics —
 * which a deterministic simulator should never produce — is dropped
 * with a warn()), then canonically sorted by writeBenchCache. Merging
 * is associative, commutative, and idempotent over row sets, so any
 * merge order, overlapping shards, and re-merging a merged cache all
 * produce the same file bytes. All inputs must agree on scale
 * (fatal otherwise).
 */
BenchCacheFile mergeBenchCaches(const std::vector<BenchCacheFile> &parts);

} // namespace last::sim

#endif // LAST_SIM_BENCH_CACHE_HH
