#include "sim/experiment.hh"

#include <sstream>

#include "common/logging.hh"
#include "sim/parallel.hh"

namespace last::sim
{

AppResult
runApp(const std::string &workload, IsaKind isa, const GpuConfig &cfg,
       const workloads::WorkloadScale &scale,
       const RuntimeInspector &inspect)
{
    runtime::Runtime rt(cfg);
    // Label the simulated process so MemoryErrors escaping a parallel
    // sweep name the run that faulted, not just an address.
    rt.mem().setOwner(workload + "/" + isaName(isa));
    auto wl = workloads::makeWorkload(workload, scale);

    AppResult r;
    r.workload = workload;
    r.isa = isa;
    r.verified = wl->run(rt, isa);
    r.digest = wl->resultDigest();

    gpu::Gpu &gpu = rt.gpu();
    // Resolve each stat name to its CU-local index once, then sum by
    // index — the repeated per-CU string lookups the harness used to
    // pay are not free when every sweep run ends here.
    auto sum = [&gpu](const char *name) {
        return uint64_t(gpu.sumCuStat(gpu.cuStatIndex(name)));
    };
    r.dynInsts = sum("dynInsts");
    r.valu = sum("valuInsts");
    r.salu = sum("saluInsts");
    r.vmem = sum("vmemInsts");
    r.smem = sum("smemInsts");
    r.lds = sum("ldsInsts");
    r.branch = sum("branchInsts");
    r.waitcnt = sum("waitcntInsts");
    r.misc = sum("miscInsts");
    r.vrfBankConflicts = sum("vrfBankConflicts");
    r.ibFlushes = sum("ibFlushes");
    r.hazardViolations = sum("hazardViolations");
    r.scoreboardStalls = sum("scoreboardStalls");
    r.waitcntStalls = sum("waitcntStalls");
    r.ibEmptyStalls = sum("ibEmptyStalls");
    r.fuConflictStalls = sum("fuConflictStalls");
    r.coalescedLines = sum("coalescedLines");
    r.busyCycles = sum("busyCycles");

    // Merged histograms / weighted averages over CUs.
    stats::Histogram reuse(nullptr, "reuse", "merged");
    double ru_n = 0, ru_s = 0, wu_n = 0, wu_s = 0, su_n = 0, su_s = 0;
    for (unsigned c = 0; c < gpu.numCus(); ++c) {
        auto &cu = gpu.computeUnit(c);
        reuse.merge(cu.vregReuseDist);
        ru_s += cu.vrfReadUniq.value() * double(cu.vrfReadUniq.samples());
        ru_n += double(cu.vrfReadUniq.samples());
        wu_s +=
            cu.vrfWriteUniq.value() * double(cu.vrfWriteUniq.samples());
        wu_n += double(cu.vrfWriteUniq.samples());
        su_s += cu.valuUtilization.value() *
                double(cu.valuUtilization.samples());
        su_n += double(cu.valuUtilization.samples());
    }
    r.reuseMedian = reuse.median();
    r.readUniq = ru_n ? ru_s / ru_n : 0;
    r.writeUniq = wu_n ? wu_s / wu_n : 0;
    r.vrfUniq =
        (ru_n + wu_n) ? (ru_s + wu_s) / (ru_n + wu_n) : 0;
    r.simdUtil = su_n ? su_s / su_n : 0;

    // Cycles: sum of per-dispatch durations (dispatches run
    // back-to-back on this GPU).
    for (const auto &rec : rt.launchRecords())
        r.cycles += rec.cycles;
    r.ipc = r.cycles ? double(r.dynInsts) / double(r.cycles) : 0;

    r.instFootprint = rt.instFootprintBytes();
    r.dataFootprint = rt.dataFootprintBytes();

    unsigned clusters =
        (cfg.numCus + cfg.cusPerCluster - 1) / cfg.cusPerCluster;
    for (unsigned c = 0; c < clusters; ++c) {
        r.l1iMisses += uint64_t(gpu.l1iCache(c).misses.value());
        r.l1iHits += uint64_t(gpu.l1iCache(c).hits.value());
    }

    r.launches = rt.launchRecords();
    if (inspect)
        inspect(rt);
    return r;
}

std::pair<AppResult, AppResult>
runBoth(const std::string &workload, const GpuConfig &cfg,
        const workloads::WorkloadScale &scale)
{
    // The two ISA-level runs are independent simulations; overlap them
    // on the worker pool (LAST_JOBS=1 recovers the serial path).
    return runBothParallel(workload, cfg, scale);
}

std::string
MismatchReport::format() const
{
    std::ostringstream os;
    os << "cross-ISA mismatch in " << workload << ": " << field;
    if (launchIndex >= 0)
        os << " (launch " << launchIndex << ")";
    os << " diverges: HSAIL=" << hsailValue << " GCN3=" << gcn3Value;
    return os.str();
}

IsaMismatchError::IsaMismatchError(MismatchReport report)
    : SimError(ErrorKind::Mismatch, report.format()),
      report_(std::move(report))
{}

void
checkIsaAgreement(const AppResult &hsail, const AppResult &gcn3)
{
    auto mismatch = [&](const std::string &field, int launch,
                        const std::string &h, const std::string &g) {
        MismatchReport r;
        r.workload = hsail.workload;
        r.field = field;
        r.launchIndex = launch;
        r.hsailValue = h;
        r.gcn3Value = g;
        throw IsaMismatchError(std::move(r));
    };

    if (hsail.workload != gcn3.workload)
        mismatch("workload", -1, hsail.workload, gcn3.workload);
    if (hsail.verified != gcn3.verified)
        mismatch("verified", -1, hsail.verified ? "true" : "false",
                 gcn3.verified ? "true" : "false");
    if (hsail.digest != gcn3.digest)
        mismatch("digest", -1, std::to_string(hsail.digest),
                 std::to_string(gcn3.digest));
    if (hsail.launches.size() != gcn3.launches.size())
        mismatch("launches.size", -1,
                 std::to_string(hsail.launches.size()),
                 std::to_string(gcn3.launches.size()));
    for (size_t i = 0; i < hsail.launches.size(); ++i) {
        if (hsail.launches[i].kernel != gcn3.launches[i].kernel)
            mismatch("launch.kernel", int(i), hsail.launches[i].kernel,
                     gcn3.launches[i].kernel);
    }
}

} // namespace last::sim
