/**
 * @file
 * Crash-safe sweep orchestration: a supervisor that drives a sharded
 * sweep campaign to completion across worker *processes*, surviving
 * worker crashes, hangs, and torn writes (see DESIGN.md §4e).
 *
 * PR 6 built the deterministic sharded backend (`last_sweep
 * plan/run/merge`); this layer makes a campaign of those workers
 * operationally robust, the process-level analogue of what the
 * forward-progress watchdog + quarantine machinery (PR 2) did for the
 * simulated GPU:
 *
 *  - each shard runs as a supervised child process with a wall-clock
 *    deadline; a hung worker is SIGKILLed at the deadline (within one
 *    poll interval) and classified as a timeout;
 *  - failed attempts (crash, nonzero exit, timeout, output that fails
 *    verification) are retried with capped exponential backoff and
 *    deterministic jitter (BackoffPolicy — a pure function, so the
 *    policy is unit-testable without wall-clock);
 *  - a shard that exhausts its attempts degrades into synthesized
 *    quarantine rows ("worker-crash"/"worker-timeout"/...) instead of
 *    aborting the campaign — exactly how an in-process spec failure
 *    degrades into a quarantine row;
 *  - every state transition (planned -> running(pid, attempt) ->
 *    done/failed/gaveup) is appended to a fsync'd `last-journal-v1`
 *    write-ahead journal, and every artifact is written through
 *    atomicWriteFile(), so `orchestrate --resume` can re-attach to a
 *    killed campaign, skip shards whose partial caches verify
 *    (readBenchCacheStrict + key-set match against the manifest), and
 *    re-run only the rest;
 *  - the merged cache and divergence report are byte-identical to an
 *    uninterrupted single-process run whenever no shard permanently
 *    gave up — the §4d canonical-order argument extended across
 *    crashes and resumes, enforced end-to-end by the chaos harness
 *    (scripts/chaos_sweep.sh, tests/test_orchestrate.cc).
 */

#ifndef LAST_SIM_ORCHESTRATE_HH
#define LAST_SIM_ORCHESTRATE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/json_in.hh"
#include "obs/divergence.hh"
#include "sim/bench_cache.hh"
#include "sim/shard.hh"

namespace last::sim
{

/** Journal schema identifier (first line of the JSONL journal). */
constexpr const char *JournalSchema = "last-journal-v1";

/** How a worker attempt ended, from the supervisor's point of view. */
enum class ExitClass
{
    Clean,      ///< exit 0: shard completed, no quarantined specs
    Quarantine, ///< exit 2: shard completed, some specs quarantined
    Failure,    ///< any other exit code (usage / I/O / fatal)
    Crash,      ///< killed by a signal it did not ask for
    Timeout,    ///< supervisor killed it at the wall-clock deadline
};

const char *exitClassName(ExitClass cls);

/** A classified wait(2) status. */
struct ExitStatus
{
    ExitClass cls = ExitClass::Failure;
    int code = -1; ///< exit code when WIFEXITED, else -1
    int sig = 0;   ///< terminating signal when WIFSIGNALED, else 0

    /** One-line description for logs and journal events. */
    std::string describe() const;
};

/**
 * Classify a raw waitpid() status. `killedByDeadline` is the
 * supervisor's own knowledge that it SIGKILLed this worker at its
 * deadline — the wait status alone cannot distinguish "hung and shot"
 * from "crashed with SIGKILL from elsewhere".
 */
ExitStatus classifyExit(int waitStatus, bool killedByDeadline);

/**
 * Retry policy as a pure function: no wall-clock, no hidden state.
 * delayMs(shard, attempt) is the backoff after the attempt-th failure
 * (attempt >= 1) of that shard — capped exponential with
 * deterministic jitter drawn uniformly from [d/2, d] (splitmix64 of
 * seed/shard/attempt), so concurrent failing shards never retry in
 * lockstep yet every delay is reproducible in tests.
 */
struct BackoffPolicy
{
    uint64_t baseMs = 250;
    uint64_t capMs = 8000;
    unsigned maxAttempts = 4; ///< attempts per shard before giving up
    uint64_t seed = 0x9e3779b97f4a7c15ull;

    uint64_t delayMs(unsigned shard, unsigned attempt) const;
    bool giveUp(unsigned attemptsMade) const
    {
        return attemptsMade >= maxAttempts;
    }
};

/** Append-only fsync'd JSONL journal (`last-journal-v1`). Each line is
 *  durable before the supervisor acts on the transition it records, so
 *  the journal never claims less than what happened. */
class Journal
{
  public:
    Journal() = default;
    ~Journal();
    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /** Open (creating; truncating when `truncate`) for appending.
     *  @throws ConfigError on I/O failure. */
    void open(const std::string &path, bool truncate);
    /** Append one JSON line + fdatasync. @throws ConfigError. */
    void append(const std::string &jsonLine);
    bool isOpen() const { return fd >= 0; }

  private:
    int fd = -1;
    std::string path_;
};

/**
 * Load a journal, tolerating a torn tail: a final line that is
 * unterminated or unparseable (the signature of a crash mid-append)
 * is dropped with a warn(); anything malformed *before* the tail
 * throws ConfigError with path + byte offset. Returns the parsed
 * line objects in order.
 */
std::vector<jsonin::JsonValue> loadJournal(const std::string &path);

/**
 * Verify a shard's partial cache on disk: it must parse strictly
 * (readBenchCacheStrict), match the manifest's scale, and hold exactly
 * one row per manifest entry, keyed by that entry's specCacheKey.
 * @return true when the cache fully accounts for the shard;
 * otherwise false with `why` (if non-null) explaining the failure.
 * This — not journal state — is what --resume trusts: the artifact is
 * the truth, the journal is the narrative.
 */
bool verifyShardCache(const std::string &path, const ShardManifest &m,
                      std::string *why);

struct OrchestrateOptions
{
    unsigned shards = 2;
    double scale = 1.0;
    uint64_t seed = 0;
    int ldsStrideWords = -1;
    int ldsPadWords = -1;

    /** Campaign directory: manifests (shard_<i>.json), partial caches
     *  (part_<i>.csv), and the journal (journal.jsonl) live here. */
    std::string workDir = ".";
    std::string outPath;     ///< merged cache (required)
    std::string divergePath; ///< merged divergence report ("" = skip)
    double threshold = obs::DefaultDivergenceThreshold;

    unsigned jobsPerWorker = 0; ///< --jobs forwarded to workers
    /** Wall-clock deadline per worker attempt; 0 = none. A worker
     *  still alive this long after spawn is SIGKILLed and classified
     *  Timeout. */
    uint64_t workerTimeoutMs = 0;
    uint64_t pollIntervalMs = 50;
    /** Max concurrently-running workers; 0 = all eligible shards. */
    unsigned maxParallel = 0;
    BackoffPolicy backoff;

    /** Re-attach to an existing campaign directory: sanity-check the
     *  journal header, skip shards whose caches verify, re-run the
     *  rest. Off: start fresh (journal truncated). */
    bool resume = false;

    /** Worker executable; "" = this process's own binary
     *  (/proc/self/exe), which is correct when the supervisor is
     *  `last_sweep orchestrate` itself. */
    std::string workerExe;
    /** Chaos hook: when set, workers exec this program instead, with
     *  the real worker argv appended (argv[1...]), plus
     *  LAST_CHAOS_SHARD / LAST_CHAOS_ATTEMPT in the environment — the
     *  wrapper decides to exec the real worker, die, hang, or truncate
     *  output. Test-only; see scripts/chaos_sweep.sh. */
    std::string chaosExec;

    /** Test override for the sweep matrix; empty = canonicalMatrix
     *  (scale/seed/lds knobs above). Lets the orchestrator tests run
     *  fake /bin/sh workers against synthetic matrices without
     *  touching the real simulator. */
    std::vector<RunSpec> matrix;
};

/** Per-shard summary of how the campaign treated it. */
struct ShardOutcome
{
    unsigned shard = 0;
    bool done = false;    ///< produced a verified cache
    bool gaveUp = false;  ///< exhausted attempts; rows synthesized
    bool skipped = false; ///< resume: pre-existing cache verified
    unsigned attempts = 0;
    bool quarantined = false; ///< any quarantine row in its cache
    std::string lastFailure;  ///< last attempt's classification
};

struct CampaignOutcome
{
    BenchCacheFile merged;
    std::vector<ShardOutcome> shards;
    size_t quarantinedRows = 0; ///< in the merged cache
    unsigned retries = 0;       ///< failed attempts that were retried
    unsigned gaveUp = 0;        ///< shards degraded to quarantine rows
    size_t skippedOnResume = 0;

    /** Every shard produced a real, verified cache. */
    bool allShardsDone() const { return gaveUp == 0; }
};

/**
 * Run (or resume) a campaign: plan + write manifests, supervise
 * workers to completion under the retry policy, merge the partial
 * caches (synthesizing quarantine rows for given-up shards), and
 * atomically write the merged cache + divergence report.
 * @throws ConfigError on setup errors (unusable work dir, resume
 * against a journal from a different campaign); per-shard failures
 * never throw — they retry, then degrade.
 */
CampaignOutcome runCampaign(const OrchestrateOptions &opts);

/** This process's executable path (/proc/self/exe), for re-invoking
 *  ourselves as the worker. @throws ConfigError if unreadable. */
std::string selfExePath();

} // namespace last::sim

#endif // LAST_SIM_ORCHESTRATE_HH
