/**
 * @file
 * Parallel experiment driver: a fixed-size worker pool for running
 * independent simulations concurrently.
 *
 * Every simulation owns its Runtime, Gpu, and FunctionalMemory and
 * shares no mutable state with its siblings (no globals, no lazy
 * static tables, per-workload Rng instances), so a (workload x ISA x
 * config) sweep is embarrassingly parallel. The driver preserves the
 * serial contract exactly:
 *  - results come back in input order, bit-identical to a serial run
 *    regardless of worker count or scheduling;
 *  - a worker exception is captured and rethrown to the caller (the
 *    lowest-index one, matching what a serial loop would have thrown
 *    first) after all workers have drained — never a hang.
 *
 * Worker count defaults to std::thread::hardware_concurrency() and is
 * overridable with the LAST_JOBS environment variable (LAST_JOBS=1
 * runs inline on the calling thread).
 */

#ifndef LAST_SIM_PARALLEL_HH
#define LAST_SIM_PARALLEL_HH

#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/experiment.hh"

namespace last::sim
{

/** One simulation request for the parallel driver. */
struct RunSpec
{
    std::string workload;
    IsaKind isa = IsaKind::HSAIL;
    GpuConfig cfg{};
    workloads::WorkloadScale scale{};
};

/** Worker-pool size: LAST_JOBS if set (clamped to >= 1), else
 *  hardware_concurrency(), else 1. */
unsigned defaultJobs();

/** Scheduler counters from one parallelInvoke(Collect) call — how much
 *  load-balancing the work-stealing pool actually did. Observational
 *  only: the numbers depend on OS scheduling, never the results. */
struct PoolStats
{
    uint64_t steals = 0;      ///< successful steal transactions
    uint64_t stolenTasks = 0; ///< tasks migrated by those steals
};

/**
 * Run every task on a fixed-size work-stealing worker pool (jobs == 0
 * means defaultJobs()). Each worker starts with a contiguous chunk of
 * the task vector in its local deque and executes it in input order;
 * when a worker's deque runs dry it steals the back half of a victim's
 * remaining tasks (steal-half, scanning victims round-robin from its
 * own index). Long tasks therefore cannot strand the batch on one
 * worker the way static chunking or even a shared claim cursor can
 * (the cursor balances task *counts*, stealing balances *remaining
 * work*). After all workers join, the exception from the lowest-index
 * failed task (if any) is rethrown.
 */
void parallelInvoke(const std::vector<std::function<void()>> &tasks,
                    unsigned jobs = 0);

/**
 * Like parallelInvoke, but graceful: instead of rethrowing, return a
 * vector with slot i holding the exception task i threw (null when it
 * succeeded). Never throws itself — one poisoned task cannot take the
 * rest of the batch down. runSweep builds its quarantine on this.
 * @param stats optional out-param receiving scheduler counters.
 */
std::vector<std::exception_ptr>
parallelInvokeCollect(const std::vector<std::function<void()>> &tasks,
                      unsigned jobs = 0, PoolStats *stats = nullptr);

/**
 * The pre-work-stealing baseline: static contiguous chunking, one
 * chunk per worker, no rebalancing. Kept only so benchmarks and tests
 * can quantify what stealing buys on skewed task durations
 * (BM_ParallelInvokeSkewed*); everything in the simulator goes through
 * parallelInvoke. Same error contract as parallelInvoke.
 */
void parallelInvokeStatic(const std::vector<std::function<void()>> &tasks,
                          unsigned jobs = 0);

/** Run every spec concurrently; results in input (spec) order.
 *  Fail-fast contract: the first (lowest-index) worker exception is
 *  rethrown after all workers drain. Use runSweep for the graceful,
 *  quarantining variant. */
std::vector<AppResult> runMany(const std::vector<RunSpec> &specs,
                               unsigned jobs = 0);

/** Both ISA levels of one workload, concurrently.
 *  Index 0 = HSAIL, 1 = GCN3 (same contract as runBoth): verifies
 *  cross-ISA agreement, throwing IsaMismatchError on divergence. */
std::pair<AppResult, AppResult>
runBothParallel(const std::string &workload,
                const GpuConfig &cfg = GpuConfig{},
                const workloads::WorkloadScale &scale = {},
                unsigned jobs = 0);

/** A sweep entry whose simulation threw — in the parallel pass and
 *  again (when retry is enabled) in a clean serial retry. */
struct QuarantinedRun
{
    size_t index = 0; ///< position in the input spec vector
    RunSpec spec;
    std::string errorKind;    ///< SimError kindName(), or "exception"
    std::string errorMessage; ///< what() of the final failure
    std::string detail;       ///< DeadlockError wavefront dump, if any
    bool retried = false;     ///< a serial retry ran (and also failed)

    /** One-paragraph human-readable record (detail included). */
    std::string format() const;
};

struct SweepOptions
{
    unsigned jobs = 0;       ///< 0 = defaultJobs()
    bool retryFailed = true; ///< retry each failure once, serially
};

/** What runSweep hands back: full results plus the casualty list. */
struct SweepReport
{
    /** One entry per input spec, input order. Quarantined entries have
     *  r.quarantined set and carry no statistics. */
    std::vector<AppResult> results;
    std::vector<QuarantinedRun> quarantined; ///< ascending index order
    unsigned recoveredOnRetry = 0; ///< failed parallel, passed serial

    bool allOk() const { return quarantined.empty(); }
    /** Multi-line end-of-sweep summary (empty string when allOk()). */
    std::string format() const;
};

/**
 * Graceful-degradation sweep: run every spec like runMany, but capture
 * per-spec failures instead of failing the sweep. Each failed spec is
 * retried once serially (a transient — OOM under parallel load, a
 * scheduling-dependent bug — may pass on a quiet machine); specs that
 * fail the retry too come back as quarantined AppResults with the
 * error attached, while every healthy spec's results are identical to
 * what a fault-free serial run would have produced.
 */
SweepReport runSweep(const std::vector<RunSpec> &specs,
                     const SweepOptions &opts = {});

} // namespace last::sim

#endif // LAST_SIM_PARALLEL_HH
