/**
 * @file
 * Parallel experiment driver: a fixed-size worker pool for running
 * independent simulations concurrently.
 *
 * Every simulation owns its Runtime, Gpu, and FunctionalMemory and
 * shares no mutable state with its siblings (no globals, no lazy
 * static tables, per-workload Rng instances), so a (workload x ISA x
 * config) sweep is embarrassingly parallel. The driver preserves the
 * serial contract exactly:
 *  - results come back in input order, bit-identical to a serial run
 *    regardless of worker count or scheduling;
 *  - a worker exception is captured and rethrown to the caller (the
 *    lowest-index one, matching what a serial loop would have thrown
 *    first) after all workers have drained — never a hang.
 *
 * Worker count defaults to std::thread::hardware_concurrency() and is
 * overridable with the LAST_JOBS environment variable (LAST_JOBS=1
 * runs inline on the calling thread).
 */

#ifndef LAST_SIM_PARALLEL_HH
#define LAST_SIM_PARALLEL_HH

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/experiment.hh"

namespace last::sim
{

/** One simulation request for the parallel driver. */
struct RunSpec
{
    std::string workload;
    IsaKind isa = IsaKind::HSAIL;
    GpuConfig cfg{};
    workloads::WorkloadScale scale{};
};

/** Worker-pool size: LAST_JOBS if set (clamped to >= 1), else
 *  hardware_concurrency(), else 1. */
unsigned defaultJobs();

/**
 * Run every task on a fixed-size worker pool (jobs == 0 means
 * defaultJobs()). Tasks are claimed from an atomic cursor, so workers
 * stay saturated even when task durations vary. After all workers
 * join, the exception from the lowest-index failed task (if any) is
 * rethrown.
 */
void parallelInvoke(const std::vector<std::function<void()>> &tasks,
                    unsigned jobs = 0);

/** Run every spec concurrently; results in input (spec) order. */
std::vector<AppResult> runMany(const std::vector<RunSpec> &specs,
                               unsigned jobs = 0);

/** Both ISA levels of one workload, concurrently.
 *  Index 0 = HSAIL, 1 = GCN3 (same contract as runBoth). */
std::pair<AppResult, AppResult>
runBothParallel(const std::string &workload,
                const GpuConfig &cfg = GpuConfig{},
                const workloads::WorkloadScale &scale = {},
                unsigned jobs = 0);

} // namespace last::sim

#endif // LAST_SIM_PARALLEL_HH
