#include "sim/artifact_cache.hh"

#include <cstring>

#include "common/logging.hh"

namespace last::sim
{

namespace
{

std::atomic<bool> cacheEnabled{true};

std::string
mapKey(const ArtifactKey &key)
{
    // The scale participates bit-exactly: two doubles that compare
    // unequal must never share an artifact.
    uint64_t scale_bits;
    static_assert(sizeof(scale_bits) == sizeof(key.scale));
    std::memcpy(&scale_bits, &key.scale, sizeof(scale_bits));
    std::string k = key.workload;
    k += '\0';
    k += isaName(key.isa);
    k += '\0';
    k += std::to_string(scale_bits);
    k += '\0';
    k += std::to_string(key.seq);
    k += '\0';
    k += std::to_string(key.params);
    return k;
}

} // namespace

ArtifactCache &
ArtifactCache::instance()
{
    static ArtifactCache cache;
    return cache;
}

ArtifactCache::Artifact
ArtifactCache::getOrBuild(const ArtifactKey &key, uint64_t digest,
                          const Builder &build)
{
    std::string k = mapKey(key);
    std::lock_guard<std::mutex> lock(mu);
    auto it = entries.find(k);
    if (it != entries.end()) {
        panic_if(it->second.digest != digest,
                 "artifact cache key collision for %s/%s seq %u: same "
                 "key, different kernel content — cache key unsound",
                 key.workload.c_str(), isaName(key.isa), key.seq);
        ++nHits;
        return it->second.code;
    }
    Artifact built = build();
    panic_if(!built, "artifact builder for %s/%s returned null",
             key.workload.c_str(), isaName(key.isa));
    ++nMisses;
    entries.emplace(std::move(k), Entry{digest, built});
    return built;
}

void
ArtifactCache::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    entries.clear();
}

bool
ArtifactCache::enabled()
{
    return cacheEnabled.load(std::memory_order_relaxed);
}

void
ArtifactCache::setEnabled(bool on)
{
    cacheEnabled.store(on, std::memory_order_relaxed);
}

} // namespace last::sim
