#include "sim/faultinject.hh"

#include <sstream>

#include "common/random.hh"

namespace last::sim
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::MemBitFlip: return "mem-bit-flip";
      case FaultKind::CacheDelay: return "cache-delay";
      case FaultKind::CacheDrop: return "cache-drop";
      case FaultKind::WedgeWavefront: return "wedge-wavefront";
    }
    return "unknown";
}

std::string
Fault::describe() const
{
    std::ostringstream os;
    os << faultKindName(kind) << "@" << cycle;
    switch (kind) {
      case FaultKind::MemBitFlip:
        os << " addr=0x" << std::hex << addr << std::dec << " bit="
           << bit;
        break;
      case FaultKind::CacheDelay:
        os << " cu=" << cu << " extra=" << extraLatency << " count="
           << count;
        break;
      case FaultKind::CacheDrop:
        os << " cu=" << cu << " count=" << count;
        break;
      case FaultKind::WedgeWavefront:
        os << " cu=" << cu << " wf=" << wfSlot;
        break;
    }
    return os.str();
}

std::string
FaultPlan::describe() const
{
    std::ostringstream os;
    for (size_t i = 0; i < faults.size(); ++i)
        os << (i ? "; " : "") << faults[i].describe();
    return os.str();
}

FaultPlan
FaultPlan::wedge(unsigned cu, unsigned wfSlot, Cycle cycle)
{
    Fault f;
    f.kind = FaultKind::WedgeWavefront;
    f.cu = cu;
    f.wfSlot = wfSlot;
    f.cycle = cycle;
    return FaultPlan{}.add(f);
}

FaultPlan
FaultPlan::bitFlip(Addr addr, unsigned bit, Cycle cycle)
{
    Fault f;
    f.kind = FaultKind::MemBitFlip;
    f.addr = addr;
    f.bit = bit % 8;
    f.cycle = cycle;
    return FaultPlan{}.add(f);
}

FaultPlan
FaultPlan::cacheDelay(unsigned cu, Cycle cycle, Cycle extra,
                      unsigned count)
{
    Fault f;
    f.kind = FaultKind::CacheDelay;
    f.cu = cu;
    f.cycle = cycle;
    f.extraLatency = extra;
    f.count = count;
    return FaultPlan{}.add(f);
}

FaultPlan
FaultPlan::cacheDrop(unsigned cu, Cycle cycle, unsigned count)
{
    Fault f;
    f.kind = FaultKind::CacheDrop;
    f.cu = cu;
    f.cycle = cycle;
    f.count = count;
    return FaultPlan{}.add(f);
}

FaultPlan
FaultPlan::random(uint64_t seed, unsigned n, Cycle maxCycle,
                  Addr addrLo, Addr addrHi, unsigned numCus,
                  unsigned wfSlots)
{
    Rng rng(seed);
    FaultPlan plan;
    for (unsigned i = 0; i < n; ++i) {
        Fault f;
        f.kind = FaultKind(rng.nextBounded(4));
        f.cycle = rng.nextBounded(maxCycle ? maxCycle : 1);
        f.cu = numCus ? unsigned(rng.nextBounded(numCus)) : 0;
        switch (f.kind) {
          case FaultKind::MemBitFlip:
            f.addr = addrLo + rng.nextBounded(
                                  addrHi > addrLo ? addrHi - addrLo : 1);
            f.bit = unsigned(rng.nextBounded(8));
            break;
          case FaultKind::CacheDelay:
            f.extraLatency = 1 + rng.nextBounded(512);
            f.count = 1 + unsigned(rng.nextBounded(16));
            break;
          case FaultKind::CacheDrop:
            f.count = 1 + unsigned(rng.nextBounded(4));
            break;
          case FaultKind::WedgeWavefront:
            f.wfSlot = wfSlots ? unsigned(rng.nextBounded(wfSlots)) : 0;
            break;
        }
        plan.add(f);
    }
    return plan;
}

} // namespace last::sim
