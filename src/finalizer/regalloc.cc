#include "finalizer/regalloc.hh"

#include <algorithm>
#include <functional>
#include <map>

#include "common/logging.hh"
#include "hsail/inst.hh"

namespace last::finalizer
{

using hsail::CfRegion;
using hsail::HsailInst;

namespace
{

struct Atom
{
    uint16_t base;
    unsigned width; // contiguous 32-bit registers
    size_t start = SIZE_MAX;
    size_t end = 0;
    bool resident = false;
};

/** A simple free-list allocator over a contiguous register range. */
class Pool
{
  public:
    Pool(unsigned first, unsigned last) : first(first), last(last)
    {
        inUse.assign(last + 1 >= first ? last - first + 1 : 0, false);
    }

    /**
     * Allocate `width` contiguous registers; returns first index or
     * -1 on exhaustion. Next-fit with wraparound: freed registers are
     * recycled FIFO-style rather than immediately, which is how
     * scheduling-aware register allocators spread values (and what
     * keeps register reuse distances realistic).
     */
    int
    alloc(unsigned width)
    {
        size_t n = inUse.size();
        if (n == 0)
            return -1;
        // The wraparound window starts small and doubles under
        // pressure, so spread stays proportional to the live set.
        while (true) {
            size_t win = std::min(window, n);
            for (size_t k = 0; k < win; ++k) {
                size_t i = (searchStart + k) % win;
                if (i + width > n)
                    continue;
                bool ok = true;
                for (unsigned w = 0; w < width; ++w)
                    ok = ok && !inUse[i + w];
                if (ok) {
                    for (unsigned w = 0; w < width; ++w)
                        inUse[i + w] = true;
                    high = std::max(high,
                                    unsigned(first + i + width - 1));
                    searchStart = (i + width) % win;
                    return int(first + i);
                }
            }
            if (win >= n)
                return -1;
            window = win * 2;
        }
    }

    void
    release(unsigned reg, unsigned width)
    {
        for (unsigned w = 0; w < width; ++w)
            inUse[reg - first + w] = false;
    }

    unsigned highWater() const { return high; }

  private:
    unsigned first;
    unsigned last;
    unsigned high = 0;
    size_t searchStart = 0;
    size_t window = 32;
    std::vector<bool> inUse;
};

} // namespace

AllocResult
allocateRegisters(const hsail::IlKernel &il, const UniformityInfo &uni,
                  const AllocBudget &budget)
{
    const arch::KernelCode &code = *il.code;
    size_t nregs = code.vregsUsed;

    // --- Build atoms as connected components: a multi-word operand
    // links its registers together, and registers shared between a
    // pair and another value (possible once the IL itself has been
    // register-allocated with reuse) merge into one wider atom so the
    // contiguity invariant (reg r+1 holds the high word of r) always
    // holds after allocation.
    std::vector<int> parent(nregs);
    for (size_t r = 0; r < nregs; ++r)
        parent[r] = int(r);
    std::function<int(int)> find = [&](int x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    auto unite = [&](int x, int y) {
        x = find(x);
        y = find(y);
        if (x != y)
            parent[std::max(x, y)] = std::min(x, y);
    };

    std::vector<bool> referenced(nregs, false);
    for (size_t i = 0; i < code.numInsts(); ++i) {
        for (const auto &op : code.inst(i).regOps()) {
            for (unsigned w = 0; w < op.width; ++w) {
                referenced[op.idx + w] = true;
                if (w > 0)
                    unite(op.idx, op.idx + w);
            }
        }
    }

    std::vector<int> atomOf(nregs, -1);
    std::vector<Atom> atoms;
    for (size_t r = 0; r < nregs; ++r) {
        if (!referenced[r])
            continue;
        int root = find(int(r));
        if (atomOf[root] < 0) {
            atomOf[root] = int(atoms.size());
            atoms.push_back(
                {uint16_t(root), 1, SIZE_MAX, 0, false});
        }
        atomOf[r] = atomOf[root];
        Atom &a = atoms[atomOf[root]];
        a.width = std::max<unsigned>(a.width, unsigned(r) - root + 1);
    }

    // --- Live ranges over linear IL order.
    for (size_t i = 0; i < code.numInsts(); ++i) {
        for (const auto &op : code.inst(i).regOps()) {
            Atom &a = atoms[atomOf[op.idx]];
            a.start = std::min(a.start, i);
            a.end = std::max(a.end, i);
        }
    }

    // Extend ranges across loop bodies (loop-carried liveness).
    bool grew = true;
    while (grew) {
        grew = false;
        for (const auto &r : il.regions) {
            if (r.kind != CfRegion::Kind::Loop)
                continue;
            for (auto &a : atoms) {
                if (a.start <= r.branchIdx && a.end >= r.bodyFirst &&
                    a.end < r.branchIdx) {
                    a.end = r.branchIdx;
                    grew = true;
                }
            }
        }
    }

    // --- Residency per atom: every member register must be resident.
    for (auto &a : atoms) {
        a.resident = true;
        for (unsigned w = 0; w < a.width; ++w)
            a.resident = a.resident && uni.sgprResident[a.base + w];
    }

    // --- Linear scan.
    std::vector<size_t> order(atoms.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
        return atoms[x].start < atoms[y].start;
    });

    Pool vpool(budget.vgprFirst, budget.vgprLast);
    Pool spool(budget.sgprFirst, budget.sgprLast);

    struct Active
    {
        size_t atom;
        bool sgpr;
        unsigned reg;
    };
    std::vector<Active> active;

    AllocResult res;
    res.loc.assign(nregs, Loc{});

    std::vector<Loc> atomLoc(atoms.size());

    for (size_t oi : order) {
        Atom &a = atoms[oi];
        // Expire atoms whose range ended before this start.
        for (auto it = active.begin(); it != active.end();) {
            if (atoms[it->atom].end < a.start) {
                (it->sgpr ? spool : vpool)
                    .release(it->reg, atoms[it->atom].width);
                it = active.erase(it);
            } else {
                ++it;
            }
        }

        bool want_sgpr = a.resident;
        int reg = -1;
        bool got_sgpr = false;
        if (want_sgpr) {
            reg = spool.alloc(a.width);
            got_sgpr = reg >= 0;
            // A failed SGPR grab cannot silently demote to VGPR: scalar
            // instructions selected for this atom's defs could not read
            // it back. Kernels are sized to fit the SRF budget.
            fatal_if(reg < 0,
                     "kernel %s exceeds the scalar register budget",
                     code.name().c_str());
        }
        if (reg < 0)
            reg = vpool.alloc(a.width);
        fatal_if(reg < 0,
                 "kernel %s exceeds the GCN3 vector register budget "
                 "(%u..%u); reduce live values or add spill code",
                 code.name().c_str(), budget.vgprFirst, budget.vgprLast);

        atomLoc[oi] = {got_sgpr ? Loc::Kind::Sgpr : Loc::Kind::Vgpr,
                       uint16_t(reg)};
        active.push_back({oi, got_sgpr, unsigned(reg)});
    }

    for (size_t r = 0; r < nregs; ++r) {
        if (atomOf[r] < 0)
            continue;
        const Atom &a = atoms[atomOf[r]];
        Loc base = atomLoc[atomOf[r]];
        if (base.kind == Loc::Kind::None)
            continue;
        res.loc[r] = {base.kind, uint16_t(base.reg + (r - a.base))};
    }

    res.vgprsUsed = vpool.highWater() ? vpool.highWater() + 1 : 0;
    res.sgprsUsed = spool.highWater() ? spool.highWater() + 1 : 0;
    return res;
}

void
compactIlRegisters(hsail::IlKernel &il)
{
    arch::KernelCode &code = *il.code;
    // Remapping rewrites every instruction's operand list; a predecode
    // cache built before this point would keep the old registers.
    panic_if(code.predecoded(),
             "register compaction after predecode in kernel %s",
             code.name().c_str());
    size_t nregs = code.vregsUsed;
    if (nregs == 0)
        return;

    // Reuse the allocator with an all-VGPR budget sized to the IL's
    // architectural limit; residency is irrelevant here.
    UniformityInfo uni;
    uni.uniform.assign(nregs, false);
    uni.sgprResident.assign(nregs, false);
    uni.regionDivergent.assign(il.regions.size(), true);

    AllocBudget budget;
    budget.vgprFirst = 0;
    budget.vgprLast = 2047;
    budget.sgprFirst = 1;
    budget.sgprLast = 0; // empty scalar pool
    AllocResult res = allocateRegisters(il, uni, budget);

    std::vector<uint16_t> remap(nregs);
    for (size_t r = 0; r < nregs; ++r)
        remap[r] = res.loc[r].kind == Loc::Kind::None
            ? uint16_t(0)
            : res.loc[r].reg;

    for (size_t i = 0; i < code.numInsts(); ++i) {
        auto &inst = const_cast<HsailInst &>(
            static_cast<const HsailInst &>(code.inst(i)));
        inst.remapRegs(remap);
    }
    for (auto &r : il.regions)
        r.condReg = remap[r.condReg];
    code.vregsUsed = res.vgprsUsed;
    // Registers are final now: predecode here so the artifact cache
    // amortizes the handler table along with the kernel.
    code.execMetas();
}

} // namespace last::finalizer
