#include "finalizer/finalizer.hh"

#include <bit>
#include <bitset>
#include <map>

#include "common/logging.hh"
#include "finalizer/abi.hh"
#include "finalizer/backend.hh"
#include "finalizer/regalloc.hh"
#include "finalizer/uniformity.hh"
#include "gcn3/inst.hh"
#include "hsail/inst.hh"

namespace last::finalizer
{

using gcn3::Dst;
using gcn3::Gcn3Inst;
using gcn3::Gcn3Op;
using gcn3::Src;
using hsail::CfRegion;
using hsail::CmpOp;
using hsail::DataType;
using hsail::HsailInst;
using hsail::Opcode;
using hsail::Segment;

namespace
{

constexpr uint16_t NoIlReg = 0xffff;

/** Number of reserved VGPR temporaries (addresses, data movs, divide
 *  expansion scratch). */
constexpr unsigned NumVTemps = 14;

Gcn3Op
vcmpOp(CmpOp c, DataType t)
{
    bool f32 = t == DataType::F32;
    bool f64 = t == DataType::F64;
    bool s32 = t == DataType::S32;
    switch (c) {
      case CmpOp::Eq:
        return f64 ? Gcn3Op::V_CMP_EQ_F64 : f32 ? Gcn3Op::V_CMP_EQ_F32
                   : s32 ? Gcn3Op::V_CMP_EQ_I32 : Gcn3Op::V_CMP_EQ_U32;
      case CmpOp::Ne:
        return f64 ? Gcn3Op::V_CMP_NE_F64 : f32 ? Gcn3Op::V_CMP_NE_F32
                   : s32 ? Gcn3Op::V_CMP_NE_I32 : Gcn3Op::V_CMP_NE_U32;
      case CmpOp::Lt:
        return f64 ? Gcn3Op::V_CMP_LT_F64 : f32 ? Gcn3Op::V_CMP_LT_F32
                   : s32 ? Gcn3Op::V_CMP_LT_I32 : Gcn3Op::V_CMP_LT_U32;
      case CmpOp::Le:
        return f64 ? Gcn3Op::V_CMP_LE_F64 : f32 ? Gcn3Op::V_CMP_LE_F32
                   : s32 ? Gcn3Op::V_CMP_LE_I32 : Gcn3Op::V_CMP_LE_U32;
      case CmpOp::Gt:
        return f64 ? Gcn3Op::V_CMP_GT_F64 : f32 ? Gcn3Op::V_CMP_GT_F32
                   : s32 ? Gcn3Op::V_CMP_GT_I32 : Gcn3Op::V_CMP_GT_U32;
      case CmpOp::Ge:
        return f64 ? Gcn3Op::V_CMP_GE_F64 : f32 ? Gcn3Op::V_CMP_GE_F32
                   : s32 ? Gcn3Op::V_CMP_GE_I32 : Gcn3Op::V_CMP_GE_U32;
    }
    return Gcn3Op::V_CMP_EQ_U32;
}

Gcn3Op
scmpOp(CmpOp c, DataType t)
{
    bool s32 = t == DataType::S32;
    switch (c) {
      case CmpOp::Eq:
        return s32 ? Gcn3Op::S_CMP_EQ_I32 : Gcn3Op::S_CMP_EQ_U32;
      case CmpOp::Ne:
        return s32 ? Gcn3Op::S_CMP_LG_I32 : Gcn3Op::S_CMP_LG_U32;
      case CmpOp::Lt:
        return s32 ? Gcn3Op::S_CMP_LT_I32 : Gcn3Op::S_CMP_LT_U32;
      case CmpOp::Le:
        return s32 ? Gcn3Op::S_CMP_LE_I32 : Gcn3Op::S_CMP_LE_U32;
      case CmpOp::Gt:
        return s32 ? Gcn3Op::S_CMP_GT_I32 : Gcn3Op::S_CMP_GT_U32;
      case CmpOp::Ge:
        return s32 ? Gcn3Op::S_CMP_GE_I32 : Gcn3Op::S_CMP_GE_U32;
    }
    return Gcn3Op::S_CMP_EQ_U32;
}

/**
 * Emission back end: owns label fixups and the software dependency
 * management the GCN3 contract requires — s_waitcnt insertion before
 * the first use of in-flight memory results and s_nop insertion for
 * deterministic-latency VALU hazards.
 */
class Assembler
{
  public:
    Assembler(arch::KernelCode *code, FinalizeStats *stats)
        : code(code), stats(stats)
    {
    }

    unsigned
    newLabel()
    {
        labelTargets.push_back(SIZE_MAX);
        return unsigned(labelTargets.size() - 1);
    }

    void
    bind(unsigned label)
    {
        labelTargets[label] = count;
    }

    size_t
    emit(Gcn3Inst *inst)
    {
        maybeWait(*inst);
        maybeNop(*inst);
        if (inst->is(arch::IsBarrier) || inst->is(arch::IsEndPgm))
            waitAll();
        size_t idx = raw(inst);
        trackPending(*inst);
        return idx;
    }

    void
    emitBranch(Gcn3Op op, unsigned label)
    {
        // Loads must not be in flight across a control transfer: the
        // consumer may sit on either path.
        waitPendingLoads();
        auto *b = Gcn3Inst::branch(op, 0);
        fixups.push_back({count, label});
        raw(b);
        clearHazard();
    }

    /** Drain every outstanding memory operation (loads and stores). */
    void
    waitAll()
    {
        bool vm = vmLoadRegsV.any() || vmStores > 0;
        bool lgkm = lgkmRegsS.any() || lgkmRegsV.any() || lgkmStores > 0;
        if (vm || lgkm)
            insertWaitcnt(vm, lgkm);
    }

    void
    finalizeLabels()
    {
        for (const auto &f : fixups) {
            size_t target = labelTargets[f.label];
            panic_if(target == SIZE_MAX, "unbound label %u", f.label);
            panic_if(target >= count, "label %u points past the end",
                     f.label);
            auto &inst = const_cast<Gcn3Inst &>(
                static_cast<const Gcn3Inst &>(code->inst(f.instIdx)));
            inst.setTargetIndex(target);
        }
    }

    size_t numInsts() const { return count; }

  private:
    struct Fixup
    {
        size_t instIdx;
        unsigned label;
    };

    size_t
    raw(Gcn3Inst *inst)
    {
        if (stats) {
            auto fu = inst->fuType();
            if (fu == arch::FuType::SAlu || fu == arch::FuType::SMem)
                ++stats->scalarInsts;
            else if (fu == arch::FuType::VAlu ||
                     fu == arch::FuType::VMem || fu == arch::FuType::Lds)
                ++stats->vectorInsts;
        }
        code->append(std::unique_ptr<arch::Instruction>(inst));
        return count++;
    }

    void
    insertWaitcnt(bool vm, bool lgkm)
    {
        raw(Gcn3Inst::waitcnt(vm ? 0 : -1, lgkm ? 0 : -1));
        if (stats)
            ++stats->waitcntInserted;
        if (vm) {
            vmLoadRegsV.reset();
            vmStores = 0;
        }
        if (lgkm) {
            lgkmRegsS.reset();
            lgkmRegsV.reset();
            lgkmStores = 0;
        }
    }

    void
    waitPendingLoads()
    {
        bool vm = vmLoadRegsV.any();
        bool lgkm = lgkmRegsS.any() || lgkmRegsV.any();
        if (vm || lgkm)
            insertWaitcnt(vm, lgkm);
    }

    void
    maybeWait(const Gcn3Inst &inst)
    {
        bool vm = false, lgkm = false;
        for (const auto &op : inst.regOps()) {
            for (unsigned w = 0; w < op.width; ++w) {
                unsigned r = op.idx + w;
                if (op.cls == arch::RegClass::Vector) {
                    vm = vm || (r < 256 && vmLoadRegsV[r]);
                    lgkm = lgkm || (r < 256 && lgkmRegsV[r]);
                } else {
                    lgkm = lgkm || (r < 128 && lgkmRegsS[r]);
                }
            }
        }
        if (vm || lgkm)
            insertWaitcnt(vm, lgkm);
    }

    void
    trackPending(const Gcn3Inst &inst)
    {
        if (!inst.is(arch::IsMemory))
            return;
        auto fu = inst.fuType();
        bool is_load = inst.is(arch::IsLoad);
        if (fu == arch::FuType::VMem) {
            if (is_load) {
                for (const auto &op : inst.regOps())
                    if (op.isDef && op.cls == arch::RegClass::Vector)
                        for (unsigned w = 0; w < op.width; ++w)
                            vmLoadRegsV.set(op.idx + w);
            }
            if (inst.is(arch::IsStore))
                ++vmStores;
        } else if (fu == arch::FuType::SMem) {
            for (const auto &op : inst.regOps())
                if (op.isDef && op.cls == arch::RegClass::Scalar)
                    for (unsigned w = 0; w < op.width; ++w)
                        if (op.idx + w < 128)
                            lgkmRegsS.set(op.idx + w);
        } else if (fu == arch::FuType::Lds) {
            if (is_load) {
                for (const auto &op : inst.regOps())
                    if (op.isDef && op.cls == arch::RegClass::Vector)
                        for (unsigned w = 0; w < op.width; ++w)
                            lgkmRegsV.set(op.idx + w);
            } else {
                ++lgkmStores;
            }
        }
    }

    void
    maybeNop(const Gcn3Inst &inst)
    {
        bool hit = false;
        for (const auto &op : inst.regOps()) {
            if (!hazardValid)
                break;
            if (op.isDef)
                continue;
            for (unsigned w = 0; w < op.width && !hit; ++w) {
                unsigned r = op.idx + w;
                if (op.cls == arch::RegClass::Vector)
                    hit = r < 256 && hazardV[r];
                else
                    hit = r < 128 && hazardS[r];
            }
            if (hit)
                break;
        }
        // Deterministic-latency rule: only scalar-side consumers (SALU
        // reading VCC written by a VALU) and transcendental results
        // need a pipeline bubble the next cycle.
        bool scalar_consumer = inst.is(arch::IsScalarOp);
        if (hit && (scalar_consumer || hazardTrans)) {
            raw(Gcn3Inst::sopp(Gcn3Op::S_NOP, 0));
            if (stats)
                ++stats->nopsInserted;
        }
        clearHazard();
        updateHazard(inst);
    }

    void
    clearHazard()
    {
        hazardValid = false;
        hazardTrans = false;
        hazardV.reset();
        hazardS.reset();
    }

    void
    updateHazard(const Gcn3Inst &inst)
    {
        auto fu = inst.fuType();
        if (fu != arch::FuType::VAlu)
            return;
        bool writes_vcc = false;
        for (const auto &op : inst.regOps()) {
            if (!op.isDef)
                continue;
            if (op.cls == arch::RegClass::Scalar &&
                op.idx == arch::RegVccLo)
                writes_vcc = true;
        }
        if (!writes_vcc && !inst.is(arch::IsTrans))
            return;
        hazardValid = true;
        hazardTrans = inst.is(arch::IsTrans);
        for (const auto &op : inst.regOps()) {
            if (!op.isDef)
                continue;
            for (unsigned w = 0; w < op.width; ++w) {
                if (op.cls == arch::RegClass::Vector)
                    hazardV.set(op.idx + w);
                else if (op.idx + w < 128)
                    hazardS.set(op.idx + w);
            }
        }
    }

    arch::KernelCode *code;
    FinalizeStats *stats;
    size_t count = 0;
    std::vector<size_t> labelTargets;
    std::vector<Fixup> fixups;

    std::bitset<256> vmLoadRegsV;
    std::bitset<128> lgkmRegsS;
    std::bitset<256> lgkmRegsV;
    unsigned vmStores = 0;
    unsigned lgkmStores = 0;

    bool hazardValid = false;
    bool hazardTrans = false;
    std::bitset<256> hazardV;
    std::bitset<128> hazardS;
};

/** The instruction-selection walk. */
class Translator
{
  public:
    Translator(const hsail::IlKernel &il, const GpuConfig &cfg,
               FinalizeStats *stats)
        : il(il), ilc(*il.code), cfg(cfg), stats(stats),
          uni(analyzeUniformity(il)),
          out(std::make_unique<arch::KernelCode>(IsaKind::GCN3,
                                                 ilc.name())),
          a(out.get(), stats)
    {
        usesScratch =
            ilc.privateBytesPerWi > 0 || ilc.spillBytesPerWi > 0;
        vTempBase = usesScratch ? 3 : 1;

        maxDepth = 1;
        for (size_t x = 0; x < il.regions.size(); ++x) {
            unsigned depth = 1;
            for (size_t y = 0; y < il.regions.size(); ++y)
                if (x != y && contains(il.regions[y], il.regions[x]))
                    ++depth;
            maxDepth = std::max(maxDepth, depth);
        }

        // Exec-save pairs for nested divergent regions sit directly
        // above the ABI/temp block; allocatable SGPRs follow.
        saveStackBase = abi::FirstAllocSgpr;
        AllocBudget budget;
        budget.vgprFirst = vTempBase + NumVTemps;
        budget.vgprLast = cfg.maxVgprsPerWfGcn3 - 1;
        budget.sgprFirst = saveStackBase + 2 * maxDepth;
        budget.sgprLast = cfg.maxSgprsPerWfGcn3 - 1;
        alloc = allocateRegisters(il, uni, budget);

        useCount.assign(ilc.vregsUsed, 0);
        for (size_t i = 0; i < ilc.numInsts(); ++i)
            for (const auto &op : ilc.inst(i).regOps())
                if (!op.isDef)
                    ++useCount[op.idx];

        for (size_t r = 0; r < il.regions.size(); ++r) {
            const CfRegion &reg = il.regions[r];
            if (reg.kind == CfRegion::Kind::Loop) {
                loopHeadAt[reg.bodyFirst].push_back(r);
                loopTailAt[reg.branchIdx] = r;
            } else {
                ifHeadAt[reg.branchIdx] = r;
                ifEndAt[reg.endIdx].push_back(r);
                if (reg.kind == CfRegion::Kind::IfElse)
                    elseAt[reg.elseJumpIdx] = r;
            }
        }
    }

    std::unique_ptr<arch::KernelCode>
    run()
    {
        if (usesScratch)
            emitScratchPrologue();

        for (size_t i = 0; i < ilc.numInsts(); ++i) {
            // Close if-regions ending here (inner regions first: the
            // regions vector is ordered by close time).
            auto ends = ifEndAt.find(i);
            if (ends != ifEndAt.end())
                for (size_t r : ends->second)
                    emitIfEnd(il.regions[r]);

            // Open loops whose body starts here (outermost first).
            auto heads = loopHeadAt.find(i);
            if (heads != loopHeadAt.end())
                for (auto it = heads->second.rbegin();
                     it != heads->second.rend(); ++it)
                    emitLoopHead(il.regions[*it]);

            auto ih = ifHeadAt.find(i);
            if (ih != ifHeadAt.end()) {
                emitIfHead(il.regions[ih->second]);
                continue;
            }
            auto ej = elseAt.find(i);
            if (ej != elseAt.end()) {
                emitElse();
                continue;
            }
            auto lt = loopTailAt.find(i);
            if (lt != loopTailAt.end()) {
                emitLoopTail(il.regions[lt->second]);
                continue;
            }

            translate(i, static_cast<const HsailInst &>(ilc.inst(i)));
        }

        a.finalizeLabels();
        out->seal();
        gcn3::resolveBranchTargets(*out);
        // Predecode while the kernel is being built: the finalized
        // artifact is cached process-wide (sim/artifact_cache.hh), so
        // every subsequent sweep point reuses the handler table too.
        out->execMetas();

        out->vregsUsed =
            std::max<unsigned>(alloc.vgprsUsed, vTempBase + NumVTemps);
        // SGPR high-water mark: allocated SGPRs, the ABI/temp block,
        // and (only if exec-mask predication was emitted) the
        // exec-save pairs at the top of the file.
        out->sregsUsed =
            std::max<unsigned>(alloc.sgprsUsed, abi::FirstAllocSgpr);
        if (divEverUsed)
            out->sregsUsed = std::max<unsigned>(
                out->sregsUsed, saveStackBase + 2 * maxDepth);
        out->kernargBytes = ilc.kernargBytes;
        // GCN3 uses one scratch arena per work-item covering both the
        // private and spill segments.
        out->privateBytesPerWi =
            ilc.privateBytesPerWi + ilc.spillBytesPerWi;
        out->spillBytesPerWi = 0;
        out->ldsBytesPerWg = ilc.ldsBytesPerWg;

        if (stats) {
            stats->vgprsUsed = out->vregsUsed;
            stats->sgprsUsed = out->sregsUsed;
        }
        return std::move(out);
    }

  private:
    static bool
    contains(const CfRegion &outer, const CfRegion &inner)
    {
        auto span = [](const CfRegion &r) {
            if (r.kind == CfRegion::Kind::Loop)
                return std::pair<size_t, size_t>(r.bodyFirst, r.branchIdx);
            return std::pair<size_t, size_t>(r.branchIdx, r.endIdx - 1);
        };
        auto so = span(outer);
        auto si = span(inner);
        return so.first <= si.first && so.second >= si.second &&
               !(so == si);
    }

    // --- operand helpers -------------------------------------------

    Loc locOf(uint16_t r) const { return alloc.loc[r]; }
    bool inSgpr(uint16_t r) const
    {
        return locOf(r).kind == Loc::Kind::Sgpr;
    }

    Src
    srcOf(uint16_t r, unsigned word = 0) const
    {
        Loc l = locOf(r);
        panic_if(l.kind == Loc::Kind::None,
                 "IL reg %u has no location", r);
        return l.kind == Loc::Kind::Sgpr ? Src::sgpr(l.reg + word)
                                         : Src::vgpr(l.reg + word);
    }

    Dst
    dstOf(uint16_t r) const
    {
        Loc l = locOf(r);
        panic_if(l.kind == Loc::Kind::None,
                 "IL reg %u has no location", r);
        return l.kind == Loc::Kind::Sgpr ? Dst::sgpr(l.reg)
                                         : Dst::vgpr(l.reg);
    }

    unsigned vT(unsigned i) const { return vTempBase + i; }

    /** Address-materialization temporaries rotate over four VGPR
     *  pairs (vT0..vT7), as a scheduling compiler would, so temp
     *  reuse does not artificially collapse register reuse
     *  distances. */
    unsigned
    nextAddrTempPair()
    {
        unsigned t = vT(addrRot * 2);
        addrRot = (addrRot + 1) % 4;
        return t;
    }

    /** VALU instructions may read at most one distinct SGPR; shuffle
     *  extras through VGPR temporaries (more code expansion the IL
     *  never sees). */
    void
    legalizeValuSrcs(std::vector<Src> &srcs, bool wide)
    {
        int first_sgpr = -1;
        unsigned next_tmp = 8; // vT8..vT11 reserved for this
        for (auto &s : srcs) {
            if (s.kind != Src::Kind::Sgpr)
                continue;
            if (first_sgpr < 0 || s.reg == unsigned(first_sgpr))
            {
                first_sgpr = s.reg;
                continue;
            }
            unsigned words = wide ? 2 : 1;
            unsigned tmp = vT(next_tmp);
            next_tmp += words;
            for (unsigned w = 0; w < words; ++w)
                a.emit(Gcn3Inst::vop1(Gcn3Op::V_MOV_B32,
                                      Dst::vgpr(tmp + w),
                                      Src::sgpr(s.reg + w)));
            s = Src::vgpr(tmp);
        }
    }

    void
    emitValu2(Gcn3Op op, Dst d, Src s0, Src s1, bool wide = false)
    {
        std::vector<Src> ss{s0, s1};
        legalizeValuSrcs(ss, wide);
        a.emit(Gcn3Inst::vop2(op, d, ss[0], ss[1]));
    }

    void
    emitValu3(Gcn3Op op, Dst d, Src s0, Src s1, Src s2,
              uint8_t neg = 0, bool wide = false)
    {
        std::vector<Src> ss{s0, s1, s2};
        legalizeValuSrcs(ss, wide);
        a.emit(Gcn3Inst::vop3(op, d, ss[0], ss[1], ss[2], neg));
    }

    // --- divergence plumbing ---------------------------------------

    void
    ensureVcc(uint16_t cond)
    {
        if (vccFrom == cond) {
            vccFrom = NoIlReg;
            return;
        }
        vccFrom = NoIlReg;
        a.emit(Gcn3Inst::vcmp(Gcn3Op::V_CMP_NE_U32, Src::imm(0),
                              srcOf(cond)));
    }

    void
    ensureScc(uint16_t cond)
    {
        if (sccFrom == cond) {
            sccFrom = NoIlReg;
            return;
        }
        sccFrom = NoIlReg;
        a.emit(Gcn3Inst::sopc(Gcn3Op::S_CMP_LG_U32, srcOf(cond),
                              Src::imm(0)));
    }

    // --- control-flow regions --------------------------------------

    struct Ctx
    {
        CfRegion::Kind kind;
        bool divergent;
        unsigned savePair = 0;
        unsigned elseLabel = 0;
        unsigned endLabel = 0;
        unsigned topLabel = 0;
    };

    void
    emitIfHead(const CfRegion &r)
    {
        Ctx c;
        c.kind = r.kind;
        c.divergent = regionDivergent(r);
        c.endLabel = a.newLabel();
        bool has_else = r.kind == CfRegion::Kind::IfElse;
        if (has_else)
            c.elseLabel = a.newLabel();

        if (c.divergent) {
            c.savePair = saveStackBase + 2 * divDepth;
            ++divDepth;
            divEverUsed = true;
            ensureVcc(r.condReg);
            a.emit(Gcn3Inst::sop1(Gcn3Op::S_AND_SAVEEXEC_B64,
                                  Dst::sgpr(c.savePair), Src::vcc()));
            a.emitBranch(Gcn3Op::S_CBRANCH_EXECZ,
                         has_else ? c.elseLabel : c.endLabel);
        } else {
            ensureScc(r.condReg);
            a.emitBranch(Gcn3Op::S_CBRANCH_SCC0,
                         has_else ? c.elseLabel : c.endLabel);
        }
        ctx.push_back(c);
    }

    void
    emitElse()
    {
        panic_if(ctx.empty(), "else outside a region");
        Ctx &c = ctx.back();
        if (c.divergent) {
            a.bind(c.elseLabel);
            a.emit(Gcn3Inst::sop2(Gcn3Op::S_XOR_B64, Dst::execMask(),
                                  Src::sgpr(c.savePair),
                                  Src::execMask()));
            a.emitBranch(Gcn3Op::S_CBRANCH_EXECZ, c.endLabel);
        } else {
            a.emitBranch(Gcn3Op::S_BRANCH, c.endLabel);
            a.bind(c.elseLabel);
        }
    }

    void
    emitIfEnd(const CfRegion &)
    {
        panic_if(ctx.empty(), "region end without a head");
        Ctx c = ctx.back();
        ctx.pop_back();
        a.bind(c.endLabel);
        if (c.divergent) {
            a.emit(Gcn3Inst::sop1(Gcn3Op::S_MOV_B64, Dst::execMask(),
                                  Src::sgpr(c.savePair)));
            --divDepth;
        }
    }

    void
    emitLoopHead(const CfRegion &r)
    {
        Ctx c;
        c.kind = CfRegion::Kind::Loop;
        c.divergent = regionDivergent(r);
        c.topLabel = a.newLabel();
        if (c.divergent) {
            c.savePair = saveStackBase + 2 * divDepth;
            ++divDepth;
            divEverUsed = true;
            a.emit(Gcn3Inst::sop1(Gcn3Op::S_MOV_B64, Dst::sgpr(c.savePair),
                                  Src::execMask()));
        }
        a.waitAll(); // backedge target: nothing may be in flight
        a.bind(c.topLabel);
        ctx.push_back(c);
    }

    void
    emitLoopTail(const CfRegion &r)
    {
        panic_if(ctx.empty(), "loop tail without a head");
        Ctx c = ctx.back();
        ctx.pop_back();
        if (c.divergent) {
            ensureVcc(r.condReg);
            a.emit(Gcn3Inst::sop2(Gcn3Op::S_AND_B64, Dst::execMask(),
                                  Src::execMask(), Src::vcc()));
            a.emitBranch(Gcn3Op::S_CBRANCH_EXECNZ, c.topLabel);
            a.emit(Gcn3Inst::sop1(Gcn3Op::S_MOV_B64, Dst::execMask(),
                                  Src::sgpr(c.savePair)));
            --divDepth;
        } else {
            ensureScc(r.condReg);
            a.emitBranch(Gcn3Op::S_CBRANCH_SCC1, c.topLabel);
        }
    }

    bool
    regionDivergent(const CfRegion &r) const
    {
        for (size_t i = 0; i < il.regions.size(); ++i)
            if (&il.regions[i] == &r)
                return uni.regionDivergent[i];
        return true;
    }

    // --- ABI sequences ----------------------------------------------

    /** Prologue: compute each lane's scratch (private+spill) base into
     *  v[1:2]. Pure ABI work the IL never shows. */
    void
    emitScratchPrologue()
    {
        using G = Gcn3Op;
        // s10 = workgroup size (from the AQL packet)
        a.emit(Gcn3Inst::smem(G::S_LOAD_DWORD,
                              Dst::sgpr(abi::ScalarTemp0), abi::AqlPtrLo,
                              abi::PktWgSizeOffset));
        a.emit(Gcn3Inst::sop2(G::S_BFE_U32, Dst::sgpr(abi::ScalarTemp0),
                              Src::sgpr(abi::ScalarTemp0),
                              Src::bits32(0x100000)));
        // s10 = wgSize * wgId (first work-item of this WG)
        a.emit(Gcn3Inst::sop2(G::S_MUL_I32, Dst::sgpr(abi::ScalarTemp0),
                              Src::sgpr(abi::ScalarTemp0),
                              Src::sgpr(abi::WorkgroupId)));
        // v1 = flat work-item id
        a.emit(Gcn3Inst::vop2(G::V_ADD_U32, Dst::vgpr(1),
                              Src::sgpr(abi::ScalarTemp0), Src::vgpr(0)));
        // v1 = id * stride
        emitValu3(G::V_MUL_LO_U32, Dst::vgpr(1), Src::vgpr(1),
                  Src::sgpr(abi::ScratchStride), Src::imm(0));
        // v[1:2] = base + v1
        a.emit(Gcn3Inst::vop2(G::V_ADD_U32, Dst::vgpr(1),
                              Src::sgpr(abi::ScratchBaseLo),
                              Src::vgpr(1)));
        a.emit(Gcn3Inst::vop1(G::V_MOV_B32, Dst::vgpr(2),
                              Src::sgpr(abi::ScratchBaseLo + 1)));
        a.emit(Gcn3Inst::vop2(G::V_ADDC_U32, Dst::vgpr(2), Src::vgpr(2),
                              Src::imm(0)));
    }

    /** Table 1: expand workitemabsid through the packet and the ABI. */
    void
    emitWorkitemAbsId(Dst d)
    {
        using G = Gcn3Op;
        a.emit(Gcn3Inst::smem(G::S_LOAD_DWORD,
                              Dst::sgpr(abi::ScalarTemp0), abi::AqlPtrLo,
                              abi::PktWgSizeOffset));
        // s_waitcnt lgkmcnt(0) inserted automatically at first use.
        a.emit(Gcn3Inst::sop2(G::S_BFE_U32, Dst::sgpr(abi::ScalarTemp0),
                              Src::sgpr(abi::ScalarTemp0),
                              Src::bits32(0x100000)));
        a.emit(Gcn3Inst::sop2(G::S_MUL_I32, Dst::sgpr(abi::ScalarTemp0),
                              Src::sgpr(abi::ScalarTemp0),
                              Src::sgpr(abi::WorkgroupId)));
        a.emit(Gcn3Inst::vop2(G::V_ADD_U32, d,
                              Src::sgpr(abi::ScalarTemp0), Src::vgpr(0)));
    }

    /** Materialize (addr64 il reg + byte offset) into a VGPR pair for
     *  a flat access; returns the first VGPR of the pair. */
    unsigned
    materializeFlatAddr(uint16_t addr_reg, int64_t offset)
    {
        using G = Gcn3Op;
        Loc l = locOf(addr_reg);
        if (l.kind == Loc::Kind::Sgpr) {
            unsigned base = l.reg;
            if (offset != 0) {
                a.emit(Gcn3Inst::sop2(G::S_ADD_U32,
                                      Dst::sgpr(abi::ScalarTemp0),
                                      Src::sgpr(base),
                                      Src::imm(offset)));
                a.emit(Gcn3Inst::sop2(G::S_ADDC_U32,
                                      Dst::sgpr(abi::ScalarTemp1),
                                      Src::sgpr(base + 1), Src::imm(0)));
                base = abi::ScalarTemp0;
            }
            // Table 2: move the scalar base into vector registers for
            // the flat address operand.
            unsigned t = nextAddrTempPair();
            a.emit(Gcn3Inst::vop1(G::V_MOV_B32, Dst::vgpr(t),
                                  Src::sgpr(base)));
            a.emit(Gcn3Inst::vop1(G::V_MOV_B32, Dst::vgpr(t + 1),
                                  Src::sgpr(base + 1)));
            return t;
        }
        if (offset == 0)
            return l.reg;
        unsigned t = nextAddrTempPair();
        a.emit(Gcn3Inst::vop2(G::V_ADD_U32, Dst::vgpr(t),
                              Src::imm(offset), Src::vgpr(l.reg)));
        a.emit(Gcn3Inst::vop2(G::V_ADDC_U32, Dst::vgpr(t + 1),
                              Src::vgpr(l.reg + 1), Src::imm(0)));
        return t;
    }

    /** Per-lane scratch address: v[1:2] + (off32 reg) + imm. */
    unsigned
    materializeScratchAddr(uint16_t off_reg, int64_t eff_imm)
    {
        using G = Gcn3Op;
        unsigned t = nextAddrTempPair();
        if (off_reg != hsail::Reg::NoReg) {
            Src o = srcOf(off_reg);
            if (eff_imm != 0) {
                emitValu2(G::V_ADD_U32, Dst::vgpr(vT(12)),
                          Src::imm(eff_imm), o);
                o = Src::vgpr(vT(12));
            }
            emitValu2(G::V_ADD_U32, Dst::vgpr(t), o, Src::vgpr(1));
        } else {
            a.emit(Gcn3Inst::vop2(G::V_ADD_U32, Dst::vgpr(t),
                                  Src::imm(eff_imm), Src::vgpr(1)));
        }
        a.emit(Gcn3Inst::vop2(G::V_ADDC_U32, Dst::vgpr(t + 1),
                              Src::vgpr(2), Src::imm(0)));
        return t;
    }

    /** Store data must be in VGPRs; copy through temps if scalar. */
    unsigned
    vgprData(uint16_t val_reg, unsigned words)
    {
        Loc l = locOf(val_reg);
        if (l.kind == Loc::Kind::Vgpr)
            return l.reg;
        for (unsigned w = 0; w < words; ++w)
            a.emit(Gcn3Inst::vop1(Gcn3Op::V_MOV_B32,
                                  Dst::vgpr(vT(12) + w),
                                  Src::sgpr(l.reg + w)));
        return vT(12);
    }

    // --- floating-point division (Table 3) --------------------------

    void
    emitDivF64(Dst d, uint16_t num, uint16_t den)
    {
        using G = Gcn3Op;
        unsigned t0 = vT(0), t1 = vT(2), t2 = vT(4), t3 = vT(6);
        Src n0 = srcOf(num), dn = srcOf(den);
        Src one = Src::f64const(1.0);

        // Scale denominator.
        emitValu3(G::V_DIV_SCALE_F64, Dst::vgpr(t0), dn, dn, n0, 0, true);
        // Move the numerator into a VGPR pair and scale it.
        for (unsigned w = 0; w < 2; ++w)
            emitValu2(G::V_MOV_B32, Dst::vgpr(t1 + w), srcOf(num, w),
                      Src{});
        emitValu3(G::V_DIV_SCALE_F64, Dst::vgpr(t1), Src::vgpr(t1), dn,
                  Src::vgpr(t1), 0, true);
        // 1/D estimate and two Newton-Raphson refinements.
        a.emit(Gcn3Inst::vop1(G::V_RCP_F64, Dst::vgpr(t2),
                              Src::vgpr(t0)));
        a.emit(Gcn3Inst::vop3(G::V_FMA_F64, Dst::vgpr(t3), Src::vgpr(t0),
                              Src::vgpr(t2), one, 0b001));
        a.emit(Gcn3Inst::vop3(G::V_FMA_F64, Dst::vgpr(t2), Src::vgpr(t2),
                              Src::vgpr(t3), Src::vgpr(t2)));
        a.emit(Gcn3Inst::vop3(G::V_FMA_F64, Dst::vgpr(t3), Src::vgpr(t0),
                              Src::vgpr(t2), one, 0b001));
        a.emit(Gcn3Inst::vop3(G::V_FMA_F64, Dst::vgpr(t2), Src::vgpr(t2),
                              Src::vgpr(t3), Src::vgpr(t2)));
        // Quotient estimate and error.
        a.emit(Gcn3Inst::vop3(G::V_MUL_F64, Dst::vgpr(t3), Src::vgpr(t1),
                              Src::vgpr(t2), Src{}));
        a.emit(Gcn3Inst::vop3(G::V_FMA_F64, Dst::vgpr(t0), Src::vgpr(t0),
                              Src::vgpr(t3), Src::vgpr(t1), 0b001));
        a.emit(Gcn3Inst::vop3(G::V_DIV_FMAS_F64, Dst::vgpr(t0),
                              Src::vgpr(t0), Src::vgpr(t2),
                              Src::vgpr(t3)));
        // Fix up special cases; produces the correctly-rounded result.
        emitValu3(G::V_DIV_FIXUP_F64, d, Src::vgpr(t0), dn, n0, 0, true);
    }

    void
    emitDivF32(Dst d, uint16_t num, uint16_t den)
    {
        using G = Gcn3Op;
        unsigned t0 = vT(0), t1 = vT(1), t2 = vT(2), t3 = vT(3);
        Src n0 = srcOf(num), dn = srcOf(den);
        Src one = Src::bits32(0x3f800000u);

        emitValu3(G::V_DIV_SCALE_F32, Dst::vgpr(t0), dn, dn, n0);
        emitValu3(G::V_DIV_SCALE_F32, Dst::vgpr(t1), n0, dn, n0);
        a.emit(Gcn3Inst::vop1(G::V_RCP_F32, Dst::vgpr(t2),
                              Src::vgpr(t0)));
        a.emit(Gcn3Inst::vop3(G::V_FMA_F32, Dst::vgpr(t3), Src::vgpr(t0),
                              Src::vgpr(t2), one, 0b001));
        a.emit(Gcn3Inst::vop3(G::V_FMA_F32, Dst::vgpr(t2), Src::vgpr(t2),
                              Src::vgpr(t3), Src::vgpr(t2)));
        a.emit(Gcn3Inst::vop3(G::V_MUL_F32, Dst::vgpr(t3), Src::vgpr(t1),
                              Src::vgpr(t2), Src{}));
        a.emit(Gcn3Inst::vop3(G::V_FMA_F32, Dst::vgpr(t0), Src::vgpr(t0),
                              Src::vgpr(t3), Src::vgpr(t1), 0b001));
        a.emit(Gcn3Inst::vop3(G::V_DIV_FMAS_F32, Dst::vgpr(t0),
                              Src::vgpr(t0), Src::vgpr(t2),
                              Src::vgpr(t3)));
        emitValu3(G::V_DIV_FIXUP_F32, d, Src::vgpr(t0), dn, n0);
    }

    /** Does the compare at IL index i, producing bool reg D, feed only
     *  the region branch immediately following it? */
    bool
    feedsBranch(size_t i, uint16_t d) const
    {
        if (useCount[d] != 1)
            return false;
        auto ih = ifHeadAt.find(i + 1);
        if (ih != ifHeadAt.end())
            return il.regions[ih->second].condReg == d;
        auto lt = loopTailAt.find(i + 1);
        return lt != loopTailAt.end() &&
               il.regions[lt->second].condReg == d;
    }

    // --- main translation -------------------------------------------

    void translate(size_t i, const HsailInst &inst);
    void translateAlu(size_t i, const HsailInst &inst);
    void translateMem(const HsailInst &inst);

    const hsail::IlKernel &il;
    const arch::KernelCode &ilc;
    GpuConfig cfg;
    FinalizeStats *stats;
    UniformityInfo uni;
    AllocResult alloc;
    std::unique_ptr<arch::KernelCode> out;
    Assembler a;

    bool usesScratch = false;
    unsigned vTempBase = 1;
    unsigned addrRot = 0;
    unsigned maxDepth = 1;
    unsigned saveStackBase = 0;
    bool divEverUsed = false;
    unsigned divDepth = 0;

    std::vector<unsigned> useCount;
    std::map<size_t, size_t> ifHeadAt;
    std::map<size_t, size_t> elseAt;
    std::map<size_t, size_t> loopTailAt;
    std::map<size_t, std::vector<size_t>> ifEndAt;
    std::map<size_t, std::vector<size_t>> loopHeadAt;
    std::vector<Ctx> ctx;

    uint16_t vccFrom = NoIlReg;
    uint16_t sccFrom = NoIlReg;
};

void
Translator::translate(size_t i, const HsailInst &inst)
{
    uint16_t prev_vcc = vccFrom, prev_scc = sccFrom;
    vccFrom = NoIlReg;
    sccFrom = NoIlReg;
    (void)prev_vcc;
    (void)prev_scc;

    switch (inst.op()) {
      case Opcode::Ld:
      case Opcode::St:
      case Opcode::AtomicAdd:
        translateMem(inst);
        return;
      case Opcode::Barrier:
        a.waitAll();
        a.emit(Gcn3Inst::sopp(Gcn3Op::S_BARRIER));
        return;
      case Opcode::Ret:
        a.waitAll();
        a.emit(Gcn3Inst::sopp(Gcn3Op::S_ENDPGM));
        return;
      case Opcode::Nop:
        a.emit(Gcn3Inst::sopp(Gcn3Op::S_NOP, 0));
        return;
      case Opcode::Br:
      case Opcode::CBr:
        panic("raw IL branch at %zu outside a structured region", i);
      default:
        translateAlu(i, inst);
        return;
    }
}

void
Translator::translateAlu(size_t i, const HsailInst &inst)
{
    using G = Gcn3Op;
    DataType t = inst.type();
    bool wide = hsail::typeRegs(t) == 2;
    uint16_t D = inst.dst().idx;
    uint16_t A = inst.src(0).idx;
    uint16_t B = inst.src(1).idx;
    uint16_t C = inst.src(2).idx;
    bool scalar = inst.dst().valid() && inSgpr(D);

    auto sA = [&](unsigned w = 0) { return srcOf(A, w); };
    auto sB = [&](unsigned w = 0) { return srcOf(B, w); };
    auto sC = [&](unsigned w = 0) { return srcOf(C, w); };
    Dst d = inst.dst().valid() ? dstOf(D) : Dst::none();
    auto dHi = [&]() {
        Loc l = locOf(D);
        return l.kind == Loc::Kind::Sgpr ? Dst::sgpr(l.reg + 1)
                                         : Dst::vgpr(l.reg + 1);
    };

    switch (inst.op()) {
      case Opcode::Add:
        if (scalar) {
            a.emit(Gcn3Inst::sop2(G::S_ADD_U32, d, sA(), sB()));
            if (wide)
                a.emit(Gcn3Inst::sop2(G::S_ADDC_U32, dHi(), sA(1),
                                      sB(1)));
        } else if (t == DataType::F32) {
            emitValu2(G::V_ADD_F32, d, sA(), sB());
        } else if (t == DataType::F64) {
            emitValu3(G::V_ADD_F64, d, sA(), sB(), Src{}, 0, true);
        } else if (wide) {
            emitValu2(G::V_ADD_U32, d, sA(), sB());
            emitValu2(G::V_ADDC_U32, dHi(), sA(1), sB(1));
        } else {
            emitValu2(G::V_ADD_U32, d, sA(), sB());
        }
        return;
      case Opcode::Sub:
        if (scalar) {
            a.emit(Gcn3Inst::sop2(G::S_SUB_U32, d, sA(), sB()));
        } else if (t == DataType::F32) {
            emitValu2(G::V_SUB_F32, d, sA(), sB());
        } else if (t == DataType::F64) {
            // No v_sub_f64: add with a negate modifier on src1.
            emitValu3(G::V_ADD_F64, d, sA(), sB(), Src{}, 0b010, true);
        } else if (wide) {
            emitValu2(G::V_SUB_U32, d, sA(), sB());
            emitValu2(G::V_SUBB_U32, dHi(), sA(1), sB(1));
        } else {
            emitValu2(G::V_SUB_U32, d, sA(), sB());
        }
        return;
      case Opcode::Mul:
        if (scalar)
            a.emit(Gcn3Inst::sop2(G::S_MUL_I32, d, sA(), sB()));
        else if (t == DataType::F32)
            emitValu2(G::V_MUL_F32, d, sA(), sB());
        else if (t == DataType::F64)
            emitValu3(G::V_MUL_F64, d, sA(), sB(), Src{}, 0, true);
        else
            emitValu3(G::V_MUL_LO_U32, d, sA(), sB(), Src{});
        return;
      case Opcode::MulHi:
        emitValu3(G::V_MUL_HI_U32, d, sA(), sB(), Src{});
        return;
      case Opcode::Mad:
        if (t == DataType::F32) {
            emitValu3(G::V_MAD_F32, d, sA(), sB(), sC());
        } else if (t == DataType::F64) {
            emitValu3(G::V_FMA_F64, d, sA(), sB(), sC(), 0, true);
        } else {
            // Integer multiply-add splits in two.
            emitValu3(G::V_MUL_LO_U32, Dst::vgpr(vT(12)), sA(), sB(),
                      Src{});
            emitValu2(G::V_ADD_U32, d, Src::vgpr(vT(12)), sC());
        }
        return;
      case Opcode::Fma:
        if (t == DataType::F64)
            emitValu3(G::V_FMA_F64, d, sA(), sB(), sC(), 0, true);
        else
            emitValu3(G::V_FMA_F32, d, sA(), sB(), sC());
        return;
      case Opcode::Div:
        if (t == DataType::F64)
            emitDivF64(d, A, B);
        else if (t == DataType::F32)
            emitDivF32(d, A, B);
        else
            fatal("the finalizer does not support integer division; "
                  "use shifts/masks (kernel %s)", ilc.name().c_str());
        return;
      case Opcode::Rem:
        fatal("the finalizer does not support integer remainder "
              "(kernel %s)", ilc.name().c_str());
      case Opcode::Min:
      case Opcode::Max: {
        bool is_min = inst.op() == Opcode::Min;
        if (scalar) {
            a.emit(Gcn3Inst::sop2(is_min ? G::S_MIN_U32 : G::S_MAX_U32,
                                  d, sA(), sB()));
        } else if (t == DataType::F32) {
            emitValu2(is_min ? G::V_MIN_F32 : G::V_MAX_F32, d, sA(),
                      sB());
        } else if (t == DataType::F64) {
            emitValu3(is_min ? G::V_MIN_F64 : G::V_MAX_F64, d, sA(),
                      sB(), Src{}, 0, true);
        } else if (t == DataType::S32) {
            emitValu2(is_min ? G::V_MIN_I32 : G::V_MAX_I32, d, sA(),
                      sB());
        } else {
            emitValu2(is_min ? G::V_MIN_U32 : G::V_MAX_U32, d, sA(),
                      sB());
        }
        return;
      }
      case Opcode::Abs:
        if (t == DataType::F32) {
            emitValu2(G::V_AND_B32, d, Src::bits32(0x7fffffffu), sA());
        } else if (t == DataType::F64) {
            emitValu2(G::V_MOV_B32, d, sA(), Src{});
            emitValu2(G::V_AND_B32, dHi(), Src::bits32(0x7fffffffu),
                      sA(1));
        } else {
            emitValu2(G::V_SUB_U32, Dst::vgpr(vT(12)), Src::imm(0),
                      sA());
            emitValu2(G::V_MAX_I32, d, sA(), Src::vgpr(vT(12)));
        }
        return;
      case Opcode::Neg:
        if (scalar) {
            a.emit(Gcn3Inst::sop2(G::S_SUB_U32, d, Src::imm(0), sA()));
        } else if (t == DataType::F32) {
            emitValu2(G::V_XOR_B32, d, Src::bits32(0x80000000u), sA());
        } else if (t == DataType::F64) {
            emitValu2(G::V_MOV_B32, d, sA(), Src{});
            emitValu2(G::V_XOR_B32, dHi(), Src::bits32(0x80000000u),
                      sA(1));
        } else {
            emitValu2(G::V_SUB_U32, d, Src::imm(0), sA());
        }
        return;
      case Opcode::Sqrt:
        if (t == DataType::F64)
            a.emit(Gcn3Inst::vop1(G::V_SQRT_F64, d, sA()));
        else
            a.emit(Gcn3Inst::vop1(G::V_SQRT_F32, d, sA()));
        return;
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor: {
        G sop = inst.op() == Opcode::And ? (wide ? G::S_AND_B64
                                                 : G::S_AND_B32)
              : inst.op() == Opcode::Or ? (wide ? G::S_OR_B64
                                                : G::S_OR_B32)
                                        : (wide ? G::S_XOR_B64
                                                : G::S_XOR_B32);
        G vop = inst.op() == Opcode::And ? G::V_AND_B32
              : inst.op() == Opcode::Or ? G::V_OR_B32 : G::V_XOR_B32;
        if (scalar) {
            a.emit(Gcn3Inst::sop2(sop, d, sA(), sB()));
        } else {
            emitValu2(vop, d, sA(), sB());
            if (wide)
                emitValu2(vop, dHi(), sA(1), sB(1));
        }
        return;
      }
      case Opcode::Not:
        if (scalar) {
            a.emit(Gcn3Inst::sop1(G::S_NOT_B32, d, sA()));
        } else {
            emitValu2(G::V_NOT_B32, d, sA(), Src{});
            if (wide)
                emitValu2(G::V_NOT_B32, dHi(), sA(1), Src{});
        }
        return;
      case Opcode::Shl:
        if (scalar)
            a.emit(Gcn3Inst::sop2(G::S_LSHL_B32, d, sA(), sB()));
        else
            emitValu2(G::V_LSHLREV_B32, d, sB(), sA());
        return;
      case Opcode::Shr:
        if (scalar)
            a.emit(Gcn3Inst::sop2(G::S_LSHR_B32, d, sA(), sB()));
        else
            emitValu2(G::V_LSHRREV_B32, d, sB(), sA());
        return;
      case Opcode::AShr:
        if (scalar)
            a.emit(Gcn3Inst::sop2(G::S_ASHR_I32, d, sA(), sB()));
        else
            emitValu2(G::V_ASHRREV_I32, d, sB(), sA());
        return;
      case Opcode::Bfe:
        emitValu3(G::V_BFE_U32, d, sA(), sB(), sC());
        return;
      case Opcode::Cmp: {
        if (scalar) {
            a.emit(Gcn3Inst::sopc(scmpOp(inst.cmpOp(), t), sA(), sB()));
            // Peephole: a compare feeding only the region branch that
            // immediately follows needs no materialized boolean.
            if (feedsBranch(i, D)) {
                sccFrom = D;
                return;
            }
            a.emit(Gcn3Inst::sop2(G::S_CSELECT_B32, d, Src::imm(1),
                                  Src::imm(0)));
            return;
        }
        std::vector<Src> ss{sA(), sB()};
        legalizeValuSrcs(ss, wide);
        a.emit(Gcn3Inst::vcmp(vcmpOp(inst.cmpOp(), t), ss[0], ss[1]));
        if (feedsBranch(i, D)) {
            vccFrom = D;
            return;
        }
        emitValu2(G::V_CNDMASK_B32, d, Src::imm(0), Src::imm(1));
        return;
      }
      case Opcode::CMov:
        if (scalar) {
            a.emit(Gcn3Inst::sopc(G::S_CMP_LG_U32, sA(), Src::imm(0)));
            a.emit(Gcn3Inst::sop2(G::S_CSELECT_B32, d, sB(), sC()));
        } else {
            // vcc = cond != 0; dst = vcc ? tval : fval.
            a.emit(Gcn3Inst::vcmp(G::V_CMP_NE_U32, Src::imm(0), sA()));
            emitValu2(G::V_CNDMASK_B32, d, sC(), sB());
            if (wide)
                emitValu2(G::V_CNDMASK_B32, dHi(), sC(1), sB(1));
        }
        return;
      case Opcode::Mov:
        if (scalar) {
            a.emit(Gcn3Inst::sop1(wide ? G::S_MOV_B64 : G::S_MOV_B32, d,
                                  sA()));
        } else {
            emitValu2(G::V_MOV_B32, d, sA(), Src{});
            if (wide)
                emitValu2(G::V_MOV_B32, dHi(), sA(1), Src{});
        }
        return;
      case Opcode::MovImm: {
        uint64_t bits = inst.immBits();
        if (scalar) {
            a.emit(Gcn3Inst::sop1(G::S_MOV_B32, d,
                                  Src::bits32(uint32_t(bits))));
            if (wide)
                a.emit(Gcn3Inst::sop1(G::S_MOV_B32, dHi(),
                                      Src::bits32(uint32_t(bits >> 32))));
        } else {
            a.emit(Gcn3Inst::vop1(G::V_MOV_B32, d,
                                  Src::bits32(uint32_t(bits))));
            if (wide)
                a.emit(Gcn3Inst::vop1(G::V_MOV_B32, dHi(),
                                      Src::bits32(uint32_t(bits >> 32))));
        }
        return;
      }
      case Opcode::Cvt: {
        DataType st = inst.srcType();
        auto pair = [&](DataType a_, DataType b_) {
            return st == a_ && t == b_;
        };
        if (pair(DataType::U32, DataType::F32))
            a.emit(Gcn3Inst::vop1(G::V_CVT_F32_U32, d, sA()));
        else if (pair(DataType::S32, DataType::F32))
            a.emit(Gcn3Inst::vop1(G::V_CVT_F32_I32, d, sA()));
        else if (pair(DataType::F32, DataType::U32))
            a.emit(Gcn3Inst::vop1(G::V_CVT_U32_F32, d, sA()));
        else if (pair(DataType::F32, DataType::S32))
            a.emit(Gcn3Inst::vop1(G::V_CVT_I32_F32, d, sA()));
        else if (pair(DataType::F32, DataType::F64))
            a.emit(Gcn3Inst::vop1(G::V_CVT_F64_F32, d, sA()));
        else if (pair(DataType::F64, DataType::F32))
            a.emit(Gcn3Inst::vop1(G::V_CVT_F32_F64, d, sA()));
        else if (pair(DataType::U32, DataType::F64))
            a.emit(Gcn3Inst::vop1(G::V_CVT_F64_U32, d, sA()));
        else if (pair(DataType::F64, DataType::U32))
            a.emit(Gcn3Inst::vop1(G::V_CVT_U32_F64, d, sA()));
        else if (pair(DataType::U32, DataType::U64) ||
                 pair(DataType::S32, DataType::U64)) {
            if (scalar) {
                a.emit(Gcn3Inst::sop1(G::S_MOV_B32, d, sA()));
                a.emit(Gcn3Inst::sop1(G::S_MOV_B32, dHi(), Src::imm(0)));
            } else {
                emitValu2(G::V_MOV_B32, d, sA(), Src{});
                a.emit(Gcn3Inst::vop1(G::V_MOV_B32, dHi(), Src::imm(0)));
            }
        } else if (pair(DataType::U64, DataType::U32)) {
            if (scalar)
                a.emit(Gcn3Inst::sop1(G::S_MOV_B32, d, sA()));
            else
                emitValu2(G::V_MOV_B32, d, sA(), Src{});
        } else {
            fatal("unsupported conversion %s -> %s in kernel %s",
                  hsail::typeName(st), hsail::typeName(t),
                  ilc.name().c_str());
        }
        return;
      }
      case Opcode::WorkItemAbsId:
        emitWorkitemAbsId(d);
        return;
      case Opcode::WorkItemId:
        a.emit(Gcn3Inst::vop1(G::V_MOV_B32, d,
                              Src::vgpr(abi::WorkitemIdVgpr)));
        return;
      case Opcode::WorkGroupId:
        if (scalar)
            a.emit(Gcn3Inst::sop1(G::S_MOV_B32, d,
                                  Src::sgpr(abi::WorkgroupId)));
        else
            a.emit(Gcn3Inst::vop1(G::V_MOV_B32, d,
                                  Src::sgpr(abi::WorkgroupId)));
        return;
      case Opcode::WorkGroupSize: {
        Dst tmp = scalar ? d : Dst::sgpr(abi::ScalarTemp0);
        a.emit(Gcn3Inst::smem(G::S_LOAD_DWORD, tmp, abi::AqlPtrLo,
                              abi::PktWgSizeOffset));
        a.emit(Gcn3Inst::sop2(G::S_BFE_U32, tmp, Src::sgpr(tmp.reg),
                              Src::bits32(0x100000)));
        if (!scalar)
            a.emit(Gcn3Inst::vop1(G::V_MOV_B32, d,
                                  Src::sgpr(abi::ScalarTemp0)));
        return;
      }
      case Opcode::GridSize: {
        Dst tmp = scalar ? d : Dst::sgpr(abi::ScalarTemp0);
        a.emit(Gcn3Inst::smem(G::S_LOAD_DWORD, tmp, abi::AqlPtrLo,
                              abi::PktGridSizeOffset));
        if (!scalar)
            a.emit(Gcn3Inst::vop1(G::V_MOV_B32, d,
                                  Src::sgpr(abi::ScalarTemp0)));
        return;
      }
      default:
        panic("unhandled IL opcode %s", hsail::opcodeName(inst.op()));
    }
}

void
Translator::translateMem(const HsailInst &inst)
{
    using G = Gcn3Op;
    DataType t = inst.type();
    unsigned words = hsail::typeRegs(t);
    bool is_store = inst.op() == Opcode::St;
    uint16_t D = inst.dst().valid() ? inst.dst().idx : NoIlReg;
    uint16_t A = inst.src(0).valid() ? inst.src(0).idx : NoIlReg;
    uint16_t V = inst.src(1).valid() ? inst.src(1).idx : NoIlReg;
    int64_t off = inst.memOffset();

    switch (inst.segment()) {
      case Segment::Kernarg:
      case Segment::Arg: {
        // Table 2: kernarg accesses go through the ABI's s[6:7] base.
        bool to_sgpr = inSgpr(D);
        Dst d = to_sgpr ? dstOf(D) : Dst::sgpr(abi::ScalarTemp0);
        a.emit(Gcn3Inst::smem(words == 2 ? G::S_LOAD_DWORDX2
                                         : G::S_LOAD_DWORD,
                              d, abi::KernargLo, uint32_t(off)));
        if (!to_sgpr) {
            for (unsigned w = 0; w < words; ++w)
                a.emit(Gcn3Inst::vop1(
                    G::V_MOV_B32, Dst::vgpr(locOf(D).reg + w),
                    Src::sgpr(abi::ScalarTemp0 + w)));
        }
        return;
      }
      case Segment::Readonly:
        if (!is_store && inSgpr(D) && inSgpr(A)) {
            a.emit(Gcn3Inst::smem(words == 2 ? G::S_LOAD_DWORDX2
                                             : G::S_LOAD_DWORD,
                                  dstOf(D), locOf(A).reg,
                                  uint32_t(off)));
            return;
        }
        [[fallthrough]];
      case Segment::Global: {
        unsigned addr = materializeFlatAddr(A, off);
        if (inst.op() == Opcode::AtomicAdd) {
            unsigned data = vgprData(V, 1);
            a.emit(Gcn3Inst::flat(G::FLAT_ATOMIC_ADD, dstOf(D), addr,
                                  data));
        } else if (is_store) {
            unsigned data = vgprData(V, words);
            a.emit(Gcn3Inst::flat(words == 2 ? G::FLAT_STORE_DWORDX2
                                             : G::FLAT_STORE_DWORD,
                                  Dst::none(), addr, data));
        } else {
            a.emit(Gcn3Inst::flat(words == 2 ? G::FLAT_LOAD_DWORDX2
                                             : G::FLAT_LOAD_DWORD,
                                  dstOf(D), addr));
        }
        return;
      }
      case Segment::Private:
      case Segment::Spill: {
        int64_t eff = off +
            (inst.segment() == Segment::Spill
                 ? int64_t(ilc.privateBytesPerWi) : 0);
        unsigned addr = materializeScratchAddr(A, eff);
        if (is_store) {
            unsigned data = vgprData(V, words);
            a.emit(Gcn3Inst::flat(words == 2 ? G::FLAT_STORE_DWORDX2
                                             : G::FLAT_STORE_DWORD,
                                  Dst::none(), addr, data));
        } else {
            a.emit(Gcn3Inst::flat(words == 2 ? G::FLAT_LOAD_DWORDX2
                                             : G::FLAT_LOAD_DWORD,
                                  dstOf(D), addr));
        }
        return;
      }
      case Segment::Group: {
        unsigned addr;
        if (A != NoIlReg) {
            if (inSgpr(A)) {
                a.emit(Gcn3Inst::vop1(G::V_MOV_B32, Dst::vgpr(vT(0)),
                                      srcOf(A)));
                addr = vT(0);
            } else {
                addr = locOf(A).reg;
            }
        } else {
            a.emit(Gcn3Inst::vop1(G::V_MOV_B32, Dst::vgpr(vT(0)),
                                  Src::imm(0)));
            addr = vT(0);
        }
        if (is_store) {
            unsigned data = vgprData(V, words);
            a.emit(Gcn3Inst::ds(words == 2 ? G::DS_WRITE_B64
                                           : G::DS_WRITE_B32,
                                Dst::none(), addr, data,
                                uint32_t(off)));
        } else {
            a.emit(Gcn3Inst::ds(words == 2 ? G::DS_READ_B64
                                           : G::DS_READ_B32,
                                dstOf(D), addr, 0, uint32_t(off)));
        }
        return;
      }
    }
}

} // namespace

std::unique_ptr<arch::KernelCode>
finalize(const hsail::IlKernel &il, const GpuConfig &cfg,
         FinalizeStats *out_stats)
{
    FinalizeStats local;
    Translator t(il, cfg, out_stats ? out_stats : &local);
    return t.run();
}

uint64_t
finalizeConfigDigest(const GpuConfig &cfg)
{
    uint64_t h = 1469598103934665603ull;
    for (uint64_t v : {uint64_t(cfg.maxVgprsPerWfGcn3),
                       uint64_t(cfg.maxSgprsPerWfGcn3)}) {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    }
    return h;
}

namespace
{

class Gcn3Backend final : public Backend
{
  public:
    IsaKind isa() const override { return IsaKind::GCN3; }

    std::unique_ptr<arch::KernelCode>
    lower(const hsail::IlKernel &il, const GpuConfig &cfg,
          FinalizeStats *stats) const override
    {
        return finalize(il, cfg, stats);
    }

    uint64_t
    configDigest(const GpuConfig &cfg) const override
    {
        return finalizeConfigDigest(cfg);
    }
};

} // namespace

const Backend &
gcn3Backend()
{
    static const Gcn3Backend backend;
    return backend;
}

} // namespace last::finalizer
