/**
 * @file
 * Linear-scan register allocation for the finalizer.
 *
 * IL registers are grouped into atoms (1 or 2 consecutive 32-bit regs
 * for 64-bit values); each atom is assigned a contiguous block in
 * either the SGPR or the VGPR file based on the uniformity analysis.
 * Live ranges are extended across loop bodies so loop-carried values
 * stay allocated through the backedge.
 */

#ifndef LAST_FINALIZER_REGALLOC_HH
#define LAST_FINALIZER_REGALLOC_HH

#include <cstdint>
#include <vector>

#include "finalizer/uniformity.hh"
#include "hsail/builder.hh"

namespace last::finalizer
{

/** Where an IL atom lives in the GCN3 register files. */
struct Loc
{
    enum class Kind : uint8_t { None, Sgpr, Vgpr };

    Kind kind = Kind::None;
    uint16_t reg = 0;
};

struct AllocResult
{
    /** Per IL register: its location (pair members point at their own
     *  word, i.e. loc[base+1].reg == loc[base].reg + 1). */
    std::vector<Loc> loc;
    unsigned vgprsUsed = 0; ///< highest VGPR index used + 1
    unsigned sgprsUsed = 0; ///< highest allocatable SGPR index used + 1
    unsigned demotedToVgpr = 0; ///< resident atoms demoted (SGPR pressure)
};

/** Allocation pools (index ranges are inclusive). */
struct AllocBudget
{
    unsigned vgprFirst;
    unsigned vgprLast;
    unsigned sgprFirst;
    unsigned sgprLast;
};

AllocResult allocateRegisters(const hsail::IlKernel &il,
                              const UniformityInfo &uni,
                              const AllocBudget &budget);

/**
 * Register-allocate the IL itself (the high-level compiler's job in
 * the paper's flow: HSAIL is register-allocated, up to 2,048 vector
 * registers per WF). Renumbers every register in place via linear
 * scan so dead values free their registers; updates vregsUsed and the
 * region table. Must run before execution or finalization.
 */
void compactIlRegisters(hsail::IlKernel &il);

} // namespace last::finalizer

#endif // LAST_FINALIZER_REGALLOC_HH
