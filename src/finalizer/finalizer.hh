/**
 * @file
 * The finalizer: compiles an IL kernel to GCN3 machine code, playing
 * the role amdhsafin plays in the paper's toolchain.
 *
 * Responsibilities (each one an abstraction the IL hides):
 *  - ABI code generation: prologue computing per-lane scratch
 *    addresses; kernarg accesses through s[6:7]; workitemabsid
 *    expansion through the AQL packet (Tables 1 and 2).
 *  - Scalarization: uniform integer work moves to the scalar pipeline
 *    and SGPRs (driven by the uniformity analysis).
 *  - Register allocation into 256 VGPRs / 102 SGPRs.
 *  - Structured control-flow linearization with exec-mask predication
 *    and s_cbranch_execz bypass arcs (Figure 3c); scalar branches for
 *    provably uniform conditions.
 *  - Software dependency management: s_waitcnt insertion before first
 *    use of in-flight memory results, s_nop insertion for
 *    deterministic-latency VALU hazards.
 *  - Newton-Raphson expansion of floating-point division (Table 3).
 */

#ifndef LAST_FINALIZER_FINALIZER_HH
#define LAST_FINALIZER_FINALIZER_HH

#include <memory>

#include "arch/kernel_code.hh"
#include "common/config.hh"
#include "hsail/builder.hh"

namespace last::finalizer
{

/** Compile-time counters, for tests and the expansion benches. */
struct FinalizeStats
{
    unsigned vgprsUsed = 0;
    unsigned sgprsUsed = 0;
    unsigned waitcntInserted = 0;
    unsigned nopsInserted = 0;
    unsigned scalarInsts = 0;  ///< SALU + SMEM instructions emitted
    unsigned vectorInsts = 0;
};

/** Finalize an IL kernel into GCN3 machine code. */
std::unique_ptr<arch::KernelCode>
finalize(const hsail::IlKernel &il, const GpuConfig &cfg,
         FinalizeStats *out_stats = nullptr);

/**
 * Digest of the GpuConfig fields the finalizer's output depends on
 * (the register-file budgets driving allocation and spilling). The
 * artifact cache folds this into its content digest so a GCN3 kernel
 * finalized under one budget can never be served to a run configured
 * with another. Must be kept in sync with what finalize() reads.
 */
uint64_t finalizeConfigDigest(const GpuConfig &cfg);

} // namespace last::finalizer

#endif // LAST_FINALIZER_FINALIZER_HH
