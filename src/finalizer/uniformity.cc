#include "finalizer/uniformity.hh"

#include "common/logging.hh"
#include "hsail/inst.hh"

namespace last::finalizer
{

using hsail::CfRegion;
using hsail::DataType;
using hsail::HsailInst;
using hsail::Opcode;
using hsail::Segment;

namespace
{

bool
isIntType(DataType t)
{
    return t == DataType::B32 || t == DataType::U32 ||
           t == DataType::S32 || t == DataType::U64;
}

/** Can this op execute on the scalar pipeline (given int types and
 *  SGPR-resident inputs)? Floats never qualify: the GCN3 scalar unit
 *  is not generally used for computation. */
bool
scalarSelectable(const HsailInst &inst)
{
    DataType t = inst.type();
    bool is32 = isIntType(t) && t != DataType::U64;
    switch (inst.op()) {
      case Opcode::Add:
        return isIntType(t); // u64 lowers to s_add + s_addc
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Neg:
      case Opcode::Not:
      case Opcode::Shl:
      case Opcode::Shr:
      case Opcode::AShr:
      case Opcode::Cmp:
      case Opcode::CMov:
        return is32;
      case Opcode::Min:
      case Opcode::Max:
        return t == DataType::U32;
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Mov:
      case Opcode::MovImm:
        return isIntType(t);
      case Opcode::WorkGroupId:
      case Opcode::WorkGroupSize:
      case Opcode::GridSize:
        return true;
      case Opcode::Ld:
        // Scalar loads serve the kernarg and readonly segments
        // (typeless: float kernel arguments also land in SGPRs).
        return inst.segment() == Segment::Kernarg ||
               inst.segment() == Segment::Readonly;
      default:
        return false;
    }
}

} // namespace

UniformityInfo
analyzeUniformity(const hsail::IlKernel &il)
{
    const arch::KernelCode &code = *il.code;
    size_t nregs = code.vregsUsed;
    size_t ninsts = code.numInsts();

    UniformityInfo info;
    info.uniform.assign(nregs, true);
    info.sgprResident.assign(nregs, true);
    info.regionDivergent.assign(il.regions.size(), false);

    // For "written inside a divergent region" demotion: per instruction,
    // the list of regions containing it.
    auto containedIn = [&](size_t idx, const CfRegion &r) {
        switch (r.kind) {
          case CfRegion::Kind::IfThen:
          case CfRegion::Kind::IfElse:
            return idx > r.branchIdx && idx < r.endIdx;
          case CfRegion::Kind::Loop:
            return idx >= r.bodyFirst && idx <= r.branchIdx;
        }
        return false;
    };

    // Monotone fixpoint: flags only ever flip from true to false.
    bool changed = true;
    while (changed) {
        changed = false;

        // Region divergence requires an SGPR-resident condition (a
        // uniform value materialized in a VGPR still cannot feed a
        // scalar branch).
        for (size_t r = 0; r < il.regions.size(); ++r) {
            bool div = !info.sgprResident[il.regions[r].condReg];
            if (div && !info.regionDivergent[r]) {
                info.regionDivergent[r] = true;
                changed = true;
            }
        }

        for (size_t i = 0; i < ninsts; ++i) {
            const auto &inst = static_cast<const HsailInst &>(code.inst(i));
            if (!inst.dst().valid())
                continue;

            bool in_divergent_region = false;
            for (size_t r = 0; r < il.regions.size(); ++r) {
                if (info.regionDivergent[r] &&
                    containedIn(i, il.regions[r])) {
                    in_divergent_region = true;
                    break;
                }
            }

            bool u = !in_divergent_region;
            bool resident = u;
            switch (inst.op()) {
              case Opcode::WorkItemAbsId:
              case Opcode::WorkItemId:
              case Opcode::AtomicAdd:
                u = false;
                resident = false;
                break;
              case Opcode::Ld:
                if (inst.segment() == Segment::Kernarg) {
                    // uniform by definition
                } else if (inst.segment() == Segment::Readonly) {
                    if (inst.src(0).valid() &&
                        !info.uniform[inst.src(0).idx])
                        u = false;
                    if (inst.src(0).valid() &&
                        !info.sgprResident[inst.src(0).idx])
                        resident = false;
                } else {
                    u = false;
                    resident = false;
                }
                break;
              default:
                for (unsigned s = 0; s < 3; ++s) {
                    if (!inst.src(s).valid())
                        continue;
                    if (!info.uniform[inst.src(s).idx])
                        u = false;
                    if (!info.sgprResident[inst.src(s).idx])
                        resident = false;
                }
                break;
            }
            resident = resident && u && scalarSelectable(inst);

            unsigned w = (inst.op() == Opcode::Cmp)
                ? 1 : hsail::typeRegs(inst.type());
            for (unsigned d = 0; d < w; ++d) {
                uint16_t reg = inst.dst().idx + d;
                if (!u && info.uniform[reg]) {
                    info.uniform[reg] = false;
                    changed = true;
                }
                if (!resident && info.sgprResident[reg]) {
                    info.sgprResident[reg] = false;
                    changed = true;
                }
            }
        }
    }
    return info;
}

} // namespace last::finalizer
