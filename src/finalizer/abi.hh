/**
 * @file
 * The GCN3 kernel ABI contract between the finalizer (which emits code
 * assuming this register/packet layout) and the command processor
 * (which initializes register state at dispatch).
 *
 * HSAIL has no such contract — that asymmetry is the paper's central
 * observation.
 */

#ifndef LAST_FINALIZER_ABI_HH
#define LAST_FINALIZER_ABI_HH

namespace last::abi
{

/** @{ SGPRs initialized by the command processor before launch. */
constexpr unsigned ScratchBaseLo = 0; ///< s[0:1]: scratch arena base
constexpr unsigned ScratchStride = 2; ///< s2: scratch bytes per work-item
constexpr unsigned AqlPtrLo = 4;      ///< s[4:5]: AQL packet address
constexpr unsigned KernargLo = 6;     ///< s[6:7]: kernarg base address
constexpr unsigned WorkgroupId = 8;   ///< s8: workgroup id (x)
/** @} */

/** @{ SGPRs reserved as finalizer scratch (ABI expansions). */
constexpr unsigned ScalarTemp0 = 10;
constexpr unsigned ScalarTemp1 = 11;
constexpr unsigned FirstAllocSgpr = 12;
/** Exec-save pairs for nested divergent regions grow downward from
 *  s[100:101]. */
constexpr unsigned SaveStackTop = 100;
/** @} */

/** VGPR 0 is initialized with the work-item's flat id within its
 *  workgroup. */
constexpr unsigned WorkitemIdVgpr = 0;
/** v[1:2] hold the per-lane scratch (private+spill) base address when
 *  the kernel uses those segments. */
constexpr unsigned ScratchAddrVgpr = 1;

/** @{ AQL packet field byte offsets (our dispatch packet layout). */
constexpr unsigned PktHeaderOffset = 0;
constexpr unsigned PktWgSizeOffset = 4;   ///< low 16 bits: wg size x
constexpr unsigned PktGridSizeOffset = 12;
constexpr unsigned PktKernargOffset = 16; ///< u64 kernarg address
constexpr unsigned PktCompletionOffset = 24; ///< u64 signal address
constexpr unsigned PktBytes = 64;
/** @} */

} // namespace last::abi

#endif // LAST_FINALIZER_ABI_HH
