/**
 * @file
 * The multi-backend finalizer pipeline.
 *
 * The finalizer's analyses (uniformity.cc, regalloc.cc) are shared;
 * what differs per vendor is the lowering: how structured IL control
 * flow, dependences, and the ABI map onto a concrete machine ISA.
 * Each machine target implements Backend; HSAIL has none (the IL
 * executes directly, which is the point of the study).
 *
 *  - GCN3 (finalizer.cc): exec-mask predication, software s_waitcnt /
 *    s_nop dependence management, a scalar pipeline.
 *  - PTXL (ptxl_lower.cc): explicit convergence barriers
 *    (BSSY/BSYNC), a hardware scoreboard, no scalar pipeline.
 */

#ifndef LAST_FINALIZER_BACKEND_HH
#define LAST_FINALIZER_BACKEND_HH

#include <memory>

#include "finalizer/finalizer.hh"

namespace last::finalizer
{

/** One machine-level lowering target. Stateless and shared. */
class Backend
{
  public:
    virtual ~Backend() = default;

    virtual IsaKind isa() const = 0;

    /** Lower an IL kernel to this backend's machine code. */
    virtual std::unique_ptr<arch::KernelCode>
    lower(const hsail::IlKernel &il, const GpuConfig &cfg,
          FinalizeStats *stats) const = 0;

    /**
     * Digest of every config knob that changes this backend's output.
     * Folded into artifact/bench cache keys so a knob change can never
     * alias a cached kernel (and two backends can never alias each
     * other — see parseIsaTag in sim/bench_cache.cc).
     */
    virtual uint64_t configDigest(const GpuConfig &cfg) const = 0;
};

/** @{ Backend singletons. */
const Backend &gcn3Backend(); ///< finalizer.cc
const Backend &ptxlBackend(); ///< ptxl_lower.cc
/** @} */

/** The backend lowering to `isa`, or nullptr for HSAIL (no lowering:
 *  the IL is the executable). Panics on an unknown ISA. */
const Backend *backendFor(IsaKind isa);

/** ISA-dispatching convenience overloads over backendFor(). Both
 *  panic when called with IsaKind::HSAIL. */
std::unique_ptr<arch::KernelCode>
finalize(const hsail::IlKernel &il, IsaKind isa, const GpuConfig &cfg,
         FinalizeStats *out_stats = nullptr);
uint64_t finalizeConfigDigest(const GpuConfig &cfg, IsaKind isa);

} // namespace last::finalizer

#endif // LAST_FINALIZER_BACKEND_HH
