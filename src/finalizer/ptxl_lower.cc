/**
 * @file
 * The PTXL backend: lowering IL kernels to the NVIDIA-flavored
 * machine ISA.
 *
 * Where the GCN3 lowering spends instructions on software dependence
 * management (s_waitcnt, s_nop), exec-mask save/restore sequences, and
 * scalar/vector file shuffling, PTXL's contract is different:
 *
 *  - Reconvergence is compiler-inserted but hardware-managed: each
 *    divergent structured region is bracketed by BSSY (snapshot the
 *    member mask into a convergence barrier) and BSYNC (collect
 *    arrivals, resuming parked warp splits until all members arrive).
 *    No exec-mask ALU instructions, no save/restore SGPR pairs.
 *  - Dependences are tracked by a hardware scoreboard; the code stream
 *    carries no waits and no hazard nops.
 *  - There is no scalar pipeline: uniformity analysis still runs (it
 *    decides which regions need convergence barriers at all), but
 *    uniform values stay in the one general register file.
 *  - Addressing for local/constant memory is hardware-managed (LDL/STL
 *    compute the per-thread slot; LDC indexes the parameter bank), so
 *    the address-materialization code expansion GCN3 suffers does not
 *    exist here.
 *
 * The result is a near 1:1 instruction mapping from the IL — but with
 * a 16-byte encoding, explicit convergence-barrier instructions, and
 * timing behavior (fixed-latency scoreboard stalls, IB flushes on
 * split switches) all its own. Whether the paper's IL-vs-machine
 * pitfalls persist on this vendor's contract is exactly the N-ISA
 * question the divergence matrix answers.
 */

#include <map>
#include <vector>

#include "common/logging.hh"
#include "finalizer/backend.hh"
#include "finalizer/uniformity.hh"
#include "hsail/inst.hh"
#include "ptxl/inst.hh"

namespace last::finalizer
{

namespace
{

using hsail::CfRegion;
using hsail::CmpOp;
using hsail::DataType;
using hsail::HsailInst;
using hsail::Opcode;
using hsail::Reg;
using ptxl::PtxlInst;

constexpr uint16_t NoIlReg = 0xffff;

/** Predicate conventions: P0 carries branch conditions, P6 is the
 *  SEL scratch predicate. */
constexpr uint8_t BranchPreg = 0;
constexpr uint8_t SelPreg = 6;

/**
 * Emission back end for PTXL. Deliberately thin next to the GCN3
 * Assembler: there is no wait tracking and no hazard tracking because
 * the hardware scoreboard owns both. All that remains is label fixup.
 */
class PtxlAsm
{
  public:
    PtxlAsm(arch::KernelCode *code, FinalizeStats *stats)
        : code(code), stats(stats)
    {
    }

    unsigned
    newLabel()
    {
        labelTargets.push_back(SIZE_MAX);
        return unsigned(labelTargets.size() - 1);
    }

    void
    bind(unsigned label)
    {
        labelTargets[label] = count;
    }

    size_t
    emit(PtxlInst *inst)
    {
        if (stats) {
            auto fu = inst->fuType();
            if (fu == arch::FuType::SAlu || fu == arch::FuType::SMem)
                ++stats->scalarInsts;
            else if (fu == arch::FuType::VAlu ||
                     fu == arch::FuType::VMem || fu == arch::FuType::Lds)
                ++stats->vectorInsts;
        }
        code->append(std::unique_ptr<arch::Instruction>(inst));
        return count++;
    }

    void
    emitBranch(PtxlInst *b, unsigned label)
    {
        fixups.push_back({count, label});
        emit(b);
    }

    void
    finalizeLabels()
    {
        for (const auto &f : fixups) {
            size_t target = labelTargets[f.label];
            panic_if(target == SIZE_MAX, "unbound label %u", f.label);
            panic_if(target > count, "label %u points past the end",
                     f.label);
            auto &inst = const_cast<PtxlInst &>(
                static_cast<const PtxlInst &>(code->inst(f.instIdx)));
            inst.setTargetIndex(target);
        }
    }

  private:
    struct Fixup
    {
        size_t instIdx;
        unsigned label;
    };

    arch::KernelCode *code;
    FinalizeStats *stats;
    size_t count = 0;
    std::vector<size_t> labelTargets;
    std::vector<Fixup> fixups;
};

/** The PTXL instruction-selection walk (the Translator's structure,
 *  minus everything the GCN3 contract made it do). */
class PtxlTranslator
{
  public:
    PtxlTranslator(const hsail::IlKernel &il, const GpuConfig &cfg,
                   FinalizeStats *stats)
        : il(il), ilc(*il.code), cfg(cfg), stats(stats),
          uni(analyzeUniformity(il)),
          out(std::make_unique<arch::KernelCode>(IsaKind::PTXL,
                                                 ilc.name())),
          a(out.get(), stats)
    {
        // IL registers map 1:1 onto the general file (the IL is
        // already register-allocated); the backend adds no temps, so
        // going over budget is a kernel bug, not a spill opportunity.
        if (ilc.vregsUsed > cfg.maxRegsPerWfPtxl)
            fatal("kernel %s needs %u general registers; the PTXL "
                  "file holds %u (maxRegsPerWfPtxl)",
                  ilc.name().c_str(), ilc.vregsUsed,
                  cfg.maxRegsPerWfPtxl);

        useCount.assign(ilc.vregsUsed, 0);
        for (size_t i = 0; i < ilc.numInsts(); ++i)
            for (const auto &op : ilc.inst(i).regOps())
                if (!op.isDef)
                    ++useCount[op.idx];

        for (size_t r = 0; r < il.regions.size(); ++r) {
            const CfRegion &reg = il.regions[r];
            if (reg.kind == CfRegion::Kind::Loop) {
                loopHeadAt[reg.bodyFirst].push_back(r);
                loopTailAt[reg.branchIdx] = r;
            } else {
                ifHeadAt[reg.branchIdx] = r;
                ifEndAt[reg.endIdx].push_back(r);
                if (reg.kind == CfRegion::Kind::IfElse)
                    elseAt[reg.elseJumpIdx] = r;
            }
        }
    }

    std::unique_ptr<arch::KernelCode>
    run()
    {
        for (size_t i = 0; i < ilc.numInsts(); ++i) {
            auto ends = ifEndAt.find(i);
            if (ends != ifEndAt.end())
                for (size_t r : ends->second)
                    emitIfEnd(il.regions[r]);

            auto heads = loopHeadAt.find(i);
            if (heads != loopHeadAt.end())
                for (auto it = heads->second.rbegin();
                     it != heads->second.rend(); ++it)
                    emitLoopHead(il.regions[*it]);

            auto ih = ifHeadAt.find(i);
            if (ih != ifHeadAt.end()) {
                emitIfHead(il.regions[ih->second]);
                continue;
            }
            auto ej = elseAt.find(i);
            if (ej != elseAt.end()) {
                emitElse();
                continue;
            }
            auto lt = loopTailAt.find(i);
            if (lt != loopTailAt.end()) {
                emitLoopTail(il.regions[lt->second]);
                continue;
            }

            translate(i, static_cast<const HsailInst &>(ilc.inst(i)));
        }

        a.finalizeLabels();
        out->seal();
        out->execMetas();

        out->vregsUsed = ilc.vregsUsed;
        out->sregsUsed = 0; // no scalar file
        out->kernargBytes = ilc.kernargBytes;
        // LDL/STL address the private and spill windows separately
        // (hardware-managed local memory), so the segments stay split
        // exactly as the IL declared them.
        out->privateBytesPerWi = ilc.privateBytesPerWi;
        out->spillBytesPerWi = ilc.spillBytesPerWi;
        out->ldsBytesPerWg = ilc.ldsBytesPerWg;

        if (stats) {
            stats->vgprsUsed = out->vregsUsed;
            stats->sgprsUsed = 0;
        }
        return std::move(out);
    }

  private:
    // --- control-flow regions --------------------------------------

    struct Ctx
    {
        CfRegion::Kind kind;
        bool divergent;
        uint8_t barIdx = 0;
        unsigned elseLabel = 0;
        unsigned endLabel = 0;
        unsigned topLabel = 0;
    };

    uint8_t
    allocBar()
    {
        panic_if(barDepth >= arch::WfState::NumPtxlBarriers,
                 "convergence-barrier nesting deeper than %u in "
                 "kernel %s", arch::WfState::NumPtxlBarriers,
                 ilc.name().c_str());
        return uint8_t(barDepth++);
    }

    void
    emitIfHead(const CfRegion &r)
    {
        Ctx c;
        c.kind = r.kind;
        c.divergent = regionDivergent(r);
        c.endLabel = a.newLabel();
        bool has_else = r.kind == CfRegion::Kind::IfElse;
        if (has_else)
            c.elseLabel = a.newLabel();

        // Divergent or not, the region is one predicated branch; the
        // only extra cost of divergence is the barrier bracket.
        if (c.divergent) {
            c.barIdx = allocBar();
            a.emit(PtxlInst::bssy(c.barIdx));
        }
        ensureP0(r.condReg);
        a.emitBranch(PtxlInst::braIf(BranchPreg, true, 0),
                     has_else ? c.elseLabel : c.endLabel);
        ctx.push_back(c);
    }

    void
    emitElse()
    {
        panic_if(ctx.empty(), "else outside a region");
        Ctx &c = ctx.back();
        a.emitBranch(PtxlInst::bra(0), c.endLabel);
        a.bind(c.elseLabel);
    }

    void
    emitIfEnd(const CfRegion &)
    {
        panic_if(ctx.empty(), "region end without a head");
        Ctx c = ctx.back();
        ctx.pop_back();
        a.bind(c.endLabel);
        if (c.divergent) {
            // The convergence point: every split parked by the region
            // head (or by an interior BSYNC hand-off) leads here.
            a.emit(PtxlInst::bsync(c.barIdx));
            --barDepth;
        }
    }

    void
    emitLoopHead(const CfRegion &r)
    {
        Ctx c;
        c.kind = CfRegion::Kind::Loop;
        c.divergent = regionDivergent(r);
        c.topLabel = a.newLabel();
        if (c.divergent) {
            c.barIdx = allocBar();
            a.emit(PtxlInst::bssy(c.barIdx));
        }
        // No drain at the backedge target: in-flight loads are the
        // scoreboard's problem, not the code stream's.
        a.bind(c.topLabel);
        ctx.push_back(c);
    }

    void
    emitLoopTail(const CfRegion &r)
    {
        panic_if(ctx.empty(), "loop tail without a head");
        Ctx c = ctx.back();
        ctx.pop_back();
        ensureP0(r.condReg);
        a.emitBranch(PtxlInst::braIf(BranchPreg, false, 0), c.topLabel);
        if (c.divergent) {
            // Lanes leaving the loop fall through here and wait for
            // the stragglers still iterating on the split stack.
            a.emit(PtxlInst::bsync(c.barIdx));
            --barDepth;
        }
    }

    bool
    regionDivergent(const CfRegion &r) const
    {
        for (size_t i = 0; i < il.regions.size(); ++i)
            if (&il.regions[i] == &r)
                return uni.regionDivergent[i];
        return true;
    }

    /** Make P0 hold (cond != 0), reusing the compare the ISETP
     *  peephole already emitted when possible. */
    void
    ensureP0(uint16_t cond)
    {
        if (p0From == cond) {
            p0From = NoIlReg;
            return;
        }
        p0From = NoIlReg;
        a.emit(PtxlInst::isetp(CmpOp::Ne, DataType::U32, BranchPreg,
                               Reg{cond}, Reg{}));
    }

    /** Same peephole as the GCN3 Translator: a compare feeding only
     *  the region branch immediately after it needs no materialized
     *  boolean register. */
    bool
    feedsBranch(size_t i, uint16_t d) const
    {
        if (useCount[d] != 1)
            return false;
        auto ih = ifHeadAt.find(i + 1);
        if (ih != ifHeadAt.end())
            return il.regions[ih->second].condReg == d;
        auto lt = loopTailAt.find(i + 1);
        return lt != loopTailAt.end() &&
               il.regions[lt->second].condReg == d;
    }

    // --- main translation -------------------------------------------

    void
    translate(size_t i, const HsailInst &inst)
    {
        p0From = NoIlReg;

        switch (inst.op()) {
          case Opcode::Ld:
          case Opcode::St:
          case Opcode::AtomicAdd:
            translateMem(inst);
            return;
          case Opcode::Barrier:
            a.emit(PtxlInst::barrier());
            return;
          case Opcode::Ret:
            a.emit(PtxlInst::exitProgram());
            return;
          case Opcode::Nop:
            a.emit(PtxlInst::nop());
            return;
          case Opcode::Br:
          case Opcode::CBr:
            panic("raw IL branch at %zu outside a structured region",
                  i);
          default:
            translateAlu(i, inst);
            return;
        }
    }

    void
    translateAlu(size_t i, const HsailInst &inst)
    {
        DataType t = inst.type();
        Reg D = inst.dst();
        Reg A = inst.src(0);
        Reg B = inst.src(1);
        Reg C = inst.src(2);

        switch (inst.op()) {
          case Opcode::Cmp:
            a.emit(PtxlInst::isetp(inst.cmpOp(), t, BranchPreg, A, B));
            if (feedsBranch(i, D.idx)) {
                p0From = D.idx;
                return;
            }
            a.emit(PtxlInst::p2r(D, BranchPreg));
            return;
          case Opcode::CMov:
            a.emit(PtxlInst::isetp(CmpOp::Ne, DataType::U32, SelPreg,
                                   A, Reg{}));
            a.emit(PtxlInst::sel(t, D, SelPreg, B, C));
            return;
          case Opcode::MovImm:
            a.emit(PtxlInst::movImm(t, D, inst.immBits()));
            return;
          case Opcode::Cvt:
            a.emit(PtxlInst::cvt(t, inst.srcType(), D, A));
            return;
          case Opcode::WorkItemAbsId:
          case Opcode::WorkItemId:
          case Opcode::WorkGroupId:
          case Opcode::WorkGroupSize:
          case Opcode::GridSize:
            a.emit(PtxlInst::s2r(inst.op(), D));
            return;
          default:
            // Everything else is one ALU instruction carrying the IL
            // value semantic — including 64-bit ops on register pairs
            // and the transcendentals GCN3 expands into multi-
            // instruction Newton-Raphson sequences (PTXL's MUFU-style
            // units own those).
            a.emit(PtxlInst::alu(inst.op(), t, D, A, B, C));
            return;
        }
    }

    void
    translateMem(const HsailInst &inst)
    {
        DataType t = inst.type();
        Reg D = inst.dst();
        Reg A = inst.src(0);
        Reg V = inst.src(1);
        int64_t off = inst.memOffset();

        if (inst.op() == Opcode::AtomicAdd) {
            a.emit(PtxlInst::atomicAdd(t, D, A, off, V));
            return;
        }
        if (inst.op() == Opcode::St)
            a.emit(PtxlInst::st(inst.segment(), t, V, A, off));
        else
            a.emit(PtxlInst::ld(inst.segment(), t, D, A, off));
    }

    const hsail::IlKernel &il;
    const arch::KernelCode &ilc;
    GpuConfig cfg;
    FinalizeStats *stats;
    UniformityInfo uni;
    std::unique_ptr<arch::KernelCode> out;
    PtxlAsm a;

    unsigned barDepth = 0;

    std::vector<unsigned> useCount;
    std::map<size_t, size_t> ifHeadAt;
    std::map<size_t, size_t> elseAt;
    std::map<size_t, size_t> loopTailAt;
    std::map<size_t, std::vector<size_t>> ifEndAt;
    std::map<size_t, std::vector<size_t>> loopHeadAt;
    std::vector<Ctx> ctx;

    uint16_t p0From = NoIlReg;
};

class PtxlBackend final : public Backend
{
  public:
    IsaKind isa() const override { return IsaKind::PTXL; }

    std::unique_ptr<arch::KernelCode>
    lower(const hsail::IlKernel &il, const GpuConfig &cfg,
          FinalizeStats *stats) const override
    {
        FinalizeStats local;
        PtxlTranslator t(il, cfg, stats ? stats : &local);
        return t.run();
    }

    uint64_t
    configDigest(const GpuConfig &cfg) const override
    {
        // FNV-1a over a backend tag plus every knob the lowering
        // reads. The tag keeps a PTXL digest from ever colliding with
        // the GCN3 formula over equal knob values.
        uint64_t h = 1469598103934665603ull;
        for (uint64_t v : {uint64_t(0x4c585450u), // "PTXL"
                           uint64_t(cfg.maxRegsPerWfPtxl)}) {
            for (unsigned i = 0; i < 8; ++i) {
                h ^= (v >> (8 * i)) & 0xff;
                h *= 1099511628211ull;
            }
        }
        return h;
    }
};

} // namespace

const Backend &
ptxlBackend()
{
    static const PtxlBackend backend;
    return backend;
}

} // namespace last::finalizer
