#include "finalizer/backend.hh"

#include "common/logging.hh"

namespace last::finalizer
{

const Backend *
backendFor(IsaKind isa)
{
    switch (isa) {
      case IsaKind::HSAIL:
        return nullptr;
      case IsaKind::GCN3:
        return &gcn3Backend();
      case IsaKind::PTXL:
        return &ptxlBackend();
    }
    panic("backendFor: unknown ISA %d", int(isa));
}

std::unique_ptr<arch::KernelCode>
finalize(const hsail::IlKernel &il, IsaKind isa, const GpuConfig &cfg,
         FinalizeStats *out_stats)
{
    const Backend *b = backendFor(isa);
    panic_if(!b, "finalize: %s has no machine backend", isaName(isa));
    return b->lower(il, cfg, out_stats);
}

uint64_t
finalizeConfigDigest(const GpuConfig &cfg, IsaKind isa)
{
    const Backend *b = backendFor(isa);
    panic_if(!b, "finalizeConfigDigest: %s has no machine backend",
             isaName(isa));
    return b->configDigest(cfg);
}

} // namespace last::finalizer
