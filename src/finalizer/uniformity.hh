/**
 * @file
 * Uniformity (divergence) analysis over an IL kernel.
 *
 * Drives the finalizer's scalarization decisions: values proven uniform
 * across the wavefront AND producible by the scalar pipeline are
 * allocated to SGPRs and computed with scalar instructions — the
 * hardware-software co-design HSAIL cannot express.
 */

#ifndef LAST_FINALIZER_UNIFORMITY_HH
#define LAST_FINALIZER_UNIFORMITY_HH

#include <vector>

#include "hsail/builder.hh"

namespace last::finalizer
{

struct UniformityInfo
{
    /** Per IL register: value identical across all lanes. */
    std::vector<bool> uniform;

    /** Per IL register: value lives in SGPRs (uniform AND every def is
     *  scalar-pipeline selectable AND all inputs are SGPR-resident). */
    std::vector<bool> sgprResident;

    /** Per region (parallel to IlKernel::regions): the region's
     *  condition requires exec-mask predication (not a scalar branch). */
    std::vector<bool> regionDivergent;

    bool isUniform(uint16_t reg) const { return uniform[reg]; }
    bool isResident(uint16_t reg) const { return sgprResident[reg]; }
};

UniformityInfo analyzeUniformity(const hsail::IlKernel &il);

} // namespace last::finalizer

#endif // LAST_FINALIZER_UNIFORMITY_HH
