/**
 * @file
 * Direct-threaded execution handlers for PTXL.
 *
 * PtxlInst::predecode resolves each static instruction to one of the
 * flat handlers below, following the src/hsail/exec.cc idiom: the hot
 * 32-bit ALU classes get templated active-lane kernels (ctz over the
 * mask, full-row loop when all 64 lanes are live), and everything
 * else calls the unchanged reference executors non-virtually.
 *
 * Correctness contract: every handler is bit-identical to the
 * corresponding piece of PtxlInst::execute(); tests/test_ptxl.cc runs
 * every workload both ways and compares AppResults field for field.
 */

#include <bit>
#include <cmath>

#include "arch/exec_meta.hh"
#include "common/logging.hh"
#include "ptxl/inst.hh"

namespace last::ptxl
{

namespace
{

using hsail::Opcode;

float asF32(uint32_t b) { return std::bit_cast<float>(b); }
uint32_t fromF32(float f) { return std::bit_cast<uint32_t>(f); }

/** Operands a templated ALU kernel reads (reference: laneAlu). */
constexpr unsigned
aluArity(Opcode op)
{
    switch (op) {
      case Opcode::Abs:
      case Opcode::Neg:
      case Opcode::Not:
      case Opcode::Mov:
        return 1;
      case Opcode::Mad:
      case Opcode::Fma:
      case Opcode::Bfe:
        return 3;
      default:
        return 2;
    }
}

/**
 * One lane of a 32-bit ALU op; the expressions are the same verbatim
 * copies of HsailInst::laneAlu that PtxlInst::laneAlu holds — do not
 * "simplify" them.
 */
template <Opcode OP, DataType DT>
inline uint32_t
lane32(uint32_t a, [[maybe_unused]] uint32_t b, [[maybe_unused]] uint32_t c)
{
    if constexpr (OP == Opcode::Add) {
        if constexpr (DT == DataType::F32)
            return fromF32(asF32(a) + asF32(b));
        else
            return a + b;
    } else if constexpr (OP == Opcode::Sub) {
        if constexpr (DT == DataType::F32)
            return fromF32(asF32(a) - asF32(b));
        else
            return a - b;
    } else if constexpr (OP == Opcode::Mul) {
        if constexpr (DT == DataType::F32)
            return fromF32(asF32(a) * asF32(b));
        else
            return a * b;
    } else if constexpr (OP == Opcode::MulHi) {
        return uint32_t((uint64_t(a) * uint64_t(b)) >> 32);
    } else if constexpr (OP == Opcode::Mad) {
        if constexpr (DT == DataType::F32)
            return fromF32(asF32(a) * asF32(b) + asF32(c));
        else
            return a * b + c;
    } else if constexpr (OP == Opcode::Fma) {
        if constexpr (DT == DataType::F32)
            return fromF32(std::fma(asF32(a), asF32(b), asF32(c)));
        else
            return a * b + c;
    } else if constexpr (OP == Opcode::Min) {
        if constexpr (DT == DataType::F32)
            return fromF32(std::fmin(asF32(a), asF32(b)));
        else if constexpr (DT == DataType::S32)
            return uint32_t(std::min(int32_t(a), int32_t(b)));
        else
            return std::min(a, b);
    } else if constexpr (OP == Opcode::Max) {
        if constexpr (DT == DataType::F32)
            return fromF32(std::fmax(asF32(a), asF32(b)));
        else if constexpr (DT == DataType::S32)
            return uint32_t(std::max(int32_t(a), int32_t(b)));
        else
            return std::max(a, b);
    } else if constexpr (OP == Opcode::Abs) {
        if constexpr (DT == DataType::F32)
            return fromF32(std::fabs(asF32(a)));
        else
            return uint32_t(std::abs(int32_t(a)));
    } else if constexpr (OP == Opcode::Neg) {
        if constexpr (DT == DataType::F32)
            return fromF32(-asF32(a));
        else
            return uint32_t(-int32_t(a));
    } else if constexpr (OP == Opcode::And) {
        return a & b;
    } else if constexpr (OP == Opcode::Or) {
        return a | b;
    } else if constexpr (OP == Opcode::Xor) {
        return a ^ b;
    } else if constexpr (OP == Opcode::Not) {
        return ~a;
    } else if constexpr (OP == Opcode::Shl) {
        return a << (b & 31);
    } else if constexpr (OP == Opcode::Shr) {
        return a >> (b & 31);
    } else if constexpr (OP == Opcode::AShr) {
        return uint32_t(int32_t(a) >> (b & 31));
    } else if constexpr (OP == Opcode::Bfe) {
        unsigned off = b & 31;
        unsigned width = c & 31;
        uint32_t mask = width == 0 ? 0xffffffffu : ((1u << width) - 1);
        return (a >> off) & mask;
    } else if constexpr (OP == Opcode::Mov) {
        return a;
    } else {
        static_assert(OP == Opcode::Mov, "no lane kernel for opcode");
        return 0;
    }
}

} // namespace

struct PtxlExec
{
    using Meta = arch::ExecMeta;
    using Wf = arch::WfState;

    static const PtxlInst &
    inst(const Meta &m)
    {
        return static_cast<const PtxlInst &>(*m.inst);
    }

    /** @{ Control handlers (reference: execute() switch). */
    static void
    nopH(const Meta &, Wf &wf)
    {
        wf.nextPc = wf.pc + PtxlInst::EncodedBytes;
    }

    static void
    exitH(const Meta &, Wf &wf)
    {
        wf.nextPc = wf.pc + PtxlInst::EncodedBytes;
        wf.done = true;
    }

    static void
    barH(const Meta &, Wf &wf)
    {
        wf.nextPc = wf.pc + PtxlInst::EncodedBytes;
        wf.atBarrier = true;
    }

    static void
    bssyH(const Meta &m, Wf &wf)
    {
        const PtxlInst &I = inst(m);
        wf.nextPc = wf.pc + PtxlInst::EncodedBytes;
        wf.cbarExpected[I.bar] = wf.exec;
        wf.cbarArrived[I.bar] = 0;
    }

    static void
    bsyncH(const Meta &m, Wf &wf)
    {
        wf.nextPc = wf.pc + PtxlInst::EncodedBytes;
        inst(m).executeBsync(wf);
    }

    static void
    braH(const Meta &m, Wf &wf)
    {
        wf.nextPc = wf.pc + PtxlInst::EncodedBytes;
        inst(m).executeBranch(wf);
    }
    /** @} */

    /** @{ Cold wrappers: the reference executors, non-virtually. */
    static void
    isetpH(const Meta &m, Wf &wf)
    {
        wf.nextPc = wf.pc + PtxlInst::EncodedBytes;
        inst(m).executeIsetp(wf);
    }

    static void
    memH(const Meta &m, Wf &wf)
    {
        wf.nextPc = wf.pc + PtxlInst::EncodedBytes;
        inst(m).executeMem(wf);
    }

    static void
    aluGenericH(const Meta &m, Wf &wf)
    {
        wf.nextPc = wf.pc + PtxlInst::EncodedBytes;
        inst(m).executeAlu(wf);
    }
    /** @} */

    /** S2R: broadcast a special register into the active lanes. */
    static void
    s2rH(const Meta &m, Wf &wf)
    {
        const PtxlInst &I = inst(m);
        wf.nextPc = wf.pc + PtxlInst::EncodedBytes;
        uint64_t mask = wf.exec;
        uint32_t *d = wf.vregs[I.dstReg.idx].data();
        for (uint64_t rest = mask; rest; rest &= rest - 1) {
            unsigned lane = unsigned(std::countr_zero(rest));
            d[lane] = uint32_t(I.laneAlu(wf, lane));
        }
    }

    /** MOV32I: broadcast the immediate into the active lanes. */
    static void
    movImmH(const Meta &m, Wf &wf)
    {
        const PtxlInst &I = inst(m);
        wf.nextPc = wf.pc + PtxlInst::EncodedBytes;
        uint64_t mask = wf.exec;
        uint32_t *d = wf.vregs[I.dstReg.idx].data();
        const uint32_t v = uint32_t(I.imm);
        if (mask == ~0ull) {
            for (unsigned l = 0; l < WavefrontSize; ++l)
                d[l] = v;
        } else {
            for (uint64_t rest = mask; rest; rest &= rest - 1)
                d[unsigned(std::countr_zero(rest))] = v;
        }
    }

    /** 32-bit ALU op, one instantiation per (semantic, type). */
    template <Opcode OP, DataType DT>
    static void
    aluH(const Meta &m, Wf &wf)
    {
        const PtxlInst &I = inst(m);
        wf.nextPc = wf.pc + PtxlInst::EncodedBytes;
        uint64_t mask = wf.exec;

        constexpr unsigned N = aluArity(OP);
        uint32_t *d = wf.vregs[I.dstReg.idx].data();
        const uint32_t *a = wf.vregs[I.srcRegs[0].idx].data();
        const uint32_t *b = a;
        const uint32_t *c = a;
        if constexpr (N >= 2)
            b = wf.vregs[I.srcRegs[1].idx].data();
        if constexpr (N >= 3)
            c = wf.vregs[I.srcRegs[2].idx].data();

        if (mask == ~0ull) {
            for (unsigned l = 0; l < WavefrontSize; ++l)
                d[l] = lane32<OP, DT>(a[l], b[l], c[l]);
        } else {
            for (uint64_t rest = mask; rest; rest &= rest - 1) {
                unsigned l = unsigned(std::countr_zero(rest));
                d[l] = lane32<OP, DT>(a[l], b[l], c[l]);
            }
        }
    }

    template <DataType DT>
    static arch::ExecHandler
    pickAluDt(Opcode op)
    {
        switch (op) {
          case Opcode::Add: return &aluH<Opcode::Add, DT>;
          case Opcode::Sub: return &aluH<Opcode::Sub, DT>;
          case Opcode::Mul: return &aluH<Opcode::Mul, DT>;
          case Opcode::MulHi: return &aluH<Opcode::MulHi, DT>;
          case Opcode::Mad: return &aluH<Opcode::Mad, DT>;
          case Opcode::Fma: return &aluH<Opcode::Fma, DT>;
          case Opcode::Min: return &aluH<Opcode::Min, DT>;
          case Opcode::Max: return &aluH<Opcode::Max, DT>;
          case Opcode::Abs: return &aluH<Opcode::Abs, DT>;
          case Opcode::Neg: return &aluH<Opcode::Neg, DT>;
          case Opcode::And: return &aluH<Opcode::And, DT>;
          case Opcode::Or: return &aluH<Opcode::Or, DT>;
          case Opcode::Xor: return &aluH<Opcode::Xor, DT>;
          case Opcode::Not: return &aluH<Opcode::Not, DT>;
          case Opcode::Shl: return &aluH<Opcode::Shl, DT>;
          case Opcode::Shr: return &aluH<Opcode::Shr, DT>;
          case Opcode::AShr: return &aluH<Opcode::AShr, DT>;
          case Opcode::Bfe: return &aluH<Opcode::Bfe, DT>;
          case Opcode::Mov: return &aluH<Opcode::Mov, DT>;
          default: return nullptr; // Div/Rem/Sqrt/Cvt/specials: generic
        }
    }

    static arch::ExecHandler
    pick(const PtxlInst &I)
    {
        auto srcs_valid = [&](unsigned n) {
            for (unsigned s = 0; s < n; ++s)
                if (!I.srcRegs[s].valid())
                    return false;
            return true;
        };

        switch (I.opc) {
          case PtxlOp::Ldg:
          case PtxlOp::Stg:
          case PtxlOp::Atom:
          case PtxlOp::Lds:
          case PtxlOp::Sts:
          case PtxlOp::Ldl:
          case PtxlOp::Stl:
          case PtxlOp::Ldc:
            return &memH;
          case PtxlOp::Bra: return &braH;
          case PtxlOp::Bssy: return &bssyH;
          case PtxlOp::Bsync: return &bsyncH;
          case PtxlOp::Bar: return &barH;
          case PtxlOp::Exit: return &exitH;
          case PtxlOp::Nop: return &nopH;
          case PtxlOp::Isetp: return &isetpH;
          case PtxlOp::Sel:
          case PtxlOp::P2r:
            return &aluGenericH;
          case PtxlOp::S2r:
            return I.dstReg.valid() ? &s2rH : &aluGenericH;
          case PtxlOp::Alu: {
            if (I.sem == Opcode::MovImm) {
                return (typeRegs(I.dtype) == 1 && I.dstReg.valid())
                           ? &movImmH : &aluGenericH;
            }
            if (typeRegs(I.dtype) == 1 && I.dstReg.valid() &&
                srcs_valid(aluArity(I.sem))) {
                arch::ExecHandler h = nullptr;
                switch (I.dtype) {
                  case DataType::B32:
                    h = pickAluDt<DataType::B32>(I.sem); break;
                  case DataType::U32:
                    h = pickAluDt<DataType::U32>(I.sem); break;
                  case DataType::S32:
                    h = pickAluDt<DataType::S32>(I.sem); break;
                  case DataType::F32:
                    h = pickAluDt<DataType::F32>(I.sem); break;
                  default: break;
                }
                if (h)
                    return h;
            }
            return &aluGenericH;
          }
        }
        return &aluGenericH;
    }
};

void
PtxlInst::predecode(arch::ExecMeta &m) const
{
    m.handler = PtxlExec::pick(*this);
}

} // namespace last::ptxl
