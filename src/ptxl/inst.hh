/**
 * @file
 * The concrete PTXL instruction.
 *
 * Every PTXL instruction occupies 16 bytes of simulated memory — the
 * fixed 128-bit encoding NVIDIA adopted with Volta (one word of which
 * holds scheduling/scoreboard control in real hardware; here that
 * cost shows up purely as instruction footprint, one of the
 * cross-vendor divergence signals).
 *
 * Register model: general registers R0..R254 are vector-class (one
 * 32-bit value per lane, pairs for 64-bit); a missing source operand
 * reads as RZ (zero). Predicates P0..P7 are per-lane bits stored as
 * 64-bit masks in WfState::pregs and declared as scalar-class
 * operands so the CU's scoreboard and hazard probes track them
 * without modification.
 */

#ifndef LAST_PTXL_INST_HH
#define LAST_PTXL_INST_HH

#include <cstdint>

#include "arch/instruction.hh"
#include "arch/wf_state.hh"
#include "hsail/inst.hh"
#include "ptxl/opcodes.hh"

namespace last::ptxl
{

using hsail::CmpOp;
using hsail::DataType;
using hsail::Reg;
using hsail::Segment;

class PtxlInst : public arch::Instruction
{
  public:
    /** Fixed Volta-style 128-bit encoding. */
    static constexpr unsigned EncodedBytes = 16;
    static constexpr uint8_t NoPreg = 0xff;

    PtxlInst(PtxlOp op, DataType type);

    /** @{ Named factories. */
    static PtxlInst *alu(hsail::Opcode sem, DataType t, Reg dst, Reg src0,
                         Reg src1 = {}, Reg src2 = {});
    static PtxlInst *movImm(DataType t, Reg dst, uint64_t bits);
    static PtxlInst *cvt(DataType dst_t, DataType src_t, Reg dst, Reg src);
    /** Compare into a predicate; an invalid src1 compares against RZ. */
    static PtxlInst *isetp(CmpOp c, DataType t, uint8_t pdst, Reg src0,
                           Reg src1 = {});
    static PtxlInst *sel(DataType t, Reg dst, uint8_t psrc, Reg tval,
                         Reg fval);
    static PtxlInst *p2r(Reg dst, uint8_t psrc);
    static PtxlInst *s2r(hsail::Opcode sem, Reg dst);
    static PtxlInst *ld(Segment seg, DataType t, Reg dst, Reg addr,
                        int64_t offset);
    static PtxlInst *st(Segment seg, DataType t, Reg val, Reg addr,
                        int64_t offset);
    static PtxlInst *atomicAdd(DataType t, Reg dst, Reg addr,
                               int64_t offset, Reg val);
    static PtxlInst *bra(size_t target_index);
    static PtxlInst *braIf(uint8_t psrc, bool negate, size_t target_index);
    static PtxlInst *bssy(uint8_t bar_idx);
    static PtxlInst *bsync(uint8_t bar_idx);
    static PtxlInst *barrier();
    static PtxlInst *exitProgram();
    static PtxlInst *nop();
    /** @} */

    void execute(arch::WfState &wf) const override;
    std::string disassemble() const override;
    arch::FuType fuType() const override;
    unsigned sizeBytes() const override { return EncodedBytes; }

    /** Install the direct-threaded handler (src/ptxl/exec.cc). */
    void predecode(arch::ExecMeta &m) const override;

    PtxlOp op() const { return opc; }
    hsail::Opcode aluSem() const { return sem; }
    DataType type() const { return dtype; }
    Segment segment() const { return seg; }
    Reg dst() const { return dstReg; }
    Reg src(unsigned i) const { return srcRegs[i]; }
    uint8_t predDst() const { return pdst; }
    uint8_t predSrc() const { return psrc; }
    bool predNegated() const { return pneg; }
    uint8_t barIdx() const { return bar; }
    uint64_t immBits() const { return imm; }

    /** @{ Branch-target plumbing (indices resolved to byte offsets by
     * the lowering; no reconvergence offsets — convergence is managed
     * by explicit BSSY/BSYNC instructions, not simulator state). */
    size_t targetIndex() const { return targetIdx; }
    void setTargetIndex(size_t idx) { targetIdx = idx; }
    Addr targetOffset() const { return targetIdx * EncodedBytes; }
    /** @} */

  private:
    friend struct PtxlExec;

    void finalizeOperands();

    void executeAlu(arch::WfState &wf) const;
    void executeIsetp(arch::WfState &wf) const;
    void executeMem(arch::WfState &wf) const;
    void executeBranch(arch::WfState &wf) const;
    void executeBsync(arch::WfState &wf) const;

    uint64_t laneAlu(const arch::WfState &wf, unsigned lane) const;

    PtxlOp opc;
    hsail::Opcode sem = hsail::Opcode::Nop;
    DataType dtype;
    DataType srcDtype = DataType::B32; ///< for Cvt
    Segment seg = Segment::Global;
    CmpOp cmpop = CmpOp::Eq;
    Reg dstReg;
    Reg srcRegs[3];
    uint8_t pdst = NoPreg;
    uint8_t psrc = NoPreg;
    bool pneg = false;
    uint8_t bar = 0;
    uint64_t imm = 0;
    size_t targetIdx = 0;
};

} // namespace last::ptxl

#endif // LAST_PTXL_INST_HH
