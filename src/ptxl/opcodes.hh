/**
 * @file
 * PTXL: the NVIDIA-flavored machine ISA.
 *
 * The opcode set is a SASS-like machine level ("Analyzing Modern
 * NVIDIA GPU cores", PAPERS.md): a single flat general register file
 * (no scalar pipeline), an 8-entry predicate file, compiler-inserted
 * convergence barriers (BSSY/BSYNC) instead of a simulator
 * reconvergence stack, predicated branches that park divergent lanes
 * on a hardware warp-split stack, and a fixed 16-byte (Volta-style
 * 128-bit) encoding. Dependencies are covered by a fixed-latency
 * hardware scoreboard — there is no s_waitcnt/s_nop-style software
 * dependency management anywhere in the instruction stream.
 *
 * ALU value semantics are carried by the vendor-neutral IL opcode
 * (hsail::Opcode) so the three ISAs agree functionally by
 * construction; everything the abstraction study measures — encoding
 * footprint, convergence management, dependency handling, pipeline
 * structure — differs at the machine level.
 */

#ifndef LAST_PTXL_OPCODES_HH
#define LAST_PTXL_OPCODES_HH

#include "hsail/opcodes.hh"

namespace last::ptxl
{

/** Machine-level operation classes. */
enum class PtxlOp
{
    Alu,   ///< FADD/IMAD/SHL/... (semantics: hsail::Opcode + type)
    Isetp, ///< compare into a predicate register
    Sel,   ///< dst = P ? src0 : src1
    P2r,   ///< dst = P ? 1 : 0 (predicate materialization)
    S2r,   ///< special-register read (tid/ctaid/ntid/griddim)
    Ldg,   ///< global load
    Stg,   ///< global store
    Atom,  ///< global atomic add (returns the old value)
    Lds,   ///< shared-memory load
    Sts,   ///< shared-memory store
    Ldl,   ///< local load (hardware-managed per-thread addressing)
    Stl,   ///< local store
    Ldc,   ///< constant-bank load (kernel parameters)
    Bra,   ///< branch, optionally predicated (@Pn / @!Pn)
    Bssy,  ///< convergence barrier set-synchronization point
    Bsync, ///< convergence barrier synchronize
    Bar,   ///< workgroup barrier (BAR.SYNC)
    Exit,  ///< end of program
    Nop,
};

const char *ptxlOpName(PtxlOp op);

} // namespace last::ptxl

#endif // LAST_PTXL_OPCODES_HH
