#include "ptxl/inst.hh"

#include <bit>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace last::ptxl
{

namespace
{

float asF32(uint32_t b) { return std::bit_cast<float>(b); }
uint32_t fromF32(float f) { return std::bit_cast<uint32_t>(f); }
double asF64(uint64_t b) { return std::bit_cast<double>(b); }
uint64_t fromF64(double d) { return std::bit_cast<uint64_t>(d); }

} // namespace

const char *
ptxlOpName(PtxlOp op)
{
    switch (op) {
      case PtxlOp::Alu: return "alu";
      case PtxlOp::Isetp: return "ISETP";
      case PtxlOp::Sel: return "SEL";
      case PtxlOp::P2r: return "P2R";
      case PtxlOp::S2r: return "S2R";
      case PtxlOp::Ldg: return "LDG";
      case PtxlOp::Stg: return "STG";
      case PtxlOp::Atom: return "ATOM.ADD";
      case PtxlOp::Lds: return "LDS";
      case PtxlOp::Sts: return "STS";
      case PtxlOp::Ldl: return "LDL";
      case PtxlOp::Stl: return "STL";
      case PtxlOp::Ldc: return "LDC";
      case PtxlOp::Bra: return "BRA";
      case PtxlOp::Bssy: return "BSSY";
      case PtxlOp::Bsync: return "BSYNC";
      case PtxlOp::Bar: return "BAR.SYNC";
      case PtxlOp::Exit: return "EXIT";
      case PtxlOp::Nop: return "NOP";
    }
    return "?";
}

PtxlInst::PtxlInst(PtxlOp op, DataType type)
    : opc(op), dtype(type)
{
}

PtxlInst *
PtxlInst::alu(hsail::Opcode sem, DataType t, Reg dst, Reg src0, Reg src1,
              Reg src2)
{
    auto *i = new PtxlInst(PtxlOp::Alu, t);
    i->sem = sem;
    i->dstReg = dst;
    i->srcRegs[0] = src0;
    i->srcRegs[1] = src1;
    i->srcRegs[2] = src2;
    if (t == DataType::F64 || t == DataType::U64)
        i->setFlags(arch::IsF64);
    if (sem == hsail::Opcode::Div || sem == hsail::Opcode::Sqrt ||
        sem == hsail::Opcode::Rem) {
        i->setFlags(arch::IsTrans);
    }
    i->finalizeOperands();
    return i;
}

PtxlInst *
PtxlInst::movImm(DataType t, Reg dst, uint64_t bits)
{
    auto *i = new PtxlInst(PtxlOp::Alu, t);
    i->sem = hsail::Opcode::MovImm;
    i->dstReg = dst;
    i->imm = bits;
    i->finalizeOperands();
    return i;
}

PtxlInst *
PtxlInst::cvt(DataType dst_t, DataType src_t, Reg dst, Reg src)
{
    auto *i = new PtxlInst(PtxlOp::Alu, dst_t);
    i->sem = hsail::Opcode::Cvt;
    i->srcDtype = src_t;
    i->dstReg = dst;
    i->srcRegs[0] = src;
    i->finalizeOperands();
    return i;
}

PtxlInst *
PtxlInst::isetp(CmpOp c, DataType t, uint8_t pdst, Reg src0, Reg src1)
{
    auto *i = new PtxlInst(PtxlOp::Isetp, t);
    i->cmpop = c;
    i->pdst = pdst;
    i->srcRegs[0] = src0;
    i->srcRegs[1] = src1;
    i->finalizeOperands();
    return i;
}

PtxlInst *
PtxlInst::sel(DataType t, Reg dst, uint8_t psrc, Reg tval, Reg fval)
{
    auto *i = new PtxlInst(PtxlOp::Sel, t);
    i->dstReg = dst;
    i->psrc = psrc;
    i->srcRegs[0] = tval;
    i->srcRegs[1] = fval;
    i->setFlags(arch::IsCondMove);
    i->finalizeOperands();
    return i;
}

PtxlInst *
PtxlInst::p2r(Reg dst, uint8_t psrc)
{
    auto *i = new PtxlInst(PtxlOp::P2r, DataType::U32);
    i->dstReg = dst;
    i->psrc = psrc;
    i->finalizeOperands();
    return i;
}

PtxlInst *
PtxlInst::s2r(hsail::Opcode sem, Reg dst)
{
    auto *i = new PtxlInst(PtxlOp::S2r, DataType::U32);
    i->sem = sem;
    i->dstReg = dst;
    i->finalizeOperands();
    return i;
}

PtxlInst *
PtxlInst::ld(Segment seg, DataType t, Reg dst, Reg addr, int64_t offset)
{
    PtxlOp op;
    switch (seg) {
      case Segment::Global:
      case Segment::Readonly: op = PtxlOp::Ldg; break;
      case Segment::Group: op = PtxlOp::Lds; break;
      case Segment::Private:
      case Segment::Spill: op = PtxlOp::Ldl; break;
      case Segment::Kernarg:
      case Segment::Arg: op = PtxlOp::Ldc; break;
      default: panic("ptxl ld: unhandled segment"); op = PtxlOp::Ldg;
    }
    auto *i = new PtxlInst(op, t);
    i->seg = seg;
    i->dstReg = dst;
    i->srcRegs[0] = addr;
    i->imm = uint64_t(offset);
    i->setFlags(arch::IsMemory | arch::IsLoad);
    i->finalizeOperands();
    return i;
}

PtxlInst *
PtxlInst::st(Segment seg, DataType t, Reg val, Reg addr, int64_t offset)
{
    PtxlOp op;
    switch (seg) {
      case Segment::Global: op = PtxlOp::Stg; break;
      case Segment::Group: op = PtxlOp::Sts; break;
      case Segment::Private:
      case Segment::Spill: op = PtxlOp::Stl; break;
      default: panic("ptxl st: unhandled segment"); op = PtxlOp::Stg;
    }
    auto *i = new PtxlInst(op, t);
    i->seg = seg;
    i->srcRegs[0] = addr;
    i->srcRegs[1] = val;
    i->imm = uint64_t(offset);
    i->setFlags(arch::IsMemory | arch::IsStore);
    i->finalizeOperands();
    return i;
}

PtxlInst *
PtxlInst::atomicAdd(DataType t, Reg dst, Reg addr, int64_t offset, Reg val)
{
    auto *i = new PtxlInst(PtxlOp::Atom, t);
    i->seg = Segment::Global;
    i->dstReg = dst;
    i->srcRegs[0] = addr;
    i->srcRegs[1] = val;
    i->imm = uint64_t(offset);
    i->setFlags(arch::IsMemory | arch::IsLoad | arch::IsStore |
                arch::IsAtomic);
    i->finalizeOperands();
    return i;
}

PtxlInst *
PtxlInst::bra(size_t target_index)
{
    auto *i = new PtxlInst(PtxlOp::Bra, DataType::B32);
    i->targetIdx = target_index;
    i->setFlags(arch::IsBranch);
    i->finalizeOperands();
    return i;
}

PtxlInst *
PtxlInst::braIf(uint8_t psrc, bool negate, size_t target_index)
{
    auto *i = bra(target_index);
    i->psrc = psrc;
    i->pneg = negate;
    i->clearOps();
    i->finalizeOperands();
    return i;
}

PtxlInst *
PtxlInst::bssy(uint8_t bar_idx)
{
    auto *i = new PtxlInst(PtxlOp::Bssy, DataType::B32);
    i->bar = bar_idx;
    return i;
}

PtxlInst *
PtxlInst::bsync(uint8_t bar_idx)
{
    auto *i = new PtxlInst(PtxlOp::Bsync, DataType::B32);
    i->bar = bar_idx;
    // May redirect control flow (switching to a parked warp split).
    i->setFlags(arch::IsBranch);
    return i;
}

PtxlInst *
PtxlInst::barrier()
{
    auto *i = new PtxlInst(PtxlOp::Bar, DataType::B32);
    i->setFlags(arch::IsBarrier);
    return i;
}

PtxlInst *
PtxlInst::exitProgram()
{
    auto *i = new PtxlInst(PtxlOp::Exit, DataType::B32);
    i->setFlags(arch::IsEndPgm);
    return i;
}

PtxlInst *
PtxlInst::nop()
{
    auto *i = new PtxlInst(PtxlOp::Nop, DataType::B32);
    i->setFlags(arch::IsNop);
    return i;
}

void
PtxlInst::finalizeOperands()
{
    using arch::RegClass;
    unsigned dw = unsigned(typeRegs(dtype));
    unsigned sw = dw;
    if (sem == hsail::Opcode::Cvt)
        sw = typeRegs(srcDtype);

    switch (opc) {
      case PtxlOp::Alu:
      case PtxlOp::S2r:
      case PtxlOp::P2r:
        if (dstReg.valid())
            addOp(RegClass::Vector, dstReg.idx, uint8_t(dw), true);
        if (psrc != NoPreg)
            addOp(RegClass::Scalar, psrc, 1, false);
        for (unsigned s = 0; s < 3; ++s) {
            if (srcRegs[s].valid())
                addOp(RegClass::Vector, srcRegs[s].idx, uint8_t(sw),
                      false);
        }
        return;
      case PtxlOp::Sel:
        addOp(RegClass::Vector, dstReg.idx, uint8_t(dw), true);
        addOp(RegClass::Scalar, psrc, 1, false);
        for (unsigned s = 0; s < 2; ++s) {
            if (srcRegs[s].valid())
                addOp(RegClass::Vector, srcRegs[s].idx, uint8_t(dw),
                      false);
        }
        return;
      case PtxlOp::Isetp:
        addOp(RegClass::Scalar, pdst, 1, true);
        for (unsigned s = 0; s < 2; ++s) {
            if (srcRegs[s].valid())
                addOp(RegClass::Vector, srcRegs[s].idx, uint8_t(dw),
                      false);
        }
        return;
      case PtxlOp::Ldg:
      case PtxlOp::Stg:
      case PtxlOp::Atom:
      case PtxlOp::Lds:
      case PtxlOp::Sts:
      case PtxlOp::Ldl:
      case PtxlOp::Stl:
      case PtxlOp::Ldc: {
        if (dstReg.valid())
            addOp(RegClass::Vector, dstReg.idx, uint8_t(dw), true);
        if (srcRegs[0].valid()) {
            // Address operand: 64-bit pair for global addressing,
            // 32-bit offset for shared/local.
            unsigned aw =
                (opc == PtxlOp::Ldg || opc == PtxlOp::Stg ||
                 opc == PtxlOp::Atom) ? 2 : 1;
            addOp(RegClass::Vector, srcRegs[0].idx, uint8_t(aw), false);
        }
        if (srcRegs[1].valid())
            addOp(RegClass::Vector, srcRegs[1].idx, uint8_t(dw), false);
        return;
      }
      case PtxlOp::Bra:
        if (psrc != NoPreg)
            addOp(RegClass::Scalar, psrc, 1, false);
        return;
      default:
        return; // Bssy/Bsync/Bar/Exit/Nop: no register operands
    }
}

arch::FuType
PtxlInst::fuType() const
{
    switch (opc) {
      case PtxlOp::Ldg:
      case PtxlOp::Stg:
      case PtxlOp::Atom:
      case PtxlOp::Ldl:
      case PtxlOp::Stl:
        return arch::FuType::VMem;
      case PtxlOp::Lds:
      case PtxlOp::Sts:
        return arch::FuType::Lds;
      case PtxlOp::Ldc:
        return arch::FuType::SMem; // constant cache (scalar D$ analog)
      case PtxlOp::Bra:
      case PtxlOp::Bssy:
      case PtxlOp::Bsync:
        return arch::FuType::Branch;
      case PtxlOp::Bar:
      case PtxlOp::Exit:
      case PtxlOp::Nop:
        return arch::FuType::Special;
      default:
        return arch::FuType::VAlu;
    }
}

uint64_t
PtxlInst::laneAlu(const arch::WfState &wf, unsigned lane) const
{
    using hsail::Opcode;
    auto rd = [&](Reg r, DataType t) -> uint64_t {
        if (!r.valid())
            return 0; // RZ
        return typeRegs(t) == 2 ? wf.readVreg64(r.idx, lane)
                                : uint64_t(wf.readVreg(r.idx, lane));
    };
    DataType t = dtype;
    uint64_t a = rd(srcRegs[0], t);
    uint64_t b = rd(srcRegs[1], t);
    uint64_t c = rd(srcRegs[2], t);

    // The per-lane value expressions are copied verbatim from
    // HsailInst::laneAlu: machine lowering must not change IEEE
    // results, or the cross-ISA functional-agreement contract breaks.
    switch (sem) {
      case Opcode::Add:
        switch (t) {
          case DataType::F32: return fromF32(asF32(a) + asF32(b));
          case DataType::F64: return fromF64(asF64(a) + asF64(b));
          default: return (t == DataType::U64) ? a + b
                       : uint64_t(uint32_t(a) + uint32_t(b));
        }
      case Opcode::Sub:
        switch (t) {
          case DataType::F32: return fromF32(asF32(a) - asF32(b));
          case DataType::F64: return fromF64(asF64(a) - asF64(b));
          default: return (t == DataType::U64) ? a - b
                       : uint64_t(uint32_t(a) - uint32_t(b));
        }
      case Opcode::Mul:
        switch (t) {
          case DataType::F32: return fromF32(asF32(a) * asF32(b));
          case DataType::F64: return fromF64(asF64(a) * asF64(b));
          default: return (t == DataType::U64) ? a * b
                       : uint64_t(uint32_t(a) * uint32_t(b));
        }
      case Opcode::MulHi:
        return uint64_t(uint32_t((uint64_t(uint32_t(a)) *
                                  uint64_t(uint32_t(b))) >> 32));
      case Opcode::Mad:
        switch (t) {
          case DataType::F32:
            return fromF32(asF32(a) * asF32(b) + asF32(c));
          case DataType::F64:
            return fromF64(asF64(a) * asF64(b) + asF64(c));
          default:
            return uint64_t(uint32_t(a) * uint32_t(b) + uint32_t(c));
        }
      case Opcode::Fma:
        switch (t) {
          case DataType::F32:
            return fromF32(std::fma(asF32(a), asF32(b), asF32(c)));
          case DataType::F64:
            return fromF64(std::fma(asF64(a), asF64(b), asF64(c)));
          default:
            return uint64_t(uint32_t(a) * uint32_t(b) + uint32_t(c));
        }
      case Opcode::Div:
        switch (t) {
          case DataType::F32: return fromF32(asF32(a) / asF32(b));
          case DataType::F64: return fromF64(asF64(a) / asF64(b));
          case DataType::S32:
            return int32_t(b) == 0
                ? 0 : uint64_t(uint32_t(int32_t(a) / int32_t(b)));
          default:
            return uint32_t(b) == 0
                ? 0 : uint64_t(uint32_t(a) / uint32_t(b));
        }
      case Opcode::Rem:
        switch (t) {
          case DataType::S32:
            return int32_t(b) == 0
                ? 0 : uint64_t(uint32_t(int32_t(a) % int32_t(b)));
          default:
            return uint32_t(b) == 0
                ? 0 : uint64_t(uint32_t(a) % uint32_t(b));
        }
      case Opcode::Min:
        switch (t) {
          case DataType::F32:
            return fromF32(std::fmin(asF32(a), asF32(b)));
          case DataType::F64:
            return fromF64(std::fmin(asF64(a), asF64(b)));
          case DataType::S32:
            return uint64_t(uint32_t(std::min(int32_t(a), int32_t(b))));
          default:
            return std::min(uint32_t(a), uint32_t(b));
        }
      case Opcode::Max:
        switch (t) {
          case DataType::F32:
            return fromF32(std::fmax(asF32(a), asF32(b)));
          case DataType::F64:
            return fromF64(std::fmax(asF64(a), asF64(b)));
          case DataType::S32:
            return uint64_t(uint32_t(std::max(int32_t(a), int32_t(b))));
          default:
            return std::max(uint32_t(a), uint32_t(b));
        }
      case Opcode::Abs:
        switch (t) {
          case DataType::F32: return fromF32(std::fabs(asF32(a)));
          case DataType::F64: return fromF64(std::fabs(asF64(a)));
          default:
            return uint64_t(uint32_t(std::abs(int32_t(a))));
        }
      case Opcode::Neg:
        switch (t) {
          case DataType::F32: return fromF32(-asF32(a));
          case DataType::F64: return fromF64(-asF64(a));
          default: return uint64_t(uint32_t(-int32_t(a)));
        }
      case Opcode::Sqrt:
        return t == DataType::F64 ? fromF64(std::sqrt(asF64(a)))
                                  : fromF32(std::sqrt(asF32(a)));
      case Opcode::And: return a & b;
      case Opcode::Or: return a | b;
      case Opcode::Xor: return a ^ b;
      case Opcode::Not:
        return t == DataType::U64 ? ~a : uint64_t(~uint32_t(a));
      case Opcode::Shl:
        return t == DataType::U64 ? a << (b & 63)
                                  : uint64_t(uint32_t(a) << (b & 31));
      case Opcode::Shr:
        return t == DataType::U64 ? a >> (b & 63)
                                  : uint64_t(uint32_t(a) >> (b & 31));
      case Opcode::AShr:
        return uint64_t(uint32_t(int32_t(a) >> (b & 31)));
      case Opcode::Bfe: {
        unsigned off = unsigned(b) & 31;
        unsigned width = unsigned(c) & 31;
        uint32_t mask = width == 0 ? 0xffffffffu : ((1u << width) - 1);
        return (uint32_t(a) >> off) & mask;
      }
      case Opcode::Mov:
        return a;
      case Opcode::MovImm:
        return imm;
      case Opcode::Cvt: {
        uint64_t s = typeRegs(srcDtype) == 2
            ? wf.readVreg64(srcRegs[0].idx, lane)
            : uint64_t(wf.readVreg(srcRegs[0].idx, lane));
        double v;
        switch (srcDtype) {
          case DataType::F32: v = asF32(uint32_t(s)); break;
          case DataType::F64: v = asF64(s); break;
          case DataType::S32: v = double(int32_t(s)); break;
          default: v = double(s); break;
        }
        switch (dtype) {
          case DataType::F32: return fromF32(float(v));
          case DataType::F64: return fromF64(v);
          case DataType::S32: return uint64_t(uint32_t(int32_t(v)));
          case DataType::U64: return uint64_t(v);
          default: return uint64_t(uint32_t(v));
        }
      }
      case Opcode::WorkItemAbsId:
        return wf.globalId(lane);
      case Opcode::WorkItemId:
        return wf.wfIdInWg * WavefrontSize + lane;
      case Opcode::WorkGroupId:
        return wf.wgId;
      case Opcode::WorkGroupSize:
        return wf.wgSize;
      case Opcode::GridSize:
        return wf.gridSize;
      default:
        panic("ptxl laneAlu on unsupported semantic %d", int(sem));
    }
}

void
PtxlInst::executeAlu(arch::WfState &wf) const
{
    uint64_t mask = wf.exec;
    unsigned dst_regs = typeRegs(dtype);

    if (opc == PtxlOp::Sel || opc == PtxlOp::P2r) {
        uint64_t p = wf.pregs[psrc];
        for (unsigned lane = 0; lane < WavefrontSize; ++lane) {
            if (!(mask & (1ull << lane)))
                continue;
            bool bit = (p >> lane) & 1;
            uint64_t r;
            if (opc == PtxlOp::P2r) {
                r = bit ? 1 : 0;
            } else {
                Reg src = bit ? srcRegs[0] : srcRegs[1];
                r = dst_regs == 2 ? wf.readVreg64(src.idx, lane)
                                  : uint64_t(wf.readVreg(src.idx, lane));
            }
            if (dst_regs == 2)
                wf.writeVreg64(dstReg.idx, lane, r);
            else
                wf.writeVreg(dstReg.idx, lane, uint32_t(r));
        }
        return;
    }

    for (unsigned lane = 0; lane < WavefrontSize; ++lane) {
        if (!(mask & (1ull << lane)))
            continue;
        uint64_t r = laneAlu(wf, lane);
        if (!dstReg.valid())
            continue;
        if (dst_regs == 2)
            wf.writeVreg64(dstReg.idx, lane, r);
        else
            wf.writeVreg(dstReg.idx, lane, uint32_t(r));
    }
}

void
PtxlInst::executeIsetp(arch::WfState &wf) const
{
    uint64_t mask = wf.exec;
    auto rd = [&](Reg r, unsigned lane) -> uint64_t {
        if (!r.valid())
            return 0; // RZ
        return typeRegs(dtype) == 2 ? wf.readVreg64(r.idx, lane)
                                    : uint64_t(wf.readVreg(r.idx, lane));
    };
    auto docmp = [&](auto x, auto y) {
        switch (cmpop) {
          case CmpOp::Eq: return x == y;
          case CmpOp::Ne: return x != y;
          case CmpOp::Lt: return x < y;
          case CmpOp::Le: return x <= y;
          case CmpOp::Gt: return x > y;
          case CmpOp::Ge: return x >= y;
        }
        return false;
    };
    uint64_t result = 0;
    for (unsigned lane = 0; lane < WavefrontSize; ++lane) {
        if (!(mask & (1ull << lane)))
            continue;
        uint64_t a = rd(srcRegs[0], lane);
        uint64_t b = rd(srcRegs[1], lane);
        bool r;
        switch (dtype) {
          case DataType::F32: r = docmp(asF32(uint32_t(a)),
                                        asF32(uint32_t(b))); break;
          case DataType::F64: r = docmp(asF64(a), asF64(b)); break;
          case DataType::S32: r = docmp(int32_t(a), int32_t(b)); break;
          default: r = docmp(a, b); break;
        }
        if (r)
            result |= 1ull << lane;
    }
    // Per-thread predicate: inactive lanes keep their old value.
    wf.pregs[pdst] = (wf.pregs[pdst] & ~mask) | result;
}

void
PtxlInst::executeMem(arch::WfState &wf) const
{
    using arch::MemAccess;
    uint64_t mask = wf.exec;
    unsigned bytes = typeBytes(dtype);
    MemAccess acc;
    acc.bytesPerLane = bytes;
    acc.mask = mask;

    if (opc == PtxlOp::Ldc) {
        // Constant bank c[0][imm]: the kernel-parameter window the
        // driver bound at launch, served through the constant cache.
        Addr addr = wf.kernargBase + imm;
        uint64_t val = 0;
        wf.memory->read(addr, &val, bytes);
        for (unsigned lane = 0; lane < WavefrontSize; ++lane) {
            if (!(mask & (1ull << lane)))
                continue;
            if (bytes == 8)
                wf.writeVreg64(dstReg.idx, lane, val);
            else
                wf.writeVreg(dstReg.idx, lane, uint32_t(val));
        }
        acc.kind = MemAccess::Kind::ScalarLoad;
        acc.scalarAddr = addr;
        acc.scalarBytes = bytes;
        wf.pendingAccess = acc;
        return;
    }

    if (opc == PtxlOp::Lds || opc == PtxlOp::Sts) {
        acc.kind = (opc == PtxlOp::Sts) ? MemAccess::Kind::LdsStore
                                        : MemAccess::Kind::LdsLoad;
        for (unsigned lane = 0; lane < WavefrontSize; ++lane) {
            if (!(mask & (1ull << lane)))
                continue;
            Addr off = imm;
            if (srcRegs[0].valid())
                off += wf.readVreg(srcRegs[0].idx, lane);
            acc.laneAddrs[lane] = off;
            if (opc == PtxlOp::Sts) {
                wf.lds->write32(off, wf.readVreg(srcRegs[1].idx, lane));
                if (bytes == 8)
                    wf.lds->write32(off + 4,
                                    wf.readVreg(srcRegs[1].idx + 1, lane));
            } else {
                wf.writeVreg(dstReg.idx, lane, wf.lds->read32(off));
                if (bytes == 8)
                    wf.writeVreg(dstReg.idx + 1, lane,
                                 wf.lds->read32(off + 4));
            }
        }
        wf.pendingAccess = acc;
        return;
    }

    acc.kind = (opc == PtxlOp::Stg || opc == PtxlOp::Stl)
                   ? MemAccess::Kind::VectorStore
                   : MemAccess::Kind::VectorLoad;
    for (unsigned lane = 0; lane < WavefrontSize; ++lane) {
        if (!(mask & (1ull << lane)))
            continue;
        Addr addr;
        if (opc == PtxlOp::Ldl || opc == PtxlOp::Stl) {
            // Local memory: the hardware computes the per-thread
            // address from the thread's local-memory window — no
            // visible address arithmetic, exactly like NVIDIA LDL/STL.
            Addr base = (seg == Segment::Spill) ? wf.spillBase
                                                : wf.privateBase;
            uint64_t stride = (seg == Segment::Spill)
                                  ? wf.spillStridePerWi
                                  : wf.privateStridePerWi;
            addr = base + uint64_t(wf.globalId(lane)) * stride +
                   (srcRegs[0].valid()
                        ? wf.readVreg(srcRegs[0].idx, lane) : 0) +
                   imm;
        } else {
            addr = wf.readVreg64(srcRegs[0].idx, lane) + imm;
        }
        acc.laneAddrs[lane] = addr;

        if (opc == PtxlOp::Stg || opc == PtxlOp::Stl) {
            if (bytes == 8) {
                uint64_t v = wf.readVreg64(srcRegs[1].idx, lane);
                wf.memory->write(addr, &v, 8);
            } else {
                uint32_t v = wf.readVreg(srcRegs[1].idx, lane);
                wf.memory->write(addr, &v, 4);
            }
        } else if (opc == PtxlOp::Atom) {
            uint32_t old = wf.memory->read<uint32_t>(addr);
            uint32_t add = wf.readVreg(srcRegs[1].idx, lane);
            wf.memory->write<uint32_t>(addr, old + add);
            if (dstReg.valid())
                wf.writeVreg(dstReg.idx, lane, old);
        } else {
            if (bytes == 8) {
                uint64_t v = 0;
                wf.memory->read(addr, &v, 8);
                wf.writeVreg64(dstReg.idx, lane, v);
            } else {
                uint32_t v = 0;
                wf.memory->read(addr, &v, 4);
                wf.writeVreg(dstReg.idx, lane, v);
            }
        }
    }
    wf.pendingAccess = acc;
}

void
PtxlInst::executeBranch(arch::WfState &wf) const
{
    Addr fallthrough = wf.pc + EncodedBytes;
    Addr target = targetOffset();
    uint64_t active = wf.exec;
    uint64_t p = (psrc == NoPreg) ? ~0ull
                                  : (pneg ? ~wf.pregs[psrc]
                                          : wf.pregs[psrc]);
    uint64_t taken = active & p;

    if (taken == 0) {
        wf.nextPc = fallthrough;
    } else if (taken == active) {
        wf.nextPc = target;
    } else {
        // Divergence: the taken lanes are parked on the warp-split
        // stack for the next BSYNC to resume; the fall-through lanes
        // keep executing.
        wf.splits.push_back({target, taken});
        wf.exec = active & ~taken;
        wf.nextPc = fallthrough;
    }
}

void
PtxlInst::executeBsync(arch::WfState &wf) const
{
    wf.cbarArrived[bar] |= wf.exec;
    if (wf.cbarArrived[bar] == wf.cbarExpected[bar]) {
        // Every lane the matching BSSY observed has arrived:
        // reconverge and fall through.
        wf.exec = wf.cbarExpected[bar];
        wf.nextPc = wf.pc + EncodedBytes;
    } else {
        // Lanes still outstanding: switch to the most recently parked
        // warp split (structured code guarantees it leads here).
        panic_if(wf.splits.empty(),
                 "BSYNC B%u with missing arrivals and no parked split "
                 "(unstructured control flow?)", unsigned(bar));
        arch::PtxlSplit s = wf.splits.back();
        wf.splits.pop_back();
        wf.exec = s.mask;
        wf.nextPc = s.pc;
    }
}

void
PtxlInst::execute(arch::WfState &wf) const
{
    wf.nextPc = wf.pc + EncodedBytes;
    switch (opc) {
      case PtxlOp::Alu:
      case PtxlOp::S2r:
      case PtxlOp::Sel:
      case PtxlOp::P2r:
        executeAlu(wf);
        return;
      case PtxlOp::Isetp:
        executeIsetp(wf);
        return;
      case PtxlOp::Ldg:
      case PtxlOp::Stg:
      case PtxlOp::Atom:
      case PtxlOp::Lds:
      case PtxlOp::Sts:
      case PtxlOp::Ldl:
      case PtxlOp::Stl:
      case PtxlOp::Ldc:
        executeMem(wf);
        return;
      case PtxlOp::Bra:
        executeBranch(wf);
        return;
      case PtxlOp::Bssy:
        wf.cbarExpected[bar] = wf.exec;
        wf.cbarArrived[bar] = 0;
        return;
      case PtxlOp::Bsync:
        executeBsync(wf);
        return;
      case PtxlOp::Bar:
        wf.atBarrier = true;
        return;
      case PtxlOp::Exit:
        wf.done = true;
        return;
      case PtxlOp::Nop:
        return;
    }
}

namespace
{

std::string
regName(Reg r, unsigned w)
{
    if (!r.valid())
        return "RZ";
    std::ostringstream s;
    if (w == 2)
        s << "R[" << r.idx << ":" << r.idx + 1 << "]";
    else
        s << "R" << r.idx;
    return s.str();
}

std::string
aluMnemonic(hsail::Opcode sem, DataType t)
{
    using hsail::Opcode;
    bool f32 = t == DataType::F32;
    bool f64 = t == DataType::F64;
    switch (sem) {
      case Opcode::Add: return f32 ? "FADD" : f64 ? "DADD" : "IADD";
      case Opcode::Sub: return f32 ? "FSUB" : f64 ? "DSUB" : "ISUB";
      case Opcode::Mul: return f32 ? "FMUL" : f64 ? "DMUL" : "IMUL";
      case Opcode::MulHi: return "IMUL.HI";
      case Opcode::Mad: return f32 ? "FMAD" : f64 ? "DMAD" : "IMAD";
      case Opcode::Fma: return f32 ? "FFMA" : f64 ? "DFMA" : "IMAD";
      case Opcode::Div: return f32 ? "FDIV" : f64 ? "DDIV" : "IDIV";
      case Opcode::Rem: return "IREM";
      case Opcode::Min: return (f32 || f64) ? "FMNMX.MIN" : "IMNMX.MIN";
      case Opcode::Max: return (f32 || f64) ? "FMNMX.MAX" : "IMNMX.MAX";
      case Opcode::Abs: return (f32 || f64) ? "FABS" : "IABS";
      case Opcode::Neg: return (f32 || f64) ? "FNEG" : "INEG";
      case Opcode::Sqrt: return f64 ? "MUFU.DSQRT" : "MUFU.SQRT";
      case Opcode::And: return "LOP.AND";
      case Opcode::Or: return "LOP.OR";
      case Opcode::Xor: return "LOP.XOR";
      case Opcode::Not: return "LOP.NOT";
      case Opcode::Shl: return "SHL";
      case Opcode::Shr: return "SHR.U32";
      case Opcode::AShr: return "SHR.S32";
      case Opcode::Bfe: return "BFE";
      case Opcode::Mov: return "MOV";
      case Opcode::MovImm: return "MOV32I";
      case Opcode::Cvt: return "CVT";
      case Opcode::WorkItemAbsId: return "SR_GLOBALID";
      case Opcode::WorkItemId: return "SR_TID";
      case Opcode::WorkGroupId: return "SR_CTAID";
      case Opcode::WorkGroupSize: return "SR_NTID";
      case Opcode::GridSize: return "SR_GRIDDIM";
      default: return "?";
    }
}

} // namespace

std::string
PtxlInst::disassemble() const
{
    std::ostringstream os;
    unsigned w = typeRegs(dtype);

    switch (opc) {
      case PtxlOp::Alu: {
        os << aluMnemonic(sem, dtype);
        if (dstReg.valid())
            os << " " << regName(dstReg, w);
        if (sem == hsail::Opcode::MovImm) {
            os << ", #" << imm;
            return os.str();
        }
        unsigned sw = (sem == hsail::Opcode::Cvt) ? typeRegs(srcDtype)
                                                  : w;
        for (unsigned s = 0; s < 3; ++s) {
            if (srcRegs[s].valid())
                os << ", " << regName(srcRegs[s], sw);
        }
        return os.str();
      }
      case PtxlOp::Isetp:
        os << "ISETP." << hsail::cmpOpName(cmpop) << "."
           << hsail::typeName(dtype) << " P" << unsigned(pdst) << ", "
           << regName(srcRegs[0], w) << ", " << regName(srcRegs[1], w);
        return os.str();
      case PtxlOp::Sel:
        os << "SEL " << regName(dstReg, w) << ", P" << unsigned(psrc)
           << ", " << regName(srcRegs[0], w) << ", "
           << regName(srcRegs[1], w);
        return os.str();
      case PtxlOp::P2r:
        os << "P2R " << regName(dstReg, 1) << ", P" << unsigned(psrc);
        return os.str();
      case PtxlOp::S2r:
        os << "S2R " << regName(dstReg, 1) << ", "
           << aluMnemonic(sem, dtype);
        return os.str();
      case PtxlOp::Ldg:
      case PtxlOp::Stg:
      case PtxlOp::Atom:
      case PtxlOp::Lds:
      case PtxlOp::Sts:
      case PtxlOp::Ldl:
      case PtxlOp::Stl: {
        os << ptxlOpName(opc);
        if (typeBytes(dtype) == 8)
            os << ".64";
        os << " ";
        bool is_store = opc == PtxlOp::Stg || opc == PtxlOp::Sts ||
                        opc == PtxlOp::Stl;
        std::string val = is_store ? regName(srcRegs[1], w)
                                   : regName(dstReg, w);
        unsigned aw = (opc == PtxlOp::Ldg || opc == PtxlOp::Stg ||
                       opc == PtxlOp::Atom) ? 2 : 1;
        os << val << ", [" << regName(srcRegs[0], aw);
        if (imm)
            os << "+" << int64_t(imm);
        os << "]";
        if (opc == PtxlOp::Atom)
            os << ", " << regName(srcRegs[1], w);
        return os.str();
      }
      case PtxlOp::Ldc:
        os << "LDC";
        if (typeBytes(dtype) == 8)
            os << ".64";
        os << " " << regName(dstReg, w) << ", c[0x0][" << imm << "]";
        return os.str();
      case PtxlOp::Bra:
        if (psrc != NoPreg)
            os << "@" << (pneg ? "!" : "") << "P" << unsigned(psrc)
               << " ";
        os << "BRA @" << targetIdx;
        return os.str();
      case PtxlOp::Bssy:
        os << "BSSY B" << unsigned(bar);
        return os.str();
      case PtxlOp::Bsync:
        os << "BSYNC B" << unsigned(bar);
        return os.str();
      default:
        return ptxlOpName(opc);
    }
}

} // namespace last::ptxl
