#include "serve/protocol.hh"

#include <sstream>

#include "common/error.hh"
#include "common/json_in.hh"
#include "obs/json.hh"

namespace last::serve
{

ServeRequest
parseServeRequest(const std::string &line, const std::string &source)
{
    using jsonin::JsonValue;
    using jsonin::asDouble;
    using jsonin::asI64;
    using jsonin::asString;
    using jsonin::asU64;
    using jsonin::require;

    JsonValue root = jsonin::parseJson(line, source);
    if (root.kind != JsonValue::Kind::Object)
        throw ConfigError(source + ": request is not an object at byte " +
                              std::to_string(root.offset),
                          __FILE__, __LINE__);

    ServeRequest req;
    req.method =
        asString(require(root, "method", source), "method", source);
    if (const JsonValue *v = root.find("id"))
        req.id = asU64(*v, "id", source);
    if (const JsonValue *v = root.find("workload"))
        req.workload = asString(*v, "workload", source);
    if (const JsonValue *v = root.find("isa")) {
        std::string isa = asString(*v, "isa", source);
        if (!isaFromName(isa, req.isa))
            throw ConfigError(source + ": bad isa '" + isa +
                                  "' at byte " + std::to_string(v->offset),
                              __FILE__, __LINE__);
        req.hasIsa = true;
    }
    if (const JsonValue *v = root.find("scale"))
        req.scale = asDouble(*v, "scale", source);
    if (const JsonValue *v = root.find("seed"))
        req.seed = asU64(*v, "seed", source);
    if (const JsonValue *v = root.find("lds_stride"))
        req.ldsStrideWords = int(asI64(*v, "lds_stride", source));
    if (const JsonValue *v = root.find("lds_pad"))
        req.ldsPadWords = int(asI64(*v, "lds_pad", source));
    if (const JsonValue *v = root.find("threshold"))
        req.threshold = asDouble(*v, "threshold", source);
    if (const JsonValue *v = root.find("timeout_ms"))
        req.timeoutMs = asU64(*v, "timeout_ms", source);
    return req;
}

namespace
{

/** The shared "schema/id/ok/method" prefix of every envelope. */
std::ostringstream
envelopeHead(uint64_t id, bool ok, const std::string &method)
{
    std::ostringstream os;
    os << "{\"schema\":\"" << ServeSchema << "\",\"id\":" << id
       << ",\"ok\":" << (ok ? "true" : "false");
    if (!method.empty())
        os << ",\"method\":\"" << obs::jsonEscape(method) << "\"";
    return os;
}

} // namespace

std::string
payloadEnvelope(uint64_t id, const std::string &method,
                const std::string &servedFrom, bool quarantined,
                const std::string &payloadSchema,
                const std::string &payload)
{
    std::ostringstream os = envelopeHead(id, true, method);
    os << ",\"served\":\"" << obs::jsonEscape(servedFrom) << "\""
       << ",\"quarantined\":" << (quarantined ? "true" : "false")
       << ",\"payload_schema\":\"" << obs::jsonEscape(payloadSchema)
       << "\",\"payload\":\"" << obs::jsonEscape(payload) << "\"}";
    return os.str();
}

std::string
resultEnvelope(uint64_t id, const std::string &method,
               const std::string &resultJson)
{
    std::ostringstream os = envelopeHead(id, true, method);
    os << ",\"result\":" << resultJson << "}";
    return os.str();
}

std::string
errorEnvelope(uint64_t id, const std::string &kind,
              const std::string &message)
{
    std::ostringstream os = envelopeHead(id, false, "");
    os << ",\"error_kind\":\"" << obs::jsonEscape(kind)
       << "\",\"error\":\"" << obs::jsonEscape(message) << "\"}";
    return os.str();
}

} // namespace last::serve
