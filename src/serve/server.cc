#include "serve/server.hh"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "common/error.hh"
#include "common/logging.hh"
#include "obs/json.hh"
#include "obs/stats_export.hh"
#include "sim/artifact_cache.hh"
#include "sim/experiment.hh"
#include "sim/parallel.hh"
#include "sim/shard.hh"
#include "workloads/workload.hh"

namespace last::serve
{

namespace
{

/** Internal control-flow for structured error responses. */
struct ServeFailure
{
    std::string kind;
    std::string message;
};

/** What one executed request produced (shared by every waiter). */
struct PayloadOut
{
    std::string servedFrom; ///< "sim" or "cache"
    bool quarantined = false;
    std::string schema;
    std::string bytes;
};

bool
knownWorkload(const std::string &name)
{
    const auto names = workloads::allWorkloadNames();
    return std::find(names.begin(), names.end(), name) != names.end();
}

/** Coalescing identity: every field that can change the payload. The
 *  id is deliberately absent — twin requests differ only in who asked. */
std::string
canonicalKey(const ServeRequest &r)
{
    std::ostringstream os;
    os << r.method << '|' << r.workload << '|'
       << (r.hasIsa ? isaName(r.isa) : "-") << '|'
       << obs::jsonNumber(r.scale) << '|' << r.seed << '|'
       << r.ldsStrideWords << '|' << r.ldsPadWords << '|'
       << obs::jsonNumber(r.threshold) << '|' << r.timeoutMs;
    return os.str();
}

workloads::WorkloadScale
scaleOf(const ServeRequest &r)
{
    workloads::WorkloadScale ws{r.scale};
    ws.seed = r.seed;
    ws.ldsStrideWords = r.ldsStrideWords;
    ws.ldsPadWords = r.ldsPadWords;
    return ws;
}

GpuConfig
configOf(const ServeRequest &r)
{
    GpuConfig cfg;
    if (r.timeoutMs)
        cfg.wallDeadline = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(r.timeoutMs);
    return cfg;
}

} // namespace

/** One admitted request key with every client waiting on it. */
struct ServeCore::Pending
{
    std::string key;
    ServeRequest req; ///< representative (first arrival)
    struct Waiter
    {
        uint64_t id;
        Respond respond;
    };
    std::vector<Waiter> waiters;
};

ServeCore::ServeCore(const ServeOptions &opts) : opts_(opts)
{
    workers_.reserve(opts_.workers);
    for (unsigned i = 0; i < opts_.workers; ++i)
        workers_.emplace_back(&ServeCore::workerLoop, this);
}

ServeCore::~ServeCore()
{
    {
        std::lock_guard<std::mutex> g(mu_);
        stopping_.store(true);
    }
    cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
    // Whatever is still queued can never run: tell every waiter.
    std::deque<std::shared_ptr<Pending>> leftover;
    {
        std::lock_guard<std::mutex> g(mu_);
        leftover.swap(queue_);
        inflight_.clear();
        for (const auto &p : leftover)
            counters_.errors += p->waiters.size();
    }
    for (const auto &p : leftover)
        for (const auto &w : p->waiters)
            w.respond(errorEnvelope(w.id, "shutdown",
                                    "server stopped before this "
                                    "request ran"));
}

void
ServeCore::onShutdown(std::function<void()> hook)
{
    shutdownHook_ = std::move(hook);
}

size_t
ServeCore::preload(const sim::BenchCacheFile &cache)
{
    std::lock_guard<std::mutex> g(storeMu_);
    sim::BenchCacheFile &file = store_[cache.scale];
    file.scale = cache.scale;
    size_t kept = 0;
    for (const sim::CachedRun &row : cache.rows) {
        if (row.result.quarantined)
            continue; // must re-simulate, never satisfy reuse
        if (!file.find(row.key)) {
            file.rows.push_back(row);
            ++kept;
        }
    }
    return kept;
}

ServeCounters
ServeCore::counters() const
{
    std::lock_guard<std::mutex> g(mu_);
    return counters_;
}

size_t
ServeCore::storeRows() const
{
    std::lock_guard<std::mutex> g(storeMu_);
    size_t n = 0;
    for (const auto &[scale, file] : store_)
        n += file.rows.size();
    return n;
}

size_t
ServeCore::pendingRequests() const
{
    std::lock_guard<std::mutex> g(mu_);
    return queue_.size();
}

std::string
ServeCore::statusJson() const
{
    ServeCounters c = counters();
    const sim::ArtifactCache &ac = sim::ArtifactCache::instance();
    std::ostringstream os;
    os << "{\"protocol\":\"" << ServeSchema << "\""
       << ",\"received\":" << c.received << ",\"served\":" << c.served
       << ",\"errors\":" << c.errors
       << ",\"overloaded\":" << c.overloaded
       << ",\"coalesced\":" << c.coalesced
       << ",\"cache_row_hits\":" << c.cacheRowHits
       << ",\"simulated_specs\":" << c.simulatedSpecs
       << ",\"quarantined_specs\":" << c.quarantinedSpecs
       << ",\"store_rows\":" << storeRows()
       << ",\"pending\":" << pendingRequests()
       << ",\"artifact_hits\":" << ac.hits()
       << ",\"artifact_misses\":" << ac.misses()
       << ",\"workers\":" << opts_.workers
       << ",\"queue_depth\":" << opts_.queueDepth << "}";
    return os.str();
}

void
ServeCore::submit(const ServeRequest &req, Respond respond)
{
    // Control methods answer inline — they must work even when every
    // worker is busy and the queue is full (that is their point).
    if (req.method == "ping") {
        std::lock_guard<std::mutex> g(mu_);
        ++counters_.received;
        ++counters_.served;
        respond(resultEnvelope(req.id, "ping",
                               std::string("{\"protocol\":\"") +
                                   ServeSchema + "\"}"));
        return;
    }
    if (req.method == "status") {
        {
            std::lock_guard<std::mutex> g(mu_);
            ++counters_.received;
            ++counters_.served;
        }
        respond(resultEnvelope(req.id, "status", statusJson()));
        return;
    }
    if (req.method == "shutdown") {
        {
            std::lock_guard<std::mutex> g(mu_);
            ++counters_.received;
            ++counters_.served;
        }
        respond(resultEnvelope(req.id, "shutdown",
                               "{\"stopping\":true}"));
        shutdown_.store(true);
        if (shutdownHook_)
            shutdownHook_();
        return;
    }

    auto refuse = [&](const char *kind, const std::string &msg) {
        {
            std::lock_guard<std::mutex> g(mu_);
            ++counters_.received;
            ++counters_.errors;
        }
        respond(errorEnvelope(req.id, kind, msg));
    };

    if (shutdown_.load()) {
        refuse("shutdown", "server is stopping");
        return;
    }
    if (req.method != "stats" && req.method != "diverge") {
        refuse("bad-request", "unknown method '" + req.method + "'");
        return;
    }
    if (req.workload.empty()) {
        refuse("bad-request",
               "method '" + req.method + "' needs a 'workload'");
        return;
    }
    if (!knownWorkload(req.workload)) {
        refuse("bad-request", "unknown workload '" + req.workload + "'");
        return;
    }
    if (req.method == "stats" && !req.hasIsa) {
        refuse("bad-request", "method 'stats' needs an 'isa' "
                              "(\"hsail\", \"gcn3\", or \"ptxl\")");
        return;
    }

    const std::string key = canonicalKey(req);
    {
        std::lock_guard<std::mutex> g(mu_);
        ++counters_.received;
        auto it = inflight_.find(key);
        if (it != inflight_.end()) {
            // An identical request is queued or running: share its one
            // execution, answer from the same payload.
            it->second->waiters.push_back({req.id, std::move(respond)});
            ++counters_.coalesced;
            return;
        }
        if (queue_.size() >= opts_.queueDepth) {
            ++counters_.overloaded;
            ++counters_.errors;
            respond(errorEnvelope(
                req.id, "overloaded",
                "request queue full (" +
                    std::to_string(opts_.queueDepth) +
                    " pending); retry with backoff"));
            return;
        }
        auto p = std::make_shared<Pending>();
        p->key = key;
        p->req = req;
        p->waiters.push_back({req.id, std::move(respond)});
        inflight_.emplace(key, p);
        queue_.push_back(std::move(p));
    }
    cv_.notify_one();
}

bool
ServeCore::drainOne()
{
    std::shared_ptr<Pending> p;
    {
        std::lock_guard<std::mutex> g(mu_);
        if (queue_.empty())
            return false;
        p = std::move(queue_.front());
        queue_.pop_front();
    }
    execute(*p);
    return true;
}

void
ServeCore::workerLoop()
{
    while (true) {
        std::shared_ptr<Pending> p;
        {
            std::unique_lock<std::mutex> l(mu_);
            cv_.wait(l, [&] {
                return stopping_.load() || !queue_.empty();
            });
            if (stopping_.load())
                return;
            p = std::move(queue_.front());
            queue_.pop_front();
        }
        execute(*p);
    }
}

namespace
{

/** Serve a divergence query from the store, simulating only the
 *  missing (workload, ISA) levels, and derive the report through the
 *  same cache representation the shard/merge paths use — which is
 *  what makes the payload byte-identical to the offline artifact. */
PayloadOut
doDiverge(const ServeRequest &req, const ServeOptions &opts,
          std::mutex &storeMu, std::map<double, sim::BenchCacheFile> &store,
          ServeCounters &counters, std::mutex &countersMu)
{
    using sim::CachedRun;

    const workloads::WorkloadScale ws = scaleOf(req);
    const GpuConfig cfg = configOf(req);
    sim::RunSpec specs[NumIsas];
    CachedRun rows[NumIsas];
    bool have[NumIsas] = {};
    for (unsigned k = 0; k < NumIsas; ++k) {
        specs[k] = {req.workload, AllIsas[k], cfg, ws};
        rows[k].key = sim::specCacheKey(specs[k]);
    }
    {
        std::lock_guard<std::mutex> g(storeMu);
        auto it = store.find(req.scale);
        if (it != store.end()) {
            for (unsigned k = 0; k < NumIsas; ++k) {
                if (const CachedRun *hit = it->second.find(rows[k].key)) {
                    rows[k] = *hit;
                    have[k] = true;
                }
            }
        }
    }

    std::vector<sim::RunSpec> toRun;
    for (unsigned k = 0; k < NumIsas; ++k)
        if (!have[k])
            toRun.push_back(specs[k]);

    size_t hits = 0, newlyQuarantined = 0;
    for (unsigned k = 0; k < NumIsas; ++k)
        hits += have[k];
    if (!toRun.empty()) {
        sim::SweepOptions so;
        so.jobs = opts.simJobs;
        so.retryFailed = opts.retryFailed;
        sim::SweepReport sweep = sim::runSweep(toRun, so);
        size_t i = 0;
        for (unsigned k = 0; k < NumIsas; ++k)
            if (!have[k])
                rows[k].result = std::move(sweep.results[i++]);
        std::lock_guard<std::mutex> g(storeMu);
        sim::BenchCacheFile &file = store[req.scale];
        file.scale = req.scale;
        for (const CachedRun &row : rows) {
            if (row.result.quarantined) {
                // Quarantined results are degraded responses, never
                // reusable rows: the next identical request retries.
                ++newlyQuarantined;
                continue;
            }
            if (!file.find(row.key))
                file.rows.push_back(row);
        }
    }
    {
        std::lock_guard<std::mutex> g(countersMu);
        counters.cacheRowHits += hits;
        counters.simulatedSpecs += toRun.size();
        counters.quarantinedSpecs += newlyQuarantined;
    }

    sim::BenchCacheFile group;
    group.scale = req.scale;
    group.rows.assign(std::begin(rows), std::end(rows));
    auto reports = sim::divergenceFromCache(group, req.threshold);

    PayloadOut out;
    out.servedFrom = toRun.empty() ? "cache" : "sim";
    out.quarantined = false;
    for (const CachedRun &row : rows)
        out.quarantined = out.quarantined || row.result.quarantined;
    out.schema = "last-divergence-v2";
    std::ostringstream os;
    obs::writeDivergenceJsonArray(os, reports);
    out.bytes = os.str();
    return out;
}

/** Serve a stats query: one simulation with the export hook attached
 *  (the full stats tree exists only while the Runtime is alive, so
 *  stats always simulate — the warm ArtifactCache and the store
 *  side-effect are the reuse here). */
PayloadOut
doStats(const ServeRequest &req, const ServeOptions &opts,
        std::mutex &storeMu, std::map<double, sim::BenchCacheFile> &store,
        ServeCounters &counters, std::mutex &countersMu)
{
    (void)opts;
    const workloads::WorkloadScale ws = scaleOf(req);
    obs::ExportMeta meta;
    meta.workload = req.workload;
    meta.isa = isaName(req.isa);
    meta.scale = req.scale;
    meta.seed = req.seed;

    PayloadOut out;
    out.servedFrom = "sim";
    out.schema = "last-stats-v1";
    sim::AppResult result;
    try {
        result = sim::runApp(req.workload, req.isa, configOf(req), ws,
                             [&](runtime::Runtime &rt) {
                                 std::ostringstream os;
                                 obs::writeStatsJson(os, rt, meta);
                                 out.bytes = os.str();
                             });
    } catch (const SimError &e) {
        {
            std::lock_guard<std::mutex> g(countersMu);
            ++counters.simulatedSpecs;
            ++counters.quarantinedSpecs;
        }
        throw ServeFailure{"quarantine",
                           std::string(e.kindName()) + ": " +
                               e.message()};
    }
    {
        std::lock_guard<std::mutex> g(countersMu);
        ++counters.simulatedSpecs;
    }

    // A healthy stats run is also a valid bench row: keep it so a
    // later diverge on the same spec has this half for free.
    sim::RunSpec spec{req.workload, req.isa, GpuConfig{}, ws};
    sim::CachedRun row;
    row.key = sim::specCacheKey(spec);
    row.result = std::move(result);
    std::lock_guard<std::mutex> g(storeMu);
    sim::BenchCacheFile &file = store[req.scale];
    file.scale = req.scale;
    if (!file.find(row.key))
        file.rows.push_back(std::move(row));
    return out;
}

} // namespace

void
ServeCore::execute(Pending &p)
{
    PayloadOut out;
    bool failed = false;
    std::string errKind, errMsg;
    try {
        if (p.req.method == "diverge")
            out = doDiverge(p.req, opts_, storeMu_, store_, counters_,
                            mu_);
        else
            out = doStats(p.req, opts_, storeMu_, store_, counters_,
                          mu_);
    } catch (const ServeFailure &f) {
        failed = true;
        errKind = f.kind;
        errMsg = f.message;
    } catch (const SimError &e) {
        failed = true;
        errKind = "internal";
        errMsg = e.message();
    } catch (const std::exception &e) {
        failed = true;
        errKind = "internal";
        errMsg = e.what();
    }

    std::vector<Pending::Waiter> waiters;
    {
        std::lock_guard<std::mutex> g(mu_);
        waiters = std::move(p.waiters);
        inflight_.erase(p.key);
        if (failed)
            counters_.errors += waiters.size();
        else
            counters_.served += waiters.size();
    }
    for (const auto &w : waiters) {
        if (failed)
            w.respond(errorEnvelope(w.id, errKind, errMsg));
        else
            w.respond(payloadEnvelope(w.id, p.req.method,
                                      out.servedFrom, out.quarantined,
                                      out.schema, out.bytes));
    }
}

// --------------------------------------------------------------------
// Socket front-end
// --------------------------------------------------------------------

struct Server::Client
{
    net::LineConn conn;
    std::mutex writeMu;

    explicit Client(int fd) : conn(fd) {}
};

Server::Server(const ServeOptions &opts, const net::Endpoint &ep)
    : opts_(opts), endpoint_(ep), core_(opts)
{
}

Server::~Server()
{
    stop();
}

void
Server::start()
{
    core_.onShutdown([this] {
        // Runs on the worker that served the shutdown request: wake
        // the accept loop and anyone blocked in waitStopped(); the
        // heavyweight teardown happens in stop() on the owner thread.
        listener_.interrupt();
        stopCv_.notify_all();
    });
    listener_.listenOn(endpoint_);
    acceptThread_ = std::thread(&Server::acceptLoop, this);
}

void
Server::acceptLoop()
{
    while (!stopping_.load()) {
        int fd = listener_.acceptConn();
        if (fd < 0)
            break;
        auto client = std::make_shared<Client>(fd);
        std::lock_guard<std::mutex> g(clientsMu_);
        clients_.push_back(client);
        readers_.emplace_back(&Server::readerLoop, this, client);
    }
    {
        std::lock_guard<std::mutex> g(stopMu_);
        acceptDone_ = true;
    }
    stopCv_.notify_all();
}

void
Server::readerLoop(std::shared_ptr<Client> client)
{
    auto writeLine = [&](const std::string &line) {
        std::lock_guard<std::mutex> g(client->writeMu);
        client->conn.writeAll(line + "\n");
    };

    std::string line;
    while (true) {
        auto st = client->conn.readLine(line, opts_.maxLineBytes);
        if (st == net::LineConn::ReadStatus::Eof)
            break;
        if (st == net::LineConn::ReadStatus::Oversized) {
            writeLine(errorEnvelope(
                0, "oversized",
                "request line exceeds " +
                    std::to_string(opts_.maxLineBytes) + " bytes"));
            continue;
        }
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue; // blank keep-alive line
        ServeRequest req;
        try {
            req = parseServeRequest(line, "<request>");
        } catch (const SimError &e) {
            writeLine(errorEnvelope(0, "parse", e.message()));
            continue;
        }
        // The respond callback may fire on a worker thread long after
        // this loop moved on (or even exited): the shared_ptr keeps
        // the connection alive until the last response lands.
        core_.submit(req, [client](const std::string &resp) {
            std::lock_guard<std::mutex> g(client->writeMu);
            client->conn.writeAll(resp + "\n");
        });
    }
}

void
Server::waitStopped()
{
    std::unique_lock<std::mutex> l(stopMu_);
    stopCv_.wait(l, [&] {
        return stopped_ || acceptDone_ || core_.shutdownRequested() ||
               stopping_.load();
    });
}

void
Server::stop()
{
    {
        std::lock_guard<std::mutex> g(stopMu_);
        if (stopped_)
            return;
        stopping_.store(true);
    }
    listener_.interrupt();
    if (acceptThread_.joinable())
        acceptThread_.join();
    {
        std::lock_guard<std::mutex> g(clientsMu_);
        for (const auto &w : clients_)
            if (auto c = w.lock())
                c->conn.shutdownConn();
    }
    for (std::thread &t : readers_)
        if (t.joinable())
            t.join();
    listener_.closeAndUnlink();
    {
        std::lock_guard<std::mutex> g(stopMu_);
        stopped_ = true;
    }
    stopCv_.notify_all();
}

} // namespace last::serve
