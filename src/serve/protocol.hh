/**
 * @file
 * The `last-serve-v1` wire protocol: request parsing and response
 * envelope emission for the multi-tenant sweep server.
 *
 * Framing is one JSON value per line in both directions (SCHEMAS.md
 * has the field tables and worked examples). Three envelope shapes go
 * back to the client:
 *  - payload responses wrap an existing versioned artifact —
 *    `last-stats-v1` or `last-divergence-v1` — byte-for-byte as an
 *    escaped JSON string, so a client that unescapes `payload` and
 *    writes it to a file gets something `cmp`-identical to what the
 *    offline `last_obs` CLI would have produced. The server never
 *    invents a new result format; it only frames the existing ones.
 *  - result responses carry small server-native objects (ping,
 *    status counters, shutdown acks) inline;
 *  - error responses carry a machine-readable `error_kind` (parse /
 *    oversized / bad-request / overloaded / quarantine / shutdown /
 *    internal) plus a human-readable message.
 *
 * Request parsing reuses common/json_in.hh, so a malformed line fails
 * as ConfigError with the byte offset of the offence — the reader
 * loop turns that into a structured `parse` error response instead of
 * killing the connection (or the daemon).
 */

#ifndef LAST_SERVE_PROTOCOL_HH
#define LAST_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "obs/divergence.hh"

namespace last::serve
{

/** Envelope schema identifier (the `schema` field of every response). */
constexpr const char *ServeSchema = "last-serve-v1";

/** One parsed request line. Only `method` is mandatory; everything
 *  else defaults to the canonical bench configuration (scale 1, seed
 *  0, default knobs, Table 4 machine), mirroring the offline CLIs. */
struct ServeRequest
{
    uint64_t id = 0;      ///< echoed back verbatim in the response
    std::string method;   ///< ping | status | stats | diverge | shutdown
    std::string workload; ///< stats/diverge: workload name
    IsaKind isa = IsaKind::HSAIL;
    bool hasIsa = false;  ///< stats requires an `isa`; diverge runs both
    double scale = 1.0;
    uint64_t seed = 0;
    int ldsStrideWords = -1;
    int ldsPadWords = -1;
    double threshold = obs::DefaultDivergenceThreshold;
    /** Per-request wall-clock budget (0 = none). A simulation still
     *  ticking past it quarantines via the PR 7 deadline watchdog and
     *  the request degrades to a quarantine response — the per-request
     *  fault-isolation contract. */
    uint64_t timeoutMs = 0;
};

/**
 * Parse one request line. Unknown fields are ignored (forward
 * compatibility); a missing `method`, a non-object line, or any
 * type-mismatched field throws ConfigError naming `source` and the
 * byte offset.
 */
ServeRequest parseServeRequest(const std::string &line,
                               const std::string &source);

/** Payload response: wraps `payload` (an artifact of schema
 *  `payloadSchema`) verbatim. `servedFrom` is "sim" or "cache";
 *  `quarantined` flags a degraded (but still well-formed) payload. */
std::string payloadEnvelope(uint64_t id, const std::string &method,
                            const std::string &servedFrom,
                            bool quarantined,
                            const std::string &payloadSchema,
                            const std::string &payload);

/** Result response: `resultJson` must be a complete JSON value (the
 *  caller formats it; ping/status/shutdown use this). */
std::string resultEnvelope(uint64_t id, const std::string &method,
                           const std::string &resultJson);

/** Error response with a machine-readable kind. */
std::string errorEnvelope(uint64_t id, const std::string &kind,
                          const std::string &message);

} // namespace last::serve

#endif // LAST_SERVE_PROTOCOL_HH
