/**
 * @file
 * `last_serve` — simulation-as-a-service (DESIGN.md §4g).
 *
 * A long-lived daemon that answers stats and divergence queries over a
 * socket, sharing one warm process across every client instead of
 * forking a fresh simulator per query. Three layers of reuse stand
 * between an incoming request and an actual simulation:
 *
 *  1. **In-flight coalescing** — concurrent requests with the same
 *     (method, workload, isa, scale, seed, knob, threshold, timeout)
 *     key attach to the one execution already running; every waiter
 *     gets its own response envelope built from the shared payload.
 *  2. **Bench-row reuse** — completed results live in an in-memory
 *     bench-cache representation (sim/bench_cache.hh), per scale,
 *     optionally preloaded from a `last_bench_cache.csv`. A divergence
 *     query whose (workload, ISA, seed, knob-digest) rows are both
 *     present is answered through sim::divergenceFromCache without
 *     simulating anything — and because cache rows round-trip doubles
 *     exactly, the streamed `last-divergence-v1` payload is
 *     byte-identical to what the offline `last_obs diverge` run
 *     produces for the same spec.
 *  3. **Warm ArtifactCache** — when a simulation is unavoidable, the
 *     process-wide kernel-artifact cache (sim/artifact_cache.hh) still
 *     amortizes IL build + finalization across requests; the
 *     simulations themselves go through sim::runSweep, i.e. the PR 6
 *     work-stealing parallelInvoke pool.
 *
 * Traffic shaping and fault isolation:
 *  - **Admission control**: the pending-request queue is bounded;
 *    a request arriving at a full queue is refused immediately with a
 *    structured `overloaded` error (clients retry with backoff) rather
 *    than queued into unbounded latency.
 *  - **Quarantine degradation**: a simulation failure — including a
 *    per-request `timeout_ms` deadline hit — degrades that request to
 *    a quarantine response via the PR 2/7 runSweep machinery. It never
 *    kills the daemon, never poisons the store (quarantined rows are
 *    not retained, so a later retry re-simulates), and never blocks
 *    other requests.
 *
 * ServeCore is the transport-free heart (tests drive it directly and
 * deterministically with workers=0 + drainOne()); Server wraps it with
 * the accept/reader thread machinery from common/socket.hh.
 */

#ifndef LAST_SERVE_SERVER_HH
#define LAST_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/socket.hh"
#include "serve/protocol.hh"
#include "sim/bench_cache.hh"

namespace last::serve
{

struct ServeOptions
{
    /** Request-servicing threads. 0 = no threads: requests queue and
     *  tests drain them deterministically with drainOne(). */
    unsigned workers = 2;
    /** parallelInvoke pool size per request's runSweep (0 =
     *  sim::defaultJobs()). */
    unsigned simJobs = 0;
    /** Admission bound: pending (not yet executing) request keys. */
    size_t queueDepth = 64;
    /** Longest accepted request line, in bytes. */
    size_t maxLineBytes = 1 << 20;
    /** runSweep's retry-once-serially behavior for failed specs. */
    bool retryFailed = true;
};

/** Monotonic server counters; `status` serves a snapshot and the test
 *  suite uses them as the hit/coalesce/zero-simulation proofs. */
struct ServeCounters
{
    uint64_t received = 0;     ///< well-formed requests accepted
    uint64_t served = 0;       ///< payload/result responses sent
    uint64_t errors = 0;       ///< error responses sent (all kinds)
    uint64_t overloaded = 0;   ///< refused by admission control
    uint64_t coalesced = 0;    ///< attached to an in-flight twin
    uint64_t cacheRowHits = 0; ///< result halves served from the store
    uint64_t simulatedSpecs = 0;   ///< (workload, isa) sims actually run
    uint64_t quarantinedSpecs = 0; ///< sims that degraded to quarantine
};

/**
 * The transport-free request scheduler: parse-level inputs in,
 * single-line response envelopes out. Thread-safe; one instance per
 * daemon holds the result store and the worker pool.
 */
class ServeCore
{
  public:
    /** Response sink: called exactly once per submitted request with
     *  the envelope line (no trailing newline). May run on a worker
     *  thread; must not block for long or throw. */
    using Respond = std::function<void(const std::string &)>;

    explicit ServeCore(const ServeOptions &opts);
    ~ServeCore();
    ServeCore(const ServeCore &) = delete;
    ServeCore &operator=(const ServeCore &) = delete;

    /**
     * Submit one parsed request. ping/status/shutdown answer inline;
     * stats/diverge either coalesce onto an in-flight twin, enter the
     * bounded queue, or are refused `overloaded`. Invalid requests
     * (unknown method/workload, stats without an isa) answer inline
     * with `bad-request`.
     */
    void submit(const ServeRequest &req, Respond respond);

    /** Execute one queued request inline (test mode / workers == 0).
     *  @return false when the queue was empty. */
    bool drainOne();

    /** Merge rows into the result store (server warm start). Rows keep
     *  their file's scale; quarantined rows are dropped — they must
     *  re-simulate, never satisfy reuse. @return rows retained. */
    size_t preload(const sim::BenchCacheFile &cache);

    ServeCounters counters() const;
    size_t storeRows() const;
    size_t pendingRequests() const;

    /** A `shutdown` request was served (the daemon should stop
     *  accepting). Later submissions answer with kind `shutdown`. */
    bool shutdownRequested() const { return shutdown_.load(); }

    /** Hook invoked once when a shutdown request is served (Server
     *  uses it to interrupt the accept loop). */
    void onShutdown(std::function<void()> hook);

  private:
    struct Pending;

    void workerLoop();
    void execute(Pending &p);
    std::string statusJson() const;

    ServeOptions opts_;
    mutable std::mutex mu_; ///< queue, inflight map, counters
    std::condition_variable cv_;
    std::deque<std::shared_ptr<Pending>> queue_;
    std::unordered_map<std::string, std::shared_ptr<Pending>> inflight_;
    ServeCounters counters_;

    mutable std::mutex storeMu_;
    /** Result store, one bench-cache representation per scale (the
     *  row key is scale-free; scale is file-level, see bench_cache.hh). */
    std::map<double, sim::BenchCacheFile> store_;

    std::atomic<bool> stopping_{false};
    std::atomic<bool> shutdown_{false};
    std::function<void()> shutdownHook_;
    std::vector<std::thread> workers_;
};

/** Socket front-end: accept loop + one reader thread per connection,
 *  all requests funneled into a ServeCore. */
class Server
{
  public:
    Server(const ServeOptions &opts, const net::Endpoint &ep);
    ~Server();
    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen, and start the accept thread.
     *  @throws ConfigError on bind/listen failure. */
    void start();

    /** Block until a shutdown request (or stop()) lands. */
    void waitStopped();

    /** Stop accepting, unblock every connection, join all threads.
     *  Idempotent; the destructor calls it too. */
    void stop();

    /** Async-signal-safe stop trigger: one shutdown(2) on the listen
     *  fd. The accept loop exits, waitStopped() wakes, and the owner
     *  thread runs the real stop(). For SIGINT/SIGTERM handlers. */
    void interruptAccept() { listener_.interrupt(); }

    ServeCore &core() { return core_; }

    /** Resolved TCP port (after start(); meaningful for port 0). */
    uint16_t boundPort() const { return listener_.boundPort(); }

  private:
    struct Client;

    void acceptLoop();
    void readerLoop(std::shared_ptr<Client> client);

    ServeOptions opts_;
    net::Endpoint endpoint_;
    ServeCore core_;
    net::ListenSocket listener_;
    std::thread acceptThread_;

    std::mutex clientsMu_;
    std::vector<std::weak_ptr<Client>> clients_;
    std::vector<std::thread> readers_;

    std::mutex stopMu_;
    std::condition_variable stopCv_;
    bool stopped_ = false;
    bool acceptDone_ = false; ///< the accept loop has exited
    std::atomic<bool> stopping_{false};
};

} // namespace last::serve

#endif // LAST_SERVE_SERVER_HH
