#include "runtime/runtime.hh"

#include "common/logging.hh"
#include "finalizer/abi.hh"

namespace last::runtime
{

Runtime::Runtime(const GpuConfig &cfg_)
    : stats::Group("sim"),
      instFootprint(this, "instFootprint",
                    "loaded kernel code bytes (Figure 8)"),
      dispatches(this, "dispatches", "kernel dispatches"),
      scratchArenaBytes(this, "scratchArenaBytes",
                        "bytes of scratch arenas allocated"),
      cfg(cfg_), cp(memory)
{
    gpuModel = std::make_unique<gpu::Gpu>(cfg, memory, this);
    dynInstsStatIdx = gpuModel->cuStatIndex("dynInsts");
    if (obs::tracePointsCompiled() && cfg.trace)
        trace = cfg.trace->makeStream("runtime", obs::TidRuntime);
}

Addr
Runtime::allocGlobal(uint64_t bytes, uint64_t align)
{
    globalBrk = (globalBrk + align - 1) / align * align;
    Addr a = globalBrk;
    globalBrk += bytes;
    return a;
}

void
Runtime::writeGlobal(Addr addr, const void *src, size_t len)
{
    memory.write(addr, src, len);
}

void
Runtime::readGlobal(Addr addr, void *dst, size_t len)
{
    memory.read(addr, dst, len);
}

void
Runtime::loadKernel(const arch::KernelCode &code)
{
    if (loaded.count(&code))
        return;
    fatal_if(!code.sealed(), "kernel %s dispatched before sealing",
             code.name().c_str());
    codeBrk = (codeBrk + 255) / 256 * 256;
    code.setCodeBase(codeBrk);
    codeBrk += code.codeBytes();
    instFootprint += double(code.codeBytes());
    loaded.insert(&code);
}

Addr
Runtime::allocScratchArenas(const arch::KernelCode &code,
                            cu::KernelLaunch &launch,
                            unsigned grid_size)
{
    if (code.isa() == IsaKind::GCN3) {
        // Per-process allocation: the runtime reuses one arena across
        // launches, growing it only when a dispatch needs more.
        uint64_t stride = code.privateBytesPerWi;
        uint64_t need = stride * grid_size;
        if (need > 0 && need > processScratchBytes) {
            processScratch = allocGlobal(need, 4096);
            processScratchBytes = need;
            scratchArenaBytes += double(need);
        }
        launch.scratchBase = processScratch;
        launch.scratchStridePerWi = stride;
        return processScratch;
    }

    // HSAIL and PTXL: fresh private/spill arenas on every dynamic
    // launch (the emulated HSAIL ABI and PTXL's driver-managed
    // local-memory windows both keep the segments separate; LDL/STL
    // index them per thread in hardware).
    if (code.privateBytesPerWi > 0) {
        uint64_t bytes = code.privateBytesPerWi * grid_size;
        launch.privateBase = allocGlobal(bytes, 4096);
        launch.privateStridePerWi = code.privateBytesPerWi;
        scratchArenaBytes += double(bytes);
    }
    if (code.spillBytesPerWi > 0) {
        uint64_t bytes = code.spillBytesPerWi * grid_size;
        launch.spillBase = allocGlobal(bytes, 4096);
        launch.spillStridePerWi = code.spillBytesPerWi;
        scratchArenaBytes += double(bytes);
    }
    return 0;
}

void
Runtime::setupLaunch(const arch::KernelCode &code, unsigned grid_size,
                     unsigned wg_size, const void *args,
                     size_t arg_bytes, cu::KernelLaunch &launch)
{
    fatal_if(wg_size == 0 || grid_size == 0, "empty dispatch");
    fatal_if(wg_size % WavefrontSize != 0,
             "workgroup size must be a wavefront multiple");
    loadKernel(code);
    ++dispatches;

    // Kernarg buffer.
    Addr kernarg = 0;
    if (arg_bytes > 0) {
        kernarg = allocGlobal(std::max<uint64_t>(arg_bytes, 8));
        memory.write(kernarg, args, arg_bytes);
    }

    // Dispatch packet.
    Addr pkt = allocGlobal(abi::PktBytes, 64);
    cp.writePacket(pkt, wg_size, grid_size, kernarg);

    launch.code = &code;
    cp.readPacket(pkt, launch);
    allocScratchArenas(code, launch, grid_size);
}

Cycle
Runtime::dispatch(const arch::KernelCode &code, unsigned grid_size,
                  unsigned wg_size, const void *args, size_t arg_bytes)
{
    cu::KernelLaunch launch;
    setupLaunch(code, grid_size, wg_size, args, arg_bytes, launch);

    uint64_t insts_before =
        uint64_t(gpuModel->sumCuStat(dynInstsStatIdx));
    Cycle launched = gpuModel->eventQueue().now();
    gpuModel->launch(launch);
    Cycle cycles = gpuModel->runToCompletion();
    uint64_t insts_after =
        uint64_t(gpuModel->sumCuStat(dynInstsStatIdx));

    if (obs::tracePointsCompiled() && trace)
        trace->emit(obs::TraceKind::KernelDispatch, launched, cycles,
                    trace->intern(code.name()));

    records.push_back(
        {code.name(), cycles, insts_after - insts_before});
    return cycles;
}

void
Runtime::dispatchAsync(const arch::KernelCode &code, unsigned grid_size,
                       unsigned wg_size, const void *args,
                       size_t arg_bytes)
{
    auto launch = std::make_unique<cu::KernelLaunch>();
    setupLaunch(code, grid_size, wg_size, args, arg_bytes, *launch);
    gpuModel->launch(*launch);
    inFlight.push_back(std::move(launch));
}

Cycle
Runtime::sync()
{
    if (inFlight.empty())
        return 0;
    Cycle cycles = gpuModel->runToCompletion();
    // Records land in dispatch order (not completion order) so the
    // per-kernel sequence stays deterministic and cross-ISA
    // comparable; spans come from the launch's own start/end cycles.
    for (const auto &l : inFlight) {
        if (obs::tracePointsCompiled() && trace)
            trace->emit(obs::TraceKind::KernelDispatch, l->startCycle,
                        l->endCycle - l->startCycle,
                        trace->intern(l->code->name()));
        records.push_back({l->code->name(),
                           l->endCycle - l->startCycle, l->instsIssued});
    }
    inFlight.clear();
    return cycles;
}

} // namespace last::runtime
