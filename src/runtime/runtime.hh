/**
 * @file
 * A ROCm-flavoured user-level runtime: memory allocation, kernel
 * loading, dispatch, and segment management.
 *
 * The segment manager implements the paper's Table 6 asymmetry:
 *  - GCN3: one per-process scratch arena, reused across kernel
 *    launches (the real runtime allocates segment memory per process);
 *  - HSAIL: the emulated ABI allocates NEW private/spill arenas on
 *    every dynamic kernel launch, inflating the data footprint.
 */

#ifndef LAST_RUNTIME_RUNTIME_HH
#define LAST_RUNTIME_RUNTIME_HH

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "arch/kernel_code.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "gpu/command_processor.hh"
#include "gpu/gpu.hh"
#include "memory/functional_memory.hh"

namespace last::runtime
{

/** Per-dispatch record (drives the Table 7 per-kernel comparison). */
struct LaunchRecord
{
    std::string kernel;
    Cycle cycles;
    uint64_t instsIssued;
};

class Runtime : public stats::Group
{
  public:
    explicit Runtime(const GpuConfig &cfg = GpuConfig{});

    /** @{ Device memory management (bump allocator). */
    Addr allocGlobal(uint64_t bytes, uint64_t align = 64);
    void writeGlobal(Addr addr, const void *src, size_t len);
    void readGlobal(Addr addr, void *dst, size_t len);

    template <typename T>
    void
    writeGlobal(Addr addr, const T &v)
    {
        memory.write(addr, &v, sizeof(T));
    }

    template <typename T>
    T
    readGlobal(Addr addr)
    {
        T v;
        memory.read(addr, &v, sizeof(T));
        return v;
    }
    /** @} */

    /** Load a kernel code object (assigns its fetch address and
     *  charges its instruction footprint). Idempotent. Takes a const
     *  ref: kernel artifacts may be shared immutably across runs —
     *  the load address publish is write-once (KernelCode). */
    void loadKernel(const arch::KernelCode &code);

    /**
     * Synchronously dispatch a kernel: writes the kernarg buffer and
     * AQL packet, sets up segment arenas per the ISA's ABI rules, and
     * runs the GPU to completion.
     */
    Cycle dispatch(const arch::KernelCode &code, unsigned grid_size,
                   unsigned wg_size, const void *args,
                   size_t arg_bytes);

    /**
     * Begin an asynchronous dispatch: identical setup to dispatch()
     * (kernarg buffer, AQL packet, arenas) and enqueue on the GPU, but
     * return without running — the caller overlaps further
     * dispatchAsync() calls and then sync()s. Kernels in flight
     * together must be data-independent: the dispatcher interleaves
     * their workgroups and the model provides no cross-kernel ordering.
     */
    void dispatchAsync(const arch::KernelCode &code, unsigned grid_size,
                       unsigned wg_size, const void *args,
                       size_t arg_bytes);

    /**
     * Run the GPU until every dispatch in flight completes; appends
     * one LaunchRecord per dispatch (in dispatch order, with
     * per-launch cycle spans and instruction counts) and returns the
     * cycles this sync spanned (0 when nothing was in flight).
     */
    Cycle sync();

    /** @{ Whole-process observables. */
    uint64_t dataFootprintBytes() const
    {
        return memory.footprintBytes();
    }
    uint64_t instFootprintBytes() const
    {
        return uint64_t(instFootprint.value());
    }
    const std::vector<LaunchRecord> &launchRecords() const
    {
        return records;
    }
    /** @} */

    mem::FunctionalMemory &mem() { return memory; }
    gpu::Gpu &gpu() { return *gpuModel; }
    const GpuConfig &config() const { return cfg; }

    stats::Scalar instFootprint;
    stats::Scalar dispatches;
    stats::Scalar scratchArenaBytes;

  private:
    Addr allocScratchArenas(const arch::KernelCode &code,
                            cu::KernelLaunch &launch,
                            unsigned grid_size);

    /** Shared dispatch setup: kernarg buffer, AQL packet, arenas. */
    void setupLaunch(const arch::KernelCode &code, unsigned grid_size,
                     unsigned wg_size, const void *args,
                     size_t arg_bytes, cu::KernelLaunch &launch);

    GpuConfig cfg;
    mem::FunctionalMemory memory;
    std::unique_ptr<gpu::Gpu> gpuModel;
    gpu::CommandProcessor cp;

    Addr globalBrk = 0x10000;        ///< global data region
    Addr codeBrk = 0x7f0000000000;   ///< code objects live high
    std::set<const arch::KernelCode *> loaded;

    /** GCN3 per-process scratch arena. */
    Addr processScratch = 0;
    uint64_t processScratchBytes = 0;

    /** Resolved once at construction: dispatch() brackets every launch
     *  with a dynInsts sum and must not pay a per-CU string lookup
     *  each time. */
    int dynInstsStatIdx = -1;

    /** Dispatch-span trace stream (nullptr = tracing off). */
    obs::TraceStream *trace = nullptr;

    /** Launches started by dispatchAsync and not yet sync()ed. Heap
     *  allocated: the GPU holds KernelLaunch pointers until each
     *  completes. */
    std::vector<std::unique_ptr<cu::KernelLaunch>> inFlight;

    std::vector<LaunchRecord> records;
};

} // namespace last::runtime

#endif // LAST_RUNTIME_RUNTIME_HH
