/**
 * @file
 * Execute-path probe fast paths.
 *
 * Every dynamic vector instruction pays for the paper's statistic
 * probes (lane-value uniqueness, reuse distance, coalescing), so these
 * helpers are written for speed — but they are *exact*: each one
 * produces bit-identical statistics to the obvious sort-based
 * reference implementation (tests/test_properties.cc asserts this over
 * randomized masks, widths, and lane values).
 */

#ifndef LAST_CU_PROBES_HH
#define LAST_CU_PROBES_HH

#include <cstdint>

#include "common/bitfield.hh"
#include "common/types.hh"

namespace last::cu
{

/**
 * Exact lane-value uniqueness counter: an open-addressed scratch hash
 * sized for one wavefront (64 lanes in 128 slots, load factor <= 1/2).
 *
 * Counting distinct values needs no ordering, so the old per-operand
 * 64-lane copy + std::sort + std::unique is replaced by one linear
 * insert pass. Slots are invalidated by generation stamp instead of
 * clearing, so a probe costs only the lanes it actually visits; lanes
 * are visited via count-trailing-zeros over the exec mask, never by
 * testing all 64 bits.
 */
class LaneUniqCounter
{
  public:
    /** Distinct 32-bit values among the masked lanes of `lanes`
     *  (exactly what sort+unique over the masked values returns).
     *  mask == 0 returns 0. */
    unsigned
    count(const uint32_t *lanes, uint64_t mask)
    {
        // Fast paths for the two row shapes that dominate real
        // kernels: broadcast rows (uniform scalars and immediates,
        // exactly 1 distinct value) and strictly ascending rows
        // (thread ids, induction-derived addresses, all distinct).
        // One linear pass classifies the row and bails as soon as it
        // is neither; mixed rows fall through to the exact hash.
        if (mask == ~0ull) {
            // Full-mask rows take a branch-free contiguous scan the
            // compiler can vectorize; mixed rows cost one wasted pass
            // before the hash, which the hash itself dwarfs.
            uint32_t v0 = lanes[0];
            bool all_eq = true, ascending = true;
            for (unsigned l = 1; l < 64; ++l) {
                all_eq &= lanes[l] == v0;
                ascending &= lanes[l] > lanes[l - 1];
            }
            if (all_eq)
                return 1;
            if (ascending)
                return 64;
        } else if (mask) {
            unsigned first = findLsb(mask);
            uint32_t v0 = lanes[first];
            uint32_t prev = v0;
            bool all_eq = true, ascending = true;
            for (uint64_t m = mask & (mask - 1); m; m &= m - 1) {
                uint32_t v = lanes[findLsb(m)];
                all_eq = all_eq && v == v0;
                ascending = ascending && v > prev;
                prev = v;
                if (!all_eq && !ascending)
                    break;
            }
            if (all_eq)
                return 1;
            if (ascending)
                return popCount(mask);
        }
        ++gen;
        unsigned uniq = 0;
        for (uint64_t m = mask; m; m &= m - 1) {
            uint32_t v = lanes[findLsb(m)];
            // Fibonacci hashing spreads the common small-integer and
            // stride patterns; linear probing resolves collisions.
            unsigned h = (v * 0x9e3779b9u) >> (32 - SlotBits);
            while (true) {
                if (stamp[h] != gen) {
                    stamp[h] = gen;
                    val[h] = v;
                    ++uniq;
                    break;
                }
                if (val[h] == v)
                    break;
                h = (h + 1) & (Slots - 1);
            }
        }
        return uniq;
    }

  private:
    static constexpr unsigned SlotBits = 7;
    static constexpr unsigned Slots = 1u << SlotBits; // 2x wavefront
    uint32_t val[Slots] = {};
    uint64_t stamp[Slots] = {}; // 0 = never used (gen starts at 1)
    uint64_t gen = 0;
};

/**
 * Insert `line` into the ascending-sorted, duplicate-free prefix
 * [lines, lines + n) and return the new element count (n when the line
 * was already present).
 *
 * One bounded insertion pass per lane replaces the
 * std::sort + std::unique over the full candidate array; the resulting
 * array is identical (sorted ascending, deduplicated), so the line
 * requests issue in the same order with the same timing. Coalesced
 * lane addresses are almost always already ascending, making the
 * backward scan O(1) per insert in practice.
 */
inline unsigned
insertLineSorted(Addr *lines, unsigned n, Addr line)
{
    unsigned i = n;
    while (i > 0 && lines[i - 1] > line)
        --i;
    if (i > 0 && lines[i - 1] == line)
        return n;
    for (unsigned j = n; j > i; --j)
        lines[j] = lines[j - 1];
    lines[i] = line;
    return n + 1;
}

} // namespace last::cu

#endif // LAST_CU_PROBES_HH
