/**
 * @file
 * Timing wrapper around the architectural wavefront state: instruction
 * buffer, per-register ready times (the scoreboard for HSAIL, a hazard
 * probe for GCN3), and per-WF statistics probes.
 */

#ifndef LAST_CU_WAVEFRONT_HH
#define LAST_CU_WAVEFRONT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/kernel_code.hh"
#include "arch/wf_state.hh"
#include "common/types.hh"

namespace last::cu
{

struct WgInstance;

class Wavefront
{
  public:
    Wavefront(unsigned slot, unsigned simd) : slot(slot), simd(simd) {}

    /**
     * Oldest-first issue order with an explicit deterministic
     * tie-break: primary key dispatchSeq, secondary key slot index.
     * dispatchSeq is unique per CU today, but spelling the tie-break
     * out keeps the arbitration bit-stable across standard-library
     * sort implementations if that ever changes — libstdc++ and
     * libc++ order equal keys differently under std::sort.
     */
    static bool
    olderThan(const Wavefront &a, const Wavefront &b)
    {
        if (a.dispatchSeq != b.dispatchSeq)
            return a.dispatchSeq < b.dispatchSeq;
        return a.slot < b.slot;
    }

    /** Architectural state (registers, pc, RS, waitcnt counters). */
    arch::WfState st;

    /** Predecoded metadata for st.code's instructions, indexed like
     *  code->inst(): metas[pcIdx] is the issue stage's whole view of
     *  the next instruction (handler, flags, operands, latency class).
     *  Cached raw out of KernelCode::execMetas() on attach; the vector
     *  is immutable once built, so the pointer stays valid for the
     *  kernel's lifetime in the artifact cache. */
    const arch::ExecMeta *metas = nullptr;

    unsigned slot;          ///< WF slot within the CU
    unsigned simd;          ///< SIMD engine this WF issues to
    uint64_t dispatchSeq = 0; ///< for oldest-first arbitration
    WgInstance *wg = nullptr;

    /** @{ Intrusive age-ordered list linkage (owned by the CU): live
     * wavefronts, oldest first by olderThan(). Linked on dispatch,
     * unlinked on retirement — the issue stage walks this instead of
     * allocating and sorting a fresh vector every tick. */
    Wavefront *agePrev = nullptr;
    Wavefront *ageNext = nullptr;
    /** @} */

    /** @{ Instruction buffer model. The IB holds decoded instructions
     * fetched sequentially; a discontinuous PC costs a flush and a
     * refetch. The IB always contains instructions
     * [pcIdx, pcIdx + ibCount). */
    size_t pcIdx = 0;       ///< index of the next instruction to issue
    unsigned ibCount = 0;
    size_t ibNextIdx = 0;   ///< next instruction index to fetch
    Addr ibNextFetch = 0;   ///< its byte offset
    bool fetchInFlight = false;
    /** @} */

    /** Bumped on every (re)attach so stale completion events become
     *  no-ops. */
    uint64_t gen = 0;

    /** Issue blocked until this cycle (GCN3 s_nop wait states). */
    Cycle blockedUntil = 0;

    /** Tracing only (obs/trace.hh): first cycle of the current
     *  dependency stall, so the whole stall is emitted as one span
     *  when the WF finally issues. InvalidCycle = not stalled. Never
     *  read by timing or statistics. */
    Cycle stallSince = InvalidCycle;
    /** Tracing only: stall flavour (0 scoreboard, 1 waitcnt). */
    uint8_t stallKind = 0;

    /** Per-register ready cycle: the HSAIL scoreboard blocks issue
     *  until operands are ready; GCN3 only *checks* (hazard probe) —
     *  hardware relies on the finalizer's waitcnt/nops. */
    std::vector<Cycle> vregReady;
    std::vector<Cycle> sregReady;

    /** Reuse-distance probe state: dynamic-instruction index of the
     *  last access to each architectural vector register. */
    std::vector<uint64_t> lastVregTouch;
    uint64_t dynInstCount = 0;

    bool active = false; ///< slot occupied

    /** Fault injection: a wedged wavefront never issues again (models
     *  a barrier mismatch or a lost waitcnt release); the GPU's
     *  forward-progress watchdog must detect and report it. */
    bool wedged = false;

    bool
    runnable() const
    {
        return active && !st.done && !st.atBarrier && !wedged;
    }

    void
    attach(const arch::KernelCode *code, unsigned nvregs)
    {
        st.code = code;
        metas = code->execMetas().data();
        st.vregs.assign(nvregs, arch::LaneVec{});
        vregReady.assign(nvregs, 0);
        sregReady.assign(128, 0);
        lastVregTouch.assign(nvregs, UINT64_MAX);
        dynInstCount = 0;
        pcIdx = 0;
        ibCount = 0;
        ibNextIdx = 0;
        ibNextFetch = 0;
        fetchInFlight = false;
        blockedUntil = 0;
        stallSince = InvalidCycle;
        stallKind = 0;
        wedged = false;
        ++gen;
        active = true;
    }
};

} // namespace last::cu

#endif // LAST_CU_WAVEFRONT_HH
