#include "cu/compute_unit.hh"

#include <algorithm>
#include <cassert>

#include "arch/exec_meta.hh"
#include "common/bitfield.hh"
#include "common/logging.hh"
#include "finalizer/abi.hh"

namespace last::cu
{

namespace
{

/** Issue-class nibble for InstIssue trace events (computed only when
 *  tracing; mirrors the Figure 5 classification switch below). */
obs::InstClass
traceClassOf(const arch::ExecMeta &m)
{
    if (m.is(arch::IsWaitcnt))
        return obs::InstClass::Waitcnt;
    switch (m.fu) {
      case arch::FuType::VAlu: return obs::InstClass::VAlu;
      case arch::FuType::SAlu: return obs::InstClass::SAlu;
      case arch::FuType::VMem: return obs::InstClass::VMem;
      case arch::FuType::SMem: return obs::InstClass::SMem;
      case arch::FuType::Lds: return obs::InstClass::Lds;
      case arch::FuType::Branch: return obs::InstClass::Branch;
      case arch::FuType::Special: return obs::InstClass::Misc;
    }
    return obs::InstClass::Misc;
}

} // namespace

ComputeUnit::ComputeUnit(const std::string &name, const GpuConfig &cfg,
                         EventQueue &eq, mem::MemLevel *l1d,
                         mem::MemLevel *l1i, mem::MemLevel *scalar_d,
                         mem::FunctionalMemory *memory,
                         stats::Group *parent)
    : stats::Group(name, parent),
      dynInsts(this, "dynInsts", "instructions issued"),
      valuInsts(this, "valuInsts", "vector ALU instructions"),
      saluInsts(this, "saluInsts", "scalar ALU instructions"),
      vmemInsts(this, "vmemInsts", "vector memory instructions"),
      smemInsts(this, "smemInsts", "scalar memory instructions"),
      ldsInsts(this, "ldsInsts", "LDS instructions"),
      branchInsts(this, "branchInsts", "branch instructions"),
      waitcntInsts(this, "waitcntInsts", "s_waitcnt instructions"),
      miscInsts(this, "miscInsts", "nop/barrier/endpgm instructions"),
      busyCycles(this, "busyCycles", "cycles with resident work"),
      vrfBankConflicts(this, "vrfBankConflicts",
                       "VRF port conflicts (Figure 6)"),
      vregReuseDist(this, "vregReuseDist",
                    "vector register reuse distance (Figure 7)"),
      ibFlushes(this, "ibFlushes",
                "instruction buffer flushes (Figure 9)"),
      rsDepth(this, "rsDepth",
              "reconvergence-stack depth at each push (HSAIL)"),
      vrfReadUniq(this, "vrfReadUniq",
                  "VRF read lane-value uniqueness (Figure 10)"),
      vrfWriteUniq(this, "vrfWriteUniq",
                   "VRF write lane-value uniqueness (Figure 10)"),
      valuUtilization(this, "valuUtilization",
                      "SIMD lane utilization (Table 6)"),
      scoreboardStalls(this, "scoreboardStalls",
                       "issue stalls from the HSAIL scoreboard"),
      waitcntStalls(this, "waitcntStalls",
                    "issue stalls at GCN3 s_waitcnt"),
      fuConflictStalls(this, "fuConflictStalls",
                       "issue stalls from busy functional units"),
      ibEmptyStalls(this, "ibEmptyStalls",
                    "issue stalls from an empty instruction buffer"),
      hazardViolations(this, "hazardViolations",
                       "GCN3 reads of unready registers (must be 0)"),
      coalescedLines(this, "coalescedLines",
                     "cache-line requests after coalescing"),
      vmemWfAccesses(this, "vmemWfAccesses",
                     "wavefront-level vector memory accesses"),
      cfg(cfg), eq(eq), l1d(l1d), l1i(l1i), scalarD(scalar_d),
      memory(memory), fuBusyUntil(NumFu, 0)
{
    for (unsigned s = 0; s < cfg.wfSlotsPerCu; ++s)
        slots.push_back(
            std::make_unique<Wavefront>(s, s % cfg.simdPerCu));
    issueOrder.reserve(slots.size());
    vrfBankUse.assign(cfg.simdPerCu, {});
    vrfBankUseCycle.assign(cfg.simdPerCu, InvalidCycle);
}

void
ComputeUnit::ageListLink(Wavefront &wf)
{
    // dispatchSeq is assigned monotonically, so the new wavefront is
    // always the youngest: append at the tail and the list stays
    // sorted by Wavefront::olderThan without any search.
    assert(!ageTail || Wavefront::olderThan(*ageTail, wf));
    if (wf.slot < 64)
        liveSlotMask |= 1ull << wf.slot;
    wf.agePrev = ageTail;
    wf.ageNext = nullptr;
    if (ageTail)
        ageTail->ageNext = &wf;
    else
        ageHead = &wf;
    ageTail = &wf;
}

void
ComputeUnit::ageListUnlink(Wavefront &wf)
{
    if (wf.slot < 64)
        liveSlotMask &= ~(1ull << wf.slot);
    if (wf.agePrev)
        wf.agePrev->ageNext = wf.ageNext;
    else
        ageHead = wf.ageNext;
    if (wf.ageNext)
        wf.ageNext->agePrev = wf.agePrev;
    else
        ageTail = wf.agePrev;
    wf.agePrev = wf.ageNext = nullptr;
}

unsigned
ComputeUnit::chargeBankConflicts(const Wavefront &wf,
                                 const arch::ExecMeta &m, Cycle now)
{
    if (vrfBankUseCycle[wf.simd] != now) {
        vrfBankUse[wf.simd].fill(0);
        vrfBankUseCycle[wf.simd] = now;
    }
    auto &use = vrfBankUse[wf.simd];
    unsigned conflicts = 0;
    for (unsigned i = 0; i < m.numOps; ++i) {
        const auto &op = m.ops[i];
        if (op.cls != arch::RegClass::Vector)
            continue;
        for (unsigned w = 0; w < op.width; ++w) {
            unsigned bank = (op.idx + w) % cfg.vrfBanks;
            if (use[bank]++)
                ++conflicts;
        }
    }
    vrfBankConflicts += conflicts;
    return conflicts;
}

bool
ComputeUnit::canAccept(const WorkgroupTask &task) const
{
    const auto &code = *task.launch->code;
    unsigned wg_size = task.launch->wgSize;
    unsigned wf_per_wg = (wg_size + WavefrontSize - 1) / WavefrontSize;

    unsigned free_slots = 0;
    for (const auto &wf : slots)
        if (!wf->active)
            ++free_slots;
    if (free_slots < wf_per_wg)
        return false;

    if (vrfUsed + code.vregsUsed * wf_per_wg > cfg.vrfEntriesPerCu)
        return false;
    if (code.isa() == IsaKind::GCN3 &&
        srfUsed + code.sregsUsed * wf_per_wg > cfg.srfEntriesPerCu)
        return false;
    if (ldsUsed + code.ldsBytesPerWg > cfg.ldsBytesPerCu)
        return false;
    return true;
}

void
ComputeUnit::accept(const WorkgroupTask &task)
{
    panic_if(!canAccept(task), "accept() without canAccept()");
    KernelLaunch &launch = *task.launch;
    const auto &code = *launch.code;
    unsigned wg_size = launch.wgSize;
    unsigned wg_first_wi = task.wgId * wg_size;
    unsigned wi_in_wg =
        std::min(wg_size, launch.gridSize - wg_first_wi);
    unsigned wf_per_wg = (wi_in_wg + WavefrontSize - 1) / WavefrontSize;

    auto wg = std::make_unique<WgInstance>();
    wg->launch = &launch;
    wg->wgId = task.wgId;
    wg->wfTotal = wf_per_wg;
    wg->lds = std::make_unique<mem::LdsBlock>(code.ldsBytesPerWg);
    wg->vregsReserved = code.vregsUsed * wf_per_wg;
    wg->sregsReserved =
        code.isa() == IsaKind::GCN3 ? code.sregsUsed * wf_per_wg : 0;
    wg->ldsReserved = code.ldsBytesPerWg;
    vrfUsed += wg->vregsReserved;
    srfUsed += wg->sregsReserved;
    ldsUsed += wg->ldsReserved;

    for (unsigned w = 0; w < wf_per_wg; ++w) {
        Wavefront *wf = nullptr;
        for (auto &cand : slots) {
            if (!cand->active) {
                wf = cand.get();
                break;
            }
        }
        panic_if(!wf, "no free WF slot after canAccept()");

        arch::WfState &st = wf->st;
        st.isa = code.isa();
        st.wgId = task.wgId;
        st.wgSize = wg_size;
        st.gridSize = launch.gridSize;
        st.wfIdInWg = w;
        st.firstWorkitem = wg_first_wi + w * WavefrontSize;
        st.memory = memory;
        st.lds = wg->lds.get();
        st.aqlPacketAddr = launch.aqlPacketAddr;
        st.kernargBase = launch.kernargBase;
        st.privateBase = launch.privateBase;
        st.spillBase = launch.spillBase;
        st.privateStridePerWi = launch.privateStridePerWi;
        st.spillStridePerWi = launch.spillStridePerWi;
        st.sgprs.fill(0);
        st.vcc = 0;
        st.scc = false;

        unsigned lanes =
            std::min<unsigned>(WavefrontSize,
                               wi_in_wg - w * WavefrontSize);
        uint64_t mask =
            lanes >= 64 ? ~0ull : ((1ull << lanes) - 1);

        wf->attach(&code, code.vregsUsed);
        st.initLaunch(mask);

        if (code.isa() == IsaKind::GCN3) {
            // Command-processor ABI initialization: the register
            // state the finalized code expects (the IL path has no
            // equivalent — its ABI lives in simulator state above).
            st.writeSgpr64(abi::ScratchBaseLo, launch.scratchBase);
            st.writeSgpr(abi::ScratchStride,
                         uint32_t(launch.scratchStridePerWi));
            st.writeSgpr64(abi::AqlPtrLo, launch.aqlPacketAddr);
            st.writeSgpr64(abi::KernargLo, launch.kernargBase);
            st.writeSgpr(abi::WorkgroupId, task.wgId);
            for (unsigned lane = 0; lane < WavefrontSize; ++lane)
                st.vregs[abi::WorkitemIdVgpr][lane] =
                    w * WavefrontSize + lane;
        }

        wf->wg = wg.get();
        wf->dispatchSeq = nextDispatchSeq++;
        ageListLink(*wf);
        ++activeWfs;
        if (tracing())
            trace->emit(obs::TraceKind::WfStart, eq.now(), 0, wf->slot,
                        task.wgId);
    }

    launch.wgsDispatched++;
    workgroups.push_back(std::move(wg));
}

void
ComputeUnit::tick()
{
    progressLastTick = false;
    if (activeWfs == 0)
        return;
    Cycle now = eq.now();
    ++busyCycles;
    fetchStage(now);
    issueStage(now);
}

Cycle
ComputeUnit::nextProgressCycle(Cycle now) const
{
    if (activeWfs == 0)
        return InvalidCycle;
    Cycle t = InvalidCycle;
    for (const auto &wfp : slots) {
        const Wavefront &wf = *wfp;
        if (!wf.active || wf.st.done)
            continue;
        const auto *code = wf.st.code;
        // A wavefront that could start a fetch progresses immediately
        // (mirrors the fetchStage eligibility conditions).
        if (!wf.fetchInFlight && wf.ibNextIdx < code->numInsts() &&
            wf.ibCount + cfg.fetchWidth <= cfg.ibEntries)
            return now;
        if (!wf.runnable() || wf.ibCount == 0)
            continue; // barrier release / fetch fill: event driven
        const arch::ExecMeta &m = wf.metas[wf.pcIdx];
        Cycle start = std::max(now, wf.blockedUntil);
        if (m.fu != arch::FuType::Special)
            start = std::max(start, fuBusyUntil[fuIndex(wf, m)]);
        if (wf.st.isa != IsaKind::GCN3) {
            // Scoreboard (HSAIL simulator / PTXL hardware): the issue
            // cycle is bounded by the operand ready times (mirrors
            // depsReady()).
            for (unsigned i = 0; i < m.numVecRd; ++i)
                start = std::max(start, wf.vregReady[m.vecRd[i]]);
            for (unsigned i = 0; i < m.numVecWr; ++i)
                start = std::max(start, wf.vregReady[m.vecWr[i]]);
            if (wf.st.isa == IsaKind::PTXL) {
                // PTXL predicates live in the scalar-class slots.
                for (unsigned i = 0; i < m.numOps; ++i) {
                    const auto &op = m.ops[i];
                    if (op.cls != arch::RegClass::Scalar)
                        continue;
                    for (unsigned w = 0; w < op.width; ++w)
                        start = std::max(
                            start,
                            wf.sregReady[std::min<unsigned>(
                                op.idx + w, 127)]);
                }
            }
        } else if (m.is(arch::IsWaitcnt)) {
            if (wf.st.vmCnt > m.c0 || wf.st.lgkmCnt > m.c1)
                continue; // unblocked by an event-queue decrement
        }
        t = std::min(t, start);
    }
    return t;
}

void
ComputeUnit::chargeSkippedCycles(Cycle now, Cycle k)
{
    if (activeWfs == 0 || k == 0)
        return;
    busyCycles += double(k);
    Cycle end = now + k;
    for (const auto &wfp : slots) {
        const Wavefront &wf = *wfp;
        if (!wf.runnable())
            continue;
        // issueStage skips (without counting) while blockedUntil > M.
        Cycle lo = std::max(now, wf.blockedUntil);
        if (lo >= end)
            continue;
        if (wf.ibCount == 0) {
            ibEmptyStalls += double(end - lo);
            continue;
        }
        const arch::ExecMeta &m = wf.metas[wf.pcIdx];
        Cycle fu_free = lo;
        if (m.fu != arch::FuType::Special)
            fu_free = std::max(lo, fuBusyUntil[fuIndex(wf, m)]);
        if (fu_free > lo)
            fuConflictStalls += double(std::min(end, fu_free) - lo);
        if (fu_free >= end)
            continue;
        // The remaining cycles can only be dependency stalls: the skip
        // target never goes past a cycle where this wavefront could
        // have issued.
        if (wf.st.isa != IsaKind::GCN3)
            scoreboardStalls += double(end - fu_free);
        else
            waitcntStalls += double(end - fu_free);
    }
}

int
ComputeUnit::wedgeWavefront(unsigned slot)
{
    Wavefront *victim = nullptr;
    if (slot < slots.size() && slots[slot]->active &&
        !slots[slot]->st.done) {
        victim = slots[slot].get();
    } else {
        // The preferred slot is empty (e.g. the fault struck before
        // dispatch reached it): wedge the oldest live wavefront so a
        // planned fault always lands somewhere deterministic.
        for (auto &wf : slots) {
            if (!wf->active || wf->st.done)
                continue;
            if (!victim || wf->dispatchSeq < victim->dispatchSeq)
                victim = wf.get();
        }
    }
    if (!victim)
        return -1;
    victim->wedged = true;
    return int(victim->slot);
}

void
ComputeUnit::dumpWavefronts(unsigned cuIndex,
                            std::vector<WavefrontDump> &out) const
{
    for (const auto &wfp : slots) {
        const Wavefront &wf = *wfp;
        if (!wf.active)
            continue;
        const arch::WfState &st = wf.st;
        WavefrontDump d;
        d.cu = cuIndex;
        d.cuName = name();
        d.slot = wf.slot;
        d.wgId = st.wgId;
        d.kernel = st.code ? st.code->name() : "<none>";
        d.pc = st.code && wf.pcIdx < st.code->numInsts()
                   ? st.code->offsetOf(wf.pcIdx)
                   : st.pc;
        d.execMask = st.activeMask();
        d.vmCnt = st.vmCnt;
        d.lgkmCnt = st.lgkmCnt;
        d.atBarrier = st.atBarrier;
        if (wf.wg) {
            d.wgWfsAtBarrier = wf.wg->wfAtBarrier;
            d.wgWfsTotal = wf.wg->wfTotal;
        }
        d.rsDepth = st.rs.size();
        d.ibCount = wf.ibCount;
        d.fetchInFlight = wf.fetchInFlight;
        d.blockedUntil = wf.blockedUntil;
        d.wedged = wf.wedged;
        out.push_back(std::move(d));
    }
}

bool
ComputeUnit::tryFetch(Wavefront *wf, Cycle now)
{
    if (wf->st.done || wf->fetchInFlight)
        return false;
    const auto *code = wf->st.code;
    if (wf->ibNextIdx >= code->numInsts())
        return false;
    if (wf->ibCount + cfg.fetchWidth > cfg.ibEntries)
        return false;

    // Fetch one line's worth of instructions starting at the
    // next-fetch offset. sizeOf() reads the sealed offsets table — no
    // virtual sizeBytes() per scanned instruction.
    Addr addr = code->codeBase() + wf->ibNextFetch;
    Addr line_end = (addr / 64 + 1) * 64;
    unsigned fetched = 0;
    size_t idx = wf->ibNextIdx;
    Addr off = wf->ibNextFetch;
    while (idx < code->numInsts() && fetched < cfg.fetchWidth &&
           code->codeBase() + off < line_end) {
        off += code->sizeOf(idx);
        ++idx;
        ++fetched;
    }

    Cycle done = l1i->access(addr, false, now);
    progressLastTick = true;
    wf->fetchInFlight = true;
    uint64_t gen = wf->gen;
    size_t start_idx = wf->ibNextIdx;
    eq.schedule(done, [wf, gen, fetched, idx, off, start_idx]() {
        if (wf->gen != gen)
            return;
        wf->fetchInFlight = false;
        // A flush may have redirected fetch while this request was
        // in flight; drop the stale fill.
        if (wf->ibNextIdx != start_idx)
            return;
        wf->ibCount += fetched;
        wf->ibNextIdx = idx;
        wf->ibNextFetch = off;
    });
    return true;
}

void
ComputeUnit::fetchStage(Cycle now)
{
    // One fetch initiated per cycle (the L1I is shared per cluster;
    // its latency/misses come from the cache model). The round-robin
    // scan visits only slots holding live wavefronts: two ctz passes
    // over liveSlotMask (bits >= fetchRr, then the wrapped remainder)
    // reproduce the old (fetchRr + k) % n order exactly.
    unsigned n = unsigned(slots.size());
    if (n <= 64) {
        uint64_t live = liveSlotMask;
        uint64_t hi = live & (fetchRr < 64 ? ~0ull << fetchRr : 0);
        for (uint64_t m = hi; m; m &= m - 1) {
            unsigned s = findLsb(m);
            if (tryFetch(slots[s].get(), now)) {
                fetchRr = (s + 1) % n;
                return;
            }
        }
        for (uint64_t m = live & ~hi; m; m &= m - 1) {
            unsigned s = findLsb(m);
            if (tryFetch(slots[s].get(), now)) {
                fetchRr = (s + 1) % n;
                return;
            }
        }
        return;
    }
    for (unsigned k = 0; k < n; ++k) {
        unsigned s = (fetchRr + k) % n;
        Wavefront *wf = slots[s].get();
        if (!wf->active)
            continue;
        if (tryFetch(wf, now)) {
            fetchRr = (s + 1) % n;
            return;
        }
    }
}

unsigned
ComputeUnit::fuIndex(const Wavefront &wf, const arch::ExecMeta &m) const
{
    switch (m.fu) {
      case arch::FuType::VAlu: return wf.simd;
      case arch::FuType::SAlu:
      case arch::FuType::SMem:
      case arch::FuType::Special: return FuScalar;
      case arch::FuType::Branch: return FuBranch;
      case arch::FuType::VMem: return FuVMem;
      case arch::FuType::Lds: return FuLds;
    }
    return FuScalar;
}

bool
ComputeUnit::depsReady(Wavefront &wf, const arch::ExecMeta &m, Cycle now)
{
    arch::WfState &st = wf.st;
    if (st.isa == IsaKind::HSAIL) {
        // Simulator scoreboard: every operand (read or write) must be
        // ready. The real GPU has no such logic.
        for (unsigned i = 0; i < m.numVecRd; ++i)
            if (wf.vregReady[m.vecRd[i]] > now)
                return false;
        for (unsigned i = 0; i < m.numVecWr; ++i)
            if (wf.vregReady[m.vecWr[i]] > now)
                return false;
        return true;
    }

    if (st.isa == IsaKind::PTXL) {
        // Hardware scoreboard: in-order issue stalls until every
        // operand is ready — general registers and predicates alike.
        // Unlike HSAIL's, this scoreboard exists in the modeled
        // machine (fixed-latency producer tracking), not just in the
        // simulator.
        for (unsigned i = 0; i < m.numVecRd; ++i)
            if (wf.vregReady[m.vecRd[i]] > now)
                return false;
        for (unsigned i = 0; i < m.numVecWr; ++i)
            if (wf.vregReady[m.vecWr[i]] > now)
                return false;
        for (unsigned i = 0; i < m.numOps; ++i) {
            const auto &op = m.ops[i];
            if (op.cls != arch::RegClass::Scalar)
                continue;
            for (unsigned w = 0; w < op.width; ++w)
                if (wf.sregReady[std::min<unsigned>(op.idx + w, 127)] >
                    now)
                    return false;
        }
        return true;
    }

    // GCN3: only an s_waitcnt gates issue (thresholds predigested
    // into c0/c1 so no downcast happens per stalled cycle).
    if (m.is(arch::IsWaitcnt) &&
        (st.vmCnt > m.c0 || st.lgkmCnt > m.c1))
        return false;
    return true;
}

void
ComputeUnit::probeVectorOperands(Wavefront &wf, const arch::ExecMeta &m,
                                 bool defs)
{
    arch::WfState &st = wf.st;
    uint64_t mask = st.activeMask();
    unsigned lanes = popCount(mask);

    // vecRd/vecWr are the vector operands width-expanded in operand
    // order at predecode — the exact register sequence the old
    // regOps() double loop visited. Order matters: the reuse-distance
    // probe is order-dependent within an instruction.
    const uint16_t *regs = defs ? m.vecWr : m.vecRd;
    unsigned nregs = defs ? m.numVecWr : m.numVecRd;
    for (unsigned i = 0; i < nregs; ++i) {
        unsigned reg = regs[i];
        // A wide operand must fit inside the allocated register file;
        // the builder/finalizer guarantee this, the probe relies on it.
        assert(size_t(reg) < wf.lastVregTouch.size());

        // Reuse distance (count each access once, on the read
        // pass for srcs and write pass for defs).
        uint64_t &last = wf.lastVregTouch[reg];
        if (last != UINT64_MAX)
            vregReuseDist.sample(wf.dynInstCount - last);
        last = wf.dynInstCount;

        // Lane-value uniqueness: exact distinct-value count over
        // the active lanes via the scratch hash (identical to
        // sort+unique, without the copy or the ordering work).
        if (lanes == 0)
            continue;
        unsigned uniq = laneUniq.count(st.vregs[reg].data(), mask);
        double ratio = double(uniq) / double(lanes);
        if (defs)
            vrfWriteUniq.sample(ratio);
        else
            vrfReadUniq.sample(ratio);
    }
}

Cycle
ComputeUnit::memAccessLatency(const arch::MemAccess &acc, Cycle now)
{
    using Kind = arch::MemAccess::Kind;
    switch (acc.kind) {
      case Kind::ScalarLoad:
        return scalarD->access(acc.scalarAddr, false, now);
      case Kind::KernargDirect:
        // Simulator-defined ABI: serviced from functional state.
        return now + 4;
      case Kind::LdsLoad:
      case Kind::LdsStore: {
        unsigned passes =
            mem::LdsBlock::conflictPasses(acc.laneAddrs, acc.mask);
        Cycle start = std::max(now, fuBusyUntil[FuLds]);
        fuBusyUntil[FuLds] = start + passes;
        return start + cfg.ldsLatency + passes - 1;
      }
      case Kind::VectorLoad:
      case Kind::VectorStore: {
        ++vmemWfAccesses;
        // Coalesce lane addresses into 64 B line requests. Masked
        // lanes are visited via count-trailing-zeros; each candidate
        // line goes through a bounded sorted-insertion dedup, so the
        // final array is exactly what sort+unique produced (ascending,
        // duplicate-free) and the line requests keep their timing.
        Addr lines[2 * WavefrontSize];
        unsigned n = 0;
        for (uint64_t m = acc.mask; m; m &= m - 1) {
            unsigned lane = findLsb(m);
            Addr first = acc.laneAddrs[lane] / 64;
            Addr last =
                (acc.laneAddrs[lane] + acc.bytesPerLane - 1) / 64;
            n = insertLineSorted(lines, n, first);
            if (last != first)
                n = insertLineSorted(lines, n, last);
        }
        coalescedLines += n;

        bool is_write = acc.kind == Kind::VectorStore;
        Cycle start = std::max(now, fuBusyUntil[FuVMem]);
        fuBusyUntil[FuVMem] = start + n; // one line issued per cycle
        Cycle done = start;
        for (unsigned i = 0; i < n; ++i)
            done = std::max(done,
                            l1d->access(lines[i] * 64, is_write,
                                        start + i));
        return done;
      }
    }
    return now + 1;
}

void
ComputeUnit::issueStage(Cycle now)
{
    // Oldest-first arbitration over runnable wavefronts. The age list
    // is already sorted (oldest first, Wavefront::olderThan); snapshot
    // the runnable set before issuing because issuing can change
    // runnability mid-tick (a barrier release makes siblings runnable;
    // they must wait for the next tick, exactly as before).
    issueOrder.clear();
    for (Wavefront *wf = ageHead; wf; wf = wf->ageNext)
        if (wf->runnable())
            issueOrder.push_back(wf);

    bool fuIssued[NumFu] = {};
    for (Wavefront *wf : issueOrder) {
        if (wf->blockedUntil > now)
            continue;
        if (wf->ibCount == 0) {
            ++ibEmptyStalls;
            continue;
        }
        const arch::ExecMeta &m = wf->metas[wf->pcIdx];
        // Special instructions (nop/waitcnt/barrier/endpgm) are
        // handled by the sequencer and occupy no functional unit.
        bool needs_fu = m.fu != arch::FuType::Special;
        unsigned fu = fuIndex(*wf, m);
        if (needs_fu && (fuIssued[fu] || fuBusyUntil[fu] > now)) {
            ++fuConflictStalls;
            continue;
        }
        if (!depsReady(*wf, m, now)) {
            if (wf->st.isa != IsaKind::GCN3)
                ++scoreboardStalls;
            else
                ++waitcntStalls;
            // Tracing: remember where this dependency stall began; the
            // whole stall is emitted as one span when the WF issues
            // (works under fast-forward, which always observes at
            // least one stalled tick before jumping).
            if (tracing() && wf->stallSince == InvalidCycle) {
                wf->stallSince = now;
                wf->stallKind = wf->st.isa != IsaKind::GCN3 ? 0 : 1;
            }
            continue;
        }
        if (needs_fu)
            fuIssued[fu] = true;
        issueInst(*wf, m, now);
    }
}

void
ComputeUnit::issueInst(Wavefront &wf, const arch::ExecMeta &m, Cycle now)
{
    arch::WfState &st = wf.st;
    progressLastTick = true;

    // Tracing: close the dependency-stall span that ends with this
    // issue (opened in issueStage on the first stalled tick).
    if (tracing() && wf.stallSince != InvalidCycle) {
        trace->emit(obs::TraceKind::DepStall, wf.stallSince,
                    now - wf.stallSince, wf.slot, wf.stallKind);
        wf.stallSince = InvalidCycle;
    }

    // --- classification (Figure 5) ---
    ++dynInsts;
    if (m.is(arch::IsWaitcnt)) {
        ++waitcntInsts;
    } else {
        switch (m.fu) {
          case arch::FuType::VAlu: ++valuInsts; break;
          case arch::FuType::SAlu: ++saluInsts; break;
          case arch::FuType::VMem: ++vmemInsts; break;
          case arch::FuType::SMem: ++smemInsts; break;
          case arch::FuType::Lds: ++ldsInsts; break;
          case arch::FuType::Branch: ++branchInsts; break;
          case arch::FuType::Special: ++miscInsts; break;
        }
    }

    // --- GCN3 hazard probe ---
    if (st.isa == IsaKind::GCN3) {
        for (unsigned i = 0; i < m.numOps; ++i) {
            const auto &op = m.ops[i];
            for (unsigned w = 0; w < op.width; ++w) {
                Cycle ready = op.cls == arch::RegClass::Vector
                    ? wf.vregReady[op.idx + w]
                    : wf.sregReady[std::min<unsigned>(op.idx + w, 127)];
                if (!op.isDef && ready > now) {
                    ++hazardViolations;
                    break;
                }
            }
        }
    }

    // --- probes ---
    bool vector_op = m.fu == arch::FuType::VAlu ||
                     m.fu == arch::FuType::VMem ||
                     m.fu == arch::FuType::Lds;
    unsigned conflict_cycles = 0;
    if (vector_op) {
        if (m.fu == arch::FuType::VAlu)
            valuUtilization.sample(popCount(st.activeMask()) / 64.0);
        conflict_cycles = chargeBankConflicts(wf, m, now);
        probeVectorOperands(wf, m, false);
    }

    // --- execute ---
    // Snapshot the RS depth around execute + the pop loop below: it
    // feeds the rsDepth histogram (pushes only) and, when tracing, the
    // RsPush/RsPop events — without plumbing either into the ISA
    // executors.
    size_t rs_before = 0;
    if (st.isa == IsaKind::HSAIL)
        rs_before = st.rs.size();
    st.pc = st.code->offsetOf(wf.pcIdx);
    // Dispatch: one indirect call through the predecoded handler, or
    // the legacy virtual path when the reference engine is selected
    // (bit-identical either way; tests/test_exec_engine.cc). A memory
    // access, if any, is built in place in st.pendingAccess and
    // consumed by reference below — reset happens after use, so the
    // executors never pay for a 600-byte MemAccess copy.
    if (!cfg.execReference)
        m.handler(m, st);
    else
        m.inst->execute(st);
    ++wf.dynInstCount;
    ++wf.wg->launch->instsIssued;
    // A diverging branch pushed an RS entry inside execute: record the
    // depth reached (Figure 9's driver; the pop loop below only ever
    // shrinks it).
    if (st.isa == IsaKind::HSAIL && st.rs.size() > rs_before)
        rsDepth.sample(st.rs.size());

    if (vector_op)
        probeVectorOperands(wf, m, true);

    // --- functional unit occupancy (bank conflicts add gather
    // cycles) ---
    unsigned fu = fuIndex(wf, m);
    if (m.fu == arch::FuType::VAlu) {
        // A 64-lane WF occupies its 16-lane SIMD for 4 cycles.
        fuBusyUntil[fu] = now + cfg.wavefrontSize / cfg.simdWidth +
                          conflict_cycles;
    } else if (m.fu != arch::FuType::Special && fu < FuVMem) {
        fuBusyUntil[fu] =
            std::max(fuBusyUntil[fu], now + 1 + conflict_cycles);
    }

    // s_nop wait states block this WF's next issue (wait-state count
    // predigested into m.imm at predecode).
    if (st.isa == IsaKind::GCN3 && m.is(arch::IsNop))
        wf.blockedUntil = now + m.imm + 1;

    // --- result latency / memory timing ---
    Cycle result_ready = now + 1;
    if (st.pendingAccess) {
        const arch::MemAccess &acc = *st.pendingAccess;
        Cycle done = memAccessLatency(acc, now);
        result_ready = done;
        // Memory results gate dependents on both ISAs: the HSAIL
        // scoreboard stalls on them; for GCN3 they feed the hazard
        // probe (the waitcnt contract must cover them).
        for (unsigned i = 0; i < m.numOps; ++i) {
            const auto &op = m.ops[i];
            if (!op.isDef)
                continue;
            for (unsigned w = 0; w < op.width; ++w) {
                if (op.cls == arch::RegClass::Vector)
                    wf.vregReady[op.idx + w] = done;
                else if (op.idx + w < 128)
                    wf.sregReady[op.idx + w] = done;
            }
        }
        if (st.isa == IsaKind::GCN3) {
            unsigned *cnt = acc.countsVmcnt() ? &st.vmCnt
                          : acc.countsLgkmcnt() ? &st.lgkmCnt : nullptr;
            if (cnt) {
                ++*cnt;
                uint64_t gen = wf.gen;
                Wavefront *wfp = &wf;
                eq.schedule(done, [wfp, gen, cnt]() {
                    if (wfp->gen == gen && *cnt > 0)
                        --*cnt;
                });
            }
        }
        st.pendingAccess.reset();
    } else if (st.isa != IsaKind::GCN3) {
        // ALU latency feeds the scoreboard (HSAIL's simulator
        // scoreboard; PTXL's fixed-latency hardware one — ISETP
        // predicate writes land in the scalar-class slots the PTXL
        // depsReady() checks). GCN3 hardware has no scoreboard:
        // pipelined operand forwarding covers vector-to-vector
        // dependences, and the finalizer's s_nop insertion covers the
        // documented scalar-side wait states.
        Cycle done = now + m.latency(cfg);
        result_ready = done;
        for (unsigned i = 0; i < m.numOps; ++i) {
            const auto &op = m.ops[i];
            if (!op.isDef)
                continue;
            for (unsigned w = 0; w < op.width; ++w) {
                if (op.cls == arch::RegClass::Vector)
                    wf.vregReady[op.idx + w] = done;
                else if (op.idx + w < 128)
                    wf.sregReady[op.idx + w] = done;
            }
        }
    }

    // Tracing: one span per issued instruction, issue -> result-ready
    // (GCN3 non-memory results forward in 1 cycle; see above).
    if (tracing())
        trace->emit(obs::TraceKind::InstIssue, now, result_ready - now,
                    wf.slot,
                    (uint64_t(st.pc) << 4) |
                        uint64_t(traceClassOf(m)));

    // --- control-flow resolution ---
    Addr seq_next = st.pc + m.size;
    Addr new_pc = st.nextPc;
    unsigned flushes = new_pc != seq_next ? 1 : 0;
    if (st.isa == IsaKind::HSAIL) {
        // Reconvergence-stack maintenance. Every pop that redirects
        // the PC to the other path (or back to the reconvergence
        // point) costs another front-end redirect — the extra IB
        // flushes the paper attributes to RS-managed divergence.
        st.rs.back().pc = new_pc;
        while (st.rs.size() > 1 &&
               st.rs.back().pc == st.rs.back().rpc) {
            st.rs.pop_back();
            if (st.rs.back().pc != new_pc) {
                new_pc = st.rs.back().pc;
                ++flushes;
            }
        }
    }

    // Tracing: net RS movement of this instruction (push from a
    // diverging branch inside execute, pops from the loop above).
    if (tracing() && st.isa == IsaKind::HSAIL) {
        size_t rs_after = st.rs.size();
        if (rs_after != rs_before)
            trace->emit(rs_after > rs_before ? obs::TraceKind::RsPush
                                             : obs::TraceKind::RsPop,
                        now, 0, wf.slot, rs_after);
    }

    if (st.done) {
        finishWavefront(wf);
        return;
    }

    st.pc = new_pc;
    if (flushes == 0) {
        --wf.ibCount;
        ++wf.pcIdx;
    } else {
        // Discontinuous PC: flush the instruction buffer and redirect
        // fetch (the front-end cost the paper highlights).
        ibFlushes += flushes;
        if (tracing())
            trace->emit(obs::TraceKind::IbFlush, now, 0, wf.slot,
                        flushes);
        wf.ibCount = 0;
        wf.pcIdx = st.code->indexAt(new_pc);
        wf.ibNextIdx = wf.pcIdx;
        wf.ibNextFetch = new_pc;
    }

    if (st.atBarrier) {
        WgInstance &wg = *wf.wg;
        ++wg.wfAtBarrier;
        if (wg.wfAtBarrier + wg.wfDone >= wg.wfTotal)
            releaseBarrier(wg);
    }
}

void
ComputeUnit::releaseBarrier(WgInstance &wg)
{
    wg.wfAtBarrier = 0;
    for (auto &wf : slots)
        if (wf->active && wf->wg == &wg)
            wf->st.atBarrier = false;
}

void
ComputeUnit::finishWavefront(Wavefront &wf)
{
    WgInstance &wg = *wf.wg;
    if (tracing())
        trace->emit(obs::TraceKind::WfEnd, eq.now(), 0, wf.slot,
                    wf.st.wgId);
    ageListUnlink(wf);
    wf.active = false;
    ++wf.gen;
    --activeWfs;
    ++wg.wfDone;
    if (wg.wfAtBarrier > 0 && wg.wfAtBarrier + wg.wfDone >= wg.wfTotal)
        releaseBarrier(wg);
    if (wg.wfDone == wg.wfTotal) {
        vrfUsed -= wg.vregsReserved;
        srfUsed -= wg.sregsReserved;
        ldsUsed -= wg.ldsReserved;
        ++wg.launch->wgsCompleted;
        if (wg.launch->complete())
            wg.launch->endCycle = eq.now();
        for (auto it = workgroups.begin(); it != workgroups.end(); ++it) {
            if (it->get() == &wg) {
                workgroups.erase(it);
                break;
            }
        }
    }
}

} // namespace last::cu
