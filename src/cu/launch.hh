/**
 * @file
 * Kernel-launch descriptors passed from the command processor /
 * dispatcher down to the compute units.
 */

#ifndef LAST_CU_LAUNCH_HH
#define LAST_CU_LAUNCH_HH

#include <functional>

#include "arch/kernel_code.hh"
#include "common/types.hh"

namespace last::cu
{

/**
 * One kernel dispatch. The segment base addresses reflect the two ABI
 * worlds: GCN3 kernels get a scratch arena whose base/stride the CP
 * loads into SGPRs; HSAIL kernels get simulator-held private/spill
 * bases that instructions consult directly.
 */
struct KernelLaunch
{
    const arch::KernelCode *code = nullptr;
    unsigned gridSize = 0;
    unsigned wgSize = 0;

    Addr kernargBase = 0;
    Addr aqlPacketAddr = 0;

    /** GCN3: scratch arena (private+spill unified). */
    Addr scratchBase = 0;
    uint64_t scratchStridePerWi = 0;

    /** HSAIL: simulator-managed segment arenas. */
    Addr privateBase = 0;
    Addr spillBase = 0;
    uint64_t privateStridePerWi = 0;
    uint64_t spillStridePerWi = 0;

    unsigned wgsDispatched = 0;
    unsigned wgsCompleted = 0;
    Cycle startCycle = 0;
    /** Cycle the last workgroup retired (valid once complete()). */
    Cycle endCycle = 0;
    /** Instructions issued on behalf of this launch (all CUs). */
    uint64_t instsIssued = 0;

    unsigned
    numWorkgroups() const
    {
        return (gridSize + wgSize - 1) / wgSize;
    }

    bool
    complete() const
    {
        return wgsCompleted == numWorkgroups();
    }
};

/** One workgroup awaiting placement on a CU. */
struct WorkgroupTask
{
    KernelLaunch *launch = nullptr;
    unsigned wgId = 0;
};

} // namespace last::cu

#endif // LAST_CU_LAUNCH_HH
