/**
 * @file
 * The compute-unit timing model (Figure 2 of the paper): four 16-lane
 * SIMD engines, a scalar unit, a branch unit, vector/scalar/LDS memory
 * pipelines, per-WF instruction buffers fed by a shared L1I, a banked
 * VRF with port-conflict accounting, and 40 wavefront slots scheduled
 * oldest-first.
 *
 * The model is ISA-blind; the per-ISA differences enter exactly where
 * the paper says they must:
 *  - dependency model: HSAIL issue is gated by a simulator scoreboard
 *    (per-register ready times); GCN3 issue is gated only by its own
 *    s_waitcnt instructions, with a hazard PROBE that flags any read
 *    of a not-yet-ready register (it must stay at zero if the
 *    finalizer's software dependency management is correct);
 *  - divergence: HSAIL resolves control flow through the reconvergence
 *    stack (pops cause discontinuous PCs and hence IB flushes); GCN3
 *    only redirects fetch on taken branches;
 *  - register files: HSAIL uses vector registers for everything; GCN3
 *    splits traffic between the VRF and the SRF.
 */

#ifndef LAST_CU_COMPUTE_UNIT_HH
#define LAST_CU_COMPUTE_UNIT_HH

#include <memory>
#include <vector>

#include "common/config.hh"
#include "common/error.hh"
#include "common/event_queue.hh"
#include "common/stats.hh"
#include "cu/launch.hh"
#include "cu/probes.hh"
#include "cu/wavefront.hh"
#include "memory/cache.hh"
#include "memory/functional_memory.hh"
#include "memory/lds.hh"
#include "obs/trace.hh"

namespace last::cu
{

/** A workgroup resident on a CU. */
struct WgInstance
{
    KernelLaunch *launch = nullptr;
    unsigned wgId = 0;
    unsigned wfTotal = 0;
    unsigned wfAtBarrier = 0;
    unsigned wfDone = 0;
    std::unique_ptr<mem::LdsBlock> lds;
    unsigned vregsReserved = 0;
    unsigned sregsReserved = 0;
    uint64_t ldsReserved = 0;
};

class ComputeUnit : public stats::Group
{
  public:
    ComputeUnit(const std::string &name, const GpuConfig &cfg,
                EventQueue &eq, mem::MemLevel *l1d, mem::MemLevel *l1i,
                mem::MemLevel *scalar_d, mem::FunctionalMemory *memory,
                stats::Group *parent);

    /** Resource check + placement (the dispatcher calls this). */
    bool canAccept(const WorkgroupTask &task) const;
    void accept(const WorkgroupTask &task);

    /** Advance one cycle. */
    void tick();

    bool busy() const { return activeWfs > 0; }

    /** True iff the last tick() initiated a fetch or issued an
     *  instruction (used by the GPU's idle-cycle fast-forward). */
    bool madeProgress() const { return progressLastTick; }

    /**
     * Earliest future cycle (>= now) at which this CU could fetch or
     * issue, considering only time-gated conditions (s_nop wait
     * states, functional-unit occupancy, scoreboard register-ready
     * times). Returns InvalidCycle when the CU is idle or every
     * stalled wavefront is waiting on an event-queue callback (fetch
     * fill, waitcnt decrement) — the event queue bounds those.
     */
    Cycle nextProgressCycle(Cycle now) const;

    /**
     * Account for k skipped cycles starting at now during which this
     * CU provably made no progress: replays exactly the busy-cycle and
     * per-wavefront stall accounting the per-cycle loop would have
     * performed, so fast-forwarded runs are statistic-identical to
     * fully ticked ones.
     */
    void chargeSkippedCycles(Cycle now, Cycle k);

    /**
     * Fault injection: wedge a wavefront so it never issues again
     * (slot `slot` if it holds a live wavefront, else the oldest live
     * one). @return the slot wedged, or -1 if no wavefront is live.
     */
    int wedgeWavefront(unsigned slot);

    /** Append a WavefrontDump for every live wavefront (the watchdog
     *  calls this to build a DeadlockError). */
    void dumpWavefronts(unsigned cuIndex,
                        std::vector<WavefrontDump> &out) const;

    /** Attach this CU's structured-trace stream (nullptr = off). The
     *  Gpu wires this when GpuConfig::trace is set; see obs/trace.hh. */
    void setTraceStream(obs::TraceStream *s) { trace = s; }

    /** @{ Dynamic instruction counters (Figure 5 classification). */
    stats::Scalar dynInsts;
    stats::Scalar valuInsts;
    stats::Scalar saluInsts;
    stats::Scalar vmemInsts;
    stats::Scalar smemInsts;
    stats::Scalar ldsInsts;
    stats::Scalar branchInsts;
    stats::Scalar waitcntInsts;
    stats::Scalar miscInsts;
    /** @} */

    stats::Scalar busyCycles;

    /** @{ The paper's microarchitecture probes. */
    stats::Scalar vrfBankConflicts; ///< Figure 6
    stats::Histogram vregReuseDist; ///< Figure 7
    stats::Scalar ibFlushes;        ///< Figure 9
    /** Reconvergence-stack depth reached on each push (HSAIL only;
     *  GCN3 has no RS). Non-degenerate for nested-divergence shapes
     *  like bfsgraph; stays empty for straight-line kernels. */
    stats::Histogram rsDepth;
    stats::Average vrfReadUniq;     ///< Figure 10 (reads)
    stats::Average vrfWriteUniq;    ///< Figure 10 (writes)
    stats::Average valuUtilization; ///< Table 6 SIMD utilization
    /** @} */

    /** @{ Issue-stall accounting. */
    stats::Scalar scoreboardStalls; ///< HSAIL dependency stalls
    stats::Scalar waitcntStalls;    ///< GCN3 waitcnt stalls
    stats::Scalar fuConflictStalls;
    stats::Scalar ibEmptyStalls;
    /** @} */

    /** GCN3 correctness probe: reads of registers whose producer has
     *  not completed (must stay 0 for well-finalized code). */
    stats::Scalar hazardViolations;

    stats::Scalar coalescedLines; ///< vector accesses after coalescing
    stats::Scalar vmemWfAccesses;

  private:
    struct FreeSlotOrder;

    void fetchStage(Cycle now);
    /** Initiate a fetch for `wf` if it is eligible this cycle.
     *  @return true iff a fetch was started (ends the fetch scan). */
    bool tryFetch(Wavefront *wf, Cycle now);
    void issueStage(Cycle now);
    bool depsReady(Wavefront &wf, const arch::ExecMeta &m, Cycle now);
    void issueInst(Wavefront &wf, const arch::ExecMeta &m, Cycle now);
    void probeVectorOperands(Wavefront &wf, const arch::ExecMeta &m,
                             bool defs);
    Cycle memAccessLatency(const arch::MemAccess &acc, Cycle now);
    void finishWavefront(Wavefront &wf);
    void releaseBarrier(WgInstance &wg);

    /** @{ Intrusive age-ordered wavefront list maintenance. */
    void ageListLink(Wavefront &wf);
    void ageListUnlink(Wavefront &wf);
    /** @} */

    /** True iff trace points are compiled in AND a stream is attached;
     *  constant-folds to `false` under -DLAST_OBS_TRACE=0 so every
     *  tracing block becomes dead code. */
    bool tracing() const { return obs::tracePointsCompiled() && trace; }

    GpuConfig cfg;
    EventQueue &eq;
    obs::TraceStream *trace = nullptr;
    mem::MemLevel *l1d;
    mem::MemLevel *l1i;
    mem::MemLevel *scalarD;
    mem::FunctionalMemory *memory;

    std::vector<std::unique_ptr<Wavefront>> slots;
    std::vector<std::unique_ptr<WgInstance>> workgroups;

    /** Live wavefronts, oldest first (Wavefront::olderThan). Kept
     *  sorted incrementally: dispatch appends (dispatchSeq is
     *  monotonic, so the tail is always the youngest), retirement
     *  unlinks in O(1). Replaces the per-tick vector allocation and
     *  full std::sort the issue stage used to pay. */
    Wavefront *ageHead = nullptr;
    Wavefront *ageTail = nullptr;

    /** Bit per slot holding a live wavefront (maintained alongside the
     *  age list): the fetch stage's round-robin scan walks set bits
     *  via count-trailing-zeros instead of testing all 40 slots every
     *  cycle. Only used when the CU has <= 64 slots. */
    uint64_t liveSlotMask = 0;

    /** Reused issue-order scratch: the runnable snapshot the issue
     *  stage arbitrates over (capacity reserved once; no per-tick
     *  allocation). */
    std::vector<Wavefront *> issueOrder;

    /** Scratch hash for the Figure 10 lane-value uniqueness probe. */
    LaneUniqCounter laneUniq;

    unsigned activeWfs = 0;
    bool progressLastTick = false;
    unsigned vrfUsed = 0;
    unsigned srfUsed = 0;
    uint64_t ldsUsed = 0;
    uint64_t nextDispatchSeq = 0;
    unsigned fetchRr = 0; ///< round-robin pointer for the fetch stage

    /** Per-FU busy-until cycles: [0..3] SIMDs, then scalar, branch,
     *  vmem, lds. */
    std::vector<Cycle> fuBusyUntil;

    static constexpr unsigned FuScalar = 4;
    static constexpr unsigned FuBranch = 5;
    static constexpr unsigned FuVMem = 6;
    static constexpr unsigned FuLds = 7;
    static constexpr unsigned NumFu = 8;

    unsigned fuIndex(const Wavefront &wf, const arch::ExecMeta &m) const;

    /** Per-SIMD, per-cycle VRF bank usage: vector operands of every
     *  instruction issued this cycle (VALU on the SIMD itself, plus
     *  vector-memory/LDS pipes reading addresses and data) contend for
     *  the partition's banks. */
    std::vector<std::array<uint8_t, 64>> vrfBankUse;
    std::vector<Cycle> vrfBankUseCycle;

    unsigned chargeBankConflicts(const Wavefront &wf,
                                 const arch::ExecMeta &m, Cycle now);
};

} // namespace last::cu

#endif // LAST_CU_COMPUTE_UNIT_HH
