/**
 * @file
 * ISA-neutral instruction interface.
 *
 * The compute-unit timing model is ISA-blind: it executes objects that
 * implement this interface. The HSAIL and GCN3 front ends each provide
 * concrete instruction classes. Everything the CU needs for timing —
 * functional-unit class, encoded size (instruction-footprint and fetch
 * modelling), register operands (bank-conflict, reuse-distance and
 * value-uniqueness probes), and branch/memory/barrier semantics — is
 * exposed here.
 */

#ifndef LAST_ARCH_INSTRUCTION_HH
#define LAST_ARCH_INSTRUCTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/types.hh"

namespace last::arch
{

struct WfState;
struct ExecMeta;

/** Functional unit an instruction issues to. */
enum class FuType
{
    VAlu,    ///< 16-lane vector ALU (4 per CU)
    SAlu,    ///< scalar ALU (1 per CU); GCN3 only
    Branch,  ///< branch unit
    VMem,    ///< vector (global/flat) memory pipeline
    SMem,    ///< scalar memory pipeline (scalar data cache)
    Lds,     ///< local data share pipeline
    Special, ///< barrier / endpgm / nop / waitcnt: no FU occupancy
};

const char *fuTypeName(FuType fu);

/** Register class of an operand. */
enum class RegClass : uint8_t
{
    Vector,
    Scalar,
    None,
};

/**
 * One register operand. Vector operands index the wavefront's vector
 * registers (32 bits x 64 lanes each); wide values occupy `width`
 * consecutive registers. Scalar indices use GCN3 encoding conventions
 * (0-101 SGPRs, 106/107 VCC, 126/127 EXEC).
 */
struct RegOperand
{
    RegClass cls = RegClass::None;
    uint16_t idx = 0;
    uint8_t width = 1; ///< number of consecutive 32-bit registers
    bool isDef = false;
};

/** GCN3-convention special scalar register indices. */
constexpr uint16_t RegVccLo = 106;
constexpr uint16_t RegVccHi = 107;
constexpr uint16_t RegExecLo = 126;
constexpr uint16_t RegExecHi = 127;

/** Behavioural flags; set once at construction. */
enum InstFlags : uint32_t
{
    IsBranch = 1u << 0,  ///< may change control flow
    IsMemory = 1u << 1,  ///< produces a MemAccess
    IsLoad = 1u << 2,
    IsStore = 1u << 3,
    IsBarrier = 1u << 4,
    IsEndPgm = 1u << 5,
    IsWaitcnt = 1u << 6, ///< GCN3 s_waitcnt
    IsNop = 1u << 7,
    IsScalarOp = 1u << 8, ///< executes on the scalar pipeline
    IsAtomic = 1u << 9,
    IsF64 = 1u << 10,     ///< double-precision VALU op
    IsTrans = 1u << 11,   ///< transcendental (rcp/sqrt); hazard window
    IsCondMove = 1u << 12,
};

/**
 * Abstract instruction. Concrete subclasses live in src/hsail and
 * src/gcn3. Instances are immutable after construction; execute()
 * mutates only the wavefront state passed in.
 */
class Instruction
{
  public:
    virtual ~Instruction() = default;

    /** Functionally execute for all active lanes; set wf.nextPc and,
     *  for memory ops, push a MemAccess descriptor onto wf. This is
     *  the reference engine; the direct-threaded engine (exec_meta.hh)
     *  must match it bit for bit. */
    virtual void execute(WfState &wf) const = 0;

    /**
     * Second half of predecode: pick the direct-threaded handler and
     * fill ISA-specific ExecMeta fields. The caller
     * (KernelCode::execMetas) has already flattened the ISA-neutral
     * metadata (flags/fu/size/latency class/operand arrays) into `m`.
     * The default implementation installs a handler that falls back to
     * the virtual execute(); ISAs override to install specialized
     * active-lane kernels for their hot op classes.
     */
    virtual void predecode(ExecMeta &m) const;

    /** Assembly-like rendering, used by examples/tests. */
    virtual std::string disassemble() const = 0;

    /** Functional unit class for issue arbitration. */
    virtual FuType fuType() const = 0;

    /** Encoded size in bytes as stored in simulated memory. HSAIL
     *  instructions all report 8 (the paper's 64-bit approximation of
     *  BRIG); GCN3 reports 4, 8, or 12. */
    virtual unsigned sizeBytes() const = 0;

    /** Result latency in cycles (beyond issue). */
    virtual unsigned latency(const GpuConfig &cfg) const;

    bool is(InstFlags f) const { return (flags_ & f) != 0; }
    uint32_t flags() const { return flags_; }

    const std::vector<RegOperand> &regOps() const { return regOps_; }

    /** Mnemonic (first token of the disassembly). */
    virtual std::string mnemonic() const;

  protected:
    void setFlags(uint32_t f) { flags_ |= f; }

    /** Drop the operand list (used when registers are renumbered). */
    void clearOps() { regOps_.clear(); }

    void
    addOp(RegClass cls, uint16_t idx, uint8_t width, bool is_def)
    {
        if (cls != RegClass::None)
            regOps_.push_back({cls, idx, width, is_def});
    }

  private:
    uint32_t flags_ = 0;
    std::vector<RegOperand> regOps_;
};

} // namespace last::arch

#endif // LAST_ARCH_INSTRUCTION_HH
