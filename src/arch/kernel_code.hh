/**
 * @file
 * A loaded, executable kernel: the instruction stream plus the resource
 * requirements the dispatcher checks and the ABI metadata the command
 * processor uses at launch.
 */

#ifndef LAST_ARCH_KERNEL_CODE_HH
#define LAST_ARCH_KERNEL_CODE_HH

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "arch/exec_meta.hh"
#include "arch/instruction.hh"
#include "common/config.hh"
#include "common/types.hh"

namespace last::arch
{

/**
 * Instruction stream + metadata for one kernel at one ISA level.
 *
 * Instructions are laid out at byte offsets so the fetch stage can
 * model the true instruction footprint: fixed 8 B per instruction for
 * HSAIL (the 64-bit pseudo-encoding the paper describes) and the
 * variable GCN3 encoding otherwise.
 */
class KernelCode
{
  public:
    KernelCode(IsaKind isa, std::string name);

    /** Append an instruction; returns its index. */
    size_t append(std::unique_ptr<Instruction> inst);

    /** Finish construction: compute byte offsets. Must be called once
     *  before execution. */
    void seal();

    IsaKind isa() const { return isaKind; }
    const std::string &name() const { return kernelName; }
    bool sealed() const { return isSealed; }

    size_t numInsts() const { return insts.size(); }
    const Instruction &inst(size_t idx) const { return *insts[idx]; }

    /** Byte offset of instruction idx within the code object. */
    Addr offsetOf(size_t idx) const { return offsets[idx]; }

    /** Encoded size in bytes of instruction idx, from the sealed
     *  offset table — no virtual call. */
    unsigned
    sizeOf(size_t idx) const
    {
        Addr end = idx + 1 < offsets.size() ? offsets[idx + 1]
                                            : totalBytes;
        return unsigned(end - offsets[idx]);
    }

    /**
     * Predecoded execution metadata, one record per instruction in
     * stream order (parallel to inst()). Built lazily on first use and
     * cached for the lifetime of the kernel — artifacts live in the
     * process-wide ArtifactCache, so predecode cost is paid once per
     * static kernel no matter how many sweep runs execute it.
     * Thread-safe: concurrent sweep runs share const artifacts, hence
     * call_once. Panics if the kernel is not sealed.
     */
    const std::vector<ExecMeta> &execMetas() const;

    /** True once execMetas() has built the predecode cache. Passes
     *  that rewrite instructions post-seal (register remapping) must
     *  run before predecode — the cached operand lists would go
     *  silently stale otherwise — and use this to assert that. */
    bool predecoded() const { return metasBuilt; }

    /** Instruction index at byte offset (must be a valid boundary). */
    size_t indexAt(Addr offset) const;

    /** Total code bytes — the kernel's instruction footprint. */
    Addr codeBytes() const { return totalBytes; }

    /** Where the loader placed the code object in simulated memory. */
    Addr codeBase() const
    {
        return base.load(std::memory_order_relaxed);
    }

    /**
     * Publish the load address. Write-once: kernel artifacts can be
     * shared (const) across concurrent runs, so the base is the one
     * piece of post-seal state — every loader must compute the same
     * address (load order is deterministic per (workload, isa, scale)),
     * and a mismatch means the artifact-cache key is unsound, which
     * must be loud, not a silent data race. Re-publishing the same
     * value is a no-op.
     */
    void setCodeBase(Addr b) const;

    std::string disassemble() const;

    /** @{ Resource requirements and segment sizes (per-WI / per-WG). */
    unsigned vregsUsed = 0;
    unsigned sregsUsed = 0;
    uint64_t privateBytesPerWi = 0;
    uint64_t spillBytesPerWi = 0;
    uint64_t ldsBytesPerWg = 0;
    uint64_t kernargBytes = 0;
    /** @} */

  private:
    IsaKind isaKind;
    std::string kernelName;
    std::vector<std::unique_ptr<Instruction>> insts;
    std::vector<Addr> offsets;
    Addr totalBytes = 0;
    /** Logically part of construction (see setCodeBase), hence
     *  mutable on an otherwise-immutable shared artifact. */
    mutable std::atomic<Addr> base{0};
    /** Lazily-built predecode cache; same shared-artifact argument as
     *  `base` for mutability. */
    mutable std::vector<ExecMeta> metas;
    mutable std::once_flag metasOnce;
    mutable bool metasBuilt = false;
    bool isSealed = false;

    void buildMetas() const;
};

} // namespace last::arch

#endif // LAST_ARCH_KERNEL_CODE_HH
