/**
 * @file
 * Predecoded execution metadata: the direct-threaded engine's view of
 * one static instruction.
 *
 * The per-dynamic-instruction cost of the original engine was a
 * virtual execute() call into a nested format/opcode switch, plus
 * repeated virtual fuType()/sizeBytes()/latency() calls and
 * std::vector<RegOperand> walks in the issue stage. Predecode runs
 * once per static instruction (lazily, at first use of a sealed
 * kernel; see KernelCode::execMetas) and flattens everything the hot
 * path needs into this POD record:
 *
 *  - `handler`: a flat function pointer resolved from the opcode, so
 *    dispatch is one indirect call with no switch chain. Each ISA
 *    picks it in its predecode() override (src/hsail/exec.cc,
 *    src/gcn3/exec.cc); handlers for the hot op classes iterate
 *    active lanes ctz-style with branchless, autovectorizable lane
 *    kernels. The legacy virtual path stays available behind
 *    GpuConfig::execReference and must produce bit-identical results
 *    (enforced by tests/test_exec_engine.cc).
 *  - flags/fu/size/latClass: the virtual metadata, pre-flattened.
 *  - `ops`: the RegOperand list copied into a fixed array (same
 *    order), for the hazard probe / scoreboard / bank-conflict walks.
 *  - vecRd/vecWr: the vector operand registers width-expanded in
 *    operand order — exactly the sequence probeVectorOperands used to
 *    derive from regOps() per dynamic instruction. Order matters: the
 *    reuse-distance probe is order-dependent within an instruction.
 *  - c0/c1/imm: predigested ISA constants (s_waitcnt thresholds,
 *    s_nop wait states) so the CU never downcasts mid-issue.
 *
 * The record deliberately keeps a pointer to the Instruction: cold
 * fields (branch targets, reconvergence offsets, disassembly) stay
 * there, and the reference path needs the virtual execute().
 */

#ifndef LAST_ARCH_EXEC_META_HH
#define LAST_ARCH_EXEC_META_HH

#include <cstdint>

#include "arch/instruction.hh"
#include "common/config.hh"

namespace last::arch
{

struct WfState;
struct ExecMeta;

/** Direct-threaded handler: functionally execute `m.inst` for all
 *  active lanes of `wf` (bit-identical to `m.inst->execute(wf)`). */
using ExecHandler = void (*)(const ExecMeta &m, WfState &wf);

/** Latency class, resolved to cycles against a GpuConfig at issue
 *  time (the config's latency knobs are sweep parameters, so cycles
 *  cannot be baked in at predecode). Mirrors Instruction::latency. */
enum class LatClass : uint8_t
{
    VAlu,    ///< cfg.valuLatency
    VAluF64, ///< cfg.valuLatencyF64 (F64 or transcendental)
    SAlu,    ///< cfg.saluLatency
    Branch,  ///< cfg.branchLatency
    Lds,     ///< cfg.ldsLatency
    Mem,     ///< 0: timing comes from the memory system
    Special, ///< 1
};

struct ExecMeta
{
    /** Bounds for the fixed operand arrays. The widest real cases:
     *  V_ADDC_U32 carries 5 RegOperands (dst + 2 srcs + implicit VCC
     *  use and def); an HSAIL f64 ALU op touches 8 expanded vector
     *  registers (2-wide dst + three 2-wide sources). predecode
     *  panics if a new instruction ever exceeds these. */
    static constexpr unsigned MaxOps = 8;
    static constexpr unsigned MaxVecRd = 8;
    static constexpr unsigned MaxVecWr = 4;

    ExecHandler handler = nullptr;
    const Instruction *inst = nullptr;

    uint32_t flags = 0;             ///< InstFlags, pre-flattened
    FuType fu = FuType::Special;
    LatClass latClass = LatClass::Special;
    uint8_t size = 0;               ///< encoded bytes (4..12)

    /** regOps(), copied in order. */
    uint8_t numOps = 0;
    RegOperand ops[MaxOps];

    /** Vector operand registers, width-expanded, in operand order
     *  (reads: isDef == false; writes: isDef == true). Duplicates are
     *  preserved — V_MAC_F32 legitimately lists its dst both ways. */
    uint8_t numVecRd = 0;
    uint8_t numVecWr = 0;
    uint16_t vecRd[MaxVecRd];
    uint16_t vecWr[MaxVecWr];

    /** @{ Predigested ISA constants. GCN3: c0/c1 are the s_waitcnt
     *  vmcnt/lgkmcnt thresholds; imm is the SOPP immediate (s_nop
     *  wait states). Unused elsewhere. */
    uint32_t c0 = 0;
    uint32_t c1 = 0;
    uint32_t imm = 0;
    /** @} */

    bool is(InstFlags f) const { return (flags & f) != 0; }

    /** Result latency in cycles; bit-identical to
     *  Instruction::latency(cfg) (asserted per instruction by
     *  tests/test_exec_engine.cc). */
    unsigned
    latency(const GpuConfig &cfg) const
    {
        switch (latClass) {
          case LatClass::VAlu: return cfg.valuLatency;
          case LatClass::VAluF64: return cfg.valuLatencyF64;
          case LatClass::SAlu: return cfg.saluLatency;
          case LatClass::Branch: return cfg.branchLatency;
          case LatClass::Lds: return cfg.ldsLatency;
          case LatClass::Mem: return 0;
          case LatClass::Special: return 1;
        }
        return 1;
    }
};

} // namespace last::arch

#endif // LAST_ARCH_EXEC_META_HH
