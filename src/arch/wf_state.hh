/**
 * @file
 * Architectural wavefront state shared by both ISA front ends.
 *
 * One structure deliberately holds the union of what the two
 * abstractions need; the fields used differ by ISA exactly as the
 * paper describes:
 *
 *  - HSAIL: a large flat vector register space (up to 2,048/WF), a
 *    simulator reconvergence stack for divergence, a simulator-managed
 *    ABI (kernarg/private base addresses held in simulator state, not
 *    registers).
 *  - GCN3: 256 VGPRs + 102 SGPRs (+ VCC/EXEC/SCC), the exec mask
 *    visible to instructions, waitcnt counters, and ABI-initialized
 *    registers (AQL packet address, kernarg base, workgroup id, ...).
 *  - PTXL: one flat general register file (no scalar pipe), an
 *    8-entry predicate file, and compiler-inserted convergence
 *    barriers (BSSY/BSYNC) with a hardware warp-split stack instead
 *    of the simulator reconvergence stack.
 */

#ifndef LAST_ARCH_WF_STATE_HH
#define LAST_ARCH_WF_STATE_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "arch/instruction.hh"
#include "common/config.hh"
#include "common/logging.hh"
#include "common/types.hh"
#include "memory/functional_memory.hh"
#include "memory/lds.hh"

namespace last::arch
{

/** Per-lane view of one 32-bit vector register. */
using LaneVec = std::array<uint32_t, WavefrontSize>;

/** Reconvergence-stack entry (HSAIL divergence handling). */
struct RsEntry
{
    Addr pc;       ///< where this path continues
    Addr rpc;      ///< reconvergence PC (immediate post-dominator)
    uint64_t mask; ///< lanes active on this path
};

/** PTXL warp-split entry: a deferred divergent path, resumed by the
 *  next BSYNC. Hardware state on NVIDIA parts (the "convergence
 *  barrier" scheduler), not simulator bookkeeping. */
struct PtxlSplit
{
    Addr pc;       ///< where the deferred path continues
    uint64_t mask; ///< lanes parked on it
};

/**
 * Timing-only descriptor of a memory access produced by execute().
 * Functional data movement already happened inside execute(); the CU
 * uses this descriptor for coalescing, cache timing, waitcnt/scoreboard
 * release, and footprint/uniqueness statistics.
 */
struct MemAccess
{
    enum class Kind
    {
        VectorLoad,
        VectorStore,
        ScalarLoad,   ///< GCN3 s_load through the scalar D$
        LdsLoad,
        LdsStore,
        KernargDirect ///< HSAIL simulator-state access: fixed latency
    };

    Kind kind = Kind::VectorLoad;
    unsigned bytesPerLane = 4;
    uint64_t mask = 0;                 ///< active lanes (vector kinds)
    std::array<Addr, WavefrontSize> laneAddrs{};
    Addr scalarAddr = 0;               ///< scalar kinds
    unsigned scalarBytes = 0;

    bool isLoad() const
    {
        return kind == Kind::VectorLoad || kind == Kind::ScalarLoad ||
               kind == Kind::LdsLoad || kind == Kind::KernargDirect;
    }
    bool
    countsVmcnt() const
    {
        return kind == Kind::VectorLoad || kind == Kind::VectorStore;
    }
    bool
    countsLgkmcnt() const
    {
        return kind == Kind::ScalarLoad || kind == Kind::LdsLoad ||
               kind == Kind::LdsStore;
    }
};

class KernelCode;

/** Everything an instruction can read or write. */
struct WfState
{
    /** @{ Identity and launch geometry (1-D grids). */
    IsaKind isa = IsaKind::HSAIL;
    const KernelCode *code = nullptr;
    unsigned wgId = 0;          ///< workgroup id (x)
    unsigned wgSize = 0;        ///< work-items per workgroup
    unsigned gridSize = 0;      ///< total work-items
    unsigned wfIdInWg = 0;      ///< wavefront index within workgroup
    unsigned firstWorkitem = 0; ///< global id of lane 0
    /** @} */

    /** @{ Control flow. */
    Addr pc = 0;      ///< byte offset of the current instruction
    Addr nextPc = 0;  ///< set by execute()
    bool done = false;
    bool atBarrier = false;
    /** @} */

    /** @{ Register state. */
    std::vector<LaneVec> vregs;       ///< allocated vector registers
    std::array<uint32_t, 102> sgprs{};///< GCN3 scalar registers
    uint64_t exec = ~0ull;            ///< GCN3 exec mask
    uint64_t vcc = 0;                 ///< GCN3 vector condition code
    bool scc = false;                 ///< GCN3 scalar condition code
    /** @} */

    /** HSAIL reconvergence stack; the top entry's mask is the active
     *  mask. Never empty while the WF runs. */
    std::vector<RsEntry> rs;

    /** @{ PTXL convergence-barrier state. BSSY Bn snapshots the
     * current active mask into cbarExpected[n]; divergent predicated
     * branches park the taken lanes on the split stack; BSYNC Bn
     * accumulates arrivals and either switches to a parked split or,
     * once every expected lane arrived, restores the full mask. */
    static constexpr unsigned NumPtxlBarriers = 16;
    static constexpr unsigned NumPtxlPregs = 8;
    std::array<uint64_t, NumPtxlBarriers> cbarExpected{};
    std::array<uint64_t, NumPtxlBarriers> cbarArrived{};
    std::vector<PtxlSplit> splits;
    /** Predicate registers: one 64-bit lane mask each. */
    std::array<uint64_t, NumPtxlPregs> pregs{};
    /** @} */

    /** @{ GCN3 waitcnt bookkeeping (maintained by the CU). */
    unsigned vmCnt = 0;   ///< outstanding vector memory ops
    unsigned lgkmCnt = 0; ///< outstanding scalar-mem/LDS ops
    /** @} */

    /** @{ Memory attachment. */
    mem::FunctionalMemory *memory = nullptr;
    mem::LdsBlock *lds = nullptr;
    /** @} */

    /** @{ ABI / segment metadata.
     * GCN3 reads these *through registers* that the command processor
     * initialized; HSAIL instructions read them directly from here
     * (the "simulator-defined ABI" of the paper). */
    Addr aqlPacketAddr = 0;
    Addr kernargBase = 0;
    Addr privateBase = 0;   ///< base of this launch's private arena
    Addr spillBase = 0;     ///< base of this launch's spill arena
    uint64_t privateStridePerWi = 0;
    uint64_t spillStridePerWi = 0;
    /** @} */

    /** Memory access produced by the last execute(), if any. */
    std::optional<MemAccess> pendingAccess;

    /** True while a conditionally-skipped instruction should still
     *  count statistics (always true; placeholder for extensions). */

    /** @{ Mask helpers. */
    uint64_t
    activeMask() const
    {
        if (isa != IsaKind::HSAIL)
            return exec; // GCN3 and PTXL both expose the mask in exec
        panic_if(rs.empty(),
                 "HSAIL wavefront with empty reconvergence stack");
        return rs.back().mask;
    }
    static uint64_t laneBit(unsigned lane) { return 1ull << lane; }
    bool laneActive(unsigned lane) const
    {
        return (activeMask() & laneBit(lane)) != 0;
    }
    /** @} */

    /** @{ Vector register accessors. */
    uint32_t
    readVreg(unsigned idx, unsigned lane) const
    {
        return vregs[idx][lane];
    }
    void
    writeVreg(unsigned idx, unsigned lane, uint32_t val)
    {
        vregs[idx][lane] = val;
    }
    uint64_t readVreg64(unsigned idx, unsigned lane) const;
    void writeVreg64(unsigned idx, unsigned lane, uint64_t val);
    /** @} */

    /** @{ Scalar register accessors with GCN3 special-index handling
     * (106/107 = VCC, 126/127 = EXEC). */
    uint32_t readSgpr(unsigned idx) const;
    void writeSgpr(unsigned idx, uint32_t val);
    uint64_t readSgpr64(unsigned idx) const;
    void writeSgpr64(unsigned idx, uint64_t val);
    /** @} */

    /** Global work-item id of a lane. */
    unsigned
    globalId(unsigned lane) const
    {
        return firstWorkitem + lane;
    }

    /** Initialize control state for launch (builds the RS root entry
     *  for HSAIL, sets exec for partial wavefronts). */
    void initLaunch(uint64_t initial_mask);
};

} // namespace last::arch

#endif // LAST_ARCH_WF_STATE_HH
