#include "arch/wf_state.hh"

#include "common/logging.hh"

namespace last::arch
{

uint64_t
WfState::readVreg64(unsigned idx, unsigned lane) const
{
    return uint64_t(vregs[idx][lane]) |
           (uint64_t(vregs[idx + 1][lane]) << 32);
}

void
WfState::writeVreg64(unsigned idx, unsigned lane, uint64_t val)
{
    vregs[idx][lane] = uint32_t(val);
    vregs[idx + 1][lane] = uint32_t(val >> 32);
}

uint32_t
WfState::readSgpr(unsigned idx) const
{
    switch (idx) {
      case RegVccLo: return uint32_t(vcc);
      case RegVccHi: return uint32_t(vcc >> 32);
      case RegExecLo: return uint32_t(exec);
      case RegExecHi: return uint32_t(exec >> 32);
      default:
        panic_if(idx >= sgprs.size(), "sgpr index %u out of range", idx);
        return sgprs[idx];
    }
}

void
WfState::writeSgpr(unsigned idx, uint32_t val)
{
    switch (idx) {
      case RegVccLo:
        vcc = (vcc & 0xffffffff00000000ull) | val;
        return;
      case RegVccHi:
        vcc = (vcc & 0xffffffffull) | (uint64_t(val) << 32);
        return;
      case RegExecLo:
        exec = (exec & 0xffffffff00000000ull) | val;
        return;
      case RegExecHi:
        exec = (exec & 0xffffffffull) | (uint64_t(val) << 32);
        return;
      default:
        panic_if(idx >= sgprs.size(), "sgpr index %u out of range", idx);
        sgprs[idx] = val;
    }
}

uint64_t
WfState::readSgpr64(unsigned idx) const
{
    return uint64_t(readSgpr(idx)) | (uint64_t(readSgpr(idx + 1)) << 32);
}

void
WfState::writeSgpr64(unsigned idx, uint64_t val)
{
    writeSgpr(idx, uint32_t(val));
    writeSgpr(idx + 1, uint32_t(val >> 32));
}

void
WfState::initLaunch(uint64_t initial_mask)
{
    pc = 0;
    nextPc = 0;
    done = false;
    atBarrier = false;
    vmCnt = 0;
    lgkmCnt = 0;
    pendingAccess.reset();
    cbarExpected.fill(0);
    cbarArrived.fill(0);
    splits.clear();
    pregs.fill(0);
    if (isa == IsaKind::HSAIL) {
        exec = ~0ull;
        rs.clear();
        rs.push_back({0, InvalidAddr, initial_mask});
    } else {
        exec = initial_mask;
        rs.clear();
    }
}

} // namespace last::arch
