#include "arch/kernel_code.hh"

#include <sstream>

#include "common/logging.hh"

namespace last::arch
{

const char *
fuTypeName(FuType fu)
{
    switch (fu) {
      case FuType::VAlu: return "VALU";
      case FuType::SAlu: return "SALU";
      case FuType::Branch: return "BRANCH";
      case FuType::VMem: return "VMEM";
      case FuType::SMem: return "SMEM";
      case FuType::Lds: return "LDS";
      case FuType::Special: return "SPECIAL";
    }
    return "?";
}

KernelCode::KernelCode(IsaKind isa, std::string name)
    : isaKind(isa), kernelName(std::move(name))
{
}

size_t
KernelCode::append(std::unique_ptr<Instruction> inst)
{
    panic_if(isSealed, "appending to sealed kernel %s", kernelName.c_str());
    insts.push_back(std::move(inst));
    return insts.size() - 1;
}

void
KernelCode::seal()
{
    panic_if(isSealed, "kernel %s sealed twice", kernelName.c_str());
    offsets.resize(insts.size());
    Addr off = 0;
    for (size_t i = 0; i < insts.size(); ++i) {
        offsets[i] = off;
        off += insts[i]->sizeBytes();
    }
    totalBytes = off;
    isSealed = true;
}

void
KernelCode::setCodeBase(Addr b) const
{
    Addr expected = 0;
    if (base.compare_exchange_strong(expected, b,
                                     std::memory_order_relaxed))
        return;
    panic_if(expected != b,
             "kernel %s re-based from %llx to %llx: shared artifacts "
             "must load at one deterministic address",
             kernelName.c_str(), (unsigned long long)expected,
             (unsigned long long)b);
}

size_t
KernelCode::indexAt(Addr offset) const
{
    // Binary search over the (sorted) offsets.
    size_t lo = 0, hi = offsets.size();
    while (lo < hi) {
        size_t mid = (lo + hi) / 2;
        if (offsets[mid] < offset)
            lo = mid + 1;
        else
            hi = mid;
    }
    panic_if(lo >= offsets.size() || offsets[lo] != offset,
             "bad pc offset %llu in kernel %s",
             (unsigned long long)offset, kernelName.c_str());
    return lo;
}

std::string
KernelCode::disassemble() const
{
    std::ostringstream os;
    for (size_t i = 0; i < insts.size(); ++i) {
        os << "  [" << offsets[i] << "]\t" << insts[i]->disassemble()
           << "\n";
    }
    return os.str();
}

} // namespace last::arch
