#include "arch/kernel_code.hh"

#include <sstream>

#include "common/logging.hh"

namespace last::arch
{

const char *
fuTypeName(FuType fu)
{
    switch (fu) {
      case FuType::VAlu: return "VALU";
      case FuType::SAlu: return "SALU";
      case FuType::Branch: return "BRANCH";
      case FuType::VMem: return "VMEM";
      case FuType::SMem: return "SMEM";
      case FuType::Lds: return "LDS";
      case FuType::Special: return "SPECIAL";
    }
    return "?";
}

KernelCode::KernelCode(IsaKind isa, std::string name)
    : isaKind(isa), kernelName(std::move(name))
{
}

size_t
KernelCode::append(std::unique_ptr<Instruction> inst)
{
    panic_if(isSealed, "appending to sealed kernel %s", kernelName.c_str());
    insts.push_back(std::move(inst));
    return insts.size() - 1;
}

void
KernelCode::seal()
{
    panic_if(isSealed, "kernel %s sealed twice", kernelName.c_str());
    offsets.resize(insts.size());
    Addr off = 0;
    for (size_t i = 0; i < insts.size(); ++i) {
        offsets[i] = off;
        off += insts[i]->sizeBytes();
    }
    totalBytes = off;
    isSealed = true;
}

void
KernelCode::setCodeBase(Addr b) const
{
    Addr expected = 0;
    if (base.compare_exchange_strong(expected, b,
                                     std::memory_order_relaxed))
        return;
    panic_if(expected != b,
             "kernel %s re-based from %llx to %llx: shared artifacts "
             "must load at one deterministic address",
             kernelName.c_str(), (unsigned long long)expected,
             (unsigned long long)b);
}

const std::vector<ExecMeta> &
KernelCode::execMetas() const
{
    panic_if(!isSealed, "predecode of unsealed kernel %s",
             kernelName.c_str());
    std::call_once(metasOnce, [this] { buildMetas(); });
    return metas;
}

void
KernelCode::buildMetas() const
{
    metas.resize(insts.size());
    for (size_t i = 0; i < insts.size(); ++i) {
        const Instruction &in = *insts[i];
        ExecMeta &m = metas[i];
        m.inst = &in;
        m.flags = in.flags();
        m.fu = in.fuType();
        m.size = uint8_t(sizeOf(i));

        switch (m.fu) {
          case FuType::VAlu:
            m.latClass = (m.is(IsF64) || m.is(IsTrans))
                             ? LatClass::VAluF64
                             : LatClass::VAlu;
            break;
          case FuType::SAlu: m.latClass = LatClass::SAlu; break;
          case FuType::Branch: m.latClass = LatClass::Branch; break;
          case FuType::Lds: m.latClass = LatClass::Lds; break;
          case FuType::VMem:
          case FuType::SMem: m.latClass = LatClass::Mem; break;
          case FuType::Special: m.latClass = LatClass::Special; break;
        }

        const auto &ops = in.regOps();
        panic_if(ops.size() > ExecMeta::MaxOps,
                 "%s: %zu operands exceed ExecMeta::MaxOps",
                 in.disassemble().c_str(), ops.size());
        m.numOps = uint8_t(ops.size());
        for (size_t k = 0; k < ops.size(); ++k)
            m.ops[k] = ops[k];

        // Width-expanded vector register lists, preserving operand
        // order (the reuse-distance probe is order-sensitive) and
        // duplicates (V_MAC_F32 lists its dst as both use and def).
        for (const auto &op : ops) {
            if (op.cls != RegClass::Vector)
                continue;
            for (unsigned w = 0; w < op.width; ++w) {
                if (op.isDef) {
                    panic_if(m.numVecWr >= ExecMeta::MaxVecWr,
                             "%s: too many vector defs",
                             in.disassemble().c_str());
                    m.vecWr[m.numVecWr++] = uint16_t(op.idx + w);
                } else {
                    panic_if(m.numVecRd >= ExecMeta::MaxVecRd,
                             "%s: too many vector uses",
                             in.disassemble().c_str());
                    m.vecRd[m.numVecRd++] = uint16_t(op.idx + w);
                }
            }
        }

        in.predecode(m);
        panic_if(!m.handler, "%s: predecode installed no handler",
                 in.disassemble().c_str());
    }
    metasBuilt = true;
}

size_t
KernelCode::indexAt(Addr offset) const
{
    // Binary search over the (sorted) offsets.
    size_t lo = 0, hi = offsets.size();
    while (lo < hi) {
        size_t mid = (lo + hi) / 2;
        if (offsets[mid] < offset)
            lo = mid + 1;
        else
            hi = mid;
    }
    panic_if(lo >= offsets.size() || offsets[lo] != offset,
             "bad pc offset %llu in kernel %s",
             (unsigned long long)offset, kernelName.c_str());
    return lo;
}

std::string
KernelCode::disassemble() const
{
    std::ostringstream os;
    for (size_t i = 0; i < insts.size(); ++i) {
        os << "  [" << offsets[i] << "]\t" << insts[i]->disassemble()
           << "\n";
    }
    return os.str();
}

} // namespace last::arch
