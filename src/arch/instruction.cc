#include "arch/instruction.hh"

#include "arch/exec_meta.hh"
#include "arch/wf_state.hh"

namespace last::arch
{

namespace
{

/** Fallback handler: dispatch through the virtual reference engine.
 *  Used for instructions whose ISA predecode() installs nothing
 *  better; correct for every instruction by construction. */
void
refExecHandler(const ExecMeta &m, WfState &wf)
{
    m.inst->execute(wf);
}

} // namespace

void
Instruction::predecode(ExecMeta &m) const
{
    m.handler = refExecHandler;
}

unsigned
Instruction::latency(const GpuConfig &cfg) const
{
    switch (fuType()) {
      case FuType::VAlu:
        return is(IsF64) || is(IsTrans) ? cfg.valuLatencyF64
                                        : cfg.valuLatency;
      case FuType::SAlu:
        return cfg.saluLatency;
      case FuType::Branch:
        return cfg.branchLatency;
      case FuType::Lds:
        return cfg.ldsLatency;
      case FuType::VMem:
      case FuType::SMem:
        return 0; // timing comes from the memory system
      case FuType::Special:
        return 1;
    }
    return 1;
}

std::string
Instruction::mnemonic() const
{
    std::string d = disassemble();
    auto sp = d.find_first_of(" \t");
    return sp == std::string::npos ? d : d.substr(0, sp);
}

} // namespace last::arch
