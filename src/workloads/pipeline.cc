/**
 * @file
 * pipeline: multi-kernel producer/consumer chain (stress workload; not
 * part of Table 5 — see EXPERIMENTS.md "Stress workloads beyond
 * Table 5").
 *
 * Three distinct kernels (produce -> transform -> reduce), each with
 * its own kernarg layout, run over TWO independent buffer lanes. The
 * two lanes of each stage are dispatched asynchronously and overlap on
 * the GPU (Runtime::dispatchAsync + sync); consecutive stages are
 * separated by a sync because they are data-dependent. Exercises
 * dispatch overlap, the per-launch accounting, and the per-kernel
 * kernarg/segment ABI re-initialization — HSAIL maps fresh arenas on
 * every one of the six launches, GCN3 reuses its per-process arena.
 */

#include "workloads/workload_impl.hh"

namespace last::workloads
{

namespace
{

class Pipeline : public Workload
{
  public:
    explicit Pipeline(const WorkloadScale &s)
        : n(scaleGrid(2048, s)),
          seed(s.seed ? s.seed : 0x919E11EEull)
    {
    }

    std::string name() const override { return "pipeline"; }

    bool
    run(runtime::Runtime &rt, IsaKind isa) override
    {
        using namespace hsail;
        Rng rng(seed);

        std::vector<uint32_t> in0(n), in1(n);
        for (auto &v : in0)
            v = uint32_t(rng.next());
        for (auto &v : in1)
            v = uint32_t(rng.next());

        // Two disjoint buffer lanes: in -> a -> b -> out per lane.
        Addr d_in[2], d_a[2], d_b[2];
        for (int l = 0; l < 2; ++l) {
            d_in[l] = rt.allocGlobal(n * 4);
            d_a[l] = rt.allocGlobal(n * 4);
            d_b[l] = rt.allocGlobal(n * 4);
        }
        rt.writeGlobal(d_in[0], in0.data(), n * 4);
        rt.writeGlobal(d_in[1], in1.data(), n * 4);

        KernelBuilder prod("pipe_produce");
        prod.setKernargBytes(16);
        {
            Val p_in = prod.ldKernarg(DataType::U64, 0);
            Val p_out = prod.ldKernarg(DataType::U64, 8);
            Val i = prod.workitemAbsId();
            Val v = prod.ldGlobal(DataType::U32, addrAt(prod, p_in, i, 4));
            Val mixed = prod.add(prod.mul(v, prod.immU32(2654435761u)), i);
            prod.stGlobal(mixed, addrAt(prod, p_out, i, 4));
        }
        auto &prod_code = prepare(prod.build(), isa, rt.config());

        KernelBuilder xform("pipe_transform");
        xform.setKernargBytes(24);
        {
            Val p_in = xform.ldKernarg(DataType::U64, 0);
            Val p_out = xform.ldKernarg(DataType::U64, 8);
            Val bias = xform.ldKernarg(DataType::U32, 16);
            Val i = xform.workitemAbsId();
            Val v = xform.ldGlobal(DataType::U32, addrAt(xform, p_in, i, 4));
            Val t = xform.add(xform.xor_(v, bias),
                              xform.shr(v, xform.immU32(3)));
            xform.stGlobal(t, addrAt(xform, p_out, i, 4));
        }
        auto &xform_code = prepare(xform.build(), isa, rt.config());

        KernelBuilder red("pipe_reduce");
        red.setKernargBytes(24);
        {
            Val p_in = red.ldKernarg(DataType::U64, 0);
            Val p_out = red.ldKernarg(DataType::U64, 8);
            Val nn = red.ldKernarg(DataType::U32, 16);
            Val i = red.workitemAbsId();
            Val j = red.add(i, red.immU32(1));
            Val wrapped = red.cmov(red.cmp(CmpOp::Eq, j, nn),
                                   red.immU32(0), j);
            Val v = red.ldGlobal(DataType::U32, addrAt(red, p_in, i, 4));
            Val w = red.ldGlobal(DataType::U32,
                                 addrAt(red, p_in, wrapped, 4));
            red.stGlobal(red.add(v, w), addrAt(red, p_out, i, 4));
        }
        auto &red_code = prepare(red.build(), isa, rt.config());

        struct Args2
        {
            uint64_t in, out;
        };
        struct Args3
        {
            uint64_t in, out;
            uint32_t k;
        };

        // Stage 1: both lanes in flight together.
        for (int l = 0; l < 2; ++l) {
            Args2 a{d_in[l], d_a[l]};
            rt.dispatchAsync(prod_code, n, 256, &a, sizeof(a));
        }
        rt.sync();
        // Stage 2.
        for (int l = 0; l < 2; ++l) {
            Args3 a{d_a[l], d_b[l], Bias[l]};
            rt.dispatchAsync(xform_code, n, 256, &a, sizeof(a));
        }
        rt.sync();
        // Stage 3 writes back over the stage-1 buffers.
        for (int l = 0; l < 2; ++l) {
            Args3 a{d_b[l], d_a[l], n};
            rt.dispatchAsync(red_code, n, 256, &a, sizeof(a));
        }
        rt.sync();

        // Host reference.
        bool ok = true;
        for (int l = 0; l < 2 && ok; ++l) {
            const auto &in = l == 0 ? in0 : in1;
            std::vector<uint32_t> b(n);
            for (unsigned i = 0; i < n; ++i) {
                uint32_t a = in[i] * 2654435761u + i;
                b[i] = (a ^ Bias[l]) + (a >> 3);
            }
            std::vector<uint32_t> got(n);
            rt.readGlobal(d_a[l], got.data(), n * 4);
            for (unsigned i = 0; i < n && ok; ++i)
                ok = got[i] == b[i] + b[(i + 1) % n];
            digestBytes(got.data(), n * 4);
        }
        return ok;
    }

  private:
    static constexpr uint32_t Bias[2] = {0x9E3779B9u, 0x85EBCA6Bu};

    unsigned n;
    uint64_t seed;
};

} // namespace

std::unique_ptr<Workload>
makePipeline(const WorkloadScale &s)
{
    return std::make_unique<Pipeline>(s);
}

} // namespace last::workloads
