/**
 * @file
 * CoMD: DOE molecular-dynamics proxy (Table 5). A cell-list force
 * kernel with a cutoff test: the candidate-neighbour loop is uniform
 * but the force computation runs under a divergent if whose pass rate
 * is low, giving the branch-heavy instruction mix and the ~20% SIMD
 * utilization the paper reports. The in-cutoff path includes an f32
 * divide (Newton-Raphson expansion under GCN3).
 */

#include "workloads/workload_impl.hh"

namespace last::workloads
{

namespace
{

class CoMD : public Workload
{
  public:
    explicit CoMD(const WorkloadScale &s)
        : atoms(scaleGrid(1024, s)), neighbors(24)
    {
    }

    std::string name() const override { return "CoMD"; }

    bool
    run(runtime::Runtime &rt, IsaKind isa) override
    {
        using namespace hsail;
        Rng rng(0xc03d);
        const float cutoff2 = 0.05f;

        std::vector<float> px(atoms), py(atoms), pz(atoms);
        for (unsigned i = 0; i < atoms; ++i) {
            px[i] = rng.nextFloat();
            py[i] = rng.nextFloat();
            pz[i] = rng.nextFloat();
        }
        std::vector<uint32_t> nbr(size_t(atoms) * neighbors);
        for (auto &n : nbr)
            n = uint32_t(rng.nextBounded(atoms));

        Addr d_x = rt.allocGlobal(atoms * 4);
        Addr d_y = rt.allocGlobal(atoms * 4);
        Addr d_z = rt.allocGlobal(atoms * 4);
        Addr d_n = rt.allocGlobal(nbr.size() * 4);
        Addr d_f = rt.allocGlobal(atoms * 4);
        rt.writeGlobal(d_x, px.data(), px.size() * 4);
        rt.writeGlobal(d_y, py.data(), py.size() * 4);
        rt.writeGlobal(d_z, pz.data(), pz.size() * 4);
        rt.writeGlobal(d_n, nbr.data(), nbr.size() * 4);

        KernelBuilder kb("comd_force");
        kb.setKernargBytes(48);
        Val p_x = kb.ldKernarg(DataType::U64, 0);
        Val p_y = kb.ldKernarg(DataType::U64, 8);
        Val p_z = kb.ldKernarg(DataType::U64, 16);
        Val p_n = kb.ldKernarg(DataType::U64, 24);
        Val p_f = kb.ldKernarg(DataType::U64, 32);
        Val nnb = kb.ldKernarg(DataType::U32, 40);
        Val i = kb.workitemAbsId();
        Val xi = kb.ldGlobal(DataType::F32, addrAt(kb, p_x, i, 4));
        Val yi = kb.ldGlobal(DataType::F32, addrAt(kb, p_y, i, 4));
        Val zi = kb.ldGlobal(DataType::F32, addrAt(kb, p_z, i, 4));
        Val fsum = kb.immF32(0.0f);
        Val m = kb.immU32(0);
        Val one = kb.immU32(1);
        Val base = kb.mul(i, nnb);
        Val c2 = kb.immF32(cutoff2);
        Val zf = kb.immF32(0.0f);
        kb.doBegin();
        {
            Val slot = kb.add(base, m);
            Val jidx =
                kb.ldGlobal(DataType::U32, addrAt(kb, p_n, slot, 4));
            Val xj = kb.ldGlobal(DataType::F32, addrAt(kb, p_x, jidx, 4));
            Val yj = kb.ldGlobal(DataType::F32, addrAt(kb, p_y, jidx, 4));
            Val zj = kb.ldGlobal(DataType::F32, addrAt(kb, p_z, jidx, 4));
            Val dx = kb.sub(xi, xj);
            Val dy = kb.sub(yi, yj);
            Val dz = kb.sub(zi, zj);
            Val r2 = kb.fma_(dx, dx,
                             kb.fma_(dy, dy, kb.mul(dz, dz)));
            Val in_cut = kb.and_(kb.cmp(CmpOp::Lt, r2, c2),
                                 kb.cmp(CmpOp::Gt, r2, zf));
            kb.ifBegin(in_cut);
            {
                // Lennard-Jones-ish: r2i = 1/r2; r6 = r2i^3;
                // f = r6 * (r6 - 0.5).
                Val r2i = kb.div(kb.immF32(1.0f), r2);
                Val r6 = kb.mul(kb.mul(r2i, r2i), r2i);
                Val fm = kb.mul(r6, kb.sub(r6, kb.immF32(0.5f)));
                kb.emitAluTo(Opcode::Add, fsum, fsum, fm);
            }
            kb.ifEnd();
            kb.emitAluTo(Opcode::Add, m, m, one);
        }
        kb.doEnd(kb.cmp(CmpOp::Lt, m, nnb));
        kb.stGlobal(fsum, addrAt(kb, p_f, i, 4));

        auto &code = prepare(kb.build(), isa, rt.config());

        struct Args
        {
            uint64_t x, y, z, n, f;
            uint32_t nnb;
        } args{d_x, d_y, d_z, d_n, d_f, neighbors};
        rt.dispatch(code, atoms, 256, &args, sizeof(args));

        std::vector<float> got(atoms);
        rt.readGlobal(d_f, got.data(), got.size() * 4);
        bool ok = true;
        for (unsigned a = 0; a < atoms && ok; ++a) {
            float fsum_h = 0.0f;
            for (unsigned mm = 0; mm < neighbors; ++mm) {
                uint32_t j = nbr[size_t(a) * neighbors + mm];
                float dx = px[a] - px[j];
                float dy = py[a] - py[j];
                float dz = pz[a] - pz[j];
                float r2 =
                    std::fma(dx, dx, std::fma(dy, dy, dz * dz));
                if (r2 < cutoff2 && r2 > 0.0f) {
                    float r2i = 1.0f / r2;
                    float r6 = r2i * r2i * r2i;
                    fsum_h += r6 * (r6 - 0.5f);
                }
            }
            ok = got[a] == fsum_h;
        }
        digestBytes(got.data(), got.size() * 4);
        return ok;
    }

  private:
    unsigned atoms;
    unsigned neighbors;
};

} // namespace

std::unique_ptr<Workload>
makeCoMD(const WorkloadScale &s)
{
    return std::make_unique<CoMD>(s);
}

} // namespace last::workloads
