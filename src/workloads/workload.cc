#include "workloads/workload.hh"

#include "common/logging.hh"
#include "finalizer/finalizer.hh"
#include "finalizer/regalloc.hh"

namespace last::workloads
{

arch::KernelCode &
Workload::prepare(hsail::IlKernel &&il, IsaKind isa,
                  const GpuConfig &cfg)
{
    ownedIl.push_back(std::move(il));
    hsail::IlKernel &kept = ownedIl.back();
    // The high-level compiler's register allocation over the IL's
    // 2,048-register space happens for both paths (the finalizer then
    // re-allocates into the much smaller GCN3 files).
    finalizer::compactIlRegisters(kept);
    if (isa == IsaKind::HSAIL)
        return *kept.code;
    ownedKernels.push_back(finalizer::finalize(kept, cfg));
    return *ownedKernels.back();
}

void
Workload::digestBytes(const void *data, size_t len)
{
    const auto *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < len; ++i) {
        digest ^= p[i];
        digest *= 1099511628211ull;
    }
}

std::vector<std::string>
workloadNames()
{
    return {"ArrayBW", "BitonicSort", "CoMD",   "FFT",  "HPGMG",
            "LULESH",  "MD",          "SNAP",   "SpMV", "XSBench"};
}

// makeWorkload() lives in factory.cc next to the implementations.

} // namespace last::workloads
