#include "workloads/workload.hh"

#include "common/logging.hh"
#include "finalizer/backend.hh"
#include "finalizer/regalloc.hh"
#include "sim/artifact_cache.hh"

namespace last::workloads
{

namespace
{

/** Run the (expensive) compile pipeline: IL register compaction for
 *  every path, plus the per-ISA backend lowering for machine ISAs. */
std::shared_ptr<const arch::KernelCode>
buildArtifact(hsail::IlKernel &&il, IsaKind isa, const GpuConfig &cfg)
{
    hsail::IlKernel kept = std::move(il);
    // The high-level compiler's register allocation over the IL's
    // 2,048-register space happens for every path (a machine backend
    // then re-allocates into its much smaller files).
    finalizer::compactIlRegisters(kept);
    if (const auto *backend = finalizer::backendFor(isa))
        return backend->lower(kept, cfg, nullptr);
    return std::shared_ptr<const arch::KernelCode>(
        std::move(kept.code));
}

} // namespace

const arch::KernelCode &
Workload::prepare(hsail::IlKernel &&il, IsaKind isa,
                  const GpuConfig &cfg)
{
    unsigned seq = prepareSeq++;

    // Fault-injection runs execute perturbed; they must never share
    // artifacts with (or pollute the cache of) clean runs.
    bool cacheable =
        sim::ArtifactCache::enabled() && cfg.faultPlan == nullptr;
    if (cacheable) {
        uint64_t content = hsail::ilDigest(il);
        // Machine artifacts additionally depend on the backend's
        // config knobs (the GCN3 fold predates the Backend interface
        // and must stay byte-identical so existing cache rows keep
        // their digests).
        if (const auto *backend = finalizer::backendFor(isa))
            content = (content ^ backend->configDigest(cfg)) *
                      1099511628211ull;
        auto artifact = sim::ArtifactCache::instance().getOrBuild(
            {name(), isa, artifactScale, seq, artifactParams}, content,
            [&] { return buildArtifact(std::move(il), isa, cfg); });
        sharedKernels.push_back(artifact);
        return *sharedKernels.back();
    }

    ownedIl.push_back(std::move(il));
    hsail::IlKernel &kept = ownedIl.back();
    finalizer::compactIlRegisters(kept);
    const auto *backend = finalizer::backendFor(isa);
    if (!backend)
        return *kept.code;
    ownedKernels.push_back(backend->lower(kept, cfg, nullptr));
    return *ownedKernels.back();
}

void
Workload::digestBytes(const void *data, size_t len)
{
    const auto *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < len; ++i) {
        digest ^= p[i];
        digest *= 1099511628211ull;
    }
}

std::vector<std::string>
workloadNames()
{
    return {"ArrayBW", "BitonicSort", "CoMD",   "FFT",  "HPGMG",
            "LULESH",  "MD",          "SNAP",   "SpMV", "XSBench"};
}

std::vector<std::string>
stressWorkloadNames()
{
    return {"atomicred", "ldsswizzle", "bfsgraph", "pipeline"};
}

std::vector<std::string>
allWorkloadNames()
{
    auto names = workloadNames();
    for (auto &s : stressWorkloadNames())
        names.push_back(s);
    return names;
}

// makeWorkload() lives in factory.cc next to the implementations.

} // namespace last::workloads
