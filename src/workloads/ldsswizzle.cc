/**
 * @file
 * ldsswizzle: parameterized LDS bank-conflict soak (stress workload;
 * not part of Table 5 — see EXPERIMENTS.md "Stress workloads beyond
 * Table 5").
 *
 * Every lane owns an LDS slot of (stride + pad) words and each round
 * stores its accumulator, barriers, loads a rotating partner's slot,
 * and mixes it in. The slot width is the bank-conflict knob: the
 * 32-bank x 4-byte LDS serializes a stride-8 layout into 16 passes
 * per access, while one word of padding (stride 8 + pad 1 = 9 words,
 * coprime with 32) spreads the same access pattern across every bank.
 * The stride and pad are IL immediates, so each (stride, pad) variant
 * is a distinct kernel — the artifact-cache params-key test rides on
 * that.
 */

#include "workloads/workload_impl.hh"

namespace last::workloads
{

namespace
{

class LdsSwizzle : public Workload
{
  public:
    explicit LdsSwizzle(const WorkloadScale &s)
        : n(scaleGrid(2048, s)),
          stride(s.ldsStrideWords < 0 ? 8u : unsigned(s.ldsStrideWords)),
          pad(s.ldsPadWords < 0 ? 0u : unsigned(s.ldsPadWords)),
          seed(s.seed ? s.seed : 0x1D55A1Full)
    {
        fatal_if(stride < 1 || stride > 32,
                 "ldsswizzle: stride %u words out of range [1,32]",
                 stride);
        fatal_if(pad > 32, "ldsswizzle: pad %u words out of range [0,32]",
                 pad);
    }

    std::string name() const override { return "ldsswizzle"; }

    bool
    run(runtime::Runtime &rt, IsaKind isa) override
    {
        using namespace hsail;
        Rng rng(seed);

        std::vector<uint32_t> in(n);
        for (auto &v : in)
            v = uint32_t(rng.next());

        Addr d_in = rt.allocGlobal(n * 4);
        Addr d_out = rt.allocGlobal(n * 4);
        rt.writeGlobal(d_in, in.data(), n * 4);

        const unsigned slot_bytes = (stride + pad) * 4;

        KernelBuilder kb("lds_swizzle");
        kb.setKernargBytes(16);
        kb.setLdsBytesPerWg(uint64_t(WgSize) * slot_bytes);
        Val p_in = kb.ldKernarg(DataType::U64, 0);
        Val p_out = kb.ldKernarg(DataType::U64, 8);
        Val gid = kb.workitemAbsId();
        Val lid = kb.workitemId();
        Val acc = kb.ldGlobal(DataType::U32, addrAt(kb, p_in, gid, 4));
        Val loff = kb.mul(lid, kb.immU32(slot_bytes));
        Val r = kb.immU32(0);
        Val one = kb.immU32(1);
        kb.doBegin();
        {
            kb.stGroup(acc, loff);
            kb.barrier();
            Val partner = kb.and_(kb.add(kb.add(lid, r), one),
                                  kb.immU32(WgSize - 1));
            Val pv = kb.ldGroup(
                DataType::U32, kb.mul(partner, kb.immU32(slot_bytes)));
            Val mixed = kb.mul(acc, kb.immU32(2654435761u));
            kb.emitAluTo(Opcode::Add, acc, mixed, pv);
            kb.emitAluTo(Opcode::Add, r, r, one);
            // The next round's store must not race this round's loads.
            kb.barrier();
        }
        kb.doEnd(kb.cmp(CmpOp::Lt, r, kb.immU32(Rounds)));
        kb.stGlobal(acc, addrAt(kb, p_out, gid, 4));

        auto &code = prepare(kb.build(), isa, rt.config());

        struct Args
        {
            uint64_t in, out;
        } args{d_in, d_out};
        rt.dispatch(code, n, WgSize, &args, sizeof(args));

        // Host reference: per workgroup, rounds over a snapshot of the
        // previous round's accumulators (that is what the barriers
        // guarantee).
        std::vector<uint32_t> acc_h(in);
        std::vector<uint32_t> prev(WgSize);
        for (unsigned wg = 0; wg < n / WgSize; ++wg) {
            for (unsigned round = 0; round < Rounds; ++round) {
                for (unsigned l = 0; l < WgSize; ++l)
                    prev[l] = acc_h[wg * WgSize + l];
                for (unsigned l = 0; l < WgSize; ++l) {
                    unsigned partner = (l + round + 1) & (WgSize - 1);
                    acc_h[wg * WgSize + l] =
                        prev[l] * 2654435761u + prev[partner];
                }
            }
        }

        std::vector<uint32_t> got(n);
        rt.readGlobal(d_out, got.data(), n * 4);
        bool ok = true;
        for (unsigned i = 0; i < n && ok; ++i)
            ok = got[i] == acc_h[i];
        digestBytes(got.data(), n * 4);
        return ok;
    }

  private:
    static constexpr unsigned WgSize = 256;
    static constexpr unsigned Rounds = 8;

    unsigned n;
    unsigned stride;
    unsigned pad;
    uint64_t seed;
};

} // namespace

std::unique_ptr<Workload>
makeLdsSwizzle(const WorkloadScale &s)
{
    return std::make_unique<LdsSwizzle>(s);
}

} // namespace last::workloads
