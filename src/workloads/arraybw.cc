/**
 * @file
 * Array BW: memory streaming (Table 5). Each work-item strides through
 * a large array in a tight loop and accumulates, then writes its sum.
 * Control flow is a single uniform loop — the case the paper calls
 * "amenable to HSAIL execution" — but operand values at the VRF differ
 * sharply between the ISAs (Figure 10).
 */

#include "workloads/workload_impl.hh"

namespace last::workloads
{

namespace
{

class ArrayBw : public Workload
{
  public:
    explicit ArrayBw(const WorkloadScale &s)
        : grid(scaleGrid(4096, s)), iters(24)
    {
    }

    std::string name() const override { return "ArrayBW"; }

    bool
    run(runtime::Runtime &rt, IsaKind isa) override
    {
        using namespace hsail;
        const unsigned n = grid * iters;

        Addr in = rt.allocGlobal(uint64_t(n) * 4);
        Addr out = rt.allocGlobal(uint64_t(grid) * 4);
        Rng rng(0xa11a5);
        std::vector<float> host(n);
        for (auto &v : host)
            v = rng.nextFloat();
        rt.writeGlobal(in, host.data(), host.size() * 4);

        KernelBuilder kb("arraybw_stream");
        kb.setKernargBytes(24);
        Val a_in = kb.ldKernarg(DataType::U64, 0);
        Val a_out = kb.ldKernarg(DataType::U64, 8);
        Val a_iters = kb.ldKernarg(DataType::U32, 16);
        Val gid = kb.workitemAbsId();
        Val four = kb.immU32(4);
        Val off = kb.cvt(DataType::U64, kb.mul(gid, four));
        Val step =
            kb.cvt(DataType::U64, kb.mul(kb.gridSize(), four));
        Val addr = kb.add(a_in, off);
        Val acc = kb.immF32(0.0f);
        Val i = kb.immU32(0);
        Val one = kb.immU32(1);
        kb.doBegin();
        {
            Val v = kb.ldGlobal(DataType::F32, addr);
            kb.emitAluTo(Opcode::Add, acc, acc, v);
            kb.emitAluTo(Opcode::Add, addr, addr, step);
            kb.emitAluTo(Opcode::Add, i, i, one);
        }
        kb.doEnd(kb.cmp(CmpOp::Lt, i, a_iters));
        kb.stGlobal(acc, kb.add(a_out, off));

        auto &code = prepare(kb.build(), isa, rt.config());

        struct Args
        {
            uint64_t in, out;
            uint32_t iters;
        } args{in, out, iters};
        rt.dispatch(code, grid, 256, &args, sizeof(args));

        // Verify against a host reference.
        std::vector<float> got(grid);
        rt.readGlobal(out, got.data(), got.size() * 4);
        bool ok = true;
        for (unsigned g = 0; g < grid && ok; ++g) {
            float want = 0.0f;
            for (unsigned k = 0; k < iters; ++k)
                want += host[g + k * grid];
            ok = got[g] == want;
        }
        digestBytes(got.data(), got.size() * 4);
        return ok;
    }

  private:
    unsigned grid;
    unsigned iters;
};

} // namespace

std::unique_ptr<Workload>
makeArrayBw(const WorkloadScale &s)
{
    return std::make_unique<ArrayBw>(s);
}

} // namespace last::workloads
