#include "workloads/workload_impl.hh"

namespace last::workloads
{

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const WorkloadScale &scale)
{
    std::unique_ptr<Workload> w;
    if (name == "ArrayBW")
        w = makeArrayBw(scale);
    else if (name == "BitonicSort")
        w = makeBitonicSort(scale);
    else if (name == "CoMD")
        w = makeCoMD(scale);
    else if (name == "FFT")
        w = makeFft(scale);
    else if (name == "HPGMG")
        w = makeHpgmg(scale);
    else if (name == "LULESH")
        w = makeLulesh(scale);
    else if (name == "MD")
        w = makeMd(scale);
    else if (name == "SNAP")
        w = makeSnap(scale);
    else if (name == "SpMV")
        w = makeSpmv(scale);
    else if (name == "XSBench")
        w = makeXsBench(scale);
    else if (name == "VecAdd")
        w = makeVecAdd(scale);
    else
        fatal("unknown workload '%s'", name.c_str());
    // The scale is part of the artifact-cache identity: kernels built
    // for one input size must never be served to another.
    w->setArtifactScale(scale.factor);
    return w;
}

} // namespace last::workloads
