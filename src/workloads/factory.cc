#include "workloads/workload_impl.hh"

namespace last::workloads
{

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const WorkloadScale &scale)
{
    std::unique_ptr<Workload> w;
    if (name == "ArrayBW")
        w = makeArrayBw(scale);
    else if (name == "BitonicSort")
        w = makeBitonicSort(scale);
    else if (name == "CoMD")
        w = makeCoMD(scale);
    else if (name == "FFT")
        w = makeFft(scale);
    else if (name == "HPGMG")
        w = makeHpgmg(scale);
    else if (name == "LULESH")
        w = makeLulesh(scale);
    else if (name == "MD")
        w = makeMd(scale);
    else if (name == "SNAP")
        w = makeSnap(scale);
    else if (name == "SpMV")
        w = makeSpmv(scale);
    else if (name == "XSBench")
        w = makeXsBench(scale);
    else if (name == "VecAdd")
        w = makeVecAdd(scale);
    else if (name == "atomicred")
        w = makeAtomicRed(scale);
    else if (name == "ldsswizzle")
        w = makeLdsSwizzle(scale);
    else if (name == "bfsgraph")
        w = makeBfsGraph(scale);
    else if (name == "pipeline")
        w = makePipeline(scale);
    else
        fatal("unknown workload '%s'", name.c_str());
    // The scale is part of the artifact-cache identity: kernels built
    // for one input size must never be served to another.
    w->setArtifactScale(scale.factor);
    // So are the kernel-shaping knobs: two ldsswizzle variants with
    // different strides are different programs under the same
    // name/scale/seq. The input seed is deliberately excluded — it
    // changes host data, never the IL, so seed variants share
    // artifacts.
    w->setArtifactParams(kernelParamsDigest(scale));
    return w;
}

uint64_t
kernelParamsDigest(const WorkloadScale &scale)
{
    uint64_t params = 1469598103934665603ull;
    auto mix = [&](uint64_t v) {
        params = (params ^ v) * 1099511628211ull;
    };
    mix(uint64_t(int64_t(scale.ldsStrideWords)));
    mix(uint64_t(int64_t(scale.ldsPadWords)));
    return params;
}

} // namespace last::workloads
