#include "workloads/workload_impl.hh"

namespace last::workloads
{

std::unique_ptr<Workload>
makeWorkload(const std::string &name, const WorkloadScale &scale)
{
    if (name == "ArrayBW")
        return makeArrayBw(scale);
    if (name == "BitonicSort")
        return makeBitonicSort(scale);
    if (name == "CoMD")
        return makeCoMD(scale);
    if (name == "FFT")
        return makeFft(scale);
    if (name == "HPGMG")
        return makeHpgmg(scale);
    if (name == "LULESH")
        return makeLulesh(scale);
    if (name == "MD")
        return makeMd(scale);
    if (name == "SNAP")
        return makeSnap(scale);
    if (name == "SpMV")
        return makeSpmv(scale);
    if (name == "XSBench")
        return makeXsBench(scale);
    if (name == "VecAdd")
        return makeVecAdd(scale);
    fatal("unknown workload '%s'", name.c_str());
}

} // namespace last::workloads
