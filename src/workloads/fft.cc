/**
 * @file
 * FFT: digital signal processing (Table 5). Each work-item transforms
 * 8 complex single-precision points through fully unrolled radix-2
 * stages, three rounds with direction flags selected by conditional
 * moves — the paper's compute-bound outlier: ~95% ALU, no divides, no
 * branches, and explicit spill-segment traffic from register
 * pressure (the spill/fill the high-level compiler emits).
 */

#include "workloads/workload_impl.hh"

namespace last::workloads
{

namespace
{

constexpr float Sqrt2Over2 = 0.70710678f;

class Fft : public Workload
{
  public:
    explicit Fft(const WorkloadScale &s) : grid(scaleGrid(1024, s)) {}

    std::string name() const override { return "FFT"; }

    bool
    run(runtime::Runtime &rt, IsaKind isa) override
    {
        using namespace hsail;
        const unsigned vals = grid * 16; // 8 complex f32 per WI

        Addr d_in = rt.allocGlobal(uint64_t(vals) * 4);
        Addr d_out = rt.allocGlobal(uint64_t(vals) * 4);
        Rng rng(0xff7);
        std::vector<float> host(vals);
        for (auto &v : host)
            v = rng.nextFloat() - 0.5f;
        rt.writeGlobal(d_in, host.data(), host.size() * 4);

        KernelBuilder kb("fft8_rounds");
        kb.setKernargBytes(16);
        kb.setSpillBytesPerWi(16);
        Val p_in = kb.ldKernarg(DataType::U64, 0);
        Val p_out = kb.ldKernarg(DataType::U64, 8);
        Val gid = kb.workitemAbsId();
        Val base = kb.mul(gid, kb.immU32(16));
        Val wg = kb.workgroupId();

        Val re[8], im[8];
        for (unsigned k = 0; k < 8; ++k) {
            re[k] = kb.ldGlobal(
                DataType::F32,
                addrAt(kb, p_in, kb.add(base, kb.immU32(2 * k)), 4));
            im[k] = kb.ldGlobal(
                DataType::F32,
                addrAt(kb, p_in, kb.add(base, kb.immU32(2 * k + 1)),
                       4));
        }

        Val cpos = kb.immF32(Sqrt2Over2);
        Val cneg = kb.immF32(-Sqrt2Over2);
        Val onep = kb.immF32(1.0f);
        Val onen = kb.immF32(-1.0f);

        // Butterfly with twiddle (wr, wi): top = t + u, and the
        // bottom leg is (t - u) * w.
        auto bf = [&](Val &tr, Val &ti, Val &ur, Val &ui, Val wr,
                      Val wi, bool unit) {
            Val dr = kb.sub(tr, ur);
            Val di = kb.sub(ti, ui);
            tr = kb.add(tr, ur);
            ti = kb.add(ti, ui);
            if (unit) {
                ur = dr;
                ui = di;
            } else {
                ur = kb.sub(kb.mul(dr, wr), kb.mul(di, wi));
                ui = kb.add(kb.mul(dr, wi), kb.mul(di, wr));
            }
        };

        for (unsigned round = 0; round < 3; ++round) {
            // Direction flag: uniform at run time, resolved with
            // conditional moves (no control flow).
            Val flag = kb.cmp(CmpOp::Eq,
                              kb.and_(kb.add(wg, kb.immU32(round)),
                                      kb.immU32(1)),
                              kb.immU32(0));
            Val w1i = kb.cmov(flag, cneg, cpos);  // -s * c
            Val w2i = kb.cmov(flag, onen, onep);  // -s
            Val w3r = kb.cmov(flag, cneg, cneg);  // -c (both dirs)
            Val zero = kb.immF32(0.0f);

            // Stage 1: span 4.
            bf(re[0], im[0], re[4], im[4], onep, zero, true);
            bf(re[1], im[1], re[5], im[5], cpos, w1i, false);
            bf(re[2], im[2], re[6], im[6], zero, w2i, false);
            bf(re[3], im[3], re[7], im[7], w3r, w1i, false);
            // Stage 2: span 2 in each half.
            bf(re[0], im[0], re[2], im[2], onep, zero, true);
            bf(re[1], im[1], re[3], im[3], zero, w2i, false);
            bf(re[4], im[4], re[6], im[6], onep, zero, true);
            bf(re[5], im[5], re[7], im[7], zero, w2i, false);
            // Stage 3: span 1.
            bf(re[0], im[0], re[1], im[1], onep, zero, true);
            bf(re[2], im[2], re[3], im[3], onep, zero, true);
            bf(re[4], im[4], re[5], im[5], onep, zero, true);
            bf(re[6], im[6], re[7], im[7], onep, zero, true);

            if (round == 0) {
                // Spill/fill the first two points between rounds —
                // the register-pressure traffic the paper attributes
                // to the spill segment.
                kb.stSpill(re[0], 0);
                kb.stSpill(im[0], 4);
                kb.stSpill(re[1], 8);
                kb.stSpill(im[1], 12);
                re[0] = kb.ldSpill(DataType::F32, 0);
                im[0] = kb.ldSpill(DataType::F32, 4);
                re[1] = kb.ldSpill(DataType::F32, 8);
                im[1] = kb.ldSpill(DataType::F32, 12);
            }
        }

        for (unsigned k = 0; k < 8; ++k) {
            kb.stGlobal(re[k], addrAt(kb, p_out,
                                      kb.add(base, kb.immU32(2 * k)),
                                      4));
            kb.stGlobal(im[k],
                        addrAt(kb, p_out,
                               kb.add(base, kb.immU32(2 * k + 1)), 4));
        }

        auto &code = prepare(kb.build(), isa, rt.config());

        // Multiple dispatches ping-ponging between buffers: each one
        // re-maps the spill segment under the HSAIL ABI emulation (the
        // Table 6 footprint effect for FFT).
        struct Args
        {
            uint64_t in, out;
        };
        Addr cur = d_in, nxt = d_out;
        const unsigned passes = 4;
        for (unsigned p = 0; p < passes; ++p) {
            Args args{cur, nxt};
            rt.dispatch(code, grid, 256, &args, sizeof(args));
            std::swap(cur, nxt);
        }

        // Host mirror with identical float arithmetic.
        auto hostBf = [](float &tr, float &ti, float &ur, float &ui,
                         float wr, float wi, bool unit) {
            float dr = tr - ur;
            float di = ti - ui;
            tr = tr + ur;
            ti = ti + ui;
            if (unit) {
                ur = dr;
                ui = di;
            } else {
                ur = dr * wr - di * wi;
                ui = dr * wi + di * wr;
            }
        };
        std::vector<float> want(vals);
        for (unsigned g = 0; g < grid; ++g) {
            float r[8], q[8];
            for (unsigned k = 0; k < 8; ++k) {
                r[k] = host[g * 16 + 2 * k];
                q[k] = host[g * 16 + 2 * k + 1];
            }
            unsigned wgid = g / 256;
            for (unsigned pass = 0; pass < passes; ++pass)
            for (unsigned round = 0; round < 3; ++round) {
                bool flag = ((wgid + round) & 1) == 0;
                float w1i = flag ? -Sqrt2Over2 : Sqrt2Over2;
                float w2i = flag ? -1.0f : 1.0f;
                float w3r = -Sqrt2Over2;
                hostBf(r[0], q[0], r[4], q[4], 1, 0, true);
                hostBf(r[1], q[1], r[5], q[5], Sqrt2Over2, w1i, false);
                hostBf(r[2], q[2], r[6], q[6], 0, w2i, false);
                hostBf(r[3], q[3], r[7], q[7], w3r, w1i, false);
                hostBf(r[0], q[0], r[2], q[2], 1, 0, true);
                hostBf(r[1], q[1], r[3], q[3], 0, w2i, false);
                hostBf(r[4], q[4], r[6], q[6], 1, 0, true);
                hostBf(r[5], q[5], r[7], q[7], 0, w2i, false);
                for (unsigned p = 0; p < 8; p += 2)
                    hostBf(r[p], q[p], r[p + 1], q[p + 1], 1, 0, true);
            }
            for (unsigned k = 0; k < 8; ++k) {
                want[g * 16 + 2 * k] = r[k];
                want[g * 16 + 2 * k + 1] = q[k];
            }
        }

        std::vector<float> got(vals);
        rt.readGlobal(cur, got.data(), got.size() * 4);
        bool ok = got == want;
        digestBytes(got.data(), got.size() * 4);
        return ok;
    }

  private:
    unsigned grid;
};

} // namespace

std::unique_ptr<Workload>
makeFft(const WorkloadScale &s)
{
    return std::make_unique<Fft>(s);
}

} // namespace last::workloads
