/**
 * @file
 * XSBench: Monte Carlo neutron-transport macroscopic cross-section
 * lookup (Table 5). Each work-item runs an xorshift RNG, binary-
 * searches a sorted energy grid (fixed-trip loop with conditional
 * moves), then takes a ~50/50 divergent branch on the sampled material
 * — the mid-50s% SIMD utilization of Table 6.
 */

#include "workloads/workload_impl.hh"

namespace last::workloads
{

namespace
{

class XsBench : public Workload
{
  public:
    explicit XsBench(const WorkloadScale &s)
        : grid(scaleGrid(2048, s)), gridPoints(1024), lookups(8)
    {
    }

    std::string name() const override { return "XSBench"; }

    bool
    run(runtime::Runtime &rt, IsaKind isa) override
    {
        using namespace hsail;
        Rng rng(0x5be9c4);

        std::vector<double> egrid(gridPoints);
        for (unsigned i = 0; i < gridPoints; ++i)
            egrid[i] = double(i) / gridPoints +
                       rng.nextDouble() / gridPoints;
        std::vector<double> xs(size_t(gridPoints) * 5);
        for (auto &v : xs)
            v = rng.nextDouble();

        Addr d_e = rt.allocGlobal(egrid.size() * 8);
        Addr d_xs = rt.allocGlobal(xs.size() * 8);
        Addr d_out = rt.allocGlobal(grid * 8);
        rt.writeGlobal(d_e, egrid.data(), egrid.size() * 8);
        rt.writeGlobal(d_xs, xs.data(), xs.size() * 8);

        const unsigned log2n = 10;

        KernelBuilder kb("xs_lookup");
        kb.setKernargBytes(32);
        Val p_e = kb.ldKernarg(DataType::U64, 0);
        Val p_xs = kb.ldKernarg(DataType::U64, 8);
        Val p_out = kb.ldKernarg(DataType::U64, 16);
        Val n_pts = kb.ldKernarg(DataType::U32, 24);
        Val n_look = kb.ldKernarg(DataType::U32, 28);
        Val gid = kb.workitemAbsId();
        Val seed = kb.add(kb.mul(gid, kb.immU32(2654435761u)),
                          kb.immU32(12345));
        Val acc = kb.immF64(0.0);
        Val l = kb.immU32(0);
        Val one = kb.immU32(1);
        Val inv32 = kb.immF64(1.0 / 4294967296.0);
        kb.doBegin();
        {
            // xorshift32
            kb.emitAluTo(Opcode::Xor, seed, seed,
                         kb.shl(seed, kb.immU32(13)));
            kb.emitAluTo(Opcode::Xor, seed, seed,
                         kb.shr(seed, kb.immU32(17)));
            kb.emitAluTo(Opcode::Xor, seed, seed,
                         kb.shl(seed, kb.immU32(5)));
            Val e = kb.mul(kb.cvt(DataType::F64, seed), inv32);

            // Fixed-trip binary search (pure predication).
            Val lo = kb.immU32(0);
            Val hi = kb.sub(n_pts, one);
            Val it = kb.immU32(0);
            kb.doBegin();
            {
                Val mid = kb.shr(kb.add(lo, hi), one);
                Val em = kb.ldGlobal(DataType::F64,
                                     addrAt(kb, p_e, mid, 8));
                Val below = kb.cmp(CmpOp::Lt, em, e);
                kb.assign(lo, kb.cmov(below, kb.add(mid, one), lo));
                kb.assign(hi, kb.cmov(below, hi, mid));
                kb.emitAluTo(Opcode::Add, it, it, one);
            }
            kb.doEnd(kb.cmp(CmpOp::Lt, it, kb.immU32(log2n)));
            Val idx = kb.min_(lo, kb.sub(n_pts, one));
            Val row = kb.mul(idx, kb.immU32(5));

            // Divergent material branch (~50/50).
            Val heavy = kb.cmp(CmpOp::Eq,
                               kb.and_(seed, kb.immU32(1)),
                               kb.immU32(0));
            kb.ifBegin(heavy);
            {
                // Full 5-reaction macro XS accumulation.
                Val t = kb.immF64(0.0);
                for (unsigned k = 0; k < 5; ++k) {
                    Val xv = kb.ldGlobal(
                        DataType::F64,
                        addrAt(kb, p_xs, kb.add(row, kb.immU32(k)), 8));
                    kb.emitAluTo(Opcode::Fma, t, xv,
                                 kb.immF64(0.1 + k), t);
                }
                kb.emitAluTo(Opcode::Add, acc, acc, t);
            }
            kb.ifElse();
            {
                Val xv = kb.ldGlobal(DataType::F64,
                                     addrAt(kb, p_xs, row, 8));
                kb.emitAluTo(Opcode::Add, acc, acc, xv);
            }
            kb.ifEnd();
            kb.emitAluTo(Opcode::Add, l, l, one);
        }
        kb.doEnd(kb.cmp(CmpOp::Lt, l, n_look));
        kb.stGlobal(acc, addrAt(kb, p_out, gid, 8));

        auto &code = prepare(kb.build(), isa, rt.config());

        struct Args
        {
            uint64_t e, xs, out;
            uint32_t n, looks;
        } args{d_e, d_xs, d_out, gridPoints, lookups};
        rt.dispatch(code, grid, 256, &args, sizeof(args));

        std::vector<double> got(grid);
        rt.readGlobal(d_out, got.data(), got.size() * 8);
        bool ok = true;
        for (unsigned g = 0; g < grid && ok; ++g) {
            uint32_t seed_h = g * 2654435761u + 12345u;
            double acc_h = 0.0;
            for (unsigned ll = 0; ll < lookups; ++ll) {
                seed_h ^= seed_h << 13;
                seed_h ^= seed_h >> 17;
                seed_h ^= seed_h << 5;
                double e = double(seed_h) * (1.0 / 4294967296.0);
                uint32_t lo = 0, hi = gridPoints - 1;
                for (unsigned it = 0; it < log2n; ++it) {
                    uint32_t mid = (lo + hi) >> 1;
                    if (egrid[mid] < e)
                        lo = mid + 1;
                    else
                        hi = mid;
                }
                uint32_t idx = std::min(lo, gridPoints - 1);
                uint32_t row = idx * 5;
                if ((seed_h & 1) == 0) {
                    double t = 0.0;
                    for (unsigned k = 0; k < 5; ++k)
                        t = std::fma(xs[row + k], 0.1 + k, t);
                    acc_h += t;
                } else {
                    acc_h += xs[row];
                }
            }
            ok = got[g] == acc_h;
        }
        digestBytes(got.data(), got.size() * 8);
        return ok;
    }

  private:
    unsigned grid;
    uint32_t gridPoints;
    unsigned lookups;
};

} // namespace

std::unique_ptr<Workload>
makeXsBench(const WorkloadScale &s)
{
    return std::make_unique<XsBench>(s);
}

} // namespace last::workloads
