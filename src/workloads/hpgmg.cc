/**
 * @file
 * HPGMG: the HPC-ranking multigrid benchmark (Table 5). A weighted
 * Jacobi smoother over a shrinking level hierarchy; boundary and
 * level-edge handling is pure predication (min/max clamps + cmov), so
 * there are no branches at all — one of the paper's predication-only
 * workloads. Multiple dispatches per V-cycle.
 */

#include "workloads/workload_impl.hh"

namespace last::workloads
{

namespace
{

class Hpgmg : public Workload
{
  public:
    explicit Hpgmg(const WorkloadScale &s) : n0(scaleGrid(4096, s)) {}

    std::string name() const override { return "HPGMG"; }

    bool
    run(runtime::Runtime &rt, IsaKind isa) override
    {
        using namespace hsail;
        const double w = 2.0 / 3.0;

        Addr v = rt.allocGlobal(uint64_t(n0) * 8);
        Addr tmp = rt.allocGlobal(uint64_t(n0) * 8);
        Addr rhs = rt.allocGlobal(uint64_t(n0) * 8);

        Rng rng(0x4692);
        std::vector<double> hv(n0), hr(n0);
        for (unsigned i = 0; i < n0; ++i) {
            hv[i] = rng.nextDouble();
            hr[i] = rng.nextDouble() - 0.5;
        }
        rt.writeGlobal(v, hv.data(), hv.size() * 8);
        rt.writeGlobal(rhs, hr.data(), hr.size() * 8);

        KernelBuilder kb("hpgmg_smooth");
        kb.setKernargBytes(32);
        Val p_in = kb.ldKernarg(DataType::U64, 0);
        Val p_out = kb.ldKernarg(DataType::U64, 8);
        Val p_rhs = kb.ldKernarg(DataType::U64, 16);
        Val lvl = kb.ldKernarg(DataType::U32, 24);
        Val i = kb.workitemAbsId();
        Val one = kb.immU32(1);
        Val zero = kb.immU32(0);
        Val lm1 = kb.sub(lvl, one);
        // Clamped neighbour indices: pure predication, no branches.
        Val im1 = kb.cmov(kb.cmp(CmpOp::Eq, i, zero), zero,
                          kb.sub(i, one));
        Val ip1 = kb.min_(kb.add(i, one), lm1);
        Val c = kb.ldGlobal(DataType::F64, addrAt(kb, p_in, i, 8));
        Val l = kb.ldGlobal(DataType::F64, addrAt(kb, p_in, im1, 8));
        Val r = kb.ldGlobal(DataType::F64, addrAt(kb, p_in, ip1, 8));
        Val f = kb.ldGlobal(DataType::F64, addrAt(kb, p_rhs, i, 8));
        // upd = c + w * (f - (2c - l - r)) / diag, diag = 2.
        Val two = kb.immF64(2.0);
        Val lap = kb.sub(kb.mul(two, c), kb.add(l, r));
        Val res = kb.sub(f, lap);
        Val upd = kb.fma_(kb.immF64(w), kb.div(res, two), c);
        // Work-items past the active level just copy their value.
        Val live = kb.cmp(CmpOp::Lt, i, lvl);
        kb.stGlobal(kb.cmov(live, upd, c), addrAt(kb, p_out, i, 8));

        auto &code = prepare(kb.build(), isa, rt.config());

        struct Args
        {
            uint64_t in, out, rhs;
            uint32_t lvl;
        };
        Addr cur = v, nxt = tmp;
        std::vector<unsigned> levels{n0, n0 / 2, n0 / 4, n0 / 2, n0};
        for (unsigned level : levels) {
            for (int sweep = 0; sweep < 3; ++sweep) {
                Args args{cur, nxt, rhs, level};
                rt.dispatch(code, n0, 256, &args, sizeof(args));
                std::swap(cur, nxt);
            }
        }

        // Host reference with identical arithmetic and order.
        std::vector<double> ref = hv, scratch(n0);
        for (unsigned level : levels) {
            for (int sweep = 0; sweep < 3; ++sweep) {
                for (unsigned g = 0; g < n0; ++g) {
                    unsigned im = g == 0 ? 0 : g - 1;
                    unsigned ip = std::min(g + 1, level - 1);
                    double lap = 2.0 * ref[g] - (ref[im] + ref[ip]);
                    double resid = hr[g] - lap;
                    double upd =
                        std::fma(w, resid / 2.0, ref[g]);
                    scratch[g] = g < level ? upd : ref[g];
                }
                std::swap(ref, scratch);
            }
        }

        std::vector<double> got(n0);
        rt.readGlobal(cur, got.data(), got.size() * 8);
        bool ok = got == ref;
        digestBytes(got.data(), got.size() * 8);
        return ok;
    }

  private:
    unsigned n0;
};

} // namespace

std::unique_ptr<Workload>
makeHpgmg(const WorkloadScale &s)
{
    return std::make_unique<Hpgmg>(s);
}

} // namespace last::workloads
