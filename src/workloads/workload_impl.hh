/**
 * @file
 * Shared includes and helpers for workload implementations.
 */

#ifndef LAST_WORKLOADS_WORKLOAD_IMPL_HH
#define LAST_WORKLOADS_WORKLOAD_IMPL_HH

#include <cmath>
#include <cstring>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "workloads/workload.hh"

namespace last::workloads
{

/** Scale a grid size, keeping it a positive multiple of 256. */
inline unsigned
scaleGrid(unsigned base, const WorkloadScale &s)
{
    auto scaled = unsigned(double(base) * s.factor);
    scaled = scaled / 256 * 256;
    return scaled < 256 ? 256 : scaled;
}

/** Emit base64 + idx * scale as a 64-bit address value. */
inline hsail::Val
addrAt(hsail::KernelBuilder &kb, hsail::Val base64, hsail::Val idx,
       unsigned scale)
{
    hsail::Val off = kb.mul(idx, kb.immU32(scale));
    return kb.add(base64, kb.cvt(hsail::DataType::U64, off));
}

/** @{ Factories, one per Table 5 application (defined per-file). */
std::unique_ptr<Workload> makeArrayBw(const WorkloadScale &);
std::unique_ptr<Workload> makeBitonicSort(const WorkloadScale &);
std::unique_ptr<Workload> makeCoMD(const WorkloadScale &);
std::unique_ptr<Workload> makeFft(const WorkloadScale &);
std::unique_ptr<Workload> makeHpgmg(const WorkloadScale &);
std::unique_ptr<Workload> makeLulesh(const WorkloadScale &);
std::unique_ptr<Workload> makeMd(const WorkloadScale &);
std::unique_ptr<Workload> makeSnap(const WorkloadScale &);
std::unique_ptr<Workload> makeSpmv(const WorkloadScale &);
std::unique_ptr<Workload> makeXsBench(const WorkloadScale &);
/** Extra (not part of the paper's ten): used by tests/examples. */
std::unique_ptr<Workload> makeVecAdd(const WorkloadScale &);
/** @} */

/** @{ Stress workloads (see EXPERIMENTS.md "Stress workloads beyond
 *  Table 5"): shapes built to break the IL-level abstraction. */
std::unique_ptr<Workload> makeAtomicRed(const WorkloadScale &);
std::unique_ptr<Workload> makeLdsSwizzle(const WorkloadScale &);
std::unique_ptr<Workload> makeBfsGraph(const WorkloadScale &);
std::unique_ptr<Workload> makePipeline(const WorkloadScale &);
/** @} */

} // namespace last::workloads

#endif // LAST_WORKLOADS_WORKLOAD_IMPL_HH
