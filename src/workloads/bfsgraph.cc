/**
 * @file
 * bfsgraph: irregular frontier-based BFS on a seeded scale-free graph
 * (stress workload; not part of Table 5 — see EXPERIMENTS.md "Stress
 * workloads beyond Table 5").
 *
 * Level-synchronized traversal, one vertex per work-item: each level
 * re-dispatches the kernel and only frontier vertices walk their
 * (irregular, hub-skewed) adjacency lists. The control flow nests
 * if(frontier) / if(has-edges) / edge-loop / if(unvisited), so the
 * HSAIL reconvergence stack gets real depth and its pops pile up IB
 * flushes — this is the divergence-bound shape. All device writes are
 * benign same-value races (dist[nb] = level+1, flag = 1), so the
 * result is abstraction-invariant.
 */

#include "workloads/workload_impl.hh"

#include <deque>

namespace last::workloads
{

namespace
{

class BfsGraph : public Workload
{
  public:
    explicit BfsGraph(const WorkloadScale &s)
        : n(scaleGrid(1024, s)),
          seed(s.seed ? s.seed : 0xBF5C4A1Eull)
    {
    }

    std::string name() const override { return "bfsgraph"; }

    bool
    run(runtime::Runtime &rt, IsaKind isa) override
    {
        using namespace hsail;
        Rng rng(seed);

        // Seeded scale-free-ish graph: each new vertex attaches 1..8
        // undirected edges to earlier vertices, min-of-two-draws
        // biased so low-index vertices become hubs.
        std::vector<std::vector<uint32_t>> adj(n);
        for (unsigned v = 1; v < n; ++v) {
            unsigned deg = 1 + unsigned(rng.nextBounded(MaxDeg));
            for (unsigned e = 0; e < deg; ++e) {
                auto a = uint32_t(rng.nextBounded(v));
                auto b = uint32_t(rng.nextBounded(v));
                uint32_t u = std::min(a, b);
                adj[v].push_back(u);
                adj[u].push_back(uint32_t(v));
            }
        }
        std::vector<uint32_t> rowptr(n + 1, 0);
        std::vector<uint32_t> cols;
        for (unsigned v = 0; v < n; ++v) {
            rowptr[v + 1] = rowptr[v] + uint32_t(adj[v].size());
            cols.insert(cols.end(), adj[v].begin(), adj[v].end());
        }
        std::vector<uint32_t> dist(n, Inf);
        dist[0] = 0;

        Addr d_rowptr = rt.allocGlobal((n + 1) * 4);
        Addr d_cols = rt.allocGlobal(cols.size() * 4);
        Addr d_dist = rt.allocGlobal(n * 4);
        Addr d_flag = rt.allocGlobal(4);
        rt.writeGlobal(d_rowptr, rowptr.data(), rowptr.size() * 4);
        rt.writeGlobal(d_cols, cols.data(), cols.size() * 4);
        rt.writeGlobal(d_dist, dist.data(), n * 4);

        KernelBuilder kb("bfs_level");
        kb.setKernargBytes(40);
        Val p_rp = kb.ldKernarg(DataType::U64, 0);
        Val p_c = kb.ldKernarg(DataType::U64, 8);
        Val p_d = kb.ldKernarg(DataType::U64, 16);
        Val p_f = kb.ldKernarg(DataType::U64, 24);
        Val level = kb.ldKernarg(DataType::U32, 32);
        Val v = kb.workitemAbsId();
        Val d = kb.ldGlobal(DataType::U32, addrAt(kb, p_d, v, 4));
        Val inf = kb.immU32(Inf);
        Val one = kb.immU32(1);
        Val lvl1 = kb.add(level, one);
        kb.ifBegin(kb.cmp(CmpOp::Eq, d, level));
        {
            Val start = kb.ldGlobal(DataType::U32, addrAt(kb, p_rp, v, 4));
            Val end = kb.ldGlobal(DataType::U32, addrAt(kb, p_rp, v, 4), 4);
            Val j = kb.mov(start);
            kb.ifBegin(kb.cmp(CmpOp::Lt, j, end));
            {
                kb.doBegin();
                {
                    Val nb = kb.ldGlobal(DataType::U32,
                                         addrAt(kb, p_c, j, 4));
                    Val dn = kb.ldGlobal(DataType::U32,
                                         addrAt(kb, p_d, nb, 4));
                    kb.ifBegin(kb.cmp(CmpOp::Eq, dn, inf));
                    {
                        kb.stGlobal(lvl1, addrAt(kb, p_d, nb, 4));
                        kb.stGlobal(one, p_f);
                    }
                    kb.ifEnd();
                    kb.emitAluTo(Opcode::Add, j, j, one);
                }
                kb.doEnd(kb.cmp(CmpOp::Lt, j, end));
            }
            kb.ifEnd();
        }
        kb.ifEnd();

        auto &code = prepare(kb.build(), isa, rt.config());

        struct Args
        {
            uint64_t rp, c, d, f;
            uint32_t level;
        } args{d_rowptr, d_cols, d_dist, d_flag, 0};
        for (uint32_t level_i = 0; level_i < n; ++level_i) {
            rt.writeGlobal<uint32_t>(d_flag, 0);
            args.level = level_i;
            rt.dispatch(code, n, 256, &args, sizeof(args));
            if (rt.readGlobal<uint32_t>(d_flag) == 0)
                break;
        }

        // Host reference BFS (level-synchronous == plain BFS depth).
        std::vector<uint32_t> want(n, Inf);
        want[0] = 0;
        std::deque<uint32_t> q{0};
        while (!q.empty()) {
            uint32_t u = q.front();
            q.pop_front();
            for (uint32_t e = rowptr[u]; e < rowptr[u + 1]; ++e) {
                uint32_t nb = cols[e];
                if (want[nb] == Inf) {
                    want[nb] = want[u] + 1;
                    q.push_back(nb);
                }
            }
        }

        std::vector<uint32_t> got(n);
        rt.readGlobal(d_dist, got.data(), n * 4);
        bool ok = true;
        for (unsigned i = 0; i < n && ok; ++i)
            ok = got[i] == want[i];
        digestBytes(got.data(), n * 4);
        return ok;
    }

  private:
    static constexpr uint32_t Inf = 0xFFFFFFFFu;
    static constexpr unsigned MaxDeg = 8;

    unsigned n;
    uint64_t seed;
};

} // namespace

std::unique_ptr<Workload>
makeBfsGraph(const WorkloadScale &s)
{
    return std::make_unique<BfsGraph>(s);
}

} // namespace last::workloads
