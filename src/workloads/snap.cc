/**
 * @file
 * SNAP: discrete-ordinates neutral-particle transport proxy (Table 5).
 * Each work-item owns a spatial cell and reduces angular flux over all
 * ordinates with quadrature weights (weights come from a readonly
 * table at a uniform address — scalar memory traffic under GCN3),
 * then exchanges with workgroup neighbours through the LDS under a
 * barrier.
 */

#include "workloads/workload_impl.hh"

namespace last::workloads
{

namespace
{

class Snap : public Workload
{
  public:
    explicit Snap(const WorkloadScale &s)
        : cells(scaleGrid(2048, s)), angles(16)
    {
    }

    std::string name() const override { return "SNAP"; }

    bool
    run(runtime::Runtime &rt, IsaKind isa) override
    {
        using namespace hsail;
        Rng rng(0x5a4a9);

        std::vector<double> psi(size_t(cells) * angles);
        for (auto &p : psi)
            p = rng.nextDouble();
        std::vector<double> wgt(angles);
        for (auto &w : wgt)
            w = rng.nextDouble() / angles;

        Addr d_psi = rt.allocGlobal(psi.size() * 8);
        Addr d_w = rt.allocGlobal(wgt.size() * 8);
        Addr d_out = rt.allocGlobal(cells * 8);
        rt.writeGlobal(d_psi, psi.data(), psi.size() * 8);
        rt.writeGlobal(d_w, wgt.data(), wgt.size() * 8);

        const unsigned wg_size = 256;

        KernelBuilder kb("snap_sweep");
        kb.setKernargBytes(32);
        kb.setLdsBytesPerWg(wg_size * 8);
        Val p_psi = kb.ldKernarg(DataType::U64, 0);
        Val p_w = kb.ldKernarg(DataType::U64, 8);
        Val p_out = kb.ldKernarg(DataType::U64, 16);
        Val n_ang = kb.ldKernarg(DataType::U32, 24);
        Val cell = kb.workitemAbsId();
        Val lid = kb.workitemId();
        Val flux = kb.immF64(0.0);
        Val a = kb.immU32(0);
        Val one = kb.immU32(1);
        Val base = kb.mul(cell, n_ang);
        kb.doBegin();
        {
            Val pv = kb.ldGlobal(DataType::F64,
                                 addrAt(kb, p_psi, kb.add(base, a), 8));
            // Quadrature weight: readonly segment, uniform address ->
            // a scalar load in the finalized code.
            Val wv = kb.ldReadonly(DataType::F64,
                                   addrAt(kb, p_w, a, 8));
            kb.emitAluTo(Opcode::Fma, flux, pv, wv, flux);
            kb.emitAluTo(Opcode::Add, a, a, one);
        }
        kb.doEnd(kb.cmp(CmpOp::Lt, a, n_ang));

        // Workgroup-local diffusion step through the LDS.
        Val loff = kb.mul(lid, kb.immU32(8));
        kb.stGroup(flux, loff);
        kb.barrier();
        Val lm = kb.cmov(kb.cmp(CmpOp::Eq, lid, kb.immU32(0)),
                         kb.immU32(0), kb.sub(lid, one));
        Val lp = kb.min_(kb.add(lid, one), kb.immU32(wg_size - 1));
        Val left = kb.ldGroup(DataType::F64, kb.mul(lm, kb.immU32(8)));
        Val right = kb.ldGroup(DataType::F64, kb.mul(lp, kb.immU32(8)));
        Val smooth = kb.fma_(kb.immF64(0.25), kb.add(left, right),
                             kb.mul(kb.immF64(0.5), flux));
        kb.stGlobal(smooth, addrAt(kb, p_out, cell, 8));

        auto &code = prepare(kb.build(), isa, rt.config());

        struct Args
        {
            uint64_t psi, w, out;
            uint32_t angles;
        } args{d_psi, d_w, d_out, angles};
        rt.dispatch(code, cells, wg_size, &args, sizeof(args));

        // Host reference.
        std::vector<double> flux_h(cells);
        for (unsigned c = 0; c < cells; ++c) {
            double f = 0.0;
            for (unsigned aa = 0; aa < angles; ++aa)
                f = std::fma(psi[size_t(c) * angles + aa], wgt[aa], f);
            flux_h[c] = f;
        }
        std::vector<double> got(cells);
        rt.readGlobal(d_out, got.data(), got.size() * 8);
        bool ok = true;
        for (unsigned c = 0; c < cells && ok; ++c) {
            unsigned wg = c / wg_size;
            unsigned lidh = c % wg_size;
            unsigned lmh = lidh == 0 ? 0 : lidh - 1;
            unsigned lph = std::min(lidh + 1, wg_size - 1);
            double want =
                std::fma(0.25,
                         flux_h[wg * wg_size + lmh] +
                             flux_h[wg * wg_size + lph],
                         0.5 * flux_h[c]);
            ok = got[c] == want;
        }
        digestBytes(got.data(), got.size() * 8);
        return ok;
    }

  private:
    unsigned cells;
    uint32_t angles;
};

} // namespace

std::unique_ptr<Workload>
makeSnap(const WorkloadScale &s)
{
    return std::make_unique<Snap>(s);
}

} // namespace last::workloads
