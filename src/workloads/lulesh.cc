/**
 * @file
 * LULESH: hydrodynamics proxy (Table 5). The paper's stress case: 27
 * unique small kernels dispatched over and over (hundreds of dynamic
 * launches), per-work-item private arrays (the private segment), and
 * a combined instruction footprint that fits the 16 kB L1I at the IL
 * level but overflows it at the machine-ISA level — the 10x L1I miss
 * blow-up of Figure 8 / Figure 12.
 *
 * Each generated kernel gathers a few f64 node values with its own
 * stride pattern, parks them in a private array, and reduces them
 * with its own coefficient set (some kernels divide, some take square
 * roots), mirroring LULESH's many small distinct loops.
 */

#include "workloads/workload_impl.hh"

namespace last::workloads
{

namespace
{

constexpr unsigned NumKernels = 27;
constexpr unsigned Elems = 4;         ///< gathered values per WI
constexpr unsigned TimeSteps = 6;

struct KernelShape
{
    uint32_t strideA;
    uint32_t strideB;
    double coeff[Elems];
    enum class Op { FmaChain, Divide, Root } op;
};

KernelShape
shapeFor(unsigned k)
{
    KernelShape s;
    s.strideA = 1 + (k * 7) % 13;
    s.strideB = 3 + (k * 5) % 11;
    for (unsigned j = 0; j < Elems; ++j)
        s.coeff[j] = 0.25 + 0.125 * ((k + j) % 7);
    s.op = k % 3 == 0 ? KernelShape::Op::Divide
         : k % 3 == 1 ? KernelShape::Op::Root
                      : KernelShape::Op::FmaChain;
    return s;
}

class Lulesh : public Workload
{
  public:
    explicit Lulesh(const WorkloadScale &s)
        : grid(scaleGrid(1024, s)), n(grid * 16)
    {
    }

    std::string name() const override { return "LULESH"; }

    bool
    run(runtime::Runtime &rt, IsaKind isa) override
    {
        using namespace hsail;
        Addr d_in = rt.allocGlobal(uint64_t(n) * 8);
        Addr d_out = rt.allocGlobal(uint64_t(grid) * 8);
        Rng rng(0x1e5e);
        std::vector<double> nodes(n);
        for (auto &v : nodes)
            v = rng.nextDouble() + 0.5;
        rt.writeGlobal(d_in, nodes.data(), nodes.size() * 8);

        std::vector<const arch::KernelCode *> codes;
        for (unsigned k = 0; k < NumKernels; ++k)
            codes.push_back(&buildKernel(k, isa, rt.config()));

        struct Args
        {
            uint64_t in, out;
            uint32_t n_mask;
        } args{d_in, d_out, n - 1};

        // The time-step loop: every step dispatches all 27 kernels.
        for (unsigned t = 0; t < TimeSteps; ++t)
            for (unsigned k = 0; k < NumKernels; ++k)
                rt.dispatch(*codes[k], grid, 256, &args, sizeof(args));

        // Host reference for the final step's last kernel is not
        // enough: out is overwritten by each kernel, so the final
        // contents equal kernel 26's result.
        std::vector<double> want(grid);
        {
            KernelShape s = shapeFor(NumKernels - 1);
            for (unsigned i = 0; i < grid; ++i)
                want[i] = hostKernel(s, nodes, i);
        }
        std::vector<double> got(grid);
        rt.readGlobal(d_out, got.data(), got.size() * 8);
        bool ok = got == want;
        digestBytes(got.data(), got.size() * 8);
        return ok;
    }

  private:
    const arch::KernelCode &
    buildKernel(unsigned k, IsaKind isa, const GpuConfig &cfg)
    {
        using namespace hsail;
        KernelShape s = shapeFor(k);
        KernelBuilder kb("lulesh_k" + std::to_string(k));
        kb.setKernargBytes(24);
        kb.setPrivateBytesPerWi(Elems * 8);
        Val p_in = kb.ldKernarg(DataType::U64, 0);
        Val p_out = kb.ldKernarg(DataType::U64, 8);
        Val mask = kb.ldKernarg(DataType::U32, 16);
        Val i = kb.workitemAbsId();
        // Gather into the private array.
        for (unsigned j = 0; j < Elems; ++j) {
            Val idx = kb.and_(
                kb.add(kb.mul(i, kb.immU32(s.strideA)),
                       kb.immU32(j * s.strideB)),
                mask);
            Val v = kb.ldGlobal(DataType::F64, addrAt(kb, p_in, idx, 8));
            kb.stPrivate(v, Val{}, int64_t(j) * 8);
        }
        // Reduce from the private array.
        Val acc = kb.immF64(0.0);
        for (unsigned j = 0; j < Elems; ++j) {
            Val v = kb.ldPrivate(DataType::F64, Val{}, int64_t(j) * 8);
            kb.emitAluTo(Opcode::Fma, acc, v, kb.immF64(s.coeff[j]),
                         acc);
        }
        switch (s.op) {
          case KernelShape::Op::Divide:
            acc = kb.div(acc, kb.immF64(3.0));
            break;
          case KernelShape::Op::Root:
            acc = kb.sqrt_(kb.abs_(acc));
            break;
          case KernelShape::Op::FmaChain:
            acc = kb.fma_(acc, kb.immF64(0.5), kb.immF64(1.0));
            break;
        }
        kb.stGlobal(acc, addrAt(kb, p_out, i, 8));
        return prepare(kb.build(), isa, cfg);
    }

    double
    hostKernel(const KernelShape &s, const std::vector<double> &nodes,
               unsigned i) const
    {
        double priv[Elems];
        for (unsigned j = 0; j < Elems; ++j) {
            uint32_t idx =
                (i * s.strideA + j * s.strideB) & (n - 1);
            priv[j] = nodes[idx];
        }
        double acc = 0.0;
        for (unsigned j = 0; j < Elems; ++j)
            acc = std::fma(priv[j], s.coeff[j], acc);
        switch (s.op) {
          case KernelShape::Op::Divide:
            return acc / 3.0;
          case KernelShape::Op::Root:
            return std::sqrt(std::fabs(acc));
          case KernelShape::Op::FmaChain:
            return std::fma(acc, 0.5, 1.0);
        }
        return acc;
    }

    unsigned grid;
    uint32_t n;
};

} // namespace

std::unique_ptr<Workload>
makeLulesh(const WorkloadScale &s)
{
    return std::make_unique<Lulesh>(s);
}

} // namespace last::workloads
