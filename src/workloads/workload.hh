/**
 * @file
 * Workload interface and registry.
 *
 * Each workload is written ONCE against the KernelBuilder DSL (the
 * single-source property of the paper's methodology) and can run at
 * either ISA level: the HSAIL path executes the IL directly, the GCN3
 * path routes the same IL through the finalizer first. Every workload
 * self-verifies its output, and the harness additionally checks that
 * the two ISAs produce identical results.
 */

#ifndef LAST_WORKLOADS_WORKLOAD_HH
#define LAST_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "arch/kernel_code.hh"
#include "common/config.hh"
#include "hsail/builder.hh"
#include "runtime/runtime.hh"

namespace last::workloads
{

/** Scale knob for workload inputs (1 = default bench scale). */
struct WorkloadScale
{
    double factor = 1.0;

    /** @{ Stress-workload knobs (-1 = the workload's default). Only
     *  ldsswizzle reads these today; they shape the emitted kernel
     *  (the LDS slot stride is an IL immediate), so they participate
     *  in the artifact-cache identity via setArtifactParams. */
    int ldsStrideWords = -1; ///< LDS words between adjacent lanes' slots
    int ldsPadWords = -1;    ///< extra words appended to each slot
    /** @} */

    /** Input-seed override for the seeded stress workloads (0 = each
     *  workload's fixed default). Changes host-generated input data
     *  only, never the kernel IL — seed variants share artifacts. */
    uint64_t seed = 0;
};

class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /**
     * Build, dispatch, and verify on the given runtime at the given
     * ISA level.
     *
     * @return true iff the computed results verified against the
     *         host-side reference.
     */
    virtual bool run(runtime::Runtime &rt, IsaKind isa) = 0;

    /** Digest of the output buffers from the last run (must match
     *  across ISAs). */
    virtual uint64_t resultDigest() const { return digest; }

    /** Scale factor this instance was created for (set by
     *  makeWorkload); part of the artifact-cache key. */
    void setArtifactScale(double factor) { artifactScale = factor; }

    /** Digest of every kernel-shaping knob beyond the scale (set by
     *  makeWorkload); part of the artifact-cache key so parameter
     *  variants of one workload never alias to a stale KernelCode. */
    void setArtifactParams(uint64_t params) { artifactParams = params; }

  protected:
    /**
     * Prepare an IL kernel for execution at `isa`: the IL code itself
     * or the finalized GCN3 code. Served from the process-wide
     * artifact cache when possible (keyed on workload/isa/scale and
     * the call order); fault-injection configs build privately so a
     * perturbed run can never share state with a clean one. The
     * returned artifact stays alive as long as this workload.
     */
    const arch::KernelCode &prepare(hsail::IlKernel &&il, IsaKind isa,
                                    const GpuConfig &cfg);

    /** FNV-1a over a byte range, for cross-ISA result digests. */
    void digestBytes(const void *data, size_t len);

    uint64_t digest = 1469598103934665603ull;

  private:
    std::vector<std::unique_ptr<arch::KernelCode>> ownedKernels;
    std::vector<hsail::IlKernel> ownedIl;
    std::vector<std::shared_ptr<const arch::KernelCode>> sharedKernels;
    double artifactScale = 1.0;
    uint64_t artifactParams = 0;
    unsigned prepareSeq = 0;
};

/** The Table 5 applications, in paper order. */
std::vector<std::string> workloadNames();

/** The stress workloads (beyond Table 5): shapes built to break the
 *  IL-level abstraction where the paper did not need to measure it.
 *  See EXPERIMENTS.md "Stress workloads beyond Table 5". */
std::vector<std::string> stressWorkloadNames();

/** Table 5 + stress workloads: the full bench sweep matrix. */
std::vector<std::string> allWorkloadNames();

/** Instantiate a workload by name (fatal on unknown names). */
std::unique_ptr<Workload> makeWorkload(const std::string &name,
                                       const WorkloadScale &scale = {});

/**
 * FNV-1a digest of every kernel-shaping knob beyond the scale factor
 * (today: the ldsswizzle stride/pad words). This is the knob part of
 * both the artifact-cache key (makeWorkload) and the bench-cache row
 * key (sim::specCacheKey): two parameter variants of one workload are
 * different programs and must never alias. The input seed is
 * deliberately excluded from the *artifact* identity (it changes host
 * data, never the IL) but is a separate column in the bench-cache key.
 */
uint64_t kernelParamsDigest(const WorkloadScale &scale);

} // namespace last::workloads

#endif // LAST_WORKLOADS_WORKLOAD_HH
