/**
 * @file
 * atomicred: contended global-atomic tree reduction (stress workload;
 * not part of Table 5 — see EXPERIMENTS.md "Stress workloads beyond
 * Table 5").
 *
 * Level 1 funnels every wavefront's 64 lanes into ONE bucket
 * (bucket = gid/64 mod nBuckets), the worst intra-wavefront contention
 * an atomic can see; level 2 reduces the buckets into a single total
 * with 64 of 256 lanes active (divergent tail). Integer atomic sums
 * are order-independent, so the result is bit-identical across ISAs
 * no matter how the two levels interleave wavefronts.
 */

#include "workloads/workload_impl.hh"

namespace last::workloads
{

namespace
{

class AtomicRed : public Workload
{
  public:
    explicit AtomicRed(const WorkloadScale &s)
        : n(scaleGrid(4096, s)),
          seed(s.seed ? s.seed : 0xA70311Cull)
    {
    }

    std::string name() const override { return "atomicred"; }

    bool
    run(runtime::Runtime &rt, IsaKind isa) override
    {
        using namespace hsail;
        Rng rng(seed);

        std::vector<uint32_t> vals(n);
        for (auto &v : vals)
            v = uint32_t(rng.next());

        Addr d_vals = rt.allocGlobal(n * 4);
        Addr d_buckets = rt.allocGlobal(NumBuckets * 4);
        Addr d_total = rt.allocGlobal(4);
        rt.writeGlobal(d_vals, vals.data(), n * 4);
        std::vector<uint32_t> zeros(NumBuckets, 0);
        rt.writeGlobal(d_buckets, zeros.data(), NumBuckets * 4);
        rt.writeGlobal<uint32_t>(d_total, 0);

        // Level 1: every lane adds its value into its wavefront's
        // bucket — 64 lanes, one address.
        KernelBuilder leaf("atomicred_leaf");
        leaf.setKernargBytes(16);
        {
            Val p_vals = leaf.ldKernarg(DataType::U64, 0);
            Val p_buck = leaf.ldKernarg(DataType::U64, 8);
            Val gid = leaf.workitemAbsId();
            Val v = leaf.ldGlobal(DataType::U32, addrAt(leaf, p_vals, gid, 4));
            Val b = leaf.and_(leaf.shr(gid, leaf.immU32(6)),
                              leaf.immU32(NumBuckets - 1));
            leaf.atomicAddGlobal(addrAt(leaf, p_buck, b, 4), v);
        }
        auto &leaf_code = prepare(leaf.build(), isa, rt.config());

        // Level 2: one workgroup; the first NumBuckets lanes fold the
        // buckets into the root — the rest idle (divergent tail).
        KernelBuilder root("atomicred_root");
        root.setKernargBytes(24);
        {
            Val p_buck = root.ldKernarg(DataType::U64, 0);
            Val p_tot = root.ldKernarg(DataType::U64, 8);
            Val nb = root.ldKernarg(DataType::U32, 16);
            Val lid = root.workitemAbsId();
            Val active = root.cmp(CmpOp::Lt, lid, nb);
            root.ifBegin(active);
            {
                Val v = root.ldGlobal(DataType::U32,
                                      addrAt(root, p_buck, lid, 4));
                root.atomicAddGlobal(p_tot, v);
            }
            root.ifEnd();
        }
        auto &root_code = prepare(root.build(), isa, rt.config());

        struct LeafArgs
        {
            uint64_t vals, buckets;
        } leaf_args{d_vals, d_buckets};
        rt.dispatch(leaf_code, n, 256, &leaf_args, sizeof(leaf_args));

        struct RootArgs
        {
            uint64_t buckets, total;
            uint32_t nb;
        } root_args{d_buckets, d_total, NumBuckets};
        rt.dispatch(root_code, 256, 256, &root_args, sizeof(root_args));

        // Host reference (u32 wrap-around matches the device).
        std::vector<uint32_t> want_buckets(NumBuckets, 0);
        for (unsigned i = 0; i < n; ++i)
            want_buckets[(i / 64) % NumBuckets] += vals[i];
        uint32_t want_total = 0;
        for (uint32_t b : want_buckets)
            want_total += b;

        std::vector<uint32_t> got_buckets(NumBuckets);
        rt.readGlobal(d_buckets, got_buckets.data(), NumBuckets * 4);
        auto got_total = rt.readGlobal<uint32_t>(d_total);
        bool ok = got_total == want_total;
        for (unsigned b = 0; b < NumBuckets && ok; ++b)
            ok = got_buckets[b] == want_buckets[b];
        digestBytes(got_buckets.data(), NumBuckets * 4);
        digestBytes(&got_total, 4);
        return ok;
    }

  private:
    static constexpr unsigned NumBuckets = 64;

    unsigned n;
    uint64_t seed;
};

} // namespace

std::unique_ptr<Workload>
makeAtomicRed(const WorkloadScale &s)
{
    return std::make_unique<AtomicRed>(s);
}

} // namespace last::workloads
