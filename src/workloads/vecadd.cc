/**
 * @file
 * VecAdd: the canonical quickstart kernel (not one of the paper's ten
 * applications; used by tests and examples).
 */

#include "workloads/workload_impl.hh"

namespace last::workloads
{

namespace
{

class VecAdd : public Workload
{
  public:
    explicit VecAdd(const WorkloadScale &s) : grid(scaleGrid(2048, s)) {}

    std::string name() const override { return "VecAdd"; }

    bool
    run(runtime::Runtime &rt, IsaKind isa) override
    {
        using namespace hsail;
        Addr a = rt.allocGlobal(uint64_t(grid) * 4);
        Addr b = rt.allocGlobal(uint64_t(grid) * 4);
        Addr c = rt.allocGlobal(uint64_t(grid) * 4);

        Rng rng(0x7ec4dd);
        std::vector<float> ha(grid), hb(grid);
        for (unsigned i = 0; i < grid; ++i) {
            ha[i] = rng.nextFloat();
            hb[i] = rng.nextFloat();
        }
        rt.writeGlobal(a, ha.data(), ha.size() * 4);
        rt.writeGlobal(b, hb.data(), hb.size() * 4);

        KernelBuilder kb("vecadd");
        kb.setKernargBytes(24);
        Val pa = kb.ldKernarg(DataType::U64, 0);
        Val pb = kb.ldKernarg(DataType::U64, 8);
        Val pc = kb.ldKernarg(DataType::U64, 16);
        Val off = kb.cvt(DataType::U64,
                         kb.mul(kb.workitemAbsId(), kb.immU32(4)));
        Val va = kb.ldGlobal(DataType::F32, kb.add(pa, off));
        Val vb = kb.ldGlobal(DataType::F32, kb.add(pb, off));
        kb.stGlobal(kb.add(va, vb), kb.add(pc, off));

        auto &code = prepare(kb.build(), isa, rt.config());

        struct Args
        {
            uint64_t a, b, c;
        } args{a, b, c};
        rt.dispatch(code, grid, 256, &args, sizeof(args));

        std::vector<float> hc(grid);
        rt.readGlobal(c, hc.data(), hc.size() * 4);
        bool ok = true;
        for (unsigned i = 0; i < grid && ok; ++i)
            ok = hc[i] == ha[i] + hb[i];
        digestBytes(hc.data(), hc.size() * 4);
        return ok;
    }

  private:
    unsigned grid;
};

} // namespace

std::unique_ptr<Workload>
makeVecAdd(const WorkloadScale &s)
{
    return std::make_unique<VecAdd>(s);
}

} // namespace last::workloads
