/**
 * @file
 * SpMV: sparse matrix-vector multiplication, CSR, one row per
 * work-item (Table 5). Row lengths vary, so the inner loop is
 * divergent — the reconvergence-stack (HSAIL) vs exec-mask (GCN3)
 * contrast — and SIMD utilization sits well below 100% (Table 6).
 */

#include "workloads/workload_impl.hh"

namespace last::workloads
{

namespace
{

class Spmv : public Workload
{
  public:
    explicit Spmv(const WorkloadScale &s)
        : rows(scaleGrid(2048, s)), maxNnz(16)
    {
    }

    std::string name() const override { return "SpMV"; }

    bool
    run(runtime::Runtime &rt, IsaKind isa) override
    {
        using namespace hsail;
        Rng rng(0x59437);

        // Build a CSR matrix with irregular row lengths (0..maxNnz).
        std::vector<uint32_t> rowptr(rows + 1, 0);
        std::vector<uint32_t> cols;
        std::vector<double> vals;
        for (unsigned r = 0; r < rows; ++r) {
            unsigned len = unsigned(rng.nextBounded(maxNnz + 1));
            rowptr[r + 1] = rowptr[r] + len;
            for (unsigned e = 0; e < len; ++e) {
                cols.push_back(uint32_t(rng.nextBounded(rows)));
                vals.push_back(rng.nextDouble() - 0.5);
            }
        }
        std::vector<double> x(rows);
        for (auto &xi : x)
            xi = rng.nextDouble();

        Addr d_rowptr = rt.allocGlobal((rows + 1) * 4);
        Addr d_cols = rt.allocGlobal(std::max<size_t>(cols.size(), 1) * 4);
        Addr d_vals = rt.allocGlobal(std::max<size_t>(vals.size(), 1) * 8);
        Addr d_x = rt.allocGlobal(rows * 8);
        Addr d_y = rt.allocGlobal(rows * 8);
        rt.writeGlobal(d_rowptr, rowptr.data(), rowptr.size() * 4);
        rt.writeGlobal(d_cols, cols.data(), cols.size() * 4);
        rt.writeGlobal(d_vals, vals.data(), vals.size() * 8);
        rt.writeGlobal(d_x, x.data(), x.size() * 8);

        KernelBuilder kb("spmv_csr");
        kb.setKernargBytes(40);
        Val p_rp = kb.ldKernarg(DataType::U64, 0);
        Val p_c = kb.ldKernarg(DataType::U64, 8);
        Val p_v = kb.ldKernarg(DataType::U64, 16);
        Val p_x = kb.ldKernarg(DataType::U64, 24);
        Val p_y = kb.ldKernarg(DataType::U64, 32);
        Val row = kb.workitemAbsId();
        Val start = kb.ldGlobal(DataType::U32, addrAt(kb, p_rp, row, 4));
        Val end = kb.ldGlobal(DataType::U32, addrAt(kb, p_rp, row, 4), 4);
        Val acc = kb.immF64(0.0);
        Val j = kb.mov(start);
        Val one = kb.immU32(1);
        Val any = kb.cmp(CmpOp::Lt, j, end);
        kb.ifBegin(any);
        {
            kb.doBegin();
            {
                Val col =
                    kb.ldGlobal(DataType::U32, addrAt(kb, p_c, j, 4));
                Val a =
                    kb.ldGlobal(DataType::F64, addrAt(kb, p_v, j, 8));
                Val xv =
                    kb.ldGlobal(DataType::F64, addrAt(kb, p_x, col, 8));
                kb.emitAluTo(Opcode::Fma, acc, a, xv, acc);
                kb.emitAluTo(Opcode::Add, j, j, one);
            }
            kb.doEnd(kb.cmp(CmpOp::Lt, j, end));
        }
        kb.ifEnd();
        kb.stGlobal(acc, addrAt(kb, p_y, row, 8));

        auto &code = prepare(kb.build(), isa, rt.config());

        struct Args
        {
            uint64_t rp, c, v, x, y;
        } args{d_rowptr, d_cols, d_vals, d_x, d_y};
        rt.dispatch(code, rows, 256, &args, sizeof(args));

        std::vector<double> got(rows);
        rt.readGlobal(d_y, got.data(), got.size() * 8);
        bool ok = true;
        for (unsigned r = 0; r < rows && ok; ++r) {
            double want = 0.0;
            for (uint32_t e = rowptr[r]; e < rowptr[r + 1]; ++e)
                want = std::fma(vals[e], x[cols[e]], want);
            ok = got[r] == want;
        }
        digestBytes(got.data(), got.size() * 8);
        return ok;
    }

  private:
    unsigned rows;
    unsigned maxNnz;
};

} // namespace

std::unique_ptr<Workload>
makeSpmv(const WorkloadScale &s)
{
    return std::make_unique<Spmv>(s);
}

} // namespace last::workloads
