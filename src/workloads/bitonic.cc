/**
 * @file
 * Bitonic Sort: parallel merge sort (Table 5). The classic branch-free
 * formulation — every compare-exchange decision is a conditional move,
 * so SIMD utilization stays at 100% and the kernel exercises the
 * predication path the paper contrasts with branchy control flow.
 * One dispatch per (stage, pass): dozens of dynamic kernel launches.
 */

#include <algorithm>

#include "workloads/workload_impl.hh"

namespace last::workloads
{

namespace
{

class BitonicSort : public Workload
{
  public:
    explicit BitonicSort(const WorkloadScale &s)
        : n(scaleGrid(2048, s))
    {
        // n must be a power of two for the bitonic network.
        unsigned p = 256;
        while (p * 2 <= n)
            p *= 2;
        n = p;
    }

    std::string name() const override { return "BitonicSort"; }

    bool
    run(runtime::Runtime &rt, IsaKind isa) override
    {
        using namespace hsail;
        Addr buf[2];
        buf[0] = rt.allocGlobal(uint64_t(n) * 4);
        buf[1] = rt.allocGlobal(uint64_t(n) * 4);

        Rng rng(0xb170);
        std::vector<uint32_t> host(n);
        for (auto &v : host)
            v = uint32_t(rng.next());
        rt.writeGlobal(buf[0], host.data(), host.size() * 4);

        KernelBuilder kb("bitonic_step");
        kb.setKernargBytes(32);
        Val src = kb.ldKernarg(DataType::U64, 0);
        Val dst = kb.ldKernarg(DataType::U64, 8);
        Val kk = kb.ldKernarg(DataType::U32, 16);
        Val jj = kb.ldKernarg(DataType::U32, 24);
        Val i = kb.workitemAbsId();
        Val j = kb.xor_(i, jj);
        Val a = kb.ldGlobal(DataType::U32, addrAt(kb, src, i, 4));
        Val b = kb.ldGlobal(DataType::U32, addrAt(kb, src, j, 4));
        Val lo = kb.min_(a, b);
        Val hi = kb.max_(a, b);
        Val zero = kb.immU32(0);
        // Ascending block iff (i & k) == 0; this work-item keeps the
        // small value iff it is the left element of its pair.
        Val up = kb.cmp(CmpOp::Eq, kb.and_(i, kk), zero);
        Val left = kb.cmp(CmpOp::Lt, i, j);
        Val asc = kb.cmov(left, lo, hi);
        Val desc = kb.cmov(left, hi, lo);
        Val res = kb.cmov(up, asc, desc);
        kb.stGlobal(res, addrAt(kb, dst, i, 4));

        auto &code = prepare(kb.build(), isa, rt.config());

        unsigned cur = 0;
        struct Args
        {
            uint64_t src, dst;
            uint32_t k;
            uint32_t pad;
            uint32_t j;
        };
        for (unsigned k = 2; k <= n; k <<= 1) {
            for (unsigned j = k >> 1; j >= 1; j >>= 1) {
                Args args{buf[cur], buf[1 - cur], k, 0, j};
                rt.dispatch(code, n, 256, &args, sizeof(args));
                cur = 1 - cur;
            }
        }

        std::vector<uint32_t> got(n);
        rt.readGlobal(buf[cur], got.data(), got.size() * 4);
        std::sort(host.begin(), host.end());
        bool ok = got == host;
        digestBytes(got.data(), got.size() * 4);
        return ok;
    }

  private:
    unsigned n;
};

} // namespace

std::unique_ptr<Workload>
makeBitonicSort(const WorkloadScale &s)
{
    return std::make_unique<BitonicSort>(s);
}

} // namespace last::workloads
