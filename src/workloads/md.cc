/**
 * @file
 * MD: generic molecular dynamics (Table 5). Lennard-Jones forces in
 * double precision over a pre-built (valid) neighbour list — no
 * control divergence (100% SIMD utilization per Table 6) but heavy
 * 64-bit register-pair pressure, f64 sqrt, and f64 divide.
 */

#include "workloads/workload_impl.hh"

namespace last::workloads
{

namespace
{

class Md : public Workload
{
  public:
    explicit Md(const WorkloadScale &s)
        : atoms(scaleGrid(1024, s)), neighbors(12)
    {
    }

    std::string name() const override { return "MD"; }

    bool
    run(runtime::Runtime &rt, IsaKind isa) override
    {
        using namespace hsail;
        Rng rng(0x3dd1);

        std::vector<double> px(atoms), py(atoms), pz(atoms);
        for (unsigned i = 0; i < atoms; ++i) {
            px[i] = rng.nextDouble() * 10.0;
            py[i] = rng.nextDouble() * 10.0;
            pz[i] = rng.nextDouble() * 10.0;
        }
        std::vector<uint32_t> nbr(size_t(atoms) * neighbors);
        for (unsigned i = 0; i < atoms; ++i)
            for (unsigned m = 0; m < neighbors; ++m)
                nbr[size_t(i) * neighbors + m] =
                    uint32_t((i + 1 + rng.nextBounded(atoms - 1)) %
                             atoms);

        Addr d_x = rt.allocGlobal(atoms * 8);
        Addr d_y = rt.allocGlobal(atoms * 8);
        Addr d_z = rt.allocGlobal(atoms * 8);
        Addr d_n = rt.allocGlobal(nbr.size() * 4);
        Addr d_u = rt.allocGlobal(atoms * 8);
        rt.writeGlobal(d_x, px.data(), px.size() * 8);
        rt.writeGlobal(d_y, py.data(), py.size() * 8);
        rt.writeGlobal(d_z, pz.data(), pz.size() * 8);
        rt.writeGlobal(d_n, nbr.data(), nbr.size() * 4);

        KernelBuilder kb("md_lj_force");
        kb.setKernargBytes(48);
        Val p_x = kb.ldKernarg(DataType::U64, 0);
        Val p_y = kb.ldKernarg(DataType::U64, 8);
        Val p_z = kb.ldKernarg(DataType::U64, 16);
        Val p_n = kb.ldKernarg(DataType::U64, 24);
        Val p_u = kb.ldKernarg(DataType::U64, 32);
        Val nnb = kb.ldKernarg(DataType::U32, 40);
        Val i = kb.workitemAbsId();
        Val xi = kb.ldGlobal(DataType::F64, addrAt(kb, p_x, i, 8));
        Val yi = kb.ldGlobal(DataType::F64, addrAt(kb, p_y, i, 8));
        Val zi = kb.ldGlobal(DataType::F64, addrAt(kb, p_z, i, 8));
        Val u = kb.immF64(0.0);
        Val m = kb.immU32(0);
        Val one = kb.immU32(1);
        Val base = kb.mul(i, nnb);
        Val onef = kb.immF64(1.0);
        Val half = kb.immF64(0.5);
        kb.doBegin();
        {
            Val slot = kb.add(base, m);
            Val j = kb.ldGlobal(DataType::U32, addrAt(kb, p_n, slot, 4));
            Val xj = kb.ldGlobal(DataType::F64, addrAt(kb, p_x, j, 8));
            Val yj = kb.ldGlobal(DataType::F64, addrAt(kb, p_y, j, 8));
            Val zj = kb.ldGlobal(DataType::F64, addrAt(kb, p_z, j, 8));
            Val dx = kb.sub(xi, xj);
            Val dy = kb.sub(yi, yj);
            Val dz = kb.sub(zi, zj);
            Val r2 = kb.fma_(dx, dx, kb.fma_(dy, dy, kb.mul(dz, dz)));
            Val r = kb.sqrt_(r2);
            Val rinv = kb.div(onef, r);
            Val r2i = kb.mul(rinv, rinv);
            Val r6i = kb.mul(kb.mul(r2i, r2i), r2i);
            // u += r6i * (r6i - 0.5) * rinv
            Val term = kb.mul(kb.mul(r6i, kb.sub(r6i, half)), rinv);
            kb.emitAluTo(Opcode::Add, u, u, term);
            kb.emitAluTo(Opcode::Add, m, m, one);
        }
        kb.doEnd(kb.cmp(CmpOp::Lt, m, nnb));
        kb.stGlobal(u, addrAt(kb, p_u, i, 8));

        auto &code = prepare(kb.build(), isa, rt.config());

        struct Args
        {
            uint64_t x, y, z, n, u;
            uint32_t nnb;
        } args{d_x, d_y, d_z, d_n, d_u, neighbors};
        rt.dispatch(code, atoms, 256, &args, sizeof(args));

        std::vector<double> got(atoms);
        rt.readGlobal(d_u, got.data(), got.size() * 8);
        bool ok = true;
        for (unsigned a = 0; a < atoms && ok; ++a) {
            double usum = 0.0;
            for (unsigned mm = 0; mm < neighbors; ++mm) {
                uint32_t j = nbr[size_t(a) * neighbors + mm];
                double dx = px[a] - px[j];
                double dy = py[a] - py[j];
                double dz = pz[a] - pz[j];
                double r2 =
                    std::fma(dx, dx, std::fma(dy, dy, dz * dz));
                double r = std::sqrt(r2);
                double rinv = 1.0 / r;
                double r2i = rinv * rinv;
                double r6i = r2i * r2i * r2i;
                usum += r6i * (r6i - 0.5) * rinv;
            }
            ok = got[a] == usum;
        }
        digestBytes(got.data(), got.size() * 8);
        return ok;
    }

  private:
    unsigned atoms;
    unsigned neighbors;
};

} // namespace

std::unique_ptr<Workload>
makeMd(const WorkloadScale &s)
{
    return std::make_unique<Md>(s);
}

} // namespace last::workloads
