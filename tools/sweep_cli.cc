/**
 * @file
 * `last_sweep` — the sharded sweep backend CLI (see DESIGN.md §4d/§4e).
 *
 *   last_sweep plan        --shards N [--scale F] [--seed S]
 *                          [--lds-stride W] [--lds-pad W] [--out-dir D]
 *   last_sweep run         MANIFEST.json [--cache FILE] [--out FILE]
 *                          [--diverge FILE] [--jobs N] [--threshold T]
 *                          [--no-retry] [--timeout-ms MS]
 *   last_sweep merge       --out FILE [--diverge FILE] [--threshold T]
 *                          PARTIAL.csv...
 *   last_sweep orchestrate --out FILE [--shards N] [--work-dir D]
 *                          [--diverge FILE] [--scale F] [--seed S]
 *                          [--lds-stride W] [--lds-pad W] [--jobs N]
 *                          [--threshold T] [--timeout-ms MS]
 *                          [--poll-ms MS] [--max-parallel N]
 *                          [--backoff-ms MS] [--backoff-cap-ms MS]
 *                          [--max-attempts N] [--resume]
 *                          [--worker EXE] [--chaos-exec WRAPPER]
 *
 * plan:  split the canonical (workload x ISA) sweep matrix into N
 *        deterministic `last-shard-v1` manifests (D/shard_<i>.json).
 * run:   execute one shard on the work-stealing pool and write a
 *        partial bench cache (`--out`) plus a partial
 *        `last-divergence-v2` report (`--diverge`). With `--cache`,
 *        incremental mode: specs whose (workload, ISA, scale, seed,
 *        knob-digest) row already exists in that cache are served from
 *        it instead of re-simulated. With `--timeout-ms`, every
 *        simulated spec gets a wall-clock deadline (the in-process
 *        watchdog); a spec still ticking past it quarantines as a
 *        "deadlock" row instead of wedging the process.
 * merge: combine partial caches into one cache + divergence report,
 *        byte-identical to a single process covering the whole matrix
 *        (any merge order, overlapping shards, and re-merging a merged
 *        cache included).
 * orchestrate: plan + supervise one `run` child process per shard to
 *        completion under failure (crash/hang/torn output), with
 *        per-worker wall-clock deadlines, capped exponential backoff
 *        retries, a fsync'd `last-journal-v1` journal, and atomic
 *        artifact writes. `--resume` re-attaches to a killed
 *        campaign, skipping shards whose caches verify. See DESIGN.md
 *        §4e and scripts/chaos_sweep.sh.
 *
 * All artifacts are written through atomicWriteFile(): readers (and
 * crashes at any instant) see the old file or the new file, never a
 * torn hybrid.
 *
 * Exit codes (README has the full table):
 *   0  success, nothing quarantined
 *   1  usage, I/O, or setup errors
 *   2  completed, but at least one spec (or shard, for orchestrate)
 *      is represented by quarantine rows in the artifacts
 *   128+N  killed by signal N (the shell's convention — what the
 *      orchestrator's supervisor classifies as a crash)
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/atomic_file.hh"
#include "obs/divergence.hh"
#include "sim/bench_cache.hh"
#include "sim/orchestrate.hh"
#include "sim/shard.hh"

using namespace last;

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: last_sweep plan  --shards N [--scale F] [--seed S]\n"
        "                        [--lds-stride W] [--lds-pad W] "
        "[--out-dir D]\n"
        "       last_sweep run   MANIFEST.json [--cache FILE] "
        "[--out FILE]\n"
        "                        [--diverge FILE] [--jobs N] "
        "[--threshold T] [--no-retry]\n"
        "                        [--timeout-ms MS]\n"
        "       last_sweep merge --out FILE [--diverge FILE] "
        "[--threshold T] PARTIAL.csv...\n"
        "       last_sweep orchestrate --out FILE [--shards N] "
        "[--work-dir D]\n"
        "                        [--diverge FILE] [--scale F] "
        "[--seed S] [--jobs N]\n"
        "                        [--timeout-ms MS] [--poll-ms MS] "
        "[--max-parallel N]\n"
        "                        [--backoff-ms MS] "
        "[--backoff-cap-ms MS] [--max-attempts N]\n"
        "                        [--resume] [--worker EXE] "
        "[--chaos-exec WRAPPER]\n");
    std::exit(1);
}

/** Pull `--flag value` out of args (erasing it); @return defaulted. */
std::string
takeOption(std::vector<std::string> &args, const std::string &flag,
           const std::string &dflt)
{
    for (size_t i = 0; i + 1 < args.size(); ++i) {
        if (args[i] == flag) {
            std::string v = args[i + 1];
            args.erase(args.begin() + i, args.begin() + i + 2);
            return v;
        }
    }
    return dflt;
}

bool
takeFlag(std::vector<std::string> &args, const std::string &flag)
{
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == flag) {
            args.erase(args.begin() + i);
            return true;
        }
    }
    return false;
}

/** Atomically write an artifact produced by `fn` (temp + fsync +
 *  rename — a crash mid-write never leaves a torn file behind). */
void
writeAtomic(const std::string &path,
            const std::function<void(std::ostream &)> &fn)
{
    atomicWriteFile(path, fn);
}

/** Load a bench cache, tolerating a missing file (empty cache). A
 *  present-but-unusable cache warns via readBenchCache and counts as
 *  empty too. @return true when usable rows were loaded. */
bool
loadCache(const std::string &path, sim::BenchCacheFile &cache)
{
    std::ifstream in(path);
    if (!in)
        return false;
    return sim::readBenchCache(in, cache, path);
}

int
cmdPlan(std::vector<std::string> args)
{
    unsigned shards =
        unsigned(std::stoul(takeOption(args, "--shards", "1")));
    double scale = std::stod(takeOption(args, "--scale", "1.0"));
    uint64_t seed = std::stoull(takeOption(args, "--seed", "0"));
    int ldsStride = std::stoi(takeOption(args, "--lds-stride", "-1"));
    int ldsPad = std::stoi(takeOption(args, "--lds-pad", "-1"));
    std::string outDir = takeOption(args, "--out-dir", ".");
    if (!args.empty() || shards == 0)
        usage();

    auto specs = sim::canonicalMatrix(scale, seed);
    for (auto &s : specs) {
        s.scale.ldsStrideWords = ldsStride;
        s.scale.ldsPadWords = ldsPad;
    }
    auto manifests = sim::makeShardManifests(specs, shards);
    for (const auto &m : manifests) {
        std::string path = outDir + "/shard_" +
                           std::to_string(m.shardIndex) + ".json";
        writeAtomic(path, [&](std::ostream &os) {
            sim::writeShardManifest(os, m);
        });
        std::fprintf(stderr, "last_sweep: wrote %s (%zu specs)\n",
                     path.c_str(), m.entries.size());
    }
    return 0;
}

int
cmdRun(std::vector<std::string> args)
{
    std::string cachePath = takeOption(args, "--cache", "");
    std::string outPath = takeOption(args, "--out", "");
    std::string divergePath = takeOption(args, "--diverge", "");
    unsigned jobs =
        unsigned(std::stoul(takeOption(args, "--jobs", "0")));
    double threshold = std::stod(takeOption(
        args, "--threshold",
        std::to_string(obs::DefaultDivergenceThreshold)));
    uint64_t timeoutMs =
        std::stoull(takeOption(args, "--timeout-ms", "0"));
    bool noRetry = takeFlag(args, "--no-retry");
    if (args.size() != 1)
        usage();

    std::ifstream mf(args[0]);
    if (!mf) {
        std::fprintf(stderr, "last_sweep: cannot read manifest %s\n",
                     args[0].c_str());
        return 1;
    }
    sim::ShardManifest m = sim::readShardManifest(mf, args[0]);

    sim::BenchCacheFile reuse;
    sim::ShardRunOptions opts;
    opts.jobs = jobs;
    opts.retryFailed = !noRetry;
    opts.timeoutMs = timeoutMs;
    if (!cachePath.empty() && loadCache(cachePath, reuse))
        opts.reuse = &reuse;

    std::fprintf(stderr,
                 "last_sweep: shard %u/%u — %zu specs on %u worker(s)"
                 "%s\n",
                 m.shardIndex, m.shardCount, m.entries.size(),
                 jobs ? jobs : sim::defaultJobs(),
                 opts.reuse ? " (incremental)" : "");
    sim::ShardRunOutcome outcome = sim::runShard(m, opts);
    std::fprintf(stderr,
                 "last_sweep: %zu simulated, %zu reused, %zu "
                 "quarantined\n",
                 outcome.simulated, outcome.reused,
                 outcome.quarantined);
    if (!outcome.sweep.allOk())
        std::fprintf(stderr, "%s", outcome.sweep.format().c_str());

    if (!outPath.empty()) {
        writeAtomic(outPath, [&](std::ostream &os) {
            sim::writeBenchCache(os, outcome.cache);
        });
    }
    if (!divergePath.empty()) {
        auto reports =
            sim::divergenceFromCache(outcome.cache, threshold);
        writeAtomic(divergePath, [&](std::ostream &os) {
            obs::writeDivergenceJsonArray(os, reports);
        });
    }
    return outcome.quarantined ? 2 : 0;
}

int
cmdMerge(std::vector<std::string> args)
{
    std::string outPath = takeOption(args, "--out", "");
    std::string divergePath = takeOption(args, "--diverge", "");
    double threshold = std::stod(takeOption(
        args, "--threshold",
        std::to_string(obs::DefaultDivergenceThreshold)));
    if (outPath.empty() || args.empty())
        usage();

    std::vector<sim::BenchCacheFile> parts;
    for (const std::string &path : args) {
        sim::BenchCacheFile part;
        if (!loadCache(path, part)) {
            std::fprintf(stderr,
                         "last_sweep: cannot load partial cache %s\n",
                         path.c_str());
            return 1;
        }
        parts.push_back(std::move(part));
    }
    sim::BenchCacheFile merged = sim::mergeBenchCaches(parts);

    size_t quarantined = 0;
    for (const auto &row : merged.rows)
        quarantined += row.result.quarantined;
    std::fprintf(stderr,
                 "last_sweep: merged %zu partials -> %zu rows (%zu "
                 "quarantined)\n",
                 parts.size(), merged.rows.size(), quarantined);

    writeAtomic(outPath, [&](std::ostream &os) {
        sim::writeBenchCache(os, merged);
    });
    if (!divergePath.empty()) {
        auto reports = sim::divergenceFromCache(merged, threshold);
        writeAtomic(divergePath, [&](std::ostream &os) {
            obs::writeDivergenceJsonArray(os, reports);
        });
    }
    return quarantined ? 2 : 0;
}

int
cmdOrchestrate(std::vector<std::string> args)
{
    sim::OrchestrateOptions o;
    o.shards = unsigned(std::stoul(takeOption(args, "--shards", "2")));
    o.scale = std::stod(takeOption(args, "--scale", "1.0"));
    o.seed = std::stoull(takeOption(args, "--seed", "0"));
    o.ldsStrideWords =
        std::stoi(takeOption(args, "--lds-stride", "-1"));
    o.ldsPadWords = std::stoi(takeOption(args, "--lds-pad", "-1"));
    o.workDir = takeOption(args, "--work-dir", ".");
    o.outPath = takeOption(args, "--out", "");
    o.divergePath = takeOption(args, "--diverge", "");
    o.threshold = std::stod(takeOption(
        args, "--threshold",
        std::to_string(obs::DefaultDivergenceThreshold)));
    o.jobsPerWorker =
        unsigned(std::stoul(takeOption(args, "--jobs", "0")));
    o.workerTimeoutMs =
        std::stoull(takeOption(args, "--timeout-ms", "0"));
    o.pollIntervalMs =
        std::stoull(takeOption(args, "--poll-ms", "50"));
    o.maxParallel =
        unsigned(std::stoul(takeOption(args, "--max-parallel", "0")));
    o.backoff.baseMs =
        std::stoull(takeOption(args, "--backoff-ms", "250"));
    o.backoff.capMs =
        std::stoull(takeOption(args, "--backoff-cap-ms", "8000"));
    o.backoff.maxAttempts =
        unsigned(std::stoul(takeOption(args, "--max-attempts", "4")));
    o.resume = takeFlag(args, "--resume");
    o.workerExe = takeOption(args, "--worker", "");
    o.chaosExec = takeOption(args, "--chaos-exec", "");
    if (!args.empty() || o.outPath.empty() || o.shards == 0)
        usage();

    sim::CampaignOutcome outcome = sim::runCampaign(o);
    std::fprintf(
        stderr,
        "last_sweep: campaign done — %zu rows (%zu quarantined), "
        "%u retries, %u shard(s) gave up, %zu skipped on resume\n",
        outcome.merged.rows.size(), outcome.quarantinedRows,
        outcome.retries, outcome.gaveUp, outcome.skippedOnResume);
    return outcome.quarantinedRows ? 2 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    try {
        if (cmd == "plan")
            return cmdPlan(std::move(args));
        if (cmd == "run")
            return cmdRun(std::move(args));
        if (cmd == "merge")
            return cmdMerge(std::move(args));
        if (cmd == "orchestrate")
            return cmdOrchestrate(std::move(args));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "last_sweep: %s\n", e.what());
        return 1;
    }
    usage();
}
