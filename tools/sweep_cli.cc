/**
 * @file
 * `last_sweep` — the sharded sweep backend CLI (see DESIGN.md §4d).
 *
 *   last_sweep plan  --shards N [--scale F] [--seed S]
 *                    [--lds-stride W] [--lds-pad W] [--out-dir D]
 *   last_sweep run   MANIFEST.json [--cache FILE] [--out FILE]
 *                    [--diverge FILE] [--jobs N] [--threshold T]
 *                    [--no-retry]
 *   last_sweep merge --out FILE [--diverge FILE] [--threshold T]
 *                    PARTIAL.csv...
 *
 * plan:  split the canonical (workload x ISA) sweep matrix into N
 *        deterministic `last-shard-v1` manifests (D/shard_<i>.json).
 * run:   execute one shard on the work-stealing pool and write a
 *        partial bench cache (`--out`) plus a partial
 *        `last-divergence-v1` report (`--diverge`). With `--cache`,
 *        incremental mode: specs whose (workload, ISA, scale, seed,
 *        knob-digest) row already exists in that cache are served from
 *        it instead of re-simulated.
 * merge: combine partial caches into one cache + divergence report,
 *        byte-identical to a single process covering the whole matrix
 *        (any merge order, overlapping shards, and re-merging a merged
 *        cache included).
 *
 * Exit code: 0 on success, 2 when the sweep completed but quarantined
 * at least one spec (artifacts are still written, with quarantine
 * marker rows), 1 on usage or I/O errors.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/divergence.hh"
#include "sim/bench_cache.hh"
#include "sim/shard.hh"

using namespace last;

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: last_sweep plan  --shards N [--scale F] [--seed S]\n"
        "                        [--lds-stride W] [--lds-pad W] "
        "[--out-dir D]\n"
        "       last_sweep run   MANIFEST.json [--cache FILE] "
        "[--out FILE]\n"
        "                        [--diverge FILE] [--jobs N] "
        "[--threshold T] [--no-retry]\n"
        "       last_sweep merge --out FILE [--diverge FILE] "
        "[--threshold T] PARTIAL.csv...\n");
    std::exit(1);
}

/** Pull `--flag value` out of args (erasing it); @return defaulted. */
std::string
takeOption(std::vector<std::string> &args, const std::string &flag,
           const std::string &dflt)
{
    for (size_t i = 0; i + 1 < args.size(); ++i) {
        if (args[i] == flag) {
            std::string v = args[i + 1];
            args.erase(args.begin() + i, args.begin() + i + 2);
            return v;
        }
    }
    return dflt;
}

bool
takeFlag(std::vector<std::string> &args, const std::string &flag)
{
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == flag) {
            args.erase(args.begin() + i);
            return true;
        }
    }
    return false;
}

std::ofstream
openOut(const std::string &path)
{
    std::ofstream f(path);
    if (!f) {
        std::fprintf(stderr, "last_sweep: cannot write %s\n",
                     path.c_str());
        std::exit(1);
    }
    return f;
}

/** Load a bench cache, tolerating a missing file (empty cache). A
 *  present-but-unusable cache warns via readBenchCache and counts as
 *  empty too. @return true when usable rows were loaded. */
bool
loadCache(const std::string &path, sim::BenchCacheFile &cache)
{
    std::ifstream in(path);
    if (!in)
        return false;
    return sim::readBenchCache(in, cache, path);
}

int
cmdPlan(std::vector<std::string> args)
{
    unsigned shards =
        unsigned(std::stoul(takeOption(args, "--shards", "1")));
    double scale = std::stod(takeOption(args, "--scale", "1.0"));
    uint64_t seed = std::stoull(takeOption(args, "--seed", "0"));
    int ldsStride = std::stoi(takeOption(args, "--lds-stride", "-1"));
    int ldsPad = std::stoi(takeOption(args, "--lds-pad", "-1"));
    std::string outDir = takeOption(args, "--out-dir", ".");
    if (!args.empty() || shards == 0)
        usage();

    auto specs = sim::canonicalMatrix(scale, seed);
    for (auto &s : specs) {
        s.scale.ldsStrideWords = ldsStride;
        s.scale.ldsPadWords = ldsPad;
    }
    auto manifests = sim::makeShardManifests(specs, shards);
    for (const auto &m : manifests) {
        std::string path = outDir + "/shard_" +
                           std::to_string(m.shardIndex) + ".json";
        auto f = openOut(path);
        sim::writeShardManifest(f, m);
        std::fprintf(stderr, "last_sweep: wrote %s (%zu specs)\n",
                     path.c_str(), m.entries.size());
    }
    return 0;
}

int
cmdRun(std::vector<std::string> args)
{
    std::string cachePath = takeOption(args, "--cache", "");
    std::string outPath = takeOption(args, "--out", "");
    std::string divergePath = takeOption(args, "--diverge", "");
    unsigned jobs =
        unsigned(std::stoul(takeOption(args, "--jobs", "0")));
    double threshold = std::stod(takeOption(
        args, "--threshold",
        std::to_string(obs::DefaultDivergenceThreshold)));
    bool noRetry = takeFlag(args, "--no-retry");
    if (args.size() != 1)
        usage();

    std::ifstream mf(args[0]);
    if (!mf) {
        std::fprintf(stderr, "last_sweep: cannot read manifest %s\n",
                     args[0].c_str());
        return 1;
    }
    sim::ShardManifest m = sim::readShardManifest(mf);

    sim::BenchCacheFile reuse;
    sim::ShardRunOptions opts;
    opts.jobs = jobs;
    opts.retryFailed = !noRetry;
    if (!cachePath.empty() && loadCache(cachePath, reuse))
        opts.reuse = &reuse;

    std::fprintf(stderr,
                 "last_sweep: shard %u/%u — %zu specs on %u worker(s)"
                 "%s\n",
                 m.shardIndex, m.shardCount, m.entries.size(),
                 jobs ? jobs : sim::defaultJobs(),
                 opts.reuse ? " (incremental)" : "");
    sim::ShardRunOutcome outcome = sim::runShard(m, opts);
    std::fprintf(stderr,
                 "last_sweep: %zu simulated, %zu reused, %zu "
                 "quarantined\n",
                 outcome.simulated, outcome.reused,
                 outcome.quarantined);
    if (!outcome.sweep.allOk())
        std::fprintf(stderr, "%s", outcome.sweep.format().c_str());

    if (!outPath.empty()) {
        auto f = openOut(outPath);
        sim::writeBenchCache(f, outcome.cache);
    }
    if (!divergePath.empty()) {
        auto reports =
            sim::divergenceFromCache(outcome.cache, threshold);
        auto f = openOut(divergePath);
        obs::writeDivergenceJsonArray(f, reports);
    }
    return outcome.quarantined ? 2 : 0;
}

int
cmdMerge(std::vector<std::string> args)
{
    std::string outPath = takeOption(args, "--out", "");
    std::string divergePath = takeOption(args, "--diverge", "");
    double threshold = std::stod(takeOption(
        args, "--threshold",
        std::to_string(obs::DefaultDivergenceThreshold)));
    if (outPath.empty() || args.empty())
        usage();

    std::vector<sim::BenchCacheFile> parts;
    for (const std::string &path : args) {
        sim::BenchCacheFile part;
        if (!loadCache(path, part)) {
            std::fprintf(stderr,
                         "last_sweep: cannot load partial cache %s\n",
                         path.c_str());
            return 1;
        }
        parts.push_back(std::move(part));
    }
    sim::BenchCacheFile merged = sim::mergeBenchCaches(parts);

    size_t quarantined = 0;
    for (const auto &row : merged.rows)
        quarantined += row.result.quarantined;
    std::fprintf(stderr,
                 "last_sweep: merged %zu partials -> %zu rows (%zu "
                 "quarantined)\n",
                 parts.size(), merged.rows.size(), quarantined);

    {
        auto f = openOut(outPath);
        sim::writeBenchCache(f, merged);
    }
    if (!divergePath.empty()) {
        auto reports = sim::divergenceFromCache(merged, threshold);
        auto f = openOut(divergePath);
        obs::writeDivergenceJsonArray(f, reports);
    }
    return quarantined ? 2 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    try {
        if (cmd == "plan")
            return cmdPlan(std::move(args));
        if (cmd == "run")
            return cmdRun(std::move(args));
        if (cmd == "merge")
            return cmdMerge(std::move(args));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "last_sweep: %s\n", e.what());
        return 1;
    }
    usage();
}
