/**
 * @file
 * `last_serve` — the multi-tenant sweep server CLI (DESIGN.md §4g).
 *
 *   last_serve serve  (--unix PATH | --tcp [PORT]) [--workers N]
 *                     [--sim-jobs N] [--queue-depth N] [--max-line B]
 *                     [--no-retry] [--preload CACHE.csv]
 *                     [--port-file FILE]
 *   last_serve client (--unix PATH | --tcp PORT [--host H])
 *                     ping | status | shutdown
 *   last_serve client ... diverge <workload> [--scale F] [--seed S]
 *                     [--threshold T] [--lds-stride W] [--lds-pad W]
 *                     [--timeout-ms N] [--out FILE]
 *   last_serve client ... stats <workload> <hsail|gcn3|ptxl> [--scale F]
 *                     [--seed S] [--lds-stride W] [--lds-pad W]
 *                     [--timeout-ms N] [--out FILE]
 *
 * serve:  run the daemon in the foreground until a `shutdown` request
 *         or SIGINT/SIGTERM; `--preload` warm-starts the result store
 *         from a bench cache; `--tcp` with port 0 (the default) binds
 *         an ephemeral port, reported on stderr and via `--port-file`.
 * client: send one request, print the response. Payload responses are
 *         unwrapped: the embedded artifact (`last-stats-v1` /
 *         `last-divergence-v2`) goes to stdout or `--out` byte-for-byte
 *         as the offline CLI would have written it; the envelope
 *         metadata goes to stderr.
 *
 * Client exit codes (scripts branch on these; see README):
 *   0  success
 *   1  usage, connection, or malformed-response failure
 *   2  the request degraded to quarantine (response was well-formed)
 *   3  refused by admission control (`overloaded`) — retry with backoff
 *   4  any other structured server error (parse/bad-request/shutdown/…)
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/atomic_file.hh"
#include "common/error.hh"
#include "common/json_in.hh"
#include "common/socket.hh"
#include "obs/json.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "sim/bench_cache.hh"

using namespace last;

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: last_serve serve  (--unix PATH | --tcp [PORT]) "
        "[--workers N] [--sim-jobs N]\n"
        "                         [--queue-depth N] [--max-line B] "
        "[--no-retry]\n"
        "                         [--preload CACHE.csv] "
        "[--port-file FILE]\n"
        "       last_serve client (--unix PATH | --tcp PORT [--host H]) "
        "<method> [args]\n"
        "         methods: ping | status | shutdown\n"
        "                  diverge <workload> [--scale F] [--seed S] "
        "[--threshold T]\n"
        "                          [--lds-stride W] [--lds-pad W] "
        "[--timeout-ms N] [--out FILE]\n"
        "                  stats <workload> <hsail|gcn3|ptxl> [--scale F] "
        "[--seed S]\n"
        "                          [--lds-stride W] [--lds-pad W] "
        "[--timeout-ms N] [--out FILE]\n");
    std::exit(1);
}

/** Pull `--flag value` out of args (erasing it); @return defaulted. */
std::string
takeOption(std::vector<std::string> &args, const std::string &flag,
           const std::string &dflt)
{
    for (size_t i = 0; i + 1 < args.size(); ++i) {
        if (args[i] == flag) {
            std::string v = args[i + 1];
            args.erase(args.begin() + i, args.begin() + i + 2);
            return v;
        }
    }
    return dflt;
}

/** Pull a bare `--flag` out of args. @return whether it was present. */
bool
takeFlag(std::vector<std::string> &args, const std::string &flag)
{
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == flag) {
            args.erase(args.begin() + i);
            return true;
        }
    }
    return false;
}

/** Shared endpoint flags: --unix PATH, or --tcp [PORT] [--host H].
 *  `--tcp` with no port means 0 (ephemeral) for serve and is an error
 *  for client (there is nothing to connect to). */
net::Endpoint
takeEndpoint(std::vector<std::string> &args, bool serving)
{
    net::Endpoint ep;
    std::string unixPath = takeOption(args, "--unix", "");
    std::string host = takeOption(args, "--host", "127.0.0.1");
    bool tcp = false;
    std::string port;
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] != "--tcp")
            continue;
        tcp = true;
        // optional numeric operand
        if (i + 1 < args.size() && !args[i + 1].empty() &&
            args[i + 1].find_first_not_of("0123456789") ==
                std::string::npos) {
            port = args[i + 1];
            args.erase(args.begin() + i, args.begin() + i + 2);
        } else {
            args.erase(args.begin() + i);
        }
        break;
    }
    if (unixPath.empty() == !tcp) // exactly one transport, please
        usage();
    if (tcp) {
        if (port.empty() && !serving)
            usage();
        ep.kind = net::Endpoint::Kind::Tcp;
        ep.host = host;
        ep.port = uint16_t(port.empty() ? 0 : std::stoul(port));
    } else {
        ep.kind = net::Endpoint::Kind::Unix;
        ep.path = unixPath;
    }
    return ep;
}

serve::Server *gServer = nullptr;

void
onSignal(int)
{
    if (gServer)
        gServer->interruptAccept(); // one shutdown(2): signal-safe
}

int
cmdServe(std::vector<std::string> args)
{
    net::Endpoint ep = takeEndpoint(args, /*serving=*/true);
    serve::ServeOptions opts;
    opts.workers =
        unsigned(std::stoul(takeOption(args, "--workers", "2")));
    if (opts.workers == 0)
        usage(); // workers=0 is the in-process test mode, not a daemon
    opts.simJobs =
        unsigned(std::stoul(takeOption(args, "--sim-jobs", "0")));
    opts.queueDepth = std::stoul(takeOption(args, "--queue-depth", "64"));
    opts.maxLineBytes =
        std::stoul(takeOption(args, "--max-line",
                              std::to_string(size_t(1) << 20)));
    opts.retryFailed = !takeFlag(args, "--no-retry");
    std::string preload = takeOption(args, "--preload", "");
    std::string portFile = takeOption(args, "--port-file", "");
    if (!args.empty())
        usage();

    serve::Server server(opts, ep);
    if (!preload.empty()) {
        std::ifstream is(preload);
        sim::BenchCacheFile cache;
        if (sim::readBenchCache(is, cache, preload)) {
            size_t kept = server.core().preload(cache);
            std::fprintf(stderr,
                         "last_serve: preloaded %zu row(s) from %s\n",
                         kept, preload.c_str());
        }
        // A bad cache already warned through readBenchCache; a cold
        // start just means the first queries simulate.
    }

    server.start();
    if (ep.kind == net::Endpoint::Kind::Tcp) {
        std::fprintf(stderr, "last_serve: listening on tcp:%s:%u\n",
                     ep.host.c_str(), unsigned(server.boundPort()));
        if (!portFile.empty())
            atomicWriteFile(portFile, [&](std::ostream &os) {
                os << server.boundPort() << "\n";
            });
    } else {
        std::fprintf(stderr, "last_serve: listening on unix:%s\n",
                     ep.path.c_str());
    }

    gServer = &server;
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    server.waitStopped();
    gServer = nullptr;
    server.stop(); // join everything, unlink the unix socket
    std::fprintf(stderr, "last_serve: stopped\n");
    return 0;
}

/** Build the single request line a client invocation sends. */
std::string
buildRequest(const std::string &method, std::vector<std::string> &args,
             std::string &outPath)
{
    std::ostringstream os;
    os << "{\"id\":1,\"method\":\"" << method << "\"";
    if (method == "diverge" || method == "stats") {
        double scale = std::stod(takeOption(args, "--scale", "1.0"));
        uint64_t seed = std::stoull(takeOption(args, "--seed", "0"));
        int stride = std::stoi(takeOption(args, "--lds-stride", "-1"));
        int pad = std::stoi(takeOption(args, "--lds-pad", "-1"));
        uint64_t timeoutMs =
            std::stoull(takeOption(args, "--timeout-ms", "0"));
        outPath = takeOption(args, "--out", "");
        std::string threshold = takeOption(
            args, "--threshold",
            method == "diverge"
                ? std::to_string(obs::DefaultDivergenceThreshold)
                : "");
        size_t positional = method == "stats" ? 2 : 1;
        if (args.size() != positional)
            usage();
        os << ",\"workload\":\"" << obs::jsonEscape(args[0]) << "\"";
        if (method == "stats")
            os << ",\"isa\":\"" << obs::jsonEscape(args[1]) << "\"";
        os << ",\"scale\":" << obs::jsonNumber(scale)
           << ",\"seed\":" << seed << ",\"lds_stride\":" << stride
           << ",\"lds_pad\":" << pad;
        if (method == "diverge")
            os << ",\"threshold\":"
               << obs::jsonNumber(std::stod(threshold));
        if (timeoutMs)
            os << ",\"timeout_ms\":" << timeoutMs;
    } else if (!args.empty()) {
        usage();
    }
    os << "}";
    return os.str();
}

int
cmdClient(std::vector<std::string> args)
{
    net::Endpoint ep = takeEndpoint(args, /*serving=*/false);
    if (args.empty())
        usage();
    std::string method = args[0];
    args.erase(args.begin());
    if (method != "ping" && method != "status" && method != "shutdown" &&
        method != "diverge" && method != "stats")
        usage();
    std::string outPath;
    std::string request = buildRequest(method, args, outPath);

    net::LineConn conn(net::connectEndpoint(ep));
    if (!conn.writeAll(request + "\n")) {
        std::fprintf(stderr, "last_serve: %s: send failed\n",
                     ep.describe().c_str());
        return 1;
    }
    std::string line;
    if (conn.readLine(line, size_t(64) << 20) !=
        net::LineConn::ReadStatus::Line) {
        std::fprintf(stderr,
                     "last_serve: %s: connection closed before a "
                     "response arrived\n",
                     ep.describe().c_str());
        return 1;
    }

    jsonin::JsonValue resp = jsonin::parseJson(line, "<response>");
    const jsonin::JsonValue *ok = resp.find("ok");
    if (resp.kind != jsonin::JsonValue::Kind::Object || !ok ||
        ok->kind != jsonin::JsonValue::Kind::Bool) {
        std::fprintf(stderr, "last_serve: malformed response: %s\n",
                     line.c_str());
        return 1;
    }

    if (!ok->boolean) {
        std::string kind = jsonin::asString(
            jsonin::require(resp, "error_kind", "<response>"),
            "error_kind", "<response>");
        std::string msg = jsonin::asString(
            jsonin::require(resp, "error", "<response>"), "error",
            "<response>");
        std::fprintf(stderr, "last_serve: server error (%s): %s\n",
                     kind.c_str(), msg.c_str());
        if (kind == "quarantine")
            return 2;
        if (kind == "overloaded")
            return 3;
        return 4;
    }

    if (const jsonin::JsonValue *payload = resp.find("payload")) {
        // jsonin already unescaped the string: these are the exact
        // artifact bytes the offline CLI would have written.
        std::string bytes =
            jsonin::asString(*payload, "payload", "<response>");
        bool quarantined = false;
        if (const jsonin::JsonValue *q = resp.find("quarantined"))
            quarantined = q->kind == jsonin::JsonValue::Kind::Bool &&
                          q->boolean;
        std::string schema = jsonin::asString(
            jsonin::require(resp, "payload_schema", "<response>"),
            "payload_schema", "<response>");
        std::string served = jsonin::asString(
            jsonin::require(resp, "served", "<response>"), "served",
            "<response>");
        if (outPath.empty())
            std::cout << bytes;
        else
            atomicWriteFile(outPath, [&](std::ostream &os) {
                os << bytes;
            });
        std::fprintf(stderr,
                     "last_serve: %s served from %s (%s)%s\n",
                     method.c_str(), served.c_str(), schema.c_str(),
                     quarantined ? " [quarantined]" : "");
        return quarantined ? 2 : 0;
    }

    if (const jsonin::JsonValue *result = resp.find("result")) {
        (void)result;
        // Echo the whole envelope: `result` is server-native JSON and
        // the envelope line is itself valid single-line JSON.
        std::cout << line << "\n";
        return 0;
    }
    std::fprintf(stderr, "last_serve: malformed response: %s\n",
                 line.c_str());
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    try {
        if (cmd == "serve")
            return cmdServe(std::move(args));
        if (cmd == "client")
            return cmdClient(std::move(args));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "last_serve: %s\n", e.what());
        return 1;
    }
    usage();
}
