/**
 * @file
 * `last_obs` — observability CLI (see DESIGN.md §5).
 *
 *   last_obs trace   <workload> <hsail|gcn3|ptxl> [--scale F] [--out FILE]
 *   last_obs stats   <workload> <hsail|gcn3|ptxl> [--scale F] [--json FILE]
 *                    [--csv FILE]
 *   last_obs diverge [workload...] [--scale F] [--threshold T]
 *                    [--json FILE] [--jobs N] [--seed S]
 *                    [--lds-stride W] [--lds-pad W]
 *
 * trace:   run once with a TraceSink attached and emit Chrome
 *          trace_event JSON (open in chrome://tracing or Perfetto).
 * stats:   run once and dump the full stats tree (JSON and/or CSV;
 *          JSON to stdout when neither file is given).
 * diverge: run each workload (default: all Table 5 applications plus
 *          the stress workloads) at every ISA level on the parallel
 *          sweep driver and print the ranked N×N cross-ISA divergence
 *          report; optional machine-readable copy with --json. --seed
 *          varies the input data; --lds-stride/--lds-pad are the
 *          ldsswizzle bank-conflict knobs (ignored elsewhere). Exit
 *          code 0 even when stats diverge (that is the expected
 *          result); 1 on usage or simulation failure.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/atomic_file.hh"
#include "obs/divergence.hh"
#include "obs/stats_export.hh"
#include "obs/trace.hh"
#include "sim/experiment.hh"
#include "workloads/workload.hh"

using namespace last;

namespace
{

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: last_obs trace   <workload> <hsail|gcn3|ptxl> [--scale F] "
        "[--out FILE]\n"
        "       last_obs stats   <workload> <hsail|gcn3|ptxl> [--scale F] "
        "[--json FILE] [--csv FILE]\n"
        "       last_obs diverge [workload...] [--scale F] "
        "[--threshold T] [--json FILE] [--jobs N]\n"
        "                        [--seed S] [--lds-stride W] "
        "[--lds-pad W]\n");
    std::exit(1);
}

IsaKind
parseIsa(const std::string &s)
{
    IsaKind isa;
    if (isaFromName(s, isa))
        return isa;
    usage();
}

/** Pull `--flag value` out of args (erasing it); @return defaulted. */
std::string
takeOption(std::vector<std::string> &args, const std::string &flag,
           const std::string &dflt)
{
    for (size_t i = 0; i + 1 < args.size(); ++i) {
        if (args[i] == flag) {
            std::string v = args[i + 1];
            args.erase(args.begin() + i, args.begin() + i + 2);
            return v;
        }
    }
    return dflt;
}

/** Atomically write a report produced by `fn`: a crash (or SIGKILL)
 *  mid-write can never leave a half-written JSON/CSV behind for a
 *  downstream consumer to trip over. */
void
writeAtomic(const std::string &path,
            const std::function<void(std::ostream &)> &fn)
{
    atomicWriteFile(path, fn);
}

int
cmdTrace(std::vector<std::string> args)
{
    double scale = std::stod(takeOption(args, "--scale", "1.0"));
    std::string out = takeOption(args, "--out", "");
    if (args.size() != 2)
        usage();
    IsaKind isa = parseIsa(args[1]);

    if (!obs::tracePointsCompiled()) {
        std::fprintf(stderr,
                     "last_obs: this build has trace points compiled "
                     "out (LAST_OBS_TRACE_POINTS=OFF)\n");
        return 1;
    }

    obs::TraceSink sink;
    GpuConfig cfg;
    cfg.trace = &sink;
    sim::AppResult r = sim::runApp(args[0], isa, cfg, {scale});

    obs::TraceMeta meta;
    meta.workload = r.workload;
    meta.isa = isaName(isa);
    meta.scale = scale;
    if (out.empty()) {
        sink.writeChromeTrace(std::cout, meta);
    } else {
        writeAtomic(out, [&](std::ostream &os) {
            sink.writeChromeTrace(os, meta);
        });
        std::fprintf(stderr,
                     "last_obs: %llu events (%llu dropped) across %zu "
                     "tracks -> %s\n",
                     (unsigned long long)sink.totalEvents(),
                     (unsigned long long)sink.totalDropped(),
                     sink.numStreams(), out.c_str());
    }
    return r.verified ? 0 : 1;
}

int
cmdStats(std::vector<std::string> args)
{
    double scale = std::stod(takeOption(args, "--scale", "1.0"));
    std::string jsonPath = takeOption(args, "--json", "");
    std::string csvPath = takeOption(args, "--csv", "");
    if (args.size() != 2)
        usage();
    IsaKind isa = parseIsa(args[1]);

    obs::ExportMeta meta;
    meta.workload = args[0];
    meta.isa = isaName(isa);
    meta.scale = scale;

    bool verified = false;
    sim::AppResult r = sim::runApp(
        args[0], isa, GpuConfig{}, {scale},
        [&](runtime::Runtime &rt) {
            if (!jsonPath.empty()) {
                writeAtomic(jsonPath, [&](std::ostream &os) {
                    obs::writeStatsJson(os, rt, meta);
                });
            }
            if (!csvPath.empty()) {
                writeAtomic(csvPath, [&](std::ostream &os) {
                    obs::writeStatsCsv(os, rt, meta);
                });
            }
            if (jsonPath.empty() && csvPath.empty())
                obs::writeStatsJson(std::cout, rt, meta);
        });
    verified = r.verified;
    return verified ? 0 : 1;
}

int
cmdDiverge(std::vector<std::string> args)
{
    double scale = std::stod(takeOption(args, "--scale", "1.0"));
    double threshold = std::stod(takeOption(
        args, "--threshold",
        std::to_string(obs::DefaultDivergenceThreshold)));
    std::string jsonPath = takeOption(args, "--json", "");
    unsigned jobs = unsigned(std::stoul(takeOption(args, "--jobs", "0")));

    workloads::WorkloadScale ws{scale};
    ws.seed = std::stoull(takeOption(args, "--seed", "0"));
    ws.ldsStrideWords = std::stoi(takeOption(args, "--lds-stride", "-1"));
    ws.ldsPadWords = std::stoi(takeOption(args, "--lds-pad", "-1"));

    std::vector<std::string> workloads =
        args.empty() ? workloads::allWorkloadNames() : args;

    auto reports = obs::divergenceReports(workloads, GpuConfig{}, ws,
                                          threshold, jobs);

    bool anyFailed = false;
    for (const auto &r : reports) {
        obs::writeDivergenceText(std::cout, r);
        anyFailed |= r.failed;
    }

    if (!jsonPath.empty()) {
        writeAtomic(jsonPath, [&](std::ostream &os) {
            obs::writeDivergenceJsonArray(os, reports);
        });
    }
    return anyFailed ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    std::string cmd = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    try {
        if (cmd == "trace")
            return cmdTrace(std::move(args));
        if (cmd == "stats")
            return cmdStats(std::move(args));
        if (cmd == "diverge")
            return cmdDiverge(std::move(args));
    } catch (const std::exception &e) {
        std::fprintf(stderr, "last_obs: %s\n", e.what());
        return 1;
    }
    usage();
}
