/**
 * @file
 * Figure 9: instruction buffer flushes. The reconvergence stack's
 * divergence/reconvergence jumps redirect fetch; GCN3's exec-mask
 * predication runs the same control flow straight-line.
 */

#include <cstdio>

#include "support.hh"

using namespace last;
using namespace last::bench;

int
main()
{
    printHeader("Figure 9: instruction buffer flushes");
    const auto &rs = allResults();
    std::printf("%-12s %12s %12s %8s\n", "app", "HSAIL", "GCN3",
                "ratio");
    std::vector<double> ratios;
    for (const auto &p : rs) {
        double ratio = double(p.gcn3.ibFlushes) /
                       std::max<uint64_t>(p.hsail.ibFlushes, 1);
        // Branch-free apps flush on neither ISA; exclude them from
        // the mean rather than folding in 0/0.
        if (p.hsail.ibFlushes > 0)
            ratios.push_back(std::max(ratio, 1e-3));
        std::printf("%-12s %12llu %12llu %8.2f\n",
                    p.hsail.workload.c_str(),
                    (unsigned long long)p.hsail.ibFlushes,
                    (unsigned long long)p.gcn3.ibFlushes, ratio);
    }
    std::printf("\ngeomean GCN3/HSAIL over apps with flushes: %.2fx "
                "(paper: <0.5x)\n",
                geomean(ratios));
    return 0;
}
