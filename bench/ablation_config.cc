/**
 * @file
 * Ablation: how sensitive is the abstraction gap to the design points
 * DESIGN.md calls out? Sweeps the L1I size (the LULESH fetch story),
 * the VRF bank count (the Figure 6 mechanism), and the waitcnt-free
 * counterfactual implied by comparing the two dependency models, using
 * LULESH and ArrayBW as the probes.
 */

#include <cstdio>

#include "support.hh"

using namespace last;
using namespace last::bench;

namespace
{

void
runCase(const char *label, const char *app, const GpuConfig &cfg)
{
    workloads::WorkloadScale scale{0.5};
    auto [h, g] = sim::runBoth(app, cfg, scale);
    std::printf("%-28s %-10s cycles H/G %8llu /%8llu   l1iMiss "
                "H/G %6llu /%6llu   conflicts H/G %7llu /%7llu\n",
                label, app, (unsigned long long)h.cycles,
                (unsigned long long)g.cycles,
                (unsigned long long)h.l1iMisses,
                (unsigned long long)g.l1iMisses,
                (unsigned long long)h.vrfBankConflicts,
                (unsigned long long)g.vrfBankConflicts);
}

} // namespace

int
main()
{
    printHeader("Ablation: design-point sensitivity of the "
                "abstraction gap (scale 0.5)");

    std::printf("\n-- L1I size (LULESH's Figure 8/12 mechanism) --\n");
    for (unsigned kb : {8, 16, 32, 64}) {
        GpuConfig cfg;
        cfg.l1i.sizeBytes = kb * 1024;
        char label[32];
        std::snprintf(label, sizeof(label), "l1i=%ukB", kb);
        runCase(label, "LULESH", cfg);
    }

    std::printf("\n-- VRF banks (Figure 6's mechanism) --\n");
    for (unsigned banks : {2, 4, 8, 16}) {
        GpuConfig cfg;
        cfg.vrfBanks = banks;
        char label[32];
        std::snprintf(label, sizeof(label), "vrfBanks=%u", banks);
        runCase(label, "ArrayBW", cfg);
    }

    std::printf("\n-- DRAM latency (memory-bound sensitivity) --\n");
    for (unsigned lat : {80, 160, 320}) {
        GpuConfig cfg;
        cfg.dramLatency = lat;
        char label[32];
        std::snprintf(label, sizeof(label), "dramLat=%u", lat);
        runCase(label, "ArrayBW", cfg);
    }

    std::printf("\n(takeaway: the IL/machine-ISA gap is configuration-"
                "dependent — another reason single fudge factors "
                "fail)\n");
    return 0;
}
