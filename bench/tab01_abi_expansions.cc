/**
 * @file
 * Tables 1-3: the instruction-expansion case studies, plus
 * google-benchmark timings of the finalizer itself.
 *
 *  Table 1: workitemabsid -> 5-instruction ABI expansion
 *  Table 2: kernarg access -> s_load + v_mov pair + flat_load
 *  Table 3: f64 division -> Newton-Raphson sequence
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "finalizer/finalizer.hh"
#include "finalizer/regalloc.hh"
#include "hsail/builder.hh"
#include "support.hh"

using namespace last;
using namespace last::hsail;

namespace
{

IlKernel
table1Kernel()
{
    KernelBuilder kb("workitemabsid_probe");
    Val gid = kb.workitemAbsId();
    kb.stGlobal(gid, kb.immU64(0x1000));
    return kb.build();
}

IlKernel
table2Kernel()
{
    KernelBuilder kb("kernarg_probe");
    kb.setKernargBytes(8);
    Val p = kb.ldKernarg(DataType::U64, 0);
    Val v = kb.ldGlobal(DataType::U32, p);
    kb.stGlobal(v, p, 4);
    return kb.build();
}

IlKernel
table3Kernel()
{
    KernelBuilder kb("fdiv_probe");
    Val q = kb.div(kb.immF64(2.0), kb.immF64(3.0));
    kb.stGlobal(q, kb.immU64(0x1000));
    return kb.build();
}

void
showExpansion(const char *title, IlKernel (*make)())
{
    IlKernel il = make();
    finalizer::compactIlRegisters(il);
    finalizer::FinalizeStats st;
    auto gcn = finalizer::finalize(il, GpuConfig{}, &st);
    std::printf("\n---- %s ----\n", title);
    std::printf("HSAIL (%zu instructions):\n%s", il.code->numInsts(),
                il.code->disassemble().c_str());
    std::printf("GCN3 (%zu instructions, %u scalar / %u vector, "
                "%u waitcnt, %u nop):\n%s",
                gcn->numInsts(), st.scalarInsts, st.vectorInsts,
                st.waitcntInserted, st.nopsInserted,
                gcn->disassemble().c_str());
    std::printf("static expansion: %.2fx\n",
                double(gcn->numInsts()) / double(il.code->numInsts()));
}

void
BM_FinalizeSmallKernel(benchmark::State &state)
{
    for (auto _ : state) {
        IlKernel il = table3Kernel();
        finalizer::compactIlRegisters(il);
        auto gcn = finalizer::finalize(il, GpuConfig{});
        benchmark::DoNotOptimize(gcn->numInsts());
    }
}
BENCHMARK(BM_FinalizeSmallKernel);

void
BM_CompactIlRegisters(benchmark::State &state)
{
    for (auto _ : state) {
        IlKernel il = table2Kernel();
        finalizer::compactIlRegisters(il);
        benchmark::DoNotOptimize(il.code->vregsUsed);
    }
}
BENCHMARK(BM_CompactIlRegisters);

} // namespace

int
main(int argc, char **argv)
{
    last::bench::printHeader(
        "Tables 1-3: ABI / ISA instruction expansions");
    showExpansion("Table 1: work-item absolute id", table1Kernel);
    showExpansion("Table 2: kernarg access", table2Kernel);
    showExpansion("Table 3: 64-bit floating point division",
                  table3Kernel);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
