/**
 * @file
 * Figure 1: average of dissimilar and similar statistics between
 * HSAIL and GCN3 across the ten applications. Values are GCN3/HSAIL
 * ratios (geometric mean), matching the paper's summary bars.
 */

#include <cstdio>

#include "support.hh"

using namespace last;
using namespace last::bench;

int
main()
{
    printHeader("Figure 1: dissimilar vs similar statistics "
                "(GCN3 normalized to HSAIL, geometric mean)");
    const auto &rs = allResults();

    std::vector<double> dyn, conflicts, reuse, foot, flush, cycles,
        uniq, util, data;
    for (const auto &p : rs) {
        dyn.push_back(double(p.gcn3.dynInsts) / p.hsail.dynInsts);
        conflicts.push_back(double(p.gcn3.vrfBankConflicts) /
                            std::max<uint64_t>(p.hsail.vrfBankConflicts,
                                               1));
        reuse.push_back(
            p.hsail.reuseMedian > 0
                ? p.gcn3.reuseMedian / p.hsail.reuseMedian : 1.0);
        foot.push_back(double(p.gcn3.instFootprint) /
                       p.hsail.instFootprint);
        if (p.hsail.ibFlushes > 0)
            flush.push_back(double(p.gcn3.ibFlushes) /
                            double(p.hsail.ibFlushes));
        cycles.push_back(double(p.gcn3.cycles) / p.hsail.cycles);
        uniq.push_back(p.gcn3.vrfUniq /
                       std::max(p.hsail.vrfUniq, 1e-9));
        util.push_back(p.gcn3.simdUtil /
                       std::max(p.hsail.simdUtil, 1e-9));
        data.push_back(double(p.gcn3.dataFootprint) /
                       p.hsail.dataFootprint);
    }

    std::printf("\n-- dissimilar statistics --\n");
    std::printf("%-28s %8.2fx   (paper: ~2x)\n",
                "dynamic instructions", geomean(dyn));
    std::printf("%-28s %8.2fx   (paper: ~0.33x)\n",
                "VRF bank conflicts", geomean(conflicts));
    std::printf("%-28s %8.2fx   (paper: ~2x)\n",
                "median vreg reuse distance", geomean(reuse));
    std::printf("%-28s %8.2fx   (paper: ~2.4x)\n",
                "instruction footprint", geomean(foot));
    std::printf("%-28s %8.2fx   (paper: <0.5x)\n",
                "IB flushes", geomean(flush));
    std::printf("%-28s %8.2fx   (paper: app-dependent)\n",
                "GPU cycles", geomean(cycles));
    std::printf("%-28s %8.2fx   (paper: both directions)\n",
                "VRF value uniqueness", geomean(uniq));

    std::printf("\n-- similar statistics --\n");
    std::printf("%-28s %8.2fx   (paper: ~1x)\n", "SIMD utilization",
                geomean(util));
    std::printf("%-28s %8.2fx   (paper: ~1x except FFT/LULESH)\n",
                "data footprint", geomean(data));
    return 0;
}
