/**
 * @file
 * Figure 5: dynamic instruction count and type breakdown, normalized
 * to each application's HSAIL count.
 */

#include <cstdio>

#include "support.hh"

using namespace last;
using namespace last::bench;

int
main()
{
    printHeader("Figure 5: dynamic instructions by class, normalized "
                "to HSAIL");
    const auto &rs = allResults();
    std::printf("%-12s %-6s %7s %7s %7s %7s %7s %7s %7s %7s | %7s\n",
                "app", "isa", "valu", "salu", "vmem", "smem", "lds",
                "branch", "waitcnt", "misc", "total");
    std::vector<double> ratios;
    for (const auto &p : rs) {
        for (const sim::AppResult *r : {&p.hsail, &p.gcn3}) {
            double base = double(p.hsail.dynInsts);
            std::printf("%-12s %-6s %7.3f %7.3f %7.3f %7.3f %7.3f "
                        "%7.3f %7.3f %7.3f | %7.3f\n",
                        r->workload.c_str(), isaName(r->isa),
                        r->valu / base, r->salu / base, r->vmem / base,
                        r->smem / base, r->lds / base,
                        r->branch / base, r->waitcnt / base,
                        r->misc / base, r->dynInsts / base);
        }
        ratios.push_back(double(p.gcn3.dynInsts) / p.hsail.dynInsts);
    }
    std::printf("\ngeomean GCN3/HSAIL dynamic instructions: %.2fx "
                "(paper: 1.5x-3x, FFT near 1x)\n",
                geomean(ratios));
    return 0;
}
