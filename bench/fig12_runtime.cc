/**
 * @file
 * Figure 12: normalized runtime (cycles). The headline pitfall: the
 * IL's error is application-dependent and moves in both directions,
 * so no single fudge factor can correct it.
 */

#include <cstdio>

#include "support.hh"

using namespace last;
using namespace last::bench;

int
main()
{
    printHeader("Figure 12: runtime in cycles (HSAIL / GCN3; >1 means "
                "HSAIL is slower)");
    const auto &rs = allResults();
    std::printf("%-12s %12s %12s %10s\n", "app", "HSAIL", "GCN3",
                "H/G ratio");
    double lo = 1e9, hi = 0;
    for (const auto &p : rs) {
        double ratio = double(p.hsail.cycles) / p.gcn3.cycles;
        lo = std::min(lo, ratio);
        hi = std::max(hi, ratio);
        std::printf("%-12s %12llu %12llu %10.2f\n",
                    p.hsail.workload.c_str(),
                    (unsigned long long)p.hsail.cycles,
                    (unsigned long long)p.gcn3.cycles, ratio);
    }
    std::printf("\nspread: %.2fx .. %.2fx (paper: 0.54x [LULESH] .. "
                "1.6x [ArrayBW] — hard to correct with a fudge "
                "factor)\n",
                lo, hi);
    return 0;
}
