/**
 * @file
 * Component microbenchmarks (google-benchmark): how fast the simulator
 * itself runs — functional memory, cache timing model, both ISA
 * interpreters, the finalizer, and whole-kernel simulation rate.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>
#include <thread>

#include "arch/exec_meta.hh"
#include "arch/kernel_code.hh"
#include "common/event_queue.hh"
#include "cu/probes.hh"
#include "finalizer/finalizer.hh"
#include "gcn3/inst.hh"
#include "finalizer/regalloc.hh"
#include "hsail/builder.hh"
#include "memory/cache.hh"
#include "memory/dram.hh"
#include "memory/functional_memory.hh"
#include "runtime/runtime.hh"
#include "sim/parallel.hh"

using namespace last;
using namespace last::hsail;

namespace
{

void
BM_FunctionalMemoryWrite(benchmark::State &state)
{
    mem::FunctionalMemory m;
    uint64_t addr = 0;
    for (auto _ : state) {
        m.write<uint64_t>(addr, addr);
        addr = (addr + 64) & 0xfffff;
    }
}
BENCHMARK(BM_FunctionalMemoryWrite);

void
BM_FunctionalMemoryRead(benchmark::State &state)
{
    mem::FunctionalMemory m;
    for (Addr a = 0; a < 0x100000; a += 64)
        m.write<uint64_t>(a, a);
    uint64_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(m.read<uint64_t>(addr));
        addr = (addr + 64) & 0xfffff;
    }
}
BENCHMARK(BM_FunctionalMemoryRead);

void
BM_FunctionalMemoryBulkCopy(benchmark::State &state)
{
    // Packet-sized transfers, the pattern runtime::writeGlobal and the
    // per-lane vmem path produce: same page hit nearly every time.
    mem::FunctionalMemory m;
    uint8_t buf[256] = {};
    Addr addr = 0;
    for (auto _ : state) {
        m.write(addr, buf, sizeof(buf));
        m.read(addr, buf, sizeof(buf));
        addr = (addr + 192) & 0xfffff; // misaligned, crosses lines
    }
}
BENCHMARK(BM_FunctionalMemoryBulkCopy);

void
BM_EventQueueScheduleTick(benchmark::State &state)
{
    // One pending event per tick: the steady-state shape the GPU loop
    // produces (fetch fills and waitcnt decrements a few cycles out).
    EventQueue eq;
    uint64_t fired = 0;
    for (auto _ : state) {
        eq.scheduleAfter(4, [&] { ++fired; });
        eq.tick();
    }
    benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventQueueScheduleTick);

void
BM_CacheAccess(benchmark::State &state)
{
    stats::Group root("root");
    GpuConfig cfg;
    mem::Dram dram("dram", cfg, &root);
    mem::Cache l2("l2", cfg.l2, &dram, &root);
    mem::Cache l1("l1", cfg.l1d, &l2, &root);
    Cycle now = 0;
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(l1.access(addr, false, now));
        addr = (addr + 64) & 0x3ffff;
        now += 2;
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_LaneUniqProbe(benchmark::State &state)
{
    // The per-operand uniqueness probe: every dynamic vector
    // instruction pays this once per operand register.
    cu::LaneUniqCounter counter;
    uint32_t lanes[64];
    for (unsigned i = 0; i < 64; ++i)
        lanes[i] = i / 4; // duplicate-heavy, like real stride patterns
    uint64_t mask = ~0ull;
    unsigned total = 0;
    for (auto _ : state) {
        total += counter.count(lanes, mask);
        lanes[total & 63] ^= total; // defeat value caching
    }
    benchmark::DoNotOptimize(total);
}
BENCHMARK(BM_LaneUniqProbe);

void
BM_CoalesceLines(benchmark::State &state)
{
    // The vmem coalescing dedup: unit-stride 4-byte accesses over a
    // full wavefront (the common case: 4 distinct lines from 64 lanes).
    Addr laneAddrs[64];
    Addr base = 0x1000;
    uint64_t total = 0;
    for (auto _ : state) {
        for (unsigned i = 0; i < 64; ++i)
            laneAddrs[i] = base + i * 4;
        Addr lines[2 * 64];
        unsigned n = 0;
        for (uint64_t m = ~0ull; m; m &= m - 1) {
            unsigned lane = unsigned(findLsb(m));
            Addr first = laneAddrs[lane] / 64;
            Addr last = (laneAddrs[lane] + 3) / 64;
            n = cu::insertLineSorted(lines, n, first);
            if (last != first)
                n = cu::insertLineSorted(lines, n, last);
        }
        total += n;
        base += 256;
    }
    benchmark::DoNotOptimize(total);
}
BENCHMARK(BM_CoalesceLines);

/**
 * Pathologically skewed task durations for the sweep scheduler: 64
 * tasks where the first 16 — exactly worker 0's static chunk at 4
 * workers — take 40x longer than the rest (a bfsgraph/pipeline block
 * at the front of the matrix next to vecadd-class specs). The tasks
 * are timed waits rather than spins so the measured wall clock is the
 * *schedule makespan* on any core count: static chunking serializes
 * the whole long block behind one worker (~32 ms) while work stealing
 * spreads it across all four (~8 ms).
 */
std::vector<std::function<void()>>
skewedScheduleTasks()
{
    std::vector<std::function<void()>> tasks;
    tasks.reserve(64);
    for (int i = 0; i < 64; ++i) {
        auto dur = std::chrono::microseconds(i < 16 ? 2000 : 50);
        tasks.push_back([dur] { std::this_thread::sleep_for(dur); });
    }
    return tasks;
}

void
BM_ParallelInvokeSkewedStatic(benchmark::State &state)
{
    auto tasks = skewedScheduleTasks();
    for (auto _ : state)
        sim::parallelInvokeStatic(tasks, 4);
}
BENCHMARK(BM_ParallelInvokeSkewedStatic)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void
BM_ParallelInvokeSkewedSteal(benchmark::State &state)
{
    auto tasks = skewedScheduleTasks();
    for (auto _ : state)
        sim::parallelInvoke(tasks, 4);
}
BENCHMARK(BM_ParallelInvokeSkewedSteal)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

IlKernel
computeKernel()
{
    KernelBuilder kb("micro");
    kb.setKernargBytes(16);
    Val in = kb.ldKernarg(DataType::U64, 0);
    Val out = kb.ldKernarg(DataType::U64, 8);
    Val gid = kb.workitemAbsId();
    Val off = kb.cvt(DataType::U64, kb.mul(gid, kb.immU32(4)));
    Val acc = kb.ldGlobal(DataType::F32, kb.add(in, off));
    for (int i = 0; i < 16; ++i)
        acc = kb.fma_(acc, kb.immF32(1.0009f), kb.immF32(0.25f));
    kb.stGlobal(acc, kb.add(out, off));
    return kb.build();
}

void
BM_SimulateKernel(benchmark::State &state)
{
    IsaKind isa = state.range(0) ? IsaKind::GCN3 : IsaKind::HSAIL;
    uint64_t insts = 0;
    for (auto _ : state) {
        runtime::Runtime rt;
        auto il = computeKernel();
        finalizer::compactIlRegisters(il);
        std::unique_ptr<arch::KernelCode> gcn;
        arch::KernelCode *code = il.code.get();
        if (isa == IsaKind::GCN3) {
            gcn = finalizer::finalize(il, rt.config());
            code = gcn.get();
        }
        Addr in = rt.allocGlobal(4096 * 4);
        Addr out = rt.allocGlobal(4096 * 4);
        struct Args
        {
            uint64_t in, out;
        } args{in, out};
        rt.dispatch(*code, 4096, 256, &args, sizeof(args));
        insts += uint64_t(rt.gpu().sumCuStat("dynInsts"));
    }
    state.counters["wf_insts_per_s"] = benchmark::Counter(
        double(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateKernel)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

/** A sealed GCN3 instruction stream for the execution-engine
 *  microbenches; `mixed` adds scalar ALU / compare / select / nop
 *  instructions so the dispatch chain crosses handler kinds the way a
 *  real kernel does instead of hammering one VALU template. */
std::unique_ptr<arch::KernelCode>
gcnChain(bool mixed)
{
    using gcn3::Dst;
    using gcn3::Gcn3Inst;
    using gcn3::Gcn3Op;
    using gcn3::Src;
    auto code = std::make_unique<arch::KernelCode>(
        IsaKind::GCN3, mixed ? "bench_dispatch" : "bench_valu");
    auto add = [&](Gcn3Inst *i) {
        code->append(std::unique_ptr<arch::Instruction>(i));
    };
    for (unsigned i = 0; i < 16; ++i) {
        unsigned a = i % 8, b = (i + 3) % 8, d = 8 + i % 8;
        add(Gcn3Inst::vop2(Gcn3Op::V_ADD_F32, Dst::vgpr(d),
                           Src::vgpr(a), Src::vgpr(b)));
        add(Gcn3Inst::vop2(Gcn3Op::V_MAC_F32, Dst::vgpr(d),
                           Src::vgpr(b), Src::vgpr(a)));
        add(Gcn3Inst::vop2(Gcn3Op::V_ADD_U32, Dst::vgpr(d),
                           Src::vgpr(a), Src::vgpr(b)));
        add(Gcn3Inst::vop2(Gcn3Op::V_XOR_B32, Dst::vgpr(d),
                           Src::vgpr(d), Src::vgpr(a)));
        if (mixed) {
            add(Gcn3Inst::sop2(Gcn3Op::S_ADD_U32, Dst::sgpr(4 + i % 4),
                               Src::sgpr(4 + (i + 1) % 4),
                               Src::imm(i + 1)));
            add(Gcn3Inst::vcmp(Gcn3Op::V_CMP_LT_U32, Src::vgpr(a),
                               Src::vgpr(b)));
            add(Gcn3Inst::vop2(Gcn3Op::V_CNDMASK_B32, Dst::vgpr(d),
                               Src::vgpr(a), Src::vgpr(b)));
            add(Gcn3Inst::sopp(Gcn3Op::S_NOP, 0));
        }
    }
    code->seal();
    return code;
}

arch::WfState
chainWfState(mem::FunctionalMemory &memory)
{
    arch::WfState st;
    st.isa = IsaKind::GCN3;
    st.memory = &memory;
    st.vregs.assign(16, arch::LaneVec{});
    for (unsigned r = 0; r < 16; ++r)
        for (unsigned l = 0; l < 64; ++l)
            st.vregs[r][l] = (r * 64 + l) * 2654435761u;
    st.initLaunch(~0ull);
    return st;
}

/** Raw per-instruction execution rate through the two engines
 *  (Arg 0 = predecoded handlers, Arg 1 = virtual reference), VALU
 *  templates only — the lane-kernel speedup isolated from the timing
 *  model. */
void
BM_ExecuteValuLoop(benchmark::State &state)
{
    const bool reference = state.range(0) != 0;
    auto code = gcnChain(false);
    const auto &metas = code->execMetas();
    mem::FunctionalMemory memory;
    arch::WfState st = chainWfState(memory);
    uint64_t insts = 0;
    for (auto _ : state) {
        for (size_t i = 0; i < metas.size(); ++i) {
            st.pc = code->offsetOf(i);
            if (reference)
                metas[i].inst->execute(st);
            else
                metas[i].handler(metas[i], st);
        }
        insts += metas.size();
    }
    state.counters["insts_per_s"] = benchmark::Counter(
        double(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExecuteValuLoop)->Arg(0)->Arg(1);

/** Same comparison over a heterogeneous stream (VALU + SALU + VCMP +
 *  select + nop): what indirect handler dispatch costs against the
 *  double virtual/switch decode when the instruction kind changes
 *  every few instructions. */
void
BM_DispatchChain(benchmark::State &state)
{
    const bool reference = state.range(0) != 0;
    auto code = gcnChain(true);
    const auto &metas = code->execMetas();
    mem::FunctionalMemory memory;
    arch::WfState st = chainWfState(memory);
    uint64_t insts = 0;
    for (auto _ : state) {
        for (size_t i = 0; i < metas.size(); ++i) {
            st.pc = code->offsetOf(i);
            if (reference)
                metas[i].inst->execute(st);
            else
                metas[i].handler(metas[i], st);
        }
        insts += metas.size();
    }
    state.counters["insts_per_s"] = benchmark::Counter(
        double(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DispatchChain)->Arg(0)->Arg(1);

void
BM_Finalize(benchmark::State &state)
{
    for (auto _ : state) {
        auto il = computeKernel();
        finalizer::compactIlRegisters(il);
        auto gcn = finalizer::finalize(il, GpuConfig{});
        benchmark::DoNotOptimize(gcn->codeBytes());
    }
}
BENCHMARK(BM_Finalize);

} // namespace

BENCHMARK_MAIN();
