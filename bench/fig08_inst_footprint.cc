/**
 * @file
 * Figure 8: instruction footprint. HSAIL's fixed 8-byte pseudo-
 * encoding underrepresents the true machine-code footprint; LULESH's
 * 27 kernels overflow the 16 kB L1I only at the GCN3 level (the
 * fetch-miss blow-up behind its Figure 12 slowdown).
 */

#include <cstdio>

#include "support.hh"

using namespace last;
using namespace last::bench;

int
main()
{
    printHeader("Figure 8: instruction footprint (bytes)");
    const auto &rs = allResults();
    std::printf("%-12s %10s %10s %8s %14s %14s\n", "app", "HSAIL",
                "GCN3", "ratio", "L1I-miss(H)", "L1I-miss(G)");
    std::vector<double> ratios;
    for (const auto &p : rs) {
        double ratio =
            double(p.gcn3.instFootprint) / p.hsail.instFootprint;
        ratios.push_back(ratio);
        std::printf("%-12s %10llu %10llu %8.2f %14llu %14llu\n",
                    p.hsail.workload.c_str(),
                    (unsigned long long)p.hsail.instFootprint,
                    (unsigned long long)p.gcn3.instFootprint, ratio,
                    (unsigned long long)p.hsail.l1iMisses,
                    (unsigned long long)p.gcn3.l1iMisses);
    }
    std::printf("\ngeomean GCN3/HSAIL footprint: %.2fx "
                "(paper: ~2.4x; LULESH exceeds the 16kB I$ only under "
                "GCN3)\n",
                geomean(ratios));
    return 0;
}
