#include "support.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/atomic_file.hh"
#include "common/logging.hh"
#include "sim/bench_cache.hh"
#include "sim/shard.hh"

namespace last::bench
{

namespace
{

constexpr const char *CacheFile = "last_bench_cache.csv";

double
benchScale()
{
    if (const char *s = std::getenv("LAST_BENCH_SCALE"))
        return std::atof(s);
    return 1.0;
}

/**
 * The ISA columns of the sweep: every level in AllIsas by default, or
 * the comma-separated subset in LAST_BENCH_ISAS (e.g. "HSAIL,GCN3" —
 * the perf gate times that two-ISA sweep so its wall-clock stays
 * comparable with pre-PTXL baselines). The figure binaries reproduce
 * the paper's HSAIL-vs-GCN3 comparison, so those two levels are
 * mandatory; the subset keeps AllIsas order regardless of how the
 * list was spelled.
 */
std::vector<IsaKind>
benchIsas()
{
    const char *env = std::getenv("LAST_BENCH_ISAS");
    if (!env || !*env)
        return {AllIsas, AllIsas + NumIsas};
    bool want[NumIsas] = {};
    std::string list(env), tok;
    std::istringstream is(list);
    while (std::getline(is, tok, ',')) {
        IsaKind isa;
        fatal_if(!isaFromName(tok, isa),
                 "LAST_BENCH_ISAS: unknown isa '%s'", tok.c_str());
        want[unsigned(isa)] = true;
    }
    fatal_if(!want[unsigned(IsaKind::HSAIL)] ||
                 !want[unsigned(IsaKind::GCN3)],
             "LAST_BENCH_ISAS must include HSAIL and GCN3 (the "
             "figures reproduce that pair)");
    std::vector<IsaKind> isas;
    for (IsaKind isa : AllIsas)
        if (want[unsigned(isa)])
            isas.push_back(isa);
    return isas;
}

/**
 * The cached sweep, incrementally: load whatever usable rows
 * last_bench_cache.csv has (a stale version, damaged row, wrong
 * scale, or quarantined entry is dropped with a loud warn(), never
 * silently), simulate only the specs that are missing, and rewrite
 * the cache when anything new was computed. A fully-warm cache runs
 * zero simulations; a cold or discarded one recomputes the whole
 * matrix — the old all-or-nothing behavior is just the endpoints of
 * the incremental path. The file I/O and row format live in
 * sim/bench_cache.{hh,cc}, shared with the `last_sweep` shard CLI, so
 * this cache and a merged shard sweep are byte-identical artifacts.
 */
std::vector<AppPair>
loadOrCompute()
{
    const double scale = benchScale();
    const auto names = workloads::allWorkloadNames();
    const auto isas = benchIsas();
    auto specs = sim::canonicalMatrix(scale, 0);
    if (isas.size() != NumIsas) {
        std::vector<sim::RunSpec> kept;
        for (const sim::RunSpec &s : specs)
            for (IsaKind isa : isas)
                if (s.isa == isa)
                    kept.push_back(s);
        specs = std::move(kept);
    }

    sim::BenchCacheFile cache;
    {
        std::ifstream in(CacheFile);
        if (in && sim::readBenchCache(in, cache, CacheFile)) {
            if (cache.scale != scale) {
                warn("bench cache %s is for scale %g, want %g; "
                     "discarding it — the sweep will re-simulate",
                     CacheFile, cache.scale, scale);
                cache.rows.clear();
            }
            sim::dropQuarantinedRows(cache, CacheFile);
        } else {
            cache.rows.clear();
        }
        cache.scale = scale;
    }

    auto manifests = sim::makeShardManifests(specs, 1);
    sim::ShardRunOptions opts;
    opts.reuse = &cache;

    size_t misses = 0;
    for (const auto &e : manifests[0].entries) {
        const sim::CachedRun *hit =
            cache.find(sim::specCacheKey(sim::specFromEntry(e)));
        misses += !(hit && !hit->result.quarantined);
    }
    if (misses)
        std::fprintf(stderr,
                     "[bench] simulating %zu of %zu (workload x ISA) "
                     "specs on %u worker(s) (override with LAST_JOBS) "
                     "...\n",
                     misses, specs.size(), sim::defaultJobs());

    auto outcome = sim::runShard(manifests[0], opts);
    if (outcome.quarantined) {
        // The bench needs every row to draw its figures, so
        // quarantine is fatal — but only after the full casualty
        // report is printed and with the cache left untouched.
        std::fprintf(stderr,
                     "[bench] sweep completed with failures:\n%s",
                     outcome.sweep.format().c_str());
        fatal("%zu of %zu bench runs quarantined; no cache written "
              "(see the report above)",
              outcome.quarantined, specs.size());
    }
    if (outcome.simulated) {
        // Atomic replace: a figure binary killed mid-write must never
        // leave a torn cache for the next run (or a concurrent shard
        // worker) to trip over.
        atomicWriteFile(CacheFile, [&](std::ostream &os) {
            sim::writeBenchCache(os, outcome.cache);
        });
    }

    // Cache rows are in canonical order: the selected ISAs in AllIsas
    // order per workload, workloads in allWorkloadNames order. Every
    // level must retire the same lane-visible results; the figures
    // then draw the paper's HSAIL/GCN3 pair.
    size_t nIsas = isas.size(), hAt = 0, gAt = 0;
    for (size_t k = 0; k < nIsas; ++k) {
        if (isas[k] == IsaKind::HSAIL)
            hAt = k;
        if (isas[k] == IsaKind::GCN3)
            gAt = k;
    }
    fatal_if(outcome.cache.rows.size() != names.size() * nIsas,
             "bench cache has %zu rows, want %zu",
             outcome.cache.rows.size(), names.size() * nIsas);
    std::vector<AppPair> out;
    out.reserve(names.size());
    for (size_t i = 0; i < names.size(); ++i) {
        for (size_t k = 0; k < nIsas; ++k) {
            const sim::AppResult &r =
                outcome.cache.rows[nIsas * i + k].result;
            fatal_if(!r.verified, "workload %s failed %s verification",
                     names[i].c_str(), isaName(r.isa));
            fatal_if(r.digest !=
                         outcome.cache.rows[nIsas * i].result.digest,
                     "workload %s: cross-ISA result mismatch (%s)",
                     names[i].c_str(), isaName(r.isa));
        }
        sim::AppResult &h = outcome.cache.rows[nIsas * i + hAt].result;
        sim::AppResult &g = outcome.cache.rows[nIsas * i + gAt].result;
        out.push_back({std::move(h), std::move(g)});
    }
    return out;
}

/** The full cached sweep: Table 5 pairs first, then stress. */
const std::vector<AppPair> &
allPairs()
{
    static std::vector<AppPair> results = loadOrCompute();
    return results;
}

} // namespace

const std::vector<AppPair> &
allResults()
{
    static std::vector<AppPair> table5(
        allPairs().begin(),
        allPairs().begin() +
            std::ptrdiff_t(workloads::workloadNames().size()));
    return table5;
}

const std::vector<AppPair> &
stressResults()
{
    static std::vector<AppPair> stress(
        allPairs().begin() +
            std::ptrdiff_t(workloads::workloadNames().size()),
        allPairs().end());
    return stress;
}

double
geomean(const std::vector<double> &xs)
{
    double s = 0;
    for (double x : xs)
        s += std::log(x > 0 ? x : 1e-9);
    return std::exp(s / double(xs.size()));
}

void
printHeader(const std::string &what)
{
    GpuConfig cfg;
    std::printf("== %s ==\n", what.c_str());
    std::printf("config (Table 4): %s\n", cfg.summary().c_str());
}

} // namespace last::bench
