#include "support.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/atomic_file.hh"
#include "common/logging.hh"
#include "sim/bench_cache.hh"
#include "sim/shard.hh"

namespace last::bench
{

namespace
{

constexpr const char *CacheFile = "last_bench_cache.csv";

double
benchScale()
{
    if (const char *s = std::getenv("LAST_BENCH_SCALE"))
        return std::atof(s);
    return 1.0;
}

/**
 * The cached sweep, incrementally: load whatever usable rows
 * last_bench_cache.csv has (a stale version, damaged row, wrong
 * scale, or quarantined entry is dropped with a loud warn(), never
 * silently), simulate only the specs that are missing, and rewrite
 * the cache when anything new was computed. A fully-warm cache runs
 * zero simulations; a cold or discarded one recomputes the whole
 * matrix — the old all-or-nothing behavior is just the endpoints of
 * the incremental path. The file I/O and row format live in
 * sim/bench_cache.{hh,cc}, shared with the `last_sweep` shard CLI, so
 * this cache and a merged shard sweep are byte-identical artifacts.
 */
std::vector<AppPair>
loadOrCompute()
{
    const double scale = benchScale();
    const auto names = workloads::allWorkloadNames();
    const auto specs = sim::canonicalMatrix(scale, 0);

    sim::BenchCacheFile cache;
    {
        std::ifstream in(CacheFile);
        if (in && sim::readBenchCache(in, cache, CacheFile)) {
            if (cache.scale != scale) {
                warn("bench cache %s is for scale %g, want %g; "
                     "discarding it — the sweep will re-simulate",
                     CacheFile, cache.scale, scale);
                cache.rows.clear();
            }
            sim::dropQuarantinedRows(cache, CacheFile);
        } else {
            cache.rows.clear();
        }
        cache.scale = scale;
    }

    auto manifests = sim::makeShardManifests(specs, 1);
    sim::ShardRunOptions opts;
    opts.reuse = &cache;

    size_t misses = 0;
    for (const auto &e : manifests[0].entries) {
        const sim::CachedRun *hit =
            cache.find(sim::specCacheKey(sim::specFromEntry(e)));
        misses += !(hit && !hit->result.quarantined);
    }
    if (misses)
        std::fprintf(stderr,
                     "[bench] simulating %zu of %zu (workload x ISA) "
                     "specs on %u worker(s) (override with LAST_JOBS) "
                     "...\n",
                     misses, specs.size(), sim::defaultJobs());

    auto outcome = sim::runShard(manifests[0], opts);
    if (outcome.quarantined) {
        // The bench needs every row to draw its figures, so
        // quarantine is fatal — but only after the full casualty
        // report is printed and with the cache left untouched.
        std::fprintf(stderr,
                     "[bench] sweep completed with failures:\n%s",
                     outcome.sweep.format().c_str());
        fatal("%zu of %zu bench runs quarantined; no cache written "
              "(see the report above)",
              outcome.quarantined, specs.size());
    }
    if (outcome.simulated) {
        // Atomic replace: a figure binary killed mid-write must never
        // leave a torn cache for the next run (or a concurrent shard
        // worker) to trip over.
        atomicWriteFile(CacheFile, [&](std::ostream &os) {
            sim::writeBenchCache(os, outcome.cache);
        });
    }

    // Manifest order is the canonical matrix: HSAIL then GCN3 per
    // workload, workloads in allWorkloadNames order.
    std::vector<AppPair> out;
    out.reserve(names.size());
    for (size_t i = 0; i < names.size(); ++i) {
        sim::AppResult &h = outcome.cache.rows[2 * i].result;
        sim::AppResult &g = outcome.cache.rows[2 * i + 1].result;
        fatal_if(!h.verified || !g.verified,
                 "workload %s failed verification", names[i].c_str());
        fatal_if(h.digest != g.digest,
                 "workload %s: cross-ISA result mismatch",
                 names[i].c_str());
        out.push_back({std::move(h), std::move(g)});
    }
    return out;
}

/** The full cached sweep: Table 5 pairs first, then stress. */
const std::vector<AppPair> &
allPairs()
{
    static std::vector<AppPair> results = loadOrCompute();
    return results;
}

} // namespace

const std::vector<AppPair> &
allResults()
{
    static std::vector<AppPair> table5(
        allPairs().begin(),
        allPairs().begin() +
            std::ptrdiff_t(workloads::workloadNames().size()));
    return table5;
}

const std::vector<AppPair> &
stressResults()
{
    static std::vector<AppPair> stress(
        allPairs().begin() +
            std::ptrdiff_t(workloads::workloadNames().size()),
        allPairs().end());
    return stress;
}

double
geomean(const std::vector<double> &xs)
{
    double s = 0;
    for (double x : xs)
        s += std::log(x > 0 ? x : 1e-9);
    return std::exp(s / double(xs.size()));
}

void
printHeader(const std::string &what)
{
    GpuConfig cfg;
    std::printf("== %s ==\n", what.c_str());
    std::printf("config (Table 4): %s\n", cfg.summary().c_str());
}

} // namespace last::bench
